// Network video (paper §5.1, Figure 6): a server extension reads frames
// "off the disk" and multicasts them as UDP datagrams over a 45Mb/s T3; a
// client checksums, decompresses, and displays each frame. The example runs
// the workload at a few stream counts under both OS personalities and prints
// the server's CPU utilization — the Figure 6 comparison in miniature.
package main

import (
	"fmt"
	"log"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/video"
	"plexus/internal/view"
)

func run(personality osmodel.Personality, streams int) (util float64, late uint64, frames uint64) {
	net, err := plexus.NewNetwork(3, netdev.DECT3Model(), []plexus.HostSpec{
		{Name: "server", Personality: personality, Dispatch: osmodel.DispatchInterrupt},
		{Name: "client", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
	})
	if err != nil {
		log.Fatal(err)
	}
	net.PrimeARP()
	serverHost, clientHost := net.Hosts[0], net.Hosts[1]

	srv, err := video.NewServer(serverHost, video.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	client, err := video.NewClient(clientHost, video.DefaultPort)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < streams; i++ {
		srv.AddStream(view.IP4{224, 0, 1, byte(i + 1)})
	}
	serverHost.Host.CPU.MarkUtilization()
	srv.Run(2 * sim.Second)
	net.Sim.RunUntil(2 * sim.Second)
	return serverHost.Host.CPU.Utilization(), srv.Stats().TicksLate, client.Stats().FramesRcvd
}

func main() {
	fmt.Println("video server CPU utilization, 30fps × 12.5KB frames over T3 (2s of video)")
	fmt.Println("streams   SPIN/Plexus   DIGITAL UNIX   (frames delivered, SPIN)")
	for _, streams := range []int{1, 5, 10, 15, 20} {
		spinU, _, frames := run(osmodel.SPIN, streams)
		duxU, late, _ := run(osmodel.Monolithic, streams)
		note := ""
		if late > 0 {
			note = fmt.Sprintf("  (DUX missed %d frame deadlines)", late)
		}
		fmt.Printf("%7d   %10.1f%%   %11.1f%%   %d%s\n", streams, spinU*100, duxU*100, frames, note)
	}
	fmt.Println("\nthe paper's Figure 6: at equal stream counts the SPIN server uses")
	fmt.Println("roughly half the processor, because frames go disk→network without")
	fmt.Println("crossing the user/kernel boundary")
}
