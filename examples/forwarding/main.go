// Protocol forwarding (paper §5, Figure 7): redirect TCP connections for a
// service port to a backend host, once with an in-kernel Plexus graph node
// (whole-datagram rewrite below the transport layer — end-to-end TCP
// semantics preserved) and once with a conventional user-level socket splice.
package main

import (
	"fmt"
	"log"

	"plexus/internal/forward"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func run(kernel bool, payload int) (latency sim.Time, detail string) {
	fwdP := osmodel.Monolithic
	if kernel {
		fwdP = osmodel.SPIN
	}
	net, err := plexus.NewNetwork(5, netdev.EthernetModel(), []plexus.HostSpec{
		{Name: "client", Personality: osmodel.SPIN},
		{Name: "fwd", Personality: fwdP},
		{Name: "server", Personality: osmodel.SPIN},
	})
	if err != nil {
		log.Fatal(err)
	}
	net.PrimeARP()
	client, fwd, server := net.Hosts[0], net.Hosts[1], net.Hosts[2]

	// Backend echo service.
	if _, err := server.ListenTCP(9000, plexus.TCPAppOptions{
		OnRecv:    func(t *sim.Task, c *plexus.TCPApp, data []byte) { _ = c.Send(t, data) },
		OnPeerFin: func(t *sim.Task, c *plexus.TCPApp) { c.Close(t) },
	}, nil); err != nil {
		log.Fatal(err)
	}

	var k *forward.Kernel
	var s *forward.Splice
	if kernel {
		k, err = forward.NewKernel(fwd, view.IPProtoTCP, 8000, server.Addr(), 9000)
	} else {
		s, err = forward.NewSplice(fwd, 8000, server.Addr(), 9000)
	}
	if err != nil {
		log.Fatal(err)
	}

	req := make([]byte, payload)
	var sentAt, gotAt sim.Time
	rcvd := 0
	client.Spawn("client", func(t *sim.Task) {
		_, err := client.ConnectTCP(t, fwd.Addr(), 8000, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, c *plexus.TCPApp) {
				sentAt = t2.Now()
				_ = c.Send(t2, req)
			},
			OnRecv: func(t2 *sim.Task, c *plexus.TCPApp, data []byte) {
				rcvd += len(data)
				if rcvd >= payload {
					gotAt = t2.Now()
					c.Close(t2)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	})
	net.Sim.RunUntil(60 * sim.Second)
	if kernel {
		st := k.Stats()
		detail = fmt.Sprintf("flows=%d forwarded=%d returned=%d (SYN/FIN/ACKs included)",
			st.FlowsCreated, st.Forwarded, st.Returned)
	} else {
		st := s.Stats()
		detail = fmt.Sprintf("accepted=%d bytes→server=%d bytes→client=%d (two stack trips each)",
			st.Accepted, st.BytesToServer, st.BytesToClient)
	}
	return gotAt - sentAt, detail
}

func main() {
	fmt.Println("TCP redirection through a middle host (request → echoed reply)")
	for _, payload := range []int{64, 512, 1460} {
		kLat, kDetail := run(true, payload)
		sLat, sDetail := run(false, payload)
		fmt.Printf("\n%4dB request:\n", payload)
		fmt.Printf("  Plexus in-kernel node : %8v   %s\n", kLat, kDetail)
		fmt.Printf("  user-level splice     : %8v   %s\n", sLat, sDetail)
		fmt.Printf("  ratio                 : %.2fx\n", float64(sLat)/float64(kLat))
	}
	fmt.Println("\nthe in-kernel node rewrites whole datagrams below the transport")
	fmt.Println("layer, so connection establishment and termination pass through;")
	fmt.Println("the splice terminates TCP at the forwarder and copies every byte")
	fmt.Println("through user space twice")
}
