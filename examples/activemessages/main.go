// Active messages over Ethernet (paper §3.3, Figures 2–3): an
// application-specific protocol whose EPHEMERAL handlers run directly in the
// network interrupt, with a time allotment enforced by the dispatcher.
//
// The example installs a remote-increment handler on one host, fires a
// sequence of requests at it, then demonstrates premature termination by
// registering a handler that overruns its allotment.
package main

import (
	"fmt"
	"log"

	"plexus/internal/activemsg"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
)

func main() {
	net, a, b, err := plexus.TwoHosts(7, netdev.EthernetModel(),
		plexus.HostSpec{Name: "a", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
		plexus.HostSpec{Name: "b", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt})
	if err != nil {
		log.Fatal(err)
	}

	// Install the extension on both hosts with a 200µs per-invocation
	// allotment — the §3.3 time limit. Normal handlers (including their
	// interrupt-level reply transmission) fit comfortably; the hog does not.
	amA, err := activemsg.New(a.Ether, a.Host.Pool, a.Host.Costs, 200*sim.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	amB, err := activemsg.New(b.Ether, b.Host.Pool, b.Host.Costs, 200*sim.Microsecond)
	if err != nil {
		log.Fatal(err)
	}

	// Handler 0 on B: "reference memory and reply" — add 100 to the
	// argument.
	var counter uint32
	if err := amB.Register(0, func(t *sim.Task, seq uint16, arg uint32, payload []byte) uint32 {
		counter += arg
		return counter
	}); err != nil {
		log.Fatal(err)
	}
	// Handler 1 on B: a hog that will be prematurely terminated.
	if err := amB.Register(1, func(t *sim.Task, seq uint16, arg uint32, payload []byte) uint32 {
		t.Charge(5 * sim.Millisecond) // far past the 200µs allotment
		return 0
	}); err != nil {
		log.Fatal(err)
	}

	var lastSend sim.Time
	amA.OnReply(func(t *sim.Task, seq uint16, arg uint32) {
		fmt.Printf("reply #%d: counter=%d  RTT=%v\n", seq, arg, t.Now()-lastSend)
		if seq < 5 {
			lastSend = t.Now()
			if _, err := amA.Send(t, b.NIC.MAC(), 0, 10, nil); err != nil {
				log.Fatal(err)
			}
		} else if seq == 5 {
			// Now poke the hog.
			if _, err := amA.Send(t, b.NIC.MAC(), 1, 0, nil); err != nil {
				log.Fatal(err)
			}
		}
	})
	a.Spawn("kick", func(t *sim.Task) {
		lastSend = t.Now()
		if _, err := amA.Send(t, b.NIC.MAC(), 0, 10, nil); err != nil {
			log.Fatal(err)
		}
	})
	net.Sim.Run()

	fmt.Printf("\nB's extension: %+v\n", amB.Stats())
	fmt.Printf("premature terminations of the hog handler: %d\n", amB.Binding().Stats().Terminations)
	fmt.Printf("B's CPU busy only %v despite the 5ms hog — the allotment bounded it\n", b.Host.CPU.Busy())
	fmt.Println("(the hog's reply still arrives in simulation: termination bounds the")
	fmt.Println(" CPU charge; a real SPIN would have discarded the handler mid-flight)")
}
