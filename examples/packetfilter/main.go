// Declarative packet filters as guards: expressions like
// "ip.proto == 17 && udp.dport == 9" compile to Plexus guards two ways —
// native closures (the typesafe-extension model) or bytecode for a small
// interpreter VM (the §3.5 alternative firewall mechanism). The example
// installs a filter-driven packet tap, shows both backends agreeing, prints
// the VM disassembly, and measures what each backend adds to a round trip.
package main

import (
	"fmt"
	"log"

	"plexus/internal/event"
	"plexus/internal/filter"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func main() {
	net, a, b, err := plexus.TwoHosts(17, netdev.EthernetModel(),
		plexus.HostSpec{Name: "a", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
		plexus.HostSpec{Name: "b", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt})
	if err != nil {
		log.Fatal(err)
	}

	const expr = "ip.proto == 17 && (udp.dport == 9 || udp.dport == 7) && !ip.frag"
	// The tap hangs on UDP.PacketRecv, where packets are IP-framed and the
	// tap (installed before any endpoint) observes before consumers run.
	fmt.Printf("filter: %s\n\n", expr)

	// Native backend: a compiled guard.
	f, err := filter.Parse(expr, filter.BaseIP)
	if err != nil {
		log.Fatal(err)
	}
	// Interpreted backend: the same expression as VM bytecode.
	prog, err := filter.CompileInterpreted(expr, filter.BaseIP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM bytecode (%d instructions):\n%s\n", prog.Len(), prog)

	// Install a tap on B's UDP.PacketRecv with the native guard: installed
	// before any endpoint, it observes each matching datagram before the
	// consuming endpoint handler runs.
	matches, vmAgrees := 0, 0
	if _, err := b.Host.Disp.Install("UDP.PacketRecv",
		func(t *sim.Task, m *mbuf.Mbuf) bool { return f.Match(m) },
		event.Ephemeral("tap", func(t *sim.Task, m *mbuf.Mbuf) {
			matches++
			if prog.Run(t, m) {
				vmAgrees++
			}
			// Observe only; the endpoint handler owns the packet.
		}), 0); err != nil {
		log.Fatal(err)
	}

	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(*sim.Task, []byte, view.IP4, uint16) {}); err != nil {
		log.Fatal(err)
	}
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 5353}, func(*sim.Task, []byte, view.IP4, uint16) {}); err != nil {
		log.Fatal(err)
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	a.Spawn("traffic", func(t *sim.Task) {
		for i := 0; i < 5; i++ {
			_ = capp.Send(t, b.Addr(), 9, []byte("match"))    // matches
			_ = capp.Send(t, b.Addr(), 5353, []byte("other")) // filtered out
		}
	})
	net.Sim.Run()
	fmt.Printf("tap saw %d of 10 datagrams (5 matched the filter); VM agreed on %d/%d\n\n",
		matches, vmAgrees, matches)
	if matches != 5 || vmAgrees != 5 {
		log.Fatal("backends disagreed")
	}
	fmt.Println("the native guard costs one dispatcher guard-evaluation (~200ns);")
	fmt.Printf("the interpreted guard charges ~%v per packet for this expression —\n",
		sim.Time(prog.Len())*filter.DefaultInstrCost)
	fmt.Println("the price §3.5 notes for interpreted in-kernel firewalls")
}
