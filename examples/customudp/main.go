// Application-specific UDP (paper §1.1 and §2): two communicating
// applications agree to disable the UDP checksum — "a legitimate way to
// improve performance" for loss-tolerant media. The receiving extension is
// installed at runtime through the dynamic linker against a restricted
// logical protection domain; a rogue extension that names a privileged
// interface is rejected at link time; and unlinking removes the endpoint,
// demonstrating the runtime-adaptation property.
package main

import (
	"fmt"
	"log"

	"plexus/internal/domain"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/udp"
	"plexus/internal/view"
)

func main() {
	net, a, b, err := plexus.TwoHosts(11, netdev.EthernetModel(),
		plexus.HostSpec{Name: "a", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
		plexus.HostSpec{Name: "b", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt})
	if err != nil {
		log.Fatal(err)
	}

	// The receiving extension arrives as a partially resolved object: it
	// imports the UDP manager interface and the packet-buffer pool,
	// nothing else.
	var ep *udp.Endpoint
	received := 0
	ext := &domain.Extension{
		Name:    "audio-receiver",
		Imports: []domain.Symbol{"UDP.Manager", "Mbuf.Pool"},
		Init: func(resolved map[domain.Symbol]any) error {
			mgr := resolved["UDP.Manager"].(*udp.Manager)
			var err error
			ep, err = mgr.Open(udp.EndpointOptions{
				Port:            5004,
				DisableChecksum: true, // integrity optional, by agreement
				Ephemeral:       true,
			}, func(t *sim.Task, payload *mbuf.Mbuf, src view.IP4, srcPort uint16) {
				received++
				payload.Free()
			})
			return err
		},
	}
	linked, err := b.LinkExtension(ext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("audio-receiver linked into the kernel at runtime")

	// A rogue extension naming an interface outside its domain is
	// rejected at link time — this is the whole protection story.
	rogue := &domain.Extension{
		Name:    "snooper",
		Imports: []domain.Symbol{"UDP.Manager", "Device.NIC", "Dispatcher.Install"},
	}
	if _, err := b.LinkExtension(rogue); err != nil {
		fmt.Printf("rogue extension rejected: %v\n", err)
	} else {
		log.Fatal("rogue extension linked; protection is broken")
	}

	// Stream ten checksum-free datagrams.
	sender, err := a.OpenUDP(plexus.UDPAppOptions{DisableChecksum: true}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		a.SpawnAt(at, "send", func(t *sim.Task) {
			_ = sender.Send(t, b.Addr(), 5004, make([]byte, 320)) // 20ms of 16kHz audio
		})
	}
	net.Sim.RunUntil(200 * sim.Millisecond)
	fmt.Printf("received %d/10 checksum-free datagrams (UDP checksum field = 0 on the wire)\n", received)

	// Runtime adaptation: the application leaves, its extension unlinks,
	// and the endpoint it installed goes with it.
	ep.Close()
	if err := linked.Unlink(); err != nil {
		log.Fatal(err)
	}
	a.Spawn("late", func(t *sim.Task) { _ = sender.Send(t, b.Addr(), 5004, make([]byte, 320)) })
	net.Sim.RunUntil(300 * sim.Millisecond)
	fmt.Printf("after unlink: still %d received; late datagram drew port-unreachable (%d sent by B)\n",
		received, b.ICMP.Stats().UnreachSent)
}
