// Defining a NEW protocol (the paper's headline): SPP, a reliable sequenced
// packet protocol with its own IP protocol number, is installed into the
// kernel protocol graph at runtime, right beside UDP and TCP. The example
// streams datagrams through 25% packet loss and shows exactly-once, in-order
// delivery — semantics no built-in protocol offers — then removes nothing
// else in the system to do it.
package main

import (
	"fmt"
	"log"

	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/seqpkt"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func main() {
	net, a, b, err := plexus.TwoHosts(21, netdev.EthernetModel(),
		plexus.HostSpec{Name: "a", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
		plexus.HostSpec{Name: "b", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt})
	if err != nil {
		log.Fatal(err)
	}

	// Install the application-defined protocol on both hosts. This is the
	// same act as installing UDP or TCP: a guard on IP.PacketRecv keyed to
	// the new protocol number, a manager for endpoint rights.
	install := func(st *plexus.Stack) *seqpkt.Manager {
		m, err := seqpkt.Install(seqpkt.Config{
			Sim: st.Host.Sim, IP: st.IP, Disp: st.Host.Disp,
			Raise: st.Raiser(), CPU: st.Host.CPU, Pool: st.Host.Pool,
			Costs: st.Host.Costs, RequireEphemeral: st.InterruptMode(),
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	ma, mb := install(a), install(b)
	fmt.Printf("SPP (IP protocol %d) installed on both hosts at runtime\n", seqpkt.IPProto)

	// 25% loss in both directions, via the fault-injection plane.
	in := fault.Attach(net.Sim, net.Link)
	in.Lose(&fault.EveryNth{N: 4})

	delivered := 0
	if _, err := mb.Open(40, func(t *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		delivered++
		if seq <= 3 || int(seq) == delivered && delivered%10 == 0 {
			fmt.Printf("  delivered #%d (%dB) in order at %v\n", seq, len(data), t.Now())
		}
	}); err != nil {
		log.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		log.Fatal(err)
	}
	const msgs = 30
	for i := 0; i < msgs; i++ {
		at := sim.Time(i) * 5 * sim.Millisecond
		a.SpawnAt(at, "send", func(t *sim.Task) {
			if _, err := tx.Send(t, b.Addr(), 40, make([]byte, 512)); err != nil {
				log.Fatal(err)
			}
		})
	}
	net.Sim.RunUntil(60 * sim.Second)

	fmt.Printf("\nsent %d datagrams through 25%% loss: %d delivered, in order, exactly once\n",
		msgs, delivered)
	fmt.Printf("sender: %d retransmits, %d acked; receiver absorbed %d duplicates\n",
		tx.Stats().Retransmits, tx.Stats().Acked, mb.Stats().Duplicates)
	fmt.Printf("UDP and TCP on the same hosts never saw a byte of it (tcp segs in: %d)\n",
		b.TCP.Stats().SegsIn)
}
