// Quickstart: build a two-host simulated network, open UDP endpoints through
// the protocol managers, and measure an application-to-application round
// trip — the smallest complete use of the Plexus reproduction.
package main

import (
	"fmt"
	"log"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func main() {
	// Two SPIN hosts on a 10Mb/s Ethernet, ARP pre-resolved.
	net, client, server, err := plexus.TwoHosts(42, netdev.EthernetModel(),
		plexus.HostSpec{Name: "client", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
		plexus.HostSpec{Name: "server", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt})
	if err != nil {
		log.Fatal(err)
	}

	// The server extension: echo everything. Opening an endpoint asks the
	// UDP protocol manager to install a guard/handler pair on the
	// manager's behalf; the handler runs in the network interrupt.
	var echo *plexus.UDPApp
	echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7},
		func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = echo.Send(t, src, srcPort, data)
		})
	if err != nil {
		log.Fatal(err)
	}

	// The client extension: send one datagram, report the round trip.
	var sendTime sim.Time
	capp, err := client.OpenUDP(plexus.UDPAppOptions{},
		func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			fmt.Printf("echo of %q came back in %v\n", data, t.Now()-sendTime)
		})
	if err != nil {
		log.Fatal(err)
	}
	client.Spawn("client", func(t *sim.Task) {
		sendTime = t.Now()
		if err := capp.Send(t, server.Addr(), 7, []byte("hello, plexus")); err != nil {
			log.Fatal(err)
		}
	})

	// Run the simulation to quiescence.
	net.Sim.Run()
	fmt.Printf("simulated %v of virtual time in %d events\n", net.Sim.Now(), net.Sim.Executed())
}
