module plexus

go 1.22
