// Package udp implements the UDP node of the protocol graph and its protocol
// manager — the component that §3.1 charges with preventing spoofing and
// snooping.
//
// Anti-snooping: applications never install handlers on UDP.PacketRecv
// themselves; they ask the manager to Open an endpoint, and the manager
// installs a guard that matches only that endpoint's port (and, if connected,
// the remote address), so an extension can observe exactly the packets it is
// entitled to.
//
// Anti-spoofing: an endpoint's Send has no parameter for the source fields at
// all — the manager overwrites them with the endpoint's identity. For
// extensions that build their own headers (SendRaw), the manager offers the
// paper's two policies: overwrite the source fields (fast) or verify them and
// reject mismatches (useful when debugging protocols).
package udp

import (
	"errors"
	"fmt"

	"plexus/internal/event"
	"plexus/internal/icmp"
	"plexus/internal/ip"
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// RecvEvent carries IP datagrams (proto UDP, IP header intact) that passed
// the UDP layer's validation; endpoint guards demultiplex on it.
const RecvEvent event.Name = "UDP.PacketRecv"

// SendEvent is raised (when observed) for every outgoing UDP datagram.
const SendEvent event.Name = "UDP.PacketSend"

// SpoofPolicy selects how SendRaw treats the source fields (§3.1).
type SpoofPolicy int

const (
	// Overwrite stamps the endpoint's identity over the source fields —
	// "the best performance".
	Overwrite SpoofPolicy = iota
	// Verify checks the source fields against the endpoint and rejects
	// mismatches — "useful for debugging protocols".
	Verify
)

// Errors.
var (
	// ErrPortInUse reports a bind conflict.
	ErrPortInUse = errors.New("udp: port in use")
	// ErrSpoof reports a Verify-policy source mismatch.
	ErrSpoof = errors.New("udp: source fields do not match endpoint")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("udp: endpoint closed")
)

// Stats counts UDP activity.
type Stats struct {
	Sent          uint64
	Received      uint64
	Delivered     uint64
	BadChecksum   uint64
	BadHeader     uint64
	NoPort        uint64
	SpoofsBlocked uint64
}

// Manager is the UDP protocol manager for one host.
type Manager struct {
	sim   *sim.Sim
	ip    *ip.Layer
	icmp  *icmp.Layer // may be nil; used for port-unreachable
	disp  *event.Dispatcher
	raise event.Raiser
	// recvRef/sendRef are the manager's resolved event handles for the
	// per-datagram path.
	recvRef *event.Ref
	sendRef *event.Ref
	pool    *mbuf.Pool
	costs   osmodel.Costs

	ports map[uint16]*Endpoint
	// claimed ports belong to another UDP implementation in the graph;
	// this manager's guard skips them entirely.
	claimed       map[uint16]bool
	nextEphemeral uint16
	stats         Stats
	// requireEphemeral propagates the stack's interrupt-mode policy to
	// endpoint handler installation.
	requireEphemeral bool
}

// Config wires a Manager.
type Config struct {
	Sim   *sim.Sim
	IP    *ip.Layer
	ICMP  *icmp.Layer
	Disp  *event.Dispatcher
	Raise event.Raiser
	Pool  *mbuf.Pool
	Costs osmodel.Costs
	// RequireEphemeral rejects non-EPHEMERAL endpoint receive handlers,
	// the §3.3 policy for interrupt-level dispatch.
	RequireEphemeral bool
}

// New creates the manager, declares the UDP events, and installs the UDP
// layer's guard/handler on IP.PacketRecv.
func New(cfg Config) (*Manager, error) {
	m := &Manager{
		sim:              cfg.Sim,
		ip:               cfg.IP,
		icmp:             cfg.ICMP,
		disp:             cfg.Disp,
		raise:            cfg.Raise,
		pool:             cfg.Pool,
		costs:            cfg.Costs,
		ports:            make(map[uint16]*Endpoint),
		claimed:          make(map[uint16]bool),
		nextEphemeral:    49152,
		requireEphemeral: cfg.RequireEphemeral,
	}
	if err := cfg.Disp.Declare(RecvEvent, event.Options{RequireEphemeral: cfg.RequireEphemeral}); err != nil {
		return nil, err
	}
	if err := cfg.Disp.Declare(SendEvent, event.Options{}); err != nil {
		return nil, err
	}
	m.recvRef = cfg.Disp.Ref(RecvEvent)
	m.sendRef = cfg.Disp.Ref(SendEvent)
	guard := func(t *sim.Task, pkt *mbuf.Mbuf) bool {
		if !icmp.ProtoGuard(view.IPProtoUDP)(t, pkt) {
			return false
		}
		if len(m.claimed) == 0 {
			return true
		}
		ipv, err := view.IPv4(pkt.Bytes())
		if err != nil {
			return false
		}
		var hb [view.UDPHdrLen]byte
		if err := pkt.CopyTo(ipv.HdrLen(), hb[:]); err != nil {
			return false
		}
		uv, _ := view.UDP(hb[:])
		return !m.claimed[uv.DstPort()] && !m.claimed[uv.SrcPort()]
	}
	_, err := cfg.Disp.Install(ip.RecvEvent, guard,
		event.Ephemeral("udp.input", m.input), 0)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats { return m.stats }

// Claim cedes a port to another UDP implementation in the graph. It fails if
// the port is locally bound.
func (m *Manager) Claim(port uint16) error {
	if _, used := m.ports[port]; used {
		return fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	m.claimed[port] = true
	return nil
}

// Unclaim returns a claimed port to this manager.
func (m *Manager) Unclaim(port uint16) { delete(m.claimed, port) }

// LocalAddr returns the host's IP address.
func (m *Manager) LocalAddr() view.IP4 { return m.ip.Addr() }

// input validates a UDP datagram and raises UDP.PacketRecv for endpoint
// guards; datagrams for closed ports trigger port-unreachable.
func (m *Manager) input(t *sim.Task, pkt *mbuf.Mbuf) {
	t.ChargeProf(sim.ProfProto, "udp", m.costs.UDPProc)
	if hdr := pkt.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "udp", "recv", hdr.Len)
	}
	m.stats.Received++
	ipv, err := view.IPv4(pkt.Bytes())
	if err != nil {
		m.stats.BadHeader++
		pkt.Free()
		return
	}
	hl := ipv.HdrLen()
	var hb [view.UDPHdrLen]byte
	if err := pkt.CopyTo(hl, hb[:]); err != nil {
		m.stats.BadHeader++
		pkt.Free()
		return
	}
	uv, _ := view.UDP(hb[:])
	ulen := uv.Length()
	if ulen < view.UDPHdrLen || hl+ulen > pkt.PktLen() {
		m.stats.BadHeader++
		pkt.Free()
		return
	}
	// Verify the checksum when the sender computed one (0 = disabled, the
	// paper's §1.1 application-specific variant).
	if uv.Checksum() != 0 {
		t.ChargeBytesProf(sim.ProfChecksum, "udp", ulen, m.costs.ChecksumPerByte)
		a := view.PseudoHeader(ipv.Src(), ipv.Dst(), view.IPProtoUDP, ulen)
		if err := ip.ChecksumChain(&a, pkt, hl, ulen); err != nil || a.Fold() != 0 {
			m.stats.BadChecksum++
			pkt.Free()
			return
		}
	}
	if m.raise.RaiseRef(t, m.recvRef, pkt) == 0 {
		m.stats.NoPort++
		if m.icmp != nil {
			if err := m.icmp.SendUnreachable(t, pkt); err != nil {
				m.sim.Tracef(sim.TraceProto, "udp: unreachable send failed: %v", err)
			}
		}
		pkt.Free()
		return
	}
	m.stats.Delivered++
}

// allocEphemeral picks a free high port.
func (m *Manager) allocEphemeral() (uint16, error) {
	for i := 0; i < 16384; i++ {
		p := m.nextEphemeral
		m.nextEphemeral++
		if m.nextEphemeral == 0 {
			m.nextEphemeral = 49152
		}
		if _, used := m.ports[p]; !used && p != 0 {
			return p, nil
		}
	}
	return 0, errors.New("udp: out of ephemeral ports")
}

// RecvFunc receives a delivered datagram: the payload (read-only packet
// positioned at the payload bytes), the source address/port, and the task.
type RecvFunc func(t *sim.Task, payload *mbuf.Mbuf, src view.IP4, srcPort uint16)

// EndpointOptions configure Open.
type EndpointOptions struct {
	// Port 0 allocates an ephemeral port.
	Port uint16
	// Remote/RemotePort, when nonzero, "connect" the endpoint: the guard
	// also filters on the peer, and datagrams from others are invisible.
	Remote     view.IP4
	RemotePort uint16
	// DisableChecksum omits the UDP checksum on sends — the §1.1
	// application-specific optimization for audio/video.
	DisableChecksum bool
	// SpoofPolicy applies to SendRaw (default Overwrite).
	SpoofPolicy SpoofPolicy
	// Ephemeral marks the receive handler EPHEMERAL (required on
	// interrupt-dispatch stacks).
	Ephemeral bool
	// Allotment bounds each receive-handler invocation (0 = unlimited).
	Allotment sim.Time
	// AcceptMulticast also matches datagrams addressed to multicast
	// groups (the network-video client sets this).
	AcceptMulticast bool
}

// Endpoint is the capability to send and receive on a bound UDP port. It is
// handed out only by the manager; holding it is holding the §3.1 "right to
// raise the PacketSend event".
type Endpoint struct {
	mgr     *Manager
	opts    EndpointOptions
	port    uint16
	binding *event.Binding
	recv    RecvFunc
	closed  bool
}

// Open binds a port and installs the endpoint's guard and handler on
// UDP.PacketRecv on the application's behalf.
func (m *Manager) Open(opts EndpointOptions, recv RecvFunc) (*Endpoint, error) {
	port := opts.Port
	if port == 0 {
		p, err := m.allocEphemeral()
		if err != nil {
			return nil, err
		}
		port = p
	} else if _, used := m.ports[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	} else if m.claimed[port] {
		return nil, fmt.Errorf("%w: %d (claimed by another implementation)", ErrPortInUse, port)
	}
	e := &Endpoint{mgr: m, opts: opts, port: port, recv: recv}
	guard := e.guard()
	h := event.Handler{Name: fmt.Sprintf("udp.endpoint:%d", port), Fn: e.deliver, Ephemeral: opts.Ephemeral}
	b, err := m.disp.Install(RecvEvent, guard, h, opts.Allotment)
	if err != nil {
		return nil, err
	}
	e.binding = b
	m.ports[port] = e
	return e, nil
}

// guard builds the endpoint's packet filter: destination port must match, the
// destination address must be ours (or multicast if accepted), and for
// connected endpoints the source must be the peer. This is the anti-snooping
// edge of Figure 1.
func (e *Endpoint) guard() event.Guard {
	return func(t *sim.Task, pkt *mbuf.Mbuf) bool {
		ipv, err := view.IPv4(pkt.Bytes())
		if err != nil {
			return false
		}
		hl := ipv.HdrLen()
		var hb [view.UDPHdrLen]byte
		if err := pkt.CopyTo(hl, hb[:]); err != nil {
			return false
		}
		uv, _ := view.UDP(hb[:])
		if uv.DstPort() != e.port {
			return false
		}
		dst := ipv.Dst()
		if dst != e.mgr.ip.Addr() && !dst.IsBroadcast() &&
			!(e.opts.AcceptMulticast && dst.IsMulticast()) {
			return false
		}
		if e.opts.Remote != (view.IP4{}) && ipv.Src() != e.opts.Remote {
			return false
		}
		if e.opts.RemotePort != 0 && uv.SrcPort() != e.opts.RemotePort {
			return false
		}
		return true
	}
}

// deliver strips headers and hands the payload to the application.
func (e *Endpoint) deliver(t *sim.Task, pkt *mbuf.Mbuf) {
	ipv, err := view.IPv4(pkt.Bytes())
	if err != nil {
		pkt.Free()
		return
	}
	hl := ipv.HdrLen()
	var hb [view.UDPHdrLen]byte
	if err := pkt.CopyTo(hl, hb[:]); err != nil {
		pkt.Free()
		return
	}
	uv, _ := view.UDP(hb[:])
	src, srcPort := ipv.Src(), uv.SrcPort()
	// Trim trailing padding beyond the UDP length, then strip the IP and
	// UDP headers so the application sees exactly its payload.
	if extra := pkt.PktLen() - hl - uv.Length(); extra > 0 {
		pkt.Adj(-extra)
	}
	pkt.Adj(hl + view.UDPHdrLen)
	if hdr := pkt.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "udp", "deliver", hdr.Len)
	}
	if e.recv != nil {
		e.recv(t, pkt, src, srcPort)
	} else {
		pkt.Free()
	}
}

// Port returns the endpoint's bound port.
func (e *Endpoint) Port() uint16 { return e.port }

// Manager returns the owning manager.
func (e *Endpoint) Manager() *Manager { return e.mgr }

// Send transmits payload (consumed) to dst:dstPort. The source fields are the
// endpoint's identity; there is no way to spoof them through this interface.
func (e *Endpoint) Send(t *sim.Task, dst view.IP4, dstPort uint16, payload *mbuf.Mbuf) error {
	if e.closed {
		payload.Free()
		return ErrClosed
	}
	t.ChargeProf(sim.ProfProto, "udp", e.mgr.costs.UDPProc)
	// Stamp the lifecycle span at transport entry for locally originated
	// traffic; it rides the PktHdr through every header operation below.
	if s := t.Sim(); s.MetricsEnabled() {
		if hdr := payload.Hdr(); hdr != nil && hdr.Span == 0 {
			hdr.Span = s.NextSpan()
		}
	}
	seg, err := payload.Prepend(view.UDPHdrLen)
	if err != nil {
		payload.Free()
		return fmt.Errorf("udp: %w", err)
	}
	b, err := seg.MutableBytes()
	if err != nil {
		seg.Free()
		return fmt.Errorf("udp: %w", err)
	}
	uv, err := view.UDP(b)
	if err != nil {
		seg.Free()
		return err
	}
	uv.SetSrcPort(e.port)
	uv.SetDstPort(dstPort)
	uv.SetLength(seg.PktLen())
	uv.SetChecksum(0)
	if !e.opts.DisableChecksum {
		t.ChargeBytesProf(sim.ProfChecksum, "udp", seg.PktLen(), e.mgr.costs.ChecksumPerByte)
		a := view.PseudoHeader(e.mgr.ip.Addr(), dst, view.IPProtoUDP, seg.PktLen())
		if err := ip.ChecksumChain(&a, seg, 0, seg.PktLen()); err != nil {
			seg.Free()
			return err
		}
		c := a.Fold()
		if c == 0 {
			c = 0xffff // RFC 768: transmitted 0 means "no checksum"
		}
		uv.SetChecksum(c)
	}
	e.mgr.stats.Sent++
	if hdr := seg.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "udp", "send", hdr.Len)
	}
	if e.mgr.sendRef.HandlerCount() > 0 {
		e.mgr.raise.RaiseRef(t, e.mgr.sendRef, seg)
	}
	return e.mgr.ip.Send(t, view.IP4{}, dst, view.IPProtoUDP, seg)
}

// SendRaw transmits a datagram whose UDP header the caller already built
// (seg starts at the UDP header; consumed). The manager applies the
// endpoint's spoof policy to the source port before transmission.
func (e *Endpoint) SendRaw(t *sim.Task, dst view.IP4, seg *mbuf.Mbuf) error {
	if e.closed {
		seg.Free()
		return ErrClosed
	}
	t.ChargeProf(sim.ProfProto, "udp", e.mgr.costs.UDPProc)
	if s := t.Sim(); s.MetricsEnabled() {
		if hdr := seg.Hdr(); hdr != nil && hdr.Span == 0 {
			hdr.Span = s.NextSpan()
		}
	}
	b, err := seg.MutableBytes()
	if err != nil {
		seg.Free()
		return fmt.Errorf("udp: %w", err)
	}
	uv, err := view.UDP(b)
	if err != nil {
		seg.Free()
		return err
	}
	switch e.opts.SpoofPolicy {
	case Verify:
		if uv.SrcPort() != e.port {
			e.mgr.stats.SpoofsBlocked++
			seg.Free()
			return fmt.Errorf("%w: port %d on endpoint %d", ErrSpoof, uv.SrcPort(), e.port)
		}
	default: // Overwrite
		uv.SetSrcPort(e.port)
	}
	e.mgr.stats.Sent++
	return e.mgr.ip.Send(t, view.IP4{}, dst, view.IPProtoUDP, seg)
}

// Close releases the port and uninstalls the endpoint's handler. Extensions
// come and go with their applications (§1: runtime adaptation).
func (e *Endpoint) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.mgr.disp.Uninstall(e.binding)
	delete(e.mgr.ports, e.port)
}
