package udp_test

import (
	"errors"
	"testing"

	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/udp"
	"plexus/internal/view"
)

func spin(name string) plexus.HostSpec {
	return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

func pair(t *testing.T) (*plexus.Network, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	n, a, b, err := plexus.TwoHosts(1, netdev.EthernetModel(), spin("a"), spin("b"))
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestPortInUse(t *testing.T) {
	_, a, _ := pair(t)
	if _, err := a.UDP.Open(udp.EndpointOptions{Port: 100, Ephemeral: true}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.UDP.Open(udp.EndpointOptions{Port: 100, Ephemeral: true}, nil); !errors.Is(err, udp.ErrPortInUse) {
		t.Fatalf("err = %v, want ErrPortInUse", err)
	}
}

func TestEphemeralAllocationUniqueness(t *testing.T) {
	_, a, _ := pair(t)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		ep, err := a.UDP.Open(udp.EndpointOptions{Ephemeral: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ep.Port()] {
			t.Fatalf("duplicate ephemeral port %d", ep.Port())
		}
		seen[ep.Port()] = true
	}
}

func TestClosedEndpointSendFails(t *testing.T) {
	n, a, b := pair(t)
	ep, err := a.UDP.Open(udp.EndpointOptions{Ephemeral: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
	ep.Close() // idempotent
	a.Spawn("send", func(task *sim.Task) {
		m := a.Host.Pool.FromBytes([]byte("x"), 64)
		if err := ep.Send(task, b.Addr(), 9, m); !errors.Is(err, udp.ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
	n.Sim.Run()
	if inuse := a.Host.Pool.Stats().InUse; inuse != 0 {
		t.Errorf("leaked %d mbufs on closed-endpoint send", inuse)
	}
}

// buildRawSegment assembles a UDP header + payload claiming srcPort.
func buildRawSegment(st *plexus.Stack, srcPort, dstPort uint16, payload []byte) *mbuf.Mbuf {
	seg := st.Host.Pool.FromBytes(make([]byte, view.UDPHdrLen+len(payload)), 64)
	b, _ := seg.MutableBytes()
	uv, _ := view.UDP(b)
	uv.SetSrcPort(srcPort)
	uv.SetDstPort(dstPort)
	uv.SetLength(seg.PktLen())
	copy(b[view.UDPHdrLen:], payload)
	return seg
}

// SendRaw under the two §3.1 anti-spoofing policies.
func TestSendRawOverwritePolicy(t *testing.T) {
	n, a, b := pair(t)
	var gotSrcPort uint16
	if _, err := b.UDP.Open(udp.EndpointOptions{Port: 9, Ephemeral: true},
		func(task *sim.Task, payload *mbuf.Mbuf, src view.IP4, srcPort uint16) {
			gotSrcPort = srcPort
			payload.Free()
		}); err != nil {
		t.Fatal(err)
	}
	ep, err := a.UDP.Open(udp.EndpointOptions{Ephemeral: true, SpoofPolicy: udp.Overwrite}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		// Claim a forged source port: the manager overwrites it.
		seg := buildRawSegment(a, 31337, 9, []byte("spoofed"))
		if err := ep.SendRaw(task, b.Addr(), seg); err != nil {
			t.Errorf("SendRaw: %v", err)
		}
	})
	n.Sim.Run()
	if gotSrcPort != ep.Port() {
		t.Fatalf("receiver saw source port %d, want the endpoint's %d (overwrite policy)", gotSrcPort, ep.Port())
	}
}

func TestSendRawVerifyPolicyBlocksSpoof(t *testing.T) {
	n, a, b := pair(t)
	received := 0
	if _, err := b.UDP.Open(udp.EndpointOptions{Port: 9, Ephemeral: true},
		func(task *sim.Task, payload *mbuf.Mbuf, src view.IP4, srcPort uint16) {
			received++
			payload.Free()
		}); err != nil {
		t.Fatal(err)
	}
	ep, err := a.UDP.Open(udp.EndpointOptions{Ephemeral: true, SpoofPolicy: udp.Verify}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var spoofErr, okErr error
	a.Spawn("send", func(task *sim.Task) {
		spoofErr = ep.SendRaw(task, b.Addr(), buildRawSegment(a, 31337, 9, []byte("forged")))
		okErr = ep.SendRaw(task, b.Addr(), buildRawSegment(a, ep.Port(), 9, []byte("legit")))
	})
	n.Sim.Run()
	if !errors.Is(spoofErr, udp.ErrSpoof) {
		t.Fatalf("spoofed SendRaw: err = %v, want ErrSpoof", spoofErr)
	}
	if okErr != nil {
		t.Fatalf("legitimate SendRaw failed: %v", okErr)
	}
	if received != 1 {
		t.Fatalf("received = %d, want only the legitimate datagram", received)
	}
	if a.UDP.Stats().SpoofsBlocked != 1 {
		t.Errorf("SpoofsBlocked = %d", a.UDP.Stats().SpoofsBlocked)
	}
}

// A datagram whose UDP checksum is corrupted in flight must be dropped.
func TestChecksumValidationDrops(t *testing.T) {
	n, a, b := pair(t)
	received := 0
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(*sim.Task, []byte, view.IP4, uint16) {
		received++
	}); err != nil {
		t.Fatal(err)
	}
	n.Link.SetMangleFn(func(wire []byte) {
		if len(wire) > 45 {
			wire[45] ^= 0x01 // flip a payload bit; UDP checksum must catch it
		}
	})
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 9, []byte("checksummed"))
	})
	n.Sim.Run()
	if received != 0 {
		t.Fatal("corrupted datagram delivered")
	}
	if b.UDP.Stats().BadChecksum != 1 {
		t.Errorf("BadChecksum = %d", b.UDP.Stats().BadChecksum)
	}
}

// With the checksum disabled, the same corruption goes undetected — the
// application opted out of integrity (paper §1.1: "data integrity is
// optional").
func TestChecksumDisabledMissesCorruption(t *testing.T) {
	n, a, b := pair(t)
	var got []byte
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		got = data
	}); err != nil {
		t.Fatal(err)
	}
	n.Link.SetMangleFn(func(wire []byte) {
		if len(wire) > 45 {
			wire[45] ^= 0x01
		}
	})
	capp, err := a.OpenUDP(plexus.UDPAppOptions{DisableChecksum: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 9, []byte("unprotected"))
	})
	n.Sim.Run()
	if got == nil {
		t.Fatal("checksum-disabled datagram not delivered")
	}
	if string(got) == "unprotected" {
		t.Fatal("mangle did not corrupt the payload; test is vacuous")
	}
}

// Claimed ports are invisible to the manager.
func TestClaimedPortInvisible(t *testing.T) {
	n, a, b := pair(t)
	if err := b.UDP.Claim(9); err != nil {
		t.Fatal(err)
	}
	received := 0
	// Binding the claimed port must fail: it belongs to the other
	// implementation now.
	if _, err := b.UDP.Open(udp.EndpointOptions{Port: 9, Ephemeral: true}, nil); !errors.Is(err, udp.ErrPortInUse) {
		t.Fatalf("claimed port bindable: %v", err)
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 9, []byte("hidden"))
	})
	n.Sim.Run()
	if received != 0 {
		t.Fatal("claimed-port datagram reached the manager")
	}
	// The manager's guard rejected it wholesale: not even counted as
	// received, and no port-unreachable generated.
	if b.UDP.Stats().Received != 0 {
		t.Errorf("Received = %d, want 0 for claimed port", b.UDP.Stats().Received)
	}
	if b.ICMP.Stats().UnreachSent != 0 {
		t.Errorf("UnreachSent = %d; claimed traffic belongs to another implementation", b.ICMP.Stats().UnreachSent)
	}
	b.UDP.Unclaim(9)
	a.Spawn("send2", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 9, []byte("visible"))
	})
	n.Sim.Run()
	if b.UDP.Stats().Received != 1 {
		t.Errorf("after Unclaim, Received = %d", b.UDP.Stats().Received)
	}
}

func TestClaimBoundPortFails(t *testing.T) {
	_, a, _ := pair(t)
	if _, err := a.UDP.Open(udp.EndpointOptions{Port: 70, Ephemeral: true}, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.UDP.Claim(70); !errors.Is(err, udp.ErrPortInUse) {
		t.Fatalf("err = %v, want ErrPortInUse", err)
	}
}

func TestManagerAccessors(t *testing.T) {
	_, a, _ := pair(t)
	if a.UDP.LocalAddr() != a.Addr() {
		t.Error("LocalAddr wrong")
	}
	ep, err := a.UDP.Open(udp.EndpointOptions{Port: 123, Ephemeral: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Port() != 123 || ep.Manager() != a.UDP {
		t.Error("endpoint accessors wrong")
	}
}
