package httpx

import (
	"strings"
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
)

func twoHosts(t *testing.T, serverP osmodel.Personality) (*plexus.Network, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		plexus.HostSpec{Name: "client", Personality: osmodel.SPIN},
		plexus.HostSpec{Name: "server", Personality: serverP})
	if err != nil {
		t.Fatal(err)
	}
	return n, client, server
}

func handler(t *sim.Task, req *Request) Response {
	switch req.Path {
	case "/":
		return Response{Status: 200, Body: []byte("hello from plexus\n")}
	case "/big":
		return Response{Status: 200, Body: make([]byte, 20000)}
	default:
		return Response{Status: 404, Body: []byte("not found\n")}
	}
}

func TestHTTPGet(t *testing.T) {
	n, client, server := twoHosts(t, osmodel.SPIN)
	srv, err := Serve(server, 80, handler)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	var gotErr error
	ok := false
	client.Spawn("get", func(task *sim.Task) {
		err := Get(task, client, server.Addr(), 80, "/", func(t2 *sim.Task, r Result, err error) {
			res, gotErr, ok = r, err, true
		})
		if err != nil {
			t.Errorf("get: %v", err)
		}
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if !ok {
		t.Fatal("no response")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if res.Status != 200 || string(res.Body) != "hello from plexus\n" {
		t.Fatalf("res = %d %q", res.Status, res.Body)
	}
	if res.Headers["content-type"] != "text/plain" {
		t.Errorf("content-type = %q", res.Headers["content-type"])
	}
	if res.Latency <= 0 {
		t.Error("no latency measured")
	}
	if srv.Stats().Requests != 1 {
		t.Errorf("server requests = %d", srv.Stats().Requests)
	}
}

func TestHTTPNotFound(t *testing.T) {
	n, client, server := twoHosts(t, osmodel.SPIN)
	if _, err := Serve(server, 80, handler); err != nil {
		t.Fatal(err)
	}
	var status int
	client.Spawn("get", func(task *sim.Task) {
		_ = Get(task, client, server.Addr(), 80, "/missing", func(t2 *sim.Task, r Result, err error) {
			status = r.Status
		})
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if status != 404 {
		t.Fatalf("status = %d", status)
	}
}

func TestHTTPLargeBodySpansSegments(t *testing.T) {
	n, client, server := twoHosts(t, osmodel.SPIN)
	if _, err := Serve(server, 80, handler); err != nil {
		t.Fatal(err)
	}
	var body []byte
	var gotErr error
	client.Spawn("get", func(task *sim.Task) {
		_ = Get(task, client, server.Addr(), 80, "/big", func(t2 *sim.Task, r Result, err error) {
			body, gotErr = r.Body, err
		})
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(body) != 20000 {
		t.Fatalf("body length = %d", len(body))
	}
}

func TestHTTPBadRequest(t *testing.T) {
	n, client, server := twoHosts(t, osmodel.SPIN)
	srv, err := Serve(server, 80, handler)
	if err != nil {
		t.Fatal(err)
	}
	var raw []byte
	client.Spawn("raw", func(task *sim.Task) {
		_, err := client.ConnectTCP(task, server.Addr(), 80, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, []byte("NONSENSE\r\n\r\n"))
			},
			OnRecv: func(t2 *sim.Task, conn *plexus.TCPApp, data []byte) {
				raw = append(raw, data...)
			},
			OnPeerFin: func(t2 *sim.Task, conn *plexus.TCPApp) { conn.Close(t2) },
		})
		if err != nil {
			t.Error(err)
		}
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if !strings.HasPrefix(string(raw), "HTTP/1.0 400") {
		t.Fatalf("raw = %q", raw)
	}
	if srv.Stats().BadRequests != 1 {
		t.Errorf("BadRequests = %d", srv.Stats().BadRequests)
	}
}

// The same server code runs as a monolithic user process; the SPIN extension
// answers faster.
func TestHTTPServerPersonalityLatency(t *testing.T) {
	measure := func(p osmodel.Personality) sim.Time {
		n, client, server := twoHosts(t, p)
		if _, err := Serve(server, 80, handler); err != nil {
			t.Fatal(err)
		}
		var lat sim.Time
		client.Spawn("get", func(task *sim.Task) {
			_ = Get(task, client, server.Addr(), 80, "/", func(t2 *sim.Task, r Result, err error) {
				lat = r.Latency
			})
		})
		n.Sim.RunUntil(5 * 60 * sim.Second)
		if lat == 0 {
			t.Fatal("no response")
		}
		return lat
	}
	spin := measure(osmodel.SPIN)
	dux := measure(osmodel.Monolithic)
	t.Logf("HTTP GET latency: SPIN server %v, DUX server %v", spin, dux)
	if dux <= spin {
		t.Errorf("monolithic server (%v) should be slower than SPIN (%v)", dux, spin)
	}
}

// Several clients fetch concurrently; HTTP/1.0 one-connection-per-request
// keeps them independent.
func TestHTTPConcurrentClients(t *testing.T) {
	n, client, server := twoHosts(t, osmodel.SPIN)
	if _, err := Serve(server, 80, handler); err != nil {
		t.Fatal(err)
	}
	results := map[string]int{}
	for i := 0; i < 8; i++ {
		path := "/"
		if i%2 == 1 {
			path = "/paper"
		}
		at := sim.Time(i) * 100 * sim.Microsecond // overlapping connections
		p := path
		client.SpawnAt(at, "get", func(task *sim.Task) {
			_ = Get(task, client, server.Addr(), 80, p, func(t2 *sim.Task, r Result, err error) {
				if err != nil {
					t.Errorf("GET %s: %v", p, err)
					return
				}
				results[p]++
			})
		})
	}
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if results["/"] != 4 || results["/paper"] != 4 {
		t.Fatalf("results = %v", results)
	}
}
