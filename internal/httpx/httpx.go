// Package httpx implements a minimal HTTP/1.0 server and client over the
// reproduction's own TCP — the protocol the paper's concluding demo serves
// ("A demonstration of the protocol stack as it services HTTP requests").
// On a SPIN host the server is an in-kernel extension; on a monolithic host
// it is an ordinary user process; the same handler code runs either way.
package httpx

import (
	"fmt"
	"strconv"
	"strings"

	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Request is a parsed HTTP request line plus headers.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
}

// Response is what a handler returns.
type Response struct {
	Status int
	Body   []byte
	// ContentType defaults to text/plain.
	ContentType string
}

// HandlerFunc serves one request.
type HandlerFunc func(t *sim.Task, req *Request) Response

// ServerStats counts server activity.
type ServerStats struct {
	Requests    uint64
	BadRequests uint64
	BytesOut    uint64
}

// Server is an HTTP/1.0 server bound to a port on one host.
type Server struct {
	st      *plexus.Stack
	handler HandlerFunc
	stats   ServerStats
}

// statusText covers the statuses the reproduction emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// Serve starts an HTTP server on port with the given handler.
func Serve(st *plexus.Stack, port uint16, handler HandlerFunc) (*Server, error) {
	s := &Server{st: st, handler: handler}
	_, err := st.ListenTCP(port, plexus.TCPAppOptions{}, func(t *sim.Task, conn *plexus.TCPApp) {
		var buf []byte
		opts := conn.Options()
		opts.OnRecv = func(t2 *sim.Task, c *plexus.TCPApp, data []byte) {
			buf = append(buf, data...)
			if idx := strings.Index(string(buf), "\r\n\r\n"); idx >= 0 {
				s.respond(t2, c, buf[:idx])
				buf = nil
			}
		}
		opts.OnPeerFin = func(t2 *sim.Task, c *plexus.TCPApp) { c.Close(t2) }
		conn.SetOptions(opts)
	})
	if err != nil {
		return nil, fmt.Errorf("httpx: %w", err)
	}
	return s, nil
}

// Stats returns a snapshot of counters.
func (s *Server) Stats() ServerStats { return s.stats }

func (s *Server) respond(t *sim.Task, c *plexus.TCPApp, head []byte) {
	req, err := parseRequest(string(head))
	var resp Response
	if err != nil {
		s.stats.BadRequests++
		resp = Response{Status: 400, Body: []byte(err.Error() + "\n")}
	} else {
		s.stats.Requests++
		resp = s.handler(t, req)
	}
	if resp.ContentType == "" {
		resp.ContentType = "text/plain"
	}
	out := fmt.Sprintf("HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		resp.Status, statusText(resp.Status), resp.ContentType, len(resp.Body))
	payload := append([]byte(out), resp.Body...)
	s.stats.BytesOut += uint64(len(payload))
	_ = c.Send(t, payload)
	c.Close(t) // HTTP/1.0: one request per connection
}

func parseRequest(head string) (*Request, error) {
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("httpx: empty request")
	}
	parts := strings.Fields(lines[0])
	if len(parts) != 3 {
		return nil, fmt.Errorf("httpx: malformed request line %q", lines[0])
	}
	req := &Request{Method: parts[0], Path: parts[1], Proto: parts[2], Headers: map[string]string{}}
	for _, l := range lines[1:] {
		if l == "" {
			continue
		}
		k, v, ok := strings.Cut(l, ":")
		if !ok {
			return nil, fmt.Errorf("httpx: malformed header %q", l)
		}
		req.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return req, nil
}

// Result is a fetched response.
type Result struct {
	Status  int
	Headers map[string]string
	Body    []byte
	// Latency is request-sent to response-complete.
	Latency sim.Time
}

// Get issues an HTTP/1.0 GET from the client host and delivers the parsed
// result to done when the server closes the connection.
func Get(t *sim.Task, client *plexus.Stack, server view.IP4, port uint16, path string, done func(t *sim.Task, r Result, err error)) error {
	var raw []byte
	var started sim.Time
	_, err := client.ConnectTCP(t, server, port, plexus.TCPAppOptions{
		OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
			started = t2.Now()
			req := fmt.Sprintf("GET %s HTTP/1.0\r\nHost: %s\r\n\r\n", path, server)
			_ = conn.Send(t2, []byte(req))
		},
		OnRecv: func(t2 *sim.Task, conn *plexus.TCPApp, data []byte) {
			raw = append(raw, data...)
		},
		OnPeerFin: func(t2 *sim.Task, conn *plexus.TCPApp) {
			conn.Close(t2)
			r, perr := parseResponse(raw)
			r.Latency = t2.Now() - started
			done(t2, r, perr)
		},
	})
	return err
}

func parseResponse(raw []byte) (Result, error) {
	s := string(raw)
	idx := strings.Index(s, "\r\n\r\n")
	if idx < 0 {
		return Result{}, fmt.Errorf("httpx: truncated response")
	}
	head, body := s[:idx], raw[idx+4:]
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return Result{}, fmt.Errorf("httpx: malformed status line %q", lines[0])
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return Result{}, fmt.Errorf("httpx: bad status %q", parts[1])
	}
	r := Result{Status: code, Headers: map[string]string{}, Body: body}
	for _, l := range lines[1:] {
		if k, v, ok := strings.Cut(l, ":"); ok {
			r.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
	if cl, ok := r.Headers["content-length"]; ok {
		want, err := strconv.Atoi(cl)
		if err == nil && want != len(body) {
			return r, fmt.Errorf("httpx: body length %d != Content-Length %d", len(body), want)
		}
	}
	return r, nil
}
