package view

import "encoding/binary"

// Internet checksum (RFC 1071), with an accumulator form so transport layers
// can checksum a pseudo-header followed by a payload that spans mbuf chains
// without gathering the bytes first.

// Accum accumulates the one's-complement sum of byte runs. The zero value is
// ready to use. Runs may be added in any chunking; odd-length chunks are
// handled by carrying the dangling byte.
type Accum struct {
	sum uint64
	odd bool
}

// Add folds b into the accumulator. Aligned runs are consumed eight bytes
// (four checksum words) per load — this is the per-packet hot loop of every
// modeled IP/UDP/TCP checksum, and the 64-bit accumulator defers all carry
// folding to Fold.
func (a *Accum) Add(b []byte) {
	i := 0
	if a.odd && len(b) > 0 {
		a.sum += uint64(b[0])
		a.odd = false
		i = 1
	}
	for ; i+8 <= len(b); i += 8 {
		v := binary.BigEndian.Uint64(b[i:])
		a.sum += v>>48 + v>>32&0xffff + v>>16&0xffff + v&0xffff
	}
	for ; i+1 < len(b); i += 2 {
		a.sum += uint64(b[i])<<8 | uint64(b[i+1])
	}
	if i < len(b) {
		a.sum += uint64(b[i]) << 8
		a.odd = true
	}
}

// AddUint16 folds one 16-bit value (for pseudo-header fields). It must not be
// called mid-byte (with an odd total so far).
func (a *Accum) AddUint16(v uint16) {
	if a.odd {
		panic("view: AddUint16 at odd offset")
	}
	a.sum += uint64(v)
}

// Fold finishes the sum and returns the complemented checksum.
func (a *Accum) Fold() uint16 {
	s := a.sum
	for s>>16 != 0 {
		s = (s & 0xffff) + (s >> 16)
	}
	return ^uint16(s)
}

// Checksum computes the internet checksum of b.
func Checksum(b []byte) uint16 {
	var a Accum
	a.Add(b)
	return a.Fold()
}

// PseudoHeader seeds an accumulator with the IPv4 pseudo-header used by UDP
// and TCP checksums.
func PseudoHeader(src, dst IP4, proto uint8, length int) Accum {
	var a Accum
	a.Add(src[:])
	a.Add(dst[:])
	a.AddUint16(uint16(proto))
	a.AddUint16(uint16(length))
	return a
}
