package view

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference implementation: straightforward RFC 1071 sum over one flat slice.
func refChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 §3: the 16-bit words 0x0001, 0xf203,
	// 0xf4f5, 0xf6f7 sum to 0xddf2 before complement.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Errorf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

func TestChecksumVerifyProperty(t *testing.T) {
	// Appending the checksum of b to b yields a buffer whose checksum is 0.
	f := func(b []byte) bool {
		if len(b)%2 == 1 {
			b = append(b, 0)
		}
		c := Checksum(b)
		whole := append(append([]byte(nil), b...), byte(c>>8), byte(c))
		return Checksum(whole) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Property: the accumulator gives the same answer regardless of how the input
// is chunked, including odd-length chunks.
func TestQuickAccumChunkingInvariance(t *testing.T) {
	f := func(b []byte, cuts []uint8) bool {
		want := refChecksum(b)
		var a Accum
		rest := b
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c) % (len(rest) + 1)
			a.Add(rest[:n])
			rest = rest[n:]
		}
		a.Add(rest)
		return a.Fold() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

func TestAccumAddUint16(t *testing.T) {
	var a Accum
	a.AddUint16(0x1234)
	a.Add([]byte{0x56, 0x78})
	if got, want := a.Fold(), refChecksum([]byte{0x12, 0x34, 0x56, 0x78}); got != want {
		t.Errorf("mixed accum = %#04x, want %#04x", got, want)
	}
}

func TestAccumAddUint16AtOddOffsetPanics(t *testing.T) {
	var a Accum
	a.Add([]byte{0x01})
	defer func() {
		if recover() == nil {
			t.Fatal("AddUint16 at odd offset did not panic")
		}
	}()
	a.AddUint16(7)
}

func TestPseudoHeader(t *testing.T) {
	src, dst := IP4{10, 0, 0, 1}, IP4{10, 0, 0, 2}
	payload := []byte{0xca, 0xfe, 0xba, 0xbe}
	a := PseudoHeader(src, dst, IPProtoUDP, len(payload))
	a.Add(payload)
	got := a.Fold()
	flat := []byte{
		10, 0, 0, 1,
		10, 0, 0, 2,
		0, IPProtoUDP,
		0, byte(len(payload)),
		0xca, 0xfe, 0xba, 0xbe,
	}
	if want := refChecksum(flat); got != want {
		t.Errorf("pseudo-header checksum = %#04x, want %#04x", got, want)
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}
