package view

// Header lengths and the EtherType / IP protocol numbers the stack speaks.
const (
	EthernetHdrLen = 14
	ARPHdrLen      = 28 // IPv4-over-Ethernet ARP
	IPv4MinHdrLen  = 20
	ICMPHdrLen     = 8
	UDPHdrLen      = 8
	TCPMinHdrLen   = 20
)

// EtherType values.
const (
	EtherTypeIPv4      = 0x0800
	EtherTypeARP       = 0x0806
	EtherTypeActiveMsg = 0x88B5 // local-experimental; the paper's active messages demux on the type field
)

// IP protocol numbers.
const (
	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17
)

// EthernetView is a typed view of an Ethernet II header.
type EthernetView struct{ b []byte }

// Ethernet validates that b holds an Ethernet header and returns its view.
func Ethernet(b []byte) (EthernetView, error) {
	if len(b) < EthernetHdrLen {
		return EthernetView{}, ErrShort
	}
	return EthernetView{b: b}, nil
}

// Dst returns the destination MAC.
func (v EthernetView) Dst() MAC { return MAC(v.b[0:6]) }

// Src returns the source MAC.
func (v EthernetView) Src() MAC { return MAC(v.b[6:12]) }

// EtherType returns the frame type field.
func (v EthernetView) EtherType() uint16 { return be16(v.b, 12) }

// SetDst writes the destination MAC.
func (v EthernetView) SetDst(m MAC) { copy(v.b[0:6], m[:]) }

// SetSrc writes the source MAC.
func (v EthernetView) SetSrc(m MAC) { copy(v.b[6:12], m[:]) }

// SetEtherType writes the frame type field.
func (v EthernetView) SetEtherType(t uint16) { put16(v.b, 12, t) }

// ARP opcodes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ARPView is a typed view of an IPv4-over-Ethernet ARP packet.
type ARPView struct{ b []byte }

// ARP validates b and returns an ARP view.
func ARP(b []byte) (ARPView, error) {
	if len(b) < ARPHdrLen {
		return ARPView{}, ErrShort
	}
	return ARPView{b: b}, nil
}

// HType returns the hardware type (1 = Ethernet).
func (v ARPView) HType() uint16 { return be16(v.b, 0) }

// PType returns the protocol type (0x0800 = IPv4).
func (v ARPView) PType() uint16 { return be16(v.b, 2) }

// Op returns the ARP opcode.
func (v ARPView) Op() uint16 { return be16(v.b, 6) }

// SenderMAC returns the sender hardware address.
func (v ARPView) SenderMAC() MAC { return MAC(v.b[8:14]) }

// SenderIP returns the sender protocol address.
func (v ARPView) SenderIP() IP4 { return IP4(v.b[14:18]) }

// TargetMAC returns the target hardware address.
func (v ARPView) TargetMAC() MAC { return MAC(v.b[18:24]) }

// TargetIP returns the target protocol address.
func (v ARPView) TargetIP() IP4 { return IP4(v.b[24:28]) }

// Init fills the fixed fields for Ethernet/IPv4 and the operands.
func (v ARPView) Init(op uint16, senderMAC MAC, senderIP IP4, targetMAC MAC, targetIP IP4) {
	put16(v.b, 0, 1)      // Ethernet
	put16(v.b, 2, 0x0800) // IPv4
	v.b[4] = 6            // hlen
	v.b[5] = 4            // plen
	put16(v.b, 6, op)
	copy(v.b[8:14], senderMAC[:])
	copy(v.b[14:18], senderIP[:])
	copy(v.b[18:24], targetMAC[:])
	copy(v.b[24:28], targetIP[:])
}

// IPv4 fragmentation flag bits (in the flags/fragment-offset word).
const (
	IPFlagDF = 0x4000 // don't fragment
	IPFlagMF = 0x2000 // more fragments
)

// IPv4View is a typed view of an IPv4 header.
type IPv4View struct{ b []byte }

// IPv4 validates that b holds at least a minimal IPv4 header, that the
// version is 4 and that the stated header length fits, then returns a view.
func IPv4(b []byte) (IPv4View, error) {
	if len(b) < IPv4MinHdrLen {
		return IPv4View{}, ErrShort
	}
	v := IPv4View{b: b}
	if v.Version() != 4 {
		return IPv4View{}, errBadVersion
	}
	if hl := v.HdrLen(); hl < IPv4MinHdrLen || hl > len(b) {
		return IPv4View{}, ErrShort
	}
	return v, nil
}

var errBadVersion = errorString("view: IP version is not 4")

type errorString string

func (e errorString) Error() string { return string(e) }

// Version returns the IP version field.
func (v IPv4View) Version() int { return int(v.b[0] >> 4) }

// HdrLen returns the header length in bytes (IHL×4).
func (v IPv4View) HdrLen() int { return int(v.b[0]&0x0f) * 4 }

// TOS returns the type-of-service byte.
func (v IPv4View) TOS() uint8 { return v.b[1] }

// TotalLen returns the datagram's total length.
func (v IPv4View) TotalLen() int { return int(be16(v.b, 2)) }

// ID returns the identification field.
func (v IPv4View) ID() uint16 { return be16(v.b, 4) }

// FlagsFrag returns the raw flags/fragment-offset word.
func (v IPv4View) FlagsFrag() uint16 { return be16(v.b, 6) }

// FragOffset returns the fragment offset in bytes.
func (v IPv4View) FragOffset() int { return int(be16(v.b, 6)&0x1fff) * 8 }

// MoreFragments reports the MF bit.
func (v IPv4View) MoreFragments() bool { return be16(v.b, 6)&IPFlagMF != 0 }

// DontFragment reports the DF bit.
func (v IPv4View) DontFragment() bool { return be16(v.b, 6)&IPFlagDF != 0 }

// TTL returns the time-to-live.
func (v IPv4View) TTL() uint8 { return v.b[8] }

// Proto returns the payload protocol number.
func (v IPv4View) Proto() uint8 { return v.b[9] }

// Checksum returns the header checksum field.
func (v IPv4View) Checksum() uint16 { return be16(v.b, 10) }

// Src returns the source address.
func (v IPv4View) Src() IP4 { return IP4(v.b[12:16]) }

// Dst returns the destination address.
func (v IPv4View) Dst() IP4 { return IP4(v.b[16:20]) }

// SetVersionIHL writes version 4 and a header length of hdrLen bytes.
func (v IPv4View) SetVersionIHL(hdrLen int) { v.b[0] = 0x40 | byte(hdrLen/4) }

// SetTOS writes the type-of-service byte.
func (v IPv4View) SetTOS(tos uint8) { v.b[1] = tos }

// SetTotalLen writes the total length.
func (v IPv4View) SetTotalLen(n int) { put16(v.b, 2, uint16(n)) }

// SetID writes the identification field.
func (v IPv4View) SetID(id uint16) { put16(v.b, 4, id) }

// SetFlagsFrag writes the raw flags/fragment-offset word; offsetBytes must be
// a multiple of 8.
func (v IPv4View) SetFlagsFrag(flags uint16, offsetBytes int) {
	put16(v.b, 6, flags|uint16(offsetBytes/8))
}

// SetTTL writes the time-to-live.
func (v IPv4View) SetTTL(ttl uint8) { v.b[8] = ttl }

// SetProto writes the payload protocol number.
func (v IPv4View) SetProto(p uint8) { v.b[9] = p }

// SetChecksum writes the header checksum field.
func (v IPv4View) SetChecksum(c uint16) { put16(v.b, 10, c) }

// SetSrc writes the source address.
func (v IPv4View) SetSrc(a IP4) { copy(v.b[12:16], a[:]) }

// SetDst writes the destination address.
func (v IPv4View) SetDst(a IP4) { copy(v.b[16:20], a[:]) }

// ComputeChecksum zeroes the checksum field, recomputes it over the header,
// and writes it back.
func (v IPv4View) ComputeChecksum() {
	v.SetChecksum(0)
	v.SetChecksum(Checksum(v.b[:v.HdrLen()]))
}

// VerifyChecksum reports whether the header checksum is valid.
func (v IPv4View) VerifyChecksum() bool {
	return Checksum(v.b[:v.HdrLen()]) == 0
}

// ICMP message types.
const (
	ICMPEchoReply      = 0
	ICMPDestUnreach    = 3
	ICMPEchoRequest    = 8
	ICMPTimeExceeded   = 11
	ICMPCodePortUnr    = 3 // code under DestUnreach
	ICMPCodeTTLExpired = 0 // code under TimeExceeded
)

// ICMPView is a typed view of an ICMP header.
type ICMPView struct{ b []byte }

// ICMP validates b and returns an ICMP view.
func ICMP(b []byte) (ICMPView, error) {
	if len(b) < ICMPHdrLen {
		return ICMPView{}, ErrShort
	}
	return ICMPView{b: b}, nil
}

// Type returns the ICMP type.
func (v ICMPView) Type() uint8 { return v.b[0] }

// Code returns the ICMP code.
func (v ICMPView) Code() uint8 { return v.b[1] }

// Checksum returns the checksum field.
func (v ICMPView) Checksum() uint16 { return be16(v.b, 2) }

// Ident returns the echo identifier.
func (v ICMPView) Ident() uint16 { return be16(v.b, 4) }

// Seq returns the echo sequence number.
func (v ICMPView) Seq() uint16 { return be16(v.b, 6) }

// SetType writes the ICMP type.
func (v ICMPView) SetType(t uint8) { v.b[0] = t }

// SetCode writes the ICMP code.
func (v ICMPView) SetCode(c uint8) { v.b[1] = c }

// SetChecksum writes the checksum field.
func (v ICMPView) SetChecksum(c uint16) { put16(v.b, 2, c) }

// SetIdent writes the echo identifier.
func (v ICMPView) SetIdent(id uint16) { put16(v.b, 4, id) }

// SetSeq writes the echo sequence number.
func (v ICMPView) SetSeq(s uint16) { put16(v.b, 6, s) }

// UDPView is a typed view of a UDP header.
type UDPView struct{ b []byte }

// UDP validates b and returns a UDP view.
func UDP(b []byte) (UDPView, error) {
	if len(b) < UDPHdrLen {
		return UDPView{}, ErrShort
	}
	return UDPView{b: b}, nil
}

// SrcPort returns the source port.
func (v UDPView) SrcPort() uint16 { return be16(v.b, 0) }

// DstPort returns the destination port.
func (v UDPView) DstPort() uint16 { return be16(v.b, 2) }

// Length returns the UDP length field (header + payload).
func (v UDPView) Length() int { return int(be16(v.b, 4)) }

// Checksum returns the checksum field (0 means "not computed").
func (v UDPView) Checksum() uint16 { return be16(v.b, 6) }

// SetSrcPort writes the source port.
func (v UDPView) SetSrcPort(p uint16) { put16(v.b, 0, p) }

// SetDstPort writes the destination port.
func (v UDPView) SetDstPort(p uint16) { put16(v.b, 2, p) }

// SetLength writes the length field.
func (v UDPView) SetLength(n int) { put16(v.b, 4, uint16(n)) }

// SetChecksum writes the checksum field.
func (v UDPView) SetChecksum(c uint16) { put16(v.b, 6, c) }

// TCP header flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// TCPView is a typed view of a TCP header.
type TCPView struct{ b []byte }

// TCP validates that b holds at least a minimal TCP header and that the
// stated data offset fits, then returns a view.
func TCP(b []byte) (TCPView, error) {
	if len(b) < TCPMinHdrLen {
		return TCPView{}, ErrShort
	}
	v := TCPView{b: b}
	if dl := v.DataOff(); dl < TCPMinHdrLen || dl > len(b) {
		return TCPView{}, ErrShort
	}
	return v, nil
}

// SrcPort returns the source port.
func (v TCPView) SrcPort() uint16 { return be16(v.b, 0) }

// DstPort returns the destination port.
func (v TCPView) DstPort() uint16 { return be16(v.b, 2) }

// Seq returns the sequence number.
func (v TCPView) Seq() uint32 { return be32(v.b, 4) }

// Ack returns the acknowledgment number.
func (v TCPView) Ack() uint32 { return be32(v.b, 8) }

// DataOff returns the header length in bytes.
func (v TCPView) DataOff() int { return int(v.b[12]>>4) * 4 }

// Flags returns the flag bits.
func (v TCPView) Flags() uint8 { return v.b[13] & 0x3f }

// Window returns the advertised receive window.
func (v TCPView) Window() uint16 { return be16(v.b, 14) }

// Checksum returns the checksum field.
func (v TCPView) Checksum() uint16 { return be16(v.b, 16) }

// UrgPtr returns the urgent pointer.
func (v TCPView) UrgPtr() uint16 { return be16(v.b, 18) }

// SetSrcPort writes the source port.
func (v TCPView) SetSrcPort(p uint16) { put16(v.b, 0, p) }

// SetDstPort writes the destination port.
func (v TCPView) SetDstPort(p uint16) { put16(v.b, 2, p) }

// SetSeq writes the sequence number.
func (v TCPView) SetSeq(s uint32) { put32(v.b, 4, s) }

// SetAck writes the acknowledgment number.
func (v TCPView) SetAck(a uint32) { put32(v.b, 8, a) }

// SetDataOff writes the header length (bytes, multiple of 4).
func (v TCPView) SetDataOff(n int) { v.b[12] = byte(n/4) << 4 }

// SetFlags writes the flag bits.
func (v TCPView) SetFlags(f uint8) { v.b[13] = f & 0x3f }

// SetWindow writes the advertised window.
func (v TCPView) SetWindow(w uint16) { put16(v.b, 14, w) }

// SetChecksum writes the checksum field.
func (v TCPView) SetChecksum(c uint16) { put16(v.b, 16, c) }

// SetUrgPtr writes the urgent pointer.
func (v TCPView) SetUrgPtr(p uint16) { put16(v.b, 18, p) }

// FlagString renders TCP flags like "SYN|ACK" for traces.
func FlagString(f uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{TCPFin, "FIN"}, {TCPSyn, "SYN"}, {TCPRst, "RST"},
		{TCPPsh, "PSH"}, {TCPAck, "ACK"}, {TCPUrg, "URG"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}
