package view

import (
	"errors"
	"strings"
	"testing"
)

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String() = %q", got)
	}
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Error("broadcast MAC classification wrong")
	}
	if m.IsBroadcast() || m.IsMulticast() {
		t.Error("unicast MAC misclassified")
	}
	if !(MAC{0x01, 0, 0x5e, 0, 0, 1}).IsMulticast() {
		t.Error("multicast MAC not detected")
	}
}

func TestIP4Conversions(t *testing.T) {
	a := IP4{10, 1, 2, 3}
	if a.String() != "10.1.2.3" {
		t.Errorf("String = %q", a.String())
	}
	if IP4FromUint32(a.Uint32()) != a {
		t.Error("Uint32 round trip failed")
	}
	if !(IP4{224, 0, 0, 1}).IsMulticast() || (IP4{223, 0, 0, 1}).IsMulticast() {
		t.Error("multicast classification wrong")
	}
	if !(IP4{255, 255, 255, 255}).IsBroadcast() || a.IsBroadcast() {
		t.Error("broadcast classification wrong")
	}
}

func TestScalarViews(t *testing.T) {
	b := []byte{0x12, 0x34, 0x56, 0x78}
	if v, err := U16(b, 1); err != nil || v != 0x3456 {
		t.Errorf("U16 = %#x, %v", v, err)
	}
	if v, err := U32(b, 0); err != nil || v != 0x12345678 {
		t.Errorf("U32 = %#x, %v", v, err)
	}
	if _, err := U16(b, 3); !errors.Is(err, ErrShort) {
		t.Error("U16 out of bounds accepted")
	}
	if _, err := U32(b, 1); !errors.Is(err, ErrShort) {
		t.Error("U32 out of bounds accepted")
	}
	if _, err := U16(b, -1); !errors.Is(err, ErrShort) {
		t.Error("negative offset accepted")
	}
}

func TestEthernetViewRoundTrip(t *testing.T) {
	b := make([]byte, EthernetHdrLen)
	v, err := Ethernet(b)
	if err != nil {
		t.Fatal(err)
	}
	src := MAC{1, 2, 3, 4, 5, 6}
	dst := MAC{7, 8, 9, 10, 11, 12}
	v.SetSrc(src)
	v.SetDst(dst)
	v.SetEtherType(EtherTypeIPv4)
	if v.Src() != src || v.Dst() != dst || v.EtherType() != EtherTypeIPv4 {
		t.Fatal("ethernet field round trip failed")
	}
	if _, err := Ethernet(b[:13]); !errors.Is(err, ErrShort) {
		t.Error("short ethernet buffer accepted")
	}
}

func TestARPViewRoundTrip(t *testing.T) {
	b := make([]byte, ARPHdrLen)
	v, err := ARP(b)
	if err != nil {
		t.Fatal(err)
	}
	sm, tm := MAC{1, 1, 1, 1, 1, 1}, MAC{2, 2, 2, 2, 2, 2}
	si, ti := IP4{10, 0, 0, 1}, IP4{10, 0, 0, 2}
	v.Init(ARPRequest, sm, si, tm, ti)
	if v.HType() != 1 || v.PType() != 0x0800 || v.Op() != ARPRequest {
		t.Error("ARP fixed fields wrong")
	}
	if v.SenderMAC() != sm || v.SenderIP() != si || v.TargetMAC() != tm || v.TargetIP() != ti {
		t.Error("ARP operand round trip failed")
	}
	if _, err := ARP(b[:27]); !errors.Is(err, ErrShort) {
		t.Error("short ARP accepted")
	}
}

func TestIPv4ViewRoundTrip(t *testing.T) {
	b := make([]byte, IPv4MinHdrLen)
	raw := IPv4View{b: b}
	raw.SetVersionIHL(20)
	v, err := IPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	v.SetTOS(0x10)
	v.SetTotalLen(1234)
	v.SetID(0xBEEF)
	v.SetFlagsFrag(IPFlagMF, 1480)
	v.SetTTL(64)
	v.SetProto(IPProtoUDP)
	v.SetSrc(IP4{192, 168, 0, 1})
	v.SetDst(IP4{192, 168, 0, 2})
	if v.Version() != 4 || v.HdrLen() != 20 || v.TOS() != 0x10 ||
		v.TotalLen() != 1234 || v.ID() != 0xBEEF || v.TTL() != 64 ||
		v.Proto() != IPProtoUDP {
		t.Fatal("IPv4 scalar fields wrong")
	}
	if !v.MoreFragments() || v.DontFragment() || v.FragOffset() != 1480 {
		t.Fatal("fragment fields wrong")
	}
	if v.Src() != (IP4{192, 168, 0, 1}) || v.Dst() != (IP4{192, 168, 0, 2}) {
		t.Fatal("addresses wrong")
	}
	v.ComputeChecksum()
	if !v.VerifyChecksum() {
		t.Fatal("checksum verify failed after compute")
	}
	b[8] ^= 0xff // corrupt TTL
	if v.VerifyChecksum() {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestIPv4ViewValidation(t *testing.T) {
	if _, err := IPv4(make([]byte, 19)); !errors.Is(err, ErrShort) {
		t.Error("short IPv4 accepted")
	}
	b := make([]byte, 20)
	b[0] = 0x60 // version 6
	if _, err := IPv4(b); err == nil {
		t.Error("version 6 accepted by IPv4 view")
	}
	b[0] = 0x4f // IHL 15 → 60 bytes, buffer only 20
	if _, err := IPv4(b); !errors.Is(err, ErrShort) {
		t.Error("oversized IHL accepted")
	}
	b[0] = 0x41 // IHL 1 → 4 bytes < minimum
	if _, err := IPv4(b); !errors.Is(err, ErrShort) {
		t.Error("undersized IHL accepted")
	}
}

func TestICMPViewRoundTrip(t *testing.T) {
	b := make([]byte, ICMPHdrLen)
	v, err := ICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	v.SetType(ICMPEchoRequest)
	v.SetCode(0)
	v.SetIdent(77)
	v.SetSeq(3)
	v.SetChecksum(0xABCD)
	if v.Type() != ICMPEchoRequest || v.Code() != 0 || v.Ident() != 77 || v.Seq() != 3 || v.Checksum() != 0xABCD {
		t.Fatal("ICMP round trip failed")
	}
	if _, err := ICMP(b[:7]); !errors.Is(err, ErrShort) {
		t.Error("short ICMP accepted")
	}
}

func TestUDPViewRoundTrip(t *testing.T) {
	b := make([]byte, UDPHdrLen)
	v, err := UDP(b)
	if err != nil {
		t.Fatal(err)
	}
	v.SetSrcPort(1024)
	v.SetDstPort(53)
	v.SetLength(36)
	v.SetChecksum(0x1234)
	if v.SrcPort() != 1024 || v.DstPort() != 53 || v.Length() != 36 || v.Checksum() != 0x1234 {
		t.Fatal("UDP round trip failed")
	}
	if _, err := UDP(b[:7]); !errors.Is(err, ErrShort) {
		t.Error("short UDP accepted")
	}
}

func TestTCPViewRoundTrip(t *testing.T) {
	b := make([]byte, TCPMinHdrLen)
	raw := TCPView{b: b}
	raw.SetDataOff(20)
	v, err := TCP(b)
	if err != nil {
		t.Fatal(err)
	}
	v.SetSrcPort(80)
	v.SetDstPort(40000)
	v.SetSeq(0xDEADBEEF)
	v.SetAck(0xFEEDFACE)
	v.SetFlags(TCPSyn | TCPAck)
	v.SetWindow(8760)
	v.SetChecksum(0x5555)
	v.SetUrgPtr(9)
	if v.SrcPort() != 80 || v.DstPort() != 40000 || v.Seq() != 0xDEADBEEF ||
		v.Ack() != 0xFEEDFACE || v.DataOff() != 20 || v.Window() != 8760 ||
		v.Checksum() != 0x5555 || v.UrgPtr() != 9 {
		t.Fatal("TCP round trip failed")
	}
	if v.Flags() != TCPSyn|TCPAck {
		t.Fatal("TCP flags wrong")
	}
}

func TestTCPViewValidation(t *testing.T) {
	if _, err := TCP(make([]byte, 19)); !errors.Is(err, ErrShort) {
		t.Error("short TCP accepted")
	}
	b := make([]byte, 20)
	b[12] = 0xf0 // data offset 60 > len
	if _, err := TCP(b); !errors.Is(err, ErrShort) {
		t.Error("oversized data offset accepted")
	}
	b[12] = 0x10 // data offset 4 < 20
	if _, err := TCP(b); !errors.Is(err, ErrShort) {
		t.Error("undersized data offset accepted")
	}
}

func TestFlagString(t *testing.T) {
	if got := FlagString(TCPSyn | TCPAck); got != "SYN|ACK" {
		t.Errorf("FlagString = %q", got)
	}
	if got := FlagString(0); got != "none" {
		t.Errorf("FlagString(0) = %q", got)
	}
	all := FlagString(0x3f)
	for _, w := range []string{"FIN", "SYN", "RST", "PSH", "ACK", "URG"} {
		if !strings.Contains(all, w) {
			t.Errorf("FlagString(all) missing %s: %q", w, all)
		}
	}
}
