// Package view reproduces the paper's VIEW operator (§3.2): safe, zero-copy
// interpretation of a byte array as a typed protocol header.
//
// Modula-3's VIEW(a,T) reinterprets a's bit pattern as a value of a scalar
// aggregate type T, with the compiler guaranteeing that no access strays
// outside a. Go cannot overlay structs on byte slices safely, so the same
// contract is provided by overlay types: a constructor validates that the
// slice is long enough for the header (the single bounds check VIEW implies),
// and every field accessor is then a fixed-offset read or write within that
// validated window. Field access after construction cannot fail, matching
// VIEW's "cast once, then typed access" shape, and no bytes are ever copied.
//
// All multi-byte fields are big-endian (network byte order).
package view

import (
	"errors"
	"fmt"
)

// ErrShort reports a buffer too short for the requested header view.
var ErrShort = errors.New("view: buffer too short for header")

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IP4 is a 32-bit IPv4 address.
type IP4 [4]byte

// String renders dotted-quad form.
func (a IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian integer.
func (a IP4) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// IP4FromUint32 builds an address from a big-endian integer.
func IP4FromUint32(v uint32) IP4 {
	return IP4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IsMulticast reports whether a is in 224.0.0.0/4.
func (a IP4) IsMulticast() bool { return a[0]&0xf0 == 0xe0 }

// IsBroadcast reports whether a is 255.255.255.255.
func (a IP4) IsBroadcast() bool { return a == IP4{255, 255, 255, 255} }

// be16/be32 are the primitive big-endian accessors all views share.

func be16(b []byte, off int) uint16 { return uint16(b[off])<<8 | uint16(b[off+1]) }
func put16(b []byte, off int, v uint16) {
	b[off] = byte(v >> 8)
	b[off+1] = byte(v)
}
func be32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}
func put32(b []byte, off int, v uint32) {
	b[off] = byte(v >> 24)
	b[off+1] = byte(v >> 16)
	b[off+2] = byte(v >> 8)
	b[off+3] = byte(v)
}

// U16 reads a big-endian uint16 at off with an explicit bounds check — the
// scalar form of VIEW for ad-hoc guard predicates.
func U16(b []byte, off int) (uint16, error) {
	if off < 0 || off+2 > len(b) {
		return 0, ErrShort
	}
	return be16(b, off), nil
}

// U32 reads a big-endian uint32 at off with an explicit bounds check.
func U32(b []byte, off int) (uint32, error) {
	if off < 0 || off+4 > len(b) {
		return 0, ErrShort
	}
	return be32(b, off), nil
}
