package view

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: every header view writes back exactly what it reads, for random
// field values — the set/get pairs are inverse bijections on their fields.

func TestQuickEthernetRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, typ uint16) bool {
		b := make([]byte, EthernetHdrLen)
		v, err := Ethernet(b)
		if err != nil {
			return false
		}
		v.SetDst(MAC(dst))
		v.SetSrc(MAC(src))
		v.SetEtherType(typ)
		return v.Dst() == MAC(dst) && v.Src() == MAC(src) && v.EtherType() == typ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}

func TestQuickIPv4RoundTrip(t *testing.T) {
	f := func(tos uint8, totalLen, id uint16, offRaw uint16, ttl, proto uint8, src, dst [4]byte, mf, df bool) bool {
		b := make([]byte, IPv4MinHdrLen)
		b[0] = 0x45
		v, err := IPv4(b)
		if err != nil {
			return false
		}
		off := int(offRaw%8192) * 8 // fragment offsets are 8-byte units
		flags := uint16(0)
		if mf {
			flags |= IPFlagMF
		}
		if df {
			flags |= IPFlagDF
		}
		v.SetTOS(tos)
		v.SetTotalLen(int(totalLen))
		v.SetID(id)
		v.SetFlagsFrag(flags, off)
		v.SetTTL(ttl)
		v.SetProto(proto)
		v.SetSrc(IP4(src))
		v.SetDst(IP4(dst))
		v.ComputeChecksum()
		return v.TOS() == tos && v.TotalLen() == int(totalLen) && v.ID() == id &&
			v.FragOffset() == off && v.MoreFragments() == mf && v.DontFragment() == df &&
			v.TTL() == ttl && v.Proto() == proto &&
			v.Src() == IP4(src) && v.Dst() == IP4(dst) &&
			v.VerifyChecksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Error(err)
	}
}

func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(sp, dp, ln, ck uint16) bool {
		b := make([]byte, UDPHdrLen)
		v, err := UDP(b)
		if err != nil {
			return false
		}
		v.SetSrcPort(sp)
		v.SetDstPort(dp)
		v.SetLength(int(ln))
		v.SetChecksum(ck)
		return v.SrcPort() == sp && v.DstPort() == dp && v.Length() == int(ln) && v.Checksum() == ck
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Error(err)
	}
}

func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, wnd, urg uint16) bool {
		b := make([]byte, TCPMinHdrLen)
		b[12] = 5 << 4
		v, err := TCP(b)
		if err != nil {
			return false
		}
		v.SetSrcPort(sp)
		v.SetDstPort(dp)
		v.SetSeq(seq)
		v.SetAck(ack)
		v.SetFlags(flags)
		v.SetWindow(wnd)
		v.SetUrgPtr(urg)
		return v.SrcPort() == sp && v.DstPort() == dp && v.Seq() == seq && v.Ack() == ack &&
			v.Flags() == flags&0x3f && v.Window() == wnd && v.UrgPtr() == urg &&
			v.DataOff() == TCPMinHdrLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(24))}); err != nil {
		t.Error(err)
	}
}

func TestQuickARPRoundTrip(t *testing.T) {
	f := func(op uint16, sm, tm [6]byte, si, ti [4]byte) bool {
		b := make([]byte, ARPHdrLen)
		v, err := ARP(b)
		if err != nil {
			return false
		}
		v.Init(op, MAC(sm), IP4(si), MAC(tm), IP4(ti))
		return v.Op() == op && v.SenderMAC() == MAC(sm) && v.SenderIP() == IP4(si) &&
			v.TargetMAC() == MAC(tm) && v.TargetIP() == IP4(ti) &&
			v.HType() == 1 && v.PType() == EtherTypeIPv4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(25))}); err != nil {
		t.Error(err)
	}
}

func TestQuickICMPRoundTrip(t *testing.T) {
	f := func(typ, code uint8, ck, id, seq uint16) bool {
		b := make([]byte, ICMPHdrLen)
		v, err := ICMP(b)
		if err != nil {
			return false
		}
		v.SetType(typ)
		v.SetCode(code)
		v.SetChecksum(ck)
		v.SetIdent(id)
		v.SetSeq(seq)
		return v.Type() == typ && v.Code() == code && v.Checksum() == ck &&
			v.Ident() == id && v.Seq() == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(26))}); err != nil {
		t.Error(err)
	}
}

// Property: IP4 Uint32 round trip and multicast classification agree with the
// definition of the 224.0.0.0/4 range.
func TestQuickIP4Properties(t *testing.T) {
	f := func(raw uint32) bool {
		a := IP4FromUint32(raw)
		if a.Uint32() != raw {
			return false
		}
		return a.IsMulticast() == (raw>>28 == 0xe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(27))}); err != nil {
		t.Error(err)
	}
}
