package bench

import (
	"fmt"

	"plexus/internal/audit"
	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// This file implements the `-exp cc` congestion-control experiment: two bulk
// TCP flows from separate client hosts converge on one switch port in front
// of a shared server, and the sweep asks how fairly each algorithm pair
// divides the bottleneck across a bandwidth × RTT × loss grid. The paper's
// application-specific stacks let every connection choose its own transport
// policy; this is the modern version of that question — NewReno, CUBIC, and
// a BBR-style paced sender, selectable per host, competing for one queue.
//
// Each cell reports per-flow goodput, retransmit ratio, the bottleneck
// port's queue occupancy, and Jain's fairness index over the two goodputs.
// The RFC 793 conformance checkers ride along on every host: a cell with an
// illegal transition fails the experiment rather than producing a row.

// CCRow is one cell of the fairness sweep.
type CCRow struct {
	AlgoA string `json:"algo_a"`
	AlgoB string `json:"algo_b"`
	// BandwidthMbps is the wire rate of every link in the cell; the server's
	// switch port is the bottleneck (two flows in, one port out).
	BandwidthMbps int `json:"bandwidth_mbps"`
	// PropDelayUs is the one-way propagation of each cable; the no-load RTT
	// is roughly four propagations plus two switch latencies.
	PropDelayUs int64 `json:"prop_delay_us"`
	// LossPct is the Bernoulli frame-loss probability injected on the
	// server's cable (both directions), in percent.
	LossPct float64 `json:"loss_pct"`

	// Per-flow receiver-observed goodput over each flow's delivery window.
	GoodputA float64 `json:"goodput_a_mbps"`
	GoodputB float64 `json:"goodput_b_mbps"`
	// Jain is Jain's fairness index over the two goodputs: (Σx)²/(n·Σx²),
	// 1.0 for a perfectly even split, 0.5 when one flow is starved.
	Jain float64 `json:"jain_index"`

	// Per-flow sender retransmit ratio: retransmitted / total segments.
	RexmitRatioA float64 `json:"rexmit_ratio_a"`
	RexmitRatioB float64 `json:"rexmit_ratio_b"`
	// SackRexmits counts scoreboard-driven selective retransmissions summed
	// over both senders — zero when SACK recovery never engaged.
	SackRexmits uint64 `json:"sack_rexmits"`

	// Bottleneck-port accounting: peak and mean output-queue depth sampled
	// every millisecond while the flows run, the queue bound, and tail drops.
	QueuePeak  int     `json:"queue_peak"`
	QueueMean  float64 `json:"queue_mean"`
	QueueCap   int     `json:"queue_cap"`
	PortDrops  uint64  `json:"port_drops"`
	FaultLost  uint64  `json:"fault_lost"`
	ElapsedSec float64 `json:"elapsed_sec"`

	// AuditTransitions/Violations aggregate the RFC 793 checkers on all
	// three hosts; violations must be zero for the row to exist at all.
	AuditTransitions uint64 `json:"audit_transitions"`
	AuditViolations  uint64 `json:"audit_violations"`
}

// jainIndex computes Jain's fairness index over the rates.
func jainIndex(xs ...float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// ccModel builds the cell's wire model: Ethernet driver costs at the swept
// rate and propagation, with a transmit backlog deep enough that congestion
// forms at the switch port queue, not the sender's interface queue.
func ccModel(bwMbps int, prop sim.Time) netdev.Model {
	m := netdev.EthernetModel()
	m.BitsPerSec = int64(bwMbps) * 1_000_000
	m.PropDelay = prop
	m.MaxBacklog = sim.Second
	return m
}

// ccJitter is the client-cable jitter bound for a wire rate: a quarter of a
// full-size frame's serialization time (303µs at 10Mb/s, 30µs at 100Mb/s).
func ccJitter(bwMbps int) sim.Time {
	frameTx := 1514 * 8 * 1000 * sim.Nanosecond / sim.Time(bwMbps)
	return frameTx / 4
}

// ccCell is one point of the sweep grid.
type ccCell struct {
	algoA, algoB string
	bwMbps       int
	prop         sim.Time
	loss         float64
	seed         int64 // 0 = seed 1
}

// Measurement window: goodput is counted only over [ccWindowStart,
// ccWindowEnd(bw)), after both flows have converged past slow start and
// before either sender's buffer can run dry — the standard steady-state
// fairness methodology, immune to end effects from one flow finishing first.
const (
	ccWindowStart = 1 * sim.Second
	// ccQueueFrames bounds the bottleneck port's output queue. Shallower
	// than the switch default so the AIMD sawtooth completes many loss
	// cycles inside the window (a deep queue at 10Mb/s holds ~77ms of
	// standing delay and converges too slowly to measure fairness).
	ccQueueFrames = 25
	// ccMinRTO is the senders' retransmission-timeout floor. The RFC 6298
	// 1s floor turns every lost retransmission into a full second of
	// silence; 200ms is the Linux default and keeps loss cells live.
	ccMinRTO = 200 * sim.Millisecond
)

// ccWindowEnd picks the measurement window for a wire rate. At 10Mb/s one
// AIMD sawtooth period is ~0.35s, so a short window samples only a handful
// of loss cycles and the measured split is mostly luck; 12s averages ~30
// cycles. At 100Mb/s cycles are an order of magnitude faster and 4s is
// plenty — and the shorter horizon keeps each sender's offered-load buffer
// (which scales with rate × duration) reasonable.
func ccWindowEnd(bwMbps int) sim.Time {
	if bwMbps <= 10 {
		return ccWindowStart + 12*sim.Second
	}
	return ccWindowStart + 4*sim.Second
}

// ccHorizon is the cell's run length: the window plus drain slack.
func ccHorizon(bwMbps int) sim.Time {
	return ccWindowEnd(bwMbps) + 50*sim.Millisecond
}

// ccOfferedBytes sizes each sender's offered load: ~10% more than the wire
// could move inside the horizon even if one flow captured the whole
// bottleneck, so neither sender ever runs dry.
func ccOfferedBytes(bwMbps int) int {
	horizonSec := float64(ccHorizon(bwMbps)) / float64(sim.Second)
	return int(float64(bwMbps) * 125_000 * horizonSec * 1.1)
}

// ccRED is the bottleneck ports' RED profile (see REDConfig).
var ccRED = netdev.REDConfig{MinFrames: 6, MaxFrames: 15, MaxProb: 0.2}

// ccFlow accumulates one flow's in-window delivery and the sender
// connection handle its retransmit counters are read from after the run.
type ccFlow struct {
	got      int // bytes delivered inside the measurement window
	gotTotal int
	app      *plexus.TCPApp
}

// ccConnStats is the per-flow sender-side counter snapshot runCC hands back
// beside the row, for tests that assert on recovery behavior.
type ccConnStats struct {
	SegsSent, Retransmits, FastRexmits, RTOExpiries uint64
	FastRecoveries, PartialAcks, SackRexmits        uint64
	SacksRcvd, DupAcksRcvd                          uint64
	EndCwnd                                         uint32
}

// runCCDebug is runCC plus the senders' counter snapshots.
func runCCDebug(c ccCell, size int) (CCRow, [2]ccConnStats, error) {
	return runCCInner(c, size)
}

// snapStats snapshots both senders' connection counters.
func snapStats(flows *[2]ccFlow) [2]ccConnStats {
	var out [2]ccConnStats
	for i := range flows {
		c := flows[i].app.Conn()
		st := c.Stats()
		out[i] = ccConnStats{
			SegsSent: st.SegsSent, Retransmits: st.Retransmits,
			FastRexmits: st.FastRexmits, RTOExpiries: st.RTOExpiries,
			FastRecoveries: st.FastRecoveries, PartialAcks: st.PartialAcks,
			SackRexmits: st.SackRexmits, SacksRcvd: st.SacksRcvd,
			DupAcksRcvd: st.DupAcksRcvd, EndCwnd: c.Cwnd(),
		}
	}
	return out
}

// runCC runs one fairness cell: two clients each offer size bytes (more than
// the wire can move inside the horizon, so neither sender runs dry) to the
// server through the shared switch, flow B starting 5ms after flow A so the
// cell measures convergence to fairness rather than lockstep symmetry.
func runCC(c ccCell, size int) (CCRow, error) {
	row, _, err := runCCInner(c, size)
	return row, err
}

func runCCInner(c ccCell, size int) (CCRow, [2]ccConnStats, error) {
	winEnd := ccWindowEnd(c.bwMbps)
	model := ccModel(c.bwMbps, c.prop)
	spec := func(name, cc string) plexus.HostSpec {
		return plexus.HostSpec{Name: name, Personality: osmodel.SPIN,
			Dispatch: osmodel.DispatchInterrupt, CC: cc,
			MinRTO: ccMinRTO}
	}
	seed := c.seed
	if seed == 0 {
		seed = 1
	}
	top, err := plexus.NewTopology(seed, nil, []plexus.SegmentSpec{{
		Name: "cc", Model: model, Switched: true,
		Switch: netdev.SwitchConfig{
			QueueFrames: ccQueueFrames,
			// RED desynchronizes the two AIMD sawtooths; pure tail drop
			// phase-locks them and one flow wins every queue-full race.
			RED: ccRED,
		},
		Subnet: view.IP4{10, 0, 1, 0},
		Hosts: []plexus.HostSpec{
			spec("flowA", c.algoA),
			spec("flowB", c.algoB),
			spec("server", ""),
		},
	}})
	if err != nil {
		return CCRow{}, [2]ccConnStats{}, err
	}
	top.PrimeARP()
	defer recordEvents(top.Sim)
	seg := top.Segments[0]
	fa, fb, srv := seg.Hosts[0], seg.Hosts[1], seg.Hosts[2]

	checkers := make([]*audit.Checker, 3)
	for i, h := range []*plexus.Stack{fa, fb, srv} {
		checkers[i] = audit.NewChecker(nil)
		h.TCP.SetAuditSink(checkers[i])
	}

	// One injector per cable: the drop hook runs on the host-transmit side
	// of a wire, so the clients' cables lose data frames and the server's
	// cable loses ACKs — loss in both directions of every flow.
	injs := make([]*fault.Injector, len(seg.Cables))
	for i, cable := range seg.Cables {
		injs[i] = fault.Attach(top.Sim, cable)
		if c.loss > 0 {
			injs[i].Lose(fault.Bernoulli{P: c.loss})
		}
		if i < 2 {
			// Client cables only: per-frame seeded timing jitter. A
			// deterministic drop-tail queue phase-locks two synchronized
			// AIMD flows — the same sender wins every queue-full race —
			// so the rig injects the clock skew a real network has. A
			// quarter of one frame's serialization time decorrelates the
			// arrival phase but can never reorder back-to-back frames.
			injs[i].Delay(fault.Jitter{P: 1, Max: ccJitter(c.bwMbps)})
		}
	}

	// Demux the two flows by client address on the shared listener.
	flows := [2]ccFlow{}
	flowOf := func(conn *plexus.TCPApp) *ccFlow {
		addr, _ := conn.Conn().RemoteAddr()
		if addr == fa.Addr() {
			return &flows[0]
		}
		return &flows[1]
	}
	_, err = srv.ListenTCP(5001, plexus.TCPAppOptions{
		OnRecv: func(t *sim.Task, conn *plexus.TCPApp, data []byte) {
			f := flowOf(conn)
			f.gotTotal += len(data)
			if now := t.Now(); now >= ccWindowStart && now < winEnd {
				f.got += len(data)
			}
		},
		OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
	}, nil)
	if err != nil {
		return CCRow{}, [2]ccConnStats{}, err
	}

	msg := make([]byte, size)
	start := func(host *plexus.Stack, f *ccFlow, at sim.Time) {
		host.SpawnAt(at, "cc-sender", func(t *sim.Task) {
			f.app, _ = host.ConnectTCP(t, srv.Addr(), 5001, plexus.TCPAppOptions{
				OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
					_ = conn.Send(t2, msg)
				},
			})
		})
	}
	start(fa, &flows[0], 1*sim.Millisecond)
	start(fb, &flows[1], 6*sim.Millisecond)

	// Sample the bottleneck port's output queue every millisecond over the
	// measurement window — the series the cwnd sawtooth is judged against.
	port := seg.Switch.Ports()[2]
	var peak int
	var depthSum, samples int64
	var sample func(t *sim.Task)
	sample = func(t *sim.Task) {
		d := port.QueueDepth(t.Now())
		if d > peak {
			peak = d
		}
		depthSum += int64(d)
		samples++
		if t.Now()+sim.Millisecond < winEnd {
			srv.SpawnAt(t.Now()+sim.Millisecond, "cc-qsample", sample)
		}
	}
	srv.SpawnAt(ccWindowStart, "cc-qsample", sample)

	top.Sim.RunUntil(ccHorizon(c.bwMbps))

	for i, ck := range checkers {
		if n := ck.ViolationCount(); n > 0 {
			v := ck.Violations()[0]
			return CCRow{}, [2]ccConnStats{}, fmt.Errorf("bench: cc cell host %d: %d illegal TCP transitions (first at %v, %v->%v: %s)",
				i, n, v.Event.At, v.Event.Old, v.Event.New, v.Reason)
		}
	}
	if flows[0].gotTotal == 0 || flows[1].gotTotal == 0 {
		return CCRow{}, [2]ccConnStats{}, fmt.Errorf("bench: cc flow stalled: A %d B %d bytes delivered",
			flows[0].gotTotal, flows[1].gotTotal)
	}
	for i := range flows {
		// A drained send buffer means the cell measured idle wire, not
		// congestion — the offered load was sized wrong for this grid point.
		if flows[i].gotTotal >= size {
			return CCRow{}, [2]ccConnStats{}, fmt.Errorf("bench: cc flow %d ran dry: delivered all %d offered bytes", i, size)
		}
	}

	window := (winEnd - ccWindowStart).Seconds()
	goodput := func(f *ccFlow) float64 {
		return float64(f.got) * 8 / window / 1e6
	}
	ratio := func(f *ccFlow) float64 {
		st := f.app.Conn().Stats()
		if st.SegsSent == 0 {
			return 0
		}
		return float64(st.Retransmits) / float64(st.SegsSent)
	}
	var transitions uint64
	for _, ck := range checkers {
		transitions += ck.Events()
	}
	row := CCRow{
		GoodputA:         goodput(&flows[0]),
		GoodputB:         goodput(&flows[1]),
		RexmitRatioA:     ratio(&flows[0]),
		RexmitRatioB:     ratio(&flows[1]),
		SackRexmits:      flows[0].app.Conn().Stats().SackRexmits + flows[1].app.Conn().Stats().SackRexmits,
		QueuePeak:        peak,
		QueueCap:         seg.Switch.QueueCap(),
		PortDrops:        port.Stats().Drops,
		AuditTransitions: transitions,
	}
	for _, in := range injs {
		row.FaultLost += in.Stats().Lost
	}
	row.Jain = jainIndex(row.GoodputA, row.GoodputB)
	if samples > 0 {
		row.QueueMean = float64(depthSum) / float64(samples)
	}
	row.ElapsedSec = window
	return row, snapStats(&flows), nil
}

// ccSeeds is the number of independent replications per grid point. One
// deterministic run is a single sample of a chaotic system — which flow edges
// ahead at a given seed is luck — so each cell averages its goodputs over
// ccSeeds seeded topologies and reports Jain's index of the mean rates.
const ccSeeds = 4

// runCCCell runs one grid point's replications and aggregates them into the
// published row: mean goodputs and retransmit ratios, fairness of the means,
// summed drop/loss/audit counters, and the worst queue peak.
func runCCCell(c ccCell) (CCRow, error) {
	var agg CCRow
	for seed := int64(1); seed <= ccSeeds; seed++ {
		c.seed = seed
		row, err := runCC(c, ccOfferedBytes(c.bwMbps))
		if err != nil {
			return CCRow{}, fmt.Errorf("cc %s/%s %dMbps %v %.0f%% seed %d: %w",
				c.algoA, c.algoB, c.bwMbps, c.prop, 100*c.loss, seed, err)
		}
		agg.GoodputA += row.GoodputA / ccSeeds
		agg.GoodputB += row.GoodputB / ccSeeds
		agg.RexmitRatioA += row.RexmitRatioA / ccSeeds
		agg.RexmitRatioB += row.RexmitRatioB / ccSeeds
		agg.QueueMean += row.QueueMean / ccSeeds
		if row.QueuePeak > agg.QueuePeak {
			agg.QueuePeak = row.QueuePeak
		}
		agg.QueueCap = row.QueueCap
		agg.SackRexmits += row.SackRexmits
		agg.PortDrops += row.PortDrops
		agg.FaultLost += row.FaultLost
		agg.ElapsedSec += row.ElapsedSec
		agg.AuditTransitions += row.AuditTransitions
		agg.AuditViolations += row.AuditViolations
	}
	agg.Jain = jainIndex(agg.GoodputA, agg.GoodputB)
	return agg, nil
}

// CC runs the fairness sweep: algorithm pair × bandwidth × RTT × loss, each
// cell ccSeeds independent seeded simulators fanned out over RunCells — rows
// are byte-identical at any -parallel or -shards setting. The offered load
// scales with bandwidth so it exceeds what the wire can move inside the
// horizon: both senders stay backlogged through the measurement window.
func CC() ([]CCRow, error) {
	pairs := [][2]string{
		{"newreno", "newreno"},
		{"cubic", "cubic"},
		{"bbr", "bbr"},
		{"newreno", "cubic"},
	}
	var cells []ccCell
	for _, p := range pairs {
		for _, bw := range []int{10, 100} {
			for _, prop := range []sim.Time{50 * sim.Microsecond, 1 * sim.Millisecond} {
				for _, loss := range []float64{0, 0.02} {
					cells = append(cells, ccCell{algoA: p[0], algoB: p[1], bwMbps: bw, prop: prop, loss: loss})
				}
			}
		}
	}
	return RunCells(cells, func(c ccCell) (CCRow, error) {
		row, err := runCCCell(c)
		if err != nil {
			return CCRow{}, err
		}
		row.AlgoA = c.algoA
		row.AlgoB = c.algoB
		row.BandwidthMbps = c.bwMbps
		row.PropDelayUs = int64(c.prop / sim.Microsecond)
		row.LossPct = 100 * c.loss
		return row, nil
	})
}
