// Package bench regenerates every table and figure of the paper's evaluation
// (§4 and §5) plus the ablations DESIGN.md calls out. Each experiment returns
// structured rows so that both cmd/plexus-bench and the repository's
// testing.B benchmarks print the same series the paper reports.
package bench

import (
	"fmt"

	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/forward"
	"plexus/internal/httpx"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/video"
	"plexus/internal/view"
)

// System names a measured configuration.
type System string

// The systems of Figure 5.
const (
	SysPlexusInterrupt System = "Plexus (interrupt)"
	SysPlexusThread    System = "Plexus (thread)"
	SysDUX             System = "DIGITAL UNIX"
	SysDriverMin       System = "device drivers only"
)

// Devices returns the three network models of the paper's testbed.
func Devices() []netdev.Model {
	return []netdev.Model{netdev.EthernetModel(), netdev.ForeATMModel(), netdev.DECT3Model()}
}

func hostSpec(name string, sys System) plexus.HostSpec {
	switch sys {
	case SysPlexusInterrupt, SysDriverMin:
		return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	case SysPlexusThread:
		return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchThread}
	default:
		return plexus.HostSpec{Name: name, Personality: osmodel.Monolithic}
	}
}

// ---------------------------------------------------------------------------
// Figure 5: UDP round-trip latency for small (8-byte) packets.

// Fig5Row is one bar of Figure 5. RTT is the mean; the percentile columns
// come from the fixed-bucket histogram plane over the same rounds.
type Fig5Row struct {
	Device string
	System System
	RTT    sim.Time
	P50    sim.Time
	P90    sim.Time
	P99    sim.Time
}

// UDPEchoRTT measures one application-to-application UDP round trip of
// payload bytes on the given device and system, averaged over rounds
// ping-pongs (steady-state: ARP primed, first round discarded).
func UDPEchoRTT(model netdev.Model, sys System, payload, rounds int) (sim.Time, error) {
	rtts, _, err := udpEchoRTTs(model, sys, payload, rounds, nil)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	for _, r := range rtts {
		total += r
	}
	return total / sim.Time(rounds), nil
}

// driverEchoRTTs measures round trips with a raw echo handler installed
// directly on Ethernet.PacketRecv — no protocol layers, the paper's "minimal
// round trip time ... as measured between the device drivers" — returning
// every post-warm-up sample.
func driverEchoRTTs(model netdev.Model, payload, rounds int) ([]sim.Time, error) {
	n, client, server, err := plexus.TwoHosts(1, model,
		hostSpec("client", SysDriverMin), hostSpec("server", SysDriverMin))
	if err != nil {
		return nil, err
	}
	defer recordEvents(n.Sim)
	const rawType = 0x88B6
	frame := make([]byte, payload)

	// Server: reflect every raw frame back to its source.
	_, err = server.Ether.InstallRecv(ether.TypeGuard(rawType),
		event.Ephemeral("raw-echo", func(t *sim.Task, m *mbuf.Mbuf) {
			defer m.Free()
			data, err := m.CopyData(0, m.PktLen())
			if err != nil || len(data) < view.EthernetHdrLen {
				return
			}
			eth, _ := view.Ethernet(data)
			reply := server.Host.Pool.FromBytes(data[view.EthernetHdrLen:], 32)
			_ = server.Ether.Send(t, eth.Src(), rawType, reply)
		}), 0)
	if err != nil {
		return nil, err
	}
	var starts, ends []sim.Time
	var send func(t *sim.Task)
	send = func(t *sim.Task) {
		starts = append(starts, t.Now())
		m := client.Host.Pool.FromBytes(frame, 32)
		_ = client.Ether.Send(t, server.NIC.MAC(), rawType, m)
	}
	_, err = client.Ether.InstallRecv(ether.TypeGuard(rawType),
		event.Ephemeral("raw-echo-client", func(t *sim.Task, m *mbuf.Mbuf) {
			m.Free()
			ends = append(ends, t.Now())
			if len(ends) < rounds+1 {
				send(t)
			}
		}), 0)
	if err != nil {
		return nil, err
	}
	client.Spawn("client", send)
	n.Sim.RunUntil(60 * sim.Second)
	if len(ends) < rounds+1 {
		return nil, fmt.Errorf("bench: only %d raw rounds completed", len(ends))
	}
	rtts := make([]sim.Time, rounds)
	for i := 1; i <= rounds; i++ {
		rtts[i-1] = ends[i] - starts[i]
	}
	return rtts, nil
}

// DriverEchoRTT is driverEchoRTTs reduced to its mean.
func DriverEchoRTT(model netdev.Model, payload, rounds int) (sim.Time, error) {
	rtts, err := driverEchoRTTs(model, payload, rounds)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	for _, r := range rtts {
		total += r
	}
	return total / sim.Time(rounds), nil
}

// Fig5 regenerates Figure 5 (and the §1/§4.1 headline numbers). fastDriver
// selects the paper's "faster device driver" variant. Each bar is an
// independent cell fanned out over RunCells; row order is fixed regardless
// of parallelism.
func Fig5(fastDriver bool) ([]Fig5Row, error) {
	const rounds = 8
	type cell struct {
		model  netdev.Model
		sys    System
		driver bool
	}
	var cells []cell
	for _, model := range Devices() {
		if fastDriver {
			if model.Name == "dec-t3" {
				continue // "We did not write a faster device driver for T3."
			}
			model = netdev.FastDriver(model)
		}
		for _, sys := range []System{SysPlexusInterrupt, SysPlexusThread, SysDUX} {
			cells = append(cells, cell{model: model, sys: sys})
		}
		cells = append(cells, cell{model: model, sys: SysDriverMin, driver: true})
	}
	return RunCells(cells, func(c cell) (Fig5Row, error) {
		var rtts []sim.Time
		var err error
		if c.driver {
			rtts, err = driverEchoRTTs(c.model, 8, rounds)
		} else {
			rtts, _, err = udpEchoRTTs(c.model, c.sys, 8, rounds, nil)
		}
		if err != nil {
			kind := string(c.sys)
			if c.driver {
				kind = "driver"
			}
			return Fig5Row{}, fmt.Errorf("fig5 %s/%s: %w", c.model.Name, kind, err)
		}
		s := summarize(rtts)
		return Fig5Row{Device: c.model.Name, System: c.sys,
			RTT: s.Mean, P50: s.P50, P90: s.P90, P99: s.P99}, nil
	})
}

// ---------------------------------------------------------------------------
// §4.2 throughput table.

// TputRow is one entry of the §4.2 throughput comparison.
type TputRow struct {
	Device string
	System System
	Mbps   float64
}

// TCPThroughput measures a one-way bulk transfer of size bytes.
func TCPThroughput(model netdev.Model, sys System, size int) (float64, error) {
	n, client, server, err := plexus.TwoHosts(1, model, hostSpec("client", sys), hostSpec("server", sys))
	if err != nil {
		return 0, err
	}
	defer recordEvents(n.Sim)
	var got int
	var first, last sim.Time
	_, err = server.ListenTCP(5001, plexus.TCPAppOptions{
		OnRecv: func(t *sim.Task, conn *plexus.TCPApp, data []byte) {
			if got == 0 {
				first = t.Now()
			}
			got += len(data)
			last = t.Now()
		},
		OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
	}, nil)
	if err != nil {
		return 0, err
	}
	msg := make([]byte, size)
	client.Spawn("sender", func(t *sim.Task) {
		_, _ = client.ConnectTCP(t, server.Addr(), 5001, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if got != size || last <= first {
		return 0, fmt.Errorf("bench: transfer incomplete: %d/%d bytes", got, size)
	}
	elapsed := last - first
	return float64(got) * 8 / elapsed.Seconds() / 1e6, nil
}

// Throughput regenerates the §4.2 numbers: TCP on Ethernet and ATM for both
// systems (the paper could not measure Plexus TCP on T3 due to a DMA bug; we
// can, and report it as an extension).
func Throughput(size int) ([]TputRow, error) {
	type cell struct {
		model netdev.Model
		sys   System
	}
	var cells []cell
	for _, model := range Devices() {
		for _, sys := range []System{SysPlexusInterrupt, SysDUX} {
			cells = append(cells, cell{model: model, sys: sys})
		}
	}
	return RunCells(cells, func(c cell) (TputRow, error) {
		mbps, err := TCPThroughput(c.model, c.sys, size)
		if err != nil {
			return TputRow{}, fmt.Errorf("throughput %s/%s: %w", c.model.Name, c.sys, err)
		}
		return TputRow{Device: c.model.Name, System: c.sys, Mbps: mbps}, nil
	})
}

// ---------------------------------------------------------------------------
// Figure 6: video-server CPU utilization vs number of client streams.

// Fig6Row is one x-position of Figure 6.
type Fig6Row struct {
	Streams     int
	Utilization map[System]float64
	// GoodputMbps is the client-observed delivery rate (SPIN server),
	// showing network saturation at ~15 streams.
	GoodputMbps float64
}

// videoUtilization runs the Figure 6 workload on a T3 for one configuration.
func videoUtilization(sys System, streams int, duration sim.Time) (util float64, goodput float64, err error) {
	n, err := plexus.NewNetwork(1, netdev.DECT3Model(), []plexus.HostSpec{
		hostSpec("server", sys),
		{Name: "client", Personality: osmodel.SPIN},
	})
	if err != nil {
		return 0, 0, err
	}
	defer recordEvents(n.Sim)
	n.PrimeARP()
	sv, cl := n.Hosts[0], n.Hosts[1]
	srv, err := video.NewServer(sv, video.ServerConfig{})
	if err != nil {
		return 0, 0, err
	}
	client, err := video.NewClient(cl, video.DefaultPort)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < streams; i++ {
		srv.AddStream(view.IP4{224, 0, 1, byte(i + 1)})
	}
	sv.Host.CPU.MarkUtilization()
	srv.Run(duration)
	n.Sim.RunUntil(duration)
	util = sv.Host.CPU.Utilization()
	goodput = float64(client.Stats().BytesDisplayed) * 8 / duration.Seconds() / 1e6
	return util, goodput, nil
}

// Fig6 regenerates Figure 6 for the given stream counts. Each (streams,
// system) pair is one cell; the per-streams rows are assembled from the
// ordered cell results afterwards.
func Fig6(streamCounts []int) ([]Fig6Row, error) {
	const duration = 2 * sim.Second
	systems := []System{SysPlexusInterrupt, SysDUX}
	type cell struct {
		streams int
		sys     System
	}
	type result struct {
		util    float64
		goodput float64
	}
	var cells []cell
	for _, s := range streamCounts {
		for _, sys := range systems {
			cells = append(cells, cell{streams: s, sys: sys})
		}
	}
	results, err := RunCells(cells, func(c cell) (result, error) {
		u, gp, err := videoUtilization(c.sys, c.streams, duration)
		if err != nil {
			return result{}, fmt.Errorf("fig6 %s/%d: %w", c.sys, c.streams, err)
		}
		return result{util: u, goodput: gp}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for i, s := range streamCounts {
		row := Fig6Row{Streams: s, Utilization: map[System]float64{}}
		for j, sys := range systems {
			r := results[i*len(systems)+j]
			row.Utilization[sys] = r.util
			if sys == SysPlexusInterrupt {
				row.GoodputMbps = r.goodput
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 7: TCP redirection latency, in-kernel node vs user-level splice.

// Fig7Row is one x-position of Figure 7.
type Fig7Row struct {
	PayloadBytes  int
	KernelLatency sim.Time
	SpliceLatency sim.Time
}

// forwardLatency measures request→reply latency through a forwarder.
func forwardLatency(kernel bool, payload int) (sim.Time, error) {
	fwdP := osmodel.Monolithic
	if kernel {
		fwdP = osmodel.SPIN
	}
	n, err := plexus.NewNetwork(1, netdev.EthernetModel(), []plexus.HostSpec{
		{Name: "client", Personality: osmodel.SPIN},
		{Name: "fwd", Personality: fwdP},
		{Name: "server", Personality: osmodel.SPIN},
	})
	if err != nil {
		return 0, err
	}
	defer recordEvents(n.Sim)
	n.PrimeARP()
	client, fwd, server := n.Hosts[0], n.Hosts[1], n.Hosts[2]
	_, err = server.ListenTCP(9000, plexus.TCPAppOptions{
		OnRecv: func(t *sim.Task, conn *plexus.TCPApp, data []byte) {
			_ = conn.Send(t, data) // echo
		},
		OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
	}, nil)
	if err != nil {
		return 0, err
	}
	if kernel {
		if _, err := forward.NewKernel(fwd, view.IPProtoTCP, 8000, server.Addr(), 9000); err != nil {
			return 0, err
		}
	} else {
		if _, err := forward.NewSplice(fwd, 8000, server.Addr(), 9000); err != nil {
			return 0, err
		}
	}
	req := make([]byte, payload)
	var sentAt, gotAt sim.Time
	var rcvd int
	client.Spawn("client", func(t *sim.Task) {
		_, _ = client.ConnectTCP(t, fwd.Addr(), 8000, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				sentAt = t2.Now()
				_ = conn.Send(t2, req)
			},
			OnRecv: func(t2 *sim.Task, conn *plexus.TCPApp, data []byte) {
				rcvd += len(data)
				if rcvd >= payload {
					gotAt = t2.Now()
					conn.Close(t2)
				}
			},
		})
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if gotAt == 0 {
		return 0, fmt.Errorf("bench: no reply through forwarder")
	}
	return gotAt - sentAt, nil
}

// Fig7 regenerates Figure 7 for the given request payload sizes. Each
// (size, forwarder-kind) pair is one cell; rows pair the ordered results.
func Fig7(sizes []int) ([]Fig7Row, error) {
	type cell struct {
		size   int
		kernel bool
	}
	var cells []cell
	for _, size := range sizes {
		cells = append(cells, cell{size: size, kernel: true}, cell{size: size, kernel: false})
	}
	results, err := RunCells(cells, func(c cell) (sim.Time, error) {
		lat, err := forwardLatency(c.kernel, c.size)
		if err != nil {
			kind := "splice"
			if c.kernel {
				kind = "kernel"
			}
			return 0, fmt.Errorf("fig7 %s/%d: %w", kind, c.size, err)
		}
		return lat, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for i, size := range sizes {
		rows = append(rows, Fig7Row{PayloadBytes: size, KernelLatency: results[2*i], SpliceLatency: results[2*i+1]})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// The paper's concluding demo: the protocol stack servicing HTTP requests.

// HTTPRow is one measured HTTP configuration.
type HTTPRow struct {
	System  System
	Latency sim.Time // mean GET→complete-response latency
}

// HTTPLatency measures the mean latency of n sequential HTTP/1.0 GETs
// against a server running as a SPIN extension or a monolithic user process.
func HTTPLatency(sys System, n int) (sim.Time, error) {
	net, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		hostSpec("client", SysPlexusInterrupt), hostSpec("server", sys))
	if err != nil {
		return 0, err
	}
	defer recordEvents(net.Sim)
	_, err = httpx.Serve(server, 80, func(t *sim.Task, req *httpx.Request) httpx.Response {
		return httpx.Response{Status: 200, Body: make([]byte, 1024)}
	})
	if err != nil {
		return 0, err
	}
	var total sim.Time
	var done int
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 20 * sim.Millisecond
		client.SpawnAt(at, "get", func(t *sim.Task) {
			_ = httpx.Get(t, client, server.Addr(), 80, "/", func(t2 *sim.Task, r httpx.Result, err error) {
				if err == nil && r.Status == 200 {
					total += r.Latency
					done++
				}
			})
		})
	}
	net.Sim.RunUntil(10 * 60 * sim.Second)
	if done != n {
		return 0, fmt.Errorf("bench: %d of %d HTTP requests completed", done, n)
	}
	return total / sim.Time(n), nil
}

// HTTP regenerates the concluding-demo comparison.
func HTTP(n int) ([]HTTPRow, error) {
	return RunCells([]System{SysPlexusInterrupt, SysDUX}, func(sys System) (HTTPRow, error) {
		lat, err := HTTPLatency(sys, n)
		if err != nil {
			return HTTPRow{}, err
		}
		return HTTPRow{System: sys, Latency: lat}, nil
	})
}
