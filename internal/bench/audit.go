package bench

import (
	"fmt"

	"plexus/internal/audit"
	"plexus/internal/plexus"
)

// auditPair is the RFC 793 conformance checkers riding along on a rig's two
// hosts. Every robustness cell runs with one attached: the sweep's
// acceptance bar is zero illegal transitions, not merely surviving goodput,
// so a cell whose storm pushes a TCB across a forbidden edge fails the
// whole experiment rather than quietly producing a row.
type auditPair struct {
	client, server *audit.Checker
}

// attachAudit installs a conformance checker on both hosts of a rig.
func attachAudit(client, server *plexus.Stack) auditPair {
	p := auditPair{client: audit.NewChecker(nil), server: audit.NewChecker(nil)}
	client.TCP.SetAuditSink(p.client)
	server.TCP.SetAuditSink(p.server)
	return p
}

// transitions returns the total state transitions observed on both hosts.
func (p auditPair) transitions() uint64 {
	return p.client.Events() + p.server.Events()
}

// violations returns the total illegal transitions observed on both hosts.
func (p auditPair) violations() uint64 {
	return p.client.ViolationCount() + p.server.ViolationCount()
}

// check returns an error naming the first retained violation, or nil.
func (p auditPair) check() error {
	if p.violations() == 0 {
		return nil
	}
	vs := p.client.Violations()
	host := "client"
	if len(vs) == 0 {
		vs = p.server.Violations()
		host = "server"
	}
	v := vs[0]
	return fmt.Errorf("bench: %d illegal TCP transitions (first on %s at %v, %v->%v: %s)",
		p.violations(), host, v.Event.At, v.Event.Old, v.Event.New, v.Reason)
}
