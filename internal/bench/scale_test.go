package bench

import (
	"reflect"
	"runtime"
	"testing"

	"plexus/internal/sim"
)

// A short sweep produces sane rows: every cell completes operations, CPU
// utilization is a fraction, and latency percentiles are ordered.
func TestScaleSmoke(t *testing.T) {
	rows, err := Scale([]int{1, 4}, nil, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 counts × 2 workloads × 2 systems
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Ops == 0 {
			t.Errorf("%s/%s/%d: zero ops", r.System, r.Workload, r.Clients)
		}
		if r.ServerCPU <= 0 || r.ServerCPU > 1 {
			t.Errorf("%s/%s/%d: server CPU %.3f out of range", r.System, r.Workload, r.Clients, r.ServerCPU)
		}
		if r.P99 < r.P50 {
			t.Errorf("%s/%s/%d: p99 %v < p50 %v", r.System, r.Workload, r.Clients, r.P99, r.P50)
		}
		if r.GoodputMbps <= 0 {
			t.Errorf("%s/%s/%d: goodput %.3f", r.System, r.Workload, r.Clients, r.GoodputMbps)
		}
	}
}

// Rows are byte-identical whatever the worker-pool width: each cell owns its
// seeded simulator, so parallelism must never change a reported number.
func TestScaleDeterministicAcrossParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	seq, err := Scale([]int{4}, nil, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := Scale([]int{4}, nil, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("rows differ across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}
}

// The smallest sharded host cell (two segments) completes local and
// cross-segment work and reports coherent aggregates.
func TestScaleHostCellSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("400-host cell")
	}
	row, err := scaleHostCell(SysPlexusInterrupt, 400, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if row.Hosts != 400 || row.Segments != 2 {
		t.Fatalf("Hosts=%d Segments=%d, want 400/2", row.Hosts, row.Segments)
	}
	if row.Clients != 398 {
		t.Fatalf("Clients = %d, want 398", row.Clients)
	}
	if row.Ops == 0 || row.Events == 0 {
		t.Fatalf("degenerate row: %+v", row)
	}
	if row.ServerCPU <= 0 || row.ServerCPU > 1 {
		t.Fatalf("server CPU %.3f out of range", row.ServerCPU)
	}
	if row.P99 < row.P50 {
		t.Fatalf("p99 %v < p50 %v", row.P99, row.P50)
	}
}

// TestScaleShardedDeterministic is the sharded determinism property at the
// experiment level: every (shard workers × GOMAXPROCS) combination yields a
// byte-identical row — ops, percentiles, retries, drops, and the summed
// fired-event count. (The span-count half of the property lives in
// internal/plexus's TestShardedTopologyDeterministicAcrossWorkers.)
func TestScaleShardedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("400-host cells")
	}
	defer SetShardWorkers(1)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	run := func(workers, procs int) ScaleRow {
		t.Helper()
		SetShardWorkers(workers)
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		row, err := scaleHostCell(SysPlexusInterrupt, 400, 50*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	base := run(1, 1)
	for _, cfg := range [][2]int{{1, 4}, {3, 1}, {3, 4}, {8, 2}} {
		if got := run(cfg[0], cfg[1]); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d GOMAXPROCS=%d diverged:\ngot  %+v\nwant %+v",
				cfg[0], cfg[1], got, base)
		}
	}
}

// The big cell splits across two switched segments joined by the gateway and
// still completes work; drops show up in the switch counters, not as lost
// accounting.
func TestScaleMultiSegment(t *testing.T) {
	if testing.Short() {
		t.Skip("256-client cell")
	}
	row, err := scaleCell(SysPlexusInterrupt, WorkloadUDPEcho, 256, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if row.Segments != 2 {
		t.Fatalf("Segments = %d, want 2", row.Segments)
	}
	if row.Ops == 0 {
		t.Fatal("no operations completed at 256 clients")
	}
}
