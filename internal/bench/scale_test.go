package bench

import (
	"reflect"
	"testing"

	"plexus/internal/sim"
)

// A short sweep produces sane rows: every cell completes operations, CPU
// utilization is a fraction, and latency percentiles are ordered.
func TestScaleSmoke(t *testing.T) {
	rows, err := Scale([]int{1, 4}, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 counts × 2 workloads × 2 systems
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Ops == 0 {
			t.Errorf("%s/%s/%d: zero ops", r.System, r.Workload, r.Clients)
		}
		if r.ServerCPU <= 0 || r.ServerCPU > 1 {
			t.Errorf("%s/%s/%d: server CPU %.3f out of range", r.System, r.Workload, r.Clients, r.ServerCPU)
		}
		if r.P99 < r.P50 {
			t.Errorf("%s/%s/%d: p99 %v < p50 %v", r.System, r.Workload, r.Clients, r.P99, r.P50)
		}
		if r.GoodputMbps <= 0 {
			t.Errorf("%s/%s/%d: goodput %.3f", r.System, r.Workload, r.Clients, r.GoodputMbps)
		}
	}
}

// Rows are byte-identical whatever the worker-pool width: each cell owns its
// seeded simulator, so parallelism must never change a reported number.
func TestScaleDeterministicAcrossParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	seq, err := Scale([]int{4}, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := Scale([]int{4}, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("rows differ across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}
}

// The big cell splits across two switched segments joined by the gateway and
// still completes work; drops show up in the switch counters, not as lost
// accounting.
func TestScaleMultiSegment(t *testing.T) {
	if testing.Short() {
		t.Skip("256-client cell")
	}
	row, err := scaleCell(SysPlexusInterrupt, WorkloadUDPEcho, 256, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if row.Segments != 2 {
		t.Fatalf("Segments = %d, want 2", row.Segments)
	}
	if row.Ops == 0 {
		t.Fatal("no operations completed at 256 clients")
	}
}
