package bench

import (
	"fmt"
	"sort"

	"plexus/internal/event"
	"plexus/internal/fault"
	"plexus/internal/httpx"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/seqpkt"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// This file implements the `-exp loss` robustness experiment: how gracefully
// each protocol stack degrades as the link loses frames. The paper's
// evaluation runs on a quiet machine-room Ethernet; this sweep asks the
// question the paper could not — does an application-specific stack built
// from runtime-installed extensions recover from loss as well as the
// monolithic one? Loss is injected by internal/fault below every protocol,
// in two patterns: independent random loss (Bernoulli) and 4-frame-mean
// bursts (Gilbert–Elliott), each swept from 0% to 20%.

// Loss workloads.
const (
	WorkloadTCPBulk   = "tcp-bulk"   // one-way 128KB transfer, goodput
	WorkloadSPPStream = "spp-stream" // 50×300B SPP stream, delivery %
	WorkloadHTTP      = "http"       // 40 sequential-ish GETs, p50/p99
)

// LossRow is one cell of the robustness sweep: a loss pattern and rate, a
// system, a workload, its headline metric, and the fault plane's own
// accounting of what it did to the wire.
type LossRow struct {
	Pattern  string  `json:"pattern"`  // "random" | "burst"
	RatePct  float64 `json:"rate_pct"` // configured loss probability, percent
	System   System  `json:"system"`
	Workload string  `json:"workload"`

	// GoodputMbps is the receiver-observed rate (tcp-bulk only).
	GoodputMbps float64 `json:"goodput_mbps,omitempty"`
	// DeliveredPct is the fraction of the offered workload that completed:
	// bytes for tcp-bulk, messages for spp-stream, requests for http.
	DeliveredPct float64 `json:"delivered_pct"`
	// P50/P99 are HTTP GET latency percentiles over completed requests.
	P50 sim.Time `json:"p50_ns,omitempty"`
	P99 sim.Time `json:"p99_ns,omitempty"`

	// Fault is the injector's per-model accounting; LinkDropped is the
	// link's own drop counter (loss models plus any pre-existing drops).
	Fault       fault.Stats `json:"fault"`
	LinkDropped uint64      `json:"link_dropped"`

	// AuditTransitions counts TCP state transitions observed by the RFC 793
	// conformance checkers on both hosts; AuditViolations must be zero for
	// the cell to produce a row at all (a violation fails the sweep).
	AuditTransitions uint64 `json:"audit_transitions"`
	AuditViolations  uint64 `json:"audit_violations"`

	// TCP is the transports' conformance gauge summed over both hosts —
	// rejected RSTs and TIME-WAIT quiet-period activity — read through the
	// same dispatcher Health snapshot the monitoring plane scrapes.
	TCP event.TCPGauge `json:"tcp"`
}

// tcpGauge sums the dispatcher Health TCP gauge over a rig's hosts.
func tcpGauge(hosts ...*plexus.Stack) event.TCPGauge {
	var g event.TCPGauge
	for _, h := range hosts {
		hg := h.Host.Disp.Health().TCP
		g.RSTsRejected += hg.RSTsRejected
		g.TimeWaitRearms += hg.TimeWaitRearms
		g.TimeWaitQuietDrops += hg.TimeWaitQuietDrops
		g.FastRecoveries += hg.FastRecoveries
		g.SackRexmits += hg.SackRexmits
	}
	return g
}

// lossModel builds the drop model for one (pattern, rate) cell.
func lossModel(pattern string, rate float64) fault.DropModel {
	if pattern == "burst" {
		return fault.Burst(rate, 4)
	}
	return fault.Bernoulli{P: rate}
}

// lossRig is a faulted two-host network: host 0 is the client/sender,
// host 1 the server/receiver.
func lossRig(sys System, pattern string, rate float64) (*plexus.Network, *plexus.Stack, *plexus.Stack, *fault.Injector, error) {
	n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		hostSpec("client", sys), hostSpec("server", sys))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	in := fault.Attach(n.Sim, n.Link)
	if rate > 0 {
		in.Lose(lossModel(pattern, rate))
	}
	return n, client, server, in, nil
}

// lossTCPBulk pushes size bytes through one TCP connection under loss and
// reports goodput over the delivered window plus the delivered fraction.
// TCP is reliable, so anything short of 100% within the (generous) horizon
// indicates recovery has stalled — itself a result.
func lossTCPBulk(sys System, pattern string, rate float64, size int) (LossRow, error) {
	n, client, server, in, err := lossRig(sys, pattern, rate)
	if err != nil {
		return LossRow{}, err
	}
	aud := attachAudit(client, server)
	defer recordEvents(n.Sim)
	var got int
	var first, last sim.Time
	_, err = server.ListenTCP(5001, plexus.TCPAppOptions{
		OnRecv: func(t *sim.Task, conn *plexus.TCPApp, data []byte) {
			if got == 0 {
				first = t.Now()
			}
			got += len(data)
			last = t.Now()
		},
		OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
	}, nil)
	if err != nil {
		return LossRow{}, err
	}
	msg := make([]byte, size)
	client.Spawn("sender", func(t *sim.Task) {
		_, _ = client.ConnectTCP(t, server.Addr(), 5001, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if err := aud.check(); err != nil {
		return LossRow{}, err
	}
	row := LossRow{
		DeliveredPct:     100 * float64(got) / float64(size),
		Fault:            in.Stats(),
		LinkDropped:      n.Link.Dropped(),
		AuditTransitions: aud.transitions(),
		AuditViolations:  aud.violations(),
		TCP:              tcpGauge(client, server),
	}
	if got > 0 && last > first {
		row.GoodputMbps = float64(got) * 8 / (last - first).Seconds() / 1e6
	}
	return row, nil
}

// lossSPPStream sends msgs fixed-size SPP messages at a 20ms cadence and
// reports the delivered fraction plus send→deliver latency percentiles.
// SPP retransmits on a fixed 500ms timer and abandons after its cap, so
// loss shows up as a latency tail first and as missing messages only under
// sustained loss.
func lossSPPStream(sys System, pattern string, rate float64, msgs, msgSize int) (LossRow, error) {
	n, client, server, in, err := lossRig(sys, pattern, rate)
	if err != nil {
		return LossRow{}, err
	}
	aud := attachAudit(client, server)
	defer recordEvents(n.Sim)
	install := func(st *plexus.Stack) (*seqpkt.Manager, error) {
		return seqpkt.Install(seqpkt.Config{
			Sim:              st.Host.Sim,
			IP:               st.IP,
			Disp:             st.Host.Disp,
			Raise:            st.Raiser(),
			CPU:              st.Host.CPU,
			Pool:             st.Host.Pool,
			Costs:            st.Host.Costs,
			RequireEphemeral: st.InterruptMode(),
		})
	}
	mc, err := install(client)
	if err != nil {
		return LossRow{}, err
	}
	ms, err := install(server)
	if err != nil {
		return LossRow{}, err
	}
	sentAt := make(map[uint32]sim.Time, msgs)
	var lats []sim.Time
	rx, err := ms.Open(40, func(t *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		if at, ok := sentAt[seq]; ok {
			lats = append(lats, t.Now()-at)
		}
	})
	if err != nil {
		return LossRow{}, err
	}
	tx, err := mc.Open(41, nil)
	if err != nil {
		return LossRow{}, err
	}
	payload := make([]byte, msgSize)
	for i := 0; i < msgs; i++ {
		client.SpawnAt(sim.Time(i+1)*20*sim.Millisecond, "spp-sender", func(t *sim.Task) {
			seq, err := tx.Send(t, server.Addr(), 40, payload)
			if err == nil {
				sentAt[seq] = t.Now()
			}
		})
	}
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if err := aud.check(); err != nil {
		return LossRow{}, err
	}
	row := LossRow{
		DeliveredPct:     100 * float64(rx.Stats().Delivered) / float64(msgs),
		Fault:            in.Stats(),
		LinkDropped:      n.Link.Dropped(),
		AuditTransitions: aud.transitions(),
		AuditViolations:  aud.violations(),
		TCP:              tcpGauge(client, server),
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50 = lats[len(lats)/2]
		row.P99 = lats[min(len(lats)-1, len(lats)*99/100)]
	}
	return row, nil
}

// lossHTTP issues n GETs at a 25ms cadence and reports completion plus
// latency percentiles over the requests that finished — loss stretches the
// tail (p99) long before it moves the median.
func lossHTTP(sys System, pattern string, rate float64, reqs int) (LossRow, error) {
	n, client, server, in, err := lossRig(sys, pattern, rate)
	if err != nil {
		return LossRow{}, err
	}
	aud := attachAudit(client, server)
	defer recordEvents(n.Sim)
	_, err = httpx.Serve(server, 80, func(t *sim.Task, req *httpx.Request) httpx.Response {
		return httpx.Response{Status: 200, Body: make([]byte, 1024)}
	})
	if err != nil {
		return LossRow{}, err
	}
	var lats []sim.Time
	for i := 0; i < reqs; i++ {
		client.SpawnAt(sim.Time(i+1)*25*sim.Millisecond, "get", func(t *sim.Task) {
			_ = httpx.Get(t, client, server.Addr(), 80, "/", func(t2 *sim.Task, r httpx.Result, err error) {
				if err == nil && r.Status == 200 {
					lats = append(lats, r.Latency)
				}
			})
		})
	}
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if err := aud.check(); err != nil {
		return LossRow{}, err
	}
	row := LossRow{
		DeliveredPct:     100 * float64(len(lats)) / float64(reqs),
		Fault:            in.Stats(),
		LinkDropped:      n.Link.Dropped(),
		AuditTransitions: aud.transitions(),
		AuditViolations:  aud.violations(),
		TCP:              tcpGauge(client, server),
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50 = lats[len(lats)/2]
		row.P99 = lats[min(len(lats)-1, len(lats)*99/100)]
	}
	return row, nil
}

// Loss runs the robustness sweep: every loss pattern × rate × system ×
// workload as an independent cell (its own sim, link, and injector), fanned
// out over RunCells — rows are byte-identical at any parallelism. The burst
// pattern is skipped at rate 0 (identical to random at 0).
func Loss(rates []float64) ([]LossRow, error) {
	const (
		tcpBytes = 128 << 10
		sppMsgs  = 50
		sppSize  = 300
		httpGets = 40
	)
	type cell struct {
		pattern string
		rate    float64
		sys     System
		wl      string
	}
	var cells []cell
	for _, pattern := range []string{"random", "burst"} {
		for _, rate := range rates {
			if pattern == "burst" && rate == 0 {
				continue
			}
			for _, sys := range []System{SysPlexusInterrupt, SysDUX} {
				for _, wl := range []string{WorkloadTCPBulk, WorkloadSPPStream, WorkloadHTTP} {
					cells = append(cells, cell{pattern, rate, sys, wl})
				}
			}
		}
	}
	return RunCells(cells, func(c cell) (LossRow, error) {
		var row LossRow
		var err error
		switch c.wl {
		case WorkloadTCPBulk:
			row, err = lossTCPBulk(c.sys, c.pattern, c.rate, tcpBytes)
		case WorkloadSPPStream:
			row, err = lossSPPStream(c.sys, c.pattern, c.rate, sppMsgs, sppSize)
		default:
			row, err = lossHTTP(c.sys, c.pattern, c.rate, httpGets)
		}
		if err != nil {
			return LossRow{}, fmt.Errorf("loss %s/%.0f%%/%s/%s: %w", c.pattern, 100*c.rate, c.sys, c.wl, err)
		}
		row.Pattern = c.pattern
		row.RatePct = 100 * c.rate
		row.System = c.sys
		row.Workload = c.wl
		return row, nil
	})
}

// DefaultLossRates is the sweep of the `-exp loss` experiment.
func DefaultLossRates() []float64 { return []float64{0, 0.01, 0.05, 0.10, 0.20} }
