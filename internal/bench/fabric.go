package bench

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/fabric"
	"plexus/internal/filter"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// This file implements the `-exp fabric` experiment: a datacenter cell whose
// gateway runs the full match-action service chain. Clients on one switched
// segment address a virtual IP that exists on no wire; the gateway's pipeline
// admits the traffic through an ACL (default deny), rewrites the VIP to a
// consistently-hashed member of the server rack on the other segment,
// source-NATs the client flows behind a single address, and spreads them by
// 5-tuple hash across two parallel gateway links. The sweep crosses offered
// request rate with server-pool size; each cell reports goodput, latency
// percentiles, load-balance skew across the rack, NAT table occupancy,
// per-link ECMP splits, and every rule's hit count. Rows are byte-identical
// at any -parallel and -shards setting.

// Fabric-experiment parameters.
const (
	// DefaultFabricDuration is the per-cell simulated run length.
	DefaultFabricDuration = 200 * sim.Millisecond
	// fabricClients is the client population of every cell.
	fabricClients = 16
	// fabricEchoPayload is the request/response payload size.
	fabricEchoPayload = 64
	// fabricGatewayLinks is the parallel gateway-link count ECMP spreads over.
	fabricGatewayLinks = 2
)

// fabricVIP is the virtual service address (on no wire; reached only through
// the pipeline's rewrite) and fabricNATAddr the source-NAT address on the
// server subnet.
var (
	fabricVIP     = view.IP4{10, 0, 9, 9}
	fabricNATAddr = view.IP4{10, 0, 2, 200}
)

// DefaultFabricRates is the per-client offered request rate sweep (req/s).
// The ceiling is set by the wire model: a VIP round trip crosses eight
// 10Mb/s serializations (~1.4ms), so 400 req/s per client is already deep
// into queueing territory on the shared gateway links.
func DefaultFabricRates() []int { return []int{100, 200, 400} }

// DefaultFabricPools is the server-pool size sweep.
func DefaultFabricPools() []int { return []int{2, 4, 8} }

// FabricRuleHits is one rule's hit counter in a row.
type FabricRuleHits struct {
	Table string `json:"table"`
	Rule  string `json:"rule"`
	Hits  uint64 `json:"hits"`
}

// FabricRow is one cell of the `-exp fabric` sweep.
type FabricRow struct {
	// Rate is the offered request rate per client (req/s).
	Rate int `json:"rate"`
	// PoolSize is the server-rack size behind the VIP.
	PoolSize int `json:"pool_size"`
	Clients  int `json:"clients"`
	// Ops counts completed request/response round trips.
	Ops uint64 `json:"ops"`
	// GoodputMbps is response payload delivered to clients per second.
	GoodputMbps float64  `json:"goodput_mbps"`
	P50         sim.Time `json:"p50_ns"`
	P99         sim.Time `json:"p99_ns"`
	// Retries counts requests unanswered within their pacing interval.
	Retries uint64 `json:"retries"`
	// Skew is the load-balance imbalance across the rack: the busiest
	// server's share of steered requests divided by the perfectly-even share
	// (1.0 = perfectly balanced).
	Skew float64 `json:"skew"`
	// NATOccupancy is the translation-table population after the run (one
	// entry per client flow).
	NATOccupancy int `json:"nat_occupancy"`
	// LinkHits is the per-gateway-link ECMP split of pipeline-processed
	// datagrams.
	LinkHits []uint64 `json:"link_hits"`
	// PipeDrops counts datagrams the pipeline dropped (ACL denies, NAT
	// exhaustion).
	PipeDrops uint64 `json:"pipe_drops"`
	// RuleHits is every rule's hit counter, in table order.
	RuleHits []FabricRuleHits `json:"rule_hits"`
	// Events is the cell's deterministic fired-event count.
	Events uint64 `json:"events"`
}

// Fabric runs the sweep: rates × pool sizes, each cell on its own seeded
// simulator with its own pipeline state.
func Fabric(rates, pools []int, duration sim.Time) ([]FabricRow, error) {
	type cell struct{ rate, pool int }
	var cells []cell
	for _, r := range rates {
		for _, p := range pools {
			cells = append(cells, cell{rate: r, pool: p})
		}
	}
	return RunCells(cells, func(c cell) (FabricRow, error) {
		row, err := fabricCell(c.rate, c.pool, duration)
		if err != nil {
			return FabricRow{}, fmt.Errorf("fabric %dreq/%dsrv: %w", c.rate, c.pool, err)
		}
		return row, nil
	})
}

// fabricPipeline assembles the cell's service chain: ACL → LB → NAT → ECMP.
func fabricPipeline(pool []view.IP4) (*fabric.Pipeline, *fabric.LoadBalancer, *fabric.NAT, *fabric.ECMP, error) {
	acl, err := fabric.NewACL("acl", filter.BaseIP, []fabric.ACLEntry{
		{Name: "permit-vip", Match: "ip.dst == 10.0.9.9 && udp.dport == 7", Permit: true},
		{Name: "permit-replies", Match: "ip.src in 10.0.2.0/24 && udp.sport == 7", Permit: true},
	}, false)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	lb, lbTable, err := fabric.NewLB("lb", filter.BaseIP, fabric.LBConfig{
		VIP: fabricVIP, Port: 7, Servers: pool, PoolCIDR: "10.0.2.0/24",
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	nat, natTable, err := fabric.NewNAT("nat", filter.BaseIP, fabric.NATConfig{
		Addr: fabricNATAddr, InsideCIDR: "10.0.1.0/24",
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ecmp, ecmpRule, err := fabric.NewECMP("ecmp", "", filter.BaseIP, fabricGatewayLinks)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pl := fabric.NewPipeline("cell", filter.BaseIP, event.QuarantinePolicy{Threshold: 3}).
		Add(acl).Add(lbTable).Add(natTable).Add(fabric.NewTable("ecmp").Add(ecmpRule))
	return pl, lb, nat, ecmp, nil
}

// fabricCell runs one (rate, pool) configuration.
func fabricCell(rate, pool int, duration sim.Time) (FabricRow, error) {
	clientSegment := plexus.SegmentSpec{
		Name: "lan0", Model: netdev.EthernetModel(), Switched: true,
		Subnet: view.IP4{10, 0, 1, 0},
	}
	for i := 0; i < fabricClients; i++ {
		clientSegment.Hosts = append(clientSegment.Hosts,
			hostSpec(fmt.Sprintf("c%03d", i), SysPlexusInterrupt))
	}
	rackSegment := plexus.SegmentSpec{
		Name: "lan1", Model: netdev.EthernetModel(), Switched: true,
		Subnet: view.IP4{10, 0, 2, 0}, GatewayLinks: fabricGatewayLinks,
	}
	for i := 0; i < pool; i++ {
		rackSegment.Hosts = append(rackSegment.Hosts,
			hostSpec(fmt.Sprintf("s%02d", i), SysPlexusInterrupt))
	}
	gw := hostSpec("gw", SysPlexusInterrupt)
	top, err := plexus.NewTopology(1, &gw, []plexus.SegmentSpec{clientSegment, rackSegment})
	if err != nil {
		return FabricRow{}, err
	}
	top.PrimeARP()
	defer recordEvents(top.Sim)

	servers := top.Segments[1].Hosts
	poolAddrs := make([]view.IP4, len(servers))
	for i, s := range servers {
		poolAddrs[i] = s.Addr()
	}
	pl, lb, nat, ecmp, err := fabricPipeline(poolAddrs)
	if err != nil {
		return FabricRow{}, err
	}
	top.Gateway.InstallPipeline(pl)

	rackGW := top.Segments[1].GW
	for _, s := range servers {
		if err := startEchoServer(s); err != nil {
			return FabricRow{}, err
		}
		// The NAT address lives on no interface: servers resolve it to the
		// gateway's rack-side MAC so replies enter the forwarding path.
		s.ARP.AddStatic(fabricNATAddr, rackGW.NIC.MAC())
	}

	interval := sim.Second / sim.Time(rate)
	var pcs []*pacedClient
	for ci, cl := range top.Segments[0].Hosts {
		pc := &pacedClient{st: cl, server: fabricVIP, interval: interval, duration: duration,
			msg: make([]byte, fabricEchoPayload)}
		pc.app, err = cl.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			pc.onReply(t, data)
		})
		if err != nil {
			return FabricRow{}, err
		}
		pcs = append(pcs, pc)
		// Stagger starts across the interval so offered load is smooth.
		offset := interval * sim.Time(ci) / sim.Time(fabricClients)
		cl.Host.Sim.AtArg(offset, "paced-tick", pacedTick, pc)
	}

	top.Sim.RunUntil(duration)

	row := FabricRow{Rate: rate, PoolSize: pool, Clients: fabricClients}
	var rtts []sim.Time
	for _, pc := range pcs {
		row.Ops += pc.ops
		row.Retries += pc.retries
		row.GoodputMbps += float64(pc.bytes)
		rtts = append(rtts, pc.rtts...)
	}
	row.GoodputMbps = row.GoodputMbps * 8 / duration.Seconds() / 1e6
	s := summarize(rtts)
	row.P50, row.P99 = s.P50, s.P99

	hits := lb.Hits()
	var total, max uint64
	for _, h := range hits {
		total += h
		if h > max {
			max = h
		}
	}
	if total > 0 {
		row.Skew = float64(max) * float64(len(hits)) / float64(total)
	}
	row.NATOccupancy = nat.Occupancy()
	row.LinkHits = append(row.LinkHits, ecmp.Hits()...)
	row.PipeDrops = top.Gateway.Stats().PipeDrops
	for _, rs := range pl.Snapshot() {
		row.RuleHits = append(row.RuleHits, FabricRuleHits{Table: rs.Table, Rule: rs.Name, Hits: rs.Hits})
	}
	row.Events = top.Sim.Executed()
	if row.Ops == 0 {
		return FabricRow{}, fmt.Errorf("no operations completed")
	}
	return row, nil
}
