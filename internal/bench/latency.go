package bench

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/stats"
	"plexus/internal/view"
)

// This file implements the `-exp latency` experiment: the Figure 5 UDP echo
// workload re-run with the flight-recorder plane enabled and enough rounds
// for meaningful tail percentiles. Rows carry p50/p90/p99 RTT from the
// fixed-bucket histogram plane plus the server's mbuf gauge, so tail-latency
// and buffer-leak regressions are diffable across PRs. Every cell attaches
// its own stats.Recorder — metrics on — which doubles as a standing proof
// that recording perturbs neither the simulated results nor determinism.

// udpEchoRTTs runs the Figure 5 UDP ping-pong and returns every post-warm-up
// round-trip sample plus the server dispatcher's health snapshot (which
// includes the mbuf gauge). rec, when non-nil, is installed as the cell
// simulator's metrics sink before any traffic flows.
func udpEchoRTTs(model netdev.Model, sys System, payload, rounds int, rec sim.Metrics) ([]sim.Time, event.Health, error) {
	n, client, server, err := plexus.TwoHosts(1, model, hostSpec("client", sys), hostSpec("server", sys))
	if err != nil {
		return nil, event.Health{}, err
	}
	n.Sim.SetMetrics(rec)
	defer recordEvents(n.Sim)
	var echo *plexus.UDPApp
	echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		t.Charge(server.Host.Costs.AppHandler)
		_ = echo.Send(t, src, srcPort, data)
	})
	if err != nil {
		return nil, event.Health{}, err
	}
	msg := make([]byte, payload)
	var capp *plexus.UDPApp
	var starts, ends []sim.Time
	capp, err = client.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		t.Charge(client.Host.Costs.AppHandler)
		ends = append(ends, t.Now())
		if len(ends) < rounds+1 { // +1: warm-up round
			starts = append(starts, t.Now())
			_ = capp.Send(t, server.Addr(), 7, msg)
		}
	})
	if err != nil {
		return nil, event.Health{}, err
	}
	client.Spawn("client", func(t *sim.Task) {
		starts = append(starts, t.Now())
		_ = capp.Send(t, server.Addr(), 7, msg)
	})
	n.Sim.RunUntil(60 * sim.Second)
	if len(ends) < rounds+1 {
		return nil, event.Health{}, fmt.Errorf("bench: only %d echo rounds completed", len(ends))
	}
	rtts := make([]sim.Time, rounds)
	for i := 1; i <= rounds; i++ { // skip warm-up
		rtts[i-1] = ends[i] - starts[i]
	}
	return rtts, server.Host.Disp.Health(), nil
}

// rttSummary reduces round-trip samples through a fixed-bucket histogram to
// the percentile columns the rows report.
type rttSummary struct {
	Mean sim.Time `json:"mean_ns"`
	P50  sim.Time `json:"p50_ns"`
	P90  sim.Time `json:"p90_ns"`
	P99  sim.Time `json:"p99_ns"`
}

func summarize(rtts []sim.Time) rttSummary {
	var h stats.Histogram
	for _, r := range rtts {
		h.Observe(int64(r))
	}
	return rttSummary{
		Mean: sim.Time(h.Mean()),
		P50:  sim.Time(h.Quantile(0.50)),
		P90:  sim.Time(h.Quantile(0.90)),
		P99:  sim.Time(h.Quantile(0.99)),
	}
}

// LatencyRow is one cell of the `-exp latency` sweep.
type LatencyRow struct {
	Device string `json:"device"`
	System System `json:"system"`
	Rounds int    `json:"rounds"`
	rttSummary
	// Server-side mbuf gauge after the run: in-flight counts expose leaks,
	// high-water marks expose buffering regressions.
	Mbuf struct {
		InUse         int64 `json:"in_use"`
		ClustersInUse int64 `json:"clusters_in_use"`
		HighWater     int64 `json:"high_water"`
	} `json:"mbuf"`
	// HopsRecorded is the number of packet-lifecycle hops the cell's
	// recorder captured — a quick sanity signal that spans flowed.
	HopsRecorded uint64 `json:"hops_recorded"`
}

// Latency runs the UDP echo RTT distribution sweep with metrics enabled:
// every device × system, rounds ping-pongs each, one recorder per cell.
// Rows are byte-identical at any parallelism.
func Latency(rounds int) ([]LatencyRow, error) {
	const payload = 8
	type cell struct {
		model netdev.Model
		sys   System
	}
	var cells []cell
	for _, model := range Devices() {
		for _, sys := range []System{SysPlexusInterrupt, SysPlexusThread, SysDUX} {
			cells = append(cells, cell{model: model, sys: sys})
		}
	}
	return RunCells(cells, func(c cell) (LatencyRow, error) {
		rec := stats.NewRecorder(stats.Config{})
		rtts, health, err := udpEchoRTTs(c.model, c.sys, payload, rounds, rec)
		if err != nil {
			return LatencyRow{}, fmt.Errorf("latency %s/%s: %w", c.model.Name, c.sys, err)
		}
		row := LatencyRow{Device: c.model.Name, System: c.sys, Rounds: rounds,
			rttSummary: summarize(rtts), HopsRecorded: rec.HopsRecorded()}
		row.Mbuf.InUse = health.Mbuf.InUse
		row.Mbuf.ClustersInUse = health.Mbuf.InUseClusters
		row.Mbuf.HighWater = health.Mbuf.HighWater
		return row, nil
	})
}

// DefaultLatencyRounds is the per-cell round count of `-exp latency`.
const DefaultLatencyRounds = 200
