package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"plexus/internal/sim"
)

// This file implements the parallel experiment harness. Every experiment cell
// (one device × system × parameter configuration) builds its own seeded
// sim.Sim, its own link, and its own per-host mbuf pools, so cells share no
// mutable state and are embarrassingly parallel. RunCells fans them out over
// a bounded worker pool while returning results in deterministic input
// order: because each cell's simulated result depends only on its own seed,
// parallelism never changes any reported number, only the wall-clock spent
// producing it.

// parallelism holds the worker-pool width; 0 means GOMAXPROCS.
var parallelism atomic.Int32

// SetParallelism bounds the number of experiment cells executed concurrently.
// n <= 0 resets to the default (GOMAXPROCS). cmd/plexus-bench wires its
// -parallel flag here; 1 recovers fully sequential execution.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the effective worker-pool width.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// shardWorkers holds the per-cell shard worker count for sharded topologies;
// 0 or 1 means sequential shard execution.
var shardWorkers atomic.Int32

// SetShardWorkers sets how many goroutines each sharded experiment cell uses
// to advance its shards. cmd/plexus-bench wires its -shards flag here. The
// setting changes wall-clock only: the shard partition is fixed by the
// topology, so rows are byte-identical at any value.
func SetShardWorkers(n int) {
	if n < 1 {
		n = 1
	}
	shardWorkers.Store(int32(n))
}

// ShardWorkers reports the effective shard worker count.
func ShardWorkers() int {
	if n := int(shardWorkers.Load()); n > 0 {
		return n
	}
	return 1
}

// simEvents accumulates sim.Sim.Executed across experiment cells, feeding the
// events/sec figure in plexus-bench's -json output.
var simEvents atomic.Uint64

// recordEvents credits a finished cell's fired-event count to the harness
// total. Experiment cells call it once per simulator they drive.
func recordEvents(s *sim.Sim) { simEvents.Add(s.Executed()) }

// ResetEventCount zeroes the harness event counter (called per experiment).
func ResetEventCount() { simEvents.Store(0) }

// EventCount reports events fired since the last ResetEventCount.
func EventCount() uint64 { return simEvents.Load() }

// RunCells executes run over every cell on a worker pool of Parallelism()
// goroutines and returns the results in input order. All cells are always
// executed (no early exit), and the returned error is the first failing
// cell's error by input position — so success, results, and error are all
// byte-identical whatever the parallelism.
func RunCells[C, R any](cells []C, run func(C) (R, error)) ([]R, error) {
	results := make([]R, len(cells))
	errs := make([]error, len(cells))
	workers := Parallelism()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i := range cells {
			results[i], errs[i] = run(cells[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cells) {
						return
					}
					results[i], errs[i] = run(cells[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
