package bench

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/seqpkt"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// This file implements the `-exp rogue` sandbox experiment: how much a
// well-behaved flow pays while misbehaving extensions are installed beside
// it, and how quickly the quarantine ejects them. Each cell installs N
// rogues (cycling through the archetypes of internal/plexus/rogue.go) on
// the receiver, runs a legitimate workload to completion, and reports both
// the flow's headline metric and the dispatcher's fault accounting. The
// DIGITAL UNIX personality runs the same rogues through its softirq path —
// the paper's safety argument (§2, §3.3) is about the extension
// architecture, not a particular dispatch mode, so both must survive.

// Quarantine policy used by every rogue cell.
const (
	rogueThreshold   = 5
	rogueGuardBudget = 5 * sim.Microsecond
)

// RogueRow is one cell of the sandbox sweep: a rogue count, a system, a
// workload, the flow's outcome, and the dispatcher's health counters after
// the run.
type RogueRow struct {
	Rogues   int    `json:"rogues"`
	System   System `json:"system"`
	Workload string `json:"workload"`

	// GoodputMbps is the receiver-observed rate (tcp-bulk only).
	GoodputMbps float64 `json:"goodput_mbps,omitempty"`
	// DeliveredPct is the fraction of the offered workload that completed.
	DeliveredPct float64 `json:"delivered_pct"`

	// Dispatcher fault accounting on the receiver after the run.
	Quarantined   int    `json:"quarantined"`
	Panics        uint64 `json:"panics"`
	GuardPanics   uint64 `json:"guard_panics"`
	Terminations  uint64 `json:"terminations"`
	GuardOverruns uint64 `json:"guard_overruns"`

	// AuditTransitions counts TCP state transitions observed by the RFC 793
	// conformance checkers on both hosts; AuditViolations must be zero for
	// the cell to produce a row at all (a violation fails the sweep).
	AuditTransitions uint64 `json:"audit_transitions"`
	AuditViolations  uint64 `json:"audit_violations"`
}

// rogueQuarantine is the ejection policy every rogue cell runs under.
func rogueQuarantine() event.QuarantinePolicy {
	return event.QuarantinePolicy{Threshold: rogueThreshold, GuardBudget: rogueGuardBudget}
}

// rogueRig is a two-host network with rogues rogue extensions installed on
// the server, cycling through the archetypes in canonical order.
func rogueRig(sys System, rogues int) (*plexus.Network, *plexus.Stack, *plexus.Stack, error) {
	ca, sa := hostSpec("client", sys), hostSpec("server", sys)
	ca.Quarantine, sa.Quarantine = rogueQuarantine(), rogueQuarantine()
	n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(), ca, sa)
	if err != nil {
		return nil, nil, nil, err
	}
	kinds := plexus.RogueKinds()
	for i := 0; i < rogues; i++ {
		if _, err := server.InstallExtension(plexus.RogueExtension(kinds[i%len(kinds)], i)); err != nil {
			return nil, nil, nil, fmt.Errorf("install rogue %d: %w", i, err)
		}
	}
	return n, client, server, nil
}

// health copies the server dispatcher's fault counters into the row.
func (r *RogueRow) health(server *plexus.Stack) {
	h := server.Host.Disp.Health()
	r.Quarantined = h.Quarantined
	r.Panics = h.Panics
	r.GuardPanics = h.GuardPanics
	r.Terminations = h.Terminations
	r.GuardOverruns = h.GuardOverruns
}

// rogueTCPBulk pushes size bytes through one TCP connection while the
// rogues misbehave on the receive path and reports goodput plus the
// delivered fraction — TCP is reliable, so under 100% means the sandbox
// failed to protect the flow within the horizon.
func rogueTCPBulk(sys System, rogues, size int) (RogueRow, error) {
	n, client, server, err := rogueRig(sys, rogues)
	if err != nil {
		return RogueRow{}, err
	}
	aud := attachAudit(client, server)
	defer recordEvents(n.Sim)
	var got int
	var first, last sim.Time
	_, err = server.ListenTCP(5001, plexus.TCPAppOptions{
		OnRecv: func(t *sim.Task, conn *plexus.TCPApp, data []byte) {
			if got == 0 {
				first = t.Now()
			}
			got += len(data)
			last = t.Now()
		},
		OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
	}, nil)
	if err != nil {
		return RogueRow{}, err
	}
	msg := make([]byte, size)
	client.Spawn("sender", func(t *sim.Task) {
		_, _ = client.ConnectTCP(t, server.Addr(), 5001, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if err := aud.check(); err != nil {
		return RogueRow{}, err
	}
	row := RogueRow{DeliveredPct: 100 * float64(got) / float64(size)}
	if got > 0 && last > first {
		row.GoodputMbps = float64(got) * 8 / (last - first).Seconds() / 1e6
	}
	row.AuditTransitions = aud.transitions()
	row.AuditViolations = aud.violations()
	row.health(server)
	return row, nil
}

// rogueSPPStream sends msgs fixed-size SPP messages at a 20ms cadence with
// the rogues installed on the receiver and reports the delivered fraction.
func rogueSPPStream(sys System, rogues, msgs, msgSize int) (RogueRow, error) {
	n, client, server, err := rogueRig(sys, rogues)
	if err != nil {
		return RogueRow{}, err
	}
	aud := attachAudit(client, server)
	defer recordEvents(n.Sim)
	install := func(st *plexus.Stack) (*seqpkt.Manager, error) {
		return seqpkt.Install(seqpkt.Config{
			Sim:              st.Host.Sim,
			IP:               st.IP,
			Disp:             st.Host.Disp,
			Raise:            st.Raiser(),
			CPU:              st.Host.CPU,
			Pool:             st.Host.Pool,
			Costs:            st.Host.Costs,
			RequireEphemeral: st.InterruptMode(),
		})
	}
	mc, err := install(client)
	if err != nil {
		return RogueRow{}, err
	}
	ms, err := install(server)
	if err != nil {
		return RogueRow{}, err
	}
	rx, err := ms.Open(40, func(t *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {})
	if err != nil {
		return RogueRow{}, err
	}
	tx, err := mc.Open(41, nil)
	if err != nil {
		return RogueRow{}, err
	}
	payload := make([]byte, msgSize)
	for i := 0; i < msgs; i++ {
		client.SpawnAt(sim.Time(i+1)*20*sim.Millisecond, "spp-sender", func(t *sim.Task) {
			_, _ = tx.Send(t, server.Addr(), 40, payload)
		})
	}
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if err := aud.check(); err != nil {
		return RogueRow{}, err
	}
	row := RogueRow{DeliveredPct: 100 * float64(rx.Stats().Delivered) / float64(msgs)}
	row.AuditTransitions = aud.transitions()
	row.AuditViolations = aud.violations()
	row.health(server)
	return row, nil
}

// Rogue runs the sandbox sweep: every rogue count × system × workload as an
// independent cell (its own sim and hosts), fanned out over RunCells —
// rows are byte-identical at any parallelism.
func Rogue(counts []int) ([]RogueRow, error) {
	const (
		tcpBytes = 128 << 10
		sppMsgs  = 50
		sppSize  = 300
	)
	type cell struct {
		rogues int
		sys    System
		wl     string
	}
	var cells []cell
	for _, rogues := range counts {
		for _, sys := range []System{SysPlexusInterrupt, SysDUX} {
			for _, wl := range []string{WorkloadTCPBulk, WorkloadSPPStream} {
				cells = append(cells, cell{rogues, sys, wl})
			}
		}
	}
	return RunCells(cells, func(c cell) (RogueRow, error) {
		var row RogueRow
		var err error
		switch c.wl {
		case WorkloadTCPBulk:
			row, err = rogueTCPBulk(c.sys, c.rogues, tcpBytes)
		default:
			row, err = rogueSPPStream(c.sys, c.rogues, sppMsgs, sppSize)
		}
		if err != nil {
			return RogueRow{}, fmt.Errorf("rogue %d/%s/%s: %w", c.rogues, c.sys, c.wl, err)
		}
		row.Rogues = c.rogues
		row.System = c.sys
		row.Workload = c.wl
		return row, nil
	})
}

// DefaultRogueCounts is the sweep of the `-exp rogue` experiment.
func DefaultRogueCounts() []int { return []int{0, 1, 2, 4} }
