package bench

import (
	"reflect"
	"testing"

	"plexus/internal/sim"
)

// ccFastCell is the cheapest cell in the sweep: 100 Mb/s (4s measurement
// window), short propagation, no injected loss.
func ccFastCell(algoA, algoB string, loss float64) ccCell {
	return ccCell{algoA: algoA, algoB: algoB, bwMbps: 100,
		prop: 50 * sim.Microsecond, loss: loss}
}

// One clean cell produces a coherent row: both flows move traffic, the
// bottleneck queue is observed, and the conformance auditors see a healthy
// number of transitions with zero violations. The 10 Mb/s cell is the one
// whose bottleneck queue visibly builds at the 1ms sampling grain.
func TestCCCellSmoke(t *testing.T) {
	c := ccCell{algoA: "newreno", algoB: "newreno", bwMbps: 10,
		prop: 50 * sim.Microsecond, loss: 0, seed: 1}
	row, stats, err := runCCDebug(c, ccOfferedBytes(c.bwMbps))
	if err != nil {
		t.Fatal(err)
	}
	if row.GoodputA <= 0 || row.GoodputB <= 0 {
		t.Fatalf("starved flow: goodput A %.3f B %.3f", row.GoodputA, row.GoodputB)
	}
	if sum := row.GoodputA + row.GoodputB; sum > float64(c.bwMbps) {
		t.Errorf("aggregate goodput %.2f exceeds the %d Mb/s wire", sum, c.bwMbps)
	}
	if row.QueuePeak == 0 || row.QueueMean <= 0 {
		t.Error("bottleneck queue never observed; the flows are not competing")
	}
	if row.AuditTransitions == 0 {
		t.Error("auditors saw no TCP transitions")
	}
	if row.AuditViolations != 0 {
		t.Errorf("%d audit violations in a clean cell", row.AuditViolations)
	}
	for i, cs := range stats {
		if cs.SegsSent == 0 {
			t.Errorf("flow %d sent nothing", i)
		}
	}
}

// The acceptance gate as a unit test: two NewReno flows with no injected
// loss must share the bottleneck at Jain ≥ 0.95 (seed-averaged, like the
// committed baseline).
func TestCCFairnessGate(t *testing.T) {
	row, err := runCCCell(ccFastCell("newreno", "newreno", 0))
	if err != nil {
		t.Fatal(err)
	}
	if row.Jain < 0.95 {
		t.Fatalf("Jain = %.4f for newreno/newreno at 0%% loss, want >= 0.95 (goodputs %.3f / %.3f)",
			row.Jain, row.GoodputA, row.GoodputB)
	}
}

// Under injected loss the recovery machinery must actually engage: both
// senders retransmit, SACK blocks flow, and the scoreboard drives selective
// retransmissions — all without a single audit violation.
func TestCCLossCellRecoveryCounters(t *testing.T) {
	c := ccFastCell("newreno", "newreno", 0.02)
	c.seed = 1
	row, stats, err := runCCDebug(c, ccOfferedBytes(c.bwMbps))
	if err != nil {
		t.Fatal(err)
	}
	if row.FaultLost == 0 {
		t.Fatal("injector dropped nothing at 2% loss")
	}
	if row.AuditViolations != 0 {
		t.Errorf("%d audit violations under loss", row.AuditViolations)
	}
	for i, cs := range stats {
		if cs.Retransmits == 0 {
			t.Errorf("flow %d never retransmitted under 2%% loss", i)
		}
		if cs.SacksRcvd == 0 {
			t.Errorf("flow %d received no SACK blocks", i)
		}
	}
	if stats[0].SackRexmits+stats[1].SackRexmits == 0 {
		t.Error("no scoreboard-driven retransmissions in a lossy cell")
	}
}

// A cell is a pure function of its parameters: running it twice yields
// byte-identical rows and counter snapshots. This is the per-cell half of
// the determinism property; the cross-parallelism half is RunCells' (tested
// in runner_test.go) plus the CI diff of `-exp cc` at -parallel 1 vs 8.
func TestCCCellDeterministic(t *testing.T) {
	c := ccFastCell("newreno", "cubic", 0.02)
	c.seed = 3
	r1, s1, err := runCCDebug(c, ccOfferedBytes(c.bwMbps))
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := runCCDebug(c, ccOfferedBytes(c.bwMbps))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("identical cell diverged:\nrow1 %+v\nrow2 %+v\nstats1 %+v\nstats2 %+v", r1, r2, s1, s2)
	}
}
