package bench

import (
	"encoding/json"
	"testing"

	"plexus/internal/sim"
)

// One small fabric cell completes round trips through the full service chain
// and reports sane service metrics.
func TestFabricCellSmoke(t *testing.T) {
	rows, err := Fabric([]int{200}, []int{2}, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("row: ops=%d p50=%v p99=%v retries=%d skew=%.2f nat=%d links=%v drops=%d",
		r.Ops, r.P50, r.P99, r.Retries, r.Skew, r.NATOccupancy, r.LinkHits, r.PipeDrops)
	if r.Ops == 0 {
		t.Fatal("no ops")
	}
	if r.NATOccupancy != fabricClients {
		t.Errorf("NAT occupancy %d, want %d", r.NATOccupancy, fabricClients)
	}
	if len(r.LinkHits) != fabricGatewayLinks || r.LinkHits[0] == 0 || r.LinkHits[1] == 0 {
		t.Errorf("ECMP split %v, want traffic on both links", r.LinkHits)
	}
	if r.PipeDrops != 0 {
		t.Errorf("pipe drops %d on clean traffic", r.PipeDrops)
	}
	if r.Skew < 1.0 {
		t.Errorf("skew %.2f < 1", r.Skew)
	}
}

// Rows are byte-identical whatever the cell parallelism.
func TestFabricDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) string {
		SetParallelism(par)
		defer SetParallelism(0)
		rows, err := Fabric([]int{200}, []int{2, 4}, 20*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Errorf("rows differ across parallelism:\nseq: %s\npar: %s", seq, par)
	}
}
