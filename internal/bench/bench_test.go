package bench

import (
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/sim"
)

func TestFig5Shapes(t *testing.T) {
	rows, err := Fig5(false)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]sim.Time{}
	for _, r := range rows {
		byKey[r.Device+"/"+string(r.System)] = r.RTT
		t.Logf("%-10s %-22s %v", r.Device, r.System, r.RTT)
	}
	for _, dev := range []string{"ethernet", "fore-atm", "dec-t3"} {
		intr := byKey[dev+"/"+string(SysPlexusInterrupt)]
		thr := byKey[dev+"/"+string(SysPlexusThread)]
		dux := byKey[dev+"/"+string(SysDUX)]
		drv := byKey[dev+"/"+string(SysDriverMin)]
		if !(drv < intr && intr < thr && thr < dux) {
			t.Errorf("%s: ordering violated: drv=%v intr=%v thr=%v dux=%v", dev, drv, intr, thr, dux)
		}
		if ratio := float64(dux) / float64(intr); ratio < 1.4 {
			t.Errorf("%s: DUX/Plexus ratio %.2f below 1.4", dev, ratio)
		}
	}
	// Paper §1 headline envelopes.
	if rtt := byKey["ethernet/"+string(SysPlexusInterrupt)]; rtt > 600*sim.Microsecond {
		t.Errorf("Ethernet Plexus RTT %v > 600µs", rtt)
	}
	if rtt := byKey["fore-atm/"+string(SysPlexusInterrupt)]; rtt > 350*sim.Microsecond {
		t.Errorf("ATM Plexus RTT %v > 350µs", rtt)
	}
	if rtt := byKey["dec-t3/"+string(SysPlexusInterrupt)]; rtt > 330*sim.Microsecond {
		t.Errorf("T3 Plexus RTT %v > 330µs", rtt)
	}
}

func TestFig5FastDriver(t *testing.T) {
	rows, err := Fig5(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-18s %-22s %v", r.Device, r.System, r.RTT)
		if r.Device == "dec-t3-fastdrv" {
			t.Error("fast-driver T3 should be skipped (paper had none)")
		}
	}
	slow, err := Fig5(false)
	if err != nil {
		t.Fatal(err)
	}
	find := func(rows []Fig5Row, dev string, sys System) sim.Time {
		for _, r := range rows {
			if r.Device == dev && r.System == sys {
				return r.RTT
			}
		}
		return 0
	}
	if fast := find(rows, "ethernet-fastdrv", SysPlexusInterrupt); fast >= find(slow, "ethernet", SysPlexusInterrupt) {
		t.Errorf("fast driver not faster: %v", fast)
	}
}

func TestThroughputShapes(t *testing.T) {
	rows, err := Throughput(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	get := func(dev string, sys System) float64 {
		for _, r := range rows {
			if r.Device == dev && r.System == sys {
				return r.Mbps
			}
		}
		return 0
	}
	for _, r := range rows {
		t.Logf("%-10s %-22s %6.1f Mb/s", r.Device, r.System, r.Mbps)
	}
	// Ethernet: both systems wire-limited and nearly identical (§4.2).
	eSpin, eDux := get("ethernet", SysPlexusInterrupt), get("ethernet", SysDUX)
	if eSpin < 7.5 || eSpin > 10 {
		t.Errorf("Ethernet Plexus %.1f Mb/s outside [7.5, 10]", eSpin)
	}
	if diff := eSpin - eDux; diff < -1 || diff > 2 {
		t.Errorf("Ethernet systems should be nearly identical: %.1f vs %.1f", eSpin, eDux)
	}
	// ATM: PIO-limited; Plexus wins (paper: 33 vs 27.9).
	aSpin, aDux := get("fore-atm", SysPlexusInterrupt), get("fore-atm", SysDUX)
	if aSpin <= aDux {
		t.Errorf("ATM: Plexus (%.1f) should beat DUX (%.1f)", aSpin, aDux)
	}
	if aSpin > 53 {
		t.Errorf("ATM Plexus %.1f exceeds the 53Mb/s PIO ceiling", aSpin)
	}
}

func TestFig6Shapes(t *testing.T) {
	rows, err := Fig6([]int{5, 10, 15, 20})
	if err != nil {
		t.Fatal(err)
	}
	var prevSpin float64
	for _, r := range rows {
		spin := r.Utilization[SysPlexusInterrupt]
		dux := r.Utilization[SysDUX]
		t.Logf("%2d streams: SPIN %5.1f%%  DUX %5.1f%%  goodput %5.1f Mb/s",
			r.Streams, spin*100, dux*100, r.GoodputMbps)
		if dux < 1.6*spin {
			t.Errorf("%d streams: DUX should use ~2x the CPU (%.3f vs %.3f)", r.Streams, dux, spin)
		}
		if spin < prevSpin {
			t.Errorf("utilization decreased at %d streams", r.Streams)
		}
		prevSpin = spin
	}
	// Saturation: goodput at 15 streams near the 45Mb/s T3.
	for _, r := range rows {
		if r.Streams == 15 && (r.GoodputMbps < 38 || r.GoodputMbps > 46) {
			t.Errorf("15 streams should saturate the T3: %.1f Mb/s", r.GoodputMbps)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7([]int{64, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%5dB: kernel %v  splice %v  ratio %.2f",
			r.PayloadBytes, r.KernelLatency, r.SpliceLatency,
			float64(r.SpliceLatency)/float64(r.KernelLatency))
		if r.SpliceLatency <= r.KernelLatency {
			t.Errorf("%dB: splice should be slower", r.PayloadBytes)
		}
	}
}

func TestSpoofPolicyAblation(t *testing.T) {
	rows, err := SpoofPolicyAblation(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-28s %v (%s)", r.Name, r.Value, r.Note)
		if r.Value <= 0 {
			t.Errorf("%s: no cost measured", r.Name)
		}
	}
}

func TestChecksumAblation(t *testing.T) {
	rows, err := ChecksumAblation(1400)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Value >= rows[0].Value {
		t.Errorf("checksum-off (%v) should beat checksum-on (%v)", rows[1].Value, rows[0].Value)
	}
	for _, r := range rows {
		t.Logf("%-28s %v", r.Name, r.Value)
	}
}

func TestGuardChainAblation(t *testing.T) {
	rows, err := GuardChainAblation([]int{0, 25, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-36s %v", r.Name, r.Value)
	}
	// 100 extra guards cost well under the protocol-processing scale.
	if added := rows[2].Value - rows[0].Value; added > 100*sim.Microsecond {
		t.Errorf("100 extra guards added %v", added)
	}
}

func TestDevicesList(t *testing.T) {
	d := Devices()
	if len(d) != 3 {
		t.Fatalf("Devices() = %d models", len(d))
	}
	if d[0].Name != netdev.EthernetModel().Name {
		t.Error("device order changed; EXPERIMENTS.md tables depend on it")
	}
}

func TestFilterBackendAblation(t *testing.T) {
	rows, err := FilterBackendAblation(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-36s %v (%s)", r.Name, r.Value, r.Note)
	}
	if rows[1].Value <= rows[0].Value {
		t.Errorf("interpreted filters (%v) should cost more than native guards (%v)",
			rows[1].Value, rows[0].Value)
	}
}

func TestILPAblation(t *testing.T) {
	rows, err := ILPAblation(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-40s %v (%s)", r.Name, r.Value, r.Note)
	}
	if rows[1].Value >= rows[0].Value {
		t.Errorf("ILP (%v) should beat two-pass (%v)", rows[1].Value, rows[0].Value)
	}
}

func TestHTTPDemo(t *testing.T) {
	rows, err := HTTP(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-22s %v", r.System, r.Latency)
	}
	if rows[1].Latency <= rows[0].Latency {
		t.Errorf("monolithic HTTP server (%v) should be slower than the SPIN extension (%v)",
			rows[1].Latency, rows[0].Latency)
	}
}
