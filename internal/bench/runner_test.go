package bench

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCellsOrderAndConcurrency(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	cells := make([]int, 32)
	for i := range cells {
		cells[i] = i
	}
	var running, peak atomic.Int32
	results, err := RunCells(cells, func(c int) (int, error) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		running.Add(-1)
		return c * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*10 {
			t.Fatalf("results[%d] = %d, want %d (input order must be preserved)", i, r, i*10)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent cells, parallelism capped at 4", p)
	}
}

func TestRunCellsFirstErrorByIndex(t *testing.T) {
	errA := errors.New("cell 3 failed")
	errB := errors.New("cell 7 failed")
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		_, err := RunCells([]int{0, 1, 2, 3, 4, 5, 6, 7}, func(c int) (int, error) {
			switch c {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return c, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("parallel=%d: err = %v, want the lowest-index failure %v", par, err, errA)
		}
	}
	SetParallelism(0)
}

// TestFig5Deterministic is the determinism regression test the parallel
// harness rests on: every cell owns its seeded simulator, so sequential and
// fanned-out execution must produce identical rows.
func TestFig5Deterministic(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	seq, err := Fig5(false)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := Fig5(false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig5 rows differ between sequential and parallel runs:\nseq: %+v\npar: %+v", seq, par)
	}
}
