package bench

import (
	"bytes"
	"fmt"
	"io"
	"strconv"

	"plexus/internal/event"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/telemetry"
	"plexus/internal/view"
)

// This file implements the `-exp telemetry` experiment: the time-series
// plane's own evaluation. Each cell runs a fixed workload with the full
// whole-system probe set sampling at 1ms — link, mbuf pools, per-connection
// TCP, event-queue depth, and (sharded) per-port switch queues — with every
// watchdog armed. The row records how much the plane observed (series,
// points, ticks) and its determinism witness: the series digest, which must
// be identical at any -parallel or -shards setting because sampling rides
// the simulated clock. A clean cell must raise zero alarms; an alarm here
// fails the sweep the same way an audit violation fails `-exp loss`.

// telemetryInterval is the sampling period every cell uses.
const telemetryInterval = sim.Millisecond

// WorkloadShardedEcho is the sharded telemetry cell: per-shard engines over
// a switched two-segment cell with cross-segment traffic.
const WorkloadShardedEcho = "sharded-echo"

// TelemetryRow is one cell of the telemetry sweep.
type TelemetryRow struct {
	System   System   `json:"system"`
	Workload string   `json:"workload"`
	Interval sim.Time `json:"interval_ns"`
	// Shards is the number of per-shard sampling engines (1 for two-host
	// cells: one engine covers the whole network).
	Shards int `json:"shards"`
	// Series/Points/Ticks measure coverage: distinct time series, total
	// observations pushed (cumulative, not just retained), sampling ticks.
	Series int    `json:"series"`
	Points uint64 `json:"points"`
	Ticks  uint64 `json:"ticks"`
	// Digest is the FNV-1a series witness (per-shard digests folded in shard
	// order), rendered in hex. Byte-identical runs have equal digests.
	Digest string `json:"digest"`
	// Alarms must be zero: every cell is a clean path.
	Alarms uint64 `json:"alarms"`
	// TCP is the transports' conformance gauge summed over every host in the
	// cell (see LossRow.TCP).
	TCP event.TCPGauge `json:"tcp"`
}

// telemetryRowFrom summarizes one cell's engines into a row.
func telemetryRowFrom(sys System, wl string, engines []*telemetry.Engine) TelemetryRow {
	row := TelemetryRow{System: sys, Workload: wl, Interval: engines[0].Interval(), Shards: len(engines)}
	for _, e := range engines {
		row.Series += len(e.AllSeries())
		for _, se := range e.AllSeries() {
			row.Points += se.Total()
		}
		row.Ticks += e.Ticks()
		row.Alarms += e.AlarmTotal()
	}
	row.Digest = strconv.FormatUint(plexus.MergedDigest(engines), 16)
	return row
}

// telemetryDump concatenates the engines' JSONL exports in shard order.
func telemetryDump(engines []*telemetry.Engine) ([]byte, error) {
	var buf bytes.Buffer
	for _, e := range engines {
		if err := e.WriteJSONL(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// telemetryMonitorOptions is the full probe-and-watchdog configuration every
// cell runs under: all watchdogs armed with windows a clean run never hits.
func telemetryMonitorOptions() plexus.MonitorOptions {
	return plexus.MonitorOptions{
		Telemetry:       telemetry.Options{Interval: telemetryInterval},
		TCPStallWindow:  5 * sim.Second,
		PoolCap:         1 << 20,
		SwitchPinWindow: 100 * sim.Millisecond,
	}
}

// telemetryTCPBulk monitors a 256KB bulk transfer end to end.
func telemetryTCPBulk(sys System) (TelemetryRow, []byte, error) {
	n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		hostSpec("client", sys), hostSpec("server", sys))
	if err != nil {
		return TelemetryRow{}, nil, err
	}
	eng := n.Monitor(telemetryMonitorOptions())
	defer recordEvents(n.Sim)
	const size = 256 << 10
	got := 0
	_, err = server.ListenTCP(5001, plexus.TCPAppOptions{
		OnRecv:    func(t *sim.Task, conn *plexus.TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
	}, nil)
	if err != nil {
		return TelemetryRow{}, nil, err
	}
	msg := make([]byte, size)
	client.Spawn("sender", func(t *sim.Task) {
		_, _ = client.ConnectTCP(t, server.Addr(), 5001, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(10 * sim.Second)
	if got != size {
		return TelemetryRow{}, nil, fmt.Errorf("bulk transfer delivered %d of %d bytes", got, size)
	}
	row := telemetryRowFrom(sys, WorkloadTCPBulk, []*telemetry.Engine{eng})
	row.TCP = tcpGauge(client, server)
	dump, err := telemetryDump([]*telemetry.Engine{eng})
	return row, dump, err
}

// telemetryUDPEcho monitors a continuous 8-byte UDP echo loop.
func telemetryUDPEcho(sys System) (TelemetryRow, []byte, error) {
	n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		hostSpec("client", sys), hostSpec("server", sys))
	if err != nil {
		return TelemetryRow{}, nil, err
	}
	eng := n.Monitor(telemetryMonitorOptions())
	defer recordEvents(n.Sim)
	if err := startEchoServer(server); err != nil {
		return TelemetryRow{}, nil, err
	}
	msg := make([]byte, 8)
	rounds := 0
	var capp *plexus.UDPApp
	capp, err = client.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		rounds++
		_ = capp.Send(t, server.Addr(), 7, msg)
	})
	if err != nil {
		return TelemetryRow{}, nil, err
	}
	client.Spawn("kick", func(t *sim.Task) { _ = capp.Send(t, server.Addr(), 7, msg) })
	n.Sim.RunUntil(500 * sim.Millisecond)
	if rounds == 0 {
		return TelemetryRow{}, nil, fmt.Errorf("echo loop never completed a round")
	}
	row := telemetryRowFrom(sys, WorkloadUDPEcho, []*telemetry.Engine{eng})
	row.TCP = tcpGauge(client, server)
	dump, err := telemetryDump([]*telemetry.Engine{eng})
	return row, dump, err
}

// telemetrySharded monitors a two-segment switched cell — one engine per
// shard, each sampling only its shard's state — driven by local and
// cross-segment paced UDP echo. The engine advances on ShardWorkers()
// goroutines; the merged digest must not depend on that count.
func telemetrySharded(sys System) (TelemetryRow, []byte, error) {
	const (
		segments = 2
		perSeg   = 3
		duration = 300 * sim.Millisecond
	)
	segs := make([]plexus.SegmentSpec, segments)
	for i := 0; i < segments; i++ {
		spec := plexus.SegmentSpec{
			Name: fmt.Sprintf("seg%d", i), Model: netdev.EthernetModel(), Switched: true,
			Uplink: scaleUplinkModel(),
			Subnet: view.IP4{10, 0, byte(i + 1), 0},
		}
		for c := 0; c < perSeg; c++ {
			spec.Hosts = append(spec.Hosts, hostSpec(fmt.Sprintf("h%d-%d", i, c), sys))
		}
		segs[i] = spec
	}
	gw := hostSpec("gw", sys)
	top, err := plexus.NewShardedTopology(1, &gw, segs)
	if err != nil {
		return TelemetryRow{}, nil, err
	}
	top.PrimeARPSparse()
	engines := top.Monitor(telemetryMonitorOptions())
	defer func() {
		for _, s := range top.Sims {
			recordEvents(s)
		}
	}()

	var pcs []*pacedClient
	start := func(cl *plexus.Stack, server view.IP4, ival, offset sim.Time) error {
		pc := &pacedClient{st: cl, server: server, interval: ival, duration: duration,
			msg: make([]byte, scaleEchoPayload), rtts: make([]sim.Time, 0, int(duration/ival)+2)}
		var err error
		pc.app, err = cl.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			pc.onReply(t, data)
		})
		if err != nil {
			return err
		}
		pcs = append(pcs, pc)
		cl.Host.Sim.AtArg(offset, "paced-tick", pacedTick, pc)
		return nil
	}
	for si, seg := range top.Segments {
		if err := startEchoServer(seg.Hosts[0]); err != nil {
			return TelemetryRow{}, nil, err
		}
		// Host 1 paces cross-segment echoes through the gateway (at the
		// scale sweep's interval — the uplink RTT alone is ~40ms); host 2
		// echoes off the local server.
		remote := top.Segments[(si+1)%segments].Hosts[0]
		if err := start(seg.Hosts[1], remote.Addr(), scaleCrossInterval, 0); err != nil {
			return TelemetryRow{}, nil, err
		}
		if err := start(seg.Hosts[2], seg.Hosts[0].Addr(), 10*sim.Millisecond, 5*sim.Millisecond); err != nil {
			return TelemetryRow{}, nil, err
		}
	}
	top.Run(duration, ShardWorkers())

	for _, pc := range pcs {
		if pc.ops == 0 {
			return TelemetryRow{}, nil, fmt.Errorf("a paced client completed no ops")
		}
	}
	row := telemetryRowFrom(sys, WorkloadShardedEcho, engines)
	hosts := append([]*plexus.Stack{}, top.Gateway.Ifaces...)
	for _, seg := range top.Segments {
		hosts = append(hosts, seg.Hosts...)
	}
	row.TCP = tcpGauge(hosts...)
	dump, err := telemetryDump(engines)
	return row, dump, err
}

// telemetryCell is one cell of the sweep.
type telemetryCell struct {
	sys System
	wl  string
}

func telemetryCells() []telemetryCell {
	var cells []telemetryCell
	for _, sys := range []System{SysPlexusInterrupt, SysDUX} {
		for _, wl := range []string{WorkloadTCPBulk, WorkloadUDPEcho} {
			cells = append(cells, telemetryCell{sys, wl})
		}
	}
	// One sharded cell: per-shard engines, ShardWorkers() goroutines.
	cells = append(cells, telemetryCell{SysPlexusInterrupt, WorkloadShardedEcho})
	return cells
}

func runTelemetryCell(c telemetryCell) (TelemetryRow, []byte, error) {
	var row TelemetryRow
	var dump []byte
	var err error
	switch c.wl {
	case WorkloadTCPBulk:
		row, dump, err = telemetryTCPBulk(c.sys)
	case WorkloadUDPEcho:
		row, dump, err = telemetryUDPEcho(c.sys)
	default:
		row, dump, err = telemetrySharded(c.sys)
	}
	if err != nil {
		return TelemetryRow{}, nil, fmt.Errorf("telemetry %s/%s: %w", c.sys, c.wl, err)
	}
	if row.Alarms != 0 {
		return TelemetryRow{}, nil, fmt.Errorf("telemetry %s/%s: clean path raised %d watchdog alarms", c.sys, c.wl, row.Alarms)
	}
	return row, dump, nil
}

// Telemetry runs the sweep: every cell with the full probe set and all
// watchdogs armed, fanned out over RunCells.
func Telemetry() ([]TelemetryRow, error) {
	return RunCells(telemetryCells(), func(c telemetryCell) (TelemetryRow, error) {
		row, _, err := runTelemetryCell(c)
		return row, err
	})
}

// TelemetryDump runs the sweep and writes every cell's JSONL export to w,
// each cell preceded by a {"cell": ...} marker line. The output is the CI
// determinism witness: byte-identical at any -parallel or -shards setting.
func TelemetryDump(w io.Writer) error {
	cells := telemetryCells()
	dumps, err := RunCells(cells, func(c telemetryCell) ([]byte, error) {
		_, dump, err := runTelemetryCell(c)
		return dump, err
	})
	if err != nil {
		return err
	}
	for i, d := range dumps {
		if _, err := fmt.Fprintf(w, "{\"cell\":\"%s/%s\"}\n", cells[i].sys, cells[i].wl); err != nil {
			return err
		}
		if _, err := w.Write(d); err != nil {
			return err
		}
	}
	return nil
}
