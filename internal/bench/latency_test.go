package bench

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestLatencyDeterministic extends the determinism guarantee to the metrics
// plane: every latency cell attaches a live stats.Recorder, so identical rows
// at -parallel 1 and 4 prove that recording spans, samples, and histograms
// perturbs neither the simulation nor the harness ordering.
func TestLatencyDeterministic(t *testing.T) {
	const rounds = 50
	defer SetParallelism(0)
	SetParallelism(1)
	seq, err := Latency(rounds)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := Latency(rounds)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the marshalled form too: it is what plexus-bench -json emits
	// and what CI diffs, so it must be byte-identical.
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) || string(seqJSON) != string(parJSON) {
		t.Fatalf("Latency rows differ between sequential and parallel runs:\nseq: %s\npar: %s", seqJSON, parJSON)
	}
	for _, r := range seq {
		if r.P50 <= 0 || r.P50 > r.P90 || r.P90 > r.P99 {
			t.Fatalf("row %s/%s has non-monotone percentiles: %+v", r.Device, r.System, r)
		}
		if r.Mbuf.HighWater <= 0 {
			t.Fatalf("row %s/%s missing mbuf gauge: %+v", r.Device, r.System, r)
		}
		if r.Mbuf.InUse != 0 {
			t.Fatalf("row %s/%s leaks %d mbufs after the run", r.Device, r.System, r.Mbuf.InUse)
		}
		if r.HopsRecorded == 0 {
			t.Fatalf("row %s/%s recorded no packet hops", r.Device, r.System)
		}
	}
}

// TestRogueHealthDeterministic pins the dispatcher health and quarantine
// counters under the parallel harness: the safety numbers the rogue sweep
// reports must not depend on worker scheduling.
func TestRogueHealthDeterministic(t *testing.T) {
	counts := []int{0, 2}
	defer SetParallelism(0)
	SetParallelism(1)
	seq, err := Rogue(counts)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := Rogue(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Rogue rows differ between sequential and parallel runs:\nseq: %+v\npar: %+v", seq, par)
	}
	var quarantined int
	for _, r := range seq {
		quarantined += r.Quarantined
	}
	if quarantined == 0 {
		t.Fatal("rogue sweep with 2 rogues should quarantine at least one extension")
	}
}
