package bench

import (
	"encoding/binary"
	"fmt"

	"plexus/internal/httpx"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// This file implements the `-exp scale` experiment: N concurrent clients
// against one server over the switched fabric, on both measured systems. It
// is the load test the paper's two-machine numbers cannot answer — where
// does each structure fall over as the client population grows? Each cell
// reports goodput, server CPU utilization, p50/p99 operation latency, switch
// queue drops, and receiver frame errors; client losses are recovered by an
// application retry timer so drops cost latency rather than truncating the
// op count. Cells beyond one subnet's worth of clients are split across two
// switched segments joined by the gateway, so the biggest points also
// exercise the forwarding plane.

// Scale-experiment parameters.
const (
	// DefaultScaleDuration is the per-cell simulated run length.
	DefaultScaleDuration = 300 * sim.Millisecond
	// scaleEchoPayload is the UDP echo message size.
	scaleEchoPayload = 32
	// scaleRetryAfter rearms a client whose echo was tail-dropped.
	scaleRetryAfter = 25 * sim.Millisecond
	// scaleHTTPBody is the HTTP response body size.
	scaleHTTPBody = 1024
	// scaleSegmentClients caps clients per subnet (a /24 minus the server,
	// the gateway, and headroom); larger populations split across two
	// switched segments joined by the gateway.
	scaleSegmentClients = 200
)

// Workloads of the scale sweep.
const (
	WorkloadUDPEcho = "udp-echo"
	WorkloadHTTPGet = "http-get"
)

// DefaultScaleClients is the client-count sweep of `-exp scale`.
func DefaultScaleClients() []int { return []int{1, 4, 16, 64, 256} }

// ScaleRow is one cell of the `-exp scale` sweep.
type ScaleRow struct {
	Clients  int    `json:"clients"`
	System   System `json:"system"`
	Workload string `json:"workload"`
	// Segments is the number of subnets the clients were spread over.
	Segments int `json:"segments"`
	// Ops counts completed operations (echo round trips, or HTTP responses).
	Ops uint64 `json:"ops"`
	// GoodputMbps is application payload delivered to clients per second.
	GoodputMbps float64 `json:"goodput_mbps"`
	// ServerCPU is the server's CPU utilization over the run.
	ServerCPU float64  `json:"server_cpu"`
	P50       sim.Time `json:"p50_ns"`
	P99       sim.Time `json:"p99_ns"`
	// Retries counts client retry-timer firings (lost or late operations).
	Retries uint64 `json:"retries"`
	// SwitchDrops sums output-queue tail drops across the fabric.
	SwitchDrops uint64 `json:"switch_drops"`
	// RxErrors counts malformed frames at the server NIC.
	RxErrors uint64 `json:"rx_errors"`
}

// Scale runs the sweep: every client count × workload × system, each cell on
// its own seeded simulator. Rows are byte-identical at any parallelism.
func Scale(clientCounts []int, duration sim.Time) ([]ScaleRow, error) {
	type cell struct {
		clients  int
		workload string
		sys      System
	}
	var cells []cell
	for _, n := range clientCounts {
		for _, wl := range []string{WorkloadUDPEcho, WorkloadHTTPGet} {
			for _, sys := range []System{SysPlexusInterrupt, SysDUX} {
				cells = append(cells, cell{clients: n, workload: wl, sys: sys})
			}
		}
	}
	return RunCells(cells, func(c cell) (ScaleRow, error) {
		row, err := scaleCell(c.sys, c.workload, c.clients, duration)
		if err != nil {
			return ScaleRow{}, fmt.Errorf("scale %s/%s/%d: %w", c.sys, c.workload, c.clients, err)
		}
		return row, nil
	})
}

// scaleTopology builds the cell's fabric: the server plus clients on one
// switched segment, or — past one subnet's worth — split over two switched
// segments joined by the gateway. Returns the server and the client stacks.
func scaleTopology(sys System, clients int) (*plexus.Topology, *plexus.Stack, []*plexus.Stack, error) {
	clientSpec := func(i int) plexus.HostSpec {
		return hostSpec(fmt.Sprintf("c%03d", i), SysPlexusInterrupt)
	}
	segs := []plexus.SegmentSpec{{
		Name: "lan0", Model: netdev.EthernetModel(), Switched: true,
		Subnet: view.IP4{10, 0, 1, 0},
		Hosts:  []plexus.HostSpec{hostSpec("server", sys)},
	}}
	var gw *plexus.HostSpec
	near := clients
	if clients > scaleSegmentClients {
		near = clients / 2
		g := hostSpec("gw", SysPlexusInterrupt)
		gw = &g
		segs = append(segs, plexus.SegmentSpec{
			Name: "lan1", Model: netdev.EthernetModel(), Switched: true,
			Subnet: view.IP4{10, 0, 2, 0},
		})
	}
	for i := 0; i < clients; i++ {
		seg := 0
		if i >= near {
			seg = 1
		}
		segs[seg].Hosts = append(segs[seg].Hosts, clientSpec(i))
	}
	top, err := plexus.NewTopology(1, gw, segs)
	if err != nil {
		return nil, nil, nil, err
	}
	top.PrimeARP()
	server := top.Segments[0].Hosts[0]
	var cs []*plexus.Stack
	for si, seg := range top.Segments {
		hosts := seg.Hosts
		if si == 0 {
			hosts = hosts[1:] // skip the server
		}
		cs = append(cs, hosts...)
	}
	return top, server, cs, nil
}

// echoClient is one closed-loop UDP echo client with loss recovery: a reply
// matching the outstanding sequence number completes the op and sends the
// next; a retry timer re-sends the same op (keeping its original start time,
// so recovered losses land in the tail percentiles, not off the books).
type echoClient struct {
	st       *plexus.Stack
	app      *plexus.UDPApp
	server   view.IP4
	duration sim.Time

	seq    uint64
	sentAt sim.Time
	timer  sim.Timer
	msg    []byte

	ops     uint64
	retries uint64
	bytes   uint64
	rtts    []sim.Time
}

func (c *echoClient) send(t *sim.Task) {
	if t.Now() >= c.duration {
		return
	}
	c.seq++
	binary.BigEndian.PutUint64(c.msg, c.seq)
	c.sentAt = t.Now()
	c.transmit(t)
}

func (c *echoClient) transmit(t *sim.Task) {
	_ = c.app.Send(t, c.server, 7, c.msg)
	seq := c.seq
	c.timer = c.st.Host.Sim.After(scaleRetryAfter, "echo-retry", func() {
		if c.seq != seq || c.st.Host.Sim.Now() >= c.duration {
			return
		}
		c.retries++
		c.st.Spawn("echo-retry", c.transmit)
	})
}

func (c *echoClient) onReply(t *sim.Task, data []byte) {
	t.Charge(c.st.Host.Costs.AppHandler)
	if len(data) < 8 || binary.BigEndian.Uint64(data) != c.seq {
		return // stale duplicate from a retry race
	}
	c.timer.Stop()
	c.rtts = append(c.rtts, t.Now()-c.sentAt)
	c.ops++
	c.bytes += uint64(len(data))
	c.send(t)
}

// scaleCell runs one (system, workload, clients) configuration.
func scaleCell(sys System, workload string, clients int, duration sim.Time) (ScaleRow, error) {
	top, server, cs, err := scaleTopology(sys, clients)
	if err != nil {
		return ScaleRow{}, err
	}
	defer recordEvents(top.Sim)
	row := ScaleRow{Clients: clients, System: sys, Workload: workload, Segments: len(top.Segments)}

	var ecs []*echoClient
	switch workload {
	case WorkloadUDPEcho:
		var echo *plexus.UDPApp
		echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			t.Charge(server.Host.Costs.AppHandler)
			_ = echo.Send(t, src, srcPort, data)
		})
		if err != nil {
			return ScaleRow{}, err
		}
		for _, cl := range cs {
			ec := &echoClient{st: cl, server: server.Addr(), duration: duration,
				msg: make([]byte, scaleEchoPayload)}
			ec.app, err = cl.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
				ec.onReply(t, data)
			})
			if err != nil {
				return ScaleRow{}, err
			}
			ecs = append(ecs, ec)
			cl.Spawn("echo-start", ec.send)
		}
	case WorkloadHTTPGet:
		if _, err = httpx.Serve(server, 80, func(t *sim.Task, req *httpx.Request) httpx.Response {
			return httpx.Response{Status: 200, Body: make([]byte, scaleHTTPBody)}
		}); err != nil {
			return ScaleRow{}, err
		}
		for _, cl := range cs {
			ec := &echoClient{st: cl, server: server.Addr(), duration: duration}
			var issue func(t *sim.Task)
			issue = func(t *sim.Task) {
				if t.Now() >= duration {
					return
				}
				started := t.Now()
				err := httpx.Get(t, cl, server.Addr(), 80, "/", func(t2 *sim.Task, r httpx.Result, err error) {
					if err == nil && r.Status == 200 {
						ec.rtts = append(ec.rtts, t2.Now()-started)
						ec.ops++
						ec.bytes += uint64(len(r.Body))
					} else {
						ec.retries++
					}
					issue(t2)
				})
				if err != nil {
					ec.retries++
				}
			}
			ecs = append(ecs, ec)
			cl.Spawn("http-start", issue)
		}
	default:
		return ScaleRow{}, fmt.Errorf("unknown workload %q", workload)
	}

	server.Host.CPU.MarkUtilization()
	top.Sim.RunUntil(duration)

	var rtts []sim.Time
	for _, ec := range ecs {
		row.Ops += ec.ops
		row.Retries += ec.retries
		row.GoodputMbps += float64(ec.bytes)
		rtts = append(rtts, ec.rtts...)
	}
	row.GoodputMbps = row.GoodputMbps * 8 / duration.Seconds() / 1e6
	row.ServerCPU = server.Host.CPU.Utilization()
	s := summarize(rtts)
	row.P50, row.P99 = s.P50, s.P99
	for _, seg := range top.Segments {
		if seg.Switch != nil {
			row.SwitchDrops += seg.Switch.QueueDrops()
		}
	}
	row.RxErrors = server.NIC.Stats().RxErrors
	if row.Ops == 0 {
		return ScaleRow{}, fmt.Errorf("no operations completed")
	}
	return row, nil
}
