package bench

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"runtime/debug"

	"plexus/internal/httpx"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// This file implements the `-exp scale` experiment in two regimes:
//
//   - Client cells: N concurrent clients against one server over the
//     switched fabric, on both measured systems — the load test the paper's
//     two-machine numbers cannot answer. Cells beyond one subnet's worth of
//     clients split across two switched segments joined by the gateway.
//
//   - Host cells: N ∈ {1k, 10k, 50k} hosts spread over many switched
//     segments (one server plus its clients per segment), built on the
//     sharded engine (plexus.NewShardedTopology): one event queue per
//     segment plus one for the gateway, advancing in lookahead windows on
//     -shards worker goroutines. Most traffic is segment-local; each
//     segment also runs one paced cross-segment client through the gateway
//     so the shard boundaries carry real load. Rows are byte-identical at
//     any -shards and any -parallel setting.
//
// Each cell reports completed ops, goodput, server CPU, p50/p99 latency,
// retries, switch drops, receiver frame errors, and its deterministic
// fired-event count; client losses are recovered by retry timers so drops
// cost latency rather than truncating the op count.

// Scale-experiment parameters.
const (
	// DefaultScaleDuration is the per-cell simulated run length.
	DefaultScaleDuration = 300 * sim.Millisecond
	// scaleEchoPayload is the UDP echo message size.
	scaleEchoPayload = 32
	// scaleRetryAfter rearms a client whose echo was tail-dropped.
	scaleRetryAfter = 25 * sim.Millisecond
	// scaleHTTPBody is the HTTP response body size.
	scaleHTTPBody = 1024
	// scaleSegmentClients caps clients per subnet (a /24 minus the server,
	// the gateway, and headroom); larger populations split across two
	// switched segments joined by the gateway.
	scaleSegmentClients = 200
	// scaleHostsPerSegment sizes host cells: each switched segment holds
	// one server, one cross-segment client, and local echo clients.
	scaleHostsPerSegment = 200
	// scaleCrossInterval paces each segment's cross-segment client: one
	// echo through the gateway per interval. Pacing (instead of a closed
	// loop) keeps the single gateway CPU from saturating at hundreds of
	// segments while still pushing every boundary each window.
	scaleCrossInterval = 100 * sim.Millisecond
	// scaleLocalInterval paces each local client in a host cell. 198
	// clients per interval put the segment server around 70% utilization —
	// loaded but not collapsed, so the rows report latency under load
	// rather than queueing pathology. Client start times are staggered
	// across the interval so offered load (and the event stream each shard
	// round handles) is smooth.
	scaleLocalInterval = 50 * sim.Millisecond
	// scaleHostBudget fixes each sharded host cell's simulated work,
	// in host·seconds: 1k hosts run 40s, 10k run 4s, 50k run 800ms. Every
	// cell fires the same ~7.2M events, so rows at different scales report
	// the same amount of steady-state work and topology construction stays
	// a bounded fraction of each cell's wall clock.
	scaleHostBudget = 40000
)

// scaleHostDuration is the simulated length of a sharded host cell under
// the fixed scaleHostBudget.
func scaleHostDuration(hosts int) sim.Time {
	return sim.Time(scaleHostBudget) * sim.Second / sim.Time(hosts)
}

// scaleUplinkModel is the host cells' segment-to-gateway wire: Ethernet
// framing and rate over long-haul fiber. The propagation delay is also the
// engine's synchronization lookahead, so each shard advances in ~10ms
// windows: at 10k+ hosts the shards' combined working set overflows the
// cache, and a wide window is what amortizes each shard's refill over
// hundreds of events per visit instead of dozens.
func scaleUplinkModel() netdev.Model {
	m := netdev.EthernetModel()
	m.Name = "ethernet-uplink"
	m.PropDelay = 10 * sim.Millisecond
	return m
}

// Workloads of the scale sweep.
const (
	WorkloadUDPEcho = "udp-echo"
	WorkloadHTTPGet = "http-get"
)

// DefaultScaleClients is the client-count sweep of `-exp scale`.
func DefaultScaleClients() []int { return []int{1, 4, 16, 64, 256} }

// DefaultScaleHosts is the sharded host-count sweep of `-exp scale`.
func DefaultScaleHosts() []int { return []int{1000, 10000, 50000} }

// ScaleRow is one cell of the `-exp scale` sweep.
type ScaleRow struct {
	Clients  int    `json:"clients"`
	System   System `json:"system"`
	Workload string `json:"workload"`
	// Hosts is the topology size of a sharded host cell (0 for the classic
	// client cells).
	Hosts int `json:"hosts,omitempty"`
	// Segments is the number of subnets the clients were spread over.
	Segments int `json:"segments"`
	// Ops counts completed operations (echo round trips, or HTTP responses).
	Ops uint64 `json:"ops"`
	// GoodputMbps is application payload delivered to clients per second.
	GoodputMbps float64 `json:"goodput_mbps"`
	// ServerCPU is the server's CPU utilization over the run (averaged
	// across segment servers in host cells).
	ServerCPU float64  `json:"server_cpu"`
	P50       sim.Time `json:"p50_ns"`
	P99       sim.Time `json:"p99_ns"`
	// Retries counts client retry-timer firings (lost or late operations).
	Retries uint64 `json:"retries"`
	// SwitchDrops sums output-queue tail drops across the fabric.
	SwitchDrops uint64 `json:"switch_drops"`
	// RxErrors counts malformed frames at the server NIC(s).
	RxErrors uint64 `json:"rx_errors"`
	// Events is the cell's deterministic fired-event count, summed across
	// shards — the number the CI determinism diffs pin hardest.
	Events uint64 `json:"events"`
}

// Scale runs the sweep: classic client cells (clientCounts × workload ×
// system) plus sharded host cells (hostCounts × system, UDP echo), each cell
// on its own seeded simulator(s). Rows are byte-identical at any -parallel
// and any -shards setting.
func Scale(clientCounts, hostCounts []int, duration sim.Time) ([]ScaleRow, error) {
	type cell struct {
		clients  int
		hosts    int
		workload string
		sys      System
	}
	var cells []cell
	for _, n := range clientCounts {
		for _, wl := range []string{WorkloadUDPEcho, WorkloadHTTPGet} {
			for _, sys := range []System{SysPlexusInterrupt, SysDUX} {
				cells = append(cells, cell{clients: n, workload: wl, sys: sys})
			}
		}
	}
	// Host cells measure the sharded engine, not the OS comparison (the
	// classic cells already run both systems), so they build Plexus hosts
	// only and run the fixed scaleHostBudget regardless of duration.
	for _, n := range hostCounts {
		cells = append(cells, cell{hosts: n, workload: WorkloadUDPEcho, sys: SysPlexusInterrupt})
	}
	return RunCells(cells, func(c cell) (ScaleRow, error) {
		if c.hosts > 0 {
			row, err := scaleHostCell(c.sys, c.hosts, scaleHostDuration(c.hosts))
			if err != nil {
				return ScaleRow{}, fmt.Errorf("scale %s/%dh: %w", c.sys, c.hosts, err)
			}
			return row, nil
		}
		row, err := scaleCell(c.sys, c.workload, c.clients, duration)
		if err != nil {
			return ScaleRow{}, fmt.Errorf("scale %s/%s/%d: %w", c.sys, c.workload, c.clients, err)
		}
		return row, nil
	})
}

// scaleTopology builds the cell's fabric: the server plus clients on one
// switched segment, or — past one subnet's worth — split over two switched
// segments joined by the gateway. Returns the server and the client stacks.
func scaleTopology(sys System, clients int) (*plexus.Topology, *plexus.Stack, []*plexus.Stack, error) {
	clientSpec := func(i int) plexus.HostSpec {
		return hostSpec(fmt.Sprintf("c%03d", i), SysPlexusInterrupt)
	}
	segs := []plexus.SegmentSpec{{
		Name: "lan0", Model: netdev.EthernetModel(), Switched: true,
		Subnet: view.IP4{10, 0, 1, 0},
		Hosts:  []plexus.HostSpec{hostSpec("server", sys)},
	}}
	var gw *plexus.HostSpec
	near := clients
	if clients > scaleSegmentClients {
		near = clients / 2
		g := hostSpec("gw", SysPlexusInterrupt)
		gw = &g
		segs = append(segs, plexus.SegmentSpec{
			Name: "lan1", Model: netdev.EthernetModel(), Switched: true,
			Subnet: view.IP4{10, 0, 2, 0},
		})
	}
	for i := 0; i < clients; i++ {
		seg := 0
		if i >= near {
			seg = 1
		}
		segs[seg].Hosts = append(segs[seg].Hosts, clientSpec(i))
	}
	top, err := plexus.NewTopology(1, gw, segs)
	if err != nil {
		return nil, nil, nil, err
	}
	top.PrimeARP()
	server := top.Segments[0].Hosts[0]
	var cs []*plexus.Stack
	for si, seg := range top.Segments {
		hosts := seg.Hosts
		if si == 0 {
			hosts = hosts[1:] // skip the server
		}
		cs = append(cs, hosts...)
	}
	return top, server, cs, nil
}

// echoClient is one closed-loop UDP echo client with loss recovery: a reply
// matching the outstanding sequence number completes the op and sends the
// next; a retry timer re-sends the same op (keeping its original start time,
// so recovered losses land in the tail percentiles, not off the books).
//
// The whole client is allocation-free in steady state: the retry timer and
// its re-send task are package-level functions scheduled with the pooled
// AfterArg/SubmitAtArg forms, and staleness is detected by comparing the
// armed sequence number instead of capturing it in a closure.
type echoClient struct {
	st       *plexus.Stack
	app      *plexus.UDPApp
	server   view.IP4
	duration sim.Time

	seq      uint64
	armedSeq uint64 // seq the retry timer was armed for
	sentAt   sim.Time
	timer    sim.Timer
	msg      []byte

	ops     uint64
	retries uint64
	bytes   uint64
	rtts    []sim.Time
}

func (c *echoClient) send(t *sim.Task) {
	if t.Now() >= c.duration {
		return
	}
	c.seq++
	binary.BigEndian.PutUint64(c.msg, c.seq)
	c.sentAt = t.Now()
	c.transmit(t)
}

func (c *echoClient) transmit(t *sim.Task) {
	_ = c.app.Send(t, c.server, 7, c.msg)
	c.armedSeq = c.seq
	c.timer = c.st.Host.Sim.AfterArg(scaleRetryAfter, "echo-retry", echoRetryTimer, c)
}

// echoRetryTimer fires when an echo went unanswered for scaleRetryAfter; a
// stale firing (the op completed and a new one is outstanding) is detected
// by the armed-sequence check. Package-level so arming allocates nothing.
func echoRetryTimer(a any) {
	c := a.(*echoClient)
	s := c.st.Host.Sim
	if c.seq != c.armedSeq || s.Now() >= c.duration {
		return
	}
	c.retries++
	c.st.Host.CPU.SubmitAtArg(s.Now(), sim.PrioKernel, "echo-retry", echoRetryTask, c)
}

func echoRetryTask(t *sim.Task, a any) { a.(*echoClient).transmit(t) }

func (c *echoClient) onReply(t *sim.Task, data []byte) {
	t.Charge(c.st.Host.Costs.AppHandler)
	if len(data) < 8 || binary.BigEndian.Uint64(data) != c.seq {
		return // stale duplicate from a retry race
	}
	c.timer.Stop()
	c.rtts = append(c.rtts, t.Now()-c.sentAt)
	c.ops++
	c.bytes += uint64(len(data))
	c.send(t)
}

// pacedClient is one open-loop echo client: an echo every interval, with a
// reply deadline of one interval (an unanswered op counts a retry and the
// next op is sent). Host cells run one per local host against the segment
// server, and one per segment across the gateway. Like echoClient, its
// timer/task plumbing is allocation-free.
type pacedClient struct {
	st       *plexus.Stack
	app      *plexus.UDPApp
	server   view.IP4
	interval sim.Time
	duration sim.Time

	seq         uint64
	sentAt      sim.Time
	outstanding bool
	msg         []byte

	ops     uint64
	retries uint64
	bytes   uint64
	rtts    []sim.Time
}

// pacedTick is the interval timer: submit the next send (or the timeout
// retry) onto the client's CPU.
func pacedTick(a any) {
	c := a.(*pacedClient)
	s := c.st.Host.Sim
	if s.Now() >= c.duration {
		return
	}
	c.st.Host.CPU.SubmitAtArg(s.Now(), sim.PrioKernel, "paced-echo", pacedSendTask, c)
}

func pacedSendTask(t *sim.Task, a any) {
	c := a.(*pacedClient)
	if c.outstanding {
		c.retries++ // previous op unanswered within the interval
	}
	c.seq++
	binary.BigEndian.PutUint64(c.msg, c.seq)
	c.sentAt = t.Now()
	c.outstanding = true
	_ = c.app.Send(t, c.server, 7, c.msg)
	c.st.Host.Sim.AfterArg(c.interval, "paced-tick", pacedTick, c)
}

func (c *pacedClient) onReply(t *sim.Task, data []byte) {
	t.Charge(c.st.Host.Costs.AppHandler)
	if !c.outstanding || len(data) < 8 || binary.BigEndian.Uint64(data) != c.seq {
		return
	}
	c.outstanding = false
	c.rtts = append(c.rtts, t.Now()-c.sentAt)
	c.ops++
	c.bytes += uint64(len(data))
}

// startEchoServer opens the UDP echo service on port 7.
func startEchoServer(server *plexus.Stack) error {
	var echo *plexus.UDPApp
	var err error
	echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		t.Charge(server.Host.Costs.AppHandler)
		_ = echo.Send(t, src, srcPort, data)
	})
	return err
}

// scaleHostCell runs one sharded host cell: hosts/scaleHostsPerSegment
// switched segments, each with one server (echoing on port 7), one paced
// cross-segment client aimed at the next segment's server, and paced local
// echo clients staggered across their interval. The engine advances every
// segment concurrently on ShardWorkers() goroutines.
func scaleHostCell(sys System, hosts int, duration sim.Time) (ScaleRow, error) {
	k := hosts / scaleHostsPerSegment
	if k < 2 {
		return ScaleRow{}, fmt.Errorf("host cell needs >= %d hosts", 2*scaleHostsPerSegment)
	}
	// Building a 50k-host topology allocates hundreds of MB of scaffolding;
	// with the collector on, the concurrent mark re-scans the growing heap
	// and its tail cycles spill into the measured run. Build with GC off,
	// collect the construction garbage once, then restore: the steady-state
	// run allocates nothing, so no further cycle triggers mid-measurement.
	// This only shifts wall-clock — simulated results never depend on it.
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	segs := make([]plexus.SegmentSpec, k)
	for i := 0; i < k; i++ {
		spec := plexus.SegmentSpec{
			Name: fmt.Sprintf("seg%03d", i), Model: netdev.EthernetModel(), Switched: true,
			Uplink: scaleUplinkModel(),
			Subnet: view.IP4{10, byte((i + 1) >> 8), byte(i + 1), 0},
		}
		spec.Hosts = append(spec.Hosts, hostSpec(fmt.Sprintf("s%03d", i), sys))
		for c := 1; c < scaleHostsPerSegment; c++ {
			spec.Hosts = append(spec.Hosts, hostSpec(fmt.Sprintf("h%03d-%03d", i, c), SysPlexusInterrupt))
		}
		segs[i] = spec
	}
	gw := hostSpec("gw", SysPlexusInterrupt)
	top, err := plexus.NewShardedTopology(1, &gw, segs)
	if err != nil {
		return ScaleRow{}, err
	}
	top.PrimeARPSparse()
	defer func() {
		for _, s := range top.Sims {
			recordEvents(s)
		}
	}()

	row := ScaleRow{System: sys, Workload: WorkloadUDPEcho, Hosts: hosts, Segments: k}
	var pcs []*pacedClient
	for _, seg := range top.Segments {
		server := seg.Hosts[0]
		if err := startEchoServer(server); err != nil {
			return ScaleRow{}, err
		}
		server.Host.CPU.MarkUtilization()
	}
	opCap := int(duration/scaleLocalInterval) + 2
	start := func(cl *plexus.Stack, server view.IP4, interval, offset sim.Time) error {
		pc := &pacedClient{st: cl, server: server, interval: interval, duration: duration,
			msg: make([]byte, scaleEchoPayload), rtts: make([]sim.Time, 0, opCap)}
		var err error
		pc.app, err = cl.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			pc.onReply(t, data)
		})
		if err != nil {
			return err
		}
		pcs = append(pcs, pc)
		cl.Host.Sim.AtArg(offset, "paced-tick", pacedTick, pc)
		return nil
	}
	for si, seg := range top.Segments {
		// Host 1 is the cross-segment client, paced through the gateway at
		// the next segment's server; the rest echo off the local server,
		// start times staggered across the interval so the offered load —
		// and the event stream each shard round handles — is smooth.
		remote := top.Segments[(si+1)%k].Hosts[0]
		if err := start(seg.Hosts[1], remote.Addr(), scaleCrossInterval, 0); err != nil {
			return ScaleRow{}, err
		}
		local := seg.Hosts[0].Addr()
		nLocal := len(seg.Hosts) - 2
		for ci, cl := range seg.Hosts[2:] {
			offset := scaleLocalInterval * sim.Time(ci) / sim.Time(nLocal)
			if err := start(cl, local, scaleLocalInterval, offset); err != nil {
				return ScaleRow{}, err
			}
		}
	}
	row.Clients = len(pcs)

	// Sweep the construction garbage and re-arm the collector before the
	// measured run (see the SetGCPercent note above).
	runtime.GC()
	debug.SetGCPercent(gcPct)
	top.Run(duration, ShardWorkers())

	var rtts []sim.Time
	for _, pc := range pcs {
		row.Ops += pc.ops
		row.Retries += pc.retries
		row.GoodputMbps += float64(pc.bytes)
		rtts = append(rtts, pc.rtts...)
	}
	row.GoodputMbps = row.GoodputMbps * 8 / duration.Seconds() / 1e6
	for _, seg := range top.Segments {
		row.ServerCPU += seg.Hosts[0].Host.CPU.Utilization()
		row.SwitchDrops += seg.Switch.QueueDrops()
		row.RxErrors += seg.Hosts[0].NIC.Stats().RxErrors
	}
	row.ServerCPU /= float64(k)
	s := summarize(rtts)
	row.P50, row.P99 = s.P50, s.P99
	row.Events = top.Executed()
	if row.Ops == 0 {
		return ScaleRow{}, fmt.Errorf("no operations completed")
	}
	return row, nil
}

// scaleCell runs one classic (system, workload, clients) configuration.
func scaleCell(sys System, workload string, clients int, duration sim.Time) (ScaleRow, error) {
	top, server, cs, err := scaleTopology(sys, clients)
	if err != nil {
		return ScaleRow{}, err
	}
	defer recordEvents(top.Sim)
	row := ScaleRow{Clients: clients, System: sys, Workload: workload, Segments: len(top.Segments)}

	var ecs []*echoClient
	switch workload {
	case WorkloadUDPEcho:
		if err := startEchoServer(server); err != nil {
			return ScaleRow{}, err
		}
		for _, cl := range cs {
			ec := &echoClient{st: cl, server: server.Addr(), duration: duration,
				msg: make([]byte, scaleEchoPayload)}
			ec.app, err = cl.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
				ec.onReply(t, data)
			})
			if err != nil {
				return ScaleRow{}, err
			}
			ecs = append(ecs, ec)
			cl.Spawn("echo-start", ec.send)
		}
	case WorkloadHTTPGet:
		if _, err = httpx.Serve(server, 80, func(t *sim.Task, req *httpx.Request) httpx.Response {
			return httpx.Response{Status: 200, Body: make([]byte, scaleHTTPBody)}
		}); err != nil {
			return ScaleRow{}, err
		}
		for _, cl := range cs {
			ec := &echoClient{st: cl, server: server.Addr(), duration: duration}
			var issue func(t *sim.Task)
			issue = func(t *sim.Task) {
				if t.Now() >= duration {
					return
				}
				started := t.Now()
				err := httpx.Get(t, cl, server.Addr(), 80, "/", func(t2 *sim.Task, r httpx.Result, err error) {
					if err == nil && r.Status == 200 {
						ec.rtts = append(ec.rtts, t2.Now()-started)
						ec.ops++
						ec.bytes += uint64(len(r.Body))
					} else {
						ec.retries++
					}
					issue(t2)
				})
				if err != nil {
					ec.retries++
				}
			}
			ecs = append(ecs, ec)
			cl.Spawn("http-start", issue)
		}
	default:
		return ScaleRow{}, fmt.Errorf("unknown workload %q", workload)
	}

	server.Host.CPU.MarkUtilization()
	top.Sim.RunUntil(duration)

	var rtts []sim.Time
	for _, ec := range ecs {
		row.Ops += ec.ops
		row.Retries += ec.retries
		row.GoodputMbps += float64(ec.bytes)
		rtts = append(rtts, ec.rtts...)
	}
	row.GoodputMbps = row.GoodputMbps * 8 / duration.Seconds() / 1e6
	row.ServerCPU = server.Host.CPU.Utilization()
	s := summarize(rtts)
	row.P50, row.P99 = s.P50, s.P99
	for _, seg := range top.Segments {
		if seg.Switch != nil {
			row.SwitchDrops += seg.Switch.QueueDrops()
		}
	}
	row.RxErrors = server.NIC.Stats().RxErrors
	row.Events = top.Sim.Executed()
	if row.Ops == 0 {
		return ScaleRow{}, fmt.Errorf("no operations completed")
	}
	return row, nil
}
