package bench

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/filter"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/udp"
	"plexus/internal/video"
	"plexus/internal/view"
)

// This file implements the ablation experiments DESIGN.md calls out: design
// choices of the architecture measured in isolation.

// AblationRow is one measured configuration of an ablation.
type AblationRow struct {
	Name  string
	Value sim.Time
	Note  string
}

// SpoofPolicyAblation compares the §3.1 anti-spoofing policies: overwriting
// the source field versus verifying it, measured as the per-send cost of
// SendRaw under each policy (averaged over n sends).
func SpoofPolicyAblation(n int) ([]AblationRow, error) {
	return RunCells([]udp.SpoofPolicy{udp.Overwrite, udp.Verify}, func(policy udp.SpoofPolicy) (AblationRow, error) {
		net, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
			hostSpec("client", SysPlexusInterrupt), hostSpec("server", SysPlexusInterrupt))
		if err != nil {
			return AblationRow{}, err
		}
		defer recordEvents(net.Sim)
		if _, err := server.OpenUDP(plexus.UDPAppOptions{Port: 9}, nil); err != nil {
			return AblationRow{}, err
		}
		ep, err := client.UDP.Open(udp.EndpointOptions{SpoofPolicy: policy, Ephemeral: true}, nil)
		if err != nil {
			return AblationRow{}, err
		}
		var spent sim.Time
		client.Spawn("sender", func(t *sim.Task) {
			for i := 0; i < n; i++ {
				seg := client.Host.Pool.FromBytes(make([]byte, view.UDPHdrLen+8), 64)
				b, _ := seg.MutableBytes()
				uv, _ := view.UDP(b)
				uv.SetSrcPort(ep.Port()) // legitimate; Verify passes
				uv.SetDstPort(9)
				uv.SetLength(seg.PktLen())
				before := t.Charged()
				if err := ep.SendRaw(t, server.Addr(), seg); err != nil {
					return
				}
				spent += t.Charged() - before
			}
		})
		net.Sim.RunUntil(10 * sim.Second)
		name := "spoof-policy/overwrite"
		note := "manager stamps the source field"
		if policy == udp.Verify {
			name = "spoof-policy/verify"
			note = "manager checks the source field"
		}
		return AblationRow{Name: name, Value: spent / sim.Time(n), Note: note}, nil
	})
}

// ChecksumAblation compares UDP round-trip latency with the checksum enabled
// and disabled (the §1.1 application-specific variant), for a payload large
// enough that the per-byte cost shows.
func ChecksumAblation(payload int) ([]AblationRow, error) {
	run := func(disable bool) (sim.Time, error) {
		n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
			hostSpec("client", SysPlexusInterrupt), hostSpec("server", SysPlexusInterrupt))
		if err != nil {
			return 0, err
		}
		defer recordEvents(n.Sim)
		var echo *plexus.UDPApp
		echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7, DisableChecksum: disable},
			func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
				_ = echo.Send(t, src, srcPort, data)
			})
		if err != nil {
			return 0, err
		}
		var sentAt, gotAt sim.Time
		capp, err := client.OpenUDP(plexus.UDPAppOptions{DisableChecksum: disable},
			func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
				gotAt = t.Now()
			})
		if err != nil {
			return 0, err
		}
		client.Spawn("client", func(t *sim.Task) {
			sentAt = t.Now()
			_ = capp.Send(t, server.Addr(), 7, make([]byte, payload))
		})
		n.Sim.RunUntil(10 * sim.Second)
		if gotAt == 0 {
			return 0, fmt.Errorf("bench: no echo")
		}
		return gotAt - sentAt, nil
	}
	results, err := RunCells([]bool{false, true}, run)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Name: fmt.Sprintf("udp-checksum/on (%dB)", payload), Value: results[0], Note: "standard UDP"},
		{Name: fmt.Sprintf("udp-checksum/off (%dB)", payload), Value: results[1], Note: "application-specific variant (§1.1)"},
	}, nil
}

// GuardChainAblation measures UDP echo RTT with extra endpoints installed,
// showing guard evaluation stays at procedure-call scale (the Openness
// property: extensions do not tax each other).
func GuardChainAblation(extraEndpoints []int) ([]AblationRow, error) {
	return RunCells(extraEndpoints, func(extra int) (AblationRow, error) {
		n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
			hostSpec("client", SysPlexusInterrupt), hostSpec("server", SysPlexusInterrupt))
		if err != nil {
			return AblationRow{}, err
		}
		defer recordEvents(n.Sim)
		for i := 0; i < extra; i++ {
			if _, err := server.OpenUDP(plexus.UDPAppOptions{Port: uint16(3000 + i)}, nil); err != nil {
				return AblationRow{}, err
			}
		}
		var echo *plexus.UDPApp
		echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = echo.Send(t, src, srcPort, data)
		})
		if err != nil {
			return AblationRow{}, err
		}
		var sentAt, gotAt sim.Time
		capp, err := client.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			gotAt = t.Now()
		})
		if err != nil {
			return AblationRow{}, err
		}
		client.Spawn("client", func(t *sim.Task) {
			sentAt = t.Now()
			_ = capp.Send(t, server.Addr(), 7, make([]byte, 8))
		})
		n.Sim.RunUntil(10 * sim.Second)
		if gotAt == 0 {
			return AblationRow{}, fmt.Errorf("bench: no echo with %d endpoints", extra)
		}
		return AblationRow{
			Name:  fmt.Sprintf("guard-chain/%d-extra-endpoints", extra),
			Value: gotAt - sentAt,
			Note:  "UDP 8B RTT",
		}, nil
	})
}

// FilterBackendAblation compares the two guard implementations of
// internal/filter — native compiled closures (the typesafe-extension model)
// versus the interpreted packet-filter VM (§3.5's alternative firewall
// mechanism) — by installing `extra` rejecting filters of each kind on the
// server's Ethernet.PacketRecv and measuring an 8-byte UDP echo RTT.
func FilterBackendAblation(extra int) ([]AblationRow, error) {
	run := func(interpreted bool) (sim.Time, error) {
		n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
			hostSpec("client", SysPlexusInterrupt), hostSpec("server", SysPlexusInterrupt))
		if err != nil {
			return 0, err
		}
		defer recordEvents(n.Sim)
		// Rejecting filters: no UDP traffic in this experiment uses port
		// 60000, so every filter evaluates and fails.
		const src = "ip.proto == 17 && udp.dport == 60000"
		for i := 0; i < extra; i++ {
			var guard event.Guard
			if interpreted {
				prog, err := filter.CompileInterpreted(src, filter.BaseEthernet)
				if err != nil {
					return 0, err
				}
				guard = prog.Guard()
			} else {
				f, err := filter.Parse(src, filter.BaseEthernet)
				if err != nil {
					return 0, err
				}
				guard = f.Guard()
			}
			if _, err := server.Ether.InstallRecv(guard,
				event.Ephemeral("filter-sink", func(t *sim.Task, m *mbuf.Mbuf) { m.Free() }), 0); err != nil {
				return 0, err
			}
		}
		var echo *plexus.UDPApp
		echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = echo.Send(t, src, srcPort, data)
		})
		if err != nil {
			return 0, err
		}
		var sentAt, gotAt sim.Time
		capp, err := client.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			gotAt = t.Now()
		})
		if err != nil {
			return 0, err
		}
		client.Spawn("client", func(t *sim.Task) {
			sentAt = t.Now()
			_ = capp.Send(t, server.Addr(), 7, make([]byte, 8))
		})
		n.Sim.RunUntil(10 * sim.Second)
		if gotAt == 0 {
			return 0, fmt.Errorf("bench: no echo with %d filters", extra)
		}
		return gotAt - sentAt, nil
	}
	results, err := RunCells([]bool{false, true}, run)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Name: fmt.Sprintf("filter-backend/native×%d", extra), Value: results[0], Note: "compiled guards (typesafe extension)"},
		{Name: fmt.Sprintf("filter-backend/interpreted×%d", extra), Value: results[1], Note: "packet-filter VM (§3.5 alternative)"},
	}, nil
}

// ILPAblation measures the video client's CPU with and without integrated
// layer processing (paper §5.1: the client "is a good candidate for the
// integrated layer processing optimizations suggested by Clark").
func ILPAblation(streams int) ([]AblationRow, error) {
	measure := func(ilp bool) (float64, error) {
		n, err := plexus.NewNetwork(1, netdev.DECT3Model(), []plexus.HostSpec{
			hostSpec("server", SysPlexusInterrupt),
			{Name: "client", Personality: osmodel.SPIN},
		})
		if err != nil {
			return 0, err
		}
		defer recordEvents(n.Sim)
		n.PrimeARP()
		sv, cl := n.Hosts[0], n.Hosts[1]
		srv, err := video.NewServer(sv, video.ServerConfig{})
		if err != nil {
			return 0, err
		}
		client, err := video.NewClient(cl, video.DefaultPort)
		if err != nil {
			return 0, err
		}
		client.ILP = ilp
		for i := 0; i < streams; i++ {
			srv.AddStream(view.IP4{224, 0, 1, byte(i + 1)})
		}
		cl.Host.CPU.MarkUtilization()
		srv.Run(1 * sim.Second)
		n.Sim.RunUntil(1 * sim.Second)
		return cl.Host.CPU.Utilization(), nil
	}
	results, err := RunCells([]bool{false, true}, measure)
	if err != nil {
		return nil, err
	}
	toTime := func(u float64) sim.Time { return sim.Time(u * float64(sim.Second)) }
	return []AblationRow{
		{Name: fmt.Sprintf("video-client/two-pass (%d streams)", streams), Value: toTime(results[0]), Note: "CPU-seconds per second (utilization)"},
		{Name: fmt.Sprintf("video-client/ILP (%d streams)", streams), Value: toTime(results[1]), Note: "fused checksum+decompress+display [CT90]"},
	}, nil
}
