package bench

import (
	"fmt"
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// buildShardedCell builds a miniature host cell — k switched segments of
// hostsPerSeg Plexus hosts joined through the gateway on the scale uplink —
// wired exactly like scaleHostCell's cells: host 0 serves echo, host 1 paces
// cross-segment ops at the NEXT segment's server (every op crosses two shard
// boundaries), and the remaining hosts echo off the local server at interval,
// staggered so the offered load is smooth. opCap preallocates each client's
// RTT log.
func buildShardedCell(tb testing.TB, k, hostsPerSeg int, interval sim.Time, duration sim.Time, opCap int) (*plexus.ShardedTopology, []*pacedClient) {
	tb.Helper()
	segs := make([]plexus.SegmentSpec, k)
	for i := 0; i < k; i++ {
		spec := plexus.SegmentSpec{
			Name: fmt.Sprintf("seg%03d", i), Model: netdev.EthernetModel(), Switched: true,
			Uplink: scaleUplinkModel(),
			Subnet: view.IP4{10, byte((i + 1) >> 8), byte(i + 1), 0},
		}
		for c := 0; c < hostsPerSeg; c++ {
			spec.Hosts = append(spec.Hosts, hostSpec(fmt.Sprintf("h%03d-%03d", i, c), SysPlexusInterrupt))
		}
		segs[i] = spec
	}
	gw := hostSpec("gw", SysPlexusInterrupt)
	top, err := plexus.NewShardedTopology(1, &gw, segs)
	if err != nil {
		tb.Fatal(err)
	}
	top.PrimeARPSparse()
	var pcs []*pacedClient
	start := func(cl *plexus.Stack, server view.IP4, ival, offset sim.Time) {
		pc := &pacedClient{st: cl, server: server, interval: ival, duration: duration,
			msg: make([]byte, scaleEchoPayload), rtts: make([]sim.Time, 0, opCap)}
		var err error
		pc.app, err = cl.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			pc.onReply(t, data)
		})
		if err != nil {
			tb.Fatal(err)
		}
		pcs = append(pcs, pc)
		cl.Host.Sim.AtArg(offset, "paced-tick", pacedTick, pc)
	}
	for si, seg := range top.Segments {
		if err := startEchoServer(seg.Hosts[0]); err != nil {
			tb.Fatal(err)
		}
		remote := top.Segments[(si+1)%k].Hosts[0]
		start(seg.Hosts[1], remote.Addr(), scaleCrossInterval, 0)
		nLocal := len(seg.Hosts) - 2
		for ci, cl := range seg.Hosts[2:] {
			start(cl, seg.Hosts[0].Addr(), interval, interval*sim.Time(ci)/sim.Time(nLocal))
		}
	}
	return top, pcs
}

// The sharded steady state is allocation-free: once the first pacing
// intervals have warmed the pools (mbufs, CPU submissions, switch ingress
// jobs, boundary frames, the engine's release rings), advancing the topology
// allocates nothing per event. This pin is what keeps allocs/event at scale
// two orders of magnitude under the per-op figure the client cells report.
func TestScaleSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin on a full host cell")
	}
	const step = 100 * sim.Millisecond
	top, _ := buildShardedCell(t, 2, scaleHostsPerSegment, scaleLocalInterval, 1<<62, 64)
	until := step
	top.Run(until, 1) // warm every pool through a full pacing interval
	start := top.Executed()
	const runs = 4
	avg := testing.AllocsPerRun(runs, func() {
		until += step
		top.Run(until, 1)
	})
	// AllocsPerRun ran the body runs+1 times (one warm-up invocation).
	events := float64(top.Executed()-start) / (runs + 1)
	if events == 0 {
		t.Fatal("no events executed")
	}
	perEvent := avg / events
	t.Logf("allocs/run=%.0f events/run=%.0f allocs/event=%.5f", avg, events, perEvent)
	if perEvent > 0.01 {
		t.Errorf("steady state allocates %.5f allocs/event (want <= 0.01)", perEvent)
	}
}

// BenchmarkShardBarrier prices the engine's conservative synchronization:
// two minimal shards plus the gateway advancing window by window, with one
// local echo per segment per round and a cross-segment client keeping frames
// in flight over both boundaries. One iteration is one lookahead window —
// every shard visited, release timestamps exchanged, and the couplings'
// in-flight frames handed over.
func BenchmarkShardBarrier(b *testing.B) {
	window := scaleUplinkModel().PropDelay
	top, pcs := buildShardedCell(b, 2, 3, window, 1<<62, b.N+2)
	top.Run(window, 1) // settle ARP-less startup before timing
	b.ReportAllocs()
	b.ResetTimer()
	until := window
	for i := 0; i < b.N; i++ {
		until += window
		top.Run(until, 1)
	}
	b.StopTimer()
	var ops uint64
	for _, pc := range pcs {
		ops += pc.ops
	}
	b.ReportMetric(float64(top.Executed())/float64(b.N), "events/round")
	b.ReportMetric(float64(ops)/float64(b.N), "ops/round")
}
