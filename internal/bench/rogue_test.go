package bench

import (
	"reflect"
	"testing"
)

// Two identical rogue cells executed concurrently must produce identical
// rows: every fault counter a cell reads is local to its own sim, pool, and
// dispatcher. Run under -race (the CI rogue-smoke job does) this also pins
// the absence of cross-cell sharing in the sandbox accounting itself.
func TestRogueCellsAreCellLocal(t *testing.T) {
	type out struct {
		row RogueRow
		err error
	}
	results := make([]out, 2)
	done := make(chan int, 2)
	for i := range results {
		go func(i int) {
			row, err := rogueTCPBulk(SysPlexusInterrupt, 4, 32<<10)
			results[i] = out{row, err}
			done <- i
		}(i)
	}
	<-done
	<-done
	for _, r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
	}
	if !reflect.DeepEqual(results[0].row, results[1].row) {
		t.Fatalf("concurrent identical cells diverged:\n%+v\n%+v", results[0].row, results[1].row)
	}
}

func TestRogueShapes(t *testing.T) {
	rows, err := Rogue([]int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 counts × 2 systems × 2 workloads
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		// The sandbox's headline claim: the well-behaved flow completes
		// whether or not rogues are installed, on both personalities.
		if r.DeliveredPct != 100 {
			t.Errorf("%d rogues/%s/%s: delivered %.1f%%, want 100%%",
				r.Rogues, r.System, r.Workload, r.DeliveredPct)
		}
		if r.Rogues == 0 {
			if r.Quarantined != 0 || r.Panics+r.GuardPanics+r.Terminations+r.GuardOverruns != 0 {
				t.Errorf("0 rogues/%s/%s: nonzero fault counters: %+v", r.System, r.Workload, r)
			}
			continue
		}
		if r.Quarantined != r.Rogues {
			t.Errorf("%d rogues/%s/%s: quarantined %d, want all",
				r.Rogues, r.System, r.Workload, r.Quarantined)
		}
		// With all four archetypes installed, every fault class fires.
		if r.Panics == 0 || r.GuardOverruns == 0 || r.Terminations == 0 {
			t.Errorf("%d rogues/%s/%s: expected every fault class, got %+v",
				r.Rogues, r.System, r.Workload, r)
		}
	}
}
