// Telemetry watchdogs under real faults: a blackholed reverse path must make
// the no-progress alarm fire with the stalled flow's identity and a correct
// simulated-time window, and the SPP transition audit must stay legal while
// retransmission and abandonment run their course.
package fault_test

import (
	"math/rand"
	"strings"
	"testing"

	"plexus/internal/audit"
	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/seqpkt"
	"plexus/internal/sim"
	"plexus/internal/telemetry"
	"plexus/internal/view"
)

// blackholeFrom drops every frame sourced from one IP once the simulated
// clock passes After — a deterministic mid-transfer fiber cut in one
// direction. Data keeps flowing forward; acknowledgments stop coming back.
type blackholeFrom struct {
	sim     *sim.Sim
	src     view.IP4
	after   sim.Time
	Dropped int
}

func (d *blackholeFrom) Drop(rng *rand.Rand, wire []byte) bool {
	if d.sim.Now() < d.after {
		return false
	}
	eth, err := view.Ethernet(wire)
	if err != nil || eth.EtherType() != view.EtherTypeIPv4 {
		return false
	}
	ip, err := view.IPv4(wire[view.EthernetHdrLen:])
	if err != nil || ip.Src() != d.src {
		return false
	}
	d.Dropped++
	return true
}

func TestNoProgressWatchdogFiresOnStalledTransfer(t *testing.T) {
	const (
		cutAt       = 50 * sim.Millisecond // mid-flight: the full transfer needs ~1s of wire time
		stallWindow = 2 * sim.Second
	)
	n, a, b, err := plexus.TwoHosts(7, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Monitor(plexus.MonitorOptions{
		Telemetry:      telemetry.Options{Interval: sim.Millisecond},
		TCPStallWindow: stallWindow,
	})
	cut := &blackholeFrom{sim: n.Sim, src: b.Addr(), after: cutAt}
	fault.Attach(n.Sim, n.Link).Lose(cut)

	got := 0
	if _, err := b.ListenTCP(5001, plexus.TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *plexus.TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(task *sim.Task, conn *plexus.TCPApp) { conn.Close(task) },
	}, nil); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 1<<20) // big enough to still be mid-flight at the cut
	a.Spawn("sender", func(task *sim.Task) {
		_, _ = a.ConnectTCP(task, b.Addr(), 5001, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(20 * sim.Second)

	if cut.Dropped == 0 {
		t.Fatal("the cut never dropped a frame — transfer finished before it engaged")
	}
	if got >= len(msg) {
		t.Fatal("transfer completed despite the blackholed reverse path")
	}
	if eng.AlarmTotal() == 0 {
		t.Fatal("stalled transfer raised no watchdog alarm")
	}
	var alarm *telemetry.Alarm
	for i := range eng.Alarms() {
		if eng.Alarms()[i].Rule == "tcp.no_progress" {
			alarm = &eng.Alarms()[i]
			break
		}
	}
	if alarm == nil {
		t.Fatalf("no tcp.no_progress alarm among %+v", eng.Alarms())
	}
	if alarm.Kind != telemetry.RuleNoProgress {
		t.Fatalf("alarm kind %v", alarm.Kind)
	}
	// Flow identity: the sender's connection to b:5001, on host a.
	if !strings.Contains(alarm.Series, "host=a") ||
		!strings.Contains(alarm.Series, "-10.0.0.2:5001") ||
		!strings.Contains(alarm.Series, "tcp.acked_bytes") {
		t.Fatalf("alarm series lacks flow identity: %q", alarm.Series)
	}
	// Timing: progress froze at the cut, so the episode starts within one
	// sampling interval after it and the alarm fires one stall window later.
	if alarm.Since < cutAt || alarm.Since > cutAt+100*sim.Millisecond {
		t.Fatalf("alarm since %v, want within 100ms after the cut at %v", alarm.Since, cutAt)
	}
	if lapse := alarm.At - alarm.Since; lapse < stallWindow || lapse > stallWindow+10*sim.Millisecond {
		t.Fatalf("alarm window %v, want ~%v", lapse, stallWindow)
	}
}

// sppSink retains SPP transitions for lifecycle assertions.
type sppSink struct{ evs []seqpkt.Transition }

func (s *sppSink) Transition(ev seqpkt.Transition) { s.evs = append(s.evs, ev) }

func installSPP(st *plexus.Stack) (*seqpkt.Manager, error) {
	return seqpkt.Install(seqpkt.Config{
		Sim:              st.Host.Sim,
		IP:               st.IP,
		Disp:             st.Host.Disp,
		Raise:            st.Raiser(),
		CPU:              st.Host.CPU,
		Pool:             st.Host.Pool,
		Costs:            st.Host.Costs,
		RequireEphemeral: st.InterruptMode(),
	})
}

func TestSPPTransitionAuditUnderTotalLoss(t *testing.T) {
	n, a, b, err := plexus.TwoHosts(9, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	ma, err := installSPP(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := installSPP(b)
	if err != nil {
		t.Fatal(err)
	}
	sink := &sppSink{}
	chk := audit.NewSPPChecker(sink)
	ma.SetAuditSink(chk)

	if _, err := mb.Open(40, nil); err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1, clean link: one send must walk Unsent→Sent→Acked.
	a.Spawn("send-clean", func(task *sim.Task) {
		_, _ = tx.Send(task, b.Addr(), 40, []byte("one"))
	})
	n.Sim.RunUntil(1 * sim.Second)

	// Phase 2, total loss: the next send retransmits up to the cap and is
	// abandoned — Unsent→Sent, (MaxRexmits-1)×Sent→Sent, Sent→Abandoned.
	fault.Attach(n.Sim, n.Link).Lose(fault.Bernoulli{P: 1})
	a.Spawn("send-lost", func(task *sim.Task) {
		_, _ = tx.Send(task, b.Addr(), 40, []byte("two"))
	})
	n.Sim.RunUntil(1*sim.Second + sim.Time(seqpkt.MaxRexmits+2)*seqpkt.RexmitTimeout)

	// Phase 3: a final send is still pending when the endpoint closes —
	// Sent→Cancelled.
	a.Spawn("send-cancelled", func(task *sim.Task) {
		_, _ = tx.Send(task, b.Addr(), 40, []byte("three"))
	})
	n.Sim.RunUntil(n.Sim.Now() + 100*sim.Millisecond)
	tx.Close()
	n.Sim.RunUntil(n.Sim.Now() + 100*sim.Millisecond)

	if chk.ViolationCount() != 0 {
		for _, v := range chk.Violations() {
			t.Errorf("illegal SPP transition %v->%v via %q: %s", v.Event.Old, v.Event.New, v.Event.Cause, v.Reason)
		}
	}
	terminal := map[uint32]seqpkt.XferState{}
	rexmits := 0
	for _, ev := range sink.evs {
		if ev.Host != "a" || ev.Port != 41 || ev.PeerPort != 40 {
			t.Fatalf("transition with wrong endpoint identity: %+v", ev)
		}
		if ev.Old == seqpkt.XferSent && ev.New == seqpkt.XferSent {
			rexmits++
		}
		if ev.New != seqpkt.XferSent {
			terminal[ev.Seq] = ev.New
		}
	}
	if terminal[1] != seqpkt.XferAcked {
		t.Errorf("seq 1 ended %v, want Acked", terminal[1])
	}
	if terminal[2] != seqpkt.XferAbandoned {
		t.Errorf("seq 2 ended %v, want Abandoned", terminal[2])
	}
	if terminal[3] != seqpkt.XferCancelled {
		t.Errorf("seq 3 ended %v, want Cancelled", terminal[3])
	}
	if rexmits != seqpkt.MaxRexmits-1 {
		t.Errorf("observed %d rexmit self-loops, want %d", rexmits, seqpkt.MaxRexmits-1)
	}
}
