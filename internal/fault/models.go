package fault

import (
	"math/rand"

	"plexus/internal/sim"
	"plexus/internal/view"
)

// DropModel decides, frame by frame, whether a binary fault fires. The same
// interface serves loss (Injector.Lose) and duplication (Injector.Duplicate):
// a model answers "does this frame suffer the fault?", the injector decides
// what the fault does. Models draw all randomness from the PRNG they are
// handed — the simulation's seeded generator — so a given seed replays the
// exact same fault sequence.
type DropModel interface {
	Drop(rng *rand.Rand, wire []byte) bool
}

// CorruptModel may damage a frame's bytes in place, reporting whether it did.
type CorruptModel interface {
	Corrupt(rng *rand.Rand, wire []byte) bool
}

// DelayModel returns extra propagation delay per frame; unequal delays
// reorder deliveries.
type DelayModel interface {
	Delay(rng *rand.Rand, wire []byte) sim.Time
}

// ---------------------------------------------------------------------------
// Loss / duplication models.

// Bernoulli fires independently on each frame with probability P — the
// classic random-loss channel.
type Bernoulli struct {
	P float64
}

// Drop implements DropModel.
func (b Bernoulli) Drop(rng *rand.Rand, wire []byte) bool {
	return b.P > 0 && rng.Float64() < b.P
}

// GilbertElliott is the two-state Markov burst-loss channel: a Good and a Bad
// state with per-frame transition probabilities and a loss probability in
// each state. It reproduces the clustered losses of real radio and congested
// paths that independent (Bernoulli) loss cannot. The zero value never
// fires; use Burst for the common parameterization.
type GilbertElliott struct {
	// PGoodToBad / PBadToGood are per-frame transition probabilities.
	PGoodToBad float64
	PBadToGood float64
	// LossGood / LossBad are the loss probabilities within each state
	// (classic Gilbert: LossGood = 0, LossBad = 1).
	LossGood float64
	LossBad  float64

	bad bool
}

// Drop implements DropModel, advancing the channel state one frame.
func (g *GilbertElliott) Drop(rng *rand.Rand, wire []byte) bool {
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else if g.PGoodToBad > 0 && rng.Float64() < g.PGoodToBad {
		g.bad = true
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return p > 0 && rng.Float64() < p
}

// InBadState reports the current channel state (tests observe burstiness).
func (g *GilbertElliott) InBadState() bool { return g.bad }

// Burst returns a Gilbert–Elliott channel tuned to a target mean loss rate
// and mean burst length (frames lost per bad-state visit): the bad state
// always loses, the good state never does, and the stationary bad-state
// probability equals rate.
func Burst(rate, meanBurstLen float64) *GilbertElliott {
	if rate <= 0 {
		return &GilbertElliott{}
	}
	if meanBurstLen < 1 {
		meanBurstLen = 1
	}
	pBG := 1 / meanBurstLen
	return &GilbertElliott{
		PGoodToBad: rate * pBG / (1 - rate),
		PBadToGood: pBG,
		LossBad:    1,
	}
}

// EveryNth fires deterministically on frames N, 2N, 3N, … — the model behind
// the repository's historic count%N drop closures, kept because tests that
// assert exact retransmit counts need loss that is reproducible by
// inspection, not just by seed.
type EveryNth struct {
	N     int
	count int
}

// Drop implements DropModel.
func (e *EveryNth) Drop(rng *rand.Rand, wire []byte) bool {
	if e.N <= 0 {
		return false
	}
	e.count++
	return e.count%e.N == 0
}

// NthOnly fires on exactly the Kth frame the model sees and never again —
// surgical single-frame faults for recovery tests.
type NthOnly struct {
	K     int
	count int
}

// Drop implements DropModel.
func (n *NthOnly) Drop(rng *rand.Rand, wire []byte) bool {
	n.count++
	return n.count == n.K
}

// MinSize gates an inner model to frames of at least N wire bytes — the
// standard way to fault data segments while sparing ACKs and control
// traffic.
type MinSize struct {
	N int
	M DropModel
}

// Drop implements DropModel.
func (s MinSize) Drop(rng *rand.Rand, wire []byte) bool {
	return len(wire) >= s.N && s.M.Drop(rng, wire)
}

// Limit caps an inner model at Max firings.
type Limit struct {
	Max   int
	M     DropModel
	fired int
}

// Drop implements DropModel.
func (l *Limit) Drop(rng *rand.Rand, wire []byte) bool {
	if l.fired >= l.Max {
		return false
	}
	if !l.M.Drop(rng, wire) {
		return false
	}
	l.fired++
	return true
}

// Fired reports how many times the capped model has fired.
func (l *Limit) Fired() int { return l.fired }

// ---------------------------------------------------------------------------
// Corruption models.

// BitFlip flips one random bit past the Ethernet header in each frame it
// fires on (probability P per frame, frames of at least MinSize bytes) —
// the line-noise model that exercises every checksum in the stack.
type BitFlip struct {
	P       float64
	MinSize int
}

// Corrupt implements CorruptModel.
func (b BitFlip) Corrupt(rng *rand.Rand, wire []byte) bool {
	if len(wire) <= view.EthernetHdrLen || len(wire) < b.MinSize {
		return false
	}
	if b.P <= 0 || rng.Float64() >= b.P {
		return false
	}
	bit := rng.Intn((len(wire) - view.EthernetHdrLen) * 8)
	wire[view.EthernetHdrLen+bit/8] ^= 1 << (bit % 8)
	return true
}

// FlipByte inverts the byte at Offset in frames of at least MinSize bytes, at
// most Max times (Max <= 0 = unlimited) — the deterministic corruption model
// checksum-validation tests use to damage exactly one transmission.
type FlipByte struct {
	Offset  int
	MinSize int
	Max     int
	done    int
}

// Corrupt implements CorruptModel.
func (f *FlipByte) Corrupt(rng *rand.Rand, wire []byte) bool {
	if f.Max > 0 && f.done >= f.Max {
		return false
	}
	if len(wire) < f.MinSize || f.Offset >= len(wire) {
		return false
	}
	wire[f.Offset] ^= 0xff
	f.done++
	return true
}

// ---------------------------------------------------------------------------
// Delay (reordering) models.

// Jitter holds back frames of at least MinSize bytes, with probability P, by
// a uniform random delay in (0, Max] — enough spread and later frames
// overtake earlier ones.
type Jitter struct {
	P       float64
	Max     sim.Time
	MinSize int
}

// Delay implements DelayModel.
func (j Jitter) Delay(rng *rand.Rand, wire []byte) sim.Time {
	if len(wire) < j.MinSize || j.Max <= 0 || j.P <= 0 || rng.Float64() >= j.P {
		return 0
	}
	return 1 + sim.Time(rng.Int63n(int64(j.Max)))
}

// PeriodicDelay holds back every Nth frame of at least MinSize bytes by a
// fixed Hold — the deterministic reordering model behind the historic
// count%N delay closures.
type PeriodicDelay struct {
	N       int
	Hold    sim.Time
	MinSize int
	count   int
}

// Delay implements DelayModel.
func (p *PeriodicDelay) Delay(rng *rand.Rand, wire []byte) sim.Time {
	if p.N <= 0 || len(wire) < p.MinSize {
		return 0
	}
	p.count++
	if p.count%p.N == 0 {
		return p.Hold
	}
	return 0
}
