// Package fault is the deterministic fault-injection plane: it turns the raw
// per-frame hooks of internal/netdev (drop, mangle, delay, duplicate, carrier
// state) into declarative, composable, seeded models — Bernoulli and
// Gilbert–Elliott loss, bit-flip corruption, duplication, jitter-induced
// reordering — plus a time-scheduled scenario driver for link flaps and
// partitions.
//
// Simulation platforms treat configurable error models as a first-class plane
// of the simulator; this package plays that role for the Plexus reproduction.
// Every stochastic choice draws from the simulation's own seeded PRNG, so a
// given seed replays the exact same fault sequence and every experiment under
// fault is byte-for-byte reproducible, at any worker-pool parallelism —
// each experiment cell owns its simulator, its link, and its injector.
//
//	in := fault.Attach(n.Sim, n.Link)
//	in.Lose(fault.Bernoulli{P: 0.05})          // 5% random loss
//	in.Lose(fault.Burst(0.02, 4))              // plus 2% loss in 4-frame bursts
//	in.Corrupt(fault.BitFlip{P: 0.001})        // line noise
//	in.Scenario().FlapEvery(5*sim.Second, 20*sim.Second, 2*sim.Second, 4)
package fault

import (
	"math/rand"

	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Stats counts fault firings per model class. Flapped mirrors the link's
// down-drop counter so one snapshot describes the whole fault plane.
type Stats struct {
	Lost        uint64 `json:"lost"`
	Mangled     uint64 `json:"mangled"`
	Duplicated  uint64 `json:"duplicated"`
	Delayed     uint64 `json:"delayed"`
	Partitioned uint64 `json:"partitioned"`
	Flapped     uint64 `json:"flapped"`
}

// Injector owns a link's fault hooks and composes declarative models onto
// them. Attach installs the injector as the link's drop/mangle/delay/dup
// functions; models added afterwards take effect immediately. An injector
// belongs to one simulator and is not safe for concurrent use — exactly like
// the simulator itself.
type Injector struct {
	sim  *sim.Sim
	link *netdev.Link
	rng  *rand.Rand

	loss    []DropModel
	corrupt []CorruptModel
	dup     []DropModel
	delay   []DelayModel

	// partition, when non-nil, drops unicast frames crossing between the
	// two MAC sets.
	partA map[view.MAC]bool
	partB map[view.MAC]bool

	stats Stats
}

// Attach creates an injector on link, installing it as the link's fault
// hooks. All randomness is drawn from s's seeded PRNG.
func Attach(s *sim.Sim, link *netdev.Link) *Injector {
	in := &Injector{sim: s, link: link, rng: s.Rand()}
	link.SetDropFn(in.dropFrame)
	link.SetMangleFn(in.mangleFrame)
	link.SetDelayFn(in.delayFrame)
	link.SetDupFn(in.dupFrame)
	return in
}

// Link returns the link the injector is attached to.
func (in *Injector) Link() *netdev.Link { return in.link }

// Lose adds a loss model; frames any model fires on vanish from the wire.
func (in *Injector) Lose(m DropModel) *Injector {
	in.loss = append(in.loss, m)
	return in
}

// Corrupt adds a corruption model; it may damage frame bytes in flight.
func (in *Injector) Corrupt(m CorruptModel) *Injector {
	in.corrupt = append(in.corrupt, m)
	return in
}

// Duplicate adds a duplication model; frames it fires on are delivered twice.
func (in *Injector) Duplicate(m DropModel) *Injector {
	in.dup = append(in.dup, m)
	return in
}

// Delay adds a jitter model; per-frame extra delays reorder deliveries.
func (in *Injector) Delay(m DelayModel) *Injector {
	in.delay = append(in.delay, m)
	return in
}

// Partition splits the link: unicast frames between a MAC in a and a MAC in b
// (either direction) are dropped; traffic within each side, and broadcast or
// multicast frames, still pass. A new call replaces any existing partition.
func (in *Injector) Partition(a, b []view.MAC) {
	in.partA = macSet(a)
	in.partB = macSet(b)
}

// Heal removes the partition.
func (in *Injector) Heal() {
	in.partA = nil
	in.partB = nil
}

// Reset removes every model and the partition, quieting the fault plane
// (counters and link carrier state are left untouched).
func (in *Injector) Reset() {
	in.loss = nil
	in.corrupt = nil
	in.dup = nil
	in.delay = nil
	in.Heal()
}

// Stats returns a snapshot of fault counters; Flapped reflects frames the
// link discarded while its carrier was down.
func (in *Injector) Stats() Stats {
	s := in.stats
	s.Flapped = in.link.DownDrops()
	return s
}

func macSet(macs []view.MAC) map[view.MAC]bool {
	m := make(map[view.MAC]bool, len(macs))
	for _, mac := range macs {
		m[mac] = true
	}
	return m
}

// dropFrame is the link's dropFn: partition first, then loss models in the
// order added.
func (in *Injector) dropFrame(wire []byte) bool {
	if in.partA != nil && in.crossesPartition(wire) {
		in.stats.Partitioned++
		return true
	}
	for _, m := range in.loss {
		if m.Drop(in.rng, wire) {
			in.stats.Lost++
			return true
		}
	}
	return false
}

func (in *Injector) crossesPartition(wire []byte) bool {
	eth, err := view.Ethernet(wire)
	if err != nil {
		return false
	}
	dst := eth.Dst()
	if dst.IsBroadcast() || dst.IsMulticast() {
		return false
	}
	src := eth.Src()
	return in.partA[src] && in.partB[dst] || in.partB[src] && in.partA[dst]
}

// mangleFrame is the link's mangleFn: every corruption model gets a chance.
func (in *Injector) mangleFrame(wire []byte) {
	for _, m := range in.corrupt {
		if m.Corrupt(in.rng, wire) {
			in.stats.Mangled++
		}
	}
}

// dupFrame is the link's dupFn.
func (in *Injector) dupFrame(wire []byte) bool {
	for _, m := range in.dup {
		if m.Drop(in.rng, wire) {
			in.stats.Duplicated++
			return true
		}
	}
	return false
}

// delayFrame is the link's delayFn: model delays accumulate.
func (in *Injector) delayFrame(wire []byte) sim.Time {
	var d sim.Time
	for _, m := range in.delay {
		d += m.Delay(in.rng, wire)
	}
	if d > 0 {
		in.stats.Delayed++
	}
	return d
}
