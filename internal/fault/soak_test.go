// Chaos soak: a multi-minute (simulated) storm of burst loss, duplication,
// jitter, and periodic carrier flaps over live TCP and SPP traffic. After the
// storm heals, every connection must have reached CLOSED, every transfer must
// have completed intact, and every pool must balance — no stuck TCBs, no
// leaked mbufs, no frames live on the wire. The soak runs once per
// congestion-control algorithm: loss recovery differs across them, but the
// postconditions must not.
package fault_test

import (
	"testing"

	"plexus/internal/audit"
	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/seqpkt"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

func TestChaosSoak(t *testing.T) {
	for _, algo := range []string{"newreno", "cubic", "bbr"} {
		t.Run(algo, func(t *testing.T) { chaosSoak(t, algo) })
	}
}

func chaosSoak(t *testing.T, algo string) {
	sa, sb := spinSpec("a"), spinSpec("b")
	sa.CC, sb.CC = algo, algo
	n, a, b, err := plexus.TwoHosts(42, netdev.EthernetModel(), sa, sb)
	if err != nil {
		t.Fatal(err)
	}

	// Standing invariant: every TCP state transition on either host must be
	// legal under RFC 793, no matter what the storm does to the wire.
	auditors := map[string]*audit.Checker{
		a.Name(): audit.NewChecker(nil),
		b.Name(): audit.NewChecker(nil),
	}
	a.TCP.SetAuditSink(auditors[a.Name()])
	b.TCP.SetAuditSink(auditors[b.Name()])

	// The storm: 3% bursty loss (mean burst 5), a duplicate every 41st
	// frame, 10% jitter up to 1ms, and a 2s carrier flap every 20s for the
	// first four minutes.
	in := fault.Attach(n.Sim, n.Link)
	in.Lose(fault.Burst(0.03, 5)).
		Duplicate(&fault.EveryNth{N: 41}).
		Delay(fault.Jitter{P: 0.1, Max: sim.Millisecond})
	sc := in.Scenario()
	const healAt = 240 * sim.Second
	sc.FlapEvery(5*sim.Second, 20*sim.Second, 2*sim.Second, 11)
	sc.At(healAt, in.Reset)

	// TCP workload: four client->server streams spread across the storm, so
	// each one rides through different flaps.
	const streams = 4
	const perStream = 200 << 10
	recvd := make([]int, streams)
	var conns []*plexus.TCPApp
	for i := 0; i < streams; i++ {
		i := i
		port := uint16(8000 + i)
		_, err = b.ListenTCP(port, plexus.TCPAppOptions{
			OnRecv:    func(task *sim.Task, conn *plexus.TCPApp, data []byte) { recvd[i] += len(data) },
			OnPeerFin: func(task *sim.Task, conn *plexus.TCPApp) { conn.Close(task) },
		}, func(task *sim.Task, conn *plexus.TCPApp) { conns = append(conns, conn) })
		if err != nil {
			t.Fatal(err)
		}
		a.SpawnAt(sim.Time(i)*50*sim.Second+sim.Second, "client", func(task *sim.Task) {
			conn, err := a.ConnectTCP(task, b.Addr(), port, plexus.TCPAppOptions{
				OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
					_ = conn.Send(t2, make([]byte, perStream))
					conn.Close(t2)
				},
			})
			if err != nil {
				t.Errorf("stream %d connect: %v", i, err)
				return
			}
			conns = append(conns, conn)
		})
	}

	// SPP workload: one message every 2s through the whole storm.
	install := func(st *plexus.Stack) *seqpkt.Manager {
		m, err := seqpkt.Install(seqpkt.Config{
			Sim: st.Host.Sim, IP: st.IP, Disp: st.Host.Disp,
			Raise: st.Raiser(), CPU: st.Host.CPU, Pool: st.Host.Pool,
			Costs: st.Host.Costs, RequireEphemeral: st.InterruptMode(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ma, mb := install(a), install(b)
	sppDelivered := 0
	if _, err := mb.Open(70, func(task *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		sppDelivered++
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(71, nil)
	if err != nil {
		t.Fatal(err)
	}
	const sppMsgs = 100
	for i := 0; i < sppMsgs; i++ {
		a.SpawnAt(sim.Time(i)*2*sim.Second, "spp-send", func(task *sim.Task) {
			if _, err := tx.Send(task, b.Addr(), 70, make([]byte, 256)); err != nil {
				t.Errorf("spp send: %v", err)
			}
		})
	}

	// Run well past the heal: TIME-WAIT is 2*MSL = 60s, so 420s leaves every
	// TCB time to unwind completely.
	n.Sim.RunUntil(420 * sim.Second)

	st := in.Stats()
	if st.Lost == 0 || st.Duplicated == 0 || st.Delayed == 0 || st.Flapped == 0 {
		t.Fatalf("storm too quiet to count as chaos: %+v", st)
	}
	t.Logf("storm: %+v, flaps=%d", st, sc.Flaps())

	for i, got := range recvd {
		if got != perStream {
			t.Errorf("tcp stream %d incomplete: %d/%d bytes", i, got, perStream)
		}
	}
	if sppDelivered != sppMsgs {
		t.Errorf("spp delivered %d/%d messages", sppDelivered, sppMsgs)
	}
	if ab := tx.Stats().Abandoned; ab != 0 {
		t.Errorf("spp abandoned %d messages", ab)
	}

	// Zero stuck connections: every TCB the soak created must have unwound.
	if len(conns) != 2*streams {
		t.Fatalf("saw %d connection endpoints, want %d", len(conns), 2*streams)
	}
	for i, conn := range conns {
		if s := conn.Conn().State(); s != tcp.StateClosed {
			t.Errorf("connection %d stuck in %v", i, s)
		}
	}

	// Zero conformance violations: the storm may delay, drop, duplicate, and
	// sever, but it must never push a TCB across an edge RFC 793 forbids.
	for name, chk := range auditors {
		if chk.Events() == 0 {
			t.Errorf("%s: audit checker saw no transitions — wiring broken", name)
		}
		if chk.ViolationCount() != 0 {
			for _, v := range chk.Violations() {
				t.Errorf("%s: illegal transition %v->%v at %v: %s",
					name, v.Event.Old, v.Event.New, v.Event.At, v.Reason)
			}
		}
	}

	// Pools balance: no mbuf leaked on either host, no frame live on the
	// link — duplication and carrier drops must all have refcounted down.
	for _, st := range []*plexus.Stack{a, b} {
		if inuse := st.Host.Pool.Stats().InUse; inuse != 0 {
			t.Errorf("%s leaked %d mbufs", st.Name(), inuse)
		}
	}
	if live := n.Link.LiveFrames(); live != 0 {
		t.Errorf("%d frames still live on the link", live)
	}
}
