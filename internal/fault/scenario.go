package fault

import (
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Scenario is the time-scheduled driver of the fault plane: it scripts link
// flaps and network partitions against the simulated clock, so a whole
// outage timeline — carrier drops at t=5s, heals at t=7s, a partition splits
// the hosts at t=30s — is declared up front and replays identically for a
// given seed. Steps scheduled at the same instant fire in declaration order
// (the simulator's FIFO tie-break).
type Scenario struct {
	in    *Injector
	flaps uint64
}

// Scenario returns a scripted driver for the injector's link.
func (in *Injector) Scenario() *Scenario { return &Scenario{in: in} }

// At schedules an arbitrary fault-plane step — the escape hatch for
// scenarios the canned verbs below do not cover.
func (sc *Scenario) At(at sim.Time, step func()) {
	sc.in.sim.At(at, "fault-scenario", step)
}

// DownAt cuts the link carrier at the given instant.
func (sc *Scenario) DownAt(at sim.Time) {
	sc.At(at, func() {
		sc.flaps++
		sc.in.link.SetUp(false)
	})
}

// UpAt restores the link carrier.
func (sc *Scenario) UpAt(at sim.Time) {
	sc.At(at, func() { sc.in.link.SetUp(true) })
}

// FlapEvery scripts count link flaps: starting at start and repeating every
// period, the link goes down for downFor, then comes back.
func (sc *Scenario) FlapEvery(start, period, downFor sim.Time, count int) {
	for i := 0; i < count; i++ {
		at := start + sim.Time(i)*period
		sc.DownAt(at)
		sc.UpAt(at + downFor)
	}
}

// PartitionAt splits the link between the two MAC sets at the given instant.
func (sc *Scenario) PartitionAt(at sim.Time, a, b []view.MAC) {
	sc.At(at, func() { sc.in.Partition(a, b) })
}

// HealAt removes the partition.
func (sc *Scenario) HealAt(at sim.Time) {
	sc.At(at, func() { sc.in.Heal() })
}

// Flaps reports how many down transitions have executed so far.
func (sc *Scenario) Flaps() uint64 { return sc.flaps }
