// Integration tests: the injector attached to a real two-host Plexus network,
// faulting live UDP traffic. In package fault_test because internal/plexus
// (transitively) sits above internal/fault.
package fault_test

import (
	"fmt"
	"testing"

	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func spinSpec(name string) plexus.HostSpec {
	return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

// udpRig is a two-host network with a fault injector on the link and a UDP
// sink on host B. sendN fires n datagrams from A at the given spacing; each
// carries its sequence number so the sink can observe loss, duplication, and
// reordering.
type udpRig struct {
	t        *testing.T
	net      *plexus.Network
	a, b     *plexus.Stack
	in       *fault.Injector
	capp     *plexus.UDPApp
	received []int
	sent     int
}

func newUDPRig(t *testing.T, seed int64) *udpRig {
	t.Helper()
	n, a, b, err := plexus.TwoHosts(seed, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	r := &udpRig{t: t, net: n, a: a, b: b, in: fault.Attach(n.Sim, n.Link)}
	_, err = b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		task.Charge(b.Host.Costs.AppHandler)
		var seq int
		fmt.Sscanf(string(data), "%d", &seq)
		r.received = append(r.received, seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	r.capp, err = a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sendN schedules n datagrams, one every spacing, starting at spacing.
func (r *udpRig) sendN(n int, spacing sim.Time) {
	for i := 0; i < n; i++ {
		seq := i
		r.a.SpawnAt(sim.Time(i+1)*spacing, "sender", func(task *sim.Task) {
			payload := fmt.Sprintf("%06d", seq)
			if err := r.capp.Send(task, r.b.Addr(), 9, []byte(payload)); err != nil {
				r.t.Errorf("send %d: %v", seq, err)
			}
			r.sent++
		})
	}
	r.net.Sim.Run()
}

func TestInjectorLossObservedEndToEnd(t *testing.T) {
	r := newUDPRig(t, 11)
	r.in.Lose(fault.Bernoulli{P: 0.3})
	r.sendN(200, sim.Millisecond)

	st := r.in.Stats()
	if st.Lost == 0 {
		t.Fatal("no frames lost at 30% Bernoulli")
	}
	if got := len(r.received); got != r.sent-int(st.Lost) {
		t.Errorf("delivered %d, sent %d, lost %d: counts disagree", got, r.sent, st.Lost)
	}
	if r.net.Link.Dropped() != st.Lost {
		t.Errorf("link counted %d drops, injector %d", r.net.Link.Dropped(), st.Lost)
	}
}

func TestInjectorDuplicateDeliversTwice(t *testing.T) {
	r := newUDPRig(t, 5)
	r.in.Duplicate(&fault.EveryNth{N: 2})
	r.sendN(100, sim.Millisecond)

	st := r.in.Stats()
	if st.Duplicated != 50 {
		t.Fatalf("duplicated %d frames, want 50", st.Duplicated)
	}
	if r.net.Link.Duplicated() != 50 {
		t.Errorf("link counted %d duplications", r.net.Link.Duplicated())
	}
	// UDP has no duplicate suppression: every copy reaches the app.
	if got := len(r.received); got != 150 {
		t.Errorf("delivered %d datagrams, want 150", got)
	}
}

func TestInjectorCorruptionCaughtByChecksum(t *testing.T) {
	r := newUDPRig(t, 5)
	// Eth(14)+IP(20)+UDP(8) = 42; offset 45 lands in the payload, so the UDP
	// checksum — not the IP header checksum — must catch it.
	r.in.Corrupt(&fault.FlipByte{Offset: 45, MinSize: 46, Max: 3})
	r.sendN(50, sim.Millisecond)

	st := r.in.Stats()
	if st.Mangled != 3 {
		t.Fatalf("mangled %d frames, want 3", st.Mangled)
	}
	if got := len(r.received); got != r.sent-3 {
		t.Errorf("delivered %d of %d with 3 mangled: checksum let one through", got, r.sent)
	}
}

func TestInjectorJitterReorders(t *testing.T) {
	r := newUDPRig(t, 7)
	r.in.Delay(fault.Jitter{P: 0.5, Max: 4 * sim.Millisecond})
	r.sendN(60, 100*sim.Microsecond)

	if len(r.received) != 60 {
		t.Fatalf("jitter must not lose frames: delivered %d/60", len(r.received))
	}
	ooo := 0
	for i := 1; i < len(r.received); i++ {
		if r.received[i] < r.received[i-1] {
			ooo++
		}
	}
	if ooo == 0 {
		t.Error("no reordering observed under 4ms jitter at 100µs spacing")
	}
	if r.in.Stats().Delayed == 0 {
		t.Error("Delayed counter stayed zero")
	}
}

func TestScenarioFlapDropsCarrierWindow(t *testing.T) {
	r := newUDPRig(t, 3)
	sc := r.in.Scenario()
	// Sends land every 1ms over (0, 100ms]; carrier out for (20ms, 40ms].
	sc.DownAt(20 * sim.Millisecond)
	sc.UpAt(40 * sim.Millisecond)
	r.sendN(100, sim.Millisecond)

	st := r.in.Stats()
	if sc.Flaps() != 1 {
		t.Errorf("Flaps() = %d, want 1", sc.Flaps())
	}
	if st.Flapped == 0 {
		t.Fatal("no frames dropped during the outage")
	}
	if got := len(r.received); got != r.sent-int(st.Flapped) {
		t.Errorf("delivered %d, sent %d, flap-dropped %d: counts disagree", got, r.sent, st.Flapped)
	}
	// Roughly a fifth of the sends fall in the 20ms window.
	if st.Flapped < 15 || st.Flapped > 25 {
		t.Errorf("outage swallowed %d frames, expected ≈20", st.Flapped)
	}
}

func TestScenarioPartitionAndHeal(t *testing.T) {
	r := newUDPRig(t, 3)
	sc := r.in.Scenario()
	aSide := []view.MAC{r.a.NIC.MAC()}
	bSide := []view.MAC{r.b.NIC.MAC()}
	sc.PartitionAt(0, aSide, bSide)
	sc.HealAt(50 * sim.Millisecond)
	r.sendN(100, sim.Millisecond)

	st := r.in.Stats()
	if st.Partitioned == 0 {
		t.Fatal("partition dropped nothing")
	}
	if got := len(r.received); got != r.sent-int(st.Partitioned) {
		t.Errorf("delivered %d, sent %d, partitioned %d: counts disagree",
			got, r.sent, st.Partitioned)
	}
	// Everything before the heal is cut, everything after flows.
	if len(r.received) == 0 {
		t.Error("heal did not restore traffic")
	}
	for _, seq := range r.received {
		if seq < 48 {
			t.Errorf("datagram %d crossed the partition before the heal", seq)
			break
		}
	}
}

func TestInjectorResetQuietsThePlane(t *testing.T) {
	r := newUDPRig(t, 9)
	r.in.Lose(fault.Bernoulli{P: 1}).Corrupt(&fault.FlipByte{Offset: 45, MinSize: 46})
	r.in.Partition([]view.MAC{r.a.NIC.MAC()}, []view.MAC{r.b.NIC.MAC()})
	r.in.Reset()
	r.sendN(50, sim.Millisecond)
	if len(r.received) != 50 {
		t.Errorf("after Reset, delivered %d/50", len(r.received))
	}
}

// Two runs under the same seed must produce the identical delivery sequence
// and identical fault counters — the property the whole experiment suite
// rests on.
func TestInjectorDeterministicUnderSeed(t *testing.T) {
	run := func() ([]int, fault.Stats, uint64) {
		r := newUDPRig(t, 99)
		r.in.Lose(fault.Bernoulli{P: 0.2}).
			Lose(fault.Burst(0.05, 4)).
			Corrupt(fault.BitFlip{P: 0.05}).
			Duplicate(fault.Bernoulli{P: 0.1}).
			Delay(fault.Jitter{P: 0.3, Max: 2 * sim.Millisecond})
		r.in.Scenario().FlapEvery(30*sim.Millisecond, 60*sim.Millisecond, 10*sim.Millisecond, 3)
		r.sendN(300, sim.Millisecond)
		return r.received, r.in.Stats(), r.net.Sim.Executed()
	}
	seq1, st1, ev1 := run()
	seq2, st2, ev2 := run()
	if st1 != st2 {
		t.Fatalf("fault counters diverged: %+v vs %+v", st1, st2)
	}
	if ev1 != ev2 {
		t.Fatalf("event counts diverged: %d vs %d", ev1, ev2)
	}
	if len(seq1) != len(seq2) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(seq1), len(seq2))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("delivery order diverged at %d: %d vs %d", i, seq1[i], seq2[i])
		}
	}
	if st1.Lost == 0 || st1.Duplicated == 0 || st1.Delayed == 0 || st1.Flapped == 0 {
		t.Errorf("scenario too quiet to prove determinism: %+v", st1)
	}
}
