package fault

import (
	"math"
	"math/rand"
	"testing"

	"plexus/internal/sim"
)

// drops runs a model over n frames and counts firings.
func drops(m DropModel, rng *rand.Rand, n, size int) int {
	wire := make([]byte, size)
	fired := 0
	for i := 0; i < n; i++ {
		if m.Drop(rng, wire) {
			fired++
		}
	}
	return fired
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	for _, p := range []float64{0, 0.01, 0.1, 0.25} {
		got := float64(drops(Bernoulli{P: p}, rng, n, 100)) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%.2f) fired at %.4f", p, got)
		}
	}
}

func TestBernoulliDeterministicUnderSeed(t *testing.T) {
	run := func() []bool {
		rng := rand.New(rand.NewSource(42))
		m := Bernoulli{P: 0.3}
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, m.Drop(rng, nil))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d", i)
		}
	}
}

// Burst must hit the target mean rate AND cluster its losses: the
// conditional probability of losing frame i+1 given frame i was lost must be
// far above the marginal rate.
func TestGilbertElliottBurstiness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Burst(0.1, 4)
	const n = 200000
	lost := make([]bool, n)
	total := 0
	for i := range lost {
		lost[i] = m.Drop(rng, nil)
		if lost[i] {
			total++
		}
	}
	rate := float64(total) / n
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("mean loss rate %.4f, want ≈0.10", rate)
	}
	pairs, bursty := 0, 0
	for i := 1; i < n; i++ {
		if lost[i-1] {
			pairs++
			if lost[i] {
				bursty++
			}
		}
	}
	condLoss := float64(bursty) / float64(pairs)
	// Mean burst length 4 → P(loss | previous lost) ≈ 1 - 1/4 = 0.75.
	if condLoss < 0.5 {
		t.Errorf("conditional loss %.3f not bursty (marginal %.3f)", condLoss, rate)
	}
}

func TestBurstZeroRateNeverFires(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if drops(Burst(0, 4), rng, 10000, 100) != 0 {
		t.Error("Burst(0) fired")
	}
}

func TestEveryNth(t *testing.T) {
	m := &EveryNth{N: 4}
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, m.Drop(nil, nil))
	}
	want := []bool{false, false, false, true, false, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EveryNth(4) pattern %v", got)
		}
	}
}

func TestNthOnly(t *testing.T) {
	m := &NthOnly{K: 3}
	fired := 0
	for i := 0; i < 10; i++ {
		if m.Drop(nil, nil) {
			if i != 2 {
				t.Fatalf("NthOnly(3) fired on frame %d", i+1)
			}
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("NthOnly fired %d times", fired)
	}
}

func TestMinSizeGatesSmallFrames(t *testing.T) {
	m := MinSize{N: 100, M: &EveryNth{N: 1}} // inner model fires on everything
	if m.Drop(nil, make([]byte, 99)) {
		t.Error("MinSize fired on a small frame")
	}
	if !m.Drop(nil, make([]byte, 100)) {
		t.Error("MinSize suppressed a large frame")
	}
}

func TestLimitCapsFirings(t *testing.T) {
	m := &Limit{Max: 3, M: &EveryNth{N: 1}}
	rng := rand.New(rand.NewSource(1))
	if got := drops(m, rng, 10, 50); got != 3 {
		t.Fatalf("Limit(3) fired %d times", got)
	}
	if m.Fired() != 3 {
		t.Errorf("Fired() = %d", m.Fired())
	}
}

func TestBitFlipCorruptsOneBit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := BitFlip{P: 1}
	orig := make([]byte, 64)
	wire := make([]byte, 64)
	if !m.Corrupt(rng, wire) {
		t.Fatal("BitFlip(P=1) did not fire")
	}
	diffBits := 0
	for i := range wire {
		b := wire[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diffBits++
		}
		if wire[i] != orig[i] && i < 14 {
			t.Errorf("BitFlip damaged the Ethernet header at byte %d", i)
		}
	}
	if diffBits != 1 {
		t.Errorf("BitFlip changed %d bits, want exactly 1", diffBits)
	}
}

func TestFlipByteDeterministicAndCapped(t *testing.T) {
	m := &FlipByte{Offset: 5, MinSize: 10, Max: 1}
	small := make([]byte, 8)
	if m.Corrupt(nil, small) {
		t.Error("FlipByte fired below MinSize")
	}
	wire := make([]byte, 20)
	if !m.Corrupt(nil, wire) || wire[5] != 0xff {
		t.Fatalf("FlipByte did not invert offset 5: % x", wire[:8])
	}
	again := make([]byte, 20)
	if m.Corrupt(nil, again) {
		t.Error("FlipByte exceeded Max")
	}
}

func TestJitterBoundsAndGate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Jitter{P: 1, Max: 10 * sim.Millisecond, MinSize: 100}
	if d := m.Delay(rng, make([]byte, 50)); d != 0 {
		t.Errorf("Jitter delayed a small frame by %v", d)
	}
	for i := 0; i < 1000; i++ {
		d := m.Delay(rng, make([]byte, 200))
		if d <= 0 || d > 10*sim.Millisecond {
			t.Fatalf("Jitter delay %v out of (0, 10ms]", d)
		}
	}
}

func TestPeriodicDelay(t *testing.T) {
	m := &PeriodicDelay{N: 3, Hold: 5 * sim.Millisecond, MinSize: 100}
	big, small := make([]byte, 200), make([]byte, 50)
	if d := m.Delay(nil, small); d != 0 {
		t.Error("small frame delayed")
	}
	var pattern []sim.Time
	for i := 0; i < 6; i++ {
		pattern = append(pattern, m.Delay(nil, big))
	}
	want := []sim.Time{0, 0, 5 * sim.Millisecond, 0, 0, 5 * sim.Millisecond}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("PeriodicDelay pattern %v", pattern)
		}
	}
}
