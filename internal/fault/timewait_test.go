// TIME-WAIT under loss: RFC 793 p.73 requires that a retransmitted FIN
// arriving during TIME-WAIT is acknowledged again and restarts the 2·MSL
// timer. A targeted drop model kills exactly the client's final ACK of the
// close handshake, so the server must retransmit its FIN into the client's
// TIME-WAIT — and the quiet period must stretch accordingly.
package fault_test

import (
	"math/rand"
	"testing"

	"plexus/internal/audit"
	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

// finalACKDropper is a fault.DropModel that drops the first pure ACK sent by
// the client after a FIN has been seen from the other direction — the last
// segment of the close handshake. Everything else passes untouched, so the
// drop is deterministic regardless of the injector's RNG.
type finalACKDropper struct {
	client  view.IP4
	finSeen bool
	Dropped int
}

func (d *finalACKDropper) Drop(rng *rand.Rand, wire []byte) bool {
	eth, err := view.Ethernet(wire)
	if err != nil || eth.EtherType() != view.EtherTypeIPv4 {
		return false
	}
	ip, err := view.IPv4(wire[view.EthernetHdrLen:])
	if err != nil || ip.Proto() != view.IPProtoTCP {
		return false
	}
	seg, err := view.TCP(wire[view.EthernetHdrLen+ip.HdrLen():])
	if err != nil {
		return false
	}
	if ip.Src() != d.client {
		if seg.Flags()&view.TCPFin != 0 {
			d.finSeen = true
		}
		return false
	}
	payload := ip.TotalLen() - ip.HdrLen() - seg.DataOff()
	if d.Dropped == 0 && d.finSeen && payload == 0 && seg.Flags() == view.TCPAck {
		d.Dropped++
		return true
	}
	return false
}

func TestTimeWaitFinRetransmitRearms(t *testing.T) {
	n, a, b, err := plexus.TwoHosts(7, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	sink := &audit.AssertSink{}
	chk := audit.NewChecker(sink)
	a.TCP.SetAuditSink(chk)
	b.TCP.SetAuditSink(chk)

	drop := &finalACKDropper{client: a.Addr()}
	fault.Attach(n.Sim, n.Link).Lose(drop)

	var serverConn *plexus.TCPApp
	if _, err := b.ListenTCP(80, plexus.TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *plexus.TCPApp, data []byte) {},
		OnPeerFin: func(task *sim.Task, conn *plexus.TCPApp) { conn.Close(task) },
	}, func(task *sim.Task, conn *plexus.TCPApp) { serverConn = conn }); err != nil {
		t.Fatal(err)
	}
	var clientConn *plexus.TCPApp
	a.Spawn("client", func(task *sim.Task) {
		clientConn, err = a.ConnectTCP(task, b.Addr(), 80, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, []byte("goodbye"))
				conn.Close(t2)
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})

	// 2·MSL is 60s and the re-arm adds one RTO on top; 300s is ample.
	n.Sim.RunUntil(300 * sim.Second)

	if drop.Dropped != 1 {
		t.Fatalf("drop model fired %d times, want exactly 1", drop.Dropped)
	}
	if rexmits := b.TCP.Stats().Retransmits; rexmits == 0 {
		t.Fatal("server never retransmitted its FIN after the final ACK was dropped")
	}

	// Reconstruct the close from the audit events: the client entered
	// TIME-WAIT, the server was stranded in CLOSING until the retransmitted
	// FIN drew a fresh ACK, and the client's 2·MSL restarted from that FIN —
	// so its quiet period is strictly longer than a single 2·MSL.
	var clientEnter, clientExit, serverTimeWait sim.Time = -1, -1, -1
	for _, ev := range sink.Events {
		switch {
		case ev.Host == "a" && ev.New == tcp.StateTimeWait:
			clientEnter = ev.At
		case ev.Host == "a" && ev.Old == tcp.StateTimeWait && ev.New == tcp.StateClosed:
			clientExit = ev.At
		case ev.Host == "b" && ev.Old == tcp.StateClosing && ev.New == tcp.StateTimeWait:
			serverTimeWait = ev.At
		}
	}
	if clientEnter < 0 || clientExit < 0 {
		t.Fatal("client never walked through TIME-WAIT")
	}
	if serverTimeWait < 0 {
		t.Fatal("server never left CLOSING: its retransmitted FIN was not re-ACKed")
	}
	if serverTimeWait <= clientEnter {
		t.Fatalf("server reached TIME-WAIT at %v, before the drop at the client's entry %v",
			serverTimeWait, clientEnter)
	}
	if held := clientExit - clientEnter; held <= 2*tcp.MSL {
		t.Fatalf("client TIME-WAIT held %v; a retransmitted FIN must re-arm past 2*MSL (%v)",
			held, 2*tcp.MSL)
	}

	// Both ends still unwind completely, and the storm stayed conformant.
	if clientConn == nil || serverConn == nil {
		t.Fatal("connection endpoints missing")
	}
	if s := clientConn.State(); s != tcp.StateClosed {
		t.Errorf("client finished in %v, want CLOSED", s)
	}
	if s := serverConn.State(); s != tcp.StateClosed {
		t.Errorf("server finished in %v, want CLOSED", s)
	}
	if nc := a.TCP.NumConns() + b.TCP.NumConns(); nc != 0 {
		t.Errorf("%d TCBs still pinned after the re-armed quiet period", nc)
	}
	if chk.ViolationCount() != 0 {
		for _, v := range chk.Violations() {
			t.Errorf("illegal transition %v->%v at %v: %s", v.Event.Old, v.Event.New, v.Event.At, v.Reason)
		}
	}
}
