package audit

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

var (
	ipA = view.IP4{10, 0, 0, 1}
	ipB = view.IP4{10, 0, 0, 2}
)

func ev(old, new tcp.State, cause tcp.Cause) tcp.Transition {
	return tcp.Transition{
		At:         sim.Time(1500),
		Host:       "hostA",
		LocalAddr:  ipA,
		LocalPort:  4096,
		RemoteAddr: ipB,
		RemotePort: 7,
		Old:        old,
		New:        new,
		Cause:      cause,
	}
}

func segC(flags uint8, seq, ack uint32) tcp.Cause {
	return tcp.Cause{Kind: tcp.CauseSegment, Flags: flags, Seq: seq, Ack: ack}
}

func userC(detail string) tcp.Cause  { return tcp.Cause{Kind: tcp.CauseUser, Detail: detail} }
func timerC(detail string) tcp.Cause { return tcp.Cause{Kind: tcp.CauseTimer, Detail: detail} }

func TestLegalTable(t *testing.T) {
	legalCases := []struct {
		old, new tcp.State
		cause    tcp.Cause
	}{
		{tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)},
		{tcp.StateClosed, tcp.StateListen, userC(tcp.CauseListen)},
		{tcp.StateListen, tcp.StateSynRcvd, segC(view.TCPSyn, 100, 0)},
		{tcp.StateSynSent, tcp.StateEstablished, segC(view.TCPSyn|view.TCPAck, 200, 101)},
		{tcp.StateSynSent, tcp.StateClosed, segC(view.TCPRst|view.TCPAck, 0, 101)},
		{tcp.StateSynSent, tcp.StateClosed, timerC(tcp.CauseRTO)},
		{tcp.StateSynRcvd, tcp.StateEstablished, segC(view.TCPAck, 101, 201)},
		{tcp.StateEstablished, tcp.StateFinWait1, userC(tcp.CauseClose)},
		{tcp.StateEstablished, tcp.StateCloseWait, segC(view.TCPFin|view.TCPAck, 300, 400)},
		{tcp.StateEstablished, tcp.StateClosed, segC(view.TCPRst, 300, 0)},
		{tcp.StateFinWait1, tcp.StateFinWait2, segC(view.TCPAck, 300, 401)},
		// A retransmitted FIN+ACK that acks our FIN: ACK processing fires
		// first, so the edge's triggering segment carries FIN legitimately.
		{tcp.StateFinWait1, tcp.StateFinWait2, segC(view.TCPFin|view.TCPAck, 300, 401)},
		{tcp.StateFinWait1, tcp.StateClosing, segC(view.TCPFin|view.TCPAck, 300, 400)},
		{tcp.StateFinWait1, tcp.StateTimeWait, segC(view.TCPFin|view.TCPAck, 300, 401)},
		{tcp.StateFinWait2, tcp.StateTimeWait, segC(view.TCPFin|view.TCPAck, 300, 401)},
		{tcp.StateCloseWait, tcp.StateLastAck, userC(tcp.CauseClose)},
		{tcp.StateClosing, tcp.StateTimeWait, segC(view.TCPFin|view.TCPAck, 300, 401)},
		{tcp.StateLastAck, tcp.StateClosed, segC(view.TCPAck, 301, 402)},
		{tcp.StateTimeWait, tcp.StateClosed, timerC(tcp.Cause2MSL)},
	}
	for _, tc := range legalCases {
		if ok, reason := Legal(tc.old, tc.new, tc.cause); !ok {
			t.Errorf("Legal(%v, %v, %+v) = illegal (%s); want legal", tc.old, tc.new, tc.cause, reason)
		}
	}

	illegalCases := []struct {
		name     string
		old, new tcp.State
		cause    tcp.Cause
	}{
		{"no such edge", tcp.StateClosed, tcp.StateEstablished, segC(view.TCPAck, 0, 0)},
		{"handshake skip", tcp.StateListen, tcp.StateEstablished, segC(view.TCPAck, 0, 0)},
		{"SYN-SENT needs SYN|ACK not bare ACK", tcp.StateSynSent, tcp.StateEstablished, segC(view.TCPAck, 0, 101)},
		{"SYN-SENT to ESTABLISHED with RST set", tcp.StateSynSent, tcp.StateEstablished, segC(view.TCPSyn|view.TCPAck|view.TCPRst, 200, 101)},
		{"passive open needs SYN without ACK", tcp.StateListen, tcp.StateSynRcvd, segC(view.TCPSyn|view.TCPAck, 100, 1)},
		{"CLOSE-WAIT via close only", tcp.StateCloseWait, tcp.StateLastAck, userC(tcp.CauseAbort)},
		{"TIME-WAIT exits only via 2msl timer", tcp.StateTimeWait, tcp.StateClosed, segC(view.TCPRst, 300, 0)},
		{"TIME-WAIT exits only via 2msl detail", tcp.StateTimeWait, tcp.StateClosed, timerC(tcp.CauseRTO)},
		{"FIN-WAIT-1 to CLOSING needs FIN", tcp.StateFinWait1, tcp.StateClosing, segC(view.TCPAck, 300, 400)},
		{"forced transition never legal", tcp.StateEstablished, tcp.StateListen, userC(tcp.CauseForce)},
		{"no recorded cause never legal", tcp.StateEstablished, tcp.StateFinWait1, tcp.Cause{}},
		{"timer cannot drive handshake", tcp.StateSynSent, tcp.StateEstablished, timerC(tcp.CauseRTO)},
	}
	for _, tc := range illegalCases {
		if ok, _ := Legal(tc.old, tc.new, tc.cause); ok {
			t.Errorf("%s: Legal(%v, %v, %+v) = legal; want illegal", tc.name, tc.old, tc.new, tc.cause)
		}
	}
}

func TestCheckerRetainsViolationContext(t *testing.T) {
	c := NewChecker(nil)
	c.Transition(ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)))
	forced := ev(tcp.StateEstablished, tcp.StateListen, userC(tcp.CauseForce))
	c.Transition(forced)

	if got := c.Events(); got != 2 {
		t.Fatalf("Events() = %d, want 2", got)
	}
	if got := c.ViolationCount(); got != 1 {
		t.Fatalf("ViolationCount() = %d, want 1", got)
	}
	v := c.Violations()[0]
	if v.Event != forced {
		t.Errorf("retained event = %+v, want the forced transition with full context", v.Event)
	}
	if !strings.Contains(v.Reason, "ESTABLISHED") || !strings.Contains(v.Reason, "LISTEN") {
		t.Errorf("reason %q does not name the illegal edge", v.Reason)
	}
	if !strings.Contains(v.Reason, tcp.CauseForce) {
		t.Errorf("reason %q does not name the forced cause", v.Reason)
	}
}

func TestCheckerRetentionBounded(t *testing.T) {
	c := NewChecker(nil)
	bad := ev(tcp.StateClosed, tcp.StateEstablished, tcp.Cause{})
	for i := 0; i < maxViolations+10; i++ {
		c.Transition(bad)
	}
	if got := c.ViolationCount(); got != uint64(maxViolations+10) {
		t.Errorf("ViolationCount() = %d, want %d", got, maxViolations+10)
	}
	if got := len(c.Violations()); got != maxViolations {
		t.Errorf("len(Violations()) = %d, want %d", got, maxViolations)
	}
}

func TestCheckerForwards(t *testing.T) {
	var as AssertSink
	c := NewChecker(&as)
	c.Transition(ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)))
	if len(as.Events) != 1 {
		t.Fatalf("downstream sink saw %d events, want 1", len(as.Events))
	}
}

func TestRingSinkOverflow(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		e := ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect))
		e.At = sim.Time(i)
		r.Transition(e)
	}
	if got := r.Recorded(); got != 10 {
		t.Errorf("Recorded() = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := sim.Time(6 + i); e.At != want {
			t.Errorf("Events()[%d].At = %d, want %d (oldest-first order)", i, e.At, want)
		}
	}
}

func TestRingSinkConnEvents(t *testing.T) {
	r := NewRingSink(8)
	r.Transition(ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)))
	other := ev(tcp.StateClosed, tcp.StateListen, userC(tcp.CauseListen))
	other.LocalPort = 80
	r.Transition(other)
	got := r.ConnEvents(ipA, 4096, ipB, 7)
	if len(got) != 1 || got[0].New != tcp.StateSynSent {
		t.Fatalf("ConnEvents filtered wrong: %+v", got)
	}
}

func TestJSONLSinkDeterministicLines(t *testing.T) {
	events := []tcp.Transition{
		ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)),
		ev(tcp.StateSynSent, tcp.StateEstablished, segC(view.TCPSyn|view.TCPAck, 200, 101)),
		ev(tcp.StateTimeWait, tcp.StateClosed, timerC(tcp.Cause2MSL)),
	}
	var a, b bytes.Buffer
	ja, jb := NewJSONLSink(&a), NewJSONLSink(&b)
	for _, e := range events {
		ja.Transition(e)
		jb.Transition(e)
	}
	if ja.Err() != nil || jb.Err() != nil {
		t.Fatalf("unexpected write error: %v / %v", ja.Err(), jb.Err())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical event streams encoded differently:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	want := `{"at":1500,"host":"hostA","local":"10.0.0.1:4096","remote":"10.0.0.2:7","old":"SYN-SENT","new":"ESTABLISHED","cause":"segment","flags":"SYN|ACK","seq":200,"ack":101}`
	if lines[1] != want {
		t.Errorf("segment line:\n got %s\nwant %s", lines[1], want)
	}
	wantTimer := `{"at":1500,"host":"hostA","local":"10.0.0.1:4096","remote":"10.0.0.2:7","old":"TIME-WAIT","new":"CLOSED","cause":"timer","detail":"2msl"}`
	if lines[2] != wantTimer {
		t.Errorf("timer line:\n got %s\nwant %s", lines[2], wantTimer)
	}
	if ja.Lines() != 3 {
		t.Errorf("Lines() = %d, want 3", ja.Lines())
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestJSONLSinkStickyError(t *testing.T) {
	j := NewJSONLSink(failWriter{})
	j.Transition(ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)))
	j.Transition(ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)))
	if j.Err() != io.ErrClosedPipe {
		t.Fatalf("Err() = %v, want %v", j.Err(), io.ErrClosedPipe)
	}
	if j.Lines() != 0 {
		t.Fatalf("Lines() = %d, want 0 after write failure", j.Lines())
	}
}

func TestAssertSinkPath(t *testing.T) {
	var as AssertSink
	as.Transition(ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)))
	as.Transition(ev(tcp.StateSynSent, tcp.StateEstablished, segC(view.TCPSyn|view.TCPAck, 200, 101)))
	as.Transition(ev(tcp.StateEstablished, tcp.StateFinWait1, userC(tcp.CauseClose)))
	got := as.PathString(ipA, 4096, ipB, 7)
	want := "CLOSED>SYN-SENT>ESTABLISHED>FIN-WAIT-1"
	if got != want {
		t.Fatalf("PathString = %q, want %q", got, want)
	}
	if p := as.Path(ipB, 7, ipA, 4096); p != nil {
		t.Fatalf("Path for unseen endpoint = %v, want nil", p)
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b AssertSink
	tee := Tee{&a, &b}
	tee.Transition(ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect)))
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("tee fan-out: %d / %d events, want 1 / 1", len(a.Events), len(b.Events))
	}
}

// The ring sink and checker sit on the transport's emission path in storms;
// neither may allocate per legal event.
func TestSinkSteadyStateAllocs(t *testing.T) {
	r := NewRingSink(64)
	legal := ev(tcp.StateClosed, tcp.StateSynSent, userC(tcp.CauseConnect))
	if n := testing.AllocsPerRun(200, func() { r.Transition(legal) }); n != 0 {
		t.Errorf("RingSink.Transition allocates %.1f per event, want 0", n)
	}
	c := NewChecker(r)
	if n := testing.AllocsPerRun(200, func() { c.Transition(legal) }); n != 0 {
		t.Errorf("Checker.Transition allocates %.1f per legal event, want 0", n)
	}
	j := NewJSONLSink(io.Discard)
	j.Transition(legal) // warm the buffer
	if n := testing.AllocsPerRun(200, func() { j.Transition(legal) }); n != 0 {
		t.Errorf("JSONLSink.Transition allocates %.1f per event, want 0", n)
	}
}
