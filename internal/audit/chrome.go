// Chrome trace bridge: render the flight recorder's retained TCP state
// transitions as instant events on each host's "states" track, merged into
// the same trace_event file as the CPU profile and telemetry counters.
package audit

import (
	"fmt"

	"plexus/internal/stats"
)

// ChromeInstants converts the ring's retained transitions (oldest first)
// into Chrome instant events. Each carries the connection four-tuple and
// the transition's cause as args, so clicking a marker in Perfetto shows
// which segment or timer moved the state machine.
func ChromeInstants(r *RingSink) []stats.ChromeInstant {
	evs := r.Events()
	out := make([]stats.ChromeInstant, 0, len(evs))
	for _, ev := range evs {
		out = append(out, stats.ChromeInstant{
			Host: ev.Host,
			Name: fmt.Sprintf("%s→%s", ev.Old, ev.New),
			At:   ev.At,
			Args: map[string]any{
				"conn":  fmt.Sprintf("%v:%d-%v:%d", ev.LocalAddr, ev.LocalPort, ev.RemoteAddr, ev.RemotePort),
				"cause": ev.Cause.Kind.String(),
			},
		})
	}
	return out
}
