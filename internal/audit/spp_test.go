package audit

import (
	"testing"

	"plexus/internal/seqpkt"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func sppEv(old, new seqpkt.XferState, cause string) seqpkt.Transition {
	return seqpkt.Transition{
		At:       sim.Time(2500),
		Host:     "hostA",
		Port:     41,
		Peer:     view.IP4{10, 0, 0, 2},
		PeerPort: 40,
		Seq:      7,
		Old:      old,
		New:      new,
		Cause:    cause,
	}
}

func TestSPPLegalTable(t *testing.T) {
	legalCases := []struct {
		old, new seqpkt.XferState
		cause    string
	}{
		{seqpkt.XferUnsent, seqpkt.XferSent, seqpkt.CauseSend},
		{seqpkt.XferSent, seqpkt.XferSent, seqpkt.CauseRexmit},
		{seqpkt.XferSent, seqpkt.XferAcked, seqpkt.CauseAck},
		{seqpkt.XferSent, seqpkt.XferAbandoned, seqpkt.CauseRetryCap},
		{seqpkt.XferSent, seqpkt.XferCancelled, seqpkt.CauseClose},
	}
	for _, c := range legalCases {
		if ok, reason := SPPLegal(c.old, c.new, c.cause); !ok {
			t.Errorf("%v->%v via %q should be legal: %s", c.old, c.new, c.cause, reason)
		}
	}
	illegalCases := []struct {
		old, new seqpkt.XferState
		cause    string
	}{
		// Wrong cause on a real edge.
		{seqpkt.XferUnsent, seqpkt.XferSent, seqpkt.CauseRexmit},
		{seqpkt.XferSent, seqpkt.XferAcked, seqpkt.CauseSend},
		{seqpkt.XferSent, seqpkt.XferSent, seqpkt.CauseSend},
		// Edges the lifecycle has no arrow for.
		{seqpkt.XferAcked, seqpkt.XferSent, seqpkt.CauseSend},
		{seqpkt.XferAbandoned, seqpkt.XferAcked, seqpkt.CauseAck},
		{seqpkt.XferUnsent, seqpkt.XferAcked, seqpkt.CauseAck},
		{seqpkt.XferCancelled, seqpkt.XferSent, seqpkt.CauseRexmit},
	}
	for _, c := range illegalCases {
		if ok, _ := SPPLegal(c.old, c.new, c.cause); ok {
			t.Errorf("%v->%v via %q should be illegal", c.old, c.new, c.cause)
		}
	}
}

func TestSPPCheckerCountsAndRetains(t *testing.T) {
	c := NewSPPChecker(nil)
	c.Transition(sppEv(seqpkt.XferUnsent, seqpkt.XferSent, seqpkt.CauseSend))
	c.Transition(sppEv(seqpkt.XferSent, seqpkt.XferSent, seqpkt.CauseRexmit))
	c.Transition(sppEv(seqpkt.XferSent, seqpkt.XferAcked, seqpkt.CauseAck))
	if c.Events() != 3 || c.ViolationCount() != 0 {
		t.Fatalf("clean path: events=%d violations=%d", c.Events(), c.ViolationCount())
	}
	bad := sppEv(seqpkt.XferAcked, seqpkt.XferSent, seqpkt.CauseRexmit)
	c.Transition(bad)
	if c.ViolationCount() != 1 || len(c.Violations()) != 1 {
		t.Fatalf("violation not retained: count=%d retained=%d", c.ViolationCount(), len(c.Violations()))
	}
	if v := c.Violations()[0]; v.Event != bad || v.Reason == "" {
		t.Fatalf("retained violation: %+v", v)
	}
}

// sppRecorder retains every transition, to assert full lifecycles.
type sppRecorder struct{ evs []seqpkt.Transition }

func (r *sppRecorder) Transition(ev seqpkt.Transition) { r.evs = append(r.evs, ev) }

func TestSPPCheckerForwardsDownstream(t *testing.T) {
	rec := &sppRecorder{}
	c := NewSPPChecker(rec)
	c.Transition(sppEv(seqpkt.XferUnsent, seqpkt.XferSent, seqpkt.CauseSend))
	c.Transition(sppEv(seqpkt.XferSent, seqpkt.XferAcked, seqpkt.CauseAck))
	if len(rec.evs) != 2 {
		t.Fatalf("downstream saw %d events, want 2", len(rec.evs))
	}
}
