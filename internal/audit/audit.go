// Package audit is the Sinker half of the TCP conformance-audit plane: the
// consumers of the typed state-transition events that internal/tcp emits
// through its TransitionSink interface (the Eventer/Sinker pipeline shape of
// kernel TCP state-change auditors).
//
// Three sinks cover the three consumption modes:
//
//   - RingSink: a preallocated overwrite-oldest ring for the flight
//     recorder — zero-alloc on the emission path, like internal/stats.
//   - JSONLSink: one deterministic JSON object per line for offline
//     analysis and cross-run diffing.
//   - AssertSink: retains everything and answers path queries, for tests
//     that assert a connection walked an exact state sequence.
//
// On top sits Checker (checker.go): an RFC 793 legality validator that
// screens every transition — including its cause — against the state
// diagram, and retains violations with full event context. Chaos soaks and
// the loss/rogue sweeps run with a Checker attached as a standing
// invariant: the fault plane's acceptance bar is zero illegal transitions,
// not merely surviving goodput.
package audit

import (
	"plexus/internal/tcp"
	"plexus/internal/view"
)

// RingSink retains the most recent transitions in a preallocated ring with
// overwrite-oldest semantics — flight-recorder behaviour: the tail of the
// run is always available, and recording never allocates.
type RingSink struct {
	ring  []tcp.Transition
	next  int
	total uint64
}

// NewRingSink returns a ring retaining up to capacity transitions
// (default 4096 when capacity <= 0).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 4096
	}
	return &RingSink{ring: make([]tcp.Transition, capacity)}
}

// Transition implements tcp.TransitionSink.
func (r *RingSink) Transition(ev tcp.Transition) {
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
}

// Recorded returns how many transitions were ever recorded (including any
// the ring has since overwritten).
func (r *RingSink) Recorded() uint64 { return r.total }

// Dropped returns how many transitions the ring has overwritten.
func (r *RingSink) Dropped() uint64 {
	if r.total <= uint64(len(r.ring)) {
		return 0
	}
	return r.total - uint64(len(r.ring))
}

// Events returns the retained transitions in recording order (oldest
// first). It allocates; call at dump time, not on the hot path.
func (r *RingSink) Events() []tcp.Transition {
	if r.total <= uint64(len(r.ring)) {
		out := make([]tcp.Transition, r.total)
		copy(out, r.ring[:r.total])
		return out
	}
	out := make([]tcp.Transition, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// ConnEvents returns the retained transitions of one connection endpoint,
// identified by its 4-tuple as the endpoint sees it.
func (r *RingSink) ConnEvents(local view.IP4, localPort uint16, remote view.IP4, remotePort uint16) []tcp.Transition {
	var out []tcp.Transition
	for _, ev := range r.Events() {
		if ev.LocalAddr == local && ev.LocalPort == localPort &&
			ev.RemoteAddr == remote && ev.RemotePort == remotePort {
			out = append(out, ev)
		}
	}
	return out
}

// Tee fans each transition out to every sink in order. Use it to run the
// flight-recorder ring and a checker side by side off one manager.
type Tee []tcp.TransitionSink

// Transition implements tcp.TransitionSink.
func (t Tee) Transition(ev tcp.Transition) {
	for _, s := range t {
		s.Transition(ev)
	}
}

var (
	_ tcp.TransitionSink = (*RingSink)(nil)
	_ tcp.TransitionSink = Tee(nil)
)
