package audit

import (
	"fmt"

	"plexus/internal/tcp"
	"plexus/internal/view"
)

// alt is one legal way to take a state edge: the cause kind that may drive
// it, plus (for segments) flags the triggering segment must and must not
// carry, or (for timers/user calls) the exact detail string.
type alt struct {
	kind      tcp.CauseKind
	needFlags uint8  // segment alts: all of these flags must be set
	banFlags  uint8  // segment alts: none of these flags may be set
	detail    string // timer/user alts: required Cause.Detail
}

func segAlt(need, ban uint8) alt { return alt{kind: tcp.CauseSegment, needFlags: need, banFlags: ban} }
func userAlt(detail string) alt  { return alt{kind: tcp.CauseUser, detail: detail} }
func timerAlt(detail string) alt { return alt{kind: tcp.CauseTimer, detail: detail} }

// legal is the RFC 793 §3.2 state diagram, indexed [old][new], each entry
// listing the legal causes for that edge. An empty entry means the edge
// itself is illegal. Subtleties encoded here:
//
//   - FinWait1→FinWait2 and Closing→TimeWait must NOT ban the FIN flag: a
//     retransmitted FIN+ACK that acks our FIN drives ACK processing first,
//     so the triggering segment can legitimately carry FIN.
//   - TimeWait→Closed is legal ONLY via the 2·MSL timer (RFC 1337: RSTs in
//     TIME-WAIT are ignored, so no segment may exit it).
//   - Closed→SynSent/Listen are user opens; RST-driven edges land in Closed
//     from every synchronized state.
var legal = func() [tcp.NumStates][tcp.NumStates][]alt {
	var t [tcp.NumStates][tcp.NumStates][]alt
	edge := func(from, to tcp.State, alts ...alt) { t[from][to] = alts }

	const (
		fin = view.TCPFin
		syn = view.TCPSyn
		rst = view.TCPRst
		ack = view.TCPAck
	)

	edge(tcp.StateClosed, tcp.StateListen, userAlt(tcp.CauseListen))
	edge(tcp.StateClosed, tcp.StateSynSent, userAlt(tcp.CauseConnect))

	edge(tcp.StateListen, tcp.StateSynRcvd, segAlt(syn, ack|rst|fin))
	edge(tcp.StateListen, tcp.StateSynSent, userAlt(tcp.CauseConnect))
	edge(tcp.StateListen, tcp.StateClosed, userAlt(tcp.CauseClose), userAlt(tcp.CauseAbort))

	edge(tcp.StateSynSent, tcp.StateEstablished, segAlt(syn|ack, rst|fin))
	edge(tcp.StateSynSent, tcp.StateSynRcvd, segAlt(syn, ack|rst)) // simultaneous open
	edge(tcp.StateSynSent, tcp.StateClosed,
		segAlt(rst|ack, 0), // RST acking our SYN
		timerAlt(tcp.CauseRTO),
		userAlt(tcp.CauseClose), userAlt(tcp.CauseAbort))

	edge(tcp.StateSynRcvd, tcp.StateEstablished, segAlt(ack, syn|rst))
	edge(tcp.StateSynRcvd, tcp.StateFinWait1, userAlt(tcp.CauseClose))
	edge(tcp.StateSynRcvd, tcp.StateClosed,
		segAlt(rst, 0), timerAlt(tcp.CauseRTO), userAlt(tcp.CauseAbort))

	edge(tcp.StateEstablished, tcp.StateFinWait1, userAlt(tcp.CauseClose))
	edge(tcp.StateEstablished, tcp.StateCloseWait, segAlt(fin, rst|syn))
	edge(tcp.StateEstablished, tcp.StateClosed, segAlt(rst, 0), userAlt(tcp.CauseAbort))

	edge(tcp.StateFinWait1, tcp.StateFinWait2, segAlt(ack, rst|syn))
	edge(tcp.StateFinWait1, tcp.StateClosing, segAlt(fin, rst|syn)) // simultaneous close
	edge(tcp.StateFinWait1, tcp.StateTimeWait, segAlt(fin|ack, rst|syn))
	edge(tcp.StateFinWait1, tcp.StateClosed, segAlt(rst, 0), userAlt(tcp.CauseAbort))

	edge(tcp.StateFinWait2, tcp.StateTimeWait, segAlt(fin, rst|syn))
	edge(tcp.StateFinWait2, tcp.StateClosed, segAlt(rst, 0), userAlt(tcp.CauseAbort))

	edge(tcp.StateCloseWait, tcp.StateLastAck, userAlt(tcp.CauseClose))
	edge(tcp.StateCloseWait, tcp.StateClosed, segAlt(rst, 0), userAlt(tcp.CauseAbort))

	edge(tcp.StateClosing, tcp.StateTimeWait, segAlt(ack, rst|syn))
	edge(tcp.StateClosing, tcp.StateClosed, segAlt(rst, 0), userAlt(tcp.CauseAbort))

	edge(tcp.StateLastAck, tcp.StateClosed,
		segAlt(ack, syn), segAlt(rst, 0), userAlt(tcp.CauseAbort))

	edge(tcp.StateTimeWait, tcp.StateClosed, timerAlt(tcp.Cause2MSL))

	return t
}()

// Legal reports whether the transition old→new driven by cause is permitted
// by the RFC 793 state diagram. When it is not, reason says why.
func Legal(old, new tcp.State, cause tcp.Cause) (ok bool, reason string) {
	if old >= tcp.NumStates || new >= tcp.NumStates {
		return false, fmt.Sprintf("unknown state in edge %v->%v", old, new)
	}
	alts := legal[old][new]
	if len(alts) == 0 {
		return false, fmt.Sprintf("no legal edge %v->%v in RFC 793 state diagram (cause %s flags=%s detail=%q)",
			old, new, cause.Kind, view.FlagString(cause.Flags), cause.Detail)
	}
	for _, a := range alts {
		if a.kind != cause.Kind {
			continue
		}
		switch a.kind {
		case tcp.CauseSegment:
			if cause.Flags&a.needFlags == a.needFlags && cause.Flags&a.banFlags == 0 {
				return true, ""
			}
		case tcp.CauseTimer, tcp.CauseUser:
			if cause.Detail == a.detail {
				return true, ""
			}
		}
	}
	return false, fmt.Sprintf("edge %v->%v not legal for cause %s (flags=%s detail=%q)",
		old, new, cause.Kind, view.FlagString(cause.Flags), cause.Detail)
}

// Check validates one event; it returns "" when legal, else the reason.
func Check(ev tcp.Transition) string {
	_, reason := Legal(ev.Old, ev.New, ev.Cause)
	return reason
}

// Violation is an illegal transition retained with its full event context.
type Violation struct {
	Event  tcp.Transition
	Reason string
}

// maxViolations bounds how many violations a Checker retains with full
// context; the count keeps incrementing past it.
const maxViolations = 64

// Checker is a pass-through TransitionSink that validates every event
// against the RFC 793 legality table. Legal events cost a table lookup and
// no allocation; the first maxViolations illegal ones are retained with
// full context. Attach it as the standing invariant in storms: the run
// passes only if ViolationCount() == 0.
type Checker struct {
	next       tcp.TransitionSink // optional downstream sink
	events     uint64
	violations uint64
	retained   []Violation
}

// NewChecker returns a Checker forwarding to next (which may be nil).
func NewChecker(next tcp.TransitionSink) *Checker {
	return &Checker{next: next, retained: make([]Violation, 0, maxViolations)}
}

// Transition implements tcp.TransitionSink.
func (c *Checker) Transition(ev tcp.Transition) {
	c.events++
	if ok, reason := Legal(ev.Old, ev.New, ev.Cause); !ok {
		c.violations++
		if len(c.retained) < cap(c.retained) {
			c.retained = append(c.retained, Violation{Event: ev, Reason: reason})
		}
	}
	if c.next != nil {
		c.next.Transition(ev)
	}
}

// Events returns how many transitions the checker has seen.
func (c *Checker) Events() uint64 { return c.events }

// ViolationCount returns how many illegal transitions were seen.
func (c *Checker) ViolationCount() uint64 { return c.violations }

// Violations returns the retained violations (first maxViolations).
func (c *Checker) Violations() []Violation { return c.retained }

var _ tcp.TransitionSink = (*Checker)(nil)
