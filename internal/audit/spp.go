package audit

// The SPP legality table and checker: the seqpkt counterpart of checker.go.
// SPP's machine is a per-datagram transfer lifecycle, so the table is small —
// Unsent→Sent on first transmission, a Sent→Sent retry self-loop, and one
// terminal edge each for acknowledgment, retry exhaustion, and endpoint
// close — but the discipline is identical: every emitted transition must
// match an (edge, cause) pair or the run is in violation.

import (
	"fmt"

	"plexus/internal/seqpkt"
)

// sppLegal is the transfer-lifecycle diagram, indexed [old][new], each entry
// listing the cause strings that may drive that edge.
var sppLegal = func() [seqpkt.NumXferStates][seqpkt.NumXferStates][]string {
	var t [seqpkt.NumXferStates][seqpkt.NumXferStates][]string
	t[seqpkt.XferUnsent][seqpkt.XferSent] = []string{seqpkt.CauseSend}
	t[seqpkt.XferSent][seqpkt.XferSent] = []string{seqpkt.CauseRexmit}
	t[seqpkt.XferSent][seqpkt.XferAcked] = []string{seqpkt.CauseAck}
	t[seqpkt.XferSent][seqpkt.XferAbandoned] = []string{seqpkt.CauseRetryCap}
	t[seqpkt.XferSent][seqpkt.XferCancelled] = []string{seqpkt.CauseClose}
	return t
}()

// SPPLegal reports whether the transfer-lifecycle edge old→new driven by
// cause is permitted; when not, reason says why.
func SPPLegal(old, new seqpkt.XferState, cause string) (ok bool, reason string) {
	if old >= seqpkt.NumXferStates || new >= seqpkt.NumXferStates {
		return false, fmt.Sprintf("unknown state in edge %v->%v", old, new)
	}
	causes := sppLegal[old][new]
	if len(causes) == 0 {
		return false, fmt.Sprintf("no legal edge %v->%v in SPP transfer lifecycle (cause %q)", old, new, cause)
	}
	for _, c := range causes {
		if cause == c {
			return true, ""
		}
	}
	return false, fmt.Sprintf("edge %v->%v not legal for cause %q", old, new, cause)
}

// SPPViolation is an illegal SPP transition retained with its event context.
type SPPViolation struct {
	Event  seqpkt.Transition
	Reason string
}

// SPPChecker is a pass-through seqpkt.TransitionSink validating every event
// against the transfer-lifecycle table, the same standing-invariant role
// Checker plays for TCP.
type SPPChecker struct {
	next       seqpkt.TransitionSink
	events     uint64
	violations uint64
	retained   []SPPViolation
}

// NewSPPChecker returns an SPPChecker forwarding to next (which may be nil).
func NewSPPChecker(next seqpkt.TransitionSink) *SPPChecker {
	return &SPPChecker{next: next, retained: make([]SPPViolation, 0, maxViolations)}
}

// Transition implements seqpkt.TransitionSink.
func (c *SPPChecker) Transition(ev seqpkt.Transition) {
	c.events++
	if ok, reason := SPPLegal(ev.Old, ev.New, ev.Cause); !ok {
		c.violations++
		if len(c.retained) < cap(c.retained) {
			c.retained = append(c.retained, SPPViolation{Event: ev, Reason: reason})
		}
	}
	if c.next != nil {
		c.next.Transition(ev)
	}
}

// Events returns how many transitions the checker has seen.
func (c *SPPChecker) Events() uint64 { return c.events }

// ViolationCount returns how many illegal transitions were seen.
func (c *SPPChecker) ViolationCount() uint64 { return c.violations }

// Violations returns the retained violations (first maxViolations).
func (c *SPPChecker) Violations() []SPPViolation { return c.retained }

var _ seqpkt.TransitionSink = (*SPPChecker)(nil)
