package audit

import (
	"io"
	"strconv"

	"plexus/internal/tcp"
	"plexus/internal/view"
)

// JSONLSink writes one JSON object per transition to an io.Writer, for
// offline analysis and cross-run diffing. The encoding is hand-rolled into
// a reused buffer so the line format is byte-deterministic: identical
// simulations produce identical files, and `diff` between two runs is the
// determinism check. Write errors are sticky — recording continues as a
// no-op and Err returns the first failure.
type JSONLSink struct {
	w     io.Writer
	buf   []byte
	err   error
	lines uint64
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, buf: make([]byte, 0, 256)}
}

// Transition implements tcp.TransitionSink.
func (j *JSONLSink) Transition(ev tcp.Transition) {
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, int64(ev.At), 10)
	b = append(b, `,"host":"`...)
	b = append(b, ev.Host...)
	b = append(b, `","local":"`...)
	b = appendAddr(b, ev.LocalAddr, ev.LocalPort)
	b = append(b, `","remote":"`...)
	b = appendAddr(b, ev.RemoteAddr, ev.RemotePort)
	b = append(b, `","old":"`...)
	b = append(b, ev.Old.String()...)
	b = append(b, `","new":"`...)
	b = append(b, ev.New.String()...)
	b = append(b, `","cause":"`...)
	b = append(b, ev.Cause.Kind.String()...)
	b = append(b, '"')
	switch ev.Cause.Kind {
	case tcp.CauseSegment:
		b = append(b, `,"flags":"`...)
		b = append(b, view.FlagString(ev.Cause.Flags)...)
		b = append(b, `","seq":`...)
		b = strconv.AppendUint(b, uint64(ev.Cause.Seq), 10)
		b = append(b, `,"ack":`...)
		b = strconv.AppendUint(b, uint64(ev.Cause.Ack), 10)
	default:
		b = append(b, `,"detail":"`...)
		b = append(b, ev.Cause.Detail...)
		b = append(b, '"')
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.lines++
}

// appendAddr appends "a.b.c.d:port" without going through fmt.
func appendAddr(b []byte, ip view.IP4, port uint16) []byte {
	for i, o := range ip {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, uint64(o), 10)
	}
	b = append(b, ':')
	return strconv.AppendUint(b, uint64(port), 10)
}

// Err returns the first write error, if any.
func (j *JSONLSink) Err() error { return j.err }

// Lines returns how many lines were written successfully.
func (j *JSONLSink) Lines() uint64 { return j.lines }

var _ tcp.TransitionSink = (*JSONLSink)(nil)
