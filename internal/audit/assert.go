package audit

import (
	"strings"

	"plexus/internal/tcp"
	"plexus/internal/view"
)

// AssertSink retains every transition so tests can assert that a connection
// walked an exact state path (e.g. the simultaneous-close ladder
// FIN-WAIT-1 -> CLOSING -> TIME-WAIT -> CLOSED on both ends). It allocates
// freely — it is a test sink, not a hot-path one — and deliberately does
// not import the testing package so non-test tooling can use it too.
type AssertSink struct {
	Events []tcp.Transition
}

// Transition implements tcp.TransitionSink.
func (a *AssertSink) Transition(ev tcp.Transition) {
	a.Events = append(a.Events, ev)
}

// Path returns the state sequence one connection endpoint walked, starting
// from the Old state of its first recorded transition. The endpoint is
// identified by its 4-tuple as it sees it.
func (a *AssertSink) Path(local view.IP4, localPort uint16, remote view.IP4, remotePort uint16) []tcp.State {
	var path []tcp.State
	for _, ev := range a.Events {
		if ev.LocalAddr != local || ev.LocalPort != localPort ||
			ev.RemoteAddr != remote || ev.RemotePort != remotePort {
			continue
		}
		if len(path) == 0 {
			path = append(path, ev.Old)
		}
		path = append(path, ev.New)
	}
	return path
}

// PathString renders Path as "CLOSED>SYN-SENT>ESTABLISHED" for one-line
// test assertions.
func (a *AssertSink) PathString(local view.IP4, localPort uint16, remote view.IP4, remotePort uint16) string {
	path := a.Path(local, localPort, remote, remotePort)
	parts := make([]string, len(path))
	for i, s := range path {
		parts[i] = s.String()
	}
	return strings.Join(parts, ">")
}

var _ tcp.TransitionSink = (*AssertSink)(nil)
