// Package ether implements the Ethernet layer of the Plexus protocol graph
// and its protocol manager. The manager owns the Ethernet.PacketRecv event —
// the event the paper's Figure 2 active-message extension installs on — and
// enforces the §3.3 policy that handlers delegated interrupt-level work must
// be EPHEMERAL.
package ether

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Protocol-graph event names owned by the Ethernet layer.
const (
	// RecvEvent is raised by the device driver for every accepted frame.
	RecvEvent event.Name = "Ethernet.PacketRecv"
	// SendEvent is raised (when observed) for every outgoing frame, the
	// hook point for send-side extensions.
	SendEvent event.Name = "Ethernet.PacketSend"
)

// Layer is the Ethernet protocol node and manager for one interface.
type Layer struct {
	nic   *netdev.NIC
	disp  *event.Dispatcher
	raise event.Raiser
	pool  *mbuf.Pool
	cpu   *sim.CPU
	costs osmodel.Costs
	// sendRef is the resolved SendEvent handle for the per-frame tap check.
	sendRef *event.Ref
}

// Config wires a Layer.
type Config struct {
	NIC   *netdev.NIC
	Disp  *event.Dispatcher
	Raise event.Raiser
	Pool  *mbuf.Pool
	CPU   *sim.CPU
	Costs osmodel.Costs
	// RequireEphemeral makes RecvEvent reject non-EPHEMERAL handlers;
	// stacks whose receive path runs at interrupt level set this.
	RequireEphemeral bool
}

// New declares the Ethernet events on the host dispatcher and returns the
// layer. It must be called once per interface per dispatcher.
func New(cfg Config) (*Layer, error) {
	if err := cfg.Disp.Declare(RecvEvent, event.Options{RequireEphemeral: cfg.RequireEphemeral}); err != nil {
		return nil, err
	}
	if err := cfg.Disp.Declare(SendEvent, event.Options{}); err != nil {
		return nil, err
	}
	return &Layer{
		nic:     cfg.NIC,
		disp:    cfg.Disp,
		raise:   cfg.Raise,
		pool:    cfg.Pool,
		cpu:     cfg.CPU,
		costs:   cfg.Costs,
		sendRef: cfg.Disp.Ref(SendEvent),
	}, nil
}

// CPUSubmit schedules kernel-priority protocol work (timer-driven
// retransmissions and the like) on the host CPU.
func (l *Layer) CPUSubmit(label string, fn func(*sim.Task)) {
	l.cpu.Submit(sim.PrioKernel, label, fn)
}

// Raise re-raises an event through the stack's configured raise path; upper
// layers use it to push packets to the next node of the graph.
func (l *Layer) Raise(t *sim.Task, name event.Name, m *mbuf.Mbuf) int {
	return l.raise.Raise(t, name, m)
}

// RaiseRef is Raise through a resolved handle — the per-packet form.
func (l *Layer) RaiseRef(t *sim.Task, r *event.Ref, m *mbuf.Mbuf) int {
	return l.raise.RaiseRef(t, r, m)
}

// MAC returns the interface hardware address.
func (l *Layer) MAC() view.MAC { return l.nic.MAC() }

// MTU returns the interface MTU (payload bytes after the Ethernet header).
func (l *Layer) MTU() int { return l.nic.MTU() }

// NIC returns the underlying device.
func (l *Layer) NIC() *netdev.NIC { return l.nic }

// Send encapsulates m (consumed) in an Ethernet frame to dst and transmits
// it. The source address is always overwritten with the interface address —
// the cheap anti-spoofing policy of §3.1.
func (l *Layer) Send(t *sim.Task, dst view.MAC, etherType uint16, m *mbuf.Mbuf) error {
	t.ChargeProf(sim.ProfProto, "ether", l.costs.EtherProc)
	if hdr := m.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "ether", "send", hdr.Len)
	}
	fm, err := m.Prepend(view.EthernetHdrLen)
	if err != nil {
		m.Free()
		return fmt.Errorf("ether: %w", err)
	}
	b, err := fm.MutableBytes()
	if err != nil {
		fm.Free()
		return fmt.Errorf("ether: %w", err)
	}
	eth, err := view.Ethernet(b)
	if err != nil {
		fm.Free()
		return fmt.Errorf("ether: %w", err)
	}
	eth.SetDst(dst)
	eth.SetSrc(l.nic.MAC())
	eth.SetEtherType(etherType)
	if l.sendRef.HandlerCount() > 0 {
		l.raise.RaiseRef(t, l.sendRef, fm)
	}
	return l.nic.Transmit(t, fm)
}

// InstallRecv is the manager interface for attaching a protocol (or an
// application extension such as active messages) to incoming frames. The
// guard typically discriminates on the Ethernet type field. If the event was
// declared RequireEphemeral, non-EPHEMERAL handlers are rejected, and
// allotment bounds each invocation.
func (l *Layer) InstallRecv(guard event.Guard, h event.Handler, allotment sim.Time) (*event.Binding, error) {
	return l.disp.Install(RecvEvent, guard, h, allotment)
}

// InstallSendTap attaches an observer to outgoing frames.
func (l *Layer) InstallSendTap(guard event.Guard, h event.Handler) (*event.Binding, error) {
	return l.disp.Install(SendEvent, guard, h, 0)
}

// TypeGuard returns a guard matching frames with the given Ethernet type —
// the guard of the paper's Figure 2, expressed with a view.
func TypeGuard(etherType uint16) event.Guard {
	return func(t *sim.Task, m *mbuf.Mbuf) bool {
		eth, err := view.Ethernet(m.Bytes())
		if err != nil {
			return false
		}
		return eth.EtherType() == etherType
	}
}
