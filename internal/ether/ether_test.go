package ether_test

import (
	"errors"
	"testing"

	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func pair(t *testing.T, interrupt bool) (*plexus.Network, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	dispatch := osmodel.DispatchInterrupt
	if !interrupt {
		dispatch = osmodel.DispatchThread
	}
	spec := func(name string) plexus.HostSpec {
		return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: dispatch}
	}
	n, a, b, err := plexus.TwoHosts(1, netdev.EthernetModel(), spec("a"), spec("b"))
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestSendStampsSourceAddress(t *testing.T) {
	n, a, b := pair(t, true)
	var gotSrc view.MAC
	if _, err := b.Ether.InstallRecv(ether.TypeGuard(0x8999),
		event.Ephemeral("sink", func(task *sim.Task, m *mbuf.Mbuf) {
			defer m.Free()
			eth, err := view.Ethernet(m.Bytes())
			if err == nil {
				gotSrc = eth.Src()
			}
		}), 0); err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		m := a.Host.Pool.FromBytes([]byte("hi"), 32)
		if err := a.Ether.Send(task, b.NIC.MAC(), 0x8999, m); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	// The source field is always overwritten with the interface address
	// (anti-spoofing, §3.1), regardless of what the extension wrote.
	if gotSrc != a.NIC.MAC() {
		t.Fatalf("source = %v, want %v", gotSrc, a.NIC.MAC())
	}
}

// Interrupt-mode stacks declare Ethernet.PacketRecv RequireEphemeral; the
// manager rejects non-EPHEMERAL handlers (paper §3.3 / Figure 3).
func TestManagerRejectsNonEphemeralAtInterruptLevel(t *testing.T) {
	_, a, _ := pair(t, true)
	_, err := a.Ether.InstallRecv(nil, event.Proc("NotEphemeral", func(*sim.Task, *mbuf.Mbuf) {}), 0)
	if !errors.Is(err, event.ErrNotEphemeral) {
		t.Fatalf("err = %v, want ErrNotEphemeral", err)
	}
	if _, err := a.Ether.InstallRecv(ether.TypeGuard(0x9000),
		event.Ephemeral("GoodHandler", func(task *sim.Task, m *mbuf.Mbuf) { m.Free() }), 0); err != nil {
		t.Fatalf("EPHEMERAL handler rejected: %v", err)
	}
}

// Thread-mode stacks lift the restriction: handlers run on kernel threads.
func TestThreadModeAcceptsNonEphemeral(t *testing.T) {
	_, a, _ := pair(t, false)
	if _, err := a.Ether.InstallRecv(ether.TypeGuard(0x9000),
		event.Proc("NotEphemeral", func(task *sim.Task, m *mbuf.Mbuf) { m.Free() }), 0); err != nil {
		t.Fatalf("thread-mode install rejected: %v", err)
	}
}

func TestSendTapObservesFrames(t *testing.T) {
	n, a, b := pair(t, true)
	taps := 0
	if _, err := a.Ether.InstallSendTap(nil, event.Proc("tap", func(task *sim.Task, m *mbuf.Mbuf) {
		taps++ // observe only; do not free — the send path owns the frame
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, nil); err != nil {
		t.Fatal(err)
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 9, []byte("x"))
		_ = capp.Send(task, b.Addr(), 9, []byte("y"))
	})
	n.Sim.Run()
	if taps != 2 {
		t.Fatalf("tap saw %d frames, want 2", taps)
	}
}

func TestTypeGuardRejectsShortFrames(t *testing.T) {
	_, a, _ := pair(t, true)
	g := ether.TypeGuard(0x0800)
	m := a.Host.Pool.FromBytes([]byte{1, 2, 3}, 0)
	defer m.Free()
	if g(nil, m) {
		t.Fatal("guard matched a 3-byte frame")
	}
}

func TestLayerAccessors(t *testing.T) {
	_, a, _ := pair(t, true)
	if a.Ether.MTU() != 1500 {
		t.Error("MTU wrong")
	}
	if a.Ether.MAC() != a.NIC.MAC() {
		t.Error("MAC wrong")
	}
	if a.Ether.NIC() != a.NIC {
		t.Error("NIC wrong")
	}
}
