package forward

import (
	"fmt"

	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

// SpliceStats counts user-level forwarder activity.
type SpliceStats struct {
	Accepted      uint64
	BytesToServer uint64
	BytesToClient uint64
}

// Splice is the conventional user-level TCP forwarder: a process that
// accepts connections on the service port and splices each to a fresh
// connection to the backend, copying data in both directions through user
// space. It runs above the transport layer, so (as the paper notes) it
// terminates the client's TCP connection rather than preserving end-to-end
// semantics, and every byte crosses the user/kernel boundary twice.
type Splice struct {
	st          *plexus.Stack
	backend     view.IP4
	backendPort uint16
	listener    *tcp.Listener
	stats       SpliceStats
}

// NewSplice starts the user-level forwarder on servicePort.
func NewSplice(st *plexus.Stack, servicePort uint16, backend view.IP4, backendPort uint16) (*Splice, error) {
	s := &Splice{st: st, backend: backend, backendPort: backendPort}
	l, err := st.ListenTCP(servicePort, plexus.TCPAppOptions{}, s.accept)
	if err != nil {
		return nil, fmt.Errorf("forward: %w", err)
	}
	// Rebind with per-connection plumbing: ListenTCP's accept callback
	// gives us the client side; the backend side is dialled there.
	s.listener = l
	return s, nil
}

// Stats returns a snapshot of counters.
func (s *Splice) Stats() SpliceStats { return s.stats }

// accept wires one spliced pair. It runs in the forwarder's application
// context (user level on a monolithic host).
func (s *Splice) accept(t *sim.Task, client *plexus.TCPApp) {
	s.stats.Accepted++
	var backend *plexus.TCPApp
	var pendingToBackend [][]byte

	// Client-side plumbing was fixed at listen time; we attach the data
	// paths by replacing the app-level options now.
	clientOpts := client.Options()
	clientOpts.OnRecv = func(t2 *sim.Task, _ *plexus.TCPApp, data []byte) {
		s.stats.BytesToServer += uint64(len(data))
		if backend == nil {
			cp := append([]byte(nil), data...)
			pendingToBackend = append(pendingToBackend, cp)
			return
		}
		_ = backend.Send(t2, data)
	}
	clientOpts.OnPeerFin = func(t2 *sim.Task, c *plexus.TCPApp) {
		if backend != nil {
			backend.Close(t2)
		}
		c.Close(t2)
	}
	client.SetOptions(clientOpts)

	b, err := s.st.ConnectTCP(t, s.backend, s.backendPort, plexus.TCPAppOptions{
		OnEstablished: func(t2 *sim.Task, b2 *plexus.TCPApp) {
			backend = b2
			for _, d := range pendingToBackend {
				_ = b2.Send(t2, d)
			}
			pendingToBackend = nil
		},
		OnRecv: func(t2 *sim.Task, _ *plexus.TCPApp, data []byte) {
			s.stats.BytesToClient += uint64(len(data))
			_ = client.Send(t2, data)
		},
		OnPeerFin: func(t2 *sim.Task, b2 *plexus.TCPApp) {
			client.Close(t2)
			b2.Close(t2)
		},
	})
	if err != nil {
		s.st.Host.Sim.Tracef(sim.TraceApp, "splice: backend dial failed: %v", err)
		return
	}
	backend = nil // set on establish
	_ = b
}

// Close stops accepting new connections.
func (s *Splice) Close() { s.listener.Close() }
