package forward

import (
	"bytes"
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// threeHosts builds client, forwarder, server on one Ethernet. The forwarder
// personality is the experiment variable.
func threeHosts(t *testing.T, fwdPersonality osmodel.Personality) (*plexus.Network, *plexus.Stack, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	spec := func(name string, p osmodel.Personality) plexus.HostSpec {
		return plexus.HostSpec{Name: name, Personality: p, Dispatch: osmodel.DispatchInterrupt}
	}
	n, err := plexus.NewNetwork(1, netdev.EthernetModel(), []plexus.HostSpec{
		spec("client", osmodel.SPIN),
		spec("fwd", fwdPersonality),
		spec("server", osmodel.SPIN),
	})
	if err != nil {
		t.Fatal(err)
	}
	n.PrimeARP()
	return n, n.Hosts[0], n.Hosts[1], n.Hosts[2]
}

// echoServer installs a TCP upper-caser on the server.
func echoServer(t *testing.T, server *plexus.Stack, port uint16) {
	t.Helper()
	_, err := server.ListenTCP(port, plexus.TCPAppOptions{
		OnRecv: func(task *sim.Task, conn *plexus.TCPApp, data []byte) {
			_ = conn.Send(task, bytes.ToUpper(data))
		},
		OnPeerFin: func(task *sim.Task, conn *plexus.TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// runRequest opens a TCP connection from client to target:port, sends req,
// and returns the reply and the request→reply latency.
func runRequest(t *testing.T, n *plexus.Network, client *plexus.Stack, target view.IP4, port uint16, req []byte) ([]byte, sim.Time) {
	t.Helper()
	var reply bytes.Buffer
	var sentAt, gotAt sim.Time
	client.Spawn("client", func(task *sim.Task) {
		_, err := client.ConnectTCP(task, target, port, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				sentAt = t2.Now()
				_ = conn.Send(t2, req)
			},
			OnRecv: func(t2 *sim.Task, conn *plexus.TCPApp, data []byte) {
				reply.Write(data)
				if reply.Len() >= len(req) {
					gotAt = t2.Now()
					conn.Close(t2)
				}
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if gotAt == 0 {
		t.Fatal("no reply through forwarder")
	}
	return reply.Bytes(), gotAt - sentAt
}

func TestKernelForwarderTCPEndToEnd(t *testing.T) {
	n, client, fwd, server := threeHosts(t, osmodel.SPIN)
	echoServer(t, server, 9000)
	k, err := NewKernel(fwd, view.IPProtoTCP, 8000, server.Addr(), 9000)
	if err != nil {
		t.Fatal(err)
	}
	req := []byte("forward me please")
	reply, latency := runRequest(t, n, client, fwd.Addr(), 8000, req)
	if string(reply) != "FORWARD ME PLEASE" {
		t.Fatalf("reply = %q", reply)
	}
	t.Logf("kernel-forwarded request/reply latency = %v", latency)
	st := k.Stats()
	if st.FlowsCreated != 1 {
		t.Errorf("FlowsCreated = %d", st.FlowsCreated)
	}
	// SYN, data, ACKs, FINs all pass through: both directions nonzero and
	// more than just the data packet.
	if st.Forwarded < 3 || st.Returned < 3 {
		t.Errorf("control packets not forwarded: %+v", st)
	}
	// End-to-end semantics: the server saw the connection terminate with a
	// proper FIN exchange; no RSTs anywhere.
	if server.TCP.Stats().RSTsSent != 0 || client.TCP.Stats().RSTsSent != 0 {
		t.Error("RSTs emitted through in-kernel forwarding")
	}
	// The forwarder host's own TCP never saw the connection.
	if fwd.TCP.Stats().SegsIn != 0 {
		t.Errorf("forwarder's local TCP processed %d segments; claim failed", fwd.TCP.Stats().SegsIn)
	}
}

func TestSpliceForwarderTCPEndToEnd(t *testing.T) {
	n, client, fwd, server := threeHosts(t, osmodel.Monolithic)
	echoServer(t, server, 9000)
	sp, err := NewSplice(fwd, 8000, server.Addr(), 9000)
	if err != nil {
		t.Fatal(err)
	}
	req := []byte("forward me please")
	reply, latency := runRequest(t, n, client, fwd.Addr(), 8000, req)
	if string(reply) != "FORWARD ME PLEASE" {
		t.Fatalf("reply = %q", reply)
	}
	t.Logf("user-level-spliced request/reply latency = %v", latency)
	st := sp.Stats()
	if st.Accepted != 1 || st.BytesToServer != uint64(len(req)) || st.BytesToClient != uint64(len(req)) {
		t.Errorf("splice stats wrong: %+v", st)
	}
}

// Figure 7's point: the in-kernel forwarder adds far less latency than the
// user-level splice.
func TestKernelForwarderFasterThanSplice(t *testing.T) {
	run := func(kernel bool) sim.Time {
		personality := osmodel.Monolithic
		if kernel {
			personality = osmodel.SPIN
		}
		n, client, fwd, server := threeHosts(t, personality)
		echoServer(t, server, 9000)
		if kernel {
			if _, err := NewKernel(fwd, view.IPProtoTCP, 8000, server.Addr(), 9000); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := NewSplice(fwd, 8000, server.Addr(), 9000); err != nil {
				t.Fatal(err)
			}
		}
		_, lat := runRequest(t, n, client, fwd.Addr(), 8000, make([]byte, 512))
		return lat
	}
	kernelLat := run(true)
	spliceLat := run(false)
	t.Logf("kernel=%v splice=%v ratio=%.2f", kernelLat, spliceLat, float64(spliceLat)/float64(kernelLat))
	if spliceLat <= kernelLat {
		t.Errorf("splice (%v) should be slower than kernel forwarding (%v)", spliceLat, kernelLat)
	}
}

func TestKernelForwarderUDP(t *testing.T) {
	n, client, fwd, server := threeHosts(t, osmodel.SPIN)
	var echo *plexus.UDPApp
	echo, err := server.OpenUDP(plexus.UDPAppOptions{Port: 9000}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(task, src, srcPort, bytes.ToUpper(data))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKernel(fwd, view.IPProtoUDP, 8000, server.Addr(), 9000); err != nil {
		t.Fatal(err)
	}
	var reply []byte
	capp, err := client.OpenUDP(plexus.UDPAppOptions{}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		reply = data
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("client", func(task *sim.Task) {
		_ = capp.Send(task, fwd.Addr(), 8000, []byte("udp hop"))
	})
	n.Sim.Run()
	if string(reply) != "UDP HOP" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestKernelForwarderUninstall(t *testing.T) {
	n, client, fwd, server := threeHosts(t, osmodel.SPIN)
	var echo *plexus.UDPApp
	echo, err := server.OpenUDP(plexus.UDPAppOptions{Port: 9000}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(task, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(fwd, view.IPProtoUDP, 8000, server.Addr(), 9000)
	if err != nil {
		t.Fatal(err)
	}
	replies := 0
	capp, err := client.OpenUDP(plexus.UDPAppOptions{}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		replies++
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("first", func(task *sim.Task) { _ = capp.Send(task, fwd.Addr(), 8000, []byte("x")) })
	n.Sim.At(50*sim.Millisecond, "uninstall", k.Uninstall)
	client.SpawnAt(100*sim.Millisecond, "second", func(task *sim.Task) {
		_ = capp.Send(task, fwd.Addr(), 8000, []byte("y"))
	})
	n.Sim.RunUntil(10 * sim.Second)
	if replies != 1 {
		t.Fatalf("replies = %d, want 1 (forwarding stops at uninstall)", replies)
	}
}
