// Package forward implements the paper's §5 protocol-forwarding experiment
// (Figure 7): a node installed in the Plexus protocol graph that redirects
// all data and control packets destined for a particular port to a secondary
// host, compared against a conventional user-level forwarder that splices two
// sockets together.
//
// The in-kernel forwarder operates below the transport layer: it rewrites
// addresses on whole IP datagrams (SYNs, FINs, RSTs and data alike) and
// re-emits them, so TCP's end-to-end connection establishment, termination,
// window, and congestion behaviour pass through untouched — exactly what the
// paper says the user-level forwarder cannot preserve. Each packet makes one
// trip through the bottom of one protocol stack.
//
// The user-level splice accepts the client connection, opens a second
// connection to the backend, and copies bytes between them in a user
// process: every packet climbs the full stack, crosses the user/kernel
// boundary twice, and descends the full stack again.
package forward

import (
	"errors"
	"fmt"

	"plexus/internal/event"
	"plexus/internal/ip"
	"plexus/internal/mbuf"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// natBase is the first port used for rewritten flows.
const natBase = 61000

// rewriteCost models the per-packet work of the in-kernel node: a flow-table
// lookup plus an incremental checksum update.
const rewriteCost = 4 * sim.Microsecond

// Errors.
var errNATFull = errors.New("forward: NAT port space exhausted")

// KernelStats counts in-kernel forwarder activity.
type KernelStats struct {
	Forwarded    uint64 // client → backend packets
	Returned     uint64 // backend → client packets
	FlowsCreated uint64
	Dropped      uint64
}

// flowKey identifies a client flow.
type flowKey struct {
	client     view.IP4
	clientPort uint16
}

type natEntry struct {
	key     flowKey
	natPort uint16
}

// Kernel is the in-kernel Plexus forwarder node for one service port.
type Kernel struct {
	st          *plexus.Stack
	proto       uint8
	servicePort uint16
	backend     view.IP4
	backendPort uint16

	flows   map[flowKey]*natEntry
	byNAT   map[uint16]*natEntry
	nextNAT uint16
	binding *event.Binding
	stats   KernelStats
}

// NewKernel installs a forwarder for proto (view.IPProtoTCP or
// view.IPProtoUDP) traffic to servicePort, redirecting it to
// backend:backendPort. The node claims the service port (and its NAT ports)
// from the local transport manager — the §3.1 multiple-implementations
// mechanism — and installs a guard/handler pair on IP.PacketRecv.
func NewKernel(st *plexus.Stack, proto uint8, servicePort uint16, backend view.IP4, backendPort uint16) (*Kernel, error) {
	k := &Kernel{
		st:          st,
		proto:       proto,
		servicePort: servicePort,
		backend:     backend,
		backendPort: backendPort,
		flows:       make(map[flowKey]*natEntry),
		byNAT:       make(map[uint16]*natEntry),
		nextNAT:     natBase,
	}
	if err := k.claim(servicePort); err != nil {
		return nil, err
	}
	guard := func(t *sim.Task, pkt *mbuf.Mbuf) bool {
		ipv, err := view.IPv4(pkt.Bytes())
		if err != nil || ipv.Proto() != proto {
			return false
		}
		_, dstPort, ok := k.ports(pkt, ipv)
		if !ok {
			return false
		}
		if dstPort == servicePort {
			return true
		}
		_, isNAT := k.byNAT[dstPort]
		return isNAT && ipv.Src() == backend
	}
	b, err := st.Host.Disp.Install(ip.RecvEvent, guard,
		event.Ephemeral("forward.kernel", k.input), 0)
	if err != nil {
		return nil, err
	}
	k.binding = b
	return k, nil
}

// claim takes a port away from the local transport implementation.
func (k *Kernel) claim(port uint16) error {
	if k.proto == view.IPProtoTCP {
		return k.st.TCP.Claim(port)
	}
	return k.st.UDP.Claim(port)
}

// Stats returns a snapshot of counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// Uninstall removes the forwarder node from the graph.
func (k *Kernel) Uninstall() {
	k.st.Host.Disp.Uninstall(k.binding)
	if k.proto == view.IPProtoTCP {
		k.st.TCP.Unclaim(k.servicePort)
	} else {
		k.st.UDP.Unclaim(k.servicePort)
	}
}

// ports extracts (srcPort, dstPort) from the transport header.
func (k *Kernel) ports(pkt *mbuf.Mbuf, ipv view.IPv4View) (uint16, uint16, bool) {
	hdr, err := pkt.CopyData(ipv.HdrLen(), 4)
	if err != nil {
		return 0, 0, false
	}
	return uint16(hdr[0])<<8 | uint16(hdr[1]), uint16(hdr[2])<<8 | uint16(hdr[3]), true
}

// input rewrites and re-emits one redirected datagram, entirely within the
// receive context.
func (k *Kernel) input(t *sim.Task, pkt *mbuf.Mbuf) {
	defer pkt.Free()
	t.Charge(rewriteCost)
	ipv, err := view.IPv4(pkt.Bytes())
	if err != nil {
		k.stats.Dropped++
		return
	}
	srcPort, dstPort, ok := k.ports(pkt, ipv)
	if !ok {
		k.stats.Dropped++
		return
	}
	// Work on a private copy: the incoming chain is read-only.
	out, err := pkt.DeepCopy()
	if err != nil {
		k.stats.Dropped++
		return
	}
	if dstPort == k.servicePort {
		// Client → backend.
		fk := flowKey{client: ipv.Src(), clientPort: srcPort}
		e, okf := k.flows[fk]
		if !okf {
			natPort, err := k.allocNAT()
			if err != nil {
				out.Free()
				k.stats.Dropped++
				return
			}
			e = &natEntry{key: fk, natPort: natPort}
			k.flows[fk] = e
			k.byNAT[natPort] = e
			k.stats.FlowsCreated++
		}
		if err := k.rewrite(out, k.st.Addr(), k.backend, e.natPort, k.backendPort); err != nil {
			out.Free()
			k.stats.Dropped++
			return
		}
		k.stats.Forwarded++
	} else {
		// Backend → client.
		e, okf := k.byNAT[dstPort]
		if !okf {
			out.Free()
			k.stats.Dropped++
			return
		}
		if err := k.rewrite(out, k.st.Addr(), e.key.client, k.servicePort, e.key.clientPort); err != nil {
			out.Free()
			k.stats.Dropped++
			return
		}
		k.stats.Returned++
	}
	if err := k.st.IP.Forward(t, out); err != nil {
		k.stats.Dropped++
	}
}

func (k *Kernel) allocNAT() (uint16, error) {
	for i := 0; i < 2048; i++ {
		p := k.nextNAT
		k.nextNAT++
		if k.nextNAT == natBase+2048 {
			k.nextNAT = natBase
		}
		if _, used := k.byNAT[p]; !used {
			if err := k.claim(p); err != nil {
				continue
			}
			return p, nil
		}
	}
	return 0, errNATFull
}

// rewrite updates addresses and ports on the private copy and recomputes the
// IP and transport checksums over the new pseudo-header.
func (k *Kernel) rewrite(out *mbuf.Mbuf, newSrc, newDst view.IP4, newSrcPort, newDstPort uint16) error {
	b, err := out.MutableBytes()
	if err != nil {
		return err
	}
	ipv, err := view.IPv4(b)
	if err != nil {
		return err
	}
	hl := ipv.HdrLen()
	if ttl := ipv.TTL(); ttl <= 1 {
		return fmt.Errorf("forward: TTL expired")
	}
	ipv.SetSrc(newSrc)
	ipv.SetDst(newDst)
	ipv.SetTTL(ipv.TTL() - 1)
	ipv.ComputeChecksum()
	// The transport header is contiguous in the head buffer for any
	// well-formed packet (DeepCopy packs from the front).
	if hl+view.UDPHdrLen > len(b) {
		return fmt.Errorf("forward: truncated transport header")
	}
	seg := b[hl:]
	seg[0] = byte(newSrcPort >> 8)
	seg[1] = byte(newSrcPort)
	seg[2] = byte(newDstPort >> 8)
	seg[3] = byte(newDstPort)
	segLen := ipv.TotalLen() - hl
	switch k.proto {
	case view.IPProtoTCP:
		if len(seg) < 18 {
			return fmt.Errorf("forward: truncated TCP header")
		}
		seg[16], seg[17] = 0, 0
		a := view.PseudoHeader(newSrc, newDst, view.IPProtoTCP, segLen)
		if err := ip.ChecksumChain(&a, out, hl, segLen); err != nil {
			return err
		}
		c := a.Fold()
		seg[16], seg[17] = byte(c>>8), byte(c)
	case view.IPProtoUDP:
		if seg[6] == 0 && seg[7] == 0 {
			return nil // sender disabled the checksum; leave it off
		}
		seg[6], seg[7] = 0, 0
		a := view.PseudoHeader(newSrc, newDst, view.IPProtoUDP, segLen)
		if err := ip.ChecksumChain(&a, out, hl, segLen); err != nil {
			return err
		}
		c := a.Fold()
		if c == 0 {
			c = 0xffff
		}
		seg[6], seg[7] = byte(c>>8), byte(c)
	}
	return nil
}
