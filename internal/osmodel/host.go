package osmodel

import (
	"plexus/internal/domain"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

// Host is one simulated machine: a CPU, an event dispatcher (the kernel's),
// an mbuf pool, the protection-domain namespace, and an OS personality.
type Host struct {
	Name        string
	Sim         *sim.Sim
	CPU         *sim.CPU
	Disp        *event.Dispatcher
	Pool        *mbuf.Pool
	Personality Personality
	Costs       Costs

	// KernelDomain holds every kernel interface; few extensions link
	// against it (paper §2).
	KernelDomain *domain.Domain
	// ExtensionDomain is the restricted domain handed to untrusted
	// application extensions: packet buffers and the protocol-manager
	// interfaces only.
	ExtensionDomain *domain.Domain
}

// NewHost assembles a host on simulator s.
func NewHost(s *sim.Sim, name string, p Personality, costs Costs) *Host {
	h := &Host{
		Name:        name,
		Sim:         s,
		CPU:         sim.NewCPU(s, name),
		Pool:        mbuf.NewPool(),
		Personality: p,
		Costs:       costs,
		Disp: event.NewDispatcher(event.Costs{
			GuardEval: costs.GuardEval,
			Invoke:    costs.EventInvoke,
		}),
		KernelDomain:    domain.New(name + "/kernel"),
		ExtensionDomain: domain.New(name + "/extension"),
	}
	h.Disp.AttachPool(h.Pool)
	return h
}

// ChargeUserKernelCopy charges a boundary crossing of n bytes on monolithic
// hosts; SPIN extensions are co-located with the kernel and pay nothing.
func (h *Host) ChargeUserKernelCopy(t *sim.Task, n int) {
	if h.Personality == Monolithic {
		t.ChargeBytesProf(sim.ProfCopy, "user-copy", n, h.Costs.CopyPerByte)
	}
}
