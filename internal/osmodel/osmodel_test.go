package osmodel

import (
	"testing"

	"plexus/internal/sim"
)

func TestPersonalityString(t *testing.T) {
	if SPIN.String() != "SPIN/Plexus" || Monolithic.String() != "DIGITAL UNIX" {
		t.Error("personality names wrong")
	}
	if Personality(9).String() != "unknown" {
		t.Error("unknown personality name wrong")
	}
}

func TestDispatchModeString(t *testing.T) {
	if DispatchInterrupt.String() != "interrupt" || DispatchThread.String() != "thread" {
		t.Error("dispatch mode names wrong")
	}
}

func TestDefaultCostsPopulated(t *testing.T) {
	c := DefaultCosts()
	nonzero := []struct {
		name string
		v    sim.Time
	}{
		{"GuardEval", c.GuardEval}, {"EventInvoke", c.EventInvoke},
		{"Syscall", c.Syscall}, {"CopyPerByte", c.CopyPerByte},
		{"SocketLayer", c.SocketLayer}, {"Wakeup", c.Wakeup},
		{"CtxSwitch", c.CtxSwitch}, {"SoftIRQ", c.SoftIRQ},
		{"ThreadSpawn", c.ThreadSpawn}, {"EtherProc", c.EtherProc},
		{"IPProc", c.IPProc}, {"UDPProc", c.UDPProc}, {"TCPProc", c.TCPProc},
		{"ChecksumPerByte", c.ChecksumPerByte},
		{"DiskReadSetup", c.DiskReadSetup}, {"DiskReadPerByte", c.DiskReadPerByte},
		{"RAMPerByte", c.RAMPerByte}, {"FramebufferPerByte", c.FramebufferPerByte},
		{"DecompressPerByte", c.DecompressPerByte}, {"AppHandler", c.AppHandler},
	}
	for _, f := range nonzero {
		if f.v <= 0 {
			t.Errorf("cost %s is zero", f.name)
		}
	}
	// Structural invariants the calibration depends on.
	if c.GuardEval >= c.EventInvoke {
		t.Error("guard evaluation should cost less than a handler invocation")
	}
	if c.FramebufferPerByte < 9*c.RAMPerByte {
		t.Error("framebuffer writes should be ~10x RAM writes (paper §5.1)")
	}
	if c.CtxSwitch <= c.Syscall {
		t.Error("a context switch costs more than a trap")
	}
}

func TestHostAssembly(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", SPIN, DefaultCosts())
	if h.CPU == nil || h.Disp == nil || h.Pool == nil || h.KernelDomain == nil || h.ExtensionDomain == nil {
		t.Fatal("host pieces missing")
	}
	if h.Name != "h" || h.Sim != s || h.Personality != SPIN {
		t.Error("host fields wrong")
	}
}

func TestChargeUserKernelCopy(t *testing.T) {
	s := sim.New(1)
	costs := DefaultCosts()
	spinHost := NewHost(s, "spin", SPIN, costs)
	duxHost := NewHost(s, "dux", Monolithic, costs)
	var spinCharged, duxCharged sim.Time
	spinHost.CPU.Submit(sim.PrioKernel, "t", func(task *sim.Task) {
		spinHost.ChargeUserKernelCopy(task, 1000)
		spinCharged = task.Charged()
	})
	duxHost.CPU.Submit(sim.PrioKernel, "t", func(task *sim.Task) {
		duxHost.ChargeUserKernelCopy(task, 1000)
		duxCharged = task.Charged()
	})
	s.Run()
	if spinCharged != 0 {
		t.Errorf("SPIN charged %v for a boundary copy; extensions are in-kernel", spinCharged)
	}
	if duxCharged != 1000*costs.CopyPerByte {
		t.Errorf("DUX charged %v, want %v", duxCharged, 1000*costs.CopyPerByte)
	}
}
