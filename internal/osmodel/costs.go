// Package osmodel defines the two operating-system personalities the paper
// compares — SPIN/Plexus (application protocol code runs in the kernel) and a
// monolithic DIGITAL-UNIX-like system (application code runs at user level) —
// together with the CPU cost model that separates them.
//
// The paper's central claim is structural: both systems run the *same*
// protocol code and the *same* device drivers (§4), so every measured
// difference comes from operating-system structure — traps, data copies
// across the user/kernel boundary, scheduling and context switches, and where
// handlers run (interrupt level vs threads vs user processes). This package
// makes those structural terms explicit as simulated-time constants, with
// magnitudes chosen for a 1995 DEC Alpha 21064 @ 133MHz (DEC 3000/400). The
// reproduction does not claim cycle accuracy; EXPERIMENTS.md records how the
// resulting shapes compare with the paper's figures.
package osmodel

import "plexus/internal/sim"

// Personality selects the operating-system structure a host models.
type Personality int

const (
	// SPIN hosts run application protocol extensions inside the kernel:
	// no boundary crossings, handlers at interrupt level or on kernel
	// threads.
	SPIN Personality = iota
	// Monolithic hosts model DIGITAL UNIX: applications at user level,
	// each send a trap + copyin, each receive a wakeup + context switch +
	// copyout.
	Monolithic
)

func (p Personality) String() string {
	switch p {
	case SPIN:
		return "SPIN/Plexus"
	case Monolithic:
		return "DIGITAL UNIX"
	default:
		return "unknown"
	}
}

// DispatchMode selects how a SPIN host runs application receive handlers
// (the two Plexus bars of Figure 5).
type DispatchMode int

const (
	// DispatchInterrupt runs EPHEMERAL handlers directly in the network
	// interrupt (paper §3.3): lowest latency.
	DispatchInterrupt DispatchMode = iota
	// DispatchThread hands each event raise to a fresh kernel thread.
	DispatchThread
)

func (m DispatchMode) String() string {
	if m == DispatchInterrupt {
		return "interrupt"
	}
	return "thread"
}

// Costs is the CPU cost model. All values are simulated time on the host CPU.
type Costs struct {
	// --- dispatcher (paper §2: "roughly one procedure call") ---

	// GuardEval is charged per guard predicate evaluated.
	GuardEval sim.Time
	// EventInvoke is charged per handler invocation.
	EventInvoke sim.Time

	// --- kernel structure (the terms that separate the two systems) ---

	// Syscall is one trap into (and return from) the kernel.
	Syscall sim.Time
	// CopyPerByte is the cost of moving one byte across the user/kernel
	// boundary (copyin/copyout).
	CopyPerByte sim.Time
	// SocketLayer is the monolithic socket-layer overhead per send/recv
	// call: PCB lookup, socket buffer management, sleep/wakeup plumbing.
	SocketLayer sim.Time
	// Wakeup is marking a blocked process runnable plus scheduler work.
	Wakeup sim.Time
	// CtxSwitch is one context switch to a user process.
	CtxSwitch sim.Time
	// SoftIRQ is the monolithic hand-off from the interrupt to protocol
	// processing (netisr-style).
	SoftIRQ sim.Time
	// ThreadSpawn is creating and dispatching a kernel thread; the Plexus
	// "thread" mode pays this per event raise (paper Figure 5).
	ThreadSpawn sim.Time

	// --- protocol processing (identical on both systems) ---

	// EtherProc/IPProc/UDPProc/TCPProc are fixed per-packet costs of each
	// layer's header processing.
	EtherProc sim.Time
	IPProc    sim.Time
	UDPProc   sim.Time
	TCPProc   sim.Time
	// ChecksumPerByte is the software internet-checksum cost.
	ChecksumPerByte sim.Time

	// --- application-side devices used by the §5 workloads ---

	// DiskReadSetup is the per-read overhead of the file system path.
	DiskReadSetup sim.Time
	// DiskReadPerByte is the per-byte cost of reading file data.
	DiskReadPerByte sim.Time
	// RAMPerByte is a plain memory write, and FramebufferPerByte a write
	// to framebuffer memory — "a factor of 10 times slower" (paper §5.1).
	RAMPerByte         sim.Time
	FramebufferPerByte sim.Time
	// DecompressPerByte is the video client's per-byte decompression cost.
	DecompressPerByte sim.Time

	// AppHandler is the fixed cost of the application-specific handler
	// body in the latency benchmarks (touch the payload, form a reply).
	AppHandler sim.Time
}

// DefaultCosts returns the calibrated 1995-Alpha cost model. See DESIGN.md §4
// for the calibration targets.
func DefaultCosts() Costs {
	return Costs{
		GuardEval:   200 * sim.Nanosecond,
		EventInvoke: 1 * sim.Microsecond,

		Syscall:     6 * sim.Microsecond,
		CopyPerByte: 25 * sim.Nanosecond,
		SocketLayer: 55 * sim.Microsecond,
		Wakeup:      22 * sim.Microsecond,
		CtxSwitch:   40 * sim.Microsecond,
		SoftIRQ:     15 * sim.Microsecond,
		ThreadSpawn: 24 * sim.Microsecond,

		EtherProc:       8 * sim.Microsecond,
		IPProc:          13 * sim.Microsecond,
		UDPProc:         10 * sim.Microsecond,
		TCPProc:         30 * sim.Microsecond,
		ChecksumPerByte: 40 * sim.Nanosecond,

		DiskReadSetup:      60 * sim.Microsecond,
		DiskReadPerByte:    8 * sim.Nanosecond,
		RAMPerByte:         7 * sim.Nanosecond,
		FramebufferPerByte: 70 * sim.Nanosecond,
		DecompressPerByte:  25 * sim.Nanosecond,

		AppHandler: 10 * sim.Microsecond,
	}
}
