package plexus

import (
	"testing"

	"plexus/internal/event"
	"plexus/internal/fabric"
	"plexus/internal/filter"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// cellSpec builds the datacenter-cell topology the fabric experiments use:
// clients on one switched segment, servers on another behind gwLinks parallel
// gateway interfaces.
func cellSpec(t *testing.T, clients, servers, gwLinks int) *Topology {
	t.Helper()
	gw := spinSpec("gw")
	cs := make([]HostSpec, clients)
	for i := range cs {
		cs[i] = spinSpec("client" + string(rune('0'+i)))
	}
	ss := make([]HostSpec, servers)
	for i := range ss {
		ss[i] = spinSpec("server" + string(rune('0'+i)))
	}
	top, err := NewTopology(1, &gw, []SegmentSpec{
		{Name: "lan0", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 1, 0}, Switched: true, Hosts: cs},
		{Name: "lan1", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 2, 0}, Switched: true, Hosts: ss,
			GatewayLinks: gwLinks},
	})
	if err != nil {
		t.Fatal(err)
	}
	top.PrimeARP()
	return top
}

// vipPipeline assembles the full service chain the capstone experiment runs:
// ACL (default deny) → VIP load balancer → ECMP across the parallel links.
func vipPipeline(t *testing.T, vip view.IP4, port uint16, servers []view.IP4) (*fabric.Pipeline, *fabric.LoadBalancer, *fabric.ECMP) {
	t.Helper()
	acl, err := fabric.NewACL("acl", filter.BaseIP, []fabric.ACLEntry{
		{Name: "permit-vip", Match: "ip.dst == 10.0.9.9 && udp.dport == 7", Permit: true},
		{Name: "permit-replies", Match: "ip.src in 10.0.2.0/24 && udp.sport == 7", Permit: true},
		{Name: "permit-icmp", Match: "ip.proto == 1", Permit: true},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	lb, lbTable, err := fabric.NewLB("lb", filter.BaseIP, fabric.LBConfig{
		VIP: vip, Port: port, Servers: servers, PoolCIDR: "10.0.2.0/24",
	})
	if err != nil {
		t.Fatal(err)
	}
	ecmp, ecmpRule, err := fabric.NewECMP("ecmp", "", filter.BaseIP, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := fabric.NewPipeline("cell", filter.BaseIP, event.QuarantinePolicy{Threshold: 3}).
		Add(acl).Add(lbTable).Add(fabric.NewTable("ecmp").Add(ecmpRule))
	return pl, lb, ecmp
}

// The capstone path end to end: clients address a virtual IP that exists on
// no wire; the gateway's ACL admits it, the load balancer rewrites it to a
// consistently-hashed pool member, ECMP spreads flows across the parallel
// gateway links, and server replies are rewritten back so clients only ever
// see the VIP.
func TestGatewayFabricVIPEcho(t *testing.T) {
	const nClients, nServers = 4, 3
	top := cellSpec(t, nClients, nServers, 2)
	vip := view.IP4{10, 0, 9, 9}
	servers := top.Segments[1].Hosts
	pool := make([]view.IP4, len(servers))
	for i, s := range servers {
		pool[i] = s.Addr()
	}
	pl, lb, ecmp := vipPipeline(t, vip, 7, pool)
	top.Gateway.InstallPipeline(pl)

	for _, s := range servers {
		var echo *UDPApp
		echo, err := s.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = echo.Send(tk, src, srcPort, data)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	replies := 0
	const perClient = 8
	for _, c := range top.Segments[0].Hosts {
		capp, err := c.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			if src != vip || srcPort != 7 {
				t.Errorf("reply from %v:%d, want VIP %v:7 (rewrite leaked)", src, srcPort, vip)
			}
			replies++
		})
		if err != nil {
			t.Fatal(err)
		}
		host := c
		for i := 0; i < perClient; i++ {
			host.SpawnAt(sim.Time(i)*sim.Millisecond, "req", func(tk *sim.Task) {
				_ = capp.Send(tk, vip, 7, []byte("ping through the fabric"))
			})
		}
	}
	top.Sim.Run()

	want := nClients * perClient
	if replies != want {
		t.Fatalf("clients got %d replies, want %d", replies, want)
	}
	// Every request was steered to some pool member and counted there.
	var steered uint64
	for _, h := range lb.Hits() {
		steered += h
	}
	if steered != uint64(want) {
		t.Errorf("lb steered %d requests, want %d", steered, want)
	}
	// ECMP saw request and reply datagrams; flows landed on both links.
	var ecmpTotal uint64
	for _, h := range ecmp.Hits() {
		ecmpTotal += h
	}
	if ecmpTotal != uint64(2*want) {
		t.Errorf("ecmp handled %d datagrams, want %d", ecmpTotal, 2*want)
	}
	gs := top.Gateway.Stats()
	if gs.Forwarded != uint64(2*want) {
		t.Errorf("gateway forwarded %d, want %d", gs.Forwarded, 2*want)
	}
	if gs.PipeDrops != 0 || gs.NoRoute != 0 {
		t.Errorf("gateway drops: %+v", gs)
	}
	// All traffic was VIP traffic: the ACL's default-deny rule never fired.
	for _, rs := range pl.Snapshot() {
		if rs.Name == "default-deny" && rs.Hits != 0 {
			t.Errorf("default-deny hit %d times on clean traffic", rs.Hits)
		}
	}
}

// The ACL's default-deny drops traffic no permit rule covers, counted on the
// gateway and on the rule.
func TestGatewayFabricACLDefaultDeny(t *testing.T) {
	top := cellSpec(t, 1, 1, 1)
	server := top.Segments[1].Hosts[0]
	pl, _, _ := vipPipeline(t, view.IP4{10, 0, 9, 9}, 7, []view.IP4{server.Addr()})
	top.Gateway.InstallPipeline(pl)

	client := top.Segments[0].Hosts[0]
	capp, err := client.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Direct-to-server traffic on a port no rule permits.
	client.Spawn("blocked", func(tk *sim.Task) {
		_ = capp.Send(tk, server.Addr(), 99, []byte("not allowed"))
	})
	top.Sim.Run()
	if gs := top.Gateway.Stats(); gs.PipeDrops != 1 || gs.Forwarded != 0 {
		t.Errorf("gateway stats %+v, want PipeDrops=1 Forwarded=0", gs)
	}
	for _, rs := range pl.Snapshot() {
		if rs.Name == "default-deny" && rs.Hits != 1 {
			t.Errorf("default-deny hits = %d, want 1", rs.Hits)
		}
	}
}

// Source NAT on the gateway: outbound flows are rewritten to the NAT address
// with a deterministic mapped port; replies addressed to the NAT address are
// translated back and delivered to the inside host.
func TestGatewayFabricNATRoundTrip(t *testing.T) {
	top := cellSpec(t, 2, 1, 1)
	server := top.Segments[1].Hosts[0]
	natAddr := view.IP4{10, 0, 2, 200}

	nat, natTable, err := fabric.NewNAT("nat", filter.BaseIP, fabric.NATConfig{
		Addr: natAddr, InsideCIDR: "10.0.1.0/24",
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := fabric.NewPipeline("nat", filter.BaseIP, event.QuarantinePolicy{}).Add(natTable)
	top.Gateway.InstallPipeline(pl)
	// The NAT address lives on no interface: the server resolves it to the
	// gateway's segment-1 MAC so replies land on the forwarding path.
	server.ARP.AddStatic(natAddr, top.Segments[1].GW.NIC.MAC())

	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		if src != natAddr {
			t.Errorf("server saw source %v, want NAT address %v", src, natAddr)
		}
		if srcPort < fabric.DefaultNATPortBase {
			t.Errorf("server saw source port %d, want >= %d", srcPort, fabric.DefaultNATPortBase)
		}
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	replies := 0
	for _, c := range top.Segments[0].Hosts {
		capp, err := c.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			replies++
		})
		if err != nil {
			t.Fatal(err)
		}
		host := c
		host.Spawn("req", func(tk *sim.Task) {
			_ = capp.Send(tk, server.Addr(), 7, []byte("via nat"))
		})
	}
	top.Sim.Run()

	if replies != 2 {
		t.Fatalf("clients got %d replies, want 2", replies)
	}
	if nat.Occupancy() != 2 {
		t.Errorf("NAT table holds %d entries, want 2 (one per client flow)", nat.Occupancy())
	}
	if nat.Exhausted() != 0 || nat.Unmatched() != 0 {
		t.Errorf("NAT drops: exhausted=%d unmatched=%d", nat.Exhausted(), nat.Unmatched())
	}
}

// A fabric rule that panics on every packet is quarantined by the policy and
// the cell keeps serving: no datagram is lost to the rogue rule.
func TestGatewayFabricPanickingRuleQuarantined(t *testing.T) {
	top := cellSpec(t, 1, 1, 1)
	server := top.Segments[1].Hosts[0]

	rogue, err := fabric.NewRule("rogue", "", filter.BaseIP,
		fabric.ActionFunc{Label: "rogue", Fn: func(tk *sim.Task, p *fabric.Packet) fabric.Verdict {
			panic("rogue fabric program")
		}})
	if err != nil {
		t.Fatal(err)
	}
	pl := fabric.NewPipeline("rogue", filter.BaseIP, event.QuarantinePolicy{Threshold: 2}).
		Add(fabric.NewTable("rogue").Add(rogue))
	top.Gateway.InstallPipeline(pl)

	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	client := top.Segments[0].Hosts[0]
	replies := 0
	capp, err := client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		replies++
	})
	if err != nil {
		t.Fatal(err)
	}
	const sends = 6
	for i := 0; i < sends; i++ {
		client.SpawnAt(sim.Time(i)*sim.Millisecond, "req", func(tk *sim.Task) {
			_ = capp.Send(tk, server.Addr(), 7, []byte("survives the rogue"))
		})
	}
	top.Sim.Run()

	if replies != sends {
		t.Fatalf("client got %d replies, want %d (rogue rule dropped traffic)", replies, sends)
	}
	if !pl.Quarantined() {
		t.Error("rogue pipeline not quarantined")
	}
	if got := pl.Stats().Faults; got != 2 {
		t.Errorf("faults = %d, want 2 (threshold)", got)
	}
	if gs := top.Gateway.Stats(); gs.PipeDrops != 0 {
		t.Errorf("PipeDrops = %d, want 0", gs.PipeDrops)
	}
}

// A datagram whose TTL runs out at the gateway is answered with ICMP Time
// Exceeded and counted; the sender's NIC sees the error come back.
func TestGatewayTTLExpiryEmitsTimeExceeded(t *testing.T) {
	top := cellSpec(t, 1, 1, 1)
	client := top.Segments[0].Hosts[0]
	server := top.Segments[1].Hosts[0]
	ingress := top.Segments[0].GW

	// Hand the forwarding hook a datagram already at TTL 1 (locally
	// originated traffic starts at 64; expiry is a transit phenomenon).
	b := make([]byte, view.IPv4MinHdrLen+view.UDPHdrLen+8)
	b[0] = 0x45
	ipv, _ := view.IPv4(b)
	ipv.SetTotalLen(len(b))
	ipv.SetTTL(1)
	ipv.SetProto(view.IPProtoUDP)
	ipv.SetSrc(client.Addr())
	ipv.SetDst(server.Addr())
	ipv.ComputeChecksum()
	uv, _ := view.UDP(b[view.IPv4MinHdrLen:])
	uv.SetSrcPort(5000)
	uv.SetDstPort(7)
	uv.SetLength(view.UDPHdrLen + 8)

	baseRx := client.NIC.Stats().RxFrames
	fwd := top.Gateway.forwardFrom(ingress)
	ingress.Spawn("expire", func(tk *sim.Task) {
		m := ingress.Host.Pool.FromBytes(b, 64)
		if !fwd(tk, m) {
			t.Error("forward hook did not consume the expiring datagram")
		}
	})
	top.Sim.Run()

	gs := top.Gateway.Stats()
	if gs.TTLExpired != 1 || gs.TimeExceededSent != 1 {
		t.Fatalf("gateway stats %+v, want TTLExpired=1 TimeExceededSent=1", gs)
	}
	if gs.Forwarded != 0 {
		t.Errorf("expired datagram was forwarded")
	}
	if ist := ingress.ICMP.Stats(); ist.TimeExceededSent != 1 {
		t.Errorf("ingress ICMP TimeExceededSent = %d, want 1", ist.TimeExceededSent)
	}
	if got := client.NIC.Stats().RxFrames - baseRx; got != 1 {
		t.Errorf("client NIC saw %d frames, want 1 (the Time Exceeded)", got)
	}
}

// The forwarding path with a full service pipeline installed stays
// allocation-free once warm: matching, rewriting, NAT lookups, and ECMP
// hashing all run on reused buffers.
func TestGatewayFabricSteadyStateAllocs(t *testing.T) {
	top := cellSpec(t, 1, 2, 2)
	vip := view.IP4{10, 0, 9, 9}
	servers := top.Segments[1].Hosts
	pool := make([]view.IP4, len(servers))
	for i, s := range servers {
		pool[i] = s.Addr()
	}
	pl, _, _ := vipPipeline(t, vip, 7, pool)
	top.Gateway.InstallPipeline(pl)

	for _, s := range servers {
		var echo *UDPApp
		echo, err := s.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = echo.Send(tk, src, srcPort, data)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	client := top.Segments[0].Hosts[0]
	msg := make([]byte, 8)
	rounds := 0
	var capp *UDPApp
	capp, err := client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		rounds++
		_ = capp.Send(tk, vip, 7, msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, vip, 7, msg) })

	runRounds := func(k int) {
		target := rounds + k
		for rounds < target {
			if !top.Sim.Step() {
				t.Fatal("simulation drained before completing echo rounds")
			}
		}
	}
	runRounds(64)
	avg := testing.AllocsPerRun(100, func() { runRounds(1) })
	if avg != 0 {
		t.Fatalf("steady-state fabric echo round allocates %.2f/iter, want 0", avg)
	}
}
