package plexus

import (
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

// TCPAppOptions configure application-level connections.
type TCPAppOptions struct {
	// OnRecv delivers stream bytes in order (slice owned by callee).
	OnRecv func(t *sim.Task, conn *TCPApp, data []byte)
	// OnEstablished fires when the handshake completes.
	OnEstablished func(t *sim.Task, conn *TCPApp)
	// OnPeerFin fires at the end of the peer's stream.
	OnPeerFin func(t *sim.Task, conn *TCPApp)
	// OnClose fires at full termination.
	OnClose func(conn *TCPApp, err error)
	// AppRecvCost is charged per delivered chunk.
	AppRecvCost sim.Time
	// CC overrides the host's congestion-control algorithm for this
	// connection ("" = the host default).
	CC string
	// NoSack withholds SACK from this connection's handshake, forcing
	// cumulative-ACK-only loss recovery.
	NoSack bool
}

// TCPApp is an application-level TCP connection with personality costs.
type TCPApp struct {
	st   *Stack
	conn *tcp.Conn
	opts TCPAppOptions
}

func (st *Stack) connOptions(app *TCPApp, opts TCPAppOptions) tcp.ConnOptions {
	return tcp.ConnOptions{
		Ephemeral: true,
		CC:        opts.CC,
		NoSack:    opts.NoSack,
		OnRecv: func(t *sim.Task, c *tcp.Conn, data []byte) {
			app.deliver(t, data)
		},
		OnEstablished: func(t *sim.Task, c *tcp.Conn) {
			app.conn = c
			if opts.OnEstablished != nil {
				app.inAppContext(t, 0, func(task *sim.Task) { opts.OnEstablished(task, app) })
			}
		},
		OnPeerFin: func(t *sim.Task, c *tcp.Conn) {
			if opts.OnPeerFin != nil {
				app.inAppContext(t, 0, func(task *sim.Task) { opts.OnPeerFin(task, app) })
			}
		},
		OnClose: func(c *tcp.Conn, err error) {
			if opts.OnClose != nil {
				opts.OnClose(app, err)
			}
		},
	}
}

// ConnectTCP performs an active open to dst:dstPort.
func (st *Stack) ConnectTCP(t *sim.Task, dst view.IP4, dstPort uint16, opts TCPAppOptions) (*TCPApp, error) {
	app := &TCPApp{st: st, opts: opts}
	if st.Host.Personality == osmodel.Monolithic {
		t.Charge(st.Host.Costs.Syscall + st.Host.Costs.SocketLayer)
	}
	c, err := st.TCP.Connect(t, dst, dstPort, st.connOptions(app, opts))
	if err != nil {
		return nil, err
	}
	app.conn = c
	return app, nil
}

// ListenTCP accepts connections on port; accept receives the ready TCPApp
// after each handshake completes. Every accepted connection gets its own
// TCPApp wrapper sharing opts.
func (st *Stack) ListenTCP(port uint16, opts TCPAppOptions, accept func(t *sim.Task, conn *TCPApp)) (*tcp.Listener, error) {
	lst, err := st.TCP.Listen(port, tcp.ConnOptions{Ephemeral: true}, nil)
	if err != nil {
		return nil, err
	}
	apps := make(map[*tcp.Conn]*TCPApp)
	// The hooks read app.opts at call time, so a connection's callbacks can
	// be replaced after accept (the user-level splice forwarder does this).
	lst.SetConnOptions(tcp.ConnOptions{
		Ephemeral: true,
		OnRecv: func(t *sim.Task, c *tcp.Conn, data []byte) {
			if app := apps[c]; app != nil {
				app.deliver(t, data)
			}
		},
		OnEstablished: func(t *sim.Task, c *tcp.Conn) {
			app := &TCPApp{st: st, conn: c, opts: opts}
			apps[c] = app
			if accept != nil {
				app.inAppContext(t, 0, func(task *sim.Task) { accept(task, app) })
			}
			if app.opts.OnEstablished != nil {
				app.inAppContext(t, 0, func(task *sim.Task) { app.opts.OnEstablished(task, app) })
			}
		},
		OnPeerFin: func(t *sim.Task, c *tcp.Conn) {
			if app := apps[c]; app != nil && app.opts.OnPeerFin != nil {
				app.inAppContext(t, 0, func(task *sim.Task) { app.opts.OnPeerFin(task, app) })
			}
		},
		OnClose: func(c *tcp.Conn, err error) {
			if app := apps[c]; app != nil {
				delete(apps, c)
				if app.opts.OnClose != nil {
					app.opts.OnClose(app, err)
				}
			}
		},
	})
	return lst, nil
}

// Options returns the connection's application-level options.
func (app *TCPApp) Options() TCPAppOptions { return app.opts }

// SetOptions replaces the connection's application-level callbacks; takes
// effect for subsequent deliveries.
func (app *TCPApp) SetOptions(o TCPAppOptions) { app.opts = o }

// deliver applies receive-side personality structure, then the app callback.
func (app *TCPApp) deliver(t *sim.Task, data []byte) {
	st := app.st
	run := func(task *sim.Task) {
		if app.opts.AppRecvCost > 0 {
			task.Charge(app.opts.AppRecvCost)
		}
		if app.opts.OnRecv != nil {
			app.opts.OnRecv(task, app, data)
		}
	}
	if st.Host.Personality == osmodel.SPIN {
		run(t)
		return
	}
	costs := st.Host.Costs
	t.Charge(costs.SocketLayer + costs.Wakeup)
	st.Host.CPU.SubmitAt(t.Now(), sim.PrioUser, "tcp-app-recv:"+st.Name(), func(ut *sim.Task) {
		ut.Charge(costs.CtxSwitch + costs.Syscall)
		ut.ChargeBytes(len(data), costs.CopyPerByte)
		run(ut)
	})
}

// inAppContext runs a control callback with personality structure: inline on
// SPIN, as a woken user process on Monolithic.
func (app *TCPApp) inAppContext(t *sim.Task, nbytes int, fn func(task *sim.Task)) {
	st := app.st
	if st.Host.Personality == osmodel.SPIN {
		fn(t)
		return
	}
	costs := st.Host.Costs
	t.Charge(costs.Wakeup)
	st.Host.CPU.SubmitAt(t.Now(), sim.PrioUser, "tcp-app-ctl:"+st.Name(), func(ut *sim.Task) {
		ut.Charge(costs.CtxSwitch)
		ut.ChargeBytes(nbytes, costs.CopyPerByte)
		fn(ut)
	})
}

// Send writes data to the stream, applying send-side personality costs.
func (app *TCPApp) Send(t *sim.Task, data []byte) error {
	st := app.st
	if st.Host.Personality == osmodel.Monolithic {
		costs := st.Host.Costs
		t.Charge(costs.Syscall + costs.SocketLayer)
		t.ChargeBytes(len(data), costs.CopyPerByte)
	}
	return app.conn.Send(t, data)
}

// Close ends the send side (FIN after buffered data).
func (app *TCPApp) Close(t *sim.Task) {
	if app.st.Host.Personality == osmodel.Monolithic {
		t.Charge(app.st.Host.Costs.Syscall)
	}
	app.conn.Close(t)
}

// Conn exposes the underlying transport connection.
func (app *TCPApp) Conn() *tcp.Conn { return app.conn }

// State returns the transport state.
func (app *TCPApp) State() tcp.State { return app.conn.State() }
