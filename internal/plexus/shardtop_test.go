package plexus

import (
	"reflect"
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/stats"
	"plexus/internal/view"
)

func shardedPair(t *testing.T, seed int64) (*ShardedTopology, *Stack, *Stack) {
	t.Helper()
	spec := func(name string) HostSpec {
		return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	}
	gw := spec("gw")
	top, err := NewShardedTopology(seed, &gw, []SegmentSpec{
		{Name: "lan0", Model: netdev.EthernetModel(), Switched: true,
			Subnet: view.IP4{10, 0, 1, 0}, Hosts: []HostSpec{spec("server"), spec("client")}},
		{Name: "lan1", Model: netdev.EthernetModel(), Switched: true,
			Subnet: view.IP4{10, 0, 2, 0}, Hosts: []HostSpec{spec("remote")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top.PrimeARPSparse()
	return top, top.Host("remote"), top.Host("server")
}

// TestShardedTopologyCrossSegmentEcho drives a closed-loop UDP echo between
// hosts in different shards: every packet crosses two boundaries and the
// gateway's forwarding path.
func TestShardedTopologyCrossSegmentEcho(t *testing.T) {
	top, client, server := shardedPair(t, 1)
	var echo *UDPApp
	echo, err := server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 32)
	ops := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		ops++
		_ = capp.Send(tk, server.Addr(), 7, msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, server.Addr(), 7, msg) })

	top.Run(50*sim.Millisecond, 3)
	if ops < 10 {
		t.Fatalf("completed %d cross-shard echo rounds, want >= 10", ops)
	}
	if fwd := top.Gateway.Stats().Forwarded; fwd < uint64(2*ops) {
		t.Fatalf("gateway forwarded %d datagrams for %d round trips", fwd, ops)
	}
	for _, b := range top.Boundaries {
		ab, ba := b.Transferred()
		if ab == 0 || ba == 0 {
			t.Fatalf("boundary carried no traffic in one direction (ab=%d ba=%d)", ab, ba)
		}
	}
}

// TestShardedTopologyDeterministicAcrossWorkers is the cross-shard
// determinism property at the full-stack level: RTT schedules, per-shard
// event counts, and flight-recorder span counts are all byte-identical at
// any worker count and GOMAXPROCS (exercised further by the bench property
// test over -exp scale rows).
func TestShardedTopologyDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		rtts  []sim.Time
		execs []uint64
		spans uint64
		fwd   uint64
	}
	run := func(workers int) outcome {
		top, client, server := shardedPair(t, 1)
		for _, s := range top.Sims {
			s.SetMetrics(stats.NewRecorder(stats.Config{HopCap: 1 << 10, SampleCap: 1 << 10}))
		}
		var echo *UDPApp
		echo, err := server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = echo.Send(tk, src, srcPort, data)
		})
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 32)
		var o outcome
		var sent sim.Time
		var capp *UDPApp
		capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			o.rtts = append(o.rtts, tk.Now()-sent)
			sent = tk.Now()
			_ = capp.Send(tk, server.Addr(), 7, msg)
		})
		if err != nil {
			t.Fatal(err)
		}
		client.Spawn("kick", func(tk *sim.Task) {
			sent = tk.Now()
			_ = capp.Send(tk, server.Addr(), 7, msg)
		})
		top.Run(40*sim.Millisecond, workers)
		for _, s := range top.Sims {
			o.execs = append(o.execs, s.Executed())
		}
		o.spans = top.SpanCount()
		o.fwd = top.Gateway.Stats().Forwarded
		return o
	}
	base := run(1)
	if len(base.rtts) == 0 || base.spans == 0 {
		t.Fatalf("degenerate baseline: %d rtts, %d spans", len(base.rtts), base.spans)
	}
	for _, workers := range []int{2, 3, 8} {
		if got := run(workers); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged:\ngot  %+v\nwant %+v", workers, got, base)
		}
	}
}

// TestShardedTopologyRejectsUnshardable: shared-bus segments and single
// segments have no boundary to shard at.
func TestShardedTopologyRejectsUnshardable(t *testing.T) {
	gw := HostSpec{Name: "gw", Personality: osmodel.SPIN}
	if _, err := NewShardedTopology(1, &gw, []SegmentSpec{
		{Name: "lan0", Model: netdev.EthernetModel(), Switched: true, Subnet: view.IP4{10, 0, 1, 0}},
	}); err == nil {
		t.Fatal("single-segment sharded topology did not error")
	}
	if _, err := NewShardedTopology(1, &gw, []SegmentSpec{
		{Name: "lan0", Model: netdev.EthernetModel(), Switched: true, Subnet: view.IP4{10, 0, 1, 0}},
		{Name: "lan1", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 2, 0}},
	}); err == nil {
		t.Fatal("shared-bus segment in sharded topology did not error")
	}
}
