package plexus

import (
	"errors"
	"fmt"
	"testing"

	"plexus/internal/domain"
	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// oneHost builds a single SPIN/interrupt host on its own network.
func oneHost(t *testing.T) (*Network, *Stack) {
	t.Helper()
	n, err := NewNetwork(1, netdev.EthernetModel(), []HostSpec{spinSpec("host")})
	if err != nil {
		t.Fatal(err)
	}
	return n, n.Hosts[0]
}

// tapSpec installs a benign EPHEMERAL tap on Ethernet.PacketRecv through
// the extension domain.
func tapSpec(name string, hits *int) ExtensionSpec {
	return ExtensionSpec{
		Name:    name,
		Imports: []domain.Symbol{"Ethernet.Layer"},
		Install: func(ctx *ExtensionCtx) error {
			v, _ := ctx.Resolve("Ethernet.Layer")
			eth := v.(*ether.Layer)
			b, err := eth.InstallRecv(nil, event.Ephemeral(name, func(task *sim.Task, m *mbuf.Mbuf) {
				if hits != nil {
					*hits++
				}
			}), 0)
			if err != nil {
				return err
			}
			ctx.Adopt(b)
			return nil
		},
	}
}

func TestInstallExtensionResolvesAndInstalls(t *testing.T) {
	_, st := oneHost(t)
	before := st.Host.Disp.HandlerCount(ether.RecvEvent)
	var hits int
	ext, err := st.InstallExtension(tapSpec("tap", &hits))
	if err != nil {
		t.Fatal(err)
	}
	if n := st.Host.Disp.HandlerCount(ether.RecvEvent); n != before+1 {
		t.Fatalf("HandlerCount = %d, want %d", n, before+1)
	}
	if ext.Name() != "tap" || len(ext.Bindings()) != 1 {
		t.Fatalf("extension handle wrong: %q, %d bindings", ext.Name(), len(ext.Bindings()))
	}
}

func TestInstallExtensionRejectsUnresolvedImport(t *testing.T) {
	_, st := oneHost(t)
	before := st.Host.Disp.HandlerCount(ether.RecvEvent)
	_, err := st.InstallExtension(ExtensionSpec{
		Name:    "needs-nic",
		Imports: []domain.Symbol{"Ethernet.Layer", "Device.NIC"}, // NIC is kernel-only
		Install: func(ctx *ExtensionCtx) error {
			t.Fatal("Install must not run when the link is rejected")
			return nil
		},
	})
	var unresolved *domain.UnresolvedError
	if !errors.As(err, &unresolved) {
		t.Fatalf("err = %v, want UnresolvedError", err)
	}
	if n := st.Host.Disp.HandlerCount(ether.RecvEvent); n != before {
		t.Fatal("rejected extension changed the graph")
	}
}

// Atomicity: an install that fails partway must roll back every binding,
// timer, and closer it had already created.
func TestInstallExtensionRollbackOnPartialFailure(t *testing.T) {
	_, st := oneHost(t)
	before := st.Host.Disp.HandlerCount(ether.RecvEvent)
	var timerFired, closerRan bool
	boom := errors.New("resource 3 unavailable")
	_, err := st.InstallExtension(ExtensionSpec{
		Name:    "half-built",
		Imports: []domain.Symbol{"Ethernet.Layer"},
		Install: func(ctx *ExtensionCtx) error {
			v, _ := ctx.Resolve("Ethernet.Layer")
			eth := v.(*ether.Layer)
			for i := 0; i < 2; i++ {
				b, err := eth.InstallRecv(nil, event.Ephemeral(fmt.Sprintf("hb-%d", i),
					func(task *sim.Task, m *mbuf.Mbuf) {}), 0)
				if err != nil {
					return err
				}
				ctx.Adopt(b)
			}
			ctx.After(1*sim.Second, "hb-timer", func() { timerFired = true })
			ctx.OnUnload(func() { closerRan = true })
			return boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the install failure", err)
	}
	if n := st.Host.Disp.HandlerCount(ether.RecvEvent); n != before {
		t.Fatalf("rollback left %d bindings, want %d", n, before)
	}
	if !closerRan {
		t.Fatal("rollback did not run the registered closer")
	}
	st.Host.Sim.RunUntil(10 * sim.Second)
	if timerFired {
		t.Fatal("rollback did not stop the registered timer")
	}
}

func TestExtensionUnloadTearsEverythingDown(t *testing.T) {
	n, st := oneHost(t)
	base := st.Host.Pool.Stats().InUse
	var ticks, closerRan int
	ext, err := st.InstallExtension(ExtensionSpec{
		Name:    "full",
		Imports: []domain.Symbol{"Ethernet.Layer"},
		Exports: map[domain.Symbol]any{"Full.API": "v1"},
		Install: func(ctx *ExtensionCtx) error {
			v, _ := ctx.Resolve("Ethernet.Layer")
			eth := v.(*ether.Layer)
			b, err := eth.InstallRecv(nil, event.Ephemeral("full-tap",
				func(task *sim.Task, m *mbuf.Mbuf) {}), 0)
			if err != nil {
				return err
			}
			ctx.Adopt(b)
			ctx.Every(1*sim.Second, "full-tick", func() { ticks++ })
			ctx.After(100*sim.Second, "full-once", func() { t.Error("one-shot fired after unload") })
			ctx.OnUnload(func() { closerRan++ })
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Host.ExtensionDomain.Resolve("Full.API"); !ok {
		t.Fatal("export not published")
	}
	n.Sim.RunUntil(3500 * sim.Millisecond)
	if ticks != 3 {
		t.Fatalf("ticker fired %d times before unload, want 3", ticks)
	}
	rep, err := ext.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bindings != 1 || rep.TimersStopped != 2 || rep.ClosersRun != 1 {
		t.Fatalf("report = %+v, want 1 binding, 2 timers, 1 closer", rep)
	}
	if rep.LeakedMbufs != 0 {
		t.Fatalf("LeakedMbufs = %d, want 0", rep.LeakedMbufs)
	}
	if _, ok := st.Host.ExtensionDomain.Resolve("Full.API"); ok {
		t.Fatal("export still published after unload")
	}
	n.Sim.RunUntil(200 * sim.Second)
	if ticks != 3 {
		t.Fatalf("ticker fired after unload: %d", ticks)
	}
	if got := st.Host.Pool.Stats().InUse; got != base {
		t.Fatalf("pool InUse %d after unload, want baseline %d", got, base)
	}
	if _, err := ext.Unload(); !errors.Is(err, ErrExtensionUnloaded) {
		t.Fatalf("second unload err = %v, want ErrExtensionUnloaded", err)
	}
}

// An extension that hoards cloned frames shows up in the unload report's
// pool accounting — and a well-behaved sibling on the same traffic reports
// zero.
func TestExtensionUnloadDetectsLeakedMbufs(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(),
		spinSpec("client"), spinSpec("server"))
	if err != nil {
		t.Fatal(err)
	}
	// The hoarder grabs a pool buffer per packet it observes and never
	// frees it — pooled resources leak until unload accounts for them.
	var hoard []*mbuf.Mbuf
	hoarder, err := server.InstallExtension(ExtensionSpec{
		Name:    "hoarder",
		Imports: []domain.Symbol{"Ethernet.Layer", "Mbuf.Pool"},
		Install: func(ctx *ExtensionCtx) error {
			v, _ := ctx.Resolve("Ethernet.Layer")
			eth := v.(*ether.Layer)
			pv, _ := ctx.Resolve("Mbuf.Pool")
			pool := pv.(*mbuf.Pool)
			scratch := []byte("hoarded")
			b, err := eth.InstallRecv(nil, event.Ephemeral("hoard",
				func(task *sim.Task, m *mbuf.Mbuf) {
					hoard = append(hoard, pool.FromBytes(scratch, 0))
				}), 0)
			if err != nil {
				return err
			}
			ctx.Adopt(b)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tapHits int
	benign, err := server.InstallExtension(tapSpec("benign", &tapHits))
	if err != nil {
		t.Fatal(err)
	}
	// UDP traffic at the server; the hoarder clones every frame it sees.
	if _, err := server.OpenUDP(UDPAppOptions{Port: 7},
		func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {}); err != nil {
		t.Fatal(err)
	}
	capp, err := client.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		client.SpawnAt(sim.Time(i+1)*sim.Millisecond, "send", func(task *sim.Task) {
			_ = capp.Send(task, server.Addr(), 7, []byte("payload"))
		})
	}
	n.Sim.Run() // quiesce: no unrelated frames in flight
	if tapHits == 0 {
		t.Fatal("no traffic reached the extensions")
	}
	repH, err := hoarder.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if repH.LeakedMbufs != int64(len(hoard)) {
		t.Fatalf("hoarder LeakedMbufs = %d, want %d (one per observed frame)", repH.LeakedMbufs, len(hoard))
	}
	// Freeing the hoard restores the pool to balance: the report's delta
	// was exactly the hoarded buffers, and the well-behaved sibling then
	// accounts clean.
	for _, c := range hoard {
		c.Free()
	}
	repB, err := benign.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if repB.LeakedMbufs != 0 {
		t.Fatalf("benign extension LeakedMbufs = %d, want 0", repB.LeakedMbufs)
	}
	if got := server.Host.Pool.Stats().InUse; got != 0 {
		t.Fatalf("pool InUse = %d after freeing the hoard, want 0", got)
	}
}
