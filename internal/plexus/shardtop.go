// Sharded topologies: the same machine room NewTopology builds, partitioned
// at the inter-segment link boundaries into one sim.Sim per segment plus one
// for the gateway, coordinated by a sim.Engine. Every segment's switch,
// hosts, mbuf pools, and event free lists are private to its shard; the only
// cross-shard traffic is the uplink between each segment's switch and the
// gateway's interface on that subnet, carried by a netdev.Boundary whose
// lookahead (minimum-frame serialization + propagation) sets the engine's
// barrier window.
//
// The partition is fixed by the topology — one shard per segment, plus the
// gateway — so the shard *worker* count is purely an execution knob: rows,
// event counts, and span counts are byte-identical at -shards 1 or N.
package plexus

import (
	"fmt"

	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// ShardedTopology is a Topology partitioned across per-segment simulators.
type ShardedTopology struct {
	Engine *sim.Engine
	// GatewaySim owns the gateway's interface stacks and CPU (shard 0).
	GatewaySim *sim.Sim
	// Sims are all shard simulators: the gateway first, then one per
	// segment in spec order.
	Sims     []*sim.Sim
	Segments []*Segment
	Gateway  *Gateway
	// Boundaries are the uplink cables, one per segment in spec order.
	Boundaries []*netdev.Boundary
}

// NewShardedTopology builds segs as independent shards joined through gw.
// Every segment must be switched (a shared bus has no store-and-forward
// element to terminate the uplink), and at least two segments are required —
// a single segment has no boundary to shard at; use NewTopology.
func NewShardedTopology(seed int64, gw *HostSpec, segs []SegmentSpec) (*ShardedTopology, error) {
	if len(segs) < 2 {
		return nil, fmt.Errorf("plexus: sharded topology needs at least two segments")
	}
	if gw == nil {
		return nil, fmt.Errorf("plexus: sharded topology needs a gateway spec")
	}
	gwSim := sim.New(seed)
	top := &ShardedTopology{
		Engine:     sim.NewEngine(),
		GatewaySim: gwSim,
		Sims:       []*sim.Sim{gwSim},
		Gateway:    &Gateway{CPU: sim.NewCPU(gwSim, gw.Name)},
	}
	gwShard := top.Engine.AddShard(gw.Name, gwSim)
	for si, spec := range segs {
		if !spec.Switched {
			return nil, fmt.Errorf("plexus: segment %s: sharded topologies require switched segments", spec.Name)
		}
		if len(spec.Hosts) > gatewayHostByte-1 {
			return nil, fmt.Errorf("plexus: segment %s: %d hosts exceed a /24", spec.Name, len(spec.Hosts))
		}
		segSim := sim.New(seed + 1 + int64(si))
		segSim.SetSpanBase(sim.SpanBase(si + 1))
		segShard := top.Engine.AddShard(spec.Name, segSim)
		top.Sims = append(top.Sims, segSim)

		seg := &Segment{Name: spec.Name, Subnet: spec.Subnet}
		seg.Switch = netdev.NewSwitch(segSim, spec.Name+"/sw", spec.Model, spec.Switch)
		addr := func(host byte) view.IP4 {
			return view.IP4{spec.Subnet[0], spec.Subnet[1], spec.Subnet[2], host}
		}
		gwAddr := addr(gatewayHostByte)
		for i, hs := range spec.Hosts {
			idx := byte(i + 1)
			cable := netdev.NewLink(segSim, spec.Name+"/cable")
			seg.Switch.AttachLink(cable)
			seg.Cables = append(seg.Cables, cable)
			st, err := NewStack(segSim, hs.Name, StackConfig{
				Personality: hs.Personality,
				Dispatch:    hs.Dispatch,
				Model:       spec.Model,
				Link:        cable,
				MAC:         segMAC(si, idx),
				Addr:        addr(idx),
				Mask:        view.IP4{255, 255, 255, 0},
				Gateway:     gwAddr,
				Costs:       hs.Costs,
				Pool:        hs.Pool,
				Quarantine:  hs.Quarantine,
			})
			if err != nil {
				return nil, fmt.Errorf("plexus: host %s: %w", hs.Name, err)
			}
			seg.Hosts = append(seg.Hosts, st)
		}

		// The uplink: gateway NIC on side A (gateway shard), switch port on
		// side B (segment shard). Each direction is an engine coupling
		// drained by the receiving shard.
		uplink := spec.Uplink
		if uplink == (netdev.Model{}) {
			uplink = spec.Model
		}
		bnd := netdev.NewBoundary(gwSim, segSim, spec.Name+"/uplink", uplink)
		st, err := NewStack(gwSim, gw.Name+"/"+spec.Name, StackConfig{
			Personality: gw.Personality,
			Dispatch:    gw.Dispatch,
			Model:       uplink,
			Link:        bnd.LinkA(),
			MAC:         segMAC(si, gatewayHostByte),
			Addr:        gwAddr,
			Mask:        view.IP4{255, 255, 255, 0},
			Costs:       gw.Costs,
			CPU:         top.Gateway.CPU,
		})
		if err != nil {
			return nil, fmt.Errorf("plexus: gateway on %s: %w", spec.Name, err)
		}
		seg.Switch.AttachLinkModel(bnd.LinkB(), uplink)
		seg.GW = st
		seg.GWs = append(seg.GWs, st)
		seg.Cables = append(seg.Cables, bnd.LinkB())
		top.Gateway.Ifaces = append(top.Gateway.Ifaces, st)
		top.Engine.Connect(bnd.CouplingAB(), segShard)
		top.Engine.Connect(bnd.CouplingBA(), gwShard)
		top.Boundaries = append(top.Boundaries, bnd)
		top.Segments = append(top.Segments, seg)
	}
	for _, iface := range top.Gateway.Ifaces {
		iface.IP.SetForwardFn(top.Gateway.forwardFrom(iface))
	}
	return top, nil
}

// segMAC numbers hosts like NewTopology but with a 16-bit segment field, so
// topologies wider than 254 segments stay collision-free.
func segMAC(si int, host byte) view.MAC {
	seg := si + 1
	return view.MAC{0x02, 0x00, byte(seg >> 8), byte(seg), 0x00, host}
}

// Run advances every shard to time until on workers goroutines.
func (top *ShardedTopology) Run(until sim.Time, workers int) {
	top.Engine.Run(until, workers)
}

// Executed sums fired events across all shards.
func (top *ShardedTopology) Executed() uint64 { return top.Engine.Executed() }

// SpanCount sums allocated packet spans across all shards.
func (top *ShardedTopology) SpanCount() uint64 {
	var n uint64
	for _, s := range top.Sims {
		n += s.SpanCount()
	}
	return n
}

// Host returns the host with the given name from any segment, or nil.
func (top *ShardedTopology) Host(name string) *Stack {
	for _, seg := range top.Segments {
		for _, h := range seg.Hosts {
			if h.Name() == name {
				return h
			}
		}
	}
	return nil
}

// PrimeARPSparse installs the static ARP entries the scale workloads need —
// O(hosts), not the O(hosts²) full mesh of PrimeARP: every host resolves its
// segment's gateway interface and its segment's server (host .1), the server
// resolves all its local clients, and the gateway resolves everyone it may
// forward to.
func (top *ShardedTopology) PrimeARPSparse() {
	for _, seg := range top.Segments {
		if len(seg.Hosts) == 0 {
			continue
		}
		server := seg.Hosts[0]
		for i, h := range seg.Hosts {
			h.ARP.AddStatic(seg.GW.Addr(), seg.GW.NIC.MAC())
			seg.GW.ARP.AddStatic(h.Addr(), h.NIC.MAC())
			if i > 0 {
				h.ARP.AddStatic(server.Addr(), server.NIC.MAC())
				server.ARP.AddStatic(h.Addr(), h.NIC.MAC())
			}
		}
		server.ARP.AddStatic(seg.GW.Addr(), seg.GW.NIC.MAC())
	}
}
