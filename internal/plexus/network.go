package plexus

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

// HostSpec describes one host for NewNetwork.
type HostSpec struct {
	Name        string
	Personality osmodel.Personality
	Dispatch    osmodel.DispatchMode
	// Costs overrides the default cost model (nil = defaults).
	Costs *osmodel.Costs
	// Pool overrides the host's mbuf pool (nil = a fresh per-host pool).
	// Every host must have its own pool — or at least one private to its
	// simulator — because experiment cells run concurrently and pools
	// carry per-sim statistics and free lists.
	Pool *mbuf.Pool
	// Quarantine configures the host dispatcher's fault-ejection policy
	// (zero value = disabled).
	Quarantine event.QuarantinePolicy
	// Audit receives every TCP state transition on this host (nil = off).
	Audit tcp.TransitionSink
	// CC selects the host's default congestion-control algorithm
	// ("" = tcp.DefaultCC).
	CC string
	// MinRTO overrides the TCP retransmission-timeout floor (0 = 1s).
	MinRTO sim.Time
}

// Network is a set of hosts sharing one link — the paper's two-machine
// testbeds and the video experiment's server-plus-clients configuration.
type Network struct {
	Sim   *sim.Sim
	Link  *netdev.Link
	Hosts []*Stack
}

// NewNetwork builds hosts on a fresh simulator and a shared link of the
// given device model, assigning sequential addresses 10.0.0.1… on a /24.
func NewNetwork(seed int64, model netdev.Model, specs []HostSpec) (*Network, error) {
	s := sim.New(seed)
	link := netdev.NewLink(s, model.Name)
	n := &Network{Sim: s, Link: link}
	for i, spec := range specs {
		idx := byte(i + 1)
		cfg := StackConfig{
			Personality: spec.Personality,
			Dispatch:    spec.Dispatch,
			Model:       model,
			Link:        link,
			MAC:         view.MAC{0x02, 0x00, 0x00, 0x00, 0x00, idx},
			Addr:        view.IP4{10, 0, 0, idx},
			Mask:        view.IP4{255, 255, 255, 0},
			Costs:       spec.Costs,
			Pool:        spec.Pool,
			Quarantine:  spec.Quarantine,
			Audit:       spec.Audit,
			CC:          spec.CC,
			MinRTO:      spec.MinRTO,
		}
		st, err := NewStack(s, spec.Name, cfg)
		if err != nil {
			return nil, fmt.Errorf("plexus: host %s: %w", spec.Name, err)
		}
		n.Hosts = append(n.Hosts, st)
	}
	return n, nil
}

// Host returns the host with the given name, or nil.
func (n *Network) Host(name string) *Stack {
	for _, h := range n.Hosts {
		if h.Name() == name {
			return h
		}
	}
	return nil
}

// PrimeARP installs static ARP entries pairwise so latency experiments
// measure the protocol path, not a first-packet ARP exchange (the paper's
// numbers are steady-state).
func (n *Network) PrimeARP() {
	for _, a := range n.Hosts {
		for _, b := range n.Hosts {
			if a != b {
				a.ARP.AddStatic(b.Addr(), b.NIC.MAC())
			}
		}
	}
}

// TwoHosts is the common two-machine testbed: returns (hostA, hostB).
func TwoHosts(seed int64, model netdev.Model, a, b HostSpec) (*Network, *Stack, *Stack, error) {
	n, err := NewNetwork(seed, model, []HostSpec{a, b})
	if err != nil {
		return nil, nil, nil, err
	}
	n.PrimeARP()
	return n, n.Hosts[0], n.Hosts[1], nil
}
