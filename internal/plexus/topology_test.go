package plexus

import (
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// A UDP echo crosses two subnets through the gateway: out one interface
// stack, TTL-decremented, in the other — twice (request and reply).
func TestTopologyCrossSubnetEcho(t *testing.T) {
	gw := spinSpec("gw")
	top, err := NewTopology(1, &gw, []SegmentSpec{
		{Name: "west", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 1, 0},
			Hosts: []HostSpec{spinSpec("client")}},
		{Name: "east", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 2, 0}, Switched: true,
			Hosts: []HostSpec{spinSpec("server")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top.PrimeARP()
	client := top.Host("client")
	server := top.Host("server")
	if client.Addr() != (view.IP4{10, 0, 1, 1}) || server.Addr() != (view.IP4{10, 0, 2, 1}) {
		t.Fatalf("addressing: client %v server %v", client.Addr(), server.Addr())
	}

	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	replies := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		replies++
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("send", func(tk *sim.Task) {
		_ = capp.Send(tk, server.Addr(), 7, []byte("across the gateway"))
	})
	top.Sim.Run()

	if replies != 1 {
		t.Fatalf("client got %d replies, want 1", replies)
	}
	gs := top.Gateway.Stats()
	if gs.Forwarded != 2 {
		t.Errorf("gateway forwarded %d datagrams, want 2 (request + reply)", gs.Forwarded)
	}
	if gs.NoRoute != 0 || gs.TTLExpired != 0 || gs.Drops != 0 {
		t.Errorf("gateway drops: %+v", gs)
	}
	// The switched segment carried the forwarded request and the reply.
	if sw := top.Segments[1].Switch; sw.Stats().RxFrames == 0 {
		t.Error("east switch saw no traffic")
	}
}

// The gateway's interface stacks share one CPU: forwarding work on one
// subnet contends with forwarding on the other.
func TestTopologyGatewaySharesOneCPU(t *testing.T) {
	gw := spinSpec("gw")
	top, err := NewTopology(1, &gw, []SegmentSpec{
		{Name: "a", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 1, 0}, Hosts: []HostSpec{spinSpec("h1")}},
		{Name: "b", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 2, 0}, Hosts: []HostSpec{spinSpec("h2")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, iface := range top.Gateway.Ifaces {
		if iface.Host.CPU != top.Gateway.CPU {
			t.Fatal("gateway interface stack has its own CPU")
		}
	}
}

// Datagrams with no route off the gateway are dropped and counted, not
// forwarded or looped.
func TestTopologyNoRouteCounted(t *testing.T) {
	gw := spinSpec("gw")
	top, err := NewTopology(1, &gw, []SegmentSpec{
		{Name: "a", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 1, 0}, Hosts: []HostSpec{spinSpec("h1")}},
		{Name: "b", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 2, 0}, Hosts: []HostSpec{spinSpec("h2")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top.PrimeARP()
	h1 := top.Host("h1")
	capp, err := h1.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h1.Spawn("send", func(tk *sim.Task) {
		_ = capp.Send(tk, view.IP4{10, 9, 9, 9}, 7, []byte("to nowhere"))
	})
	top.Sim.Run()
	if gs := top.Gateway.Stats(); gs.NoRoute != 1 || gs.Forwarded != 0 {
		t.Errorf("gateway stats %+v, want NoRoute=1 Forwarded=0", gs)
	}
}

// A single switched segment needs no gateway; unicast between two hosts is
// forwarded by the fabric, not flooded to bystanders.
func TestTopologySingleSwitchedSegment(t *testing.T) {
	top, err := NewTopology(1, nil, []SegmentSpec{
		{Name: "lan", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 0, 0}, Switched: true,
			Hosts: []HostSpec{spinSpec("a"), spinSpec("b"), spinSpec("c")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top.PrimeARP()
	a, b, c := top.Host("a"), top.Host("b"), top.Host("c")
	got := 0
	var echo *UDPApp
	echo, err = b.OpenUDP(UDPAppOptions{Port: 9}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		got++
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	capp, err := a.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First exchange: a's frame floods (b unknown), b's reply teaches the
	// switch where b lives.
	a.Spawn("send", func(tk *sim.Task) { _ = capp.Send(tk, b.Addr(), 9, []byte("hi")) })
	top.Sim.Run()
	// Subsequent unicast is forwarded out b's port alone.
	for i := 0; i < 4; i++ {
		a.Spawn("send", func(tk *sim.Task) { _ = capp.Send(tk, b.Addr(), 9, []byte("hi")) })
	}
	top.Sim.Run()
	if got != 5 {
		t.Fatalf("b received %d datagrams, want 5", got)
	}
	cSeen := c.NIC.Stats().RxFrames + c.NIC.Stats().RxFiltered + c.NIC.Stats().RxErrors
	if cSeen != 1 {
		t.Errorf("bystander saw %d frames on a switched segment, want only the initial flood", cSeen)
	}
}
