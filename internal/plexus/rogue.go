package plexus

// Rogue extension archetypes: the adversarial suite the sandbox is proved
// against. Each archetype is a way an application-specific handler can
// misbehave that the paper's §2/§3.3 safety story must survive:
//
//   - RogueSpin: an "infinite loop" at interrupt level — the handler burns
//     far more CPU than its allotment every packet. The dispatcher
//     terminates it at the allotment (§3.3) and each termination is a fault.
//   - RogueSteal: a packet-stealing filter — an always-true guard that also
//     burns CPU in the guard itself, where the architecture requires cheap
//     predicates. The guard-budget clamp refunds the excess and counts an
//     overrun fault.
//   - RoguePanic: a handler that crashes (panics) on every Nth packet.
//     Containment keeps dispatch alive; each panic is a fault.
//   - RogueFree: a handler that frees packet references it does not own.
//     The mbuf pool's double-free detection trips, the panic is contained,
//     and each attempt is a fault.
//
// All four are deterministic: their behavior depends only on the packets
// dispatched to them, so adversarial runs replay byte-identically.

import (
	"fmt"

	"plexus/internal/domain"
	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

// RogueKind names a rogue-extension archetype.
type RogueKind string

// The archetypes of the adversarial suite.
const (
	RogueSpin  RogueKind = "spin"
	RogueSteal RogueKind = "steal"
	RoguePanic RogueKind = "panic"
	RogueFree  RogueKind = "free"
)

// RogueKinds returns the archetypes in their canonical order (the order the
// bench sweep cycles through as the rogue count grows).
func RogueKinds() []RogueKind {
	return []RogueKind{RogueSpin, RogueSteal, RoguePanic, RogueFree}
}

// Rogue behavior parameters.
const (
	// rogueSpinAllotment is the EPHEMERAL budget the spinning handler
	// claims; rogueSpinBurn is what it actually consumes per packet.
	rogueSpinAllotment = 50 * sim.Microsecond
	rogueSpinBurn      = 10 * sim.Millisecond
	// rogueStealBurn is the CPU the stealing guard burns per evaluation.
	rogueStealBurn = 25 * sim.Microsecond
	// roguePanicEvery makes the panicking handler crash on every Nth packet.
	roguePanicEvery = 3
)

// RogueExtension builds the idx-th rogue extension of the given archetype.
// Every rogue claims to be a well-behaved EPHEMERAL packet tap on
// Ethernet.PacketRecv, linked through the restricted extension domain like
// any application extension — the lie is in its behavior, which only the
// sandbox (allotments, guard budgets, containment, quarantine) catches.
func RogueExtension(kind RogueKind, idx int) ExtensionSpec {
	name := fmt.Sprintf("rogue-%s-%d", kind, idx)
	return ExtensionSpec{
		Name:    name,
		Imports: []domain.Symbol{"Ethernet.Layer"},
		Install: func(ctx *ExtensionCtx) error {
			v, ok := ctx.Resolve("Ethernet.Layer")
			if !ok {
				return fmt.Errorf("%s: Ethernet.Layer not resolved", name)
			}
			eth := v.(*ether.Layer)
			var guard event.Guard
			var fn event.HandlerFunc
			allotment := sim.Time(0)
			switch kind {
			case RogueSpin:
				// Models an infinite loop: consumes 200× its claimed budget
				// on every packet.
				allotment = rogueSpinAllotment
				fn = func(t *sim.Task, m *mbuf.Mbuf) { t.Charge(rogueSpinBurn) }
			case RogueSteal:
				// An always-true "filter" that does its stealing work inside
				// the guard, where evaluation is supposed to be cheap.
				guard = func(t *sim.Task, m *mbuf.Mbuf) bool {
					t.Charge(rogueStealBurn)
					return true
				}
				fn = func(t *sim.Task, m *mbuf.Mbuf) {}
			case RoguePanic:
				n := 0
				fn = func(t *sim.Task, m *mbuf.Mbuf) {
					n++
					if n%roguePanicEvery == 0 {
						panic(fmt.Sprintf("%s: crash on packet %d", name, n))
					}
				}
			case RogueFree:
				// Frees packet references it does not own. The dispatched
				// frame usually belongs to (and was already consumed by) an
				// earlier handler; re-freeing it trips the pool's double-free
				// detection. If the frame is still live, the rogue clones it
				// — sharing the owner's cluster references — and double-frees
				// the clone, attacking those shared references instead.
				// Either way the panic is contained and counted.
				fn = func(t *sim.Task, m *mbuf.Mbuf) {
					switch {
					case m.Freed():
						m.Free() // not ours, already freed: double free
					case m.Hdr() != nil:
						if c, err := m.Clone(); err == nil {
							c.Free()
							c.Free() // double free of shared references
						}
					}
				}
			default:
				return fmt.Errorf("unknown rogue kind %q", kind)
			}
			b, err := eth.InstallRecv(guard, event.Ephemeral(name, fn), allotment)
			if err != nil {
				return err
			}
			ctx.Adopt(b)
			return nil
		},
	}
}
