package plexus

// TCP loss-recovery behaviour under the fault-injection plane: fast
// retransmit fires at exactly the three-dup-ACK threshold, and timeout
// recovery backs the RTO off exponentially through a link blackout. These
// complement the white-box estimator tests in internal/tcp.

import (
	"testing"

	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/tcp"
)

// recoveryTransfer runs a one-way transfer under a prepared injector and
// returns the sender's connection stats plus received byte count. The
// prepare hook runs after the network is built but before traffic starts.
func recoveryTransfer(t *testing.T, size int, horizon sim.Time, prepare func(*Network, *fault.Injector)) (tcp.ConnStats, int) {
	t.Helper()
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	in := fault.Attach(n.Sim, n.Link)
	if prepare != nil {
		prepare(n, in)
	}
	var got int
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sender *TCPApp
	msg := make([]byte, size)
	client.Spawn("client", func(task *sim.Task) {
		sender, err = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	n.Sim.RunUntil(horizon)
	if sender == nil {
		t.Fatal("connection never attempted")
	}
	return sender.Conn().Stats(), got
}

// A single mid-stream segment loss with plenty of successors must recover
// via fast retransmit — three duplicate ACKs, one retransmission, and no
// RTO expiry anywhere.
func TestFastRetransmitAtThreeDupAcks(t *testing.T) {
	const size = 64 << 10
	cs, got := recoveryTransfer(t, size, 60*sim.Second, func(n *Network, in *fault.Injector) {
		// Kill exactly the 10th data-bearing frame; dozens of later
		// segments then generate duplicate ACKs.
		in.Lose(fault.MinSize{N: 1000, M: &fault.NthOnly{K: 10}})
	})
	if got != size {
		t.Fatalf("transfer incomplete: %d/%d", got, size)
	}
	if cs.FastRexmits != 1 {
		t.Errorf("FastRexmits = %d, want exactly 1", cs.FastRexmits)
	}
	if cs.RTOExpiries != 0 {
		t.Errorf("RTOExpiries = %d; fast retransmit should have beaten the timer", cs.RTOExpiries)
	}
	if cs.DupAcksRcvd < 3 {
		t.Errorf("DupAcksRcvd = %d, want >= 3", cs.DupAcksRcvd)
	}
	if cs.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want exactly 1", cs.Retransmits)
	}
}

// The dual: a loss so close to the end of the stream that only two
// successors exist can never reach the three-dup-ACK threshold — recovery
// must fall to the retransmission timer.
func TestTwoDupAcksDoNotTriggerFastRetransmit(t *testing.T) {
	// 64KB = 44 full 1460-byte segments + one 1296-byte tail = 45 frames
	// over the MinSize bar. Killing #44 leaves two out-of-order arrivals
	// (the tail segment and the FIN) — two dup ACKs, one short of the
	// threshold.
	const size = 64 << 10
	cs, got := recoveryTransfer(t, size, 120*sim.Second, func(n *Network, in *fault.Injector) {
		in.Lose(fault.MinSize{N: 1000, M: &fault.NthOnly{K: 44}})
	})
	if got != size {
		t.Fatalf("transfer incomplete: %d/%d", got, size)
	}
	if cs.FastRexmits != 0 {
		t.Errorf("FastRexmits = %d with only two dup ACKs possible", cs.FastRexmits)
	}
	if cs.RTOExpiries == 0 {
		t.Error("RTOExpiries = 0; nothing recovered the tail loss")
	}
	if cs.DupAcksRcvd > 2 {
		t.Errorf("DupAcksRcvd = %d, want <= 2", cs.DupAcksRcvd)
	}
}

// A long link blackout mid-transfer: every retransmission is swallowed, so
// the RTO must back off exponentially — a 25.6s outage costs ~5 expiries
// (1+2+4+8+16s), not ~25 fixed-interval ones — and the transfer still
// completes after the carrier returns.
func TestRTOExponentialBackoffThroughBlackout(t *testing.T) {
	const size = 1 << 20
	var down, up sim.Time = 100 * sim.Millisecond, 25700 * sim.Millisecond
	var in2 *fault.Injector
	cs, got := recoveryTransfer(t, size, 10*60*sim.Second, func(n *Network, in *fault.Injector) {
		in2 = in
		sc := in.Scenario()
		sc.DownAt(down)
		sc.UpAt(up)
	})
	if got != size {
		t.Fatalf("transfer incomplete after heal: %d/%d", got, size)
	}
	if fl := in2.Stats().Flapped; fl == 0 {
		t.Fatal("blackout dropped nothing; scenario ineffective")
	}
	// Exponential: ~5 expiries across the 25.6s outage. A fixed 1s timer
	// would burn ~25.
	if cs.RTOExpiries < 3 || cs.RTOExpiries > 8 {
		t.Errorf("RTOExpiries = %d across a 25.6s blackout, want 3..8 (exponential backoff)", cs.RTOExpiries)
	}
}
