package plexus

import (
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/udp"
	"plexus/internal/view"
)

// This file implements the application-side endpoint wrappers that realize
// the structural difference between the two OS personalities:
//
//   - On SPIN, the application IS a kernel extension: its receive handler is
//     invoked directly by the dispatcher (in the interrupt, or on the kernel
//     thread that raised the event) and its sends call straight into the
//     protocol graph. No traps, no boundary copies.
//
//   - On Monolithic, the application is a user process: a received datagram
//     is queued at the socket, the process is woken, context-switched in,
//     and the payload copied out; every send is a trap plus a copyin plus
//     socket-layer work before the same protocol code runs.

// UDPAppRecv is the application-level receive callback: payload bytes, the
// peer address, and the task the handler runs in. The payload slice is
// BORROWED — on SPIN stacks it is the endpoint's reused receive buffer and is
// valid only for the duration of the callback. A callback that needs the
// bytes later must copy them.
type UDPAppRecv func(t *sim.Task, payload []byte, src view.IP4, srcPort uint16)

// UDPAppOptions configure OpenUDP.
type UDPAppOptions struct {
	// Port 0 allocates an ephemeral port.
	Port uint16
	// Remote/RemotePort connect the endpoint (guard filters the peer).
	Remote     view.IP4
	RemotePort uint16
	// DisableChecksum is the §1.1 application-specific UDP variant.
	DisableChecksum bool
	// AcceptMulticast admits datagrams to multicast groups.
	AcceptMulticast bool
	// Allotment bounds each receive invocation (EPHEMERAL time budget).
	Allotment sim.Time
	// AppRecvCost is charged per received datagram to model the
	// application's own processing (0 = charge nothing).
	AppRecvCost sim.Time
}

// UDPApp is an application endpoint bound through the UDP protocol manager,
// with personality-appropriate costs applied on both paths.
type UDPApp struct {
	st   *Stack
	ep   *udp.Endpoint
	opts UDPAppOptions
	// recvBuf is reused across SPIN-path deliveries (the payload is only
	// borrowed by the callback), keeping the steady-state receive path
	// allocation-free. recvLabel is the user-task label, built once.
	recvBuf   []byte
	recvLabel string
}

// OpenUDP opens an application endpoint. On interrupt-mode stacks the
// receive handler is installed EPHEMERAL, as §3.3 requires.
func (st *Stack) OpenUDP(opts UDPAppOptions, onRecv UDPAppRecv) (*UDPApp, error) {
	app := &UDPApp{st: st, opts: opts, recvLabel: "app-recv:" + st.Name()}
	epOpts := udp.EndpointOptions{
		Port:            opts.Port,
		Remote:          opts.Remote,
		RemotePort:      opts.RemotePort,
		DisableChecksum: opts.DisableChecksum,
		AcceptMulticast: opts.AcceptMulticast,
		Ephemeral:       true, // application handlers declare EPHEMERAL; see package doc
		Allotment:       opts.Allotment,
	}
	ep, err := st.UDP.Open(epOpts, func(t *sim.Task, payload *mbuf.Mbuf, src view.IP4, srcPort uint16) {
		app.deliver(t, payload, src, srcPort, onRecv)
	})
	if err != nil {
		return nil, err
	}
	app.ep = ep
	return app, nil
}

// deliver applies the personality's receive-side structure before running
// the application callback.
func (app *UDPApp) deliver(t *sim.Task, payload *mbuf.Mbuf, src view.IP4, srcPort uint16, onRecv UDPAppRecv) {
	st := app.st
	n := payload.PktLen()
	if st.Host.Personality == osmodel.SPIN {
		// In-kernel extension: the handler body runs right here — in the
		// interrupt task or on the kernel thread that raised us — and the
		// payload is borrowed from the endpoint's reused buffer, so the
		// steady-state receive path allocates nothing.
		if cap(app.recvBuf) < n {
			app.recvBuf = make([]byte, n)
		}
		data := app.recvBuf[:n]
		err := payload.CopyTo(0, data)
		payload.Free()
		if err != nil {
			return
		}
		if app.opts.AppRecvCost > 0 {
			t.Charge(app.opts.AppRecvCost)
		}
		if onRecv != nil {
			onRecv(t, data, src, srcPort)
		}
		return
	}
	// Monolithic: socket enqueue + wakeup in the kernel, then the user
	// process context-switches in, returns from its recv trap, and copies
	// the payload across the boundary. The copy must be private: the user
	// task runs later, after the shared receive buffer may be overwritten.
	data, err := payload.CopyData(0, n)
	payload.Free()
	if err != nil {
		return
	}
	costs := st.Host.Costs
	t.ChargeProf(sim.ProfTrap, "socket", costs.SocketLayer+costs.Wakeup)
	st.Host.CPU.SubmitAt(t.Now(), sim.PrioUser, app.recvLabel, func(ut *sim.Task) {
		ut.ChargeProf(sim.ProfTrap, "syscall", costs.CtxSwitch+costs.Syscall)
		ut.ChargeBytesProf(sim.ProfCopy, "copyout", len(data), costs.CopyPerByte)
		if app.opts.AppRecvCost > 0 {
			ut.Charge(app.opts.AppRecvCost)
		}
		if onRecv != nil {
			onRecv(ut, data, src, srcPort)
		}
	})
}

// Send transmits payload to dst:dstPort, applying send-side personality
// costs (trap + copyin + socket layer on Monolithic; nothing extra on SPIN).
func (app *UDPApp) Send(t *sim.Task, dst view.IP4, dstPort uint16, payload []byte) error {
	st := app.st
	if st.Host.Personality == osmodel.Monolithic {
		costs := st.Host.Costs
		t.ChargeProf(sim.ProfTrap, "syscall", costs.Syscall+costs.SocketLayer)
		t.ChargeBytesProf(sim.ProfCopy, "copyin", len(payload), costs.CopyPerByte)
	}
	m := st.Host.Pool.FromBytes(payload, 64)
	return app.ep.Send(t, dst, dstPort, m)
}

// SendMbuf transmits an already-built payload chain (consumed), for senders
// that assemble data without a flat slice (the video server's disk path).
func (app *UDPApp) SendMbuf(t *sim.Task, dst view.IP4, dstPort uint16, m *mbuf.Mbuf) error {
	st := app.st
	if st.Host.Personality == osmodel.Monolithic {
		costs := st.Host.Costs
		t.ChargeProf(sim.ProfTrap, "syscall", costs.Syscall+costs.SocketLayer)
		t.ChargeBytesProf(sim.ProfCopy, "copyin", m.PktLen(), costs.CopyPerByte)
	}
	return app.ep.Send(t, dst, dstPort, m)
}

// Port returns the bound port.
func (app *UDPApp) Port() uint16 { return app.ep.Port() }

// Endpoint exposes the underlying manager endpoint.
func (app *UDPApp) Endpoint() *udp.Endpoint { return app.ep }

// Close releases the endpoint.
func (app *UDPApp) Close() { app.ep.Close() }
