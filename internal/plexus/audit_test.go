// Audit-plane integration tests: the typed TCP state-transition events flow
// from live simulated stacks into sinks, the RFC 793 checker passes on clean
// closes and catches injected illegal transitions with full context, and the
// TIME-WAIT quiet period behaves per the RFC — all through the public
// plexus.Stack surface rather than the tcp package's internals.
package plexus

import (
	"strings"
	"testing"

	"plexus/internal/audit"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

func auditSpec(name string) HostSpec {
	return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

// auditRig is a two-host network with an assertion sink and a conformance
// checker watching every TCP transition on both stacks.
type auditRig struct {
	n              *Network
	client, server *Stack
	sink           *audit.AssertSink
	chk            *audit.Checker
}

func newAuditRig(t *testing.T, seed int64) *auditRig {
	t.Helper()
	n, client, server, err := TwoHosts(seed, netdev.EthernetModel(), auditSpec("client"), auditSpec("server"))
	if err != nil {
		t.Fatal(err)
	}
	r := &auditRig{n: n, client: client, server: server, sink: &audit.AssertSink{}}
	r.chk = audit.NewChecker(r.sink)
	client.TCP.SetAuditSink(r.chk)
	server.TCP.SetAuditSink(r.chk)
	return r
}

// TestTCPTimeWaitLifecycle drives one connection through a full close and
// checks the TIME-WAIT quiet period end to end: the TCB is pinned in
// TIME-WAIT for the whole 2·MSL, the timer then fires and frees it on both
// hosts, and the server port is connectable again after expiry.
func TestTCPTimeWaitLifecycle(t *testing.T) {
	r := newAuditRig(t, 1)

	if _, err := r.server.ListenTCP(80, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) {},
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil); err != nil {
		t.Fatal(err)
	}

	var app *TCPApp
	closedAt := sim.Time(-1)
	r.client.Spawn("connect", func(task *sim.Task) {
		var err error
		app, err = r.client.ConnectTCP(task, r.server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) { _ = conn.Send(t2, []byte("ping")) },
			OnClose: func(conn *TCPApp, cerr error) {
				if cerr != nil {
					t.Errorf("close delivered error: %v", cerr)
				}
				closedAt = r.n.Sim.Now()
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	const closeAt = 1 * sim.Second
	r.client.SpawnAt(closeAt, "close", func(task *sim.Task) { app.Close(task) })

	// Halfway through the quiet period the TCB must still be pinned.
	r.n.Sim.RunUntil(closeAt + tcp.MSL)
	if app == nil {
		t.Fatal("connection never established")
	}
	if s := app.State(); s != tcp.StateTimeWait {
		t.Fatalf("mid-quiet-period state = %v, want TIME-WAIT", s)
	}
	if closedAt != -1 {
		t.Fatalf("OnClose fired at %v, before 2*MSL elapsed", closedAt)
	}
	if n := r.client.TCP.NumConns(); n == 0 {
		t.Fatal("client TCB freed during TIME-WAIT")
	}

	// After 2·MSL the timer fires: OnClose delivered, TCB freed on both ends.
	r.n.Sim.RunUntil(closeAt + 3*tcp.MSL)
	if closedAt < closeAt+2*tcp.MSL {
		t.Fatalf("OnClose at %v, want >= close time + 2*MSL (%v)", closedAt, closeAt+2*tcp.MSL)
	}
	if s := app.State(); s != tcp.StateClosed {
		t.Fatalf("state after expiry = %v, want CLOSED", s)
	}
	if n := r.client.TCP.NumConns(); n != 0 {
		t.Fatalf("client still holds %d TCBs after TIME-WAIT expiry", n)
	}
	if n := r.server.TCP.NumConns(); n != 0 {
		t.Fatalf("server still holds %d TCBs after TIME-WAIT expiry", n)
	}

	// The port is reusable: a fresh connect to the same server port after
	// expiry completes a new handshake.
	reconnected := false
	reconnectAt := closeAt + 3*tcp.MSL + sim.Second
	r.client.SpawnAt(reconnectAt, "reconnect", func(task *sim.Task) {
		if _, err := r.client.ConnectTCP(task, r.server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) { reconnected = true },
		}); err != nil {
			t.Errorf("reconnect: %v", err)
		}
	})
	r.n.Sim.RunUntil(reconnectAt + 10*sim.Second)
	if !reconnected {
		t.Fatal("reconnect to port 80 never established after TIME-WAIT expiry")
	}

	if r.chk.Events() == 0 {
		t.Fatal("audit checker saw no transitions")
	}
	if r.chk.ViolationCount() != 0 {
		t.Fatalf("clean close produced %d conformance violations: %+v",
			r.chk.ViolationCount(), r.chk.Violations())
	}
}

// TestTCPSimultaneousClose crosses two FINs: both endpoints call Close at the
// same simulated instant, so each must walk the RFC 793 simultaneous-close
// ladder FIN-WAIT-1 -> CLOSING -> TIME-WAIT -> CLOSED, verified edge by edge
// through the assertion sink.
func TestTCPSimultaneousClose(t *testing.T) {
	r := newAuditRig(t, 2)

	var serverApp *TCPApp
	if _, err := r.server.ListenTCP(80, TCPAppOptions{}, func(task *sim.Task, conn *TCPApp) {
		serverApp = conn
	}); err != nil {
		t.Fatal(err)
	}
	var clientApp *TCPApp
	r.client.Spawn("connect", func(task *sim.Task) {
		var err error
		clientApp, err = r.client.ConnectTCP(task, r.server.Addr(), 80, TCPAppOptions{})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	r.n.Sim.RunUntil(1 * sim.Second)
	if clientApp == nil || serverApp == nil {
		t.Fatal("handshake did not complete")
	}
	if clientApp.State() != tcp.StateEstablished || serverApp.State() != tcp.StateEstablished {
		t.Fatalf("pre-close states %v/%v, want ESTABLISHED/ESTABLISHED",
			clientApp.State(), serverApp.State())
	}

	const closeAt = 2 * sim.Second
	r.client.SpawnAt(closeAt, "close-client", func(task *sim.Task) { clientApp.Close(task) })
	r.server.SpawnAt(closeAt, "close-server", func(task *sim.Task) { serverApp.Close(task) })
	r.n.Sim.RunUntil(closeAt + 3*tcp.MSL)

	port := clientApp.Conn().LocalPort()
	got := r.sink.PathString(r.client.Addr(), port, r.server.Addr(), 80)
	want := "CLOSED>SYN-SENT>ESTABLISHED>FIN-WAIT-1>CLOSING>TIME-WAIT>CLOSED"
	if got != want {
		t.Errorf("client path %s, want %s", got, want)
	}
	got = r.sink.PathString(r.server.Addr(), 80, r.client.Addr(), port)
	want = "CLOSED>LISTEN>SYN-RECEIVED>ESTABLISHED>FIN-WAIT-1>CLOSING>TIME-WAIT>CLOSED"
	if got != want {
		t.Errorf("server path %s, want %s", got, want)
	}
	if r.chk.ViolationCount() != 0 {
		t.Fatalf("simultaneous close produced %d conformance violations: %+v",
			r.chk.ViolationCount(), r.chk.Violations())
	}
	if r.client.TCP.NumConns()+r.server.TCP.NumConns() != 0 {
		t.Fatal("TCBs leaked after simultaneous close unwound")
	}
}

// TestTCPAuditForceStateCaught injects an illegal transition with the
// ForceState test hook mid-connection and checks the conformance checker
// catches it with full event context: host, 4-tuple, timestamp, and the
// forcing cause.
func TestTCPAuditForceStateCaught(t *testing.T) {
	r := newAuditRig(t, 3)

	if _, err := r.server.ListenTCP(80, TCPAppOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	var clientApp *TCPApp
	r.client.Spawn("connect", func(task *sim.Task) {
		var err error
		clientApp, err = r.client.ConnectTCP(task, r.server.Addr(), 80, TCPAppOptions{})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	r.n.Sim.RunUntil(1 * sim.Second)
	if clientApp == nil || clientApp.State() != tcp.StateEstablished {
		t.Fatal("handshake did not complete")
	}

	const forceAt = 2 * sim.Second
	r.client.SpawnAt(forceAt, "force", func(task *sim.Task) {
		clientApp.Conn().ForceState(tcp.StateListen)
	})
	r.n.Sim.RunUntil(3 * sim.Second)

	if n := r.chk.ViolationCount(); n != 1 {
		t.Fatalf("checker caught %d violations, want exactly 1: %+v", n, r.chk.Violations())
	}
	v := r.chk.Violations()[0]
	ev := v.Event
	if ev.Host != "client" {
		t.Errorf("violation host %q, want client", ev.Host)
	}
	if ev.Old != tcp.StateEstablished || ev.New != tcp.StateListen {
		t.Errorf("violation edge %v->%v, want ESTABLISHED->LISTEN", ev.Old, ev.New)
	}
	if ev.LocalAddr != r.client.Addr() || ev.RemoteAddr != r.server.Addr() || ev.RemotePort != 80 {
		t.Errorf("violation 4-tuple %v:%d-%v:%d does not match the forced connection",
			ev.LocalAddr, ev.LocalPort, ev.RemoteAddr, ev.RemotePort)
	}
	if ev.At < forceAt || ev.At > forceAt+sim.Second {
		t.Errorf("violation timestamp %v, want about %v", ev.At, sim.Time(forceAt))
	}
	if ev.Cause.Kind != tcp.CauseUser || ev.Cause.Detail != tcp.CauseForce {
		t.Errorf("violation cause %v %q, want user/force", ev.Cause.Kind, ev.Cause.Detail)
	}
	if !strings.Contains(v.Reason, "no legal edge") {
		t.Errorf("violation reason %q does not name the illegal edge", v.Reason)
	}
}

// TestUDPEchoSteadyStateAllocsWithAudit re-pins the zero-alloc steady-state
// invariant with the audit plane attached: a ring sink behind the RFC 793
// checker on both hosts, primed with a real TCP handshake's transitions, must
// not add a single allocation to the echo hot path.
func TestUDPEchoSteadyStateAllocsWithAudit(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), auditSpec("client"), auditSpec("server"))
	if err != nil {
		t.Fatal(err)
	}
	ring := audit.NewRingSink(0)
	chk := audit.NewChecker(ring)
	client.TCP.SetAuditSink(chk)
	server.TCP.SetAuditSink(chk)

	// A live TCP connection alongside the UDP workload, so the sinks have
	// real transitions recorded while the allocation pin runs.
	if _, err := server.ListenTCP(9, TCPAppOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	client.Spawn("tcp-connect", func(task *sim.Task) {
		if _, err := client.ConnectTCP(task, server.Addr(), 9, TCPAppOptions{}); err != nil {
			t.Errorf("tcp connect: %v", err)
		}
	})

	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(task, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	rounds := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		rounds++
		_ = capp.Send(task, server.Addr(), 7, msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(task *sim.Task) { _ = capp.Send(task, server.Addr(), 7, msg) })

	runRounds := func(k int) {
		target := rounds + k
		for rounds < target {
			if !n.Sim.Step() {
				t.Fatal("simulation drained before completing echo rounds")
			}
		}
	}
	runRounds(64)

	avg := testing.AllocsPerRun(100, func() { runRounds(1) })
	if avg != 0 {
		t.Fatalf("audit-enabled UDP echo round allocates %.2f/iter, want 0", avg)
	}
	if ring.Recorded() < 5 {
		t.Fatalf("ring sink recorded %d transitions, want the full handshake", ring.Recorded())
	}
	if chk.ViolationCount() != 0 {
		t.Fatalf("handshake produced %d conformance violations: %+v",
			chk.ViolationCount(), chk.Violations())
	}
}
