package plexus

import (
	"bytes"
	"testing"

	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/view"
)

// tcpTransfer runs a one-way bulk transfer of size bytes from client to
// server, under an optional loss model, and returns (received bytes,
// elapsed send-to-last-byte time).
func tcpTransfer(t *testing.T, model netdev.Model, a, b HostSpec, size int, loss fault.DropModel) ([]byte, sim.Time) {
	t.Helper()
	n, client, server, err := TwoHosts(1, model, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if loss != nil {
		fault.Attach(n.Sim, n.Link).Lose(loss)
	}
	var rcvd bytes.Buffer
	var lastByteAt sim.Time
	var serverConn *TCPApp
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv: func(task *sim.Task, conn *TCPApp, data []byte) {
			rcvd.Write(data)
			lastByteAt = task.Now()
		},
		OnPeerFin: func(task *sim.Task, conn *TCPApp) {
			conn.Close(task)
		},
	}, func(task *sim.Task, conn *TCPApp) {
		serverConn = conn
	})
	if err != nil {
		t.Fatal(err)
	}

	msg := make([]byte, size)
	for i := range msg {
		msg[i] = byte(i*31 + i>>8)
	}
	var startAt sim.Time
	client.Spawn("client", func(task *sim.Task) {
		startAt = task.Now()
		_, err := client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(task2 *sim.Task, conn *TCPApp) {
				if err := conn.Send(task2, msg); err != nil {
					t.Errorf("send: %v", err)
				}
				conn.Close(task2)
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	// TCP has self-renewing timers (TIME-WAIT etc.); run to quiescence
	// bounded by a generous wall.
	n.Sim.RunUntil(5 * 60 * sim.Second)
	_ = serverConn
	if !bytes.Equal(rcvd.Bytes(), msg) {
		t.Fatalf("stream corrupted: got %d bytes want %d (model %s)", rcvd.Len(), size, model.Name)
	}
	return rcvd.Bytes(), lastByteAt - startAt
}

func TestTCPHandshakeAndSmallTransfer(t *testing.T) {
	_, elapsed := tcpTransfer(t, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"), 100, nil)
	t.Logf("100B transfer took %v", elapsed)
	if elapsed <= 0 || elapsed > 5*sim.Millisecond {
		t.Errorf("small transfer time %v implausible", elapsed)
	}
}

func TestTCPBulkTransferEthernet(t *testing.T) {
	size := 1 << 20
	_, elapsed := tcpTransfer(t, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"), size, nil)
	mbps := float64(size) * 8 / elapsed.Seconds() / 1e6
	t.Logf("Ethernet TCP: %d bytes in %v = %.2f Mb/s", size, elapsed, mbps)
	// Paper §4.2: 8.9 Mb/s on the 10 Mb/s Ethernet. Accept 7.5–10.
	if mbps < 7.5 || mbps > 10 {
		t.Errorf("Ethernet TCP throughput %.2f Mb/s outside [7.5, 10]", mbps)
	}
}

func TestTCPBulkTransferATMFasterOnSPIN(t *testing.T) {
	size := 1 << 21
	_, spinT := tcpTransfer(t, netdev.ForeATMModel(), spinSpec("a"), spinSpec("b"), size, nil)
	_, duxT := tcpTransfer(t, netdev.ForeATMModel(), duxSpec("a"), duxSpec("b"), size, nil)
	spinM := float64(size) * 8 / spinT.Seconds() / 1e6
	duxM := float64(size) * 8 / duxT.Seconds() / 1e6
	t.Logf("ATM TCP: SPIN %.1f Mb/s, DUX %.1f Mb/s", spinM, duxM)
	// Paper §4.2: 33 vs 27.9 Mb/s — SPIN wins on the PIO-limited device.
	if spinM <= duxM {
		t.Errorf("SPIN (%.1f) should beat DUX (%.1f) on PIO ATM", spinM, duxM)
	}
}

func TestTCPRetransmissionUnderLoss(t *testing.T) {
	// Drop every 20th data-bearing frame (MinSize leaves ACKs and control
	// segments alone), up to 20 drops.
	lm := &fault.Limit{Max: 20, M: fault.MinSize{N: 100, M: &fault.EveryNth{N: 20}}}
	size := 1 << 18
	got, elapsed := tcpTransfer(t, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"), size, lm)
	t.Logf("transferred %d bytes in %v with %d injected drops", len(got), elapsed, lm.Fired())
	if lm.Fired() == 0 {
		t.Fatal("loss injector never fired; test is vacuous")
	}
}

func TestTCPConnectionRefusedGetsRST(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var closeErr error
	closed := false
	client.Spawn("client", func(task *sim.Task) {
		_, err := client.ConnectTCP(task, server.Addr(), 81, TCPAppOptions{
			OnClose: func(conn *TCPApp, err error) {
				closed = true
				closeErr = err
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	n.Sim.RunUntil(10 * sim.Second)
	if !closed {
		t.Fatal("connection to closed port never terminated")
	}
	if closeErr == nil {
		t.Fatal("expected reset error")
	}
	if server.TCP.Stats().RSTsSent == 0 {
		t.Error("server sent no RST")
	}
}

func TestTCPOrderlyCloseBothSides(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var clientConn, serverConn *TCPApp
	var clientErr, serverErr error
	clientClosed, serverClosed := false, false
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
		OnClose: func(conn *TCPApp, err error) {
			serverClosed = true
			serverErr = err
		},
	}, func(task *sim.Task, conn *TCPApp) { serverConn = conn })
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("client", func(task *sim.Task) {
		conn, err := client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(task2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(task2, []byte("goodbye"))
				conn.Close(task2)
			},
			OnClose: func(conn *TCPApp, err error) {
				clientClosed = true
				clientErr = err
			},
		})
		clientConn = conn
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if !clientClosed || !serverClosed {
		t.Fatalf("connections not fully closed: client=%v server=%v (client state %v, server state %v)",
			clientClosed, serverClosed, stateOf(clientConn), stateOf(serverConn))
	}
	if clientErr != nil || serverErr != nil {
		t.Errorf("orderly close reported errors: client=%v server=%v", clientErr, serverErr)
	}
}

func stateOf(c *TCPApp) tcp.State {
	if c == nil || c.Conn() == nil {
		return tcp.StateClosed
	}
	return c.State()
}

// §3.1: two implementations of TCP coexist — TCP-standard handles everything
// except the ports TCP-special owns. Here "special" is a second listener set
// whose connections tag their payloads; both must work simultaneously.
func TestTwoTCPImplementationsCoexist(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	results := map[uint16]string{}
	mk := func(port uint16, tag string) {
		_, err := server.ListenTCP(port, TCPAppOptions{
			OnRecv: func(task *sim.Task, conn *TCPApp, data []byte) {
				results[port] = tag + ":" + string(data)
			},
			OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	mk(80, "standard")
	mk(8080, "special")
	for _, port := range []uint16{80, 8080} {
		port := port
		client.Spawn("client", func(task *sim.Task) {
			_, err := client.ConnectTCP(task, server.Addr(), port, TCPAppOptions{
				OnEstablished: func(task2 *sim.Task, conn *TCPApp) {
					_ = conn.Send(task2, []byte("hello"))
					conn.Close(task2)
				},
			})
			if err != nil {
				t.Errorf("connect %d: %v", port, err)
			}
		})
	}
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if results[80] != "standard:hello" || results[8080] != "special:hello" {
		t.Fatalf("implementations interfered: %v", results)
	}
}

// Bidirectional traffic on one connection.
func TestTCPEchoRoundTrip(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = server.ListenTCP(7, TCPAppOptions{
		OnRecv: func(task *sim.Task, conn *TCPApp, data []byte) {
			_ = conn.Send(task, bytes.ToUpper(data))
		},
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	client.Spawn("client", func(task *sim.Task) {
		_, err := client.ConnectTCP(task, server.Addr(), 7, TCPAppOptions{
			OnEstablished: func(task2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(task2, []byte("hello tcp echo"))
			},
			OnRecv: func(task2 *sim.Task, conn *TCPApp, data []byte) {
				got.Write(data)
				if got.Len() >= len("hello tcp echo") {
					conn.Close(task2)
				}
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if got.String() != "HELLO TCP ECHO" {
		t.Fatalf("echo = %q", got.String())
	}
}

// Heavy-loss transfer still completes (timeout-driven recovery).
func TestTCPHeavyLossEventuallyCompletes(t *testing.T) {
	// Drop ~14% of ALL frames, both directions.
	size := 64 << 10
	got, elapsed := tcpTransfer(t, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"), size, &fault.EveryNth{N: 7})
	t.Logf("64KB under 14%% loss in %v", elapsed)
	if len(got) != size {
		t.Fatalf("incomplete transfer: %d/%d", len(got), size)
	}
}

func TestTCPStatsPlausible(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var conn *TCPApp
	client.Spawn("client", func(task *sim.Task) {
		conn, _ = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(task2 *sim.Task, c *TCPApp) {
				_ = c.Send(task2, make([]byte, 10000))
				c.Close(task2)
			},
		})
	})
	n.Sim.RunUntil(5 * 60 * sim.Second)
	if conn == nil {
		t.Fatal("no connection")
	}
	cs := conn.Conn().Stats()
	if cs.BytesSent != 10000 {
		t.Errorf("BytesSent = %d", cs.BytesSent)
	}
	if cs.Retransmits != 0 {
		t.Errorf("unexpected retransmits on a lossless link: %d", cs.Retransmits)
	}
	ms := client.TCP.Stats()
	if ms.SegsOut == 0 || ms.SegsIn == 0 || ms.BadChecksum != 0 {
		t.Errorf("manager stats implausible: %+v", ms)
	}
}

// Reordered deliveries exercise the receiver's out-of-order buffering: the
// stream must still arrive intact and in order.
func TestTCPReorderingTolerated(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Every 5th large frame is held back 5ms: later segments overtake it.
	in := fault.Attach(n.Sim, n.Link).
		Delay(&fault.PeriodicDelay{N: 5, Hold: 5 * sim.Millisecond, MinSize: 500})
	var rcvd bytes.Buffer
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { rcvd.Write(data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	size := 256 << 10
	msg := make([]byte, size)
	for i := range msg {
		msg[i] = byte(i*11 + i>>9)
	}
	client.Spawn("client", func(task *sim.Task) {
		_, _ = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if !bytes.Equal(rcvd.Bytes(), msg) {
		t.Fatalf("reordered stream corrupted: %d/%d bytes", rcvd.Len(), size)
	}
	if in.Stats().Delayed < 10 {
		t.Fatal("jitter injector barely fired; test is vacuous")
	}
}

// After a complete UDP exchange quiesces, every mbuf must be back in its
// pool: the graph's ownership discipline does not leak packets.
func TestNoMbufLeaksAfterUDPExchange(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(task, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	capp, err := client.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * sim.Millisecond
		client.SpawnAt(at, "send", func(task *sim.Task) {
			_ = capp.Send(task, server.Addr(), 7, make([]byte, 100+i*50))
		})
	}
	n.Sim.Run()
	for _, st := range []*Stack{client, server} {
		if inuse := st.Host.Pool.Stats().InUse; inuse != 0 {
			t.Errorf("%s: %d mbufs leaked", st.Name(), inuse)
		}
	}
}

// The same audit across a full TCP connection lifecycle (handshake, data,
// FIN exchange, TIME-WAIT expiry).
func TestNoMbufLeaksAfterTCPLifecycle(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { _ = conn.Send(task, data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("client", func(task *sim.Task) {
		_, _ = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, make([]byte, 5000))
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(5 * 60 * sim.Second) // past TIME-WAIT
	for _, st := range []*Stack{client, server} {
		if inuse := st.Host.Pool.Stats().InUse; inuse != 0 {
			t.Errorf("%s: %d mbufs leaked across TCP lifecycle", st.Name(), inuse)
		}
	}
}

// Crossing connects: both hosts dial each other's listening port at the same
// instant; both connections must establish and accept, with no RSTs.
func TestTCPCrossingConnects(t *testing.T) {
	n, a, b, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	if _, err := a.ListenTCP(1000, TCPAppOptions{}, func(task *sim.Task, conn *TCPApp) { accepted++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ListenTCP(1000, TCPAppOptions{}, func(task *sim.Task, conn *TCPApp) { accepted++ }); err != nil {
		t.Fatal(err)
	}
	okA, okB := false, false
	a.Spawn("dialB", func(task *sim.Task) {
		_, _ = a.ConnectTCP(task, b.Addr(), 1000, TCPAppOptions{
			OnEstablished: func(*sim.Task, *TCPApp) { okA = true },
		})
	})
	b.Spawn("dialA", func(task *sim.Task) {
		_, _ = b.ConnectTCP(task, a.Addr(), 1000, TCPAppOptions{
			OnEstablished: func(*sim.Task, *TCPApp) { okB = true },
		})
	})
	n.Sim.RunUntil(30 * sim.Second)
	if !okA || !okB {
		t.Fatalf("crossing connects failed: a=%v b=%v", okA, okB)
	}
	if accepted != 2 {
		t.Fatalf("accepted = %d, want 2", accepted)
	}
	if a.TCP.Stats().RSTsSent != 0 || b.TCP.Stats().RSTsSent != 0 {
		t.Error("RSTs emitted during crossing connects")
	}
}
