package plexus

import (
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/stats"
	"plexus/internal/view"
)

// runEchoWithRecorder runs k UDP echo rounds between two SPIN hosts with the
// flight recorder attached, returning the recorder for inspection.
func runEchoWithRecorder(t *testing.T, rounds int) *stats.Recorder {
	t.Helper()
	spec := func(name string) HostSpec {
		return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	}
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spec("client"), spec("server"))
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.NewRecorder(stats.Config{})
	n.Sim.SetMetrics(rec)
	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	done := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		done++
		if done < rounds {
			_ = capp.Send(tk, server.Addr(), 7, msg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, server.Addr(), 7, msg) })
	n.Sim.RunUntil(60 * sim.Second)
	if done != rounds {
		t.Fatalf("completed %d echo rounds, want %d", done, rounds)
	}
	return rec
}

// TestSpanItinerary checks the tentpole observability claim end to end: a
// packet stamped at the sending socket carries its span across the wire, so
// one span's hop list shows both hosts and every traversed layer in time
// order.
func TestSpanItinerary(t *testing.T) {
	rec := runEchoWithRecorder(t, 3)
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no packet spans recorded")
	}
	// The first span is the client's first request: client udp→ip→ether→wire,
	// then server wire→...→udp.
	hops := rec.SpanHops(spans[0])
	if len(hops) < 4 {
		t.Fatalf("span %d has only %d hops: %+v", spans[0], len(hops), hops)
	}
	hosts := make(map[string]bool)
	layers := make(map[string]bool)
	prev := hops[0].At
	for _, h := range hops {
		if h.At < prev {
			t.Fatalf("hops out of time order: %+v", hops)
		}
		prev = h.At
		hosts[h.Host] = true
		layers[h.Layer] = true
	}
	if !hosts["client"] || !hosts["server"] {
		t.Fatalf("span should cross both hosts, saw %v", hosts)
	}
	if len(layers) < 3 {
		t.Fatalf("span should traverse at least 3 layers, saw %v", layers)
	}
	if !layers["udp"] {
		t.Fatalf("span should include the udp layer, saw %v", layers)
	}
	if first := hops[0]; first.Host != "client" || first.Layer != "udp" || first.Action != "send" {
		t.Fatalf("span should start at the client socket, got %+v", first)
	}
}

// TestMetricsProfileAttribution checks that CPU charges landed under both
// hosts across several profile kinds with protocol owners attributed.
func TestMetricsProfileAttribution(t *testing.T) {
	rec := runEchoWithRecorder(t, 8)
	if rec.SamplesRecorded() == 0 {
		t.Fatal("no CPU samples recorded")
	}
	hosts := make(map[string]bool)
	kinds := make(map[sim.ProfKind]bool)
	owners := make(map[string]bool)
	for _, row := range rec.Profile() {
		hosts[row.Host] = true
		kinds[row.Kind] = true
		owners[row.Owner] = true
		if row.Total <= 0 || row.Count == 0 {
			t.Fatalf("empty profile row: %+v", row)
		}
	}
	if !hosts["client"] || !hosts["server"] {
		t.Fatalf("profile should cover both hosts, saw %v", hosts)
	}
	// No ProfCopy here: SPIN handlers run in-kernel (no user copies) and the
	// Ethernet model DMAs, so no per-byte PIO charge exists to attribute.
	for _, k := range []sim.ProfKind{sim.ProfProto, sim.ProfDriver, sim.ProfDispatch, sim.ProfHandler} {
		if !kinds[k] {
			t.Fatalf("profile missing kind %v; have %v", k, kinds)
		}
	}
	for _, o := range []string{"ip", "udp", "ether"} {
		if !owners[o] {
			t.Fatalf("profile missing owner %q; have %v", o, owners)
		}
	}
	if rec.Folded() == "" {
		t.Fatal("folded profile is empty")
	}
}

// TestUDPEchoSteadyStateAllocsWithMetrics is the metrics-enabled twin of
// TestUDPEchoSteadyStateAllocs: with the flight recorder attached the
// steady-state per-round allocation count must still be zero — spans, hops,
// samples, and histograms all live in preallocated storage.
func TestUDPEchoSteadyStateAllocsWithMetrics(t *testing.T) {
	spec := func(name string) HostSpec {
		return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	}
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spec("client"), spec("server"))
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.NewRecorder(stats.Config{})
	n.Sim.SetMetrics(rec)
	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	rounds := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		rounds++
		_ = capp.Send(tk, server.Addr(), 7, msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, server.Addr(), 7, msg) })

	runRounds := func(k int) {
		target := rounds + k
		for rounds < target {
			if !n.Sim.Step() {
				t.Fatal("simulation drained before completing echo rounds")
			}
		}
	}
	// Warm up: prime the free lists AND the recorder's aggregation keys
	// (every host/kind/owner triple the echo path touches).
	runRounds(64)

	avg := testing.AllocsPerRun(100, func() { runRounds(1) })
	if avg != 0 {
		t.Fatalf("metrics-enabled UDP echo round allocates %.2f/iter, want 0", avg)
	}
	if rec.HopsRecorded() == 0 || rec.SamplesRecorded() == 0 {
		t.Fatalf("recorder idle during alloc run: hops=%d samples=%d",
			rec.HopsRecorded(), rec.SamplesRecorded())
	}
}
