package plexus

import (
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// TestUDPEchoSteadyStateAllocs pins the zero-alloc property of the per-packet
// path: once warm (ARP primed, pools and free lists populated), a complete
// application-to-application UDP echo round — two sends, two wire crossings,
// two interrupt deliveries, full header processing — allocates nothing.
func TestUDPEchoSteadyStateAllocs(t *testing.T) {
	spec := func(name string) HostSpec {
		return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	}
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spec("client"), spec("server"))
	if err != nil {
		t.Fatal(err)
	}
	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	rounds := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		rounds++
		_ = capp.Send(tk, server.Addr(), 7, msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, server.Addr(), 7, msg) })

	runRounds := func(k int) {
		target := rounds + k
		for rounds < target {
			if !n.Sim.Step() {
				t.Fatal("simulation drained before completing echo rounds")
			}
		}
	}
	// Warm up: prime every free list (events, tasks, submissions, mbufs,
	// clusters, wire frames, receive buffers).
	runRounds(64)

	avg := testing.AllocsPerRun(100, func() { runRounds(1) })
	if avg != 0 {
		t.Fatalf("steady-state UDP echo round allocates %.2f/iter, want 0", avg)
	}
}

// TestUDPEchoSteadyStateAllocsThroughSwitch pins the same property across the
// switched fabric: the per-frame switch path (ingress jobs, MAC lookup, the
// departure ring) must add nothing to the allocation budget.
func TestUDPEchoSteadyStateAllocsThroughSwitch(t *testing.T) {
	top, err := NewTopology(1, nil, []SegmentSpec{
		{Name: "lan", Model: netdev.EthernetModel(), Subnet: view.IP4{10, 0, 0, 0}, Switched: true,
			Hosts: []HostSpec{
				{Name: "client", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
				{Name: "server", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
			}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top.PrimeARP()
	client, server := top.Host("client"), top.Host("server")

	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	rounds := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		rounds++
		_ = capp.Send(tk, server.Addr(), 7, msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, server.Addr(), 7, msg) })

	runRounds := func(k int) {
		target := rounds + k
		for rounds < target {
			if !top.Sim.Step() {
				t.Fatal("simulation drained before completing echo rounds")
			}
		}
	}
	runRounds(64)

	avg := testing.AllocsPerRun(100, func() { runRounds(1) })
	if avg != 0 {
		t.Fatalf("steady-state switched UDP echo round allocates %.2f/iter, want 0", avg)
	}
}
