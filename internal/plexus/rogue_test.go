package plexus

// The adversarial proof of the sandbox: rogue extensions of every archetype
// installed on a live stack, with well-behaved flows required to complete
// underneath them and the quarantine required to eject each rogue within
// its fault threshold.

import (
	"testing"

	"plexus/internal/event"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/seqpkt"
	"plexus/internal/sim"
)

// rogueQuarantine is the policy the adversarial suite runs under.
func rogueQuarantine() event.QuarantinePolicy {
	return event.QuarantinePolicy{Threshold: 5, GuardBudget: 5 * sim.Microsecond}
}

func rogueSpec(name string, p osmodel.Personality, d osmodel.DispatchMode) HostSpec {
	return HostSpec{Name: name, Personality: p, Dispatch: d, Quarantine: rogueQuarantine()}
}

// installAllRogues installs one rogue of every archetype on the stack.
func installAllRogues(t *testing.T, st *Stack) []*Extension {
	t.Helper()
	var exts []*Extension
	for i, kind := range RogueKinds() {
		ext, err := st.InstallExtension(RogueExtension(kind, i))
		if err != nil {
			t.Fatalf("install rogue %s: %v", kind, err)
		}
		exts = append(exts, ext)
	}
	return exts
}

// checkQuarantined asserts every rogue was ejected with exactly threshold
// faults.
func checkQuarantined(t *testing.T, exts []*Extension) {
	t.Helper()
	threshold := rogueQuarantine().Threshold
	for _, ext := range exts {
		st := ext.Stats()
		if st.Quarantined != st.Bindings {
			t.Errorf("%s: %d/%d bindings quarantined", ext.Name(), st.Quarantined, st.Bindings)
		}
		if st.Faults != threshold {
			t.Errorf("%s: %d faults, want exactly the threshold %d", ext.Name(), st.Faults, threshold)
		}
	}
}

func rogueTCPBulk(t *testing.T, personality osmodel.Personality, dispatch osmodel.DispatchMode) {
	t.Helper()
	const size = 64 << 10
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(),
		rogueSpec("client", personality, dispatch), rogueSpec("server", personality, dispatch))
	if err != nil {
		t.Fatal(err)
	}
	exts := installAllRogues(t, server)
	var got int
	_, err = server.ListenTCP(5001, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, size)
	client.Spawn("sender", func(task *sim.Task) {
		_, _ = client.ConnectTCP(task, server.Addr(), 5001, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(60 * sim.Second)
	if got != size {
		t.Fatalf("TCP bulk delivered %d/%d bytes with rogues installed", got, size)
	}
	checkQuarantined(t, exts)
	// Atomic unload at quiesce: every rogue accounts clean — contained
	// double-free attacks and terminations did not unbalance the pool.
	for _, ext := range exts {
		rep, err := ext.Unload()
		if err != nil {
			t.Fatal(err)
		}
		if rep.LeakedMbufs != 0 {
			t.Errorf("%s: LeakedMbufs = %d, want 0", ext.Name(), rep.LeakedMbufs)
		}
	}
	if inUse := server.Host.Pool.Stats().InUse; inUse != 0 {
		t.Errorf("server pool InUse = %d at quiesce, want 0", inUse)
	}
}

func TestRogueSuiteTCPBulkSPIN(t *testing.T) {
	rogueTCPBulk(t, osmodel.SPIN, osmodel.DispatchInterrupt)
}

func TestRogueSuiteTCPBulkMonolithic(t *testing.T) {
	rogueTCPBulk(t, osmodel.Monolithic, osmodel.DispatchInterrupt)
}

func TestRogueSuiteSPPStream(t *testing.T) {
	const msgs = 30
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(),
		rogueSpec("client", osmodel.SPIN, osmodel.DispatchInterrupt),
		rogueSpec("server", osmodel.SPIN, osmodel.DispatchInterrupt))
	if err != nil {
		t.Fatal(err)
	}
	install := func(st *Stack) (*seqpkt.Manager, error) {
		return seqpkt.Install(seqpkt.Config{
			Sim:              st.Host.Sim,
			IP:               st.IP,
			Disp:             st.Host.Disp,
			Raise:            st.Raiser(),
			CPU:              st.Host.CPU,
			Pool:             st.Host.Pool,
			Costs:            st.Host.Costs,
			RequireEphemeral: st.InterruptMode(),
		})
	}
	mc, err := install(client)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := install(server)
	if err != nil {
		t.Fatal(err)
	}
	exts := installAllRogues(t, server)
	rx, err := ms.Open(40, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := mc.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300)
	for i := 0; i < msgs; i++ {
		client.SpawnAt(sim.Time(i+1)*20*sim.Millisecond, "spp-sender", func(task *sim.Task) {
			_, _ = tx.Send(task, server.Addr(), 40, payload)
		})
	}
	n.Sim.RunUntil(60 * sim.Second)
	if d := rx.Stats().Delivered; d != msgs {
		t.Fatalf("SPP delivered %d/%d messages with rogues installed", d, msgs)
	}
	checkQuarantined(t, exts)
}

// Install/unload churn mid-traffic: a benign extension cycles every 10ms
// while a TCP transfer runs. The flow must complete, and the last
// generation must unload clean at quiesce.
func TestRogueChurnMidTraffic(t *testing.T) {
	const size = 64 << 10
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(),
		rogueSpec("client", osmodel.SPIN, osmodel.DispatchInterrupt),
		rogueSpec("server", osmodel.SPIN, osmodel.DispatchInterrupt))
	if err != nil {
		t.Fatal(err)
	}
	var got int
	_, err = server.ListenTCP(5001, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var hits, generations int
	var current *Extension
	var churn func()
	churn = func() {
		if current != nil {
			if _, err := current.Unload(); err != nil {
				t.Errorf("churn unload: %v", err)
			}
		}
		generations++
		ext, err := server.InstallExtension(tapSpec("churn-tap", &hits))
		if err != nil {
			t.Errorf("churn install: %v", err)
			return
		}
		current = ext
		if generations < 40 {
			n.Sim.After(10*sim.Millisecond, "churn", churn)
		}
	}
	n.Sim.After(5*sim.Millisecond, "churn", churn)
	msg := make([]byte, size)
	client.Spawn("sender", func(task *sim.Task) {
		_, _ = client.ConnectTCP(task, server.Addr(), 5001, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(60 * sim.Second)
	if got != size {
		t.Fatalf("TCP bulk delivered %d/%d bytes under install/unload churn", got, size)
	}
	if generations != 40 || hits == 0 {
		t.Fatalf("churn ran %d generations, taps saw %d frames", generations, hits)
	}
	rep, err := current.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedMbufs != 0 {
		t.Fatalf("final churn unload LeakedMbufs = %d, want 0", rep.LeakedMbufs)
	}
	if inUse := server.Host.Pool.Stats().InUse; inUse != 0 {
		t.Errorf("server pool InUse = %d at quiesce, want 0", inUse)
	}
}

// The well-behaved flow must also survive a rogue install *storm*: more
// rogues than archetypes, cycling.
func TestRogueManyInstances(t *testing.T) {
	const size = 32 << 10
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(),
		rogueSpec("client", osmodel.SPIN, osmodel.DispatchInterrupt),
		rogueSpec("server", osmodel.SPIN, osmodel.DispatchInterrupt))
	if err != nil {
		t.Fatal(err)
	}
	kinds := RogueKinds()
	var exts []*Extension
	for i := 0; i < 8; i++ {
		ext, err := server.InstallExtension(RogueExtension(kinds[i%len(kinds)], i))
		if err != nil {
			t.Fatal(err)
		}
		exts = append(exts, ext)
	}
	var got int
	_, err = server.ListenTCP(5001, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, size)
	client.Spawn("sender", func(task *sim.Task) {
		_, _ = client.ConnectTCP(task, server.Addr(), 5001, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	n.Sim.RunUntil(120 * sim.Second)
	if got != size {
		t.Fatalf("TCP bulk delivered %d/%d bytes under 8 rogues", got, size)
	}
	checkQuarantined(t, exts)
	if h := server.Host.Disp.Health(); h.Quarantined != 8 {
		t.Fatalf("dispatcher health Quarantined = %d, want 8", h.Quarantined)
	}
}
