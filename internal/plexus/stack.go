// Package plexus assembles the protocol graph of the paper's Figure 1 on a
// simulated host and exposes the architecture's public surface: building
// stacks, opening endpoints through protocol managers, installing
// application-specific extensions at runtime, and running the same protocol
// code under either OS personality (SPIN/Plexus in-kernel, or a monolithic
// DIGITAL-UNIX-like structure) so their structural costs can be compared.
package plexus

import (
	"fmt"

	"plexus/internal/arp"
	"plexus/internal/domain"
	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/icmp"
	"plexus/internal/ip"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/tcp"
	"plexus/internal/udp"
	"plexus/internal/view"
)

// StackConfig describes one host's stack.
type StackConfig struct {
	// Personality selects SPIN or Monolithic structure.
	Personality osmodel.Personality
	// Dispatch selects interrupt- or thread-level handler execution on
	// SPIN hosts (ignored for Monolithic, which always hands receive
	// processing to a softirq-level continuation).
	Dispatch osmodel.DispatchMode
	// Model is the device type; Link the wire it attaches to.
	Model netdev.Model
	Link  *netdev.Link
	// Addressing.
	MAC     view.MAC
	Addr    view.IP4
	Mask    view.IP4
	Gateway view.IP4
	// Costs defaults to osmodel.DefaultCosts when zero.
	Costs *osmodel.Costs
	// Pool overrides the host's mbuf pool (nil = a fresh per-host pool).
	Pool *mbuf.Pool
	// CPU overrides the host's processor (nil = a fresh per-host CPU). A
	// multi-homed gateway runs all of its interface stacks on one CPU so
	// that forwarding between subnets contends for a single processor.
	CPU *sim.CPU
	// Quarantine configures the dispatcher's fault-ejection policy for
	// misbehaving handlers (zero value = disabled; faults are still
	// counted in BindingStats).
	Quarantine event.QuarantinePolicy
	// Audit receives every TCP state transition on this host (nil = off).
	// The canonical sinks and the RFC 793 conformance checker live in
	// internal/audit.
	Audit tcp.TransitionSink
	// CC selects the default congestion-control algorithm for connections
	// opened on this host ("" = tcp.DefaultCC). Individual connections may
	// still override it via tcp.ConnOptions.CC.
	CC string
	// MinRTO overrides the TCP retransmission-timeout floor (0 = the
	// RFC 6298 conservative 1s).
	MinRTO sim.Time
}

// Stack is a fully assembled protocol graph on one host.
type Stack struct {
	Host  *osmodel.Host
	NIC   *netdev.NIC
	Ether *ether.Layer
	ARP   *arp.ARP
	IP    *ip.Layer
	ICMP  *icmp.Layer
	UDP   *udp.Manager
	TCP   *tcp.Manager

	cfg    StackConfig
	raiser *modeRaiser
}

// modeRaiser implements event.Raiser with the stack's dispatch structure:
//
//   - SPIN/interrupt: raise inline — handlers run in the raising task, which
//     on the receive path is the network interrupt (paper §3.3).
//   - SPIN/thread: each raise creates a kernel thread (paper Figure 5's
//     "thread" bars): charge thread creation, continue at kernel priority.
//   - Monolithic: the first raise out of the interrupt (Ethernet.PacketRecv)
//     models the netisr hand-off: charge the softirq dispatch and continue at
//     kernel priority; subsequent layers run inline in that softirq.
type modeRaiser struct {
	host *osmodel.Host
	mode osmodel.DispatchMode
}

// Raise implements event.Raiser.
func (r *modeRaiser) Raise(t *sim.Task, name event.Name, m *mbuf.Mbuf) int {
	return r.RaiseRef(t, r.host.Disp.Ref(name), m)
}

// RaiseRef implements event.Raiser's resolved-handle raise — the form every
// protocol layer uses on its per-packet path.
func (r *modeRaiser) RaiseRef(t *sim.Task, ref *event.Ref, m *mbuf.Mbuf) int {
	switch {
	case r.host.Personality == osmodel.SPIN && r.mode == osmodel.DispatchThread:
		n := ref.HandlerCount()
		if n == 0 {
			return 0
		}
		t.ChargeProf(sim.ProfDispatch, "thread-spawn", r.host.Costs.ThreadSpawn)
		r.host.CPU.SubmitAt(t.Now(), sim.PrioKernel, "raise:"+string(ref.Name()), func(t2 *sim.Task) {
			ref.Raise(t2, m)
		})
		return n
	case r.host.Personality == osmodel.Monolithic && ref.Name() == ether.RecvEvent:
		n := ref.HandlerCount()
		if n == 0 {
			return 0
		}
		r.host.CPU.SubmitAt(t.Now(), sim.PrioKernel, "softirq:"+string(ref.Name()), func(t2 *sim.Task) {
			t2.ChargeProf(sim.ProfDispatch, "softirq", r.host.Costs.SoftIRQ)
			ref.Raise(t2, m)
		})
		return n
	default:
		return ref.Raise(t, m)
	}
}

// NewStack assembles a host and its protocol graph.
func NewStack(s *sim.Sim, name string, cfg StackConfig) (*Stack, error) {
	costs := osmodel.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	host := osmodel.NewHost(s, name, cfg.Personality, costs)
	if cfg.Pool != nil {
		host.Pool = cfg.Pool
	}
	if cfg.CPU != nil {
		host.CPU = cfg.CPU
	}
	host.Disp.SetQuarantine(cfg.Quarantine)
	raiser := &modeRaiser{host: host, mode: cfg.Dispatch}
	interruptMode := cfg.Personality == osmodel.SPIN && cfg.Dispatch == osmodel.DispatchInterrupt

	nic := netdev.NewNIC(s, name+"/"+cfg.Model.Name, cfg.Model, cfg.Link, netdev.Config{
		CPU:   host.CPU,
		Raise: raiser,
		Pool:  host.Pool,
		MAC:   cfg.MAC,
	})
	// The receive event is declared by ether.New below; the NIC's handle
	// is wired once it exists.
	eth, err := ether.New(ether.Config{
		NIC:   nic,
		Disp:  host.Disp,
		Raise: raiser,
		Pool:  host.Pool,
		CPU:   host.CPU,
		Costs: costs,
		// §3.3: handlers delegated interrupt-level work must be
		// EPHEMERAL. Thread/monolithic stacks run handlers on threads,
		// so the restriction is lifted there.
		RequireEphemeral: interruptMode,
	})
	if err != nil {
		return nil, fmt.Errorf("plexus: %w", err)
	}
	nic.SetRecvRef(host.Disp.Ref(ether.RecvEvent))
	ar, err := arp.New(s, eth, host.Pool, costs, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("plexus: %w", err)
	}
	ipl, err := ip.New(ip.Config{
		Sim:     s,
		Ether:   eth,
		ARP:     ar,
		Disp:    host.Disp,
		Pool:    host.Pool,
		Costs:   costs,
		Addr:    cfg.Addr,
		Mask:    cfg.Mask,
		Gateway: cfg.Gateway,
	})
	if err != nil {
		return nil, fmt.Errorf("plexus: %w", err)
	}
	icmpl, err := icmp.New(ipl, host.Disp, host.Pool, costs)
	if err != nil {
		return nil, fmt.Errorf("plexus: %w", err)
	}
	udpm, err := udp.New(udp.Config{
		Sim:              s,
		IP:               ipl,
		ICMP:             icmpl,
		Disp:             host.Disp,
		Raise:            raiser,
		Pool:             host.Pool,
		Costs:            costs,
		RequireEphemeral: interruptMode,
	})
	if err != nil {
		return nil, fmt.Errorf("plexus: %w", err)
	}
	tcpm, err := tcp.New(tcp.Config{
		Sim:              s,
		IP:               ipl,
		Disp:             host.Disp,
		Raise:            raiser,
		CPU:              host.CPU,
		Pool:             host.Pool,
		Costs:            costs,
		RequireEphemeral: false, // connection handlers are installed by the manager itself
		Audit:            cfg.Audit,
		DefaultCC:        cfg.CC,
		MinRTO:           cfg.MinRTO,
	})
	if err != nil {
		return nil, fmt.Errorf("plexus: %w", err)
	}
	tcpm.AttachHealth(host.Disp)
	st := &Stack{
		Host:   host,
		NIC:    nic,
		Ether:  eth,
		ARP:    ar,
		IP:     ipl,
		ICMP:   icmpl,
		UDP:    udpm,
		TCP:    tcpm,
		cfg:    cfg,
		raiser: raiser,
	}
	st.populateDomains()
	return st, nil
}

// populateDomains publishes the kernel interfaces into the host's protection
// domains: everything into the kernel domain, and only the restricted
// extension surface (packet buffers + protocol managers) into the domain
// untrusted extensions link against (paper §2).
func (st *Stack) populateDomains() {
	k := st.Host.KernelDomain
	k.MustExport("Mbuf.Pool", st.Host.Pool)
	k.MustExport("Ethernet.Layer", st.Ether)
	k.MustExport("Ethernet.PacketRecv", ether.RecvEvent)
	k.MustExport("ARP.Layer", st.ARP)
	k.MustExport("IP.Layer", st.IP)
	k.MustExport("IP.PacketRecv", ip.RecvEvent)
	k.MustExport("ICMP.Layer", st.ICMP)
	k.MustExport("UDP.Manager", st.UDP)
	k.MustExport("UDP.PacketRecv", udp.RecvEvent)
	k.MustExport("TCP.Manager", st.TCP)
	k.MustExport("TCP.PacketRecv", tcp.RecvEvent)
	k.MustExport("Device.NIC", st.NIC)
	k.MustExport("Dispatcher.Install", st.Host.Disp)
	k.MustExport("CPU.Submit", st.Host.CPU)

	e := st.Host.ExtensionDomain
	e.MustExport("Mbuf.Pool", st.Host.Pool)
	e.MustExport("Ethernet.Layer", st.Ether) // the manager interface, not the NIC
	e.MustExport("UDP.Manager", st.UDP)
	e.MustExport("TCP.Manager", st.TCP)
	e.MustExport("ICMP.Layer", st.ICMP)
}

// LinkExtension dynamically links an application extension against the
// restricted extension domain — the runtime-adaptation path of §1. The
// extension's imports must all resolve or the link is rejected.
func (st *Stack) LinkExtension(ext *domain.Extension) (*domain.Linked, error) {
	return domain.Link(ext, st.Host.ExtensionDomain, st.Host.ExtensionDomain)
}

// LinkPrivileged links against the full kernel domain ("few extensions have
// access to this domain").
func (st *Stack) LinkPrivileged(ext *domain.Extension) (*domain.Linked, error) {
	return domain.Link(ext, st.Host.KernelDomain, st.Host.KernelDomain)
}

// Name returns the host name.
func (st *Stack) Name() string { return st.Host.Name }

// Addr returns the host's IP address.
func (st *Stack) Addr() view.IP4 { return st.cfg.Addr }

// Config returns the stack's configuration.
func (st *Stack) Config() StackConfig { return st.cfg }

// Raiser returns the stack's mode-aware event raiser.
func (st *Stack) Raiser() event.Raiser { return st.raiser }

// InterruptMode reports whether receive handlers run at interrupt level.
func (st *Stack) InterruptMode() bool {
	return st.cfg.Personality == osmodel.SPIN && st.cfg.Dispatch == osmodel.DispatchInterrupt
}

// Spawn starts application code in a fresh task at the personality's natural
// priority: kernel for SPIN extensions, user for monolithic processes.
func (st *Stack) Spawn(label string, fn func(t *sim.Task)) {
	prio := sim.PrioKernel
	if st.Host.Personality == osmodel.Monolithic {
		prio = sim.PrioUser
	}
	st.Host.CPU.Submit(prio, label, fn)
}

// SpawnAt is Spawn at an absolute simulated time.
func (st *Stack) SpawnAt(at sim.Time, label string, fn func(t *sim.Task)) {
	prio := sim.PrioKernel
	if st.Host.Personality == osmodel.Monolithic {
		prio = sim.PrioUser
	}
	st.Host.CPU.SubmitAt(at, prio, label, fn)
}
