package plexus

import (
	"bytes"
	"testing"

	"plexus/internal/icmp"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func spinSpec(name string) HostSpec {
	return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

func duxSpec(name string) HostSpec {
	return HostSpec{Name: name, Personality: osmodel.Monolithic}
}

// udpEchoRTT builds a two-host network, runs one UDP echo, and returns the
// application-observed round-trip time.
func udpEchoRTT(t *testing.T, model netdev.Model, a, b HostSpec, payload int) sim.Time {
	t.Helper()
	n, client, server, err := TwoHosts(1, model, a, b)
	if err != nil {
		t.Fatal(err)
	}
	var echoApp *UDPApp
	echoApp, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		task.Charge(server.Host.Costs.AppHandler)
		if err := echoApp.Send(task, src, srcPort, data); err != nil {
			t.Errorf("echo send: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	var sendTime, recvTime sim.Time
	var got []byte
	capp, err := client.OpenUDP(UDPAppOptions{}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		task.Charge(client.Host.Costs.AppHandler)
		recvTime = task.Now()
		got = data
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, payload)
	for i := range msg {
		msg[i] = byte(i)
	}
	client.Spawn("client", func(task *sim.Task) {
		sendTime = task.Now()
		if err := capp.Send(task, server.Addr(), 7, msg); err != nil {
			t.Errorf("client send: %v", err)
		}
	})
	n.Sim.Run()
	if recvTime == 0 {
		t.Fatalf("no echo received (model %s, %s vs %s)", model.Name, a.Personality, b.Personality)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo payload corrupted: got %d bytes", len(got))
	}
	return recvTime - sendTime
}

func TestUDPEchoSPINInterrupt(t *testing.T) {
	rtt := udpEchoRTT(t, netdev.EthernetModel(), spinSpec("spinA"), spinSpec("spinB"), 8)
	t.Logf("SPIN/interrupt Ethernet UDP RTT = %v", rtt)
	// Paper §1: less than 600µs on Ethernet.
	if rtt <= 0 || rtt > 600*sim.Microsecond {
		t.Errorf("RTT %v outside the paper's envelope (0, 600µs]", rtt)
	}
}

func TestUDPEchoThreadModeSlower(t *testing.T) {
	intr := udpEchoRTT(t, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"), 8)
	th := udpEchoRTT(t, netdev.EthernetModel(),
		HostSpec{Name: "a", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchThread},
		HostSpec{Name: "b", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchThread}, 8)
	t.Logf("interrupt=%v thread=%v", intr, th)
	if th <= intr {
		t.Errorf("thread dispatch (%v) should cost more than interrupt (%v)", th, intr)
	}
}

func TestUDPEchoMonolithicSlowest(t *testing.T) {
	spin := udpEchoRTT(t, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"), 8)
	dux := udpEchoRTT(t, netdev.EthernetModel(), duxSpec("a"), duxSpec("b"), 8)
	t.Logf("SPIN=%v DUX=%v ratio=%.2f", spin, dux, float64(dux)/float64(spin))
	if dux <= spin {
		t.Errorf("monolithic RTT (%v) should exceed SPIN RTT (%v)", dux, spin)
	}
	// The paper's gap is roughly 2x; insist on at least 1.5x.
	if float64(dux) < 1.5*float64(spin) {
		t.Errorf("monolithic/SPIN ratio %.2f below 1.5", float64(dux)/float64(spin))
	}
}

func TestUDPEchoAllDevices(t *testing.T) {
	for _, model := range []netdev.Model{netdev.EthernetModel(), netdev.ForeATMModel(), netdev.DECT3Model()} {
		rtt := udpEchoRTT(t, model, spinSpec("a"), spinSpec("b"), 8)
		t.Logf("%s: RTT = %v", model.Name, rtt)
		if rtt <= 0 {
			t.Errorf("%s: no RTT", model.Name)
		}
	}
}

func TestARPResolutionOnFirstPacket(t *testing.T) {
	// No PrimeARP: the first datagram must trigger a request/reply
	// exchange and still arrive.
	n, err := NewNetwork(1, netdev.EthernetModel(), []HostSpec{spinSpec("a"), spinSpec("b")})
	if err != nil {
		t.Fatal(err)
	}
	client, server := n.Hosts[0], n.Hosts[1]
	received := false
	_, err = server.OpenUDP(UDPAppOptions{Port: 9}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		received = true
	})
	if err != nil {
		t.Fatal(err)
	}
	capp, err := client.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("client", func(task *sim.Task) {
		if err := capp.Send(task, server.Addr(), 9, []byte("hi")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if !received {
		t.Fatal("datagram lost across ARP resolution")
	}
	if client.ARP.Stats().RequestsSent == 0 || client.ARP.Stats().RepliesRecvd == 0 {
		t.Errorf("ARP exchange missing: %+v", client.ARP.Stats())
	}
	if _, ok := client.ARP.Lookup(server.Addr()); !ok {
		t.Error("mapping not cached after reply")
	}
}

func TestICMPPingReply(t *testing.T) {
	n, a, b, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var rep *icmp.EchoReply
	var start sim.Time
	a.Spawn("ping", func(task *sim.Task) {
		start = task.Now()
		err := a.ICMP.Ping(task, b.Addr(), 42, 7, []byte("pingpayload"), func(t2 *sim.Task, r icmp.EchoReply) {
			rep = &r
		})
		if err != nil {
			t.Errorf("ping: %v", err)
		}
	})
	n.Sim.Run()
	if rep == nil {
		t.Fatal("no echo reply")
	}
	if rep.From != b.Addr() || rep.Ident != 42 || rep.Seq != 7 || string(rep.Payload) != "pingpayload" {
		t.Errorf("reply fields wrong: %+v", rep)
	}
	if rtt := rep.RTTEnd - start; rtt <= 0 || rtt > sim.Millisecond {
		t.Errorf("ping RTT %v implausible", rtt)
	}
	if b.ICMP.Stats().EchoRequestsRcvd != 1 || a.ICMP.Stats().EchoRepliesRcvd != 1 {
		t.Errorf("icmp stats wrong: a=%+v b=%+v", a.ICMP.Stats(), b.ICMP.Stats())
	}
}

// Fragmentation: a 3000-byte datagram over a 1500-MTU Ethernet must be
// fragmented, reassembled, and delivered intact.
func TestIPFragmentationEndToEnd(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	_, err = server.OpenUDP(UDPAppOptions{Port: 5000}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		got = data
	})
	if err != nil {
		t.Fatal(err)
	}
	capp, err := client.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 3000)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	client.Spawn("client", func(task *sim.Task) {
		if err := capp.Send(task, server.Addr(), 5000, msg); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("fragmented datagram corrupted: got %d bytes, want %d", len(got), len(msg))
	}
	if server.IP.Stats().FragmentsRcvd < 2 || server.IP.Stats().Reassembled != 1 {
		t.Errorf("reassembly stats wrong: %+v", server.IP.Stats())
	}
}

// Anti-snooping: an endpoint must not see datagrams for other ports, and a
// connected endpoint must not see datagrams from other peers.
func TestEndpointIsolation(t *testing.T) {
	n, err := NewNetwork(1, netdev.EthernetModel(), []HostSpec{spinSpec("a"), spinSpec("b"), spinSpec("c")})
	if err != nil {
		t.Fatal(err)
	}
	n.PrimeARP()
	a, b, c := n.Hosts[0], n.Hosts[1], n.Hosts[2]

	var wrongPort, connOK, connLeak int
	// Endpoint on port 100, should see nothing (traffic goes to 200).
	if _, err := b.OpenUDP(UDPAppOptions{Port: 100}, func(*sim.Task, []byte, view.IP4, uint16) {
		wrongPort++
	}); err != nil {
		t.Fatal(err)
	}
	// Connected endpoint on port 200 bound to peer a only.
	if _, err := b.OpenUDP(UDPAppOptions{Port: 200, Remote: a.Addr()}, func(*sim.Task, []byte, view.IP4, uint16) {
		connOK++
	}); err != nil {
		t.Fatal(err)
	}

	sendFrom := func(st *Stack, label string) {
		app, err := st.OpenUDP(UDPAppOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st.Spawn(label, func(task *sim.Task) {
			if err := app.Send(task, b.Addr(), 200, []byte(label)); err != nil {
				t.Errorf("%s: %v", label, err)
			}
		})
	}
	sendFrom(a, "from-a")
	sendFrom(c, "from-c")
	n.Sim.Run()
	if wrongPort != 0 {
		t.Errorf("port-100 endpoint snooped %d datagrams", wrongPort)
	}
	if connOK != 1 {
		t.Errorf("connected endpoint got %d datagrams from its peer, want 1", connOK)
	}
	if connLeak != 0 {
		t.Errorf("connected endpoint leaked %d foreign datagrams", connLeak)
	}
	// c's datagram matched no endpoint: port-unreachable accounting.
	if b.UDP.Stats().NoPort != 1 {
		t.Errorf("NoPort = %d, want 1", b.UDP.Stats().NoPort)
	}
	if b.ICMP.Stats().UnreachSent != 1 {
		t.Errorf("UnreachSent = %d, want 1", b.ICMP.Stats().UnreachSent)
	}
}

// Runtime adaptation: closing an endpoint mid-run uninstalls its handler;
// later datagrams no longer reach it.
func TestEndpointCloseStopsDelivery(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	sapp, err := server.OpenUDP(UDPAppOptions{Port: 7}, func(*sim.Task, []byte, view.IP4, uint16) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	capp, err := client.OpenUDP(UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	send := func(at sim.Time) {
		client.SpawnAt(at, "send", func(task *sim.Task) {
			_ = capp.Send(task, server.Addr(), 7, []byte("x"))
		})
	}
	send(0)
	n.Sim.At(5*sim.Millisecond, "close", sapp.Close)
	send(10 * sim.Millisecond)
	n.Sim.Run()
	if got != 1 {
		t.Fatalf("endpoint received %d datagrams, want 1 (one before close)", got)
	}
}

// The checksum-disabled UDP variant (§1.1) must interoperate.
func TestChecksumDisabledUDP(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	if _, err := server.OpenUDP(UDPAppOptions{Port: 6000}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		got = data
	}); err != nil {
		t.Fatal(err)
	}
	capp, err := client.OpenUDP(UDPAppOptions{DisableChecksum: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("send", func(task *sim.Task) {
		if err := capp.Send(task, server.Addr(), 6000, []byte("no-checksum")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if string(got) != "no-checksum" {
		t.Fatalf("checksum-disabled datagram lost: %q", got)
	}
}

// Openness: per-flow latency must not degrade because other endpoints exist —
// guards filter cheaply. (This pins the guard-evaluation cost to the
// dispatch-cost scale rather than the protocol-processing scale.)
func TestGuardChainScaling(t *testing.T) {
	base := udpEchoRTT(t, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"), 8)

	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	// 50 extra endpoints whose guards all reject.
	for p := uint16(2000); p < 2050; p++ {
		if _, err := server.OpenUDP(UDPAppOptions{Port: p}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var echoApp *UDPApp
	echoApp, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		task.Charge(server.Host.Costs.AppHandler)
		_ = echoApp.Send(task, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	var sendTime, recvTime sim.Time
	capp, err := client.OpenUDP(UDPAppOptions{}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		task.Charge(client.Host.Costs.AppHandler)
		recvTime = task.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("client", func(task *sim.Task) {
		sendTime = task.Now()
		_ = capp.Send(task, server.Addr(), 7, []byte("12345678"))
	})
	n.Sim.Run()
	loaded := recvTime - sendTime
	t.Logf("base=%v with-50-endpoints=%v", base, loaded)
	if loaded > base+60*sim.Microsecond {
		t.Errorf("50 extra guards added %v; guards are too expensive", loaded-base)
	}
}
