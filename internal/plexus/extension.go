package plexus

// Extension handles: atomic install and atomic unload of application
// extensions. The paper installs extensions through the dynamic linker
// (internal/domain) and never says what happens when one is removed while
// its bindings, timers, and packet buffers are live — this file answers
// that: an Extension owns every resource its install created, installation
// is all-or-nothing (rollback on partial failure), and Unload tears all of
// it down and accounts for leaked mbufs against an install-time pool
// baseline.

import (
	"errors"
	"fmt"

	"plexus/internal/domain"
	"plexus/internal/event"
	"plexus/internal/sim"
)

// ErrExtensionUnloaded reports a second Unload of the same extension.
var ErrExtensionUnloaded = errors.New("plexus: extension already unloaded")

// ExtensionSpec describes an application extension for atomic installation.
type ExtensionSpec struct {
	// Name identifies the extension in errors and diagnostics.
	Name string
	// Imports are resolved against the extension domain (or the kernel
	// domain when Privileged); any missing symbol rejects the install.
	Imports []domain.Symbol
	// Exports are published into the domain on success, removed at unload.
	Exports map[domain.Symbol]any
	// Privileged links against the full kernel domain ("few extensions
	// have access to this domain").
	Privileged bool
	// Install runs at link time with the resolved imports available via
	// the context. Every binding, timer, and closer it registers on the
	// context is owned by the returned Extension; if Install returns an
	// error, everything registered so far is rolled back and the
	// extension is not linked.
	Install func(ctx *ExtensionCtx) error
}

// ExtensionCtx is the installation context handed to ExtensionSpec.Install.
// Resources registered here are torn down together — on rollback when the
// install fails partway, or on Extension.Unload.
type ExtensionCtx struct {
	ext      *Extension
	resolved map[domain.Symbol]any
}

// Stack returns the stack the extension is being installed into.
func (c *ExtensionCtx) Stack() *Stack { return c.ext.st }

// Resolve returns the value a named import was bound to at link time.
func (c *ExtensionCtx) Resolve(sym domain.Symbol) (any, bool) {
	v, ok := c.resolved[sym]
	return v, ok
}

// Adopt records a binding (typically returned by a protocol manager's
// install call) as owned by the extension: it is uninstalled on rollback
// and unload.
func (c *ExtensionCtx) Adopt(b *event.Binding) {
	if b != nil {
		c.ext.bindings = append(c.ext.bindings, b)
	}
}

// After schedules fn once after d of simulated time; the pending timer is
// owned by the extension and cancelled at unload.
func (c *ExtensionCtx) After(d sim.Time, label string, fn func()) sim.Timer {
	tm := c.ext.st.Host.Sim.After(d, label, fn)
	c.AdoptTimer(tm)
	return tm
}

// AdoptTimer records a timer as owned by the extension.
func (c *ExtensionCtx) AdoptTimer(tm sim.Timer) {
	c.ext.timers = append(c.ext.timers, tm)
}

// Every schedules fn to run each period of simulated time until the
// extension is unloaded.
func (c *ExtensionCtx) Every(period sim.Time, label string, fn func()) {
	tk := &extTicker{ext: c.ext, period: period, label: label, fn: fn}
	c.ext.tickers = append(c.ext.tickers, tk)
	tk.timer = c.ext.st.Host.Sim.After(period, label, tk.fire)
}

// OnUnload registers a cleanup function (close an endpoint, release a
// buffer). Closers run in reverse registration order at rollback/unload.
func (c *ExtensionCtx) OnUnload(fn func()) {
	if fn != nil {
		c.ext.closers = append(c.ext.closers, fn)
	}
}

// extTicker is a periodic extension timer; unload stops the live timer and
// prevents rescheduling.
type extTicker struct {
	ext     *Extension
	period  sim.Time
	label   string
	fn      func()
	timer   sim.Timer
	stopped bool
}

func (tk *extTicker) fire() {
	if tk.stopped {
		return
	}
	tk.fn()
	if tk.stopped { // fn may have unloaded the extension
		return
	}
	tk.timer = tk.ext.st.Host.Sim.After(tk.period, tk.label, tk.fire)
}

// stop cancels the ticker; reports whether a timer fire was still pending.
func (tk *extTicker) stop() bool {
	tk.stopped = true
	return tk.timer.Stop()
}

// Extension is an installed application extension: the handle that owns its
// bindings, timers, and cleanup actions, and the capability to unload them
// atomically.
type Extension struct {
	name     string
	st       *Stack
	linked   *domain.Linked
	bindings []*event.Binding
	timers   []sim.Timer
	tickers  []*extTicker
	closers  []func()
	// baseInUse is the pool's live-mbuf count at install: the baseline
	// Unload compares against to detect leaks.
	baseInUse int64
	unloaded  bool
}

// Name returns the extension's name.
func (e *Extension) Name() string { return e.name }

// Unloaded reports whether Unload has run.
func (e *Extension) Unloaded() bool { return e.unloaded }

// Bindings returns the bindings the extension owns (handles stay readable
// after unload).
func (e *Extension) Bindings() []*event.Binding {
	return append([]*event.Binding(nil), e.bindings...)
}

// ExtensionStats aggregates dispatch and fault counters across the
// extension's bindings.
type ExtensionStats struct {
	Bindings      int
	Quarantined   int // bindings ejected by the dispatcher's quarantine
	Invocations   uint64
	Faults        uint64
	Panics        uint64
	GuardPanics   uint64
	Terminations  uint64
	GuardOverruns uint64
}

// Stats returns the extension's aggregated counters.
func (e *Extension) Stats() ExtensionStats {
	st := ExtensionStats{Bindings: len(e.bindings)}
	for _, b := range e.bindings {
		if b.Quarantined() {
			st.Quarantined++
		}
		s := b.Stats()
		st.Invocations += s.Invocations
		st.Faults += s.Faults()
		st.Panics += s.Panics
		st.GuardPanics += s.GuardPanics
		st.Terminations += s.Terminations
		st.GuardOverruns += s.GuardOverruns
	}
	return st
}

// UnloadReport accounts for what Unload tore down.
type UnloadReport struct {
	// Bindings is how many actively dispatching bindings were uninstalled.
	Bindings int
	// Quarantined is how many of the extension's bindings the dispatcher
	// had already ejected before the unload.
	Quarantined int
	// TimersStopped counts pending timers and tickers cancelled.
	TimersStopped int
	// ClosersRun counts OnUnload cleanups executed.
	ClosersRun int
	// LeakedMbufs is the pool's live-mbuf delta versus the install-time
	// baseline, measured after every closer has run. At quiesce (no
	// unrelated packets in flight) a well-behaved extension reports 0;
	// mid-traffic the delta includes frames owned by others, so treat it
	// as a diagnostic only when the host is idle.
	LeakedMbufs int64
}

// Unload atomically removes the extension: uninstalls every binding, stops
// every timer, runs the registered closers in reverse order, unlinks the
// exports from the domain, and reports the pool-accounting delta. A second
// Unload returns ErrExtensionUnloaded.
func (e *Extension) Unload() (UnloadReport, error) {
	if e.unloaded {
		return UnloadReport{}, fmt.Errorf("%w: %s", ErrExtensionUnloaded, e.name)
	}
	e.unloaded = true
	var r UnloadReport
	for _, b := range e.bindings {
		if b.Quarantined() {
			r.Quarantined++
		}
		if e.st.Host.Disp.Uninstall(b) {
			r.Bindings++
		}
	}
	for _, tk := range e.tickers {
		if tk.stop() {
			r.TimersStopped++
		}
	}
	for _, tm := range e.timers {
		if tm.Stop() {
			r.TimersStopped++
		}
	}
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
		r.ClosersRun++
	}
	r.LeakedMbufs = e.st.Host.Pool.Stats().InUse - e.baseInUse
	if e.linked != nil {
		if err := e.linked.Unlink(); err != nil {
			return r, fmt.Errorf("plexus: extension %s: %w", e.name, err)
		}
	}
	return r, nil
}

// rollback tears down a partially installed extension (install-failure
// path): same teardown as Unload, minus the unlink (the link never
// completed) and the report.
func (e *Extension) rollback() {
	e.unloaded = true
	for _, b := range e.bindings {
		e.st.Host.Disp.Uninstall(b)
	}
	for _, tk := range e.tickers {
		tk.stop()
	}
	for _, tm := range e.timers {
		tm.Stop()
	}
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
	}
}

// InstallExtension atomically installs an application extension: the
// imports are resolved against the protection domain, the spec's Install
// runs with them, and either everything it created is live on return or —
// on any failure — everything is rolled back and an error is returned.
func (st *Stack) InstallExtension(spec ExtensionSpec) (*Extension, error) {
	ext := &Extension{
		name:      spec.Name,
		st:        st,
		baseInUse: st.Host.Pool.Stats().InUse,
	}
	ctx := &ExtensionCtx{ext: ext}
	dext := &domain.Extension{
		Name:    spec.Name,
		Imports: spec.Imports,
		Exports: spec.Exports,
		Init: func(resolved map[domain.Symbol]any) error {
			ctx.resolved = resolved
			if spec.Install == nil {
				return nil
			}
			return spec.Install(ctx)
		},
	}
	against := st.Host.ExtensionDomain
	if spec.Privileged {
		against = st.Host.KernelDomain
	}
	linked, err := domain.Link(dext, against, against)
	if err != nil {
		ext.rollback()
		return nil, fmt.Errorf("plexus: extension %q: %w", spec.Name, err)
	}
	ext.linked = linked
	return ext, nil
}
