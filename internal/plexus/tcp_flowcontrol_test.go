package plexus

import (
	"bytes"
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/sim"
)

// A paused receiver closes its advertised window; the sender must stall,
// enter persist mode (zero-window probes), and complete the transfer after
// the receiver resumes. This is the flow-control path the bulk benchmarks
// never exercise.
func TestTCPZeroWindowPersist(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var rcvd bytes.Buffer
	var serverConn *TCPApp
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv: func(task *sim.Task, conn *TCPApp, data []byte) {
			rcvd.Write(data)
		},
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, func(task *sim.Task, conn *TCPApp) {
		serverConn = conn
		// Stop consuming immediately: the window will fill and close.
		conn.Conn().SetRecvPaused(task, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	size := 256 << 10 // 4x the 64KB window
	msg := make([]byte, size)
	for i := range msg {
		msg[i] = byte(i * 17)
	}
	var clientConn *TCPApp
	client.Spawn("client", func(task *sim.Task) {
		clientConn, err = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	// Let the window fill and the sender sit in persist for a while.
	n.Sim.RunUntil(30 * sim.Second)
	if serverConn == nil || clientConn == nil {
		t.Fatal("connection never established")
	}
	buffered := serverConn.Conn().RecvBuffered()
	if buffered < 60<<10 {
		t.Fatalf("receiver buffered only %d bytes; window never filled", buffered)
	}
	if rcvd.Len() != 0 {
		t.Fatalf("paused receiver delivered %d bytes to the app", rcvd.Len())
	}
	probes := clientConn.Conn().Stats().WindowProbes
	if probes == 0 {
		t.Fatal("sender sent no zero-window probes while stalled")
	}
	t.Logf("stalled at %d bytes buffered, %d window probes sent", buffered, probes)

	// Resume: the rest of the stream must flow and arrive intact.
	server.Host.CPU.Submit(sim.PrioKernel, "resume", func(task *sim.Task) {
		serverConn.Conn().SetRecvPaused(task, false)
	})
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if !bytes.Equal(rcvd.Bytes(), msg) {
		t.Fatalf("stream corrupted after persist recovery: %d/%d bytes", rcvd.Len(), size)
	}
}

// Pausing and resuming repeatedly mid-stream must not lose or reorder bytes.
func TestTCPPauseResumeChurn(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var rcvd bytes.Buffer
	var serverConn *TCPApp
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv: func(task *sim.Task, conn *TCPApp, data []byte) {
			rcvd.Write(data)
		},
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, func(task *sim.Task, conn *TCPApp) { serverConn = conn })
	if err != nil {
		t.Fatal(err)
	}
	size := 128 << 10
	msg := make([]byte, size)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	client.Spawn("client", func(task *sim.Task) {
		_, _ = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	// Toggle the receiver every 100ms for a while.
	for i := 1; i <= 20; i++ {
		paused := i%2 == 1
		at := sim.Time(i) * 100 * sim.Millisecond
		n.Sim.At(at, "toggle", func() {
			server.Host.CPU.Submit(sim.PrioKernel, "toggle", func(task *sim.Task) {
				if serverConn != nil && serverConn.Conn() != nil {
					serverConn.Conn().SetRecvPaused(task, paused)
				}
			})
		})
	}
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if !bytes.Equal(rcvd.Bytes(), msg) {
		t.Fatalf("stream corrupted under pause/resume churn: %d/%d bytes", rcvd.Len(), size)
	}
}
