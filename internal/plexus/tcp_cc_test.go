package plexus

// End-to-end ladder tests for the congestion-control plane, on a real wire
// with the fault-injection plane supplying the losses. These complement the
// white-box policy tests in internal/tcp: NewReno's partial-ACK ladder, the
// SACK scoreboard surviving a lost retransmission, the delayed-ACK clock
// leaking into Karn/Jacobson RTT estimates, the RFC 793 WL1/WL2 freshness
// rule under genuine reordering, and the CUBIC/BBR algorithms carrying a
// lossy transfer end to end.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/tcp"
)

// ccSpec is spinSpec with a congestion-control algorithm selected.
func ccSpec(name, algo string) HostSpec {
	sp := spinSpec(name)
	sp.CC = algo
	return sp
}

// ccTransfer is recoveryTransfer generalised over host specs: a one-way
// transfer under a prepared injector, returning the sender's stats, its
// connection, and the received byte count.
func ccTransfer(t *testing.T, a, b HostSpec, size int, horizon sim.Time, noSack bool, prepare func(*Network, *fault.Injector)) (*tcp.Conn, int, *Network) {
	t.Helper()
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.Attach(n.Sim, n.Link)
	if prepare != nil {
		prepare(n, in)
	}
	var got int
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sender *TCPApp
	msg := make([]byte, size)
	client.Spawn("client", func(task *sim.Task) {
		sender, err = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			NoSack: noSack,
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	n.Sim.RunUntil(horizon)
	if sender == nil || sender.Conn() == nil {
		t.Fatal("connection never established")
	}
	return sender.Conn(), got, n
}

// dropNths kills the Kth, then the Lth, ... data-bearing frame (≥1000 wire
// bytes), counting every qualifying frame including retransmissions.
type dropNths struct {
	ks   []int
	seen int
}

func (d *dropNths) Drop(rng *rand.Rand, wire []byte) bool {
	if len(wire) < 1000 {
		return false
	}
	d.seen++
	for _, k := range d.ks {
		if d.seen == k {
			return true
		}
	}
	return false
}

// Two segments lost from the same flight, with SACK withheld so recovery
// runs on cumulative ACKs alone: NewReno enters fast recovery on the first
// loss, and the ACK for its retransmission is only *partial* — it advances
// una to the second hole, not to snd.recover. RFC 6582 demands the partial
// ACK immediately retransmit the next hole and stay in recovery, so the
// whole episode costs one fast-recovery entry, at least one partial ACK,
// and no RTO.
func TestNewRenoPartialAckLadder(t *testing.T) {
	const size = 64 << 10
	conn, got, _ := ccTransfer(t, spinSpec("a"), spinSpec("b"), size, 60*sim.Second, true,
		func(n *Network, in *fault.Injector) {
			in.Lose(&dropNths{ks: []int{10, 12}})
		})
	cs := conn.Stats()
	if got != size {
		t.Fatalf("transfer incomplete: %d/%d", got, size)
	}
	if cs.FastRecoveries != 1 {
		t.Errorf("FastRecoveries = %d, want 1 (both holes inside one episode)", cs.FastRecoveries)
	}
	if cs.PartialAcks == 0 {
		t.Error("PartialAcks = 0; the second hole should have produced a partial ACK")
	}
	if cs.RTOExpiries != 0 {
		t.Errorf("RTOExpiries = %d; the partial-ACK ladder should have beaten the timer", cs.RTOExpiries)
	}
}

// dropSeqTwice kills the Kth data-bearing frame and then the first
// retransmission carrying the same sequence number — the scoreboard's
// hardest case, a lost retransmission inside fast recovery.
type dropSeqTwice struct {
	k      int
	seen   int
	armed  bool
	target uint32
	drops  int
}

func (d *dropSeqTwice) Drop(rng *rand.Rand, wire []byte) bool {
	if len(wire) < 1000 {
		return false
	}
	// Ethernet 14B + IPv4 20B; the TCP sequence number sits 4B into the
	// transport header.
	seq := binary.BigEndian.Uint32(wire[14+20+4:])
	if d.armed {
		if d.drops < 2 && seq == d.target {
			d.drops++
			return true
		}
		return false
	}
	d.seen++
	if d.seen == d.k {
		d.armed, d.target, d.drops = true, seq, 1
		return true
	}
	return false
}

// Retransmit-lost-retransmit: the scoreboard keeps reporting the hole after
// the first repair attempt dies on the wire, so the sender must repair it
// again — the transfer completes and the victim sequence number is sent
// three times in total (original plus two repairs).
func TestSackRetransmitLostRetransmit(t *testing.T) {
	const size = 64 << 10
	conn, got, _ := ccTransfer(t, spinSpec("a"), spinSpec("b"), size, 120*sim.Second, false,
		func(n *Network, in *fault.Injector) {
			in.Lose(&dropSeqTwice{k: 10})
		})
	cs := conn.Stats()
	if got != size {
		t.Fatalf("transfer incomplete after lost retransmission: %d/%d", got, size)
	}
	if cs.Retransmits < 2 {
		t.Errorf("Retransmits = %d, want >= 2 (the hole was repaired twice)", cs.Retransmits)
	}
	if cs.SacksRcvd == 0 {
		t.Error("SacksRcvd = 0; SACK negotiation failed")
	}
	if cs.SackRexmits == 0 {
		t.Error("SackRexmits = 0; the scoreboard never drove a selective retransmission")
	}
}

// A trickle sender — one small segment every 250ms — never gives the
// receiver a second segment to ACK immediately, so every ACK waits out the
// 200ms delayed-ACK timer. Karn/Jacobson sampling cannot tell queueing from
// deliberation: the delay lands in SRTT, which is exactly why the RTO floor
// must exceed the peer's delayed-ACK timer.
func TestDelayedAckInflatesRTTEstimate(t *testing.T) {
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spinSpec("a"), spinSpec("b"))
	if err != nil {
		t.Fatal(err)
	}
	var got int
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const chunks, chunk = 20, 100
	var sender *TCPApp
	chunkData := make([]byte, chunk)
	client.Spawn("trickle", func(task *sim.Task) {
		sender, err = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(t2, chunkData)
			},
		})
		if err != nil {
			t.Errorf("connect: %v", err)
		}
	})
	for i := 1; i < chunks; i++ {
		at := sim.Time(i) * 250 * sim.Millisecond
		last := i == chunks-1
		client.SpawnAt(at, fmt.Sprintf("trickle-%d", i), func(task *sim.Task) {
			_ = sender.Send(task, chunkData)
			if last {
				sender.Close(task)
			}
		})
	}
	n.Sim.RunUntil(30 * sim.Second)
	if got != chunks*chunk {
		t.Fatalf("transfer incomplete: %d/%d", got, chunks*chunk)
	}
	if da := server.TCP.Stats().DelayedAcks; da == 0 {
		t.Error("DelayedAcks = 0 on the receiver; the delayed-ACK timer never fired")
	}
	cs := sender.Conn().Stats()
	if cs.Retransmits != 0 {
		t.Errorf("Retransmits = %d on a lossless trickle; delayed ACKs must not trip the RTO", cs.Retransmits)
	}
	if srtt := sender.Conn().SRTT(); srtt < 150*sim.Millisecond {
		t.Errorf("SRTT = %v; the 200ms delayed-ACK clock should dominate a ~µs-RTT wire", srtt)
	}
}

// Heavy per-frame jitter reorders segments in both directions. The WL1/WL2
// freshness rule (RFC 793) must refuse the late-arriving window
// advertisements — each refusal is a segment that would previously have
// rolled the send window backwards — and the transfer still completes.
func TestWindowFreshnessUnderReordering(t *testing.T) {
	const size = 256 << 10
	conn, got, _ := ccTransfer(t, spinSpec("a"), spinSpec("b"), size, 120*sim.Second, false,
		func(n *Network, in *fault.Injector) {
			in.Delay(fault.Jitter{P: 0.5, Max: 2 * sim.Millisecond})
		})
	cs := conn.Stats()
	if got != size {
		t.Fatalf("transfer incomplete under reordering: %d/%d", got, size)
	}
	if cs.StaleWndUpdates == 0 {
		t.Error("StaleWndUpdates = 0 under heavy reordering; the freshness rule never engaged")
	}
}

// CUBIC and BBR must each carry a transfer across a lossy wire end to end,
// selected purely through the host spec.
func TestAlternateAlgorithmsLossyTransfer(t *testing.T) {
	for _, algo := range []string{"cubic", "bbr"} {
		t.Run(algo, func(t *testing.T) {
			const size = 256 << 10
			conn, got, _ := ccTransfer(t, ccSpec("a", algo), spinSpec("b"), size, 300*sim.Second, false,
				func(n *Network, in *fault.Injector) {
					in.Lose(fault.MinSize{N: 1000, M: fault.Bernoulli{P: 0.01}})
				})
			if name := conn.CCName(); name != algo {
				t.Fatalf("CCName() = %q, want %q", name, algo)
			}
			if got != size {
				t.Fatalf("transfer incomplete: %d/%d", got, size)
			}
			if cs := conn.Stats(); cs.Retransmits == 0 {
				t.Errorf("Retransmits = 0 under 1%% loss; the faults never landed")
			}
		})
	}
}
