package plexus

import (
	"bytes"
	"fmt"
	"testing"

	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// The two personalities interoperate on the wire: a SPIN client against a
// monolithic server and vice versa (the paper's measurements pair like with
// like, but the protocols are identical, so mixed pairs must work).
func TestCrossPersonalityInterop(t *testing.T) {
	combos := []struct {
		name   string
		client osmodel.Personality
		server osmodel.Personality
	}{
		{"spin->dux", osmodel.SPIN, osmodel.Monolithic},
		{"dux->spin", osmodel.Monolithic, osmodel.SPIN},
	}
	for _, combo := range combos {
		t.Run(combo.name, func(t *testing.T) {
			n, client, server, err := TwoHosts(1, netdev.EthernetModel(),
				HostSpec{Name: "client", Personality: combo.client},
				HostSpec{Name: "server", Personality: combo.server})
			if err != nil {
				t.Fatal(err)
			}
			// UDP echo.
			var echo *UDPApp
			echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
				_ = echo.Send(task, src, srcPort, data)
			})
			if err != nil {
				t.Fatal(err)
			}
			var udpGot []byte
			capp, err := client.OpenUDP(UDPAppOptions{}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
				udpGot = data
			})
			if err != nil {
				t.Fatal(err)
			}
			// TCP echo.
			_, err = server.ListenTCP(80, TCPAppOptions{
				OnRecv:    func(task *sim.Task, conn *TCPApp, data []byte) { _ = conn.Send(task, data) },
				OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			var tcpGot bytes.Buffer
			client.Spawn("apps", func(task *sim.Task) {
				_ = capp.Send(task, server.Addr(), 7, []byte("udp-x"))
				_, _ = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
					OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
						_ = conn.Send(t2, []byte("tcp-x"))
					},
					OnRecv: func(t2 *sim.Task, conn *TCPApp, data []byte) {
						tcpGot.Write(data)
						conn.Close(t2)
					},
				})
			})
			n.Sim.RunUntil(5 * 60 * sim.Second)
			if string(udpGot) != "udp-x" {
				t.Errorf("UDP echo = %q", udpGot)
			}
			if tcpGot.String() != "tcp-x" {
				t.Errorf("TCP echo = %q", tcpGot.String())
			}
		})
	}
}

// Ten clients hammer one server concurrently over TCP; every stream arrives
// intact, and nothing leaks.
func TestManyClientsOneServer(t *testing.T) {
	const clients = 10
	specs := []HostSpec{{Name: "server", Personality: osmodel.SPIN}}
	for i := 0; i < clients; i++ {
		specs = append(specs, HostSpec{Name: fmt.Sprintf("c%d", i), Personality: osmodel.SPIN})
	}
	n, err := NewNetwork(1, netdev.ForeATMModel(), specs)
	if err != nil {
		t.Fatal(err)
	}
	n.PrimeARP()
	server := n.Hosts[0]

	received := map[string]*bytes.Buffer{}
	_, err = server.ListenTCP(80, TCPAppOptions{
		OnRecv: func(task *sim.Task, conn *TCPApp, data []byte) {
			addr, port := conn.Conn().RemoteAddr()
			key := fmt.Sprintf("%v:%d", addr, port)
			if received[key] == nil {
				received[key] = &bytes.Buffer{}
			}
			received[key].Write(data)
		},
		OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const perClient = 50 << 10
	want := map[string][]byte{}
	for i := 0; i < clients; i++ {
		i := i
		cl := n.Hosts[i+1]
		msg := make([]byte, perClient)
		for j := range msg {
			msg[j] = byte(i*31 + j*7)
		}
		// Stagger starts slightly so handshakes interleave.
		cl.SpawnAt(sim.Time(i)*3*sim.Millisecond, "client", func(task *sim.Task) {
			conn, err := cl.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
				OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
					_ = conn.Send(t2, msg)
					conn.Close(t2)
				},
			})
			if err != nil {
				t.Errorf("client %d connect: %v", i, err)
				return
			}
			addr, _ := conn.Conn().RemoteAddr()
			_ = addr
			want[fmt.Sprintf("%v:%d", cl.Addr(), conn.Conn().LocalPort())] = msg
		})
	}
	n.Sim.RunUntil(10 * 60 * sim.Second)
	if len(received) != clients {
		t.Fatalf("server saw %d connections, want %d", len(received), clients)
	}
	for key, msg := range want {
		got, ok := received[key]
		if !ok {
			t.Errorf("stream %s missing", key)
			continue
		}
		if !bytes.Equal(got.Bytes(), msg) {
			t.Errorf("stream %s corrupted: %d/%d bytes", key, got.Len(), len(msg))
		}
	}
	for _, h := range n.Hosts {
		if inuse := h.Host.Pool.Stats().InUse; inuse != 0 {
			t.Errorf("%s leaked %d mbufs", h.Name(), inuse)
		}
	}
}

// Determinism: the same seed produces bit-identical outcomes — the property
// every calibrated number in EXPERIMENTS.md rests on.
func TestSimulationDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		n, client, server, err := TwoHosts(99, netdev.EthernetModel(), spinSpec("a"), duxSpec("b"))
		if err != nil {
			t.Fatal(err)
		}
		fault.Attach(n.Sim, n.Link).Lose(&fault.EveryNth{N: 9})
		var rcvd int
		var last sim.Time
		_, err = server.ListenTCP(80, TCPAppOptions{
			OnRecv: func(task *sim.Task, conn *TCPApp, data []byte) {
				rcvd += len(data)
				last = task.Now()
			},
			OnPeerFin: func(task *sim.Task, conn *TCPApp) { conn.Close(task) },
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		client.Spawn("client", func(task *sim.Task) {
			_, _ = client.ConnectTCP(task, server.Addr(), 80, TCPAppOptions{
				OnEstablished: func(t2 *sim.Task, conn *TCPApp) {
					_ = conn.Send(t2, make([]byte, 100<<10))
					conn.Close(t2)
				},
			})
		})
		n.Sim.RunUntil(5 * 60 * sim.Second)
		return last, uint64(rcvd), n.Sim.Executed()
	}
	t1, r1, e1 := run()
	t2, r2, e2 := run()
	if t1 != t2 || r1 != r2 || e1 != e2 {
		t.Fatalf("nondeterminism: (%v,%d,%d) vs (%v,%d,%d)", t1, r1, e1, t2, r2, e2)
	}
	if r1 != 100<<10 {
		t.Fatalf("transfer incomplete: %d", r1)
	}
}
