package plexus

import (
	"bytes"
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/telemetry"
	"plexus/internal/view"
)

// TestUDPEchoSteadyStateAllocsWithTelemetry is the alloc_test.go pin with the
// telemetry plane live: sampling the link, both pools, both TCP managers, and
// the event queue on a 10µs interval (dozens of ticks per pinned round) must
// add zero allocations to the steady-state UDP echo round.
func TestUDPEchoSteadyStateAllocsWithTelemetry(t *testing.T) {
	spec := func(name string) HostSpec {
		return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	}
	n, client, server, err := TwoHosts(1, netdev.EthernetModel(), spec("client"), spec("server"))
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Monitor(MonitorOptions{
		Telemetry:      telemetry.Options{Interval: 10 * sim.Microsecond, SeriesCap: 256},
		TCPStallWindow: sim.Second,
		PoolCap:        1 << 20,
	})

	var echo *UDPApp
	echo, err = server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(tk, src, srcPort, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	rounds := 0
	var capp *UDPApp
	capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		rounds++
		_ = capp.Send(tk, server.Addr(), 7, msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, server.Addr(), 7, msg) })

	runRounds := func(k int) {
		target := rounds + k
		for rounds < target {
			if !n.Sim.Step() {
				t.Fatal("simulation drained before completing echo rounds")
			}
		}
	}
	// Warm up: free lists plus enough ticks to wrap every series episode.
	runRounds(64)
	warmTicks := eng.Ticks()
	if warmTicks == 0 {
		t.Fatal("telemetry never ticked during warmup")
	}

	avg := testing.AllocsPerRun(100, func() { runRounds(1) })
	if avg != 0 {
		t.Fatalf("steady-state UDP echo round with telemetry allocates %.2f/iter, want 0", avg)
	}
	if eng.Ticks() == warmTicks {
		t.Fatal("no telemetry ticks fired inside the pinned window — the pin proved nothing")
	}
	if eng.AlarmTotal() != 0 {
		t.Fatalf("clean path raised %d watchdog alarms: %+v", eng.AlarmTotal(), eng.Alarms())
	}
}

// monitoredBulkDump runs one fixed TCP bulk transfer under a Monitor and
// returns the telemetry JSONL plus digest.
func monitoredBulkDump(t *testing.T) ([]byte, uint64) {
	t.Helper()
	spec := func(name string) HostSpec {
		return HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	}
	n, client, server, err := TwoHosts(3, netdev.EthernetModel(), spec("a"), spec("b"))
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Monitor(MonitorOptions{
		Telemetry:      telemetry.Options{Interval: sim.Millisecond},
		TCPStallWindow: 5 * sim.Second,
		PoolCap:        1 << 20,
	})
	got := 0
	_, err = server.ListenTCP(5001, TCPAppOptions{
		OnRecv:    func(tk *sim.Task, conn *TCPApp, data []byte) { got += len(data) },
		OnPeerFin: func(tk *sim.Task, conn *TCPApp) { conn.Close(tk) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64<<10)
	client.Spawn("sender", func(tk *sim.Task) {
		_, _ = client.ConnectTCP(tk, server.Addr(), 5001, TCPAppOptions{
			OnEstablished: func(tk2 *sim.Task, conn *TCPApp) {
				_ = conn.Send(tk2, msg)
				conn.Close(tk2)
			},
		})
	})
	n.Sim.RunUntil(10 * sim.Second)
	if got != len(msg) {
		t.Fatalf("bulk transfer delivered %d of %d bytes", got, len(msg))
	}
	if eng.AlarmTotal() != 0 {
		t.Fatalf("clean bulk transfer raised alarms: %+v", eng.Alarms())
	}
	var buf bytes.Buffer
	if err := eng.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), eng.Digest()
}

// TestMonitorBulkTransferDeterministic: two identical monitored runs produce
// byte-identical telemetry, and the per-connection TCP series carry real data.
func TestMonitorBulkTransferDeterministic(t *testing.T) {
	b1, d1 := monitoredBulkDump(t)
	b2, d2 := monitoredBulkDump(t)
	if !bytes.Equal(b1, b2) || d1 != d2 {
		t.Fatalf("telemetry dumps differ across identical runs (digest %x vs %x)", d1, d2)
	}
	pts, err := telemetry.ReadJSONL(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	var sawCwnd, sawAcked bool
	for _, p := range pts {
		series[p.Series] = true
		if p.Series == "tcp.cwnd" && p.V > 0 {
			sawCwnd = true
		}
		if p.Series == "tcp.acked_bytes" && p.V >= 64<<10 {
			sawAcked = true
		}
	}
	for _, want := range []string{"link.tx_bytes", "mbuf.in_use", "sim.queue_depth", "tcp.cwnd", "tcp.acked_bytes", "tcp.srtt_ns"} {
		if !series[want] {
			t.Fatalf("series %q missing from dump (have %v)", want, series)
		}
	}
	if !sawCwnd || !sawAcked {
		t.Fatalf("TCP series carried no data: cwnd=%v acked=%v", sawCwnd, sawAcked)
	}
}

// TestShardedMonitorDeterministicAcrossWorkers: per-shard sampling engines
// produce identical series content (witnessed by the merged digest and the
// per-engine dumps) at any worker count.
func TestShardedMonitorDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([][]byte, uint64) {
		top, client, server := shardedPair(t, 1)
		engines := top.Monitor(MonitorOptions{
			Telemetry:       telemetry.Options{Interval: sim.Millisecond},
			PoolCap:         1 << 20,
			SwitchPinWindow: 100 * sim.Millisecond,
		})
		var echo *UDPApp
		echo, err := server.OpenUDP(UDPAppOptions{Port: 7}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = echo.Send(tk, src, srcPort, data)
		})
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 32)
		var capp *UDPApp
		capp, err = client.OpenUDP(UDPAppOptions{}, func(tk *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			_ = capp.Send(tk, server.Addr(), 7, msg)
		})
		if err != nil {
			t.Fatal(err)
		}
		client.Spawn("kick", func(tk *sim.Task) { _ = capp.Send(tk, server.Addr(), 7, msg) })
		top.Run(50*sim.Millisecond, workers)

		dumps := make([][]byte, len(engines))
		for i, e := range engines {
			var buf bytes.Buffer
			if err := e.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			dumps[i] = buf.Bytes()
			if e.Ticks() == 0 {
				t.Fatalf("engine %d never ticked", i)
			}
		}
		return dumps, MergedDigest(engines)
	}
	baseDumps, baseDigest := run(1)
	for _, workers := range []int{2, 4} {
		dumps, digest := run(workers)
		if digest != baseDigest {
			t.Fatalf("workers=%d digest %x, want %x", workers, digest, baseDigest)
		}
		for i := range dumps {
			if !bytes.Equal(dumps[i], baseDumps[i]) {
				t.Fatalf("workers=%d shard %d dump differs", workers, i)
			}
		}
	}
}
