package plexus

// Monitor helpers: one call attaches the standard whole-system probe set —
// link, mbuf pools, per-connection TCP, event-queue depth, and (sharded) the
// per-segment switches — to a telemetry engine and starts sampling. Probes
// attach in topology order, which is fixed at construction, so the engine's
// exports and digest are byte-identical at any -parallel or -shards setting.

import (
	"plexus/internal/sim"
	"plexus/internal/telemetry"
)

// MonitorOptions configures Monitor.
type MonitorOptions struct {
	// Telemetry configures the engine (zero value = 1ms interval, 2048-point
	// rings).
	Telemetry telemetry.Options
	// TCPStallWindow arms the per-connection no-progress watchdog (0 = off).
	TCPStallWindow sim.Time
	// PoolCap, when nonzero, arms the mbuf near-cap watchdog on every host
	// pool. The simulated pool is unbounded, so the cap is the monitoring
	// policy, not an enforcement limit.
	PoolCap int64
	// SwitchPinWindow arms the per-port queue-pinned watchdog on sharded
	// topologies (0 = off).
	SwitchPinWindow sim.Time
}

// Monitor attaches the standard probe set to every host in the network and
// starts sampling: the shared link, each host's mbuf pool and TCP
// connections, and the simulator's event-queue depth.
func (n *Network) Monitor(opts MonitorOptions) *telemetry.Engine {
	e := telemetry.New(n.Sim, opts.Telemetry)
	telemetry.AttachSimQueue(e, "net", n.Sim)
	telemetry.AttachLink(e, "link", n.Link)
	for _, h := range n.Hosts {
		telemetry.AttachPool(e, h.Name(), h.Host.Pool, opts.PoolCap)
		telemetry.AttachTCP(e, h.TCP, telemetry.TCPOptions{StallWindow: opts.TCPStallWindow})
	}
	e.Start()
	return e
}

// Monitor attaches one telemetry engine per shard — each samples only state
// owned by its shard's simulator, so sampling adds no cross-shard traffic
// and stays race-free at any worker count — and starts them all. Engines
// come back in shard order: the gateway first, then one per segment.
func (top *ShardedTopology) Monitor(opts MonitorOptions) []*telemetry.Engine {
	engines := make([]*telemetry.Engine, 0, len(top.Sims))

	gw := telemetry.New(top.GatewaySim, opts.Telemetry)
	telemetry.AttachSimQueue(gw, "gw", top.GatewaySim)
	for _, iface := range top.Gateway.Ifaces {
		telemetry.AttachPool(gw, iface.Name(), iface.Host.Pool, opts.PoolCap)
		telemetry.AttachTCP(gw, iface.TCP, telemetry.TCPOptions{StallWindow: opts.TCPStallWindow})
	}
	gw.Start()
	engines = append(engines, gw)

	for si, seg := range top.Segments {
		e := telemetry.New(top.Sims[si+1], opts.Telemetry)
		telemetry.AttachSimQueue(e, seg.Name, top.Sims[si+1])
		telemetry.AttachSwitch(e, seg.Switch, opts.SwitchPinWindow)
		for _, h := range seg.Hosts {
			telemetry.AttachPool(e, h.Name(), h.Host.Pool, opts.PoolCap)
			telemetry.AttachTCP(e, h.TCP, telemetry.TCPOptions{StallWindow: opts.TCPStallWindow})
		}
		e.Start()
		engines = append(engines, e)
	}
	return engines
}

// MergedDigest folds per-shard engine digests into one determinism witness,
// order-sensitively (shard order is fixed by the topology).
func MergedDigest(engines []*telemetry.Engine) uint64 {
	var d uint64 = 1469598103934665603 // FNV-1a offset basis
	for _, e := range engines {
		x := e.Digest()
		for i := 0; i < 8; i++ {
			d ^= x >> (8 * i) & 0xff
			d *= 1099511628211
		}
	}
	return d
}
