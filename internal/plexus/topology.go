// Multi-segment topologies: several subnets — each a shared bus or a
// switched star — joined by a gateway host that runs the in-kernel IP
// forwarding path on one shared CPU. This is the fabric the scale
// experiments run on: NewNetwork's single shared link models the paper's
// two-machine testbeds, NewTopology models the machine room around them.
package plexus

import (
	"fmt"

	"plexus/internal/fabric"
	"plexus/internal/filter"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// gatewayHostByte is the last address byte reserved for the gateway's
// interface on every subnet.
const gatewayHostByte = 254

// SegmentSpec describes one subnet of a topology.
type SegmentSpec struct {
	Name  string
	Model netdev.Model
	// Switched selects a switched star (one cable per host into a
	// netdev.Switch) instead of a shared broadcast bus.
	Switched bool
	// Switch tunes the fabric when Switched (zero fields take defaults).
	Switch netdev.SwitchConfig
	// Subnet is the /24 prefix, e.g. {10,0,1,0}. Hosts are numbered from
	// .1; the gateway interface is .254.
	Subnet view.IP4
	Hosts  []HostSpec
	// Uplink, when nonzero, is the wire model of this segment's link to the
	// gateway in a sharded topology — e.g. a metro-scale fiber whose longer
	// propagation delay widens the shard synchronization window. Zero means
	// the uplink runs the segment's own Model.
	Uplink netdev.Model
	// GatewayLinks is the number of parallel gateway interfaces on this
	// segment (default 1). Extra interfaces take addresses counting down
	// from .253; a fabric ECMP rule spreads flows across them.
	GatewayLinks int
}

// Segment is one built subnet.
type Segment struct {
	Name   string
	Subnet view.IP4
	// Link is the shared bus (nil when the segment is switched).
	Link *netdev.Link
	// Switch is the fabric (nil when the segment is a shared bus).
	Switch *netdev.Switch
	// Cables are the per-host cables of a switched segment, index-aligned
	// with Hosts; the gateway's cable (if any) is last.
	Cables []*netdev.Link
	Hosts  []*Stack
	// GW is the gateway's interface stack on this segment (nil for a
	// single-segment topology).
	GW *Stack
	// GWs are all gateway interfaces on this segment (GWs[0] == GW); more
	// than one when the spec asked for parallel ECMP links.
	GWs []*Stack
}

// GatewayStats counts forwarding-plane activity.
type GatewayStats struct {
	Forwarded        uint64
	TTLExpired       uint64
	TimeExceededSent uint64 // ICMP Time Exceeded emitted back to senders
	NoRoute          uint64
	Drops            uint64 // copy or transmit failures
	PipeDrops        uint64 // datagrams the fabric pipeline dropped
}

// Gateway is the multi-homed forwarding host: one interface stack per
// segment, all sharing a single CPU, spliced together through the IP
// layer's forwarding hook.
type Gateway struct {
	CPU    *sim.CPU
	Ifaces []*Stack
	stats  GatewayStats
	// scratch is the forwarding path's reusable header-rewrite buffer: the
	// received chain is read-only (§3.4), so the datagram is copied here,
	// TTL/checksum rewritten in place, and re-emitted from the egress pool.
	// All forwarding runs on the gateway's one CPU, so one buffer suffices
	// and the steady-state path allocates nothing.
	scratch []byte
	// pipeline is the optional match-action stage on the forwarding path; it
	// runs on the scratch copy before egress selection, so destination
	// rewrites (VIP → pool member, NAT address → inside host) route
	// correctly, and its path choice steers ECMP egress.
	pipeline *fabric.Pipeline
	// pkt is the pipeline's reusable packet context.
	pkt fabric.Packet
}

// Stats returns a snapshot of forwarding counters.
func (g *Gateway) Stats() GatewayStats { return g.stats }

// InstallPipeline installs (or clears, with nil) the gateway's forwarding
// pipeline. The pipeline must use filter.BaseIP framing: it sees datagrams
// with the IP header at offset 0.
func (g *Gateway) InstallPipeline(pl *fabric.Pipeline) { g.pipeline = pl }

// Pipeline returns the installed forwarding pipeline, or nil.
func (g *Gateway) Pipeline() *fabric.Pipeline { return g.pipeline }

// Topology is a set of segments joined by a gateway.
type Topology struct {
	Sim      *sim.Sim
	Segments []*Segment
	// Gateway is nil for a single-segment topology.
	Gateway *Gateway
}

// NewTopology builds the segments on a fresh simulator. With more than one
// segment, gw describes the gateway host joining them (its interface on
// each subnet takes address .254, and every host's default route points at
// it); with exactly one segment gw may be nil and no gateway is built.
func NewTopology(seed int64, gw *HostSpec, segs []SegmentSpec) (*Topology, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("plexus: topology needs at least one segment")
	}
	if len(segs) > 1 && gw == nil {
		return nil, fmt.Errorf("plexus: multi-segment topology needs a gateway spec")
	}
	s := sim.New(seed)
	top := &Topology{Sim: s}
	if len(segs) > 1 {
		top.Gateway = &Gateway{CPU: sim.NewCPU(s, gw.Name)}
	}
	for si, spec := range segs {
		gwLinks := spec.GatewayLinks
		if gwLinks < 1 || top.Gateway == nil {
			gwLinks = 1
		}
		if len(spec.Hosts) > gatewayHostByte-gwLinks {
			return nil, fmt.Errorf("plexus: segment %s: %d hosts exceed a /24", spec.Name, len(spec.Hosts))
		}
		seg := &Segment{Name: spec.Name, Subnet: spec.Subnet}
		var sharedBus *netdev.Link
		if spec.Switched {
			seg.Switch = netdev.NewSwitch(s, spec.Name+"/sw", spec.Model, spec.Switch)
		} else {
			sharedBus = netdev.NewLink(s, spec.Name+"/"+spec.Model.Name)
			seg.Link = sharedBus
		}
		attach := func() *netdev.Link {
			if !spec.Switched {
				return sharedBus
			}
			cable := netdev.NewLink(s, spec.Name+"/cable")
			seg.Switch.AttachLink(cable)
			seg.Cables = append(seg.Cables, cable)
			return cable
		}
		addr := func(host byte) view.IP4 {
			return view.IP4{spec.Subnet[0], spec.Subnet[1], spec.Subnet[2], host}
		}
		var gwAddr view.IP4
		if top.Gateway != nil {
			gwAddr = addr(gatewayHostByte)
		}
		for i, hs := range spec.Hosts {
			idx := byte(i + 1)
			st, err := NewStack(s, hs.Name, StackConfig{
				Personality: hs.Personality,
				Dispatch:    hs.Dispatch,
				Model:       spec.Model,
				Link:        attach(),
				MAC:         view.MAC{0x02, 0x00, 0x00, 0x00, byte(si + 1), idx},
				Addr:        addr(idx),
				Mask:        view.IP4{255, 255, 255, 0},
				Gateway:     gwAddr,
				Costs:       hs.Costs,
				Pool:        hs.Pool,
				Quarantine:  hs.Quarantine,
				Audit:       hs.Audit,
				CC:          hs.CC,
				MinRTO:      hs.MinRTO,
			})
			if err != nil {
				return nil, fmt.Errorf("plexus: host %s: %w", hs.Name, err)
			}
			seg.Hosts = append(seg.Hosts, st)
		}
		if top.Gateway != nil {
			// k == 0 is the hosts' default route (.254); extra parallel
			// interfaces count down from .253 — the equal-cost links an
			// ECMP rule spreads flows across.
			for k := 0; k < gwLinks; k++ {
				name := gw.Name + "/" + spec.Name
				if k > 0 {
					name = fmt.Sprintf("%s.%d", name, k)
				}
				hb := byte(gatewayHostByte - k)
				st, err := NewStack(s, name, StackConfig{
					Personality: gw.Personality,
					Dispatch:    gw.Dispatch,
					Model:       spec.Model,
					Link:        attach(),
					MAC:         view.MAC{0x02, 0x00, 0x00, 0x00, byte(si + 1), hb},
					Addr:        addr(hb),
					Mask:        view.IP4{255, 255, 255, 0},
					Costs:       gw.Costs,
					CPU:         top.Gateway.CPU,
				})
				if err != nil {
					return nil, fmt.Errorf("plexus: gateway on %s: %w", spec.Name, err)
				}
				seg.GWs = append(seg.GWs, st)
				top.Gateway.Ifaces = append(top.Gateway.Ifaces, st)
			}
			seg.GW = seg.GWs[0]
		}
		top.Segments = append(top.Segments, seg)
	}
	if top.Gateway != nil {
		for _, iface := range top.Gateway.Ifaces {
			iface.IP.SetForwardFn(top.Gateway.forwardFrom(iface))
		}
	}
	return top, nil
}

// Host returns the host with the given name from any segment, or nil.
func (top *Topology) Host(name string) *Stack {
	for _, seg := range top.Segments {
		for _, h := range seg.Hosts {
			if h.Name() == name {
				return h
			}
		}
	}
	return nil
}

// PrimeARP installs static ARP entries per subnet — all host pairs plus the
// gateway interface — so experiments measure the steady-state path.
func (top *Topology) PrimeARP() {
	for _, seg := range top.Segments {
		members := seg.Hosts
		if len(seg.GWs) > 0 {
			members = append(append([]*Stack{}, seg.Hosts...), seg.GWs...)
		}
		for _, a := range members {
			for _, b := range members {
				if a != b {
					a.ARP.AddStatic(b.Addr(), b.NIC.MAC())
				}
			}
		}
	}
}

// forwardFrom builds the ingress interface's forwarding hook: datagrams for
// other subnets are TTL-decremented on a private copy and re-emitted out the
// owning interface, all on the gateway's one shared CPU — exactly the
// in-kernel redirection path of §5, applied host-wide. With a fabric
// pipeline installed, the match-action stage runs on the private copy before
// egress selection, so destination rewrites route correctly and ECMP path
// choices pick among parallel candidate links.
func (g *Gateway) forwardFrom(ingress *Stack) func(t *sim.Task, m *mbuf.Mbuf) bool {
	return func(t *sim.Task, m *mbuf.Mbuf) bool {
		v, err := view.IPv4(m.Bytes())
		if err != nil {
			return false
		}
		if g.pipeline == nil {
			// Plain path: route on the datagram's own destination first, so
			// unroutable traffic still falls through to NotForUs accounting.
			egress := g.pickEgress(ingress, v.Dst(), 0)
			if egress == nil {
				g.stats.NoRoute++
				return false
			}
			if v.TTL() <= 1 {
				g.expireTTL(t, ingress, m)
				return true
			}
			buf, span, ok := g.copyOut(m)
			if !ok {
				return true
			}
			return g.emit(t, egress, buf, span)
		}
		// Fabric path: the pipeline may rewrite the destination (VIP → pool
		// member, NAT address → inside host), so routing happens after it.
		if v.TTL() <= 1 {
			g.expireTTL(t, ingress, m)
			return true
		}
		buf, span, ok := g.copyOut(m)
		if !ok {
			return true
		}
		g.pkt = fabric.Packet{Buf: buf, Base: filter.BaseIP, Writable: true, OutPort: -1}
		if g.pipeline.Exec(t, &g.pkt) == fabric.Drop {
			g.stats.PipeDrops++
			return true
		}
		ov, err := view.IPv4(buf)
		if err != nil {
			g.stats.Drops++
			return true
		}
		egress := g.pickEgress(ingress, ov.Dst(), g.pkt.Path)
		if egress == nil {
			g.stats.NoRoute++
			return true
		}
		return g.emit(t, egress, buf, span)
	}
}

// pickEgress selects the forwarding interface for dst: the path'th candidate
// (mod the candidate count) among interfaces other than the ingress with dst
// on-link — so an ECMP path index spreads flows across parallel links, and
// path 0 degenerates to the first match.
func (g *Gateway) pickEgress(ingress *Stack, dst view.IP4, path int) *Stack {
	count := 0
	for _, iface := range g.Ifaces {
		if iface != ingress && iface.IP.OnLink(dst) {
			count++
		}
	}
	if count == 0 {
		return nil
	}
	pick := 0
	if count > 1 && path > 0 {
		pick = path % count
	}
	i := 0
	for _, iface := range g.Ifaces {
		if iface != ingress && iface.IP.OnLink(dst) {
			if i == pick {
				return iface
			}
			i++
		}
	}
	return nil
}

// expireTTL answers a datagram whose TTL ran out: ICMP Time Exceeded back to
// the sender (per RFC 1812), counted in forwarding stats. m is consumed.
func (g *Gateway) expireTTL(t *sim.Task, ingress *Stack, m *mbuf.Mbuf) {
	g.stats.TTLExpired++
	if err := ingress.ICMP.SendTimeExceeded(t, m); err == nil {
		g.stats.TimeExceededSent++
	}
	m.Free()
}

// copyOut copies the datagram to the gateway's pooled scratch buffer and
// frees the original chain. The received chain is read-only (§3.4); a
// DeepCopy here would allocate a fresh buffer for every cross-segment frame.
func (g *Gateway) copyOut(m *mbuf.Mbuf) (buf []byte, span uint64, ok bool) {
	n := m.PktLen()
	if cap(g.scratch) < n {
		g.scratch = make([]byte, n)
	}
	buf = g.scratch[:n]
	if err := m.CopyTo(0, buf); err != nil {
		g.stats.Drops++
		m.Free()
		return nil, 0, false
	}
	if hdr := m.Hdr(); hdr != nil {
		span = hdr.Span
	}
	m.Free()
	return buf, span, true
}

// emit decrements TTL, fixes the header checksum, and re-emits the datagram
// out the egress interface.
func (g *Gateway) emit(t *sim.Task, egress *Stack, buf []byte, span uint64) bool {
	ov, err := view.IPv4(buf)
	if err != nil {
		g.stats.Drops++
		return true
	}
	ov.SetTTL(ov.TTL() - 1)
	ov.ComputeChecksum()
	out := egress.Host.Pool.FromBytes(buf, 0)
	out.Hdr().Span = span
	if err := egress.IP.Forward(t, out); err != nil {
		g.stats.Drops++
		return true
	}
	g.stats.Forwarded++
	return true
}
