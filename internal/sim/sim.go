// Package sim provides the discrete-event simulation substrate on which the
// Plexus reproduction runs.
//
// The paper's measurements were taken on DEC Alpha workstations running the
// SPIN operating system; a userspace Go reproduction cannot execute code in a
// kernel, so instead every host is simulated: a virtual clock, a serial CPU
// resource with priority scheduling and utilization accounting, and an event
// queue. Protocol code is real (real packets, real checksums, real state
// machines); only *time* is virtual. See DESIGN.md §1 for the substitution
// argument.
//
// The engine is deterministic: events at equal timestamps fire in submission
// order, and all randomness flows through a seeded PRNG.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulated timestamp or duration in nanoseconds. It deliberately
// mirrors time.Duration's unit so constants read naturally, but it is a
// distinct type: simulated time never mixes with wall-clock time.
type Time int64

// Convenient units of simulated time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit, e.g. "437µs" or "1.2s".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.1fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Micros reports t as a floating-point count of microseconds. The paper
// reports latencies in µs; experiment harnesses use this for output.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is one pending callback in the simulation.
type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among equal timestamps
	fn    func()
	label string
	dead  bool // cancelled
	index int  // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator instance. It is not safe for concurrent
// use: the whole point is a single deterministic timeline.
type Sim struct {
	now      Time
	seq      uint64
	queue    eventHeap
	rng      *rand.Rand
	executed uint64
	tracer   Tracer
}

// New returns a simulator whose clock starts at zero and whose PRNG is
// seeded with seed, so identical runs replay identically.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation's deterministic PRNG. All stochastic choices
// (jitter, drop tests, workload generation) must draw from it.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have fired so far; useful in tests and
// for detecting runaway schedules.
func (s *Sim) Executed() uint64 { return s.executed }

// Timer is a handle to a scheduled callback, returned by At/After.
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. It reports whether the
// cancellation prevented the callback from running; stopping a timer that
// already fired returns false and has no effect.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.fn == nil {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

// Stopped reports whether the timer was cancelled.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.ev.dead }

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(at Time, label string, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", label, at, s.now))
	}
	e := &event{at: at, seq: s.seq, fn: fn, label: label}
	s.seq++
	heap.Push(&s.queue, e)
	return &Timer{ev: e}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, label string, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.At(s.now+d, label, fn)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports false when the queue is empty.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.executed++
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains. Simulations with self-renewing
// work (periodic timers) must use RunUntil instead.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.queue) > 0 {
		// Peek; heap root is the earliest event.
		if s.queue[0].at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending reports the number of live events still queued.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.dead {
			n++
		}
	}
	return n
}
