// Package sim provides the discrete-event simulation substrate on which the
// Plexus reproduction runs.
//
// The paper's measurements were taken on DEC Alpha workstations running the
// SPIN operating system; a userspace Go reproduction cannot execute code in a
// kernel, so instead every host is simulated: a virtual clock, a serial CPU
// resource with priority scheduling and utilization accounting, and an event
// queue. Protocol code is real (real packets, real checksums, real state
// machines); only *time* is virtual. See DESIGN.md §1 for the substitution
// argument.
//
// The engine is deterministic: events at equal timestamps fire in submission
// order, and all randomness flows through a seeded PRNG.
//
// The per-event path is allocation-free in steady state: fired and cancelled
// events return to a free list, the queue is a concrete 4-ary min-heap (no
// interface boxing), and the AtArg/AfterArg forms let hot callers schedule a
// pre-bound function plus a pooled argument instead of a fresh closure.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a simulated timestamp or duration in nanoseconds. It deliberately
// mirrors time.Duration's unit so constants read naturally, but it is a
// distinct type: simulated time never mixes with wall-clock time.
type Time int64

// Convenient units of simulated time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit, e.g. "437µs" or "1.2s".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.1fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Micros reports t as a floating-point count of microseconds. The paper
// reports latencies in µs; experiment harnesses use this for output.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is one pending callback in the simulation. Events are pooled: a
// fired or cancelled event returns to the simulator's free list, and its
// generation counter is bumped so stale Timer handles cannot touch the
// recycled slot.
type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among equal timestamps
	gen   uint32 // recycle generation; Timers validate against it
	fn    func()
	argFn func(any) // alternative closure-free form (see AtArg)
	arg   any
	label string
	dead  bool   // cancelled
	next  *event // free-list link
}

// eventBefore is the heap order: earliest timestamp first, FIFO within a
// timestamp.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is a discrete-event simulator instance. It is not safe for concurrent
// use: the whole point is a single deterministic timeline. Independent Sims
// (one per experiment cell) may run on different goroutines concurrently.
type Sim struct {
	now          Time
	seq          uint64
	queue        []*event // 4-ary min-heap keyed on (at, seq)
	free         *event   // recycled events
	rng          *rand.Rand
	executed     uint64
	tracer       Tracer
	traceEnabled [numTraceCategories]bool
	metrics      Metrics
	spanSeq      uint64 // packet-lifecycle trace IDs; 0 = unstamped
}

// New returns a simulator whose clock starts at zero and whose PRNG is
// seeded with seed, so identical runs replay identically.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation's deterministic PRNG. All stochastic choices
// (jitter, drop tests, workload generation) must draw from it.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have fired so far; useful in tests, for
// detecting runaway schedules, and for the bench harness's events/sec metric.
func (s *Sim) Executed() uint64 { return s.executed }

// TraceEnabled reports whether a tracer is installed. Hot paths guard their
// Tracef calls with it so that the variadic arguments are not materialized
// (boxed and heap-allocated) when tracing is off.
func (s *Sim) TraceEnabled() bool { return s.tracer != nil }

// Timer is a handle to a scheduled callback, returned by At/After. It is a
// small value (not a pointer) so scheduling does not allocate; the zero
// Timer is valid and behaves like one whose event already fired.
type Timer struct {
	ev  *event
	gen uint32
}

// Stop cancels the timer if it has not fired. It reports whether the
// cancellation prevented the callback from running; stopping a timer that
// already fired (or the zero Timer) returns false and has no effect.
func (t Timer) Stop() bool {
	e := t.ev
	if e == nil || e.gen != t.gen || e.dead {
		return false
	}
	e.dead = true
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	return true
}

// Pending reports whether the timer is still scheduled to fire: it has
// neither fired nor been stopped.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

// Stopped reports whether the timer is no longer pending — never scheduled,
// cancelled, or already fired.
func (t Timer) Stopped() bool { return !t.Pending() }

// alloc takes an event from the free list, or the heap when it is empty.
func (s *Sim) alloc() *event {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	return &event{}
}

// recycle bumps the event's generation (invalidating outstanding Timers) and
// returns it to the free list.
func (s *Sim) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	e.label = ""
	e.dead = false
	e.next = s.free
	s.free = e
}

func (s *Sim) schedule(at Time, label string, fn func(), argFn func(any), arg any) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", label, at, s.now))
	}
	e := s.alloc()
	e.at = at
	e.seq = s.seq
	e.fn = fn
	e.argFn = argFn
	e.arg = arg
	e.label = label
	s.seq++
	s.push(e)
	return Timer{ev: e, gen: e.gen}
}

// At schedules fn to run at absolute simulated time at. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
func (s *Sim) At(at Time, label string, fn func()) Timer {
	return s.schedule(at, label, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time at. Unlike At, the callback is a
// plain function plus an argument rather than a closure, so hot paths that
// keep fn in a package-level variable and pool their argument structs
// schedule without allocating.
func (s *Sim) AtArg(at Time, label string, fn func(any), arg any) Timer {
	return s.schedule(at, label, nil, fn, arg)
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, label string, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.At(s.now+d, label, fn)
}

// AfterArg is AtArg relative to the current time.
func (s *Sim) AfterArg(d Time, label string, fn func(any), arg any) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.AtArg(s.now+d, label, fn, arg)
}

// push inserts e into the 4-ary heap.
func (s *Sim) push(e *event) {
	q := append(s.queue, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventBefore(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	s.queue = q
}

// pop removes and returns the earliest event. The queue must be non-empty.
func (s *Sim) pop() *event {
	q := s.queue
	n := len(q) - 1
	e := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	s.queue = q
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventBefore(q[j], q[m]) {
				m = j
			}
		}
		if !eventBefore(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return e
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports false when the queue is empty.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := s.pop()
		if e.dead {
			s.recycle(e)
			continue
		}
		s.now = e.at
		s.executed++
		fn, argFn, arg := e.fn, e.argFn, e.arg
		// Recycle before running: outstanding Timers are invalidated by
		// the generation bump, and the callback may immediately reuse
		// the slot for what it schedules.
		s.recycle(e)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run fires events until the queue drains. Simulations with self-renewing
// work (periodic timers) must use RunUntil instead.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.queue) > 0 {
		top := s.queue[0]
		if top.dead {
			// Discard cancelled events eagerly so a dead early event
			// cannot trick Step into firing a live one past t.
			s.recycle(s.pop())
			continue
		}
		if top.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// QueueLen reports the event-queue length including cancelled entries — the
// O(1) depth gauge the telemetry plane samples every tick (Pending is the
// exact-but-O(n) live count).
func (s *Sim) QueueLen() int { return len(s.queue) }

// Pending reports the number of live events still queued.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.dead {
			n++
		}
	}
	return n
}
