package sim

// This file defines the flight-recorder hooks: an optional Metrics sink that
// receives packet-lifecycle hops, attributed CPU charges, and run-queue depth
// observations from the whole stack. The sink is installed per simulator
// (SetMetrics), so independent experiment cells record independently and the
// harness stays deterministic at any parallelism.
//
// The hooks are designed to cost one nil-check when disabled and to allocate
// nothing when enabled: every argument is a value or a precomputed string, and
// the concrete sink (internal/stats.Recorder) writes into preallocated rings
// and fixed-bucket histograms.

// ProfKind classifies an attributed CPU charge for the simulated-CPU
// profiler. The paper's latency decomposition argues the SPIN/DUX gap is
// traps + copies + dispatch; these kinds make the attribution explicit.
type ProfKind uint8

const (
	// ProfTask is a whole task body, emitted by the CPU when it completes.
	ProfTask ProfKind = iota
	// ProfTrap is kernel-structure overhead: interrupt entry, traps,
	// context switches, wakeups, socket-layer plumbing.
	ProfTrap
	// ProfCopy is data movement: user/kernel boundary copies, programmed
	// I/O, memory-to-memory copies.
	ProfCopy
	// ProfChecksum is software internet-checksum folding.
	ProfChecksum
	// ProfDispatch is event-dispatch overhead: guard evaluations, handler
	// invocation cost, thread hand-offs, softirq hand-offs.
	ProfDispatch
	// ProfHandler is a handler body run by the event dispatcher.
	ProfHandler
	// ProfDriver is fixed per-packet device-driver work.
	ProfDriver
	// ProfProto is protocol-layer header processing.
	ProfProto
	// ProfFabric is match-action pipeline execution in the forwarding plane.
	ProfFabric
	// NumProfKinds bounds fixed per-kind tables in sinks.
	NumProfKinds
)

func (k ProfKind) String() string {
	switch k {
	case ProfTask:
		return "task"
	case ProfTrap:
		return "trap"
	case ProfCopy:
		return "copy"
	case ProfChecksum:
		return "checksum"
	case ProfDispatch:
		return "dispatch"
	case ProfHandler:
		return "handler"
	case ProfDriver:
		return "driver"
	case ProfProto:
		return "proto"
	case ProfFabric:
		return "fabric"
	default:
		return "unknown"
	}
}

// Metrics receives flight-recorder records. A nil sink disables recording
// with one-branch overhead at every instrumentation point. Implementations
// must not allocate per call in steady state; internal/stats.Recorder is the
// canonical sink.
type Metrics interface {
	// Hop records one step of a packet's lifecycle: span is the packet's
	// trace ID (stamped in the mbuf header), host the CPU it happened on,
	// layer/action the protocol node and what it did, bytes the packet
	// length at that point.
	Hop(span uint64, at Time, host, layer, action string, bytes int)
	// Sample records an attributed CPU charge of dur starting at start.
	Sample(host string, kind ProfKind, owner string, prio Priority, start, dur Time)
	// QueueDepth records the CPU's run-queue depth after an arrival.
	QueueDepth(host string, depth int)
}

// SetMetrics installs (or clears, with nil) the simulation's metrics sink.
func (s *Sim) SetMetrics(m Metrics) { s.metrics = m }

// Metrics returns the installed sink, or nil.
func (s *Sim) Metrics() Metrics { return s.metrics }

// MetricsEnabled reports whether a metrics sink is installed.
func (s *Sim) MetricsEnabled() bool { return s.metrics != nil }

// NextSpan allocates a packet-lifecycle trace ID. IDs are per-simulator and
// sequential from 1 (above any SetSpanBase offset), so a run's spans are
// stable across replays; 0 means "unstamped" everywhere.
func (s *Sim) NextSpan() uint64 {
	s.spanSeq++
	return s.spanSeq
}

// SetSpanBase offsets this simulator's span IDs. Sharded topologies give
// each shard a disjoint base (shard index shifted into the high bits) so
// spans stay unique across the whole topology while each shard allocates
// them locally and deterministically. Call before any span is stamped.
func (s *Sim) SetSpanBase(base uint64) { s.spanSeq = base }

// SpanCount reports how many spans this simulator has allocated (regardless
// of any base offset). The cross-shard determinism property test compares
// per-shard span counts — IDs differ by construction, counts must not.
func (s *Sim) SpanCount() uint64 { return s.spanSeq & (1<<spanBaseShift - 1) }

// spanBaseShift is the low-bit width reserved for per-shard span sequence
// numbers; bases passed to SetSpanBase must be multiples of 1<<spanBaseShift.
const spanBaseShift = 40

// SpanBase returns the canonical span base for shard index i.
func SpanBase(i int) uint64 { return uint64(i) << spanBaseShift }

// Hop records a packet-lifecycle hop at the task's current virtual time on
// the task's CPU. It is a no-op when metrics are disabled or the packet was
// never stamped (span 0).
func (t *Task) Hop(span uint64, layer, action string, bytes int) {
	if m := t.cpu.sim.metrics; m != nil && span != 0 {
		m.Hop(span, t.Now(), t.cpu.name, layer, action, bytes)
	}
}

// ChargeProf is Charge plus profiler attribution: the charge interval
// [Now, Now+d) is reported to the metrics sink under the given kind and
// owner. owner must be a precomputed string (a constant or a field built at
// setup), never formatted per packet.
func (t *Task) ChargeProf(kind ProfKind, owner string, d Time) {
	if m := t.cpu.sim.metrics; m != nil && d > 0 {
		m.Sample(t.cpu.name, kind, owner, t.prio, t.Now(), d)
	}
	t.Charge(d)
}

// ChargeBytesProf is ChargeBytes plus profiler attribution.
func (t *Task) ChargeBytesProf(kind ProfKind, owner string, n int, perByte Time) {
	if m := t.cpu.sim.metrics; m != nil {
		if d := Time(n) * perByte; d > 0 {
			m.Sample(t.cpu.name, kind, owner, t.prio, t.Now(), d)
		}
	}
	t.ChargeBytes(n, perByte)
}
