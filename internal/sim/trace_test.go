package sim

import "testing"

func TestEnableTraceFiltersInEmitPath(t *testing.T) {
	s := New(1)
	rec := &RecordingTracer{}
	s.SetTracer(rec)

	s.Tracef(TraceNet, "net %d", 1)
	s.Tracef(TraceApp, "app %d", 1)
	if len(rec.Lines) != 2 {
		t.Fatalf("all categories should be enabled after SetTracer, got %d lines", len(rec.Lines))
	}

	s.EnableTrace(TraceNet)
	if !s.TraceOn(TraceNet) || s.TraceOn(TraceApp) || s.TraceOn(TraceCPU) {
		t.Fatal("EnableTrace(TraceNet) should leave only net enabled")
	}
	s.Tracef(TraceNet, "net %d", 2)
	s.Tracef(TraceApp, "app %d", 2)
	s.Tracef(TraceProto, "proto %d", 2)
	if len(rec.Lines) != 3 || rec.Lines[2].Cat != TraceNet || rec.Lines[2].Msg != "net 2" {
		t.Fatalf("filtered categories leaked: %+v", rec.Lines)
	}

	// Re-installing the tracer re-enables everything.
	s.SetTracer(rec)
	s.Tracef(TraceApp, "app %d", 3)
	if len(rec.Lines) != 4 {
		t.Fatalf("SetTracer should re-enable all categories, got %d lines", len(rec.Lines))
	}

	s.SetTracer(nil)
	if s.TraceOn(TraceNet) {
		t.Fatal("TraceOn must be false with no tracer installed")
	}
	s.Tracef(TraceNet, "dropped %d", 4)
	if len(rec.Lines) != 4 {
		t.Fatal("nil tracer must drop all lines")
	}
}

// fmtProbe records whether fmt ever rendered it — the observable cost the
// emit-path filter is supposed to avoid.
type fmtProbe struct{ rendered *bool }

func (p fmtProbe) String() string { *p.rendered = true; return "probe" }

// TestTracefFilteredNoFormatCost pins the satellite fix: a Tracef call in a
// disabled category must return before rendering its arguments, so the
// fmt.Sprintf (and any Stringer work it triggers) is never paid.
func TestTracefFilteredNoFormatCost(t *testing.T) {
	s := New(1)
	s.SetTracer(&RecordingTracer{})
	s.EnableTrace(TraceNet)
	var rendered bool
	s.Tracef(TraceApp, "expensive %v", fmtProbe{&rendered})
	if rendered {
		t.Fatal("disabled category rendered its format arguments")
	}
	s.Tracef(TraceNet, "cheap %v", fmtProbe{&rendered})
	if !rendered {
		t.Fatal("enabled category should render its format arguments")
	}
}

func TestTracefOutOfRangeCategory(t *testing.T) {
	s := New(1)
	rec := &RecordingTracer{}
	s.SetTracer(rec)
	s.Tracef(TraceCategory(-1), "bad")
	s.Tracef(numTraceCategories, "bad")
	if len(rec.Lines) != 0 {
		t.Fatalf("out-of-range categories must be dropped, got %d lines", len(rec.Lines))
	}
}
