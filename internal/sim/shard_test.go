package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// testMsg is one effect crossing a test coupling.
type testMsg struct {
	at Time
	v  int
}

// testCoupling is a minimal Coupling: timestamped integers delivered to a
// handler in the destination shard.
type testCoupling struct {
	dst       *Sim
	lookahead Time
	onMsg     func(at Time, v int)
	out       []testMsg
	inbox     []testMsg
}

func (c *testCoupling) send(at Time, v int) { c.out = append(c.out, testMsg{at, v}) }

func (c *testCoupling) Lookahead() Time { return c.lookahead }

func (c *testCoupling) Flip() {
	c.out, c.inbox = c.inbox[:0], c.out
}

func (c *testCoupling) Drain() {
	for _, m := range c.inbox {
		m := m
		c.dst.At(m.at, "xmsg", func() { c.onMsg(m.at, m.v) })
	}
	c.inbox = c.inbox[:0]
}

// pingPong wires n shards in a ring: each shard, on receiving a token,
// records it and forwards it to the next shard after the link delay. Returns
// the engine and the per-shard logs.
func pingPong(n int, delay Time, hops int) (*Engine, [][]string) {
	e := NewEngine()
	sims := make([]*Sim, n)
	shards := make([]*Shard, n)
	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		sims[i] = New(int64(i + 1))
		shards[i] = e.AddShard(fmt.Sprintf("s%d", i), sims[i])
	}
	couplings := make([]*testCoupling, n)
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		c := &testCoupling{dst: sims[next], lookahead: delay}
		couplings[i] = c
		e.Connect(c, shards[next])
	}
	for i := 0; i < n; i++ {
		i := i
		couplings[i].onMsg = func(at Time, v int) {
			target := (i + 1) % n
			logs[target] = append(logs[target], fmt.Sprintf("%v:%d", at, v))
			if v < hops {
				couplings[target].send(at+delay, v+1)
			}
		}
	}
	// Kick a token into shard 0: it fires at t=0 and enters coupling 0
	// headed to shard 1.
	sims[0].At(0, "kick", func() {
		logs[0] = append(logs[0], "kick")
		couplings[0].send(delay, 1)
	})
	return e, logs
}

func TestEngineWindowIsMinLookahead(t *testing.T) {
	e := NewEngine()
	s1, s2 := e.AddShard("a", New(1)), e.AddShard("b", New(2))
	e.Connect(&testCoupling{dst: s2.Sim(), lookahead: 30 * Microsecond}, s2)
	e.Connect(&testCoupling{dst: s1.Sim(), lookahead: 10 * Microsecond}, s1)
	if w := e.Window(); w != 10*Microsecond {
		t.Fatalf("window = %v, want 10µs", w)
	}
}

func TestEngineRejectsNonPositiveLookahead(t *testing.T) {
	e := NewEngine()
	sh := e.AddShard("a", New(1))
	e.Connect(&testCoupling{dst: sh.Sim(), lookahead: 0}, sh)
	defer func() {
		if recover() == nil {
			t.Fatal("zero lookahead did not panic")
		}
	}()
	e.Run(Millisecond, 1)
}

func TestEngineUncoupledShardsRunToHorizon(t *testing.T) {
	e := NewEngine()
	fired := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		s := New(int64(i))
		s.At(7*Microsecond, "tick", func() { fired[i]++ })
		e.AddShard(fmt.Sprintf("s%d", i), s)
	}
	e.Run(Millisecond, 2)
	if fired != [2]int{1, 1} {
		t.Fatalf("fired = %v, want [1 1]", fired)
	}
	if e.Rounds() != 1 {
		t.Fatalf("uncoupled shards took %d rounds, want 1", e.Rounds())
	}
	if e.Now() != Millisecond {
		t.Fatalf("engine now = %v, want 1ms", e.Now())
	}
}

// TestEngineDeterministicAcrossWorkers is the core property: the same
// topology produces byte-identical per-shard logs and event counts at any
// worker count and any GOMAXPROCS.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	const shards, hops = 5, 400
	delay := 52 * Microsecond
	type result struct {
		logs  [][]string
		execs []uint64
		now   Time
	}
	run := func(workers, procs int) result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		e, logs := pingPong(shards, delay, hops)
		e.Run(30*Millisecond, workers)
		var execs []uint64
		for _, sh := range e.Shards() {
			execs = append(execs, sh.Sim().Executed())
		}
		return result{logs: logs, execs: execs, now: e.Now()}
	}
	base := run(1, 1)
	if base.execs[0] == 0 {
		t.Fatal("no events executed in baseline run")
	}
	total := 0
	for _, l := range base.logs {
		total += len(l)
	}
	if total != hops+1 {
		t.Fatalf("token visited %d times, want %d", total, hops+1)
	}
	for _, cfg := range [][2]int{{1, 4}, {2, 1}, {2, 4}, {5, 2}, {8, 4}} {
		got := run(cfg[0], cfg[1])
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d GOMAXPROCS=%d diverged from sequential:\ngot  %+v\nwant %+v",
				cfg[0], cfg[1], got, base)
		}
	}
}

// TestEngineResume checks that Run can be called repeatedly, continuing from
// the previous horizon, with state identical to one long run.
func TestEngineResume(t *testing.T) {
	delay := 52 * Microsecond
	eOne, logsOne := pingPong(3, delay, 100)
	eOne.Run(10*Millisecond, 2)

	eTwo, logsTwo := pingPong(3, delay, 100)
	for _, h := range []Time{2 * Millisecond, 5 * Millisecond, 10 * Millisecond} {
		eTwo.Run(h, 2)
	}
	if !reflect.DeepEqual(logsOne, logsTwo) {
		t.Fatal("split run diverged from single run")
	}
	if eOne.Executed() != eTwo.Executed() {
		t.Fatalf("executed %d vs %d", eOne.Executed(), eTwo.Executed())
	}
}

func TestSpanBase(t *testing.T) {
	s := New(1)
	s.SetSpanBase(SpanBase(3))
	first := s.NextSpan()
	if first != SpanBase(3)+1 {
		t.Fatalf("first span = %#x, want %#x", first, SpanBase(3)+1)
	}
	s.NextSpan()
	if got := s.SpanCount(); got != 2 {
		t.Fatalf("span count = %d, want 2", got)
	}
}
