package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{-500 * Nanosecond, "-500ns"},
		{600 * Microsecond, "600.0µs"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (600 * Microsecond).Micros(); got != 600 {
		t.Errorf("Micros = %v, want 600", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(30*Microsecond, "c", func() { order = append(order, 3) })
	s.After(10*Microsecond, "a", func() { order = append(order, 1) })
	s.After(20*Microsecond, "b", func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if s.Now() != 30*Microsecond {
		t.Errorf("clock = %v, want 30µs", s.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*Microsecond, "e", func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp events not FIFO at %d: got %d", i, v)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.After(10*Microsecond, "advance", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5*Microsecond, "past", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, "neg", func() {})
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(10*Microsecond, "x", func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop reported failure on live timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported success")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		s.After(d*Microsecond, "e", func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * Microsecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want first two", fired)
	}
	if s.Now() != 25*Microsecond {
		t.Errorf("clock = %v, want 25µs", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run, fired %v, want all four", fired)
	}
}

func TestPending(t *testing.T) {
	s := New(1)
	a := s.After(10*Microsecond, "a", func() {})
	s.After(20*Microsecond, "b", func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	a.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 10 {
			s.After(Microsecond, "nest", schedule)
		}
	}
	s.After(Microsecond, "start", schedule)
	s.Run()
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	if s.Now() != 10*Microsecond {
		t.Fatalf("clock = %v, want 10µs", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var stamps []Time
		for i := 0; i < 50; i++ {
			d := Time(s.Rand().Intn(1000)) * Microsecond
			s.After(d, "e", func() { stamps = append(stamps, s.Now()) })
		}
		s.Run()
		return stamps
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatal("event timestamps not monotone")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order and
// the final clock equals the max delay.
func TestQuickEventOrderInvariant(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fired []Time
		var maxT Time
		for _, d := range delays {
			d := Time(d) * Microsecond
			if d > maxT {
				maxT = d
			}
			s.After(d, "e", func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || s.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestTracer(t *testing.T) {
	s := New(1)
	rec := &RecordingTracer{}
	s.SetTracer(rec)
	s.Tracef(TraceApp, "hello %d", 42)
	if len(rec.Lines) != 1 || rec.Lines[0].Msg != "hello 42" || rec.Lines[0].Cat != TraceApp {
		t.Fatalf("unexpected trace: %+v", rec.Lines)
	}
	if rec.String() == "" {
		t.Error("empty trace render")
	}
}

func TestTracerFilter(t *testing.T) {
	s := New(1)
	rec := &RecordingTracer{Only: map[TraceCategory]bool{TraceNet: true}}
	s.SetTracer(rec)
	s.Tracef(TraceApp, "drop me")
	s.Tracef(TraceNet, "keep me")
	if len(rec.Lines) != 1 || rec.Lines[0].Msg != "keep me" {
		t.Fatalf("filter failed: %+v", rec.Lines)
	}
}

func TestFuncTracer(t *testing.T) {
	var got string
	tr := FuncTracer(func(cat TraceCategory, at Time, msg string) { got = msg })
	s := New(1)
	s.SetTracer(tr)
	s.Tracef(TraceCPU, "x")
	if got != "x" {
		t.Fatalf("FuncTracer got %q", got)
	}
}

func TestTraceCategoryString(t *testing.T) {
	for c := TraceCategory(0); c < numTraceCategories; c++ {
		if c.String() == "" {
			t.Errorf("empty String for category %d", int(c))
		}
	}
	if TraceCategory(99).String() != "TraceCategory(99)" {
		t.Error("unknown category String mismatch")
	}
}

// Stop after the timer fired must report false and change nothing — timer
// users re-arm based on this distinction.
func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.After(Microsecond, "x", func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatal("timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire claimed to cancel")
	}
}
