package sim

import "fmt"

// TraceCategory selects a subsystem for trace filtering.
type TraceCategory int

// Trace categories used across the reproduction.
const (
	TraceCPU TraceCategory = iota
	TraceNet
	TraceProto
	TraceApp
	TraceEvent
	numTraceCategories
)

func (c TraceCategory) String() string {
	switch c {
	case TraceCPU:
		return "cpu"
	case TraceNet:
		return "net"
	case TraceProto:
		return "proto"
	case TraceApp:
		return "app"
	case TraceEvent:
		return "event"
	default:
		return fmt.Sprintf("TraceCategory(%d)", int(c))
	}
}

// Tracer receives formatted trace lines. A nil tracer disables tracing with
// near-zero overhead.
type Tracer interface {
	Trace(cat TraceCategory, at Time, msg string)
}

// SetTracer installs (or clears, with nil) the simulation's tracer. All
// categories start enabled; narrow with EnableTrace.
func (s *Sim) SetTracer(t Tracer) {
	s.tracer = t
	for i := range s.traceEnabled {
		s.traceEnabled[i] = t != nil
	}
}

// EnableTrace restricts trace emission to the listed categories. Filtering
// happens in the emit path, before any formatting, so a disabled category
// costs one branch — sinks like RecordingTracer.Only filter *after* the
// fmt.Sprintf has already been paid and should be reserved for sinks that
// need overlapping category sets.
func (s *Sim) EnableTrace(cats ...TraceCategory) {
	for i := range s.traceEnabled {
		s.traceEnabled[i] = false
	}
	for _, c := range cats {
		if c >= 0 && c < numTraceCategories {
			s.traceEnabled[c] = true
		}
	}
}

// TraceOn reports whether trace lines in cat would currently be emitted.
func (s *Sim) TraceOn(cat TraceCategory) bool {
	return s.tracer != nil && cat >= 0 && cat < numTraceCategories && s.traceEnabled[cat]
}

// Tracef emits a trace line at the current simulated time. Disabled
// categories return before the format arguments are rendered.
func (s *Sim) Tracef(cat TraceCategory, format string, args ...any) {
	s.tracef(cat, s.now, format, args...)
}

func (s *Sim) tracef(cat TraceCategory, at Time, format string, args ...any) {
	if s.tracer == nil || cat < 0 || cat >= numTraceCategories || !s.traceEnabled[cat] {
		return
	}
	s.tracer.Trace(cat, at, fmt.Sprintf(format, args...))
}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(cat TraceCategory, at Time, msg string)

// Trace implements Tracer.
func (f FuncTracer) Trace(cat TraceCategory, at Time, msg string) { f(cat, at, msg) }

// RecordingTracer accumulates trace lines, optionally filtered by category;
// tests and the plexus-trace tool use it.
type RecordingTracer struct {
	// Only, when non-nil, restricts recording to the listed categories.
	Only map[TraceCategory]bool
	// Lines holds the recorded trace in order.
	Lines []TraceLine
}

// TraceLine is one recorded trace entry.
type TraceLine struct {
	Cat TraceCategory
	At  Time
	Msg string
}

// Trace implements Tracer.
func (r *RecordingTracer) Trace(cat TraceCategory, at Time, msg string) {
	if r.Only != nil && !r.Only[cat] {
		return
	}
	r.Lines = append(r.Lines, TraceLine{Cat: cat, At: at, Msg: msg})
}

// String renders the recorded trace, one line per entry.
func (r *RecordingTracer) String() string {
	var out []byte
	for _, l := range r.Lines {
		out = append(out, fmt.Sprintf("%12v [%s] %s\n", l.At, l.Cat, l.Msg)...)
	}
	return string(out)
}
