package sim

import "testing"

// BenchmarkEventQueue exercises the simulator's event queue as the protocol
// stacks do: a sliding window of pending timers where each fired event
// schedules a successor, plus a mix of timers that are cancelled before they
// fire (retransmission timers that the ACK beats). The benchmark reports
// wall-clock ns/op per processed event and allocs/op, the two numbers the
// zero-alloc work pins.
func benchmarkEventQueue(b *testing.B, window int, cancelEvery int) {
	b.Helper()
	s := New(1)
	nop := func() {}
	// Pre-warm: fill the window, then drain once so free lists are primed.
	for i := 0; i < window; i++ {
		s.After(Time(i)*Microsecond, "warm", nop)
	}
	for s.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			s.After(Microsecond, "tick", tick)
		}
	}
	// Steady-state: `window` interleaved timer chains; every cancelEvery-th
	// event also schedules a decoy that is stopped before it can fire.
	for i := 0; i < window && i < b.N; i++ {
		s.After(Time(i)*Microsecond, "tick", tick)
		fired++
	}
	decoys := 0
	for s.Step() {
		if cancelEvery > 0 {
			decoys++
			if decoys%cancelEvery == 0 {
				tm := s.After(100*Microsecond, "decoy", nop)
				tm.Stop()
			}
		}
	}
	if fired < b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

func BenchmarkEventQueueWindow16(b *testing.B)  { benchmarkEventQueue(b, 16, 0) }
func BenchmarkEventQueueWindow256(b *testing.B) { benchmarkEventQueue(b, 256, 0) }
func BenchmarkEventQueueWindow4096(b *testing.B) {
	benchmarkEventQueue(b, 4096, 0)
}
func BenchmarkEventQueueMixedCancel(b *testing.B) {
	benchmarkEventQueue(b, 256, 4)
}
