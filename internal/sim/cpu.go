package sim

import "fmt"

// Priority orders contention for a CPU. Lower values run first, mirroring the
// paper's structure: device interrupts preempt kernel threads, which preempt
// user processes. (The model is run-to-completion: a lower-priority task that
// has started is not preempted, but among queued tasks priority wins. That is
// faithful enough for the latency/utilization shapes the paper reports.)
type Priority int

const (
	// PrioInterrupt is the network interrupt level; EPHEMERAL Plexus
	// handlers run here (paper §3.3).
	PrioInterrupt Priority = iota
	// PrioKernel is kernel-thread level; Plexus "thread" dispatch mode and
	// softirq-style monolithic protocol processing run here.
	PrioKernel
	// PrioUser is user-process level; monolithic applications run here.
	PrioUser
	numPrios
)

func (p Priority) String() string {
	switch p {
	case PrioInterrupt:
		return "interrupt"
	case PrioKernel:
		return "kernel"
	case PrioUser:
		return "user"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Task is the execution context handed to every costed activity. Code charges
// the CPU for the virtual time it consumes; emissions (packet transmissions,
// follow-on work) are stamped with the task's current virtual time so causality
// is preserved within a single run-to-completion activity.
type Task struct {
	cpu     *CPU
	label   string
	prio    Priority
	start   Time
	charged Time
	// budget, if > 0, is the EPHEMERAL time allotment (paper §3.3). The
	// dispatcher checks Exceeded after the handler body runs and clamps the
	// charge, simulating premature termination.
	budget     Time
	terminated bool
	nextFree   *Task // CPU task free list
}

// Now returns the task's current virtual time: its start time plus everything
// charged so far. All effects emitted by the task should carry this timestamp.
func (t *Task) Now() Time { return t.start + t.charged }

// Start returns the time at which the task began executing.
func (t *Task) Start() Time { return t.start }

// Charged returns the total CPU time this task has consumed.
func (t *Task) Charged() Time { return t.charged }

// Label returns the diagnostic label the task was submitted with.
func (t *Task) Label() string { return t.label }

// Priority returns the priority the task runs at.
func (t *Task) Priority() Priority { return t.prio }

// CPU returns the processor the task runs on.
func (t *Task) CPU() *CPU { return t.cpu }

// Sim returns the simulator that owns the task's CPU.
func (t *Task) Sim() *Sim { return t.cpu.sim }

// Charge consumes d of CPU time. Negative charges panic.
func (t *Task) Charge(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative charge %v in task %q", d, t.label))
	}
	t.charged += d
}

// ChargeBytes consumes perByte of CPU time for each of n bytes — the shape of
// copies, checksums and programmed I/O.
func (t *Task) ChargeBytes(n int, perByte Time) {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative byte count %d in task %q", n, t.label))
	}
	t.charged += Time(n) * perByte
}

// SetBudget assigns an EPHEMERAL time allotment for the remainder of the task.
// Zero means unlimited.
func (t *Task) SetBudget(d Time) { t.budget = d }

// Budget returns the task's remaining allotment semantics: the configured
// budget (0 = unlimited).
func (t *Task) Budget() Time { return t.budget }

// Exceeded reports whether the task has consumed more than its budget.
func (t *Task) Exceeded() bool { return t.budget > 0 && t.charged > t.budget }

// Terminated reports whether the dispatcher prematurely terminated this task
// for exceeding its EPHEMERAL budget.
func (t *Task) Terminated() bool { return t.terminated }

// MarkTerminated records premature termination and clamps the task's charge to
// its budget: the handler stopped consuming CPU at the allotment boundary.
func (t *Task) MarkTerminated() {
	t.terminated = true
	if t.budget > 0 && t.charged > t.budget {
		t.charged = t.budget
	}
}

// Refund returns d of previously charged time. The event dispatcher uses this
// to model premature termination of an EPHEMERAL handler that overran its
// per-handler allotment: the CPU time past the allotment was never actually
// consumed. Refunding more than was charged panics.
func (t *Task) Refund(d Time) {
	if d < 0 || d > t.charged {
		panic(fmt.Sprintf("sim: bad refund %v (charged %v) in task %q", d, t.charged, t.label))
	}
	t.charged -= d
}

// pendingTask is a submitted-but-not-yet-run task. It carries either a
// closure (fn) or the closure-free argFn/arg pair (see SubmitAtArg).
type pendingTask struct {
	label string
	prio  Priority
	fn    func(*Task)
	argFn func(*Task, any)
	arg   any
	seq   uint64
}

// submission carries a pendingTask from SubmitAt to its arrival event
// without a per-call closure; submissions are pooled on the CPU.
type submission struct {
	c    *CPU
	pt   pendingTask
	next *submission
}

// submitArrive is the arrival event body: enqueue the task and dispatch.
// It is a package-level func so scheduling it never allocates a closure.
func submitArrive(a any) {
	sub := a.(*submission)
	c := sub.c
	pt := sub.pt
	sub.pt = pendingTask{}
	sub.next = c.subFree
	c.subFree = sub
	pt.seq = c.seq
	c.seq++
	c.queue[pt.prio] = append(c.queue[pt.prio], pt)
	if m := c.sim.metrics; m != nil {
		depth := 0
		for p := range c.queue {
			depth += len(c.queue[p]) - c.qhead[p]
		}
		m.QueueDepth(c.name, depth)
	}
	c.kick()
}

// CPU is a serial processor: one task body executes at a time, highest
// priority first, FIFO within a priority. It accounts busy time so experiments
// can report utilization (Figure 6).
type CPU struct {
	sim  *Sim
	name string
	seq  uint64
	// queue[p][qhead[p]:] holds the pending tasks of priority p. Dequeue
	// advances the head index instead of shifting the slice (a saturated
	// CPU's backlog makes shifting quadratic); the dead prefix is compacted
	// away once it outgrows the live tail.
	queue [numPrios][]pendingTask
	qhead [numPrios]int
	// freeAt is when the currently-running task (if any) finishes.
	freeAt  Time
	running bool

	busy     Time // total busy time since creation
	markBusy Time // busy at last MarkUtilization
	markTime Time // clock at last MarkUtilization

	tasksRun uint64

	// Allocation-free dispatch machinery: pooled submissions, a pooled
	// Task (at most one task body runs per CPU at a time — the model is
	// run-to-completion — so a small free list suffices), and the
	// completion callback/label materialized once instead of per task.
	subFree   *submission
	taskFree  *Task
	kickFn    func()
	nextLabel string
}

// NewCPU creates a processor attached to s.
func NewCPU(s *Sim, name string) *CPU {
	c := &CPU{sim: s, name: name}
	c.kickFn = c.kick
	c.nextLabel = "cpu-next:" + name
	return c
}

// Name returns the CPU's diagnostic name.
func (c *CPU) Name() string { return c.name }

// Sim returns the owning simulator.
func (c *CPU) Sim() *Sim { return c.sim }

// TasksRun reports how many task bodies have executed.
func (c *CPU) TasksRun() uint64 { return c.tasksRun }

// Submit enqueues work at the current simulated time. The body runs when the
// CPU is free and no higher-priority work is queued.
func (c *CPU) Submit(prio Priority, label string, fn func(*Task)) {
	c.SubmitAt(c.sim.Now(), prio, label, fn)
}

// SubmitAt enqueues work to arrive at absolute time at (which must not be in
// the past). Device interrupt delivery uses this to inject work at packet
// arrival time.
func (c *CPU) SubmitAt(at Time, prio Priority, label string, fn func(*Task)) {
	c.submitAt(at, pendingTask{label: label, prio: prio, fn: fn})
}

// SubmitAtArg is SubmitAt for hot paths: fn is a plain function (kept in a
// package-level variable by the caller) and arg a pooled argument, so the
// submission allocates nothing in steady state.
func (c *CPU) SubmitAtArg(at Time, prio Priority, label string, fn func(*Task, any), arg any) {
	c.submitAt(at, pendingTask{label: label, prio: prio, argFn: fn, arg: arg})
}

func (c *CPU) submitAt(at Time, pt pendingTask) {
	if pt.prio < 0 || pt.prio >= numPrios {
		panic(fmt.Sprintf("sim: bad priority %d for %q", pt.prio, pt.label))
	}
	sub := c.subFree
	if sub != nil {
		c.subFree = sub.next
		sub.next = nil
	} else {
		sub = &submission{c: c}
	}
	sub.pt = pt
	c.sim.AtArg(at, pt.label, submitArrive, sub)
}

// kick starts the dispatch loop if the CPU is idle.
func (c *CPU) kick() {
	if c.running {
		return
	}
	start := c.sim.Now()
	if c.freeAt > start {
		// Busy with a previously-executed task's residual time; a
		// completion event is already scheduled.
		return
	}
	pt, ok := c.dequeue()
	if !ok {
		return
	}
	c.runTask(start, pt)
}

func (c *CPU) dequeue() (pendingTask, bool) {
	for p := Priority(0); p < numPrios; p++ {
		q, h := c.queue[p], c.qhead[p]
		if h >= len(q) {
			continue
		}
		pt := q[h]
		q[h] = pendingTask{} // drop fn/arg references
		h++
		switch {
		case h == len(q):
			c.queue[p], c.qhead[p] = q[:0], 0
		case h > 32 && h > len(q)-h:
			// Dead prefix outgrew the live tail: compact so capacity
			// tracks the backlog, not the total ever enqueued.
			n := copy(q, q[h:])
			clear(q[n:])
			c.queue[p], c.qhead[p] = q[:n], 0
		default:
			c.qhead[p] = h
		}
		return pt, true
	}
	return pendingTask{}, false
}

func (c *CPU) runTask(start Time, pt pendingTask) {
	c.running = true
	task := c.taskFree
	if task != nil {
		c.taskFree = task.nextFree
		*task = Task{cpu: c, label: pt.label, prio: pt.prio, start: start}
	} else {
		task = &Task{cpu: c, label: pt.label, prio: pt.prio, start: start}
	}
	if c.sim.tracer != nil {
		c.sim.tracef(TraceCPU, start, "%s: run %s (%s)", c.name, pt.label, pt.prio)
	}
	if pt.argFn != nil {
		pt.argFn(task, pt.arg)
	} else {
		pt.fn(task)
	}
	c.tasksRun++
	c.busy += task.charged
	c.freeAt = start + task.charged
	c.running = false
	if m := c.sim.metrics; m != nil {
		m.Sample(c.name, ProfTask, pt.label, pt.prio, start, task.charged)
	}
	if c.sim.tracer != nil {
		c.sim.tracef(TraceCPU, c.freeAt, "%s: done %s charged=%v", c.name, pt.label, task.charged)
	}
	// The task body has returned; its *Task is dead and may be reused by
	// the next dispatch. (Capturing a *Task beyond the body was always a
	// bug: charges after completion were silently dropped.)
	task.nextFree = c.taskFree
	c.taskFree = task
	// The CPU is occupied until freeAt; dispatch the next queued task then.
	// kick re-checks freeAt: if another task slipped in at this timestamp
	// and advanced it, that task's own completion event takes over.
	c.sim.At(c.freeAt, c.nextLabel, c.kickFn)
}

// Busy returns total busy time since creation.
func (c *CPU) Busy() Time { return c.busy }

// MarkUtilization starts a measurement window at the current time.
func (c *CPU) MarkUtilization() {
	c.markBusy = c.busy
	c.markTime = c.sim.Now()
}

// Utilization returns the fraction of time the CPU was busy during the window
// opened by MarkUtilization (or since creation if never marked). It returns 0
// for an empty window.
func (c *CPU) Utilization() float64 {
	elapsed := c.sim.Now() - c.markTime
	if elapsed <= 0 {
		return 0
	}
	u := float64(c.busy-c.markBusy) / float64(elapsed)
	if u > 1 {
		u = 1 // busy is credited at task start; clamp window-edge overshoot
	}
	return u
}
