package sim

import (
	"testing"
)

func TestTaskChargeAndNow(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	var sawStart, sawNow Time
	c.Submit(PrioKernel, "work", func(task *Task) {
		sawStart = task.Start()
		task.Charge(10 * Microsecond)
		task.ChargeBytes(100, 50*Nanosecond)
		sawNow = task.Now()
		if task.Label() != "work" || task.Priority() != PrioKernel {
			t.Errorf("task metadata wrong: %q %v", task.Label(), task.Priority())
		}
		if task.CPU() != c || task.Sim() != s {
			t.Error("task back-pointers wrong")
		}
	})
	s.Run()
	if sawStart != 0 {
		t.Errorf("start = %v, want 0", sawStart)
	}
	want := 10*Microsecond + 5*Microsecond
	if sawNow != want {
		t.Errorf("task.Now() = %v, want %v", sawNow, want)
	}
	if c.Busy() != want {
		t.Errorf("busy = %v, want %v", c.Busy(), want)
	}
	if c.TasksRun() != 1 {
		t.Errorf("TasksRun = %d, want 1", c.TasksRun())
	}
}

func TestNegativeChargePanics(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	c.Submit(PrioUser, "bad", func(task *Task) {
		defer func() {
			if recover() == nil {
				t.Error("negative charge did not panic")
			}
		}()
		task.Charge(-1)
	})
	s.Run()
}

func TestNegativeByteCountPanics(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	c.Submit(PrioUser, "bad", func(task *Task) {
		defer func() {
			if recover() == nil {
				t.Error("negative byte count did not panic")
			}
		}()
		task.ChargeBytes(-1, Nanosecond)
	})
	s.Run()
}

// The CPU is a serial resource: a second task waits for the first to finish.
func TestCPUSerialization(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	var t1end, t2start Time
	c.Submit(PrioKernel, "first", func(task *Task) {
		task.Charge(100 * Microsecond)
		t1end = task.Now()
	})
	c.Submit(PrioKernel, "second", func(task *Task) {
		t2start = task.Start()
		task.Charge(10 * Microsecond)
	})
	s.Run()
	if t1end != 100*Microsecond {
		t.Errorf("first ended at %v, want 100µs", t1end)
	}
	if t2start != 100*Microsecond {
		t.Errorf("second started at %v, want 100µs (after first)", t2start)
	}
}

// Queued interrupt-priority work runs before queued user work even when
// submitted later.
func TestPriorityOrdering(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	var order []string
	// Occupy the CPU first so subsequent submissions queue up.
	c.Submit(PrioKernel, "hog", func(task *Task) { task.Charge(50 * Microsecond) })
	s.After(Microsecond, "submit", func() {
		c.Submit(PrioUser, "user", func(task *Task) { order = append(order, "user") })
		c.Submit(PrioInterrupt, "intr", func(task *Task) { order = append(order, "intr") })
	})
	s.Run()
	if len(order) != 2 || order[0] != "intr" || order[1] != "user" {
		t.Fatalf("priority order wrong: %v", order)
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	var order []int
	c.Submit(PrioKernel, "hog", func(task *Task) { task.Charge(10 * Microsecond) })
	s.After(Microsecond, "submit", func() {
		for i := 0; i < 10; i++ {
			i := i
			c.Submit(PrioUser, "u", func(task *Task) { order = append(order, i) })
		}
	})
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestSubmitAtFuture(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	var start Time
	c.SubmitAt(500*Microsecond, PrioInterrupt, "later", func(task *Task) { start = task.Start() })
	s.Run()
	if start != 500*Microsecond {
		t.Errorf("started at %v, want 500µs", start)
	}
}

func TestBadPriorityPanics(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	defer func() {
		if recover() == nil {
			t.Fatal("bad priority did not panic")
		}
	}()
	c.Submit(Priority(99), "bad", func(*Task) {})
}

func TestUtilizationWindow(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	// Before any work: 50µs busy within a 100µs window = 50%.
	c.MarkUtilization()
	c.Submit(PrioKernel, "w", func(task *Task) { task.Charge(50 * Microsecond) })
	s.After(100*Microsecond, "end", func() {})
	s.Run()
	if got := c.Utilization(); got < 0.49 || got > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", got)
	}
	// New window with no work: 0.
	c.MarkUtilization()
	s.After(100*Microsecond, "idle", func() {})
	s.Run()
	if got := c.Utilization(); got != 0 {
		t.Errorf("idle window utilization = %v, want 0", got)
	}
}

func TestUtilizationEmptyWindow(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	c.MarkUtilization()
	if got := c.Utilization(); got != 0 {
		t.Errorf("empty window utilization = %v, want 0", got)
	}
}

func TestUtilizationClamped(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	c.MarkUtilization()
	// Task charges 100µs but we close the window immediately after it
	// starts: busy is credited at start, so without clamping util > 1.
	c.Submit(PrioKernel, "w", func(task *Task) { task.Charge(100 * Microsecond) })
	s.After(Microsecond, "early", func() {})
	s.RunUntil(Microsecond)
	if got := c.Utilization(); got > 1 {
		t.Errorf("utilization = %v, want clamped to <= 1", got)
	}
}

func TestEphemeralBudget(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	c.Submit(PrioInterrupt, "eph", func(task *Task) {
		task.SetBudget(10 * Microsecond)
		if task.Budget() != 10*Microsecond {
			t.Error("budget not recorded")
		}
		task.Charge(5 * Microsecond)
		if task.Exceeded() {
			t.Error("exceeded too early")
		}
		task.Charge(20 * Microsecond)
		if !task.Exceeded() {
			t.Error("not exceeded after overrun")
		}
		task.MarkTerminated()
		if !task.Terminated() {
			t.Error("not marked terminated")
		}
		if task.Charged() != 10*Microsecond {
			t.Errorf("charge not clamped: %v", task.Charged())
		}
	})
	s.Run()
	if c.Busy() != 10*Microsecond {
		t.Errorf("busy = %v, want clamped 10µs", c.Busy())
	}
}

func TestPriorityString(t *testing.T) {
	if PrioInterrupt.String() != "interrupt" || PrioKernel.String() != "kernel" || PrioUser.String() != "user" {
		t.Error("priority names wrong")
	}
	if Priority(9).String() != "Priority(9)" {
		t.Error("unknown priority String wrong")
	}
}

// Tasks submitted from within a running task start no earlier than the
// submitting task's completion when on the same CPU.
func TestNestedSubmitRunsAfterCompletion(t *testing.T) {
	s := New(1)
	c := NewCPU(s, "cpu0")
	var innerStart Time
	c.Submit(PrioKernel, "outer", func(task *Task) {
		task.Charge(30 * Microsecond)
		c.SubmitAt(task.Now(), PrioKernel, "inner", func(inner *Task) {
			innerStart = inner.Start()
		})
		task.Charge(20 * Microsecond)
	})
	s.Run()
	// Outer finishes at 50µs; inner arrives at 30µs but must wait.
	if innerStart != 50*Microsecond {
		t.Errorf("inner started at %v, want 50µs", innerStart)
	}
}
