package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The property tests drive random operation sequences against a packet chain
// and a reference byte slice, checking that the chain behaves exactly like
// the flat model and that structural invariants hold after every step.

type opKind int

const (
	opAdjFront opKind = iota
	opAdjBack
	opPrepend
	opAppend
	opPullup
	opSplitRejoin
	numOps
)

func TestQuickChainModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, sizeRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		size := int(sizeRaw % 4096)
		p := NewPool()
		ref := payload(size)
		m := p.FromBytes(ref, 32)
		ref = append([]byte(nil), ref...)

		for step := 0; step < 20; step++ {
			switch opKind(r.Intn(int(numOps))) {
			case opAdjFront:
				n := r.Intn(len(ref)/2 + 1)
				m.Adj(n)
				ref = ref[n:]
			case opAdjBack:
				n := r.Intn(len(ref)/2 + 1)
				m.Adj(-n)
				ref = ref[:len(ref)-n]
			case opPrepend:
				n := r.Intn(48)
				nm, err := m.Prepend(n)
				if err != nil {
					return false
				}
				m = nm
				ref = append(make([]byte, n), ref...)
			case opAppend:
				data := payload(r.Intn(600))
				if err := m.Append(data); err != nil {
					return false
				}
				ref = append(ref, data...)
			case opPullup:
				want := r.Intn(MLEN)
				if want > m.PktLen() {
					want = m.PktLen()
				}
				nm, err := m.Pullup(want)
				if err != nil {
					return false
				}
				m = nm
				if m.Len() < want {
					return false
				}
			case opSplitRejoin:
				if m.PktLen() == 0 {
					continue
				}
				off := r.Intn(m.PktLen() + 1)
				a, b, err := m.Split(off)
				if err != nil {
					return false
				}
				if err := a.Cat(b); err != nil {
					return false
				}
				m = a
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("invariant violated after step %d: %v", step, err)
				return false
			}
			if m.PktLen() != len(ref) {
				t.Logf("length diverged: chain=%d model=%d", m.PktLen(), len(ref))
				return false
			}
			got, err := m.CopyData(0, m.PktLen())
			if err != nil || !bytes.Equal(got, ref) {
				t.Logf("content diverged at step %d", step)
				return false
			}
		}
		m.Free()
		return p.Stats().InUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Clone always produces identical content, and freeing the clone
// never affects the original.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(sizeRaw uint16, seed int64) bool {
		size := int(sizeRaw % 6000)
		p := NewPool()
		data := payload(size)
		m := p.FromBytes(data, 16)
		c, err := m.Clone()
		if err != nil {
			return false
		}
		gc, err := c.CopyData(0, c.PktLen())
		if err != nil || !bytes.Equal(gc, data) {
			return false
		}
		c.Free()
		gm, err := m.CopyData(0, m.PktLen())
		if err != nil || !bytes.Equal(gm, data) {
			return false
		}
		m.Free()
		return p.Stats().InUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: Split at any offset partitions the bytes exactly.
func TestQuickSplitPartition(t *testing.T) {
	f := func(sizeRaw, offRaw uint16) bool {
		size := int(sizeRaw%5000) + 1
		off := int(offRaw) % (size + 1)
		p := NewPool()
		data := payload(size)
		m := p.FromBytes(data, 8)
		a, b, err := m.Split(off)
		if err != nil {
			return false
		}
		ga, _ := a.CopyData(0, a.PktLen())
		gb, _ := b.CopyData(0, b.PktLen())
		ok := bytes.Equal(ga, data[:off]) && bytes.Equal(gb, data[off:]) &&
			a.CheckInvariants() == nil && b.CheckInvariants() == nil
		a.Free()
		b.Free()
		return ok && p.Stats().InUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}
