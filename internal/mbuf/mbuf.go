// Package mbuf implements Berkeley memory buffers, the packet representation
// Plexus uses to pass packets through the protocol graph (paper §3.4,
// footnote 1). Packets are chains of fixed-size buffers; large payloads live
// in reference-counted clusters so copies up and down the stack are cheap.
//
// The paper relies on Modula-3's READONLY parameter mode to let multiple
// extensions view a packet without being able to modify it (Figure 4). Go has
// no compile-time equivalent, so the same discipline is enforced at runtime:
// a chain marked read-only (or one whose clusters are shared) refuses
// MutableBytes/Append/ExposeWritable, and mutators return ErrReadOnly. An
// extension that needs to modify packet contents must take an explicit copy,
// exactly as GoodPacketRecv does in the paper.
package mbuf

import (
	"errors"
	"fmt"
	"sync"
)

// Buffer geometry, in the spirit of 4.4BSD.
const (
	// MLEN is the data capacity of a small mbuf.
	MLEN = 224
	// MCLBYTES is the data capacity of a cluster mbuf.
	MCLBYTES = 2048
)

// Errors returned by mbuf operations.
var (
	// ErrReadOnly reports an attempted mutation of a read-only or shared
	// buffer; the caller must copy first (paper Figure 4).
	ErrReadOnly = errors.New("mbuf: buffer is read-only; copy before modifying")
	// ErrRange reports an offset/length outside the chain.
	ErrRange = errors.New("mbuf: offset or length out of range")
	// ErrNoSpace reports insufficient leading space for a Prepend that
	// could not be satisfied by allocating a new buffer.
	ErrNoSpace = errors.New("mbuf: no space")
	// ErrTooBig reports a Pullup longer than a small mbuf can hold.
	ErrTooBig = errors.New("mbuf: contiguous region too large for pullup")
)

// cluster is reference-counted external storage shared between chains.
type cluster struct {
	buf  []byte
	refs int
}

// PktHdr carries per-packet metadata on the first mbuf of a chain,
// mirroring BSD's m_pkthdr.
type PktHdr struct {
	// Len is the total data length of the chain. Maintained by all
	// mutating operations.
	Len int
	// RcvIf names the device the packet arrived on (empty for locally
	// originated packets).
	RcvIf string
	// Timestamp is an opaque arrival stamp (simulated nanoseconds in this
	// reproduction); the mbuf layer does not interpret it.
	Timestamp int64
	// Span is the packet-lifecycle trace ID (see sim.Metrics): stamped at
	// NIC/socket entry, carried across every header operation that moves
	// the PktHdr, and copied across the wire so one ID follows the packet
	// end to end. 0 means unstamped; the mbuf layer does not interpret it.
	Span uint64
	// Multicast marks link-level multicast/broadcast receptions.
	Multicast bool
}

// Mbuf is one buffer in a packet chain. The first mbuf of a packet carries a
// PktHdr. Mbuf values must be obtained from a Pool.
type Mbuf struct {
	next  *Mbuf
	pool  *Pool
	clust *cluster // nil ⇒ data lives in small
	small [MLEN]byte
	off   int
	len   int
	// hdr is nil for interior mbufs; for a packet head it always points at
	// hdrStore, so beginning a packet never allocates a separate header.
	hdr      *PktHdr
	hdrStore PktHdr
	ro       bool
	freed    bool
}

// Pool allocates and recycles mbufs, keeping the statistics BSD's mbstat
// exposes. A Pool is safe for concurrent use, although the simulator is
// single-threaded; tests may exercise pools in parallel.
type Pool struct {
	mu        sync.Mutex
	freeSmall []*Mbuf
	freeClust []*cluster
	stats     Stats
}

// Stats counts pool activity.
type Stats struct {
	AllocSmall        uint64 // small mbufs handed out
	AllocCluster      uint64 // clusters handed out
	Free              uint64 // mbufs returned
	InUse             int64  // currently live mbufs
	InUseClusters     int64  // currently live clusters (shared clusters count once)
	HighWater         int64  // maximum InUse ever observed
	HighWaterClusters int64  // maximum InUseClusters ever observed
	Recycled          uint64 // allocations satisfied from a free list (small mbufs and clusters)
}

// Gauge is the pool's live-buffer gauge: what is in flight right now and the
// worst it has ever been. Dispatcher.Health() and the bench -json output
// surface it so leak regressions show up as a nonzero in-use count (or a
// high-water jump) in diffable artifacts.
type Gauge struct {
	InUse             int64 `json:"mbuf_in_use"`
	InUseClusters     int64 `json:"mbuf_clusters_in_use"`
	HighWater         int64 `json:"mbuf_high_water"`
	HighWaterClusters int64 `json:"mbuf_cluster_high_water"`
}

// Gauge returns the pool's live-buffer gauge.
func (p *Pool) Gauge() Gauge {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Gauge{
		InUse:             p.stats.InUse,
		InUseClusters:     p.stats.InUseClusters,
		HighWater:         p.stats.HighWater,
		HighWaterClusters: p.stats.HighWaterClusters,
	}
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// defaultPool backs the package-level helpers.
var defaultPool = NewPool()

// DefaultPool returns the shared package-level pool.
func DefaultPool() *Pool { return defaultPool }

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// get hands out a small mbuf, attaching a recycled (or, outside the lock, a
// freshly made) cluster when withCluster is set. One lock acquisition covers
// both free lists and all stat updates.
func (p *Pool) get(withCluster bool) *Mbuf {
	p.mu.Lock()
	var m *Mbuf
	if n := len(p.freeSmall); n > 0 {
		m = p.freeSmall[n-1]
		p.freeSmall[n-1] = nil
		p.freeSmall = p.freeSmall[:n-1]
		*m = Mbuf{pool: p}
		p.stats.Recycled++
	} else {
		m = &Mbuf{pool: p}
	}
	p.stats.AllocSmall++
	p.stats.InUse++
	if p.stats.InUse > p.stats.HighWater {
		p.stats.HighWater = p.stats.InUse
	}
	if withCluster {
		p.stats.AllocCluster++
		p.stats.InUseClusters++
		if p.stats.InUseClusters > p.stats.HighWaterClusters {
			p.stats.HighWaterClusters = p.stats.InUseClusters
		}
		if n := len(p.freeClust); n > 0 {
			c := p.freeClust[n-1]
			p.freeClust[n-1] = nil
			p.freeClust = p.freeClust[:n-1]
			c.refs = 1
			m.clust = c
			p.stats.Recycled++
		}
	}
	p.mu.Unlock()
	if withCluster && m.clust == nil {
		m.clust = &cluster{buf: make([]byte, MCLBYTES), refs: 1}
	}
	return m
}

// Get allocates a small mbuf with no packet header.
func (p *Pool) Get() *Mbuf { return p.get(false) }

// GetPkt allocates a small mbuf that begins a packet (it carries a PktHdr).
func (p *Pool) GetPkt() *Mbuf {
	m := p.get(false)
	m.hdr = &m.hdrStore
	return m
}

// GetCluster allocates a cluster mbuf (no packet header).
func (p *Pool) GetCluster() *Mbuf {
	return p.get(true)
}

// FromBytes builds a packet chain holding a copy of data, with headroom bytes
// of leading space in the first mbuf for protocol headers to be prepended
// without further allocation. This is the normal way an application payload
// enters the stack.
func (p *Pool) FromBytes(data []byte, headroom int) *Mbuf {
	if headroom < 0 || headroom > MLEN {
		panic(fmt.Sprintf("mbuf: bad headroom %d", headroom))
	}
	head := p.GetPkt()
	head.off = headroom
	n := copy(head.small[headroom:], data)
	head.len = n
	data = data[n:]
	tail := head
	for len(data) > 0 {
		var m *Mbuf
		if len(data) > MLEN {
			m = p.GetCluster()
			n = copy(m.clust.buf, data)
		} else {
			m = p.Get()
			n = copy(m.small[:], data)
		}
		m.len = n
		data = data[n:]
		tail.next = m
		tail = m
	}
	head.hdr.Len = head.chainLen()
	return head
}

// capacity returns the total storage length of this mbuf.
func (m *Mbuf) storage() []byte {
	if m.clust != nil {
		return m.clust.buf
	}
	return m.small[:]
}

// Next returns the following mbuf of the chain, or nil.
func (m *Mbuf) Next() *Mbuf { return m.next }

// Len returns the data length in this one mbuf.
func (m *Mbuf) Len() int { return m.len }

// PktLen returns the total packet length recorded in the packet header.
// It panics if m is not the head of a packet.
func (m *Mbuf) PktLen() int {
	if m.hdr == nil {
		panic("mbuf: PktLen on non-header mbuf")
	}
	return m.hdr.Len
}

// Hdr returns the packet header, or nil for a non-head mbuf.
func (m *Mbuf) Hdr() *PktHdr { return m.hdr }

// IsCluster reports whether this mbuf's storage is a cluster.
func (m *Mbuf) IsCluster() bool { return m.clust != nil }

// Freed reports whether this mbuf has been returned to the pool. A freed
// mbuf must not be used; the accessor exists for fault diagnostics (e.g.
// detecting that a dispatched frame was already consumed by its owner).
func (m *Mbuf) Freed() bool { return m.freed }

// chainLen walks the chain summing data lengths.
func (m *Mbuf) chainLen() int {
	n := 0
	for mm := m; mm != nil; mm = mm.next {
		n += mm.len
	}
	return n
}

// Bytes returns a read view of this mbuf's data. Callers must not modify the
// returned slice; writers go through MutableBytes, which enforces the
// read-only and sharing rules.
func (m *Mbuf) Bytes() []byte {
	return m.storage()[m.off : m.off+m.len]
}

// shared reports whether this mbuf's storage is visible through another chain.
func (m *Mbuf) shared() bool { return m.clust != nil && m.clust.refs > 1 }

// Writable reports whether this mbuf's data may be modified in place.
func (m *Mbuf) Writable() bool { return !m.ro && !m.shared() }

// MutableBytes returns a writable view of this mbuf's data, or ErrReadOnly if
// the buffer is read-only or shares a cluster with another chain.
func (m *Mbuf) MutableBytes() ([]byte, error) {
	if !m.Writable() {
		return nil, ErrReadOnly
	}
	return m.storage()[m.off : m.off+m.len], nil
}

// SetReadOnly marks the entire chain read-only. This is how the Plexus
// receive path hands a packet to untrusted extensions (paper §3.4).
func (m *Mbuf) SetReadOnly() {
	for mm := m; mm != nil; mm = mm.next {
		mm.ro = true
	}
}

// ReadOnly reports whether this mbuf was marked read-only.
func (m *Mbuf) ReadOnly() bool { return m.ro }

// leadingSpace returns the unused bytes before the data in this mbuf.
func (m *Mbuf) leadingSpace() int { return m.off }

// trailingSpace returns the unused bytes after the data in this mbuf.
func (m *Mbuf) trailingSpace() int { return len(m.storage()) - m.off - m.len }

// Prepend grows the packet by n bytes at the front, returning the (possibly
// new) head. The fresh bytes are zeroed and writable via MutableBytes on the
// head. Prepending to a read-only chain fails: headers may not be pushed onto
// someone else's packet.
func (m *Mbuf) Prepend(n int) (*Mbuf, error) {
	if m.hdr == nil {
		return nil, errors.New("mbuf: Prepend on non-header mbuf")
	}
	if n < 0 {
		return nil, ErrRange
	}
	if m.ro {
		return nil, ErrReadOnly
	}
	if n <= m.leadingSpace() && !m.shared() {
		m.off -= n
		m.len += n
		clear(m.storage()[m.off : m.off+n])
		m.hdr.Len += n
		return m, nil
	}
	if n > MLEN {
		return nil, ErrNoSpace
	}
	nm := m.pool.get(false)
	nm.hdrStore = *m.hdr
	nm.hdr = &nm.hdrStore
	m.hdr = nil
	// Leave a little room for further prepends, as BSD does.
	nm.off = MLEN - n
	nm.len = n
	nm.next = m
	nm.hdr.Len += n
	return nm, nil
}

// Append adds data at the end of the chain, extending into trailing space or
// allocating as needed. m must be the packet head.
func (m *Mbuf) Append(data []byte) error {
	if m.hdr == nil {
		return errors.New("mbuf: Append on non-header mbuf")
	}
	tail := m
	for tail.next != nil {
		tail = tail.next
	}
	total := len(data)
	for len(data) > 0 {
		if tail.ro || tail.shared() {
			return ErrReadOnly
		}
		if sp := tail.trailingSpace(); sp > 0 {
			n := copy(tail.storage()[tail.off+tail.len:], data)
			tail.len += n
			data = data[n:]
			continue
		}
		var nm *Mbuf
		if len(data) > MLEN {
			nm = m.pool.GetCluster()
		} else {
			nm = m.pool.get(false)
		}
		tail.next = nm
		tail = nm
	}
	m.hdr.Len += total
	return nil
}

// Adj trims the packet: n > 0 removes n bytes from the front, n < 0 removes
// -n bytes from the back (BSD m_adj). Trimming more than the packet holds
// empties it. Window adjustment is metadata, not data mutation, so Adj is
// permitted on read-only chains — a layer may strip its own header view
// without copying.
func (m *Mbuf) Adj(n int) {
	if m.hdr == nil {
		panic("mbuf: Adj on non-header mbuf")
	}
	switch {
	case n > 0:
		if n > m.hdr.Len {
			n = m.hdr.Len
		}
		m.hdr.Len -= n
		for mm := m; mm != nil && n > 0; mm = mm.next {
			take := mm.len
			if take > n {
				take = n
			}
			mm.off += take
			mm.len -= take
			n -= take
		}
	case n < 0:
		n = -n
		if n > m.hdr.Len {
			n = m.hdr.Len
		}
		m.hdr.Len -= n
		// Walk from the tail removing bytes.
		remaining := m.hdr.Len
		for mm := m; mm != nil; mm = mm.next {
			if mm.len >= remaining {
				mm.len = remaining
				remaining = 0
				// Zero-length trailing mbufs stay linked; harmless.
			} else {
				remaining -= mm.len
			}
		}
	}
}

// Pullup rearranges the chain so that the first n bytes of the packet are
// contiguous in the head mbuf, returning the (possibly new) head. This is
// what a protocol layer calls before overlaying a header view. n is limited
// to MLEN. Pullup never modifies shared cluster data — it copies into fresh
// storage when rearrangement is needed — so it is legal on read-only chains;
// the result of a pullup that copied is writable only in its new head.
func (m *Mbuf) Pullup(n int) (*Mbuf, error) {
	if m.hdr == nil {
		return nil, errors.New("mbuf: Pullup on non-header mbuf")
	}
	if n < 0 || n > m.hdr.Len {
		return nil, ErrRange
	}
	if n > MLEN {
		return nil, ErrTooBig
	}
	if m.len >= n {
		return m, nil
	}
	// Gather n bytes into a fresh small mbuf, then link the remainder.
	nm := m.pool.get(false)
	nm.hdrStore = *m.hdr
	nm.hdr = &nm.hdrStore
	m.hdr = nil
	nm.ro = m.ro
	nm.off = 0
	got := 0
	mm := m
	for mm != nil && got < n {
		take := mm.len
		if take > n-got {
			take = n - got
		}
		copy(nm.small[got:], mm.Bytes()[:take])
		mm.off += take
		mm.len -= take
		got += take
		if mm.len == 0 {
			next := mm.next
			mm.hdr = nil
			mm.release()
			mm = next
		}
	}
	nm.len = got
	nm.next = mm
	// Pullup copies data into private storage; the new head is writable
	// unless the chain was read-only.
	return nm, nil
}

// CopyData copies n bytes starting at byte offset off of the packet into a
// fresh slice.
func (m *Mbuf) CopyData(off, n int) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, ErrRange
	}
	out := make([]byte, n)
	if err := m.CopyTo(off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CopyTo copies len(dst) bytes starting at byte offset off of the packet into
// dst, which the caller supplies — typically a stack array or reused buffer —
// so hot-path header reads need not allocate.
func (m *Mbuf) CopyTo(off int, dst []byte) error {
	if m.hdr == nil {
		return errors.New("mbuf: CopyTo on non-header mbuf")
	}
	n := len(dst)
	if off < 0 || off+n > m.hdr.Len {
		return ErrRange
	}
	pos := 0
	for mm := m; mm != nil && pos < n; mm = mm.next {
		if off >= mm.len {
			off -= mm.len
			continue
		}
		pos += copy(dst[pos:], mm.Bytes()[off:])
		off = 0
	}
	return nil
}

// Clone produces a new packet chain referencing the same data (clusters are
// shared by reference count; small-mbuf data is copied). Both the original
// and the clone become non-writable in shared regions until one copy is
// freed — the copy-on-write discipline of §3.4.
func (m *Mbuf) Clone() (*Mbuf, error) {
	if m.hdr == nil {
		return nil, errors.New("mbuf: Clone on non-header mbuf")
	}
	var head, tail *Mbuf
	for mm := m; mm != nil; mm = mm.next {
		var nm *Mbuf
		if mm.clust != nil {
			nm = m.pool.get(false)
			nm.clust = mm.clust
			mm.clust.refs++
			nm.off = mm.off
			nm.len = mm.len
		} else {
			nm = m.pool.get(false)
			nm.off = 0
			nm.len = mm.len
			copy(nm.small[:], mm.Bytes())
		}
		if head == nil {
			head, tail = nm, nm
		} else {
			tail.next = nm
			tail = nm
		}
	}
	head.hdrStore = *m.hdr
	head.hdr = &head.hdrStore
	return head, nil
}

// DeepCopy produces a fully private, writable copy of the packet.
func (m *Mbuf) DeepCopy() (*Mbuf, error) {
	if m.hdr == nil {
		return nil, errors.New("mbuf: DeepCopy on non-header mbuf")
	}
	data, err := m.CopyData(0, m.hdr.Len)
	if err != nil {
		return nil, err
	}
	nm := m.pool.FromBytes(data, 0)
	nm.hdrStore = *m.hdr
	nm.hdr.Len = len(data)
	return nm, nil
}

// Split divides the packet at byte offset off, returning two packets: the
// first holding bytes [0,off), the second [off,len). The receiver is
// consumed. Buffers wholly past the split point move (not alias) to the
// second packet, so Split is legal on read-only chains; the moved buffers
// retain their read-only marking.
func (m *Mbuf) Split(off int) (*Mbuf, *Mbuf, error) {
	if m.hdr == nil {
		return nil, nil, errors.New("mbuf: Split on non-header mbuf")
	}
	if off < 0 || off > m.hdr.Len {
		return nil, nil, ErrRange
	}
	total := m.hdr.Len
	// Find the mbuf containing offset off.
	mm := m
	rem := off
	for mm != nil && rem > mm.len {
		rem -= mm.len
		mm = mm.next
	}
	if mm == nil {
		return nil, nil, ErrRange
	}
	second := m.pool.GetPkt()
	second.hdr.RcvIf = m.hdr.RcvIf
	second.hdr.Timestamp = m.hdr.Timestamp
	if rem < mm.len {
		// Copy the partial remainder of mm into second's head.
		n := mm.len - rem
		if n <= MLEN {
			second.len = copy(second.small[:], mm.Bytes()[rem:])
		} else {
			c := m.pool.GetCluster()
			c.len = copy(c.clust.buf, mm.Bytes()[rem:])
			second.next = c
		}
		mm.len = rem
	}
	second.next = append_chain(second.next, mm.next)
	mm.next = nil
	m.hdr.Len = off
	second.hdr.Len = total - off
	return m, second, nil
}

func append_chain(a, b *Mbuf) *Mbuf {
	if a == nil {
		return b
	}
	t := a
	for t.next != nil {
		t = t.next
	}
	t.next = b
	return a
}

// Cat appends packet n's data to packet m, consuming n. Both must be packet
// heads.
func (m *Mbuf) Cat(n *Mbuf) error {
	if m.hdr == nil || n == nil || n.hdr == nil {
		return errors.New("mbuf: Cat requires two packet heads")
	}
	m.hdr.Len += n.hdr.Len
	n.hdr = nil
	tail := m
	for tail.next != nil {
		tail = tail.next
	}
	tail.next = n
	return nil
}

// release returns one mbuf to the pool, dropping a cluster reference. A
// cluster whose last reference drops is recycled alongside the small mbuf.
func (m *Mbuf) release() {
	if m.freed {
		panic("mbuf: double free")
	}
	m.freed = true
	c := m.clust
	if c != nil {
		c.refs--
		m.clust = nil
	}
	p := m.pool
	p.mu.Lock()
	p.stats.Free++
	p.stats.InUse--
	if c != nil && c.refs == 0 {
		p.stats.InUseClusters--
	}
	m.next = nil
	m.hdr = nil
	if len(p.freeSmall) < 1024 {
		p.freeSmall = append(p.freeSmall, m)
	}
	if c != nil && c.refs == 0 && len(p.freeClust) < 256 {
		p.freeClust = append(p.freeClust, c)
	}
	p.mu.Unlock()
}

// Free returns the whole chain to its pool. Using a chain after Free is a
// bug; the pool panics on double free.
func (m *Mbuf) Free() {
	for mm := m; mm != nil; {
		next := mm.next
		mm.release()
		mm = next
	}
}

// NumBufs counts the mbufs in the chain.
func (m *Mbuf) NumBufs() int {
	n := 0
	for mm := m; mm != nil; mm = mm.next {
		n++
	}
	return n
}

// CheckInvariants verifies structural invariants of a packet chain; property
// tests call it after every operation. It returns a descriptive error on the
// first violation.
func (m *Mbuf) CheckInvariants() error {
	if m.hdr == nil {
		return errors.New("head has no packet header")
	}
	sum := 0
	for mm := m; mm != nil; mm = mm.next {
		if mm.freed {
			return errors.New("chain contains freed mbuf")
		}
		if mm.off < 0 || mm.len < 0 || mm.off+mm.len > len(mm.storage()) {
			return fmt.Errorf("window out of bounds: off=%d len=%d cap=%d", mm.off, mm.len, len(mm.storage()))
		}
		if mm != m && mm.hdr != nil {
			return errors.New("interior mbuf has packet header")
		}
		if mm.clust != nil && mm.clust.refs < 1 {
			return fmt.Errorf("cluster refs=%d", mm.clust.refs)
		}
		sum += mm.len
	}
	if sum != m.hdr.Len {
		return fmt.Errorf("PktHdr.Len=%d but chain holds %d", m.hdr.Len, sum)
	}
	return nil
}
