package mbuf

import (
	"bytes"
	"errors"
	"testing"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestFromBytesSmall(t *testing.T) {
	p := NewPool()
	data := payload(64)
	m := p.FromBytes(data, 96)
	defer m.Free()
	if m.PktLen() != 64 {
		t.Fatalf("PktLen = %d, want 64", m.PktLen())
	}
	if m.NumBufs() != 1 {
		t.Fatalf("NumBufs = %d, want 1", m.NumBufs())
	}
	got, err := m.CopyData(0, 64)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFromBytesLargeUsesClusters(t *testing.T) {
	p := NewPool()
	data := payload(5000)
	m := p.FromBytes(data, 64)
	defer m.Free()
	if m.PktLen() != 5000 {
		t.Fatalf("PktLen = %d", m.PktLen())
	}
	cluster := false
	for mm := m; mm != nil; mm = mm.Next() {
		if mm.IsCluster() {
			cluster = true
		}
	}
	if !cluster {
		t.Fatal("5000-byte packet built without clusters")
	}
	got, _ := m.CopyData(0, 5000)
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted crossing buffers")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadHeadroomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad headroom")
		}
	}()
	NewPool().FromBytes(nil, MLEN+1)
}

func TestPrependInPlace(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(32), 64)
	defer m.Free()
	m2, err := m.Prepend(14)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatal("prepend with headroom allocated a new mbuf")
	}
	if m.PktLen() != 46 {
		t.Fatalf("PktLen = %d, want 46", m.PktLen())
	}
	b, err := m.MutableBytes()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 14; i++ {
		if b[i] != 0 {
			t.Fatal("prepended bytes not zeroed")
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrependAllocates(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(32), 0) // no headroom
	m2, err := m.Prepend(20)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Free()
	if m2 == m {
		t.Fatal("expected a new head mbuf")
	}
	if m2.PktLen() != 52 {
		t.Fatalf("PktLen = %d, want 52", m2.PktLen())
	}
	if m.Hdr() != nil {
		t.Fatal("old head kept the packet header")
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrependErrors(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(8), 0)
	defer m.Free()
	if _, err := m.Prepend(MLEN + 1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("huge prepend: err = %v, want ErrNoSpace", err)
	}
	if _, err := m.Prepend(-1); !errors.Is(err, ErrRange) {
		t.Errorf("negative prepend: err = %v, want ErrRange", err)
	}
	m.SetReadOnly()
	if _, err := m.Prepend(4); !errors.Is(err, ErrReadOnly) {
		t.Errorf("read-only prepend: err = %v, want ErrReadOnly", err)
	}
}

func TestPrependOnNonHeader(t *testing.T) {
	p := NewPool()
	m := p.Get()
	if _, err := m.Prepend(4); err == nil {
		t.Fatal("Prepend on non-header mbuf succeeded")
	}
	m.Free()
}

func TestAppend(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(16), 32)
	defer m.Free()
	extra := payload(3000)
	if err := m.Append(extra); err != nil {
		t.Fatal(err)
	}
	if m.PktLen() != 3016 {
		t.Fatalf("PktLen = %d, want 3016", m.PktLen())
	}
	got, _ := m.CopyData(16, 3000)
	if !bytes.Equal(got, extra) {
		t.Fatal("appended data corrupted")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReadOnlyFails(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(16), 0)
	defer m.Free()
	m.SetReadOnly()
	if err := m.Append([]byte{1}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
}

func TestAdjFront(t *testing.T) {
	p := NewPool()
	data := payload(600)
	m := p.FromBytes(data, 0)
	defer m.Free()
	m.Adj(100)
	if m.PktLen() != 500 {
		t.Fatalf("PktLen = %d, want 500", m.PktLen())
	}
	got, _ := m.CopyData(0, 500)
	if !bytes.Equal(got, data[100:]) {
		t.Fatal("front trim removed wrong bytes")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjBack(t *testing.T) {
	p := NewPool()
	data := payload(600)
	m := p.FromBytes(data, 0)
	defer m.Free()
	m.Adj(-150)
	if m.PktLen() != 450 {
		t.Fatalf("PktLen = %d, want 450", m.PktLen())
	}
	got, _ := m.CopyData(0, 450)
	if !bytes.Equal(got, data[:450]) {
		t.Fatal("back trim removed wrong bytes")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjOvershootEmpties(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(40), 0)
	defer m.Free()
	m.Adj(1000)
	if m.PktLen() != 0 {
		t.Fatalf("PktLen = %d, want 0", m.PktLen())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPullup(t *testing.T) {
	p := NewPool()
	data := payload(700)
	m := p.FromBytes(data, MLEN-8) // head holds only 8 bytes
	if m.Len() >= 40 {
		t.Fatalf("test setup: head already holds %d bytes", m.Len())
	}
	m2, err := m.Pullup(40)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Free()
	if m2.Len() < 40 {
		t.Fatalf("head holds %d bytes after Pullup(40)", m2.Len())
	}
	if m2.PktLen() != 700 {
		t.Fatalf("PktLen = %d, want 700", m2.PktLen())
	}
	got, _ := m2.CopyData(0, 700)
	if !bytes.Equal(got, data) {
		t.Fatal("pullup corrupted data")
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPullupNoopWhenContiguous(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(100), 0)
	defer m.Free()
	m2, err := m.Pullup(50)
	if err != nil || m2 != m {
		t.Fatalf("contiguous pullup should be a no-op: %v", err)
	}
}

func TestPullupErrors(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(100), 0)
	defer m.Free()
	if _, err := m.Pullup(101); !errors.Is(err, ErrRange) {
		t.Errorf("pullup beyond packet: %v", err)
	}
	big := p.FromBytes(payload(MLEN*3), 0)
	defer big.Free()
	if _, err := big.Pullup(MLEN + 1); !errors.Is(err, ErrTooBig) {
		t.Errorf("oversized pullup: %v", err)
	}
}

func TestCopyDataRange(t *testing.T) {
	p := NewPool()
	data := payload(3000)
	m := p.FromBytes(data, 16)
	defer m.Free()
	got, err := m.CopyData(1500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1500:2500]) {
		t.Fatal("mid-chain copy wrong")
	}
	if _, err := m.CopyData(-1, 5); !errors.Is(err, ErrRange) {
		t.Error("negative offset accepted")
	}
	if _, err := m.CopyData(0, 3001); !errors.Is(err, ErrRange) {
		t.Error("overlong copy accepted")
	}
}

func TestCloneSharesClusters(t *testing.T) {
	p := NewPool()
	data := payload(4000)
	m := p.FromBytes(data, 0)
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Shared cluster regions must refuse mutation on both chains.
	var sharedSeen bool
	for mm := m; mm != nil; mm = mm.Next() {
		if mm.IsCluster() {
			sharedSeen = true
			if _, err := mm.MutableBytes(); !errors.Is(err, ErrReadOnly) {
				t.Error("original cluster writable while shared")
			}
		}
	}
	if !sharedSeen {
		t.Fatal("no clusters in 4000-byte packet")
	}
	got, _ := c.CopyData(0, 4000)
	if !bytes.Equal(got, data) {
		t.Fatal("clone data differs")
	}
	// Freeing the clone restores writability to the original.
	c.Free()
	for mm := m; mm != nil; mm = mm.Next() {
		if mm.IsCluster() {
			if _, err := mm.MutableBytes(); err != nil {
				t.Error("original cluster still unwritable after clone freed")
			}
		}
	}
	m.Free()
}

func TestDeepCopyIsWritable(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(3000), 0)
	defer m.Free()
	m.SetReadOnly()
	d, err := m.DeepCopy()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Free()
	for mm := d; mm != nil; mm = mm.Next() {
		if !mm.Writable() {
			t.Fatal("deep copy not writable")
		}
	}
	if d.PktLen() != 3000 {
		t.Fatalf("deep copy PktLen = %d", d.PktLen())
	}
}

func TestReadOnlyDiscipline(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(64), 16)
	defer m.Free()
	if _, err := m.MutableBytes(); err != nil {
		t.Fatal("fresh packet should be writable")
	}
	m.SetReadOnly()
	if !m.ReadOnly() {
		t.Fatal("ReadOnly() = false after SetReadOnly")
	}
	if _, err := m.MutableBytes(); !errors.Is(err, ErrReadOnly) {
		t.Fatal("read-only packet was writable: the BadPacketRecv case must fail")
	}
	// The paper's GoodPacketRecv: copy, then modify.
	cp, err := m.DeepCopy()
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Free()
	b, err := cp.MutableBytes()
	if err != nil {
		t.Fatal("copy of read-only packet should be writable")
	}
	for i := range b {
		b[i] = 0
	}
}

func TestSplit(t *testing.T) {
	p := NewPool()
	data := payload(3000)
	m := p.FromBytes(data, 0)
	a, b, err := m.Split(1234)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Free()
	defer b.Free()
	if a.PktLen() != 1234 || b.PktLen() != 3000-1234 {
		t.Fatalf("split lengths %d/%d", a.PktLen(), b.PktLen())
	}
	ga, _ := a.CopyData(0, a.PktLen())
	gb, _ := b.CopyData(0, b.PktLen())
	if !bytes.Equal(ga, data[:1234]) || !bytes.Equal(gb, data[1234:]) {
		t.Fatal("split data wrong")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAtBoundaries(t *testing.T) {
	p := NewPool()
	for _, off := range []int{0, 500} {
		m := p.FromBytes(payload(500), 0)
		a, b, err := m.Split(off)
		if err != nil {
			t.Fatalf("Split(%d): %v", off, err)
		}
		if a.PktLen() != off || b.PktLen() != 500-off {
			t.Fatalf("Split(%d) lengths %d/%d", off, a.PktLen(), b.PktLen())
		}
		a.Free()
		b.Free()
	}
}

func TestCat(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(100), 0)
	n := p.FromBytes(payload(200), 0)
	if err := m.Cat(n); err != nil {
		t.Fatal(err)
	}
	defer m.Free()
	if m.PktLen() != 300 {
		t.Fatalf("PktLen = %d, want 300", m.PktLen())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolStatsAndRecycling(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(100), 0)
	s := p.Stats()
	if s.InUse != int64(m.NumBufs()) {
		t.Fatalf("InUse = %d, want %d", s.InUse, m.NumBufs())
	}
	m.Free()
	s = p.Stats()
	if s.InUse != 0 {
		t.Fatalf("InUse after free = %d", s.InUse)
	}
	m2 := p.Get()
	if p.Stats().Recycled == 0 {
		t.Fatal("free-listed mbuf not recycled")
	}
	m2.Free()
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(10), 0)
	m.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free()
}

func TestDefaultPool(t *testing.T) {
	m := DefaultPool().FromBytes(payload(10), 0)
	if m.PktLen() != 10 {
		t.Fatal("default pool broken")
	}
	m.Free()
}

func TestHdrAccessors(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(10), 0)
	defer m.Free()
	m.Hdr().RcvIf = "eth0"
	m.Hdr().Timestamp = 42
	m.Hdr().Multicast = true
	if m.Hdr().RcvIf != "eth0" || m.Hdr().Timestamp != 42 || !m.Hdr().Multicast {
		t.Fatal("header fields lost")
	}
	nonHead := p.Get()
	defer nonHead.Free()
	if nonHead.Hdr() != nil {
		t.Fatal("non-head mbuf has a header")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PktLen on non-head did not panic")
		}
	}()
	nonHead.PktLen()
}

func TestClusterRecycling(t *testing.T) {
	p := NewPool()
	m := p.GetCluster()
	if !m.IsCluster() {
		t.Fatal("GetCluster returned a non-cluster mbuf")
	}
	st := p.Stats()
	if st.AllocCluster != 1 {
		t.Fatalf("AllocCluster = %d, want 1", st.AllocCluster)
	}
	if st.Recycled != 0 {
		t.Fatalf("Recycled = %d before any free, want 0", st.Recycled)
	}
	m.Free()
	m2 := p.GetCluster()
	st = p.Stats()
	if st.AllocCluster != 2 {
		t.Fatalf("AllocCluster = %d, want 2", st.AllocCluster)
	}
	// Both the small mbuf and its cluster come from the free lists.
	if st.Recycled != 2 {
		t.Fatalf("Recycled = %d after cluster reuse, want 2 (small + cluster)", st.Recycled)
	}
	m2.Free()
}

func TestClusterRecycleAllocs(t *testing.T) {
	p := NewPool()
	// Warm the free lists.
	p.GetCluster().Free()
	avg := testing.AllocsPerRun(100, func() {
		p.GetCluster().Free()
	})
	if avg != 0 {
		t.Fatalf("warm GetCluster/Free allocates %.2f/iter, want 0", avg)
	}
}

func TestSharedClusterNotRecycledEarly(t *testing.T) {
	p := NewPool()
	m := p.FromBytes(payload(MLEN+100), 0) // tail lands in a cluster
	clone, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	m.Free() // cluster still referenced by clone
	got, err := clone.CopyData(0, clone.PktLen())
	if err != nil {
		t.Fatal(err)
	}
	want := payload(MLEN + 100)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d corrupted after partner free: got %d want %d", i, got[i], want[i])
		}
	}
	clone.Free()
}
