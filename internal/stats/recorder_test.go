package stats

import (
	"bytes"
	"encoding/json"
	"testing"

	"plexus/internal/sim"
)

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRecorder(Config{HopCap: 4, SampleCap: 4})
	for i := 0; i < 6; i++ {
		r.Hop(uint64(i), sim.Time(i)*sim.Microsecond, "h", "ip", "send", 8)
		r.Sample("h", sim.ProfProto, "ip", sim.PrioKernel, sim.Time(i), sim.Microsecond)
	}
	if r.HopsRecorded() != 6 || r.HopsDropped() != 2 {
		t.Fatalf("hops recorded=%d dropped=%d, want 6/2", r.HopsRecorded(), r.HopsDropped())
	}
	if r.SamplesRecorded() != 6 || r.SamplesDropped() != 2 {
		t.Fatalf("samples recorded=%d dropped=%d, want 6/2", r.SamplesRecorded(), r.SamplesDropped())
	}
	hops := r.Hops()
	if len(hops) != 4 {
		t.Fatalf("retained %d hops, want 4", len(hops))
	}
	// Flight-recorder semantics: the oldest two were overwritten, the tail
	// is retained in recording order.
	for i, h := range hops {
		if h.Span != uint64(i+2) {
			t.Fatalf("hops[%d].Span = %d, want %d", i, h.Span, i+2)
		}
	}
}

func TestRecorderRingPartialFill(t *testing.T) {
	r := NewRecorder(Config{HopCap: 8, SampleCap: 8})
	r.Hop(1, 0, "h", "ip", "send", 8)
	r.Hop(1, sim.Microsecond, "h", "ether", "send", 22)
	if r.HopsDropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.HopsDropped())
	}
	if hops := r.Hops(); len(hops) != 2 || hops[0].Layer != "ip" || hops[1].Layer != "ether" {
		t.Fatalf("unexpected retained hops: %+v", hops)
	}
}

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder(Config{})
	r.Hop(3, 0, "a", "udp", "send", 8)
	r.Hop(1, 10, "a", "ip", "send", 36)
	r.Hop(3, 20, "b", "udp", "recv", 8)
	if got := r.Spans(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Spans() = %v, want [1 3]", got)
	}
	hops := r.SpanHops(3)
	if len(hops) != 2 || hops[0].Host != "a" || hops[1].Host != "b" {
		t.Fatalf("SpanHops(3) = %+v", hops)
	}
	if r.SpanHops(99) != nil {
		t.Fatalf("SpanHops of unknown span should be empty")
	}
}

func TestRecorderProfileAndFolded(t *testing.T) {
	r := NewRecorder(Config{})
	// Insert out of order; Profile must sort host, kind, descending total.
	r.Sample("b", sim.ProfCopy, "copyin", sim.PrioKernel, 0, 5*sim.Microsecond)
	r.Sample("a", sim.ProfProto, "udp", sim.PrioKernel, 0, 2*sim.Microsecond)
	r.Sample("a", sim.ProfProto, "ip", sim.PrioKernel, 0, 3*sim.Microsecond)
	r.Sample("a", sim.ProfProto, "ip", sim.PrioKernel, 0, 3*sim.Microsecond)
	rows := r.Profile()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Host != "a" || rows[0].Owner != "ip" || rows[0].Total != 6*sim.Microsecond || rows[0].Count != 2 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[1].Owner != "udp" || rows[2].Host != "b" {
		t.Fatalf("rows out of order: %+v", rows)
	}
	want := "a;proto;ip 6000\na;proto;udp 2000\nb;copy;copyin 5000\n"
	if got := r.Folded(); got != want {
		t.Fatalf("Folded() = %q, want %q", got, want)
	}
	if h := r.KindHist(sim.ProfProto); h.Count() != 3 {
		t.Fatalf("proto kind hist count = %d", h.Count())
	}
}

func TestRecorderQueueDepth(t *testing.T) {
	r := NewRecorder(Config{})
	for _, d := range []int{1, 1, 2, 3} {
		r.QueueDepth("h", d)
	}
	h := r.QueueDepthHist()
	if h.Count() != 4 || h.Max() != 3 {
		t.Fatalf("depth hist count=%d max=%d", h.Count(), h.Max())
	}
}

// TestRecorderHotPathNoAlloc pins the flight-recorder invariant: once the
// aggregation map has seen every (host, kind, owner) triple, Hop/Sample/
// QueueDepth allocate nothing.
func TestRecorderHotPathNoAlloc(t *testing.T) {
	r := NewRecorder(Config{HopCap: 64, SampleCap: 64})
	r.Sample("h", sim.ProfProto, "ip", sim.PrioKernel, 0, sim.Microsecond) // warm the agg key
	allocs := testing.AllocsPerRun(500, func() {
		r.Hop(1, sim.Microsecond, "h", "ip", "send", 8)
		r.Sample("h", sim.ProfProto, "ip", sim.PrioKernel, 0, sim.Microsecond)
		r.QueueDepth("h", 2)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.2f/op, want 0", allocs)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(Config{})
	r.Sample("client", sim.ProfTask, "app", sim.PrioUser, 0, 10*sim.Microsecond)
	r.Sample("server", sim.ProfProto, "ip", sim.PrioKernel, 5*sim.Microsecond, 2*sim.Microsecond)
	r.Hop(1, sim.Microsecond, "client", "udp", "send", 8)
	r.Hop(1, 8*sim.Microsecond, "server", "udp", "recv", 8)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	pids := make(map[int]bool)
	var slices, instants int
	for _, e := range trace.TraceEvents {
		pids[e.Pid] = true
		switch e.Ph {
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 host processes, got pids %v", pids)
	}
	if slices != 2 || instants != 2 {
		t.Fatalf("slices=%d instants=%d, want 2/2", slices, instants)
	}
	// Determinism: a second export of the same recorder is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Chrome trace export is not deterministic")
	}
}
