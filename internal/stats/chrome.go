package stats

import (
	"encoding/json"
	"io"
	"sort"

	"plexus/internal/sim"
)

// Chrome trace_event export: the retained profiler samples become complete
// ("X") slices and the packet hops become instant ("i") events, grouped one
// process per simulated host and one thread per profile kind. The resulting
// JSON loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Timestamps are simulated microseconds rendered as integers-plus-fraction
// via float64 — exact for any plausible run length, and marshalled by
// encoding/json deterministically, so two identical runs produce identical
// files.

// chromeEvent is one trace_event record. Field order follows the trace_event
// spec's conventional ordering.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of a trace_event file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// micros converts simulated time to trace_event microseconds.
func micros(t sim.Time) float64 { return float64(t) / 1000.0 }

// The hop track shares the per-host process with the profiler threads, and
// the state-transition instants get their own track beside it.
const (
	hopTid   = 100
	stateTid = 101
)

// ChromeCounter is one point on a counter track ("C" event): a telemetry
// series sample rendered as a stacked area chart under the host's process.
type ChromeCounter struct {
	Host  string
	Name  string // counter track name, e.g. "tcp.cwnd conn=5001-10.0.0.2:80"
	At    sim.Time
	Value int64
}

// ChromeInstant is one instant event on a host's state track — an audit
// transition rendered into the timeline next to the profiler slices that
// caused it.
type ChromeInstant struct {
	Host string
	Name string // e.g. "tcp FinWait1->TimeWait"
	At   sim.Time
	Args map[string]any
}

// WriteChromeTrace emits the retained samples and hops as trace_event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return r.WriteChromeTraceWith(w, nil, nil)
}

// WriteChromeTraceWith emits the profiler timeline plus externally supplied
// counter tracks (telemetry series) and instant events (audit transitions),
// merged into the same per-host processes so queue depths and window sizes
// line up under the slices that produced them.
func (r *Recorder) WriteChromeTraceWith(w io.Writer, counters []ChromeCounter, instants []ChromeInstant) error {
	samples := r.Samples()
	hops := r.Hops()

	// Assign stable pids: hosts in sorted order.
	hostSet := make(map[string]bool)
	for _, s := range samples {
		hostSet[s.Host] = true
	}
	for _, h := range hops {
		hostSet[h.Host] = true
	}
	for _, c := range counters {
		hostSet[c.Host] = true
	}
	for _, in := range instants {
		hostSet[in.Host] = true
	}
	hosts := make([]string, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	pid := make(map[string]int, len(hosts))
	for i, h := range hosts {
		pid[h] = i + 1
	}

	events := make([]chromeEvent, 0, len(samples)+len(hops)+len(hosts)*(int(sim.NumProfKinds)+2))
	for _, h := range hosts {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid[h], Tid: 0,
			Args: map[string]any{"name": h},
		})
		for k := sim.ProfKind(0); k < sim.NumProfKinds; k++ {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid[h], Tid: int(k) + 1,
				Args: map[string]any{"name": k.String()},
			})
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid[h], Tid: hopTid,
			Args: map[string]any{"name": "packets"},
		})
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid[h], Tid: stateTid,
			Args: map[string]any{"name": "states"},
		})
	}
	for _, s := range samples {
		events = append(events, chromeEvent{
			Name: s.Owner, Cat: s.Kind.String(), Ph: "X",
			Ts: micros(s.Start), Dur: micros(s.Dur),
			Pid: pid[s.Host], Tid: int(s.Kind) + 1,
			Args: map[string]any{"prio": s.Prio.String()},
		})
	}
	for _, h := range hops {
		events = append(events, chromeEvent{
			Name: h.Layer + "." + h.Action, Cat: "span", Ph: "i",
			Ts: micros(h.At), Pid: pid[h.Host], Tid: hopTid, Scope: "t",
			Args: map[string]any{"span": h.Span, "bytes": h.Bytes},
		})
	}
	for _, c := range counters {
		events = append(events, chromeEvent{
			Name: c.Name, Cat: "telemetry", Ph: "C",
			Ts: micros(c.At), Pid: pid[c.Host], Tid: 0,
			Args: map[string]any{"value": c.Value},
		})
	}
	for _, in := range instants {
		events = append(events, chromeEvent{
			Name: in.Name, Cat: "audit", Ph: "i",
			Ts: micros(in.At), Pid: pid[in.Host], Tid: stateTid, Scope: "t",
			Args: in.Args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}
