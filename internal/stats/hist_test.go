package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if h.Count() != 16 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Fatalf("q1 = %d", got)
	}
	// Values below 2*subBuckets land in exact unit buckets.
	for v := int64(0); v < 16; v++ {
		if b := bucketOf(v); bucketLower(b) != v {
			t.Fatalf("value %d: bucket %d lower %d", v, b, bucketLower(b))
		}
	}
}

func TestHistogramBucketContiguity(t *testing.T) {
	// Every bucket's lower bound must be the previous bucket's upper bound:
	// no gaps, no overlaps, monotone.
	prev := int64(-1)
	for i := 0; i < NumBuckets; i++ {
		lo := bucketLower(i)
		if lo <= prev {
			t.Fatalf("bucket %d lower %d not increasing (prev %d)", i, lo, prev)
		}
		if bucketOf(lo) != i {
			t.Fatalf("bucket %d lower %d maps to bucket %d", i, lo, bucketOf(lo))
		}
		if lo > 0 && bucketOf(lo-1) != i-1 {
			t.Fatalf("value %d should map to bucket %d, got %d", lo-1, i-1, bucketOf(lo-1))
		}
		prev = lo
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against a sorted reference: each quantile must land within one bucket
	// width (12.5% relative error) of the exact order statistic.
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 5000)
	for i := range vals {
		v := int64(rng.Intn(5_000_000)) + 50_000 // 50µs..5ms in ns
		vals[i] = v
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		lo, hi := float64(exact)*0.85, float64(exact)*1.15
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("q%.2f: got %d, exact %d (allowed %.0f..%.0f)", q, got, exact, lo, hi)
		}
	}
	if h.Mean() <= 0 || h.Sum() <= 0 {
		t.Fatalf("mean=%d sum=%d", h.Mean(), h.Sum())
	}
}

func TestHistogramDeterministic(t *testing.T) {
	build := func() *Histogram {
		var h Histogram
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 1000; i++ {
			h.Observe(int64(rng.Intn(1 << 30)))
		}
		return &h
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q%.2f differs: %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestHistogramNegativeClampsAndReset(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative observe: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset did not clear")
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op", allocs)
	}
}
