package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if h.Count() != 16 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Fatalf("q1 = %d", got)
	}
	// Values below 2*subBuckets land in exact unit buckets.
	for v := int64(0); v < 16; v++ {
		if b := bucketOf(v); bucketLower(b) != v {
			t.Fatalf("value %d: bucket %d lower %d", v, b, bucketLower(b))
		}
	}
}

func TestHistogramBucketContiguity(t *testing.T) {
	// Every bucket's lower bound must be the previous bucket's upper bound:
	// no gaps, no overlaps, monotone.
	prev := int64(-1)
	for i := 0; i < NumBuckets; i++ {
		lo := bucketLower(i)
		if lo <= prev {
			t.Fatalf("bucket %d lower %d not increasing (prev %d)", i, lo, prev)
		}
		if bucketOf(lo) != i {
			t.Fatalf("bucket %d lower %d maps to bucket %d", i, lo, bucketOf(lo))
		}
		if lo > 0 && bucketOf(lo-1) != i-1 {
			t.Fatalf("value %d should map to bucket %d, got %d", lo-1, i-1, bucketOf(lo-1))
		}
		prev = lo
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against a sorted reference: each quantile must land within one bucket
	// width (12.5% relative error) of the exact order statistic.
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 5000)
	for i := range vals {
		v := int64(rng.Intn(5_000_000)) + 50_000 // 50µs..5ms in ns
		vals[i] = v
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		lo, hi := float64(exact)*0.85, float64(exact)*1.15
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("q%.2f: got %d, exact %d (allowed %.0f..%.0f)", q, got, exact, lo, hi)
		}
	}
	if h.Mean() <= 0 || h.Sum() <= 0 {
		t.Fatalf("mean=%d sum=%d", h.Mean(), h.Sum())
	}
}

func TestHistogramDeterministic(t *testing.T) {
	build := func() *Histogram {
		var h Histogram
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 1000; i++ {
			h.Observe(int64(rng.Intn(1 << 30)))
		}
		return &h
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q%.2f differs: %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestHistogramNegativeClampsAndReset(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative observe: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset did not clear")
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op", allocs)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram q%.2f = %d, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram min=%d max=%d mean=%d", h.Min(), h.Max(), h.Mean())
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(777_000)
	// With one sample every quantile is that sample, exactly — the clamp to
	// observed min/max must override bucket interpolation.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if got := h.Quantile(q); got != 777_000 {
			t.Fatalf("single-sample q%.2f = %d, want 777000", q, got)
		}
	}
}

func TestHistogramQuantileSaturatedBucket(t *testing.T) {
	// Every sample identical: one bucket holds the entire population. All
	// quantiles must return exactly that value (clamped, not interpolated
	// across the bucket span).
	var h Histogram
	for i := 0; i < 10_000; i++ {
		h.Observe(1_000_000)
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 1_000_000 {
			t.Fatalf("saturated q%.3f = %d, want 1000000", q, got)
		}
	}
	if h.Min() != 1_000_000 || h.Max() != 1_000_000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramMergeDifferentSizes(t *testing.T) {
	// Merge a small histogram into a large one (the differently-sized-rings
	// case: shards retain wildly different sample counts). The merged result
	// must be indistinguishable from observing every sample into one
	// histogram directly.
	rng := rand.New(rand.NewSource(11))
	var big, small, direct Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(10_000_000))
		big.Observe(v)
		direct.Observe(v)
	}
	for i := 0; i < 7; i++ {
		v := int64(rng.Intn(100)) // much smaller values, much smaller count
		small.Observe(v)
		direct.Observe(v)
	}
	big.Merge(&small)
	if big.Count() != direct.Count() || big.Sum() != direct.Sum() {
		t.Fatalf("count/sum: merged %d/%d direct %d/%d", big.Count(), big.Sum(), direct.Count(), direct.Sum())
	}
	if big.Min() != direct.Min() || big.Max() != direct.Max() {
		t.Fatalf("min/max: merged %d/%d direct %d/%d", big.Min(), big.Max(), direct.Min(), direct.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if big.Quantile(q) != direct.Quantile(q) {
			t.Fatalf("q%.2f: merged %d direct %d", q, big.Quantile(q), direct.Quantile(q))
		}
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	var h, empty Histogram
	h.Observe(42)
	h.Merge(&empty) // merging empty is a no-op
	h.Merge(nil)    // merging nil is a no-op
	if h.Count() != 1 || h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("no-op merges changed state: n=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	empty.Merge(&h) // merging into empty adopts min/max wholesale
	if empty.Count() != 1 || empty.Min() != 42 || empty.Max() != 42 {
		t.Fatalf("merge into empty: n=%d min=%d max=%d", empty.Count(), empty.Min(), empty.Max())
	}
}
