// Package stats is the flight-recorder plane: fixed-footprint histograms,
// bounded record rings, and a profile aggregator that together implement
// sim.Metrics without allocating in steady state. Everything here is
// deterministic — quantiles come from integer bucket walks, dump orders are
// sorted — so metrics output diffs byte-identical across runs and across
// `-parallel` settings.
package stats

import "math/bits"

// Histogram bucket geometry: log-2 octaves subdivided into 2^subBits
// sub-buckets, the classic HDR layout. With subBits=3 each bucket spans at
// most 12.5% of its value, which resolves p50/p90/p99 of microsecond-scale
// latencies well while the whole counts array stays a fixed ~4KB — no
// allocation ever happens after the Histogram value exists.
const (
	subBits    = 3
	subBuckets = 1 << subBits
	// NumBuckets covers all non-negative int64 values: values below
	// subBuckets map exactly to their own bucket, and each further octave
	// (exponents subBits..63) contributes subBuckets buckets.
	NumBuckets = (64 - subBits) * subBuckets
)

// Histogram is a fixed-bucket log-2 histogram of non-negative int64 samples
// (simulated nanoseconds, byte counts, queue depths). The zero value is
// ready to use; Observe never allocates.
type Histogram struct {
	counts [NumBuckets]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// bucketOf maps a value to its bucket index. Values < subBuckets are exact;
// beyond that the index is (octave, sub-bucket) with sub-buckets taken from
// the bits just below the leading one.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	sub := (u >> (uint(exp) - subBits)) & (subBuckets - 1)
	return (exp-subBits+1)<<subBits + int(sub)
}

// bucketLower returns the smallest value that maps to bucket i.
func bucketLower(i int) int64 {
	if i < subBuckets*2 {
		return int64(i)
	}
	block := i >> subBits // = exp - subBits + 1
	sub := i & (subBuckets - 1)
	return int64(subBuckets+sub) << uint(block-1)
}

// Observe records one sample. Negative values clamp to zero (they cannot
// occur in simulated time, but a histogram must never panic mid-run).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the total of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the integer mean of the recorded samples (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / int64(h.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// inside the landing bucket, clamped to the exact observed min/max so Q(0)
// and Q(1) are precise. The walk is pure integer arithmetic over fixed
// buckets: byte-identical across runs.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q*float64(h.n-1)) + 1 // 1-based rank of the sample we want
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		lo := bucketLower(i)
		hi := lo
		if i+1 < NumBuckets {
			hi = bucketLower(i+1) - 1
		}
		pos := rank - (cum - c) // 1..c, position within this bucket
		v := lo
		if c > 1 && hi > lo {
			v = lo + int64(uint64(hi-lo)*(pos-1)/(c-1))
		}
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// Merge folds other's samples into h — the cross-shard aggregation step:
// each shard's recorder observes into its own fixed rings, and the report
// merges them bucket-by-bucket. Identical geometry on both sides means the
// merge is exact (the merged histogram equals one that observed every sample
// directly), regardless of how many samples each side holds.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.n += other.n
	h.sum += other.sum
}

// Reset clears the histogram for reuse without releasing its storage.
func (h *Histogram) Reset() {
	*h = Histogram{}
}
