package stats

import (
	"fmt"
	"sort"
	"strings"

	"plexus/internal/sim"
)

// HopRecord is one step of a packet's lifecycle: where a stamped packet was
// at a given simulated time and what the layer did with it.
type HopRecord struct {
	Span   uint64
	At     sim.Time
	Host   string
	Layer  string
	Action string
	Bytes  int
}

// SampleRecord is one attributed CPU charge.
type SampleRecord struct {
	Host  string
	Kind  sim.ProfKind
	Owner string
	Prio  sim.Priority
	Start sim.Time
	Dur   sim.Time
}

// aggKey identifies one row of the folded profile.
type aggKey struct {
	Host  string
	Kind  sim.ProfKind
	Owner string
}

// aggVal accumulates charge time for one profile row.
type aggVal struct {
	Total sim.Time
	Count uint64
}

// Config sizes a Recorder. The zero value selects the defaults.
type Config struct {
	// HopCap bounds the hop ring (default 64K records, ~4MB). When it
	// fills, the oldest records are overwritten — flight-recorder
	// semantics: the tail of the run is always retained.
	HopCap int
	// SampleCap bounds the sample ring (default 64K records).
	SampleCap int
}

// Recorder is the canonical sim.Metrics sink: preallocated rings for raw
// hop/sample records, fixed histograms per profile kind, and a folded-profile
// aggregator. After construction (and a warm-up that touches every
// host/kind/owner triple) the record path allocates nothing, so the
// AllocsPerRun=0 invariant holds with metrics enabled.
type Recorder struct {
	hops     []HopRecord
	hopNext  int
	hopTotal uint64

	samples     []SampleRecord
	sampleNext  int
	sampleTotal uint64

	kindTime [sim.NumProfKinds]Histogram // charge durations per kind
	depth    Histogram                   // CPU run-queue depth at each arrival

	agg      map[aggKey]*aggVal
	aggOrder []aggKey // insertion order; dumps sort, so this is just the key list
}

// NewRecorder returns a Recorder with all storage preallocated.
func NewRecorder(cfg Config) *Recorder {
	if cfg.HopCap <= 0 {
		cfg.HopCap = 1 << 16
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = 1 << 16
	}
	return &Recorder{
		hops:     make([]HopRecord, cfg.HopCap),
		samples:  make([]SampleRecord, cfg.SampleCap),
		agg:      make(map[aggKey]*aggVal, 256),
		aggOrder: make([]aggKey, 0, 256),
	}
}

// Hop implements sim.Metrics.
func (r *Recorder) Hop(span uint64, at sim.Time, host, layer, action string, bytes int) {
	r.hops[r.hopNext] = HopRecord{Span: span, At: at, Host: host, Layer: layer, Action: action, Bytes: bytes}
	r.hopNext++
	if r.hopNext == len(r.hops) {
		r.hopNext = 0
	}
	r.hopTotal++
}

// Sample implements sim.Metrics.
func (r *Recorder) Sample(host string, kind sim.ProfKind, owner string, prio sim.Priority, start, dur sim.Time) {
	r.kindTime[kind].Observe(int64(dur))
	k := aggKey{Host: host, Kind: kind, Owner: owner}
	a := r.agg[k]
	if a == nil {
		a = &aggVal{}
		r.agg[k] = a
		r.aggOrder = append(r.aggOrder, k)
	}
	a.Total += dur
	a.Count++
	r.samples[r.sampleNext] = SampleRecord{Host: host, Kind: kind, Owner: owner, Prio: prio, Start: start, Dur: dur}
	r.sampleNext++
	if r.sampleNext == len(r.samples) {
		r.sampleNext = 0
	}
	r.sampleTotal++
}

// QueueDepth implements sim.Metrics.
func (r *Recorder) QueueDepth(host string, depth int) {
	r.depth.Observe(int64(depth))
}

// HopsRecorded returns the total number of hops ever recorded (including
// ones the ring has since overwritten).
func (r *Recorder) HopsRecorded() uint64 { return r.hopTotal }

// HopsDropped returns how many hop records the ring has overwritten.
func (r *Recorder) HopsDropped() uint64 {
	if r.hopTotal <= uint64(len(r.hops)) {
		return 0
	}
	return r.hopTotal - uint64(len(r.hops))
}

// SamplesRecorded returns the total number of samples ever recorded.
func (r *Recorder) SamplesRecorded() uint64 { return r.sampleTotal }

// SamplesDropped returns how many sample records the ring has overwritten.
func (r *Recorder) SamplesDropped() uint64 {
	if r.sampleTotal <= uint64(len(r.samples)) {
		return 0
	}
	return r.sampleTotal - uint64(len(r.samples))
}

// Hops returns the retained hop records in recording order (oldest first).
// It allocates; call it at dump time, not on the hot path.
func (r *Recorder) Hops() []HopRecord {
	return unwrap(r.hops, r.hopNext, r.hopTotal)
}

// Samples returns the retained sample records in recording order.
func (r *Recorder) Samples() []SampleRecord {
	return unwrap(r.samples, r.sampleNext, r.sampleTotal)
}

// unwrap linearizes a ring: if it never filled, the first total entries are
// valid; otherwise next is the oldest retained slot.
func unwrap[T any](ring []T, next int, total uint64) []T {
	if total <= uint64(len(ring)) {
		out := make([]T, total)
		copy(out, ring[:total])
		return out
	}
	out := make([]T, 0, len(ring))
	out = append(out, ring[next:]...)
	out = append(out, ring[:next]...)
	return out
}

// SpanHops returns the retained hops of one span in time order.
func (r *Recorder) SpanHops(span uint64) []HopRecord {
	var out []HopRecord
	for _, h := range r.Hops() {
		if h.Span == span {
			out = append(out, h)
		}
	}
	return out
}

// Spans lists the distinct span IDs among retained hops, ascending.
func (r *Recorder) Spans() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, h := range r.Hops() {
		if !seen[h.Span] {
			seen[h.Span] = true
			out = append(out, h.Span)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KindHist returns the duration histogram for one profile kind.
func (r *Recorder) KindHist(k sim.ProfKind) *Histogram { return &r.kindTime[k] }

// QueueDepthHist returns the CPU run-queue-depth histogram.
func (r *Recorder) QueueDepthHist() *Histogram { return &r.depth }

// ProfileRow is one line of the folded profile: total attributed CPU time
// for a (host, kind, owner) triple.
type ProfileRow struct {
	Host  string
	Kind  sim.ProfKind
	Owner string
	Total sim.Time
	Count uint64
}

// Profile returns the aggregated profile sorted by host, then kind, then
// descending total — a deterministic, diffable order.
func (r *Recorder) Profile() []ProfileRow {
	rows := make([]ProfileRow, 0, len(r.aggOrder))
	for _, k := range r.aggOrder {
		a := r.agg[k]
		rows = append(rows, ProfileRow{Host: k.Host, Kind: k.Kind, Owner: k.Owner, Total: a.Total, Count: a.Count})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Host != rows[j].Host {
			return rows[i].Host < rows[j].Host
		}
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Owner < rows[j].Owner
	})
	return rows
}

// Folded writes the profile in folded-stacks format — "host;kind;owner N"
// with N in nanoseconds — the input format of flame-graph tooling.
func (r *Recorder) Folded() string {
	var b strings.Builder
	for _, row := range r.Profile() {
		fmt.Fprintf(&b, "%s;%s;%s %d\n", row.Host, row.Kind, row.Owner, int64(row.Total))
	}
	return b.String()
}

var _ sim.Metrics = (*Recorder)(nil)
