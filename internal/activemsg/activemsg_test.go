package activemsg

import (
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
)

func amPair(t *testing.T, allotment sim.Time) (*plexus.Network, *plexus.Stack, *plexus.Stack, *AM, *AM) {
	t.Helper()
	n, a, b, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		plexus.HostSpec{Name: "a", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
		plexus.HostSpec{Name: "b", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt})
	if err != nil {
		t.Fatal(err)
	}
	amA, err := New(a.Ether, a.Host.Pool, a.Host.Costs, allotment)
	if err != nil {
		t.Fatal(err)
	}
	amB, err := New(b.Ether, b.Host.Pool, b.Host.Costs, allotment)
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b, amA, amB
}

func TestActiveMessageRoundTrip(t *testing.T) {
	n, a, b, amA, amB := amPair(t, 0)
	var gotArg uint32
	var gotPayload []byte
	if err := amB.Register(3, func(task *sim.Task, seq uint16, arg uint32, payload []byte) uint32 {
		gotArg = arg
		gotPayload = append([]byte(nil), payload...)
		return arg + 1
	}); err != nil {
		t.Fatal(err)
	}
	var replyArg uint32
	var sentAt, replyAt sim.Time
	amA.OnReply(func(task *sim.Task, seq uint16, arg uint32) {
		replyArg = arg
		replyAt = task.Now()
	})
	a.Spawn("send", func(task *sim.Task) {
		sentAt = task.Now()
		if _, err := amA.Send(task, b.NIC.MAC(), 3, 41, []byte("am-payload")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if gotArg != 41 || string(gotPayload) != "am-payload" {
		t.Fatalf("handler saw arg=%d payload=%q", gotArg, gotPayload)
	}
	if replyArg != 42 {
		t.Fatalf("reply arg = %d, want 42", replyArg)
	}
	rtt := replyAt - sentAt
	t.Logf("active message RTT = %v", rtt)
	// Handlers run at interrupt level with no transport layers: the RTT
	// must beat the full UDP stack's (~440µs on this Ethernet).
	if rtt <= 0 || rtt > 400*sim.Microsecond {
		t.Errorf("active-message RTT %v should be below 400µs", rtt)
	}
	sa, sb := amA.Stats(), amB.Stats()
	if sa.RequestsSent != 1 || sb.RequestsRcvd != 1 || sb.RepliesSent != 1 || sa.RepliesRcvd != 1 {
		t.Errorf("stats wrong: a=%+v b=%+v", sa, sb)
	}
}

func TestActiveMessageBadHandlerIndex(t *testing.T) {
	_, a, b, amA, _ := amPair(t, 0)
	_ = b
	a.Spawn("send", func(task *sim.Task) {
		if _, err := amA.Send(task, b.NIC.MAC(), -1, 0, nil); err != ErrBadHandler {
			t.Errorf("err = %v, want ErrBadHandler", err)
		}
		if _, err := amA.Send(task, b.NIC.MAC(), MaxHandlers, 0, nil); err != ErrBadHandler {
			t.Errorf("err = %v, want ErrBadHandler", err)
		}
	})
	if err := amA.Register(MaxHandlers, nil); err != ErrBadHandler {
		t.Errorf("Register out of range: %v", err)
	}
}

func TestActiveMessageUnregisteredHandlerCounted(t *testing.T) {
	n, a, b, amA, amB := amPair(t, 0)
	_ = b
	a.Spawn("send", func(task *sim.Task) {
		if _, err := amA.Send(task, b.NIC.MAC(), 5, 0, nil); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if amB.Stats().BadMessages != 1 {
		t.Errorf("BadMessages = %d, want 1", amB.Stats().BadMessages)
	}
}

func TestActiveMessageTooBig(t *testing.T) {
	_, a, b, amA, _ := amPair(t, 0)
	a.Spawn("send", func(task *sim.Task) {
		if _, err := amA.Send(task, b.NIC.MAC(), 0, 0, make([]byte, 2000)); err != ErrTooBig {
			t.Errorf("err = %v, want ErrTooBig", err)
		}
	})
}

// §3.3: a handler exceeding its time allotment is prematurely terminated.
func TestActiveMessageAllotmentTermination(t *testing.T) {
	n, a, b, amA, amB := amPair(t, 20*sim.Microsecond)
	if err := amB.Register(0, func(task *sim.Task, seq uint16, arg uint32, payload []byte) uint32 {
		task.Charge(500 * sim.Microsecond) // hog the interrupt
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		if _, err := amA.Send(task, b.NIC.MAC(), 0, 0, nil); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if amB.Binding().Stats().Terminations == 0 {
		t.Fatal("hog handler was not prematurely terminated")
	}
	// The interrupt was not held for the full 500µs: the charge stopped at
	// the allotment boundary.
	if busy := b.Host.CPU.Busy(); busy > 300*sim.Microsecond {
		t.Errorf("receiver CPU busy %v; termination did not bound the handler", busy)
	}
}
