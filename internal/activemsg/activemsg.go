// Package activemsg implements active messages over Ethernet, the paper's
// §3.3 example of an application-specific protocol that runs at interrupt
// level: "a protocol that does little more than reference memory and reply
// with an acknowledgement".
//
// The extension mirrors the paper's Figure 2: it installs a guard/handler
// pair on Ethernet.PacketRecv through the Ethernet protocol manager. The
// guard discriminates on the Ethernet type field; the handler is EPHEMERAL
// and may be installed with a time allotment, after which the dispatcher
// prematurely terminates it.
//
// An active message names a handler index and carries arguments; the
// receiving extension invokes the registered handler function directly in
// the interrupt and (for request messages) sends the reply from the same
// context — the lowest-latency path the architecture offers.
package activemsg

import (
	"errors"
	"fmt"

	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Wire format: Ethernet header, then
//
//	type    uint8  (request / reply)
//	handler uint8  (handler table index)
//	seq     uint16
//	arg     uint32
//	payload ...
const (
	hdrLen = 8

	typeRequest = 1
	typeReply   = 2
)

// MaxHandlers bounds the handler table.
const MaxHandlers = 16

// Errors.
var (
	// ErrBadHandler reports a handler index out of range or unregistered.
	ErrBadHandler = errors.New("activemsg: bad handler index")
	// ErrTooBig reports a payload exceeding the device MTU.
	ErrTooBig = errors.New("activemsg: payload exceeds MTU")
)

// Handler processes one incoming active message and returns the reply
// argument. Handlers run at interrupt level and must behave ephemerally:
// reference memory, compute, return.
type Handler func(t *sim.Task, seq uint16, arg uint32, payload []byte) (replyArg uint32)

// ReplyFunc observes a reply to a request this node sent.
type ReplyFunc func(t *sim.Task, seq uint16, arg uint32)

// Stats counts active-message traffic.
type Stats struct {
	RequestsSent uint64
	RequestsRcvd uint64
	RepliesSent  uint64
	RepliesRcvd  uint64
	BadMessages  uint64
}

// AM is the active-message extension instance on one host.
type AM struct {
	eth     *ether.Layer
	pool    *mbuf.Pool
	costs   osmodel.Costs
	binding *event.Binding

	handlers [MaxHandlers]Handler
	onReply  ReplyFunc
	seq      uint16
	stats    Stats
	// HandlerCost is charged per handler invocation, modelling the
	// message handler's memory references.
	HandlerCost sim.Time
}

// New installs the active-message extension on the host's Ethernet manager.
// allotment, when nonzero, bounds each invocation (the §3.3 time limit).
func New(eth *ether.Layer, pool *mbuf.Pool, costs osmodel.Costs, allotment sim.Time) (*AM, error) {
	am := &AM{eth: eth, pool: pool, costs: costs, HandlerCost: 5 * sim.Microsecond}
	// The guard of Figure 2: dispatch on the Ethernet type field, via a
	// typed view of the header.
	guard := ether.TypeGuard(view.EtherTypeActiveMsg)
	b, err := eth.InstallRecv(guard, event.Ephemeral("activemsg.handler", am.input), allotment)
	if err != nil {
		return nil, fmt.Errorf("activemsg: %w", err)
	}
	am.binding = b
	return am, nil
}

// Register binds a handler function to index idx.
func (am *AM) Register(idx int, h Handler) error {
	if idx < 0 || idx >= MaxHandlers {
		return ErrBadHandler
	}
	am.handlers[idx] = h
	return nil
}

// OnReply registers the reply observer.
func (am *AM) OnReply(f ReplyFunc) { am.onReply = f }

// Stats returns a snapshot of counters.
func (am *AM) Stats() Stats { return am.stats }

// Binding exposes the event binding (tests observe termination counts).
func (am *AM) Binding() *event.Binding { return am.binding }

// Uninstall removes the extension from the protocol graph.
func (am *AM) Uninstall(d *event.Dispatcher) { d.Uninstall(am.binding) }

// Send transmits an active message request to the node with hardware address
// dst, invoking handler idx there.
func (am *AM) Send(t *sim.Task, dst view.MAC, idx int, arg uint32, payload []byte) (uint16, error) {
	if idx < 0 || idx >= MaxHandlers {
		return 0, ErrBadHandler
	}
	if hdrLen+len(payload) > am.eth.MTU() {
		return 0, ErrTooBig
	}
	am.seq++
	seq := am.seq
	am.stats.RequestsSent++
	return seq, am.transmit(t, dst, typeRequest, uint8(idx), seq, arg, payload)
}

func (am *AM) transmit(t *sim.Task, dst view.MAC, typ, idx uint8, seq uint16, arg uint32, payload []byte) error {
	buf := make([]byte, hdrLen+len(payload))
	buf[0] = typ
	buf[1] = idx
	buf[2] = byte(seq >> 8)
	buf[3] = byte(seq)
	buf[4] = byte(arg >> 24)
	buf[5] = byte(arg >> 16)
	buf[6] = byte(arg >> 8)
	buf[7] = byte(arg)
	copy(buf[hdrLen:], payload)
	m := am.pool.FromBytes(buf, 32)
	return am.eth.Send(t, dst, view.EtherTypeActiveMsg, m)
}

// input runs in the network interrupt for every frame the guard accepted.
func (am *AM) input(t *sim.Task, m *mbuf.Mbuf) {
	defer m.Free()
	frame, err := m.CopyData(0, m.PktLen())
	if err != nil || len(frame) < view.EthernetHdrLen+hdrLen {
		am.stats.BadMessages++
		return
	}
	eth, _ := view.Ethernet(frame)
	b := frame[view.EthernetHdrLen:]
	typ, idx := b[0], b[1]
	seq := uint16(b[2])<<8 | uint16(b[3])
	arg := uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	payload := b[hdrLen:]
	t.Charge(am.HandlerCost)
	switch typ {
	case typeRequest:
		am.stats.RequestsRcvd++
		h := am.handlers[idx]
		if h == nil {
			am.stats.BadMessages++
			return
		}
		replyArg := h(t, seq, arg, payload)
		am.stats.RepliesSent++
		// Reply directly from the interrupt context (paper §3.3).
		if err := am.transmit(t, eth.Src(), typeReply, idx, seq, replyArg, nil); err != nil {
			am.stats.BadMessages++
		}
	case typeReply:
		am.stats.RepliesRcvd++
		if am.onReply != nil {
			am.onReply(t, seq, arg)
		}
	default:
		am.stats.BadMessages++
	}
}
