// Package icmp implements the ICMP node of the protocol graph: echo
// request/reply (ping), destination-unreachable and time-exceeded
// generation, and a callback registry for echo responses.
package icmp

import (
	"plexus/internal/event"
	"plexus/internal/ip"
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Stats counts ICMP activity.
type Stats struct {
	EchoRequestsRcvd uint64
	EchoRepliesRcvd  uint64
	EchoRepliesSent  uint64
	BadChecksum      uint64
	UnreachSent      uint64
	TimeExceededSent uint64
}

// EchoReply describes a received echo response.
type EchoReply struct {
	From    view.IP4
	Ident   uint16
	Seq     uint16
	Payload []byte
	RTTEnd  sim.Time // arrival time at the ICMP layer
}

// Layer is the ICMP protocol node for one host.
type Layer struct {
	ip    *ip.Layer
	pool  *mbuf.Pool
	costs osmodel.Costs
	stats Stats
	// waiters maps echo ident → callback.
	waiters map[uint16]func(*sim.Task, EchoReply)
}

// New creates the ICMP node and installs its guard (proto == ICMP) and
// handler on IP.PacketRecv.
func New(ipl *ip.Layer, disp *event.Dispatcher, pool *mbuf.Pool, costs osmodel.Costs) (*Layer, error) {
	l := &Layer{
		ip:      ipl,
		pool:    pool,
		costs:   costs,
		waiters: make(map[uint16]func(*sim.Task, EchoReply)),
	}
	_, err := disp.Install(ip.RecvEvent, ProtoGuard(view.IPProtoICMP),
		event.Ephemeral("icmp.input", l.input), 0)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// ProtoGuard returns a guard on IP.PacketRecv matching one IP protocol.
func ProtoGuard(proto uint8) event.Guard {
	return func(t *sim.Task, m *mbuf.Mbuf) bool {
		v, err := view.IPv4(m.Bytes())
		if err != nil {
			return false
		}
		return v.Proto() == proto
	}
}

// Stats returns a snapshot of counters.
func (l *Layer) Stats() Stats { return l.stats }

// Ping sends an echo request and registers cb to run when the matching
// reply (by ident) arrives. Replies keep invoking cb until Cancel.
func (l *Layer) Ping(t *sim.Task, dst view.IP4, ident, seq uint16, payload []byte, cb func(*sim.Task, EchoReply)) error {
	if cb != nil {
		l.waiters[ident] = cb
	}
	m := l.buildEcho(view.ICMPEchoRequest, ident, seq, payload)
	t.ChargeBytes(m.PktLen(), l.costs.ChecksumPerByte)
	return l.ip.Send(t, view.IP4{}, dst, view.IPProtoICMP, m)
}

// Cancel removes the reply callback for ident.
func (l *Layer) Cancel(ident uint16) { delete(l.waiters, ident) }

func (l *Layer) buildEcho(typ uint8, ident, seq uint16, payload []byte) *mbuf.Mbuf {
	buf := make([]byte, view.ICMPHdrLen+len(payload))
	copy(buf[view.ICMPHdrLen:], payload)
	v, _ := view.ICMP(buf)
	v.SetType(typ)
	v.SetCode(0)
	v.SetIdent(ident)
	v.SetSeq(seq)
	v.SetChecksum(0)
	v.SetChecksum(view.Checksum(buf))
	return l.pool.FromBytes(buf, 64)
}

// input handles an IP datagram (header intact, read-only) carrying ICMP.
func (l *Layer) input(t *sim.Task, m *mbuf.Mbuf) {
	defer m.Free()
	ipv, err := view.IPv4(m.Bytes())
	if err != nil {
		return
	}
	body, err := m.CopyData(ipv.HdrLen(), ipv.TotalLen()-ipv.HdrLen())
	if err != nil || len(body) < view.ICMPHdrLen {
		return
	}
	t.ChargeBytes(len(body), l.costs.ChecksumPerByte)
	if view.Checksum(body) != 0 {
		l.stats.BadChecksum++
		return
	}
	v, _ := view.ICMP(body)
	switch v.Type() {
	case view.ICMPEchoRequest:
		l.stats.EchoRequestsRcvd++
		reply := l.buildEcho(view.ICMPEchoReply, v.Ident(), v.Seq(), body[view.ICMPHdrLen:])
		t.ChargeBytes(reply.PktLen(), l.costs.ChecksumPerByte)
		l.stats.EchoRepliesSent++
		if err := l.ip.Send(t, view.IP4{}, ipv.Src(), view.IPProtoICMP, reply); err != nil {
			return
		}
	case view.ICMPEchoReply:
		l.stats.EchoRepliesRcvd++
		if cb, ok := l.waiters[v.Ident()]; ok {
			cb(t, EchoReply{
				From:    ipv.Src(),
				Ident:   v.Ident(),
				Seq:     v.Seq(),
				Payload: body[view.ICMPHdrLen:],
				RTTEnd:  t.Now(),
			})
		}
	}
}

// SendUnreachable emits a destination-unreachable (port) citing the offending
// datagram orig (not consumed), as udp_input does for closed ports.
func (l *Layer) SendUnreachable(t *sim.Task, orig *mbuf.Mbuf) error {
	l.stats.UnreachSent++
	return l.sendError(t, view.ICMPDestUnreach, view.ICMPCodePortUnr, orig)
}

// SendTimeExceeded emits a time-exceeded (TTL expired in transit) citing the
// offending datagram orig (not consumed) — the forwarding plane's answer to a
// datagram whose TTL ran out at the gateway.
func (l *Layer) SendTimeExceeded(t *sim.Task, orig *mbuf.Mbuf) error {
	l.stats.TimeExceededSent++
	return l.sendError(t, view.ICMPTimeExceeded, view.ICMPCodeTTLExpired, orig)
}

// sendError builds and sends an ICMP error of the given type/code quoting the
// offending datagram's IP header + 8 bytes of payload, per RFC 792.
func (l *Layer) sendError(t *sim.Task, typ, code uint8, orig *mbuf.Mbuf) error {
	ipv, err := view.IPv4(orig.Bytes())
	if err != nil {
		return err
	}
	quote := ipv.HdrLen() + 8
	if orig.PktLen() < quote {
		quote = orig.PktLen()
	}
	q, err := orig.CopyData(0, quote)
	if err != nil {
		return err
	}
	buf := make([]byte, view.ICMPHdrLen+len(q))
	copy(buf[view.ICMPHdrLen:], q)
	v, _ := view.ICMP(buf)
	v.SetType(typ)
	v.SetCode(code)
	v.SetChecksum(0)
	v.SetChecksum(view.Checksum(buf))
	return l.ip.Send(t, view.IP4{}, ipv.Src(), view.IPProtoICMP, l.pool.FromBytes(buf, 64))
}
