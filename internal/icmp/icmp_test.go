package icmp_test

import (
	"testing"

	"plexus/internal/icmp"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func spin(name string) plexus.HostSpec {
	return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

func pair(t *testing.T) (*plexus.Network, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	n, a, b, err := plexus.TwoHosts(1, netdev.EthernetModel(), spin("a"), spin("b"))
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestPingSequenceOfReplies(t *testing.T) {
	n, a, b := pair(t)
	var seqs []uint16
	a.Spawn("pinger", func(task *sim.Task) {
		cb := func(t2 *sim.Task, r icmp.EchoReply) {
			seqs = append(seqs, r.Seq)
			if r.Seq < 5 {
				_ = a.ICMP.Ping(t2, b.Addr(), 7, r.Seq+1, nil, nil)
			}
		}
		if err := a.ICMP.Ping(task, b.Addr(), 7, 1, nil, cb); err != nil {
			t.Errorf("ping: %v", err)
		}
	})
	n.Sim.RunUntil(10 * sim.Second)
	if len(seqs) != 5 {
		t.Fatalf("got %d replies, want 5", len(seqs))
	}
	for i, s := range seqs {
		if int(s) != i+1 {
			t.Fatalf("reply order wrong: %v", seqs)
		}
	}
}

func TestCancelStopsCallbacks(t *testing.T) {
	n, a, b := pair(t)
	calls := 0
	a.Spawn("ping", func(task *sim.Task) {
		_ = a.ICMP.Ping(task, b.Addr(), 9, 1, nil, func(*sim.Task, icmp.EchoReply) { calls++ })
	})
	n.Sim.RunUntil(sim.Second)
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	a.ICMP.Cancel(9)
	a.Spawn("ping2", func(task *sim.Task) {
		// nil callback leaves the (cancelled) registration alone.
		_ = a.ICMP.Ping(task, b.Addr(), 9, 2, nil, nil)
	})
	n.Sim.RunUntil(2 * sim.Second)
	if calls != 1 {
		t.Fatalf("cancelled callback still ran: %d", calls)
	}
	if a.ICMP.Stats().EchoRepliesRcvd != 2 {
		t.Errorf("EchoRepliesRcvd = %d", a.ICMP.Stats().EchoRepliesRcvd)
	}
}

func TestCorruptedICMPDropped(t *testing.T) {
	n, a, b := pair(t)
	got := 0
	n.Link.SetMangleFn(func(wire []byte) {
		// Flip a bit in the ICMP payload (frame: 14 eth + 20 ip + 8 icmp).
		if len(wire) > 43 {
			wire[43] ^= 0x10
		}
	})
	a.Spawn("ping", func(task *sim.Task) {
		_ = a.ICMP.Ping(task, b.Addr(), 1, 1, []byte("data"), func(*sim.Task, icmp.EchoReply) { got++ })
	})
	n.Sim.RunUntil(sim.Second)
	if got != 0 {
		t.Fatal("corrupted echo produced a reply")
	}
	if b.ICMP.Stats().BadChecksum != 1 {
		t.Errorf("receiver BadChecksum = %d", b.ICMP.Stats().BadChecksum)
	}
}

func TestPortUnreachableQuotesOriginal(t *testing.T) {
	n, a, b := pair(t)
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 4242, []byte("nobody home"))
	})
	n.Sim.Run()
	if b.ICMP.Stats().UnreachSent != 1 {
		t.Fatalf("UnreachSent = %d", b.ICMP.Stats().UnreachSent)
	}
	// The unreachable came back to a; a's ICMP layer saw it (it is not an
	// echo, so it is counted nowhere else — verify via IP delivery).
	if a.IP.Stats().Delivered < 1 {
		t.Error("unreachable never delivered back to the sender")
	}
}

func TestProtoGuard(t *testing.T) {
	g := icmp.ProtoGuard(view.IPProtoTCP)
	// Build a minimal IP packet with proto=UDP: guard must reject.
	_, a, _ := pair(t)
	dgram := make([]byte, 20)
	dgram[0] = 0x45
	v, _ := view.IPv4(dgram)
	v.SetProto(view.IPProtoUDP)
	m := a.Host.Pool.FromBytes(dgram, 0)
	defer m.Free()
	if g(nil, m) {
		t.Error("guard matched wrong protocol")
	}
	v2, _ := view.IPv4(m.Bytes())
	_ = v2
	// And with proto=TCP it matches.
	b, _ := m.MutableBytes()
	vb, _ := view.IPv4(b)
	vb.SetProto(view.IPProtoTCP)
	if !g(nil, m) {
		t.Error("guard rejected right protocol")
	}
	// Garbage never matches.
	short := a.Host.Pool.FromBytes([]byte{1, 2, 3}, 0)
	defer short.Free()
	if g(nil, short) {
		t.Error("guard matched garbage")
	}
}
