// Package event reproduces SPIN's dynamic event dispatcher (paper §2), the
// mechanism Plexus builds its protocol graph on.
//
// An event is declared like a procedure ("Ethernet.PacketRecv") and raised
// like a call. Extensions install handlers on events; each handler may carry
// a guard, an arbitrary predicate the dispatcher evaluates before invoking
// the handler. Guards are how Plexus implements packet filters: a guard
// inspects the packet and returns true only for packets its handler is
// responsible for, both demultiplexing the protocol graph and preventing
// snooping.
//
// The paper's EPHEMERAL attribute (§3.3) marks handlers safe to run at
// interrupt level: they may be asynchronously terminated without damaging
// state. Go has no compile-time effect system, so the attribute is carried on
// the handler descriptor; events declared RequireEphemeral reject
// non-ephemeral installs exactly as the paper's protocol managers do, and
// per-binding time allotments are enforced by terminating (in simulation:
// refunding and flagging) handlers that overrun.
//
// Dispatch cost is charged to the raising task: "the overhead of invoking
// each handler is roughly one procedure call".
package event

import (
	"errors"
	"fmt"
	"sync/atomic"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

// Name identifies an event, conventionally "Interface.Procedure".
type Name string

// Raiser abstracts how an event raise is performed. The Dispatcher raises
// inline (handlers run in the raising task — the paper's interrupt-level
// dispatch); a protocol stack may interpose thread handoff or a monolithic
// kernel's softirq step between layers instead.
type Raiser interface {
	Raise(t *sim.Task, name Name, m *mbuf.Mbuf) int
}

// Guard is a packet-filter predicate evaluated before a handler is invoked.
// Guards must be side-effect free; they run for every raise of the event.
type Guard func(t *sim.Task, m *mbuf.Mbuf) bool

// HandlerFunc is the procedure executed in response to an event.
type HandlerFunc func(t *sim.Task, m *mbuf.Mbuf)

// Handler is a handler procedure plus the attributes the dispatcher needs:
// a diagnostic name and whether the procedure is EPHEMERAL.
type Handler struct {
	Name      string
	Fn        HandlerFunc
	Ephemeral bool
}

// Ephemeral builds an EPHEMERAL handler descriptor: one whose implementation
// tolerates premature termination without violating invariants (paper
// Figure 3). The caller asserts the property; the dispatcher enforces its
// consequences.
func Ephemeral(name string, fn HandlerFunc) Handler {
	return Handler{Name: name, Fn: fn, Ephemeral: true}
}

// Proc builds an ordinary (non-ephemeral) handler descriptor.
func Proc(name string, fn HandlerFunc) Handler {
	return Handler{Name: name, Fn: fn}
}

// Options configure a declared event.
type Options struct {
	// RequireEphemeral makes the event reject non-EPHEMERAL handlers at
	// install time. Events raised from interrupt context declare this.
	RequireEphemeral bool
}

// Costs parameterize what raising an event charges the running task. The
// defaults model SPIN's measured overheads: a guard evaluation and a handler
// invocation each cost roughly a procedure call.
type Costs struct {
	GuardEval sim.Time // charged per guard evaluated
	Invoke    sim.Time // charged per handler invoked
}

// DefaultCosts mirrors the paper's "roughly one procedure call" dispatch.
func DefaultCosts() Costs {
	return Costs{GuardEval: 200 * sim.Nanosecond, Invoke: 1 * sim.Microsecond}
}

// Errors returned by the dispatcher.
var (
	// ErrUnknownEvent reports a raise or install on an undeclared event.
	ErrUnknownEvent = errors.New("event: unknown event")
	// ErrNotEphemeral reports an attempt to install a non-EPHEMERAL handler
	// on an event that requires one (paper §3.3: "the manager can reject
	// the handler").
	ErrNotEphemeral = errors.New("event: handler is not EPHEMERAL")
	// ErrDuplicate reports a duplicate event declaration.
	ErrDuplicate = errors.New("event: already declared")
)

// BindingStats counts a binding's dispatch activity.
type BindingStats struct {
	Invocations  uint64 // handler bodies run
	GuardRejects uint64 // raises filtered out by the guard
	Terminations uint64 // premature terminations for budget overrun
}

// Binding is one installed (guard, handler) pair; the handle for uninstall.
type Binding struct {
	event     *eventState
	guard     Guard
	handler   Handler
	allotment sim.Time // 0 = unlimited
	removed   bool
	stats     BindingStats
}

// Stats returns a snapshot of the binding's counters.
func (b *Binding) Stats() BindingStats { return b.stats }

// Handler returns the installed handler descriptor.
func (b *Binding) Handler() Handler { return b.handler }

// Allotment returns the per-invocation time budget (0 = unlimited).
func (b *Binding) Allotment() sim.Time { return b.allotment }

type eventState struct {
	name     Name
	opts     Options
	bindings []*Binding
	raises   uint64
}

// Dispatcher routes raised events to installed handlers.
type Dispatcher struct {
	costs  Costs
	events map[Name]*eventState
	// raiseDepth guards against accidental unbounded event recursion in a
	// misbuilt protocol graph.
	raiseDepth int32
	// scratch holds one reusable binding buffer per active raise depth, so
	// the per-raise snapshot does not allocate in steady state. Indexed by
	// depth-1; nested raises each get their own buffer.
	scratch [][]*Binding
}

// maxRaiseDepth bounds protocol-graph recursion; real stacks are ~6 deep.
const maxRaiseDepth = 64

// NewDispatcher creates a dispatcher with the given cost model.
func NewDispatcher(costs Costs) *Dispatcher {
	return &Dispatcher{costs: costs, events: make(map[Name]*eventState)}
}

// Declare registers an event name. Redeclaration fails.
func (d *Dispatcher) Declare(name Name, opts Options) error {
	if _, ok := d.events[name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	d.events[name] = &eventState{name: name, opts: opts}
	return nil
}

// MustDeclare is Declare that panics on error, for static graph setup.
func (d *Dispatcher) MustDeclare(name Name, opts Options) {
	if err := d.Declare(name, opts); err != nil {
		panic(err)
	}
}

// Declared reports whether name has been declared.
func (d *Dispatcher) Declared(name Name) bool {
	_, ok := d.events[name]
	return ok
}

// Install attaches a handler (with optional guard; nil matches everything)
// to an event. allotment, if nonzero, is the EPHEMERAL time budget per
// invocation. Installation order is dispatch order.
func (d *Dispatcher) Install(name Name, guard Guard, h Handler, allotment sim.Time) (*Binding, error) {
	ev, ok := d.events[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEvent, name)
	}
	if ev.opts.RequireEphemeral && !h.Ephemeral {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotEphemeral, h.Name, name)
	}
	if h.Fn == nil {
		return nil, fmt.Errorf("event: nil handler %q on %s", h.Name, name)
	}
	b := &Binding{event: ev, guard: guard, handler: h, allotment: allotment}
	ev.bindings = append(ev.bindings, b)
	return b, nil
}

// Uninstall detaches a binding. Detaching twice is a no-op returning false.
func (d *Dispatcher) Uninstall(b *Binding) bool {
	if b == nil || b.removed {
		return false
	}
	b.removed = true
	ev := b.event
	for i, x := range ev.bindings {
		if x == b {
			ev.bindings = append(ev.bindings[:i], ev.bindings[i+1:]...)
			return true
		}
	}
	return false
}

// HandlerCount reports the number of handlers installed on an event.
func (d *Dispatcher) HandlerCount(name Name) int {
	if ev, ok := d.events[name]; ok {
		return len(ev.bindings)
	}
	return 0
}

// Raises reports how many times an event has been raised.
func (d *Dispatcher) Raises(name Name) uint64 {
	if ev, ok := d.events[name]; ok {
		return ev.raises
	}
	return 0
}

// Raise announces the event to every installed handler whose guard accepts
// the packet, charging the raising task per the cost model. It returns the
// number of handlers invoked. Raising an undeclared event panics: in SPIN
// only code linked against the event's interface can name it, so an unknown
// name is a programming error, not a runtime condition.
func (d *Dispatcher) Raise(t *sim.Task, name Name, m *mbuf.Mbuf) int {
	ev, ok := d.events[name]
	if !ok {
		panic(fmt.Sprintf("event: raise of undeclared event %s", name))
	}
	depth := atomic.AddInt32(&d.raiseDepth, 1)
	if depth > maxRaiseDepth {
		panic(fmt.Sprintf("event: raise depth exceeds %d (cycle in protocol graph?) at %s", maxRaiseDepth, name))
	}
	defer atomic.AddInt32(&d.raiseDepth, -1)
	ev.raises++
	invoked := 0
	// Snapshot: handlers installed/removed during dispatch take effect on
	// the next raise, matching SPIN's install semantics. The snapshot is
	// copied into a per-depth scratch buffer reused across raises.
	for int(depth) > len(d.scratch) {
		d.scratch = append(d.scratch, nil)
	}
	bindings := append(d.scratch[depth-1][:0], ev.bindings...)
	d.scratch[depth-1] = bindings
	// Dispatch is two-phase: every guard is evaluated against the intact
	// packet first, then the matching handlers run. A handler may consume
	// the packet (strip headers, free it), which must not corrupt the
	// view later guards see. matched overlays the snapshot's storage: it
	// only ever writes an index the scan has already passed.
	matched := bindings[:0]
	for _, b := range bindings {
		if b.removed {
			continue
		}
		if b.guard != nil {
			t.Charge(d.costs.GuardEval)
			if !b.guard(t, m) {
				b.stats.GuardRejects++
				continue
			}
		}
		matched = append(matched, b)
	}
	for _, b := range matched {
		t.Charge(d.costs.Invoke)
		before := t.Charged()
		b.handler.Fn(t, m)
		consumed := t.Charged() - before
		if b.allotment > 0 && consumed > b.allotment {
			// Premature termination: the handler stopped at its
			// allotment; CPU time beyond it was never consumed.
			t.Refund(consumed - b.allotment)
			t.Sim().Tracef(sim.TraceEvent, "%s: handler %s terminated after %v (allotment %v)",
				name, b.handler.Name, consumed, b.allotment)
			b.stats.Terminations++
		}
		b.stats.Invocations++
		invoked++
	}
	return invoked
}
