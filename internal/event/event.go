// Package event reproduces SPIN's dynamic event dispatcher (paper §2), the
// mechanism Plexus builds its protocol graph on.
//
// An event is declared like a procedure ("Ethernet.PacketRecv") and raised
// like a call. Extensions install handlers on events; each handler may carry
// a guard, an arbitrary predicate the dispatcher evaluates before invoking
// the handler. Guards are how Plexus implements packet filters: a guard
// inspects the packet and returns true only for packets its handler is
// responsible for, both demultiplexing the protocol graph and preventing
// snooping.
//
// The paper's EPHEMERAL attribute (§3.3) marks handlers safe to run at
// interrupt level: they may be asynchronously terminated without damaging
// state. Go has no compile-time effect system, so the attribute is carried on
// the handler descriptor; events declared RequireEphemeral reject
// non-ephemeral installs exactly as the paper's protocol managers do, and
// per-binding time allotments are enforced by terminating (in simulation:
// refunding and flagging) handlers that overrun.
//
// Dispatch cost is charged to the raising task: "the overhead of invoking
// each handler is roughly one procedure call".
//
// # Crash containment and quarantine
//
// A handler or guard that panics is caught by the dispatcher: the time it
// consumed stays charged, the fault is counted on its binding, and dispatch
// continues to the remaining matched bindings — one rogue extension cannot
// stop delivery to the rest of the protocol graph. Faults (panics, allotment
// terminations, guard budget overruns) accumulate per binding; an optional
// QuarantinePolicy auto-disables a binding once its fault count reaches a
// threshold — the paper's "the manager can reject the handler" extended to
// runtime ejection. Dispatcher-integrity panics (raising an undeclared
// event, exceeding the recursion bound) are NOT contained: they indicate a
// misbuilt graph, not a misbehaving extension, and propagate to the caller.
package event

import (
	"errors"
	"fmt"
	"sync/atomic"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

// Name identifies an event, conventionally "Interface.Procedure".
type Name string

// Raiser abstracts how an event raise is performed. The Dispatcher raises
// inline (handlers run in the raising task — the paper's interrupt-level
// dispatch); a protocol stack may interpose thread handoff or a monolithic
// kernel's softirq step between layers instead. RaiseRef is the per-packet
// form: layers that raise the same event for every packet resolve the name
// to a Ref once at construction and stay off the name map in steady state.
type Raiser interface {
	Raise(t *sim.Task, name Name, m *mbuf.Mbuf) int
	RaiseRef(t *sim.Task, r *Ref, m *mbuf.Mbuf) int
}

// Guard is a packet-filter predicate evaluated before a handler is invoked.
// Guards must be side-effect free; they run for every raise of the event.
type Guard func(t *sim.Task, m *mbuf.Mbuf) bool

// HandlerFunc is the procedure executed in response to an event.
type HandlerFunc func(t *sim.Task, m *mbuf.Mbuf)

// Handler is a handler procedure plus the attributes the dispatcher needs:
// a diagnostic name and whether the procedure is EPHEMERAL.
type Handler struct {
	Name      string
	Fn        HandlerFunc
	Ephemeral bool
}

// Ephemeral builds an EPHEMERAL handler descriptor: one whose implementation
// tolerates premature termination without violating invariants (paper
// Figure 3). The caller asserts the property; the dispatcher enforces its
// consequences.
func Ephemeral(name string, fn HandlerFunc) Handler {
	return Handler{Name: name, Fn: fn, Ephemeral: true}
}

// Proc builds an ordinary (non-ephemeral) handler descriptor.
func Proc(name string, fn HandlerFunc) Handler {
	return Handler{Name: name, Fn: fn}
}

// Options configure a declared event.
type Options struct {
	// RequireEphemeral makes the event reject non-EPHEMERAL handlers at
	// install time. Events raised from interrupt context declare this.
	RequireEphemeral bool
}

// Costs parameterize what raising an event charges the running task. The
// defaults model SPIN's measured overheads: a guard evaluation and a handler
// invocation each cost roughly a procedure call.
type Costs struct {
	GuardEval sim.Time // charged per guard evaluated
	Invoke    sim.Time // charged per handler invoked
}

// DefaultCosts mirrors the paper's "roughly one procedure call" dispatch.
func DefaultCosts() Costs {
	return Costs{GuardEval: 200 * sim.Nanosecond, Invoke: 1 * sim.Microsecond}
}

// Errors returned by the dispatcher.
var (
	// ErrUnknownEvent reports a raise or install on an undeclared event.
	ErrUnknownEvent = errors.New("event: unknown event")
	// ErrNotEphemeral reports an attempt to install a non-EPHEMERAL handler
	// on an event that requires one (paper §3.3: "the manager can reject
	// the handler").
	ErrNotEphemeral = errors.New("event: handler is not EPHEMERAL")
	// ErrDuplicate reports a duplicate event declaration.
	ErrDuplicate = errors.New("event: already declared")
	// ErrAllotmentNotEphemeral reports an attempt to install a non-EPHEMERAL
	// handler with a time allotment. Allotments are enforced by premature
	// termination, which only EPHEMERAL handlers tolerate (§3.3); terminating
	// an ordinary handler could leave shared state corrupt.
	ErrAllotmentNotEphemeral = errors.New("event: time allotment requires an EPHEMERAL handler")
)

// BindingStats counts a binding's dispatch activity and its faults. The sum
// Faults() is what the quarantine policy compares against its threshold.
type BindingStats struct {
	Invocations   uint64 // handler bodies run
	GuardRejects  uint64 // raises filtered out by the guard
	Terminations  uint64 // premature terminations for budget overrun
	Panics        uint64 // handler bodies that panicked (contained)
	GuardPanics   uint64 // guard evaluations that panicked (contained; counts as a reject)
	GuardOverruns uint64 // guard evaluations exceeding the policy's GuardBudget
}

// Faults is the total misbehavior charged against the binding: allotment
// terminations, contained panics (handler or guard), and guard overruns.
func (s BindingStats) Faults() uint64 {
	return s.Terminations + s.Panics + s.GuardPanics + s.GuardOverruns
}

// Binding is one installed (guard, handler) pair; the handle for uninstall.
//
// Lifecycle: a *Binding stays valid after the binding stops delivering —
// whether by Uninstall or by quarantine — so owners can read Stats(),
// Quarantined(), and Removed() post-mortem. Only dispatch stops; the handle
// is never recycled.
type Binding struct {
	event       *eventState
	guard       Guard
	handler     Handler
	allotment   sim.Time // 0 = unlimited
	removed     bool
	quarantined bool
	stats       BindingStats
}

// Stats returns a snapshot of the binding's counters.
func (b *Binding) Stats() BindingStats { return b.stats }

// Handler returns the installed handler descriptor.
func (b *Binding) Handler() Handler { return b.handler }

// Allotment returns the per-invocation time budget (0 = unlimited).
func (b *Binding) Allotment() sim.Time { return b.allotment }

// Quarantined reports whether the dispatcher auto-disabled the binding after
// it reached the quarantine policy's fault threshold.
func (b *Binding) Quarantined() bool { return b.quarantined }

// Removed reports whether the binding was uninstalled.
func (b *Binding) Removed() bool { return b.removed }

// Event returns the name of the event the binding was installed on.
func (b *Binding) Event() Name { return b.event.name }

// QuarantinePolicy configures runtime ejection of faulty bindings. The zero
// value disables quarantine (faults are still counted in BindingStats).
type QuarantinePolicy struct {
	// Threshold is the fault count (BindingStats.Faults) at which the
	// dispatcher auto-disables a binding. 0 disables quarantine.
	Threshold uint64
	// GuardBudget bounds the CPU a single guard evaluation may consume
	// beyond the dispatcher's own GuardEval charge. A guard exceeding it is
	// refunded down to the budget and charged a GuardOverruns fault —
	// allotment enforcement extended to guards, which the paper requires to
	// be cheap predicates. 0 = unlimited.
	GuardBudget sim.Time
}

// Enabled reports whether the policy ejects bindings.
func (p QuarantinePolicy) Enabled() bool { return p.Threshold > 0 }

type eventState struct {
	name     Name
	opts     Options
	bindings []*Binding
	raises   uint64
}

// Dispatcher routes raised events to installed handlers.
type Dispatcher struct {
	costs  Costs
	events map[Name]*eventState
	// raiseDepth guards against accidental unbounded event recursion in a
	// misbuilt protocol graph.
	raiseDepth int32
	// scratch holds one reusable binding buffer per active raise depth, so
	// the per-raise snapshot does not allocate in steady state. Indexed by
	// depth-1; nested raises each get their own buffer.
	scratch [][]*Binding
	// quar is the quarantine policy; zero value = disabled.
	quar QuarantinePolicy
	// ejected retains quarantined bindings (already detached from their
	// events) so Health can still account for them.
	ejected []*Binding
	// pool, when attached, contributes the host's mbuf gauge to Health so
	// buffer leaks surface in the same snapshot as fault counters.
	pool *mbuf.Pool
	// tcpGauge, when attached, contributes the transport's conformance
	// counters to Health (the event layer cannot import internal/tcp).
	tcpGauge func() TCPGauge
}

// maxRaiseDepth bounds protocol-graph recursion; real stacks are ~6 deep.
const maxRaiseDepth = 64

// NewDispatcher creates a dispatcher with the given cost model.
func NewDispatcher(costs Costs) *Dispatcher {
	return &Dispatcher{costs: costs, events: make(map[Name]*eventState)}
}

// SetQuarantine installs (or, with the zero value, disables) the quarantine
// policy. It applies to faults recorded after the call; bindings already
// quarantined stay quarantined.
func (d *Dispatcher) SetQuarantine(p QuarantinePolicy) { d.quar = p }

// Quarantine returns the active quarantine policy.
func (d *Dispatcher) Quarantine() QuarantinePolicy { return d.quar }

// Health is a dispatcher-level snapshot of extension behavior: how many
// bindings are live, how many the quarantine policy has ejected, and the
// fault totals accumulated across every binding (including ejected ones).
type Health struct {
	Events        int    // declared events
	Bindings      int    // live installed bindings
	Quarantined   int    // bindings auto-disabled by the quarantine policy
	Invocations   uint64 // handler bodies run
	Panics        uint64 // handler panics contained
	GuardPanics   uint64 // guard panics contained
	Terminations  uint64 // allotment overruns terminated
	GuardOverruns uint64 // guard budget overruns
	Faults        uint64 // sum of the four fault classes

	// Mbuf is the host pool's live-buffer gauge (zero value when no pool
	// is attached): in-flight mbufs/clusters and their high-water marks.
	Mbuf mbuf.Gauge

	// TCP is the transport's conformance gauge (zero value when no TCP
	// manager is attached): rejected RSTs and TIME-WAIT quiet-period
	// activity.
	TCP TCPGauge
}

// TCPGauge surfaces the transport's RFC 793 conformance counters in Health.
// The dispatcher sits below the protocol stack and cannot import
// internal/tcp, so — like the mbuf pool — the transport attaches a provider.
type TCPGauge struct {
	RSTsRejected       uint64 `json:"tcp_rsts_rejected"`
	TimeWaitRearms     uint64 `json:"tcp_timewait_rearms"`
	TimeWaitQuietDrops uint64 `json:"tcp_timewait_quiet_drops"`
	// FastRecoveries counts NewReno fast-recovery episodes; SackRexmits
	// counts scoreboard-driven selective retransmissions.
	FastRecoveries uint64 `json:"tcp_fast_recoveries"`
	SackRexmits    uint64 `json:"tcp_sack_rexmits"`
}

// Health returns the dispatcher's current health snapshot.
func (d *Dispatcher) Health() Health {
	h := Health{Events: len(d.events), Quarantined: len(d.ejected)}
	acc := func(b *Binding) {
		h.Invocations += b.stats.Invocations
		h.Panics += b.stats.Panics
		h.GuardPanics += b.stats.GuardPanics
		h.Terminations += b.stats.Terminations
		h.GuardOverruns += b.stats.GuardOverruns
		h.Faults += b.stats.Faults()
	}
	for _, ev := range d.events {
		h.Bindings += len(ev.bindings)
		for _, b := range ev.bindings {
			acc(b)
		}
	}
	for _, b := range d.ejected {
		acc(b)
	}
	if d.pool != nil {
		h.Mbuf = d.pool.Gauge()
	}
	if d.tcpGauge != nil {
		h.TCP = d.tcpGauge()
	}
	return h
}

// AttachPool associates the host's mbuf pool with the dispatcher so Health
// includes the buffer gauge. Nil detaches.
func (d *Dispatcher) AttachPool(p *mbuf.Pool) { d.pool = p }

// AttachTCPGauge associates a TCP conformance-counter provider with the
// dispatcher so Health includes the transport gauge. Nil detaches.
func (d *Dispatcher) AttachTCPGauge(fn func() TCPGauge) { d.tcpGauge = fn }

// Declare registers an event name. Redeclaration fails.
func (d *Dispatcher) Declare(name Name, opts Options) error {
	if _, ok := d.events[name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	d.events[name] = &eventState{name: name, opts: opts}
	return nil
}

// MustDeclare is Declare that panics on error, for static graph setup.
func (d *Dispatcher) MustDeclare(name Name, opts Options) {
	if err := d.Declare(name, opts); err != nil {
		panic(err)
	}
}

// Declared reports whether name has been declared.
func (d *Dispatcher) Declared(name Name) bool {
	_, ok := d.events[name]
	return ok
}

// Install attaches a handler (with optional guard; nil matches everything)
// to an event. allotment, if nonzero, is the EPHEMERAL time budget per
// invocation. Installation order is dispatch order.
func (d *Dispatcher) Install(name Name, guard Guard, h Handler, allotment sim.Time) (*Binding, error) {
	ev, ok := d.events[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEvent, name)
	}
	if ev.opts.RequireEphemeral && !h.Ephemeral {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotEphemeral, h.Name, name)
	}
	if h.Fn == nil {
		return nil, fmt.Errorf("event: nil handler %q on %s", h.Name, name)
	}
	if allotment < 0 {
		return nil, fmt.Errorf("event: negative allotment %v for %q on %s", allotment, h.Name, name)
	}
	if allotment > 0 && !h.Ephemeral {
		return nil, fmt.Errorf("%w: %s on %s", ErrAllotmentNotEphemeral, h.Name, name)
	}
	b := &Binding{event: ev, guard: guard, handler: h, allotment: allotment}
	ev.bindings = append(ev.bindings, b)
	return b, nil
}

// Uninstall detaches a binding. Semantics:
//
//   - Returns true iff this call removed an actively dispatching binding.
//   - Double-uninstall is a no-op returning false.
//   - Uninstalling a quarantined binding marks it removed but returns false
//     (quarantine had already detached it).
//   - A binding uninstalled during a raise does not fire later in that same
//     raise, even though the raise's dispatch snapshot was taken before the
//     removal.
//   - The *Binding handle stays valid afterwards: Stats() remains readable;
//     only delivery stops.
func (d *Dispatcher) Uninstall(b *Binding) bool {
	if b == nil || b.removed {
		return false
	}
	b.removed = true
	if b.quarantined {
		return false
	}
	return detach(b)
}

// detach splices a binding out of its event's dispatch list.
func detach(b *Binding) bool {
	ev := b.event
	for i, x := range ev.bindings {
		if x == b {
			ev.bindings = append(ev.bindings[:i], ev.bindings[i+1:]...)
			return true
		}
	}
	return false
}

// HandlerCount reports the number of handlers installed on an event.
func (d *Dispatcher) HandlerCount(name Name) int {
	if ev, ok := d.events[name]; ok {
		return len(ev.bindings)
	}
	return 0
}

// Ref is a resolved handle to one declared event. The handle pins the
// event's dispatch state, so raising or counting handlers through it skips
// the name-map lookup that Raise and HandlerCount pay — the difference is
// a few percent of total runtime on the per-packet path, where every layer
// raises the same one or two events for every packet. Declarations are
// permanent, so a Ref never goes stale; handlers installed or removed later
// are seen by the next raise through it, exactly as with Raise by name.
type Ref struct {
	d  *Dispatcher
	ev *eventState
}

// Ref resolves name to a dispatch handle. Like raising an undeclared event,
// resolving an undeclared name panics: only code linked against the event's
// interface can name it, so an unknown name is a programming error.
func (d *Dispatcher) Ref(name Name) *Ref {
	ev, ok := d.events[name]
	if !ok {
		panic(graphPanic{fmt.Sprintf("event: ref to undeclared event %s", name)})
	}
	return &Ref{d: d, ev: ev}
}

// Name returns the referenced event's name.
func (r *Ref) Name() Name { return r.ev.name }

// HandlerCount reports the number of handlers installed on the event.
func (r *Ref) HandlerCount() int { return len(r.ev.bindings) }

// Raise is Dispatcher.Raise through the resolved handle.
func (r *Ref) Raise(t *sim.Task, m *mbuf.Mbuf) int { return r.d.raise(t, r.ev, m) }

// RaiseRef implements Raiser's resolved-handle raise for inline dispatch.
func (d *Dispatcher) RaiseRef(t *sim.Task, r *Ref, m *mbuf.Mbuf) int {
	return d.raise(t, r.ev, m)
}

// Raises reports how many times an event has been raised.
func (d *Dispatcher) Raises(name Name) uint64 {
	if ev, ok := d.events[name]; ok {
		return ev.raises
	}
	return 0
}

// graphPanic marks dispatcher-integrity panics (raise of an undeclared
// event, recursion bound exceeded) so crash containment rethrows them
// instead of charging them to whichever extension's handler happened to be
// on the stack.
type graphPanic struct{ msg string }

func (g graphPanic) Error() string  { return g.msg }
func (g graphPanic) String() string { return g.msg }

// evalGuard runs one guard under crash containment. A panicking guard is
// treated as a reject; the fault is the caller's to count.
func (d *Dispatcher) evalGuard(t *sim.Task, name Name, b *Binding, m *mbuf.Mbuf) (ok, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			if gp, isGraph := r.(graphPanic); isGraph {
				panic(gp)
			}
			panicked = true
			if t.Sim().TraceEnabled() {
				t.Sim().Tracef(sim.TraceEvent, "%s: guard of %s panicked (contained): %v",
					name, b.handler.Name, r)
			}
		}
	}()
	return b.guard(t, m), false
}

// invoke runs one handler body under crash containment.
func (d *Dispatcher) invoke(t *sim.Task, name Name, b *Binding, m *mbuf.Mbuf) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			if gp, isGraph := r.(graphPanic); isGraph {
				panic(gp)
			}
			panicked = true
			if t.Sim().TraceEnabled() {
				t.Sim().Tracef(sim.TraceEvent, "%s: handler %s panicked (contained): %v",
					name, b.handler.Name, r)
			}
		}
	}()
	b.handler.Fn(t, m)
	return false
}

// fault applies the quarantine policy after a fault was recorded on b.
func (d *Dispatcher) fault(t *sim.Task, name Name, b *Binding) {
	if d.quar.Threshold == 0 || b.quarantined || b.removed {
		return
	}
	if b.stats.Faults() < d.quar.Threshold {
		return
	}
	b.quarantined = true
	detach(b)
	d.ejected = append(d.ejected, b)
	if t.Sim().TraceEnabled() {
		t.Sim().Tracef(sim.TraceEvent, "%s: handler %s quarantined after %d faults",
			name, b.handler.Name, b.stats.Faults())
	}
}

// Raise announces the event to every installed handler whose guard accepts
// the packet, charging the raising task per the cost model. It returns the
// number of handlers invoked. Raising an undeclared event panics: in SPIN
// only code linked against the event's interface can name it, so an unknown
// name is a programming error, not a runtime condition.
//
// Handlers and guards run under crash containment: a panic is caught and
// counted (BindingStats.Panics / GuardPanics), the time consumed stays
// charged, and dispatch continues. Containment preserves the graph, not the
// packet — a handler that panicked mid-mutation may leave the mbuf chain in
// a state later handlers must tolerate, exactly as they must tolerate any
// other handler's consumption of the packet.
func (d *Dispatcher) Raise(t *sim.Task, name Name, m *mbuf.Mbuf) int {
	ev, ok := d.events[name]
	if !ok {
		panic(graphPanic{fmt.Sprintf("event: raise of undeclared event %s", name)})
	}
	return d.raise(t, ev, m)
}

// raise dispatches to ev's handlers; see Raise for the semantics.
func (d *Dispatcher) raise(t *sim.Task, ev *eventState, m *mbuf.Mbuf) int {
	name := ev.name
	depth := atomic.AddInt32(&d.raiseDepth, 1)
	if depth > maxRaiseDepth {
		atomic.AddInt32(&d.raiseDepth, -1)
		panic(graphPanic{fmt.Sprintf("event: raise depth exceeds %d (cycle in protocol graph?) at %s", maxRaiseDepth, name)})
	}
	defer atomic.AddInt32(&d.raiseDepth, -1)
	ev.raises++
	if m != nil {
		if hdr := m.Hdr(); hdr != nil {
			t.Hop(hdr.Span, "event", string(name), hdr.Len)
		}
	}
	invoked := 0
	// Snapshot: handlers installed/removed during dispatch take effect on
	// the next raise, matching SPIN's install semantics. The snapshot is
	// copied into a per-depth scratch buffer reused across raises.
	for int(depth) > len(d.scratch) {
		d.scratch = append(d.scratch, nil)
	}
	bindings := append(d.scratch[depth-1][:0], ev.bindings...)
	d.scratch[depth-1] = bindings
	// Dispatch is two-phase: every guard is evaluated against the intact
	// packet first, then the matching handlers run. A handler may consume
	// the packet (strip headers, free it), which must not corrupt the
	// view later guards see. matched overlays the snapshot's storage: it
	// only ever writes an index the scan has already passed.
	matched := bindings[:0]
	for _, b := range bindings {
		if b.removed || b.quarantined {
			continue
		}
		if b.guard != nil {
			t.ChargeProf(sim.ProfDispatch, b.handler.Name, d.costs.GuardEval)
			before := t.Charged()
			ok, panicked := d.evalGuard(t, name, b, m)
			if d.quar.GuardBudget > 0 {
				if over := t.Charged() - before - d.quar.GuardBudget; over > 0 {
					// The guard overran its budget: terminate it there, like
					// a handler at its allotment.
					t.Refund(over)
					b.stats.GuardOverruns++
					d.fault(t, name, b)
				}
			}
			if panicked {
				b.stats.GuardPanics++
				d.fault(t, name, b)
				continue
			}
			if !ok {
				b.stats.GuardRejects++
				continue
			}
		}
		matched = append(matched, b)
	}
	for _, b := range matched {
		// Re-check liveness: an earlier handler in this same raise may have
		// uninstalled b, or b's guard fault may have quarantined it after it
		// matched. A removed binding must not fire on the stale snapshot.
		if b.removed || b.quarantined {
			continue
		}
		t.ChargeProf(sim.ProfDispatch, b.handler.Name, d.costs.Invoke)
		before := t.Charged()
		panicked := d.invoke(t, name, b, m)
		consumed := t.Charged() - before
		if b.allotment > 0 && consumed > b.allotment {
			// Premature termination: the handler stopped at its
			// allotment; CPU time beyond it was never consumed.
			t.Refund(consumed - b.allotment)
			t.Sim().Tracef(sim.TraceEvent, "%s: handler %s terminated after %v (allotment %v)",
				name, b.handler.Name, consumed, b.allotment)
			b.stats.Terminations++
			d.fault(t, name, b)
		}
		if panicked {
			b.stats.Panics++
			d.fault(t, name, b)
		}
		if mm := t.Sim().Metrics(); mm != nil {
			// Attribute the handler body's post-clamp consumption; the
			// slice starts where the body began in virtual time.
			mm.Sample(t.CPU().Name(), sim.ProfHandler, b.handler.Name, t.Priority(),
				t.Start()+before, t.Charged()-before)
		}
		b.stats.Invocations++
		invoked++
	}
	return invoked
}
