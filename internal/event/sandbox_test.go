package event

// Tests for the extension sandbox: crash containment, fault accounting,
// quarantine, and the install/uninstall lifecycle rules that keep a
// misbehaving handler from taking the rest of the graph down with it.

import (
	"errors"
	"testing"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

func TestHandlerPanicContained(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	var order []string
	mustInstall(t, d, "E", nil, Proc("first", func(task *sim.Task, m *mbuf.Mbuf) {
		order = append(order, "first")
	}))
	bad := mustInstall(t, d, "E", nil, Proc("bad", func(task *sim.Task, m *mbuf.Mbuf) {
		order = append(order, "bad")
		panic("rogue handler")
	}))
	mustInstall(t, d, "E", nil, Proc("last", func(task *sim.Task, m *mbuf.Mbuf) {
		order = append(order, "last")
	}))
	m := pkt(t, 0)
	var invoked int
	run(t, func(task *sim.Task) { invoked = d.Raise(task, "E", m) })
	if invoked != 3 {
		t.Fatalf("Raise invoked %d handlers, want 3 (panic must not stop dispatch)", invoked)
	}
	if len(order) != 3 || order[2] != "last" {
		t.Fatalf("dispatch order %v, want all three handlers", order)
	}
	if s := bad.Stats(); s.Panics != 1 || s.Invocations != 1 {
		t.Fatalf("bad stats = %+v, want Panics=1 Invocations=1", s)
	}
	if h := d.Health(); h.Panics != 1 || h.Faults != 1 {
		t.Fatalf("health = %+v, want Panics=1 Faults=1", h)
	}
}

func TestHandlerPanicTimeStaysCharged(t *testing.T) {
	d := NewDispatcher(Costs{})
	d.MustDeclare("E", Options{})
	mustInstall(t, d, "E", nil, Proc("burn-then-panic", func(task *sim.Task, m *mbuf.Mbuf) {
		task.Charge(7 * sim.Microsecond)
		panic("after burning CPU")
	}))
	m := pkt(t, 0)
	var charged sim.Time
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m)
		charged = task.Charged()
	})
	if charged != 7*sim.Microsecond {
		t.Fatalf("charged %v, want 7µs (a contained panic is still charged)", charged)
	}
}

func TestGuardPanicIsReject(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	var badRan, goodRan bool
	bad := mustInstall(t, d, "E",
		func(task *sim.Task, m *mbuf.Mbuf) bool { panic("rogue guard") },
		Proc("bad", func(task *sim.Task, m *mbuf.Mbuf) { badRan = true }))
	good := mustInstall(t, d, "E", nil, Proc("good", func(task *sim.Task, m *mbuf.Mbuf) { goodRan = true }))
	m := pkt(t, 0)
	var invoked int
	run(t, func(task *sim.Task) { invoked = d.Raise(task, "E", m) })
	if invoked != 1 || badRan || !goodRan {
		t.Fatalf("invoked=%d badRan=%v goodRan=%v; want panicking guard treated as reject", invoked, badRan, goodRan)
	}
	if s := bad.Stats(); s.GuardPanics != 1 || s.Invocations != 0 {
		t.Fatalf("bad stats = %+v, want GuardPanics=1 Invocations=0", s)
	}
	if s := good.Stats(); s.Invocations != 1 {
		t.Fatalf("good stats = %+v", s)
	}
}

// Dispatcher-integrity panics must NOT be contained: a handler that raises
// an undeclared event is a misbuilt graph, and the panic propagates.
func TestGraphPanicRethrownThroughContainment(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	mustInstall(t, d, "E", nil, Proc("bad-raise", func(task *sim.Task, m *mbuf.Mbuf) {
		d.Raise(task, "NotDeclared", m)
	}))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		defer func() {
			if recover() == nil {
				t.Error("undeclared raise inside a handler did not propagate")
			}
		}()
		d.Raise(task, "E", m)
	})
}

func TestQuarantineAfterThreshold(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.SetQuarantine(QuarantinePolicy{Threshold: 3})
	d.MustDeclare("E", Options{})
	bad := mustInstall(t, d, "E", nil, Proc("bad", func(task *sim.Task, m *mbuf.Mbuf) {
		panic("always")
	}))
	var goodCount int
	mustInstall(t, d, "E", nil, Proc("good", func(task *sim.Task, m *mbuf.Mbuf) { goodCount++ }))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		for i := 0; i < 10; i++ {
			d.Raise(task, "E", m)
		}
	})
	if !bad.Quarantined() {
		t.Fatal("faulty binding not quarantined")
	}
	if s := bad.Stats(); s.Faults() != 3 {
		t.Fatalf("faults = %d, want exactly the threshold 3", s.Faults())
	}
	if bad.Stats().Invocations != 3 {
		t.Fatalf("invocations = %d, want 3 (no delivery after quarantine)", bad.Stats().Invocations)
	}
	if goodCount != 10 {
		t.Fatalf("good handler ran %d times, want 10", goodCount)
	}
	if n := d.HandlerCount("E"); n != 1 {
		t.Fatalf("HandlerCount = %d, want 1 after ejection", n)
	}
	h := d.Health()
	if h.Quarantined != 1 || h.Panics != 3 || h.Bindings != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestTerminationsCountTowardQuarantine(t *testing.T) {
	d := NewDispatcher(Costs{})
	d.SetQuarantine(QuarantinePolicy{Threshold: 2})
	d.MustDeclare("E", Options{RequireEphemeral: true})
	spin, err := d.Install("E", nil, Ephemeral("spin", func(task *sim.Task, m *mbuf.Mbuf) {
		task.Charge(1 * sim.Millisecond) // models an infinite loop
	}), 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		for i := 0; i < 5; i++ {
			d.Raise(task, "E", m)
		}
	})
	if !spin.Quarantined() {
		t.Fatal("spinning binding not quarantined")
	}
	if s := spin.Stats(); s.Terminations != 2 || s.Invocations != 2 {
		t.Fatalf("stats = %+v, want Terminations=2 Invocations=2", s)
	}
}

func TestGuardOverrunRefundedAndQuarantined(t *testing.T) {
	d := NewDispatcher(Costs{})
	d.SetQuarantine(QuarantinePolicy{Threshold: 2, GuardBudget: 5 * sim.Microsecond})
	d.MustDeclare("E", Options{})
	var stolen int
	steal := mustInstall(t, d, "E",
		func(task *sim.Task, m *mbuf.Mbuf) bool {
			task.Charge(50 * sim.Microsecond) // burning CPU where guards must be cheap
			return true
		},
		Proc("steal", func(task *sim.Task, m *mbuf.Mbuf) { stolen++ }))
	m := pkt(t, 0)
	var charged sim.Time
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m)
		charged = task.Charged()
		for i := 0; i < 4; i++ {
			d.Raise(task, "E", m)
		}
	})
	// The first raise's guard evaluation is clamped to the 5µs budget.
	if charged != 5*sim.Microsecond {
		t.Fatalf("first raise charged %v, want clamped 5µs", charged)
	}
	if !steal.Quarantined() {
		t.Fatal("overrunning guard not quarantined")
	}
	if s := steal.Stats(); s.GuardOverruns != 2 {
		t.Fatalf("stats = %+v, want GuardOverruns=2", s)
	}
	// The binding matched (guard returned true) before its quarantining
	// fault, so it was still invoked on those raises — but never after.
	if stolen > 2 {
		t.Fatalf("handler ran %d times after guard overruns, want ≤2", stolen)
	}
}

func TestQuarantineDisabledByDefault(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	bad := mustInstall(t, d, "E", nil, Proc("bad", func(task *sim.Task, m *mbuf.Mbuf) { panic("x") }))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		for i := 0; i < 20; i++ {
			d.Raise(task, "E", m)
		}
	})
	if bad.Quarantined() {
		t.Fatal("zero-value policy must not quarantine")
	}
	if bad.Stats().Panics != 20 {
		t.Fatalf("panics = %d, want 20 (faults still counted)", bad.Stats().Panics)
	}
}

func TestUninstallQuarantinedBinding(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.SetQuarantine(QuarantinePolicy{Threshold: 1})
	d.MustDeclare("E", Options{})
	bad := mustInstall(t, d, "E", nil, Proc("bad", func(task *sim.Task, m *mbuf.Mbuf) { panic("x") }))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) { d.Raise(task, "E", m) })
	if !bad.Quarantined() {
		t.Fatal("not quarantined")
	}
	if d.Uninstall(bad) {
		t.Fatal("Uninstall of a quarantined binding must return false")
	}
	if !bad.Removed() {
		t.Fatal("uninstalled quarantined binding must still be marked removed")
	}
	if bad.Stats().Panics != 1 {
		t.Fatal("stats must stay readable after uninstall")
	}
}

// Satellite: a nonzero allotment on a non-EPHEMERAL handler must be rejected
// at install time — premature termination of an ordinary handler violates
// §3.3.
func TestAllotmentRequiresEphemeral(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	_, err := d.Install("E", nil, Proc("plain", func(task *sim.Task, m *mbuf.Mbuf) {}), 10*sim.Microsecond)
	if !errors.Is(err, ErrAllotmentNotEphemeral) {
		t.Fatalf("err = %v, want ErrAllotmentNotEphemeral", err)
	}
	if n := d.HandlerCount("E"); n != 0 {
		t.Fatalf("rejected install left %d bindings", n)
	}
	// The legal combinations still install.
	if _, err := d.Install("E", nil, Proc("plain", func(task *sim.Task, m *mbuf.Mbuf) {}), 0); err != nil {
		t.Fatalf("non-ephemeral without allotment: %v", err)
	}
	if _, err := d.Install("E", nil, Ephemeral("eph", func(task *sim.Task, m *mbuf.Mbuf) {}), 10*sim.Microsecond); err != nil {
		t.Fatalf("ephemeral with allotment: %v", err)
	}
	if _, err := d.Install("E", nil, Ephemeral("eph0", func(task *sim.Task, m *mbuf.Mbuf) {}), -1); err == nil {
		t.Fatal("negative allotment accepted")
	}
}

// Satellite: a handler uninstalled mid-raise must not fire later in that
// same raise, even though the dispatch snapshot predates the removal.
func TestUninstallDuringRaiseSuppressesLaterHandler(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	var victim *Binding
	var victimRan bool
	mustInstall(t, d, "E", nil, Proc("assassin", func(task *sim.Task, m *mbuf.Mbuf) {
		d.Uninstall(victim)
	}))
	victim = mustInstall(t, d, "E", nil, Proc("victim", func(task *sim.Task, m *mbuf.Mbuf) {
		victimRan = true
	}))
	m := pkt(t, 0)
	var invoked int
	run(t, func(task *sim.Task) { invoked = d.Raise(task, "E", m) })
	if victimRan {
		t.Fatal("handler fired after being uninstalled in the same raise")
	}
	if invoked != 1 {
		t.Fatalf("invoked = %d, want 1", invoked)
	}
	// The handle remains valid post-uninstall: double-uninstall is a no-op
	// and the stats snapshot stays readable.
	if d.Uninstall(victim) {
		t.Fatal("double-uninstall returned true")
	}
	if victim.Stats().Invocations != 0 {
		t.Fatal("victim stats wrong after uninstall")
	}
}

// The warm Raise path must stay allocation-free with containment wrappers
// and an active quarantine policy.
func TestRaiseWithQuarantineSteadyStateAllocs(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.SetQuarantine(QuarantinePolicy{Threshold: 8, GuardBudget: 100 * sim.Microsecond})
	d.MustDeclare("E", Options{})
	accept := func(task *sim.Task, m *mbuf.Mbuf) bool { return true }
	for i := 0; i < 4; i++ {
		mustInstall(t, d, "E", accept, Proc("h", func(task *sim.Task, m *mbuf.Mbuf) {}))
	}
	m := pkt(t, 9)
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m)
		avg := testing.AllocsPerRun(100, func() {
			if n := d.Raise(task, "E", m); n != 4 {
				t.Fatalf("Raise invoked %d handlers, want 4", n)
			}
		})
		if avg != 0 {
			t.Errorf("warm Raise with quarantine policy allocates %.2f/call, want 0", avg)
		}
	})
}
