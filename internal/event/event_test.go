package event

import (
	"errors"
	"testing"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

// run executes fn inside a CPU task and drains the simulation.
func run(t *testing.T, fn func(task *sim.Task)) *sim.Sim {
	t.Helper()
	s := sim.New(1)
	c := sim.NewCPU(s, "cpu0")
	c.Submit(sim.PrioKernel, "test", fn)
	s.Run()
	return s
}

func pkt(t *testing.T, firstByte byte) *mbuf.Mbuf {
	t.Helper()
	m := mbuf.DefaultPool().FromBytes([]byte{firstByte, 2, 3, 4}, 16)
	t.Cleanup(m.Free)
	return m
}

func TestDeclareAndRaise(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("Ethernet.PacketRecv", Options{})
	var got []byte
	_, err := d.Install("Ethernet.PacketRecv", nil, Proc("h", func(task *sim.Task, m *mbuf.Mbuf) {
		got, _ = m.CopyData(0, m.PktLen())
	}), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := pkt(t, 9)
	run(t, func(task *sim.Task) {
		if n := d.Raise(task, "Ethernet.PacketRecv", m); n != 1 {
			t.Errorf("Raise invoked %d handlers, want 1", n)
		}
	})
	if len(got) != 4 || got[0] != 9 {
		t.Fatalf("handler saw %v", got)
	}
	if d.Raises("Ethernet.PacketRecv") != 1 {
		t.Error("raise count wrong")
	}
}

func TestDuplicateDeclare(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	if err := d.Declare("E", Options{}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustDeclare on duplicate did not panic")
		}
	}()
	d.MustDeclare("E", Options{})
}

func TestInstallOnUnknownEvent(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	if _, err := d.Install("Nope", nil, Proc("h", func(*sim.Task, *mbuf.Mbuf) {}), 0); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("err = %v, want ErrUnknownEvent", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	if _, err := d.Install("E", nil, Handler{Name: "nil"}, 0); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestRaiseUndeclaredPanics(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	m := pkt(t, 1)
	run(t, func(task *sim.Task) {
		defer func() {
			if recover() == nil {
				t.Error("raise of undeclared event did not panic")
			}
		}()
		d.Raise(task, "Ghost", m)
	})
}

// Guards route packets to the right handler: the paper's demultiplexing.
func TestGuardDemux(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("IP.PacketRecv", Options{})
	var gotA, gotB int
	guardFor := func(b byte) Guard {
		return func(task *sim.Task, m *mbuf.Mbuf) bool { return m.Bytes()[0] == b }
	}
	mustInstall(t, d, "IP.PacketRecv", guardFor(1), Proc("a", func(*sim.Task, *mbuf.Mbuf) { gotA++ }))
	mustInstall(t, d, "IP.PacketRecv", guardFor(2), Proc("b", func(*sim.Task, *mbuf.Mbuf) { gotB++ }))

	m1, m2 := pkt(t, 1), pkt(t, 2)
	run(t, func(task *sim.Task) {
		d.Raise(task, "IP.PacketRecv", m1)
		d.Raise(task, "IP.PacketRecv", m2)
		d.Raise(task, "IP.PacketRecv", m2)
	})
	if gotA != 1 || gotB != 2 {
		t.Fatalf("demux wrong: a=%d b=%d", gotA, gotB)
	}
}

func mustInstall(t *testing.T, d *Dispatcher, name Name, g Guard, h Handler) *Binding {
	t.Helper()
	b, err := d.Install(name, g, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMultipleHandlersAllInvoked(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	count := 0
	for i := 0; i < 3; i++ {
		mustInstall(t, d, "E", nil, Proc("h", func(*sim.Task, *mbuf.Mbuf) { count++ }))
	}
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		if n := d.Raise(task, "E", m); n != 3 {
			t.Errorf("invoked %d, want 3", n)
		}
	})
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if d.HandlerCount("E") != 3 {
		t.Error("HandlerCount wrong")
	}
}

func TestUninstall(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	count := 0
	b := mustInstall(t, d, "E", nil, Proc("h", func(*sim.Task, *mbuf.Mbuf) { count++ }))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m)
		if !d.Uninstall(b) {
			t.Error("uninstall failed")
		}
		if d.Uninstall(b) {
			t.Error("double uninstall succeeded")
		}
		d.Raise(task, "E", m)
	})
	if count != 1 {
		t.Fatalf("handler ran %d times, want 1", count)
	}
	if d.HandlerCount("E") != 0 {
		t.Error("binding still counted after uninstall")
	}
}

// The paper's §3.3 policy: a manager for an interrupt-level event rejects
// non-EPHEMERAL handlers (Figure 3's NotEphemeral case).
func TestRequireEphemeral(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("Ethernet.PacketRecv", Options{RequireEphemeral: true})
	if _, err := d.Install("Ethernet.PacketRecv", nil,
		Proc("NotEphemeral", func(*sim.Task, *mbuf.Mbuf) {}), 0); !errors.Is(err, ErrNotEphemeral) {
		t.Fatalf("non-ephemeral handler accepted on interrupt event: %v", err)
	}
	if _, err := d.Install("Ethernet.PacketRecv", nil,
		Ephemeral("GoodHandler", func(*sim.Task, *mbuf.Mbuf) {}), 0); err != nil {
		t.Fatalf("ephemeral handler rejected: %v", err)
	}
}

// A handler exceeding its time allotment is prematurely terminated: the
// excess CPU time is refunded and the termination is counted.
func TestAllotmentTermination(t *testing.T) {
	d := NewDispatcher(Costs{}) // zero dispatch costs: isolate handler time
	d.MustDeclare("E", Options{RequireEphemeral: true})
	b, err := d.Install("E", nil, Ephemeral("slow", func(task *sim.Task, m *mbuf.Mbuf) {
		task.Charge(100 * sim.Microsecond)
	}), 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if b.Allotment() != 10*sim.Microsecond {
		t.Error("allotment not recorded")
	}
	m := pkt(t, 0)
	var charged sim.Time
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m)
		charged = task.Charged()
	})
	if charged != 10*sim.Microsecond {
		t.Fatalf("task charged %v, want clamped 10µs", charged)
	}
	if b.Stats().Terminations != 1 {
		t.Fatalf("terminations = %d, want 1", b.Stats().Terminations)
	}
}

func TestAllotmentNotExceeded(t *testing.T) {
	d := NewDispatcher(Costs{})
	d.MustDeclare("E", Options{})
	b := mustInstall(t, d, "E", nil, Ephemeral("fast", func(task *sim.Task, m *mbuf.Mbuf) {
		task.Charge(2 * sim.Microsecond)
	}))
	b.allotment = 10 * sim.Microsecond
	m := pkt(t, 0)
	run(t, func(task *sim.Task) { d.Raise(task, "E", m) })
	if b.Stats().Terminations != 0 {
		t.Fatal("fast handler terminated")
	}
	if b.Stats().Invocations != 1 {
		t.Fatal("invocation not counted")
	}
}

// Dispatch must charge the raising task: guards cost an evaluation each,
// handlers an invocation each.
func TestDispatchCostAccounting(t *testing.T) {
	costs := Costs{GuardEval: 200 * sim.Nanosecond, Invoke: 1 * sim.Microsecond}
	d := NewDispatcher(costs)
	d.MustDeclare("E", Options{})
	accept := func(*sim.Task, *mbuf.Mbuf) bool { return true }
	reject := func(*sim.Task, *mbuf.Mbuf) bool { return false }
	mustInstall(t, d, "E", accept, Proc("a", func(*sim.Task, *mbuf.Mbuf) {}))
	mustInstall(t, d, "E", reject, Proc("b", func(*sim.Task, *mbuf.Mbuf) {}))
	mustInstall(t, d, "E", nil, Proc("c", func(*sim.Task, *mbuf.Mbuf) {}))
	m := pkt(t, 0)
	var charged sim.Time
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m)
		charged = task.Charged()
	})
	want := 2*costs.GuardEval + 2*costs.Invoke // two guards evaluated, a and c invoked
	if charged != want {
		t.Fatalf("charged %v, want %v", charged, want)
	}
}

func TestGuardRejectStats(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	b := mustInstall(t, d, "E", func(*sim.Task, *mbuf.Mbuf) bool { return false },
		Proc("h", func(*sim.Task, *mbuf.Mbuf) {}))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m)
		d.Raise(task, "E", m)
	})
	if b.Stats().GuardRejects != 2 || b.Stats().Invocations != 0 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

// Handlers installed during a raise take effect on the next raise only.
func TestInstallDuringDispatch(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	var second int
	mustInstall(t, d, "E", nil, Proc("installer", func(task *sim.Task, m *mbuf.Mbuf) {
		if d.HandlerCount("E") == 1 {
			mustInstall(t, d, "E", nil, Proc("late", func(*sim.Task, *mbuf.Mbuf) { second++ }))
		}
	}))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		if n := d.Raise(task, "E", m); n != 1 {
			t.Errorf("first raise invoked %d", n)
		}
		if n := d.Raise(task, "E", m); n != 2 {
			t.Errorf("second raise invoked %d", n)
		}
	})
	if second != 1 {
		t.Fatalf("late handler ran %d times", second)
	}
}

// A cyclic protocol graph (event A raising itself) is detected rather than
// hanging the simulation.
func TestRaiseCycleDetected(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("Loop", Options{})
	var raise func(task *sim.Task, m *mbuf.Mbuf)
	raise = func(task *sim.Task, m *mbuf.Mbuf) { d.Raise(task, "Loop", m) }
	mustInstall(t, d, "Loop", nil, Proc("loop", func(task *sim.Task, m *mbuf.Mbuf) { raise(task, m) }))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) {
		defer func() {
			if recover() == nil {
				t.Error("cyclic raise did not panic")
			}
		}()
		d.Raise(task, "Loop", m)
	})
}

func TestDeclaredAndHandlerAccessors(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	if !d.Declared("E") || d.Declared("F") {
		t.Error("Declared wrong")
	}
	h := Ephemeral("x", func(*sim.Task, *mbuf.Mbuf) {})
	b := mustInstall(t, d, "E", nil, h)
	if b.Handler().Name != "x" || !b.Handler().Ephemeral {
		t.Error("Handler accessor wrong")
	}
	if d.Raises("F") != 0 || d.HandlerCount("F") != 0 {
		t.Error("unknown-event accessors should return zero")
	}
	if d.Uninstall(nil) {
		t.Error("Uninstall(nil) returned true")
	}
}

// Two-phase dispatch: every guard is evaluated against the intact packet
// before ANY handler runs, so a consuming handler cannot corrupt the view a
// later guard sees (the exact bug class this property prevents in the
// protocol graph).
func TestGuardsEvaluateBeforeHandlers(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	var order []string
	mustInstall(t, d, "E", func(*sim.Task, *mbuf.Mbuf) bool {
		order = append(order, "guard1")
		return true
	}, Proc("h1", func(*sim.Task, *mbuf.Mbuf) { order = append(order, "handler1") }))
	mustInstall(t, d, "E", func(*sim.Task, *mbuf.Mbuf) bool {
		order = append(order, "guard2")
		return true
	}, Proc("h2", func(*sim.Task, *mbuf.Mbuf) { order = append(order, "handler2") }))
	m := pkt(t, 0)
	run(t, func(task *sim.Task) { d.Raise(task, "E", m) })
	want := []string{"guard1", "guard2", "handler1", "handler2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// DefaultCosts matches the paper's "roughly one procedure call" story:
// guard evaluation well under handler invocation, both far under protocol
// processing scale.
func TestDefaultCostsShape(t *testing.T) {
	c := DefaultCosts()
	if c.GuardEval <= 0 || c.Invoke <= 0 {
		t.Fatal("zero default costs")
	}
	if c.GuardEval >= c.Invoke {
		t.Error("guard evaluation should cost less than handler invocation")
	}
	if c.Invoke > 5*sim.Microsecond {
		t.Error("handler invocation should stay at procedure-call scale")
	}
}

// TestRaiseSteadyStateAllocs pins the zero-alloc property of dispatch: on a
// warm dispatcher (scratch snapshot buffer grown), Raise allocates nothing
// per call, even with a mix of guards accepting and rejecting.
func TestRaiseSteadyStateAllocs(t *testing.T) {
	d := NewDispatcher(DefaultCosts())
	d.MustDeclare("E", Options{})
	accept := func(task *sim.Task, m *mbuf.Mbuf) bool { return m.Bytes()[0] == 9 }
	reject := func(task *sim.Task, m *mbuf.Mbuf) bool { return m.Bytes()[0] != 9 }
	for i := 0; i < 4; i++ {
		if _, err := d.Install("E", accept, Proc("hit", func(task *sim.Task, m *mbuf.Mbuf) {}), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Install("E", reject, Proc("miss", func(task *sim.Task, m *mbuf.Mbuf) {}), 0); err != nil {
			t.Fatal(err)
		}
	}
	m := pkt(t, 9)
	run(t, func(task *sim.Task) {
		d.Raise(task, "E", m) // warm: grows the scratch buffer once
		avg := testing.AllocsPerRun(100, func() {
			if n := d.Raise(task, "E", m); n != 4 {
				t.Fatalf("Raise invoked %d handlers, want 4", n)
			}
		})
		if avg != 0 {
			t.Errorf("warm Raise allocates %.2f/call, want 0", avg)
		}
	})
}
