package seqpkt_test

import (
	"bytes"
	"fmt"
	"testing"

	"plexus/internal/fault"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/seqpkt"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func spin(name string) plexus.HostSpec {
	return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

// install puts the application-defined protocol into a host's graph.
func install(t *testing.T, st *plexus.Stack) *seqpkt.Manager {
	t.Helper()
	m, err := seqpkt.Install(seqpkt.Config{
		Sim:              st.Host.Sim,
		IP:               st.IP,
		Disp:             st.Host.Disp,
		Raise:            st.Raiser(),
		CPU:              st.Host.CPU,
		Pool:             st.Host.Pool,
		Costs:            st.Host.Costs,
		RequireEphemeral: st.InterruptMode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func pairWithSPP(t *testing.T) (*plexus.Network, *plexus.Stack, *plexus.Stack, *seqpkt.Manager, *seqpkt.Manager) {
	t.Helper()
	n, a, b, err := plexus.TwoHosts(1, netdev.EthernetModel(), spin("a"), spin("b"))
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b, install(t, a), install(t, b)
}

func TestBasicExchange(t *testing.T) {
	n, a, b, ma, mb := pairWithSPP(t)
	var got []string
	rx, err := mb.Open(40, func(task *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		got = append(got, string(data))
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		for i := 0; i < 5; i++ {
			if _, err := tx.Send(task, b.Addr(), 40, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	n.Sim.RunUntil(10 * sim.Second)
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("order wrong: %v", got)
		}
	}
	if tx.Pending() != 0 {
		t.Errorf("%d sends still unacknowledged", tx.Pending())
	}
	if tx.Stats().Acked != 5 || rx.Stats().Delivered != 5 {
		t.Errorf("stats: tx=%+v rx=%+v", tx.Stats(), rx.Stats())
	}
}

// Reliability: heavy loss on the wire; every datagram still arrives, exactly
// once, in order.
func TestReliableUnderLoss(t *testing.T) {
	n, a, b, ma, mb := pairWithSPP(t)
	// Drop 25% of all frames, both directions.
	fault.Attach(n.Sim, n.Link).Lose(&fault.EveryNth{N: 4})
	var got []uint32
	if _, err := mb.Open(40, func(task *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		got = append(got, seq)
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 40
	for i := 0; i < msgs; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		a.SpawnAt(at, "send", func(task *sim.Task) {
			if _, err := tx.Send(task, b.Addr(), 40, make([]byte, 200)); err != nil {
				t.Errorf("send: %v", err)
			}
		})
	}
	n.Sim.RunUntil(2 * 60 * sim.Second)
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d under loss", len(got), msgs)
	}
	for i, s := range got {
		if s != uint32(i+1) {
			t.Fatalf("order violated at %d: %v", i, got[:i+1])
		}
	}
	if tx.Stats().Retransmits == 0 {
		t.Error("no retransmissions despite 25% loss; test is vacuous")
	}
	t.Logf("%d datagrams, %d retransmits, %d dups absorbed",
		msgs, tx.Stats().Retransmits, mb.Stats().Duplicates)
}

// Ordering under reordering: delayed frames arrive late; the receiver
// buffers ahead and still delivers in sequence.
func TestInOrderUnderReordering(t *testing.T) {
	n, a, b, ma, mb := pairWithSPP(t)
	// Hold back every third data frame; MinSize leaves ACKs alone.
	fault.Attach(n.Sim, n.Link).
		Delay(&fault.PeriodicDelay{N: 3, Hold: 20 * sim.Millisecond, MinSize: 100})
	var got []uint32
	rx, err := mb.Open(40, func(task *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		got = append(got, seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 30
	for i := 0; i < msgs; i++ {
		at := sim.Time(i) * 2 * sim.Millisecond
		a.SpawnAt(at, "send", func(task *sim.Task) {
			_, _ = tx.Send(task, b.Addr(), 40, make([]byte, 300))
		})
	}
	n.Sim.RunUntil(60 * sim.Second)
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for i, s := range got {
		if s != uint32(i+1) {
			t.Fatalf("order violated: %v", got)
		}
	}
	if rx.Stats().OOOBuffered == 0 {
		t.Error("no out-of-order buffering; reordering injector ineffective")
	}
}

// The new protocol coexists with the built-in transports on the same hosts:
// UDP traffic and SPP traffic interleave without cross-talk.
func TestCoexistsWithUDP(t *testing.T) {
	n, a, b, ma, mb := pairWithSPP(t)
	var udpGot, sppGot []byte
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 40}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		udpGot = data
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Open(40, func(task *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		sppGot = data
	}); err != nil {
		t.Fatal(err)
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 40, []byte("via-udp"))
		_, _ = tx.Send(task, b.Addr(), 40, []byte("via-spp"))
	})
	n.Sim.RunUntil(5 * sim.Second)
	if !bytes.Equal(udpGot, []byte("via-udp")) || !bytes.Equal(sppGot, []byte("via-spp")) {
		t.Fatalf("cross-talk or loss: udp=%q spp=%q", udpGot, sppGot)
	}
}

// A send to a port nobody bound is retransmitted and finally abandoned.
func TestAbandonAfterMaxRexmits(t *testing.T) {
	n, a, b, ma, _ := pairWithSPP(t)
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_, _ = tx.Send(task, b.Addr(), 4999, []byte("void"))
	})
	n.Sim.RunUntil(sim.Time(seqpkt.MaxRexmits+2) * seqpkt.RexmitTimeout)
	if tx.Stats().Abandoned != 1 {
		t.Fatalf("Abandoned = %d", tx.Stats().Abandoned)
	}
	if tx.Pending() != 0 {
		t.Errorf("pending = %d after abandonment", tx.Pending())
	}
	if tx.Stats().Retransmits != seqpkt.MaxRexmits-1 {
		t.Errorf("Retransmits = %d, want %d", tx.Stats().Retransmits, seqpkt.MaxRexmits-1)
	}
}

func TestPortConflictAndClose(t *testing.T) {
	n, a, b, ma, mb := pairWithSPP(t)
	_ = n
	_ = a
	ep, err := mb.Open(40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Open(40, nil); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	ep.Close()
	ep.Close() // idempotent
	if _, err := mb.Open(40, nil); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	_ = ma
	_ = b
}

func TestOversizePayloadRejected(t *testing.T) {
	n, a, b, ma, _ := pairWithSPP(t)
	_ = n
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		if _, err := tx.Send(task, b.Addr(), 40, make([]byte, ma.MaxPayload()+1)); err != seqpkt.ErrTooBig {
			t.Errorf("err = %v, want ErrTooBig", err)
		}
	})
	n.Sim.Run()
}

// Regression: a head-of-line loss while the sender races far ahead overflows
// the receiver's out-of-order buffer. Frames the full buffer discards must
// NOT be acknowledged — an ACK makes the sender forget the packet, and a
// forgotten packet can never fill its sequence gap, deadlocking the stream
// at the gap forever (the -exp loss sweep first exposed this).
func TestFullOOOBufferDoesNotDeadlock(t *testing.T) {
	n, a, b, ma, mb := pairWithSPP(t)
	// Kill exactly the third data frame (ACKs are smaller than MinSize); at
	// a 5ms send cadence, far more than maxOOO messages pile up behind the
	// gap before the 500ms retransmit closes it.
	fault.Attach(n.Sim, n.Link).
		Lose(fault.MinSize{N: 300, M: &fault.NthOnly{K: 3}})
	var got []uint32
	rx, err := mb.Open(40, func(task *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
		got = append(got, seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 45
	for i := 0; i < msgs; i++ {
		a.SpawnAt(sim.Time(i+1)*5*sim.Millisecond, "send", func(task *sim.Task) {
			_, _ = tx.Send(task, b.Addr(), 40, make([]byte, 300))
		})
	}
	n.Sim.RunUntil(60 * sim.Second)
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d: stream deadlocked behind the gap", len(got), msgs)
	}
	for i, s := range got {
		if s != uint32(i+1) {
			t.Fatalf("order violated at %d: %v", i, got[:i+1])
		}
	}
	if tx.Stats().Abandoned != 0 {
		t.Errorf("%d sends abandoned", tx.Stats().Abandoned)
	}
	if rx.Stats().OOOBuffered == 0 {
		t.Error("out-of-order buffer never filled; test is vacuous")
	}
}

// Corruption on the wire is caught by SPP's own checksum.
func TestChecksumValidation(t *testing.T) {
	n, a, b, ma, mb := pairWithSPP(t)
	delivered := 0
	if _, err := mb.Open(40, func(*sim.Task, uint32, []byte, view.IP4, uint16) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	tx, err := ma.Open(41, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt only the first transmission of the data packet (ACKs are
	// shorter than MinSize).
	fault.Attach(n.Sim, n.Link).Corrupt(&fault.FlipByte{Offset: 50, MinSize: 51, Max: 1})
	a.Spawn("send", func(task *sim.Task) {
		_, _ = tx.Send(task, b.Addr(), 40, make([]byte, 100))
	})
	n.Sim.RunUntil(5 * sim.Second)
	if mb.Stats().BadChecksum != 1 {
		t.Errorf("BadChecksum = %d", mb.Stats().BadChecksum)
	}
	// The retransmission (unmangled) still delivers it.
	if delivered != 1 {
		t.Fatalf("delivered = %d; retransmission did not recover", delivered)
	}
}
