package seqpkt

import (
	"fmt"
	"sort"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// RecvFunc delivers one in-order datagram to the application.
type RecvFunc func(t *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16)

// pendingSend is an unacknowledged outgoing datagram.
type pendingSend struct {
	dst     view.IP4
	dstPort uint16
	seq     uint32
	payload []byte
	tries   int
	timer   sim.Timer
	// state is written only through Endpoint.setState (audit.go).
	state XferState
}

// peerKey identifies a remote endpoint.
type peerKey struct {
	addr view.IP4
	port uint16
}

// peerState tracks the receive side for one remote endpoint.
type peerState struct {
	nextSeq uint32
	ooo     map[uint32][]byte
}

// EndpointStats counts per-endpoint activity.
type EndpointStats struct {
	Sent        uint64
	Acked       uint64
	Retransmits uint64
	Abandoned   uint64
	Delivered   uint64
	Duplicates  uint64
	OOOBuffered uint64
}

// Endpoint is a bound SPP port: the capability to send and receive.
type Endpoint struct {
	mgr     *Manager
	port    uint16
	recv    RecvFunc
	binding *event.Binding

	nextSend uint32
	pending  map[uint32]*pendingSend
	peers    map[peerKey]*peerState
	stats    EndpointStats
	closed   bool
}

// Open binds port and installs the endpoint's guard/handler pair through the
// manager — applications never touch the dispatcher directly.
func (m *Manager) Open(port uint16, recv RecvFunc) (*Endpoint, error) {
	if _, used := m.ports[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	e := &Endpoint{
		mgr:     m,
		port:    port,
		recv:    recv,
		pending: make(map[uint32]*pendingSend),
		peers:   make(map[peerKey]*peerState),
	}
	guard := func(t *sim.Task, pkt *mbuf.Mbuf) bool {
		h, ok := parsePacket(pkt)
		return ok && h.dstPort == port
	}
	b, err := m.disp.Install(RecvEvent, guard,
		event.Handler{Name: fmt.Sprintf("seqpkt.endpoint:%d", port), Fn: e.deliver, Ephemeral: true}, 0)
	if err != nil {
		return nil, err
	}
	e.binding = b
	m.ports[port] = e
	return e, nil
}

// Port returns the bound port.
func (e *Endpoint) Port() uint16 { return e.port }

// Stats returns a snapshot of counters.
func (e *Endpoint) Stats() EndpointStats { return e.stats }

// Pending reports unacknowledged sends.
func (e *Endpoint) Pending() int { return len(e.pending) }

// Close releases the port and cancels outstanding retransmissions.
func (e *Endpoint) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.pending {
		p.timer.Stop()
		e.setState(p, XferCancelled, CauseClose)
	}
	e.mgr.disp.Uninstall(e.binding)
	delete(e.mgr.ports, e.port)
}

// Send transmits one reliable, ordered datagram to dst:dstPort. The source
// fields are the endpoint's identity (anti-spoofing by construction).
func (e *Endpoint) Send(t *sim.Task, dst view.IP4, dstPort uint16, payload []byte) (uint32, error) {
	if len(payload) > e.mgr.MaxPayload() {
		return 0, ErrTooBig
	}
	e.nextSend++
	seq := e.nextSend
	p := &pendingSend{
		dst:     dst,
		dstPort: dstPort,
		seq:     seq,
		payload: append([]byte(nil), payload...),
	}
	e.pending[seq] = p
	e.stats.Sent++
	e.mgr.stats.DataSent++
	e.setState(p, XferSent, CauseSend)
	if err := e.mgr.send(t, e.port, dst, dstPort, typeData, seq, p.payload); err != nil {
		return seq, err
	}
	e.armRexmit(p)
	return seq, nil
}

func (e *Endpoint) armRexmit(p *pendingSend) {
	p.timer = e.mgr.sim.After(RexmitTimeout, "seqpkt-rexmit", func() {
		p.timer = sim.Timer{}
		if e.closed {
			return
		}
		if _, still := e.pending[p.seq]; !still {
			return
		}
		e.mgr.cpu.Submit(sim.PrioKernel, "seqpkt-rexmit", func(task *sim.Task) {
			if e.closed {
				return
			}
			if _, still := e.pending[p.seq]; !still {
				return
			}
			p.tries++
			if p.tries >= MaxRexmits {
				delete(e.pending, p.seq)
				e.stats.Abandoned++
				e.mgr.stats.Abandoned++
				e.setState(p, XferAbandoned, CauseRetryCap)
				return
			}
			e.stats.Retransmits++
			e.mgr.stats.Retransmits++
			e.setState(p, XferSent, CauseRexmit)
			if err := e.mgr.send(task, e.port, p.dst, p.dstPort, typeData, p.seq, p.payload); err != nil {
				e.mgr.sim.Tracef(sim.TraceProto, "seqpkt: rexmit failed: %v", err)
			}
			e.armRexmit(p)
		})
	})
}

// deliver handles one validated SPP packet for this endpoint.
func (e *Endpoint) deliver(t *sim.Task, pkt *mbuf.Mbuf) {
	defer pkt.Free()
	h, ok := parsePacket(pkt)
	if !ok {
		return
	}
	switch h.typ {
	case typeAck:
		e.mgr.stats.AcksRcvd++
		if p, okp := e.pending[h.seq]; okp {
			p.timer.Stop()
			delete(e.pending, h.seq)
			e.stats.Acked++
			e.setState(p, XferAcked, CauseAck)
		}
	case typeData:
		e.mgr.stats.DataRcvd++
		key := peerKey{addr: h.src, port: h.srcPort}
		ps := e.peers[key]
		if ps == nil {
			ps = &peerState{nextSeq: 1, ooo: make(map[uint32][]byte)}
			e.peers[key] = ps
		}
		// Acknowledge only what is delivered, buffered, or already held: an
		// ACK tells the sender to forget the packet, so acknowledging a
		// packet the full out-of-order buffer just discarded would lose it
		// for good — the sender stops retransmitting, the sequence gap
		// never fills, and the stream deadlocks at the gap.
		ack := true
		switch {
		case h.seq < ps.nextSeq:
			e.stats.Duplicates++
			e.mgr.stats.Duplicates++
		case h.seq == ps.nextSeq:
			e.handoff(t, ps.nextSeq, h.payload, h.src, h.srcPort)
			ps.nextSeq++
			e.drainOOO(t, ps, h.src, h.srcPort)
		default:
			if _, dup := ps.ooo[h.seq]; dup {
				e.stats.Duplicates++
				e.mgr.stats.Duplicates++
			} else if len(ps.ooo) < maxOOO {
				ps.ooo[h.seq] = append([]byte(nil), h.payload...)
				e.stats.OOOBuffered++
			} else {
				ack = false // no room: leave it to a later retransmit
			}
		}
		if ack {
			e.mgr.stats.AcksSent++
			if err := e.mgr.send(t, e.port, h.src, h.srcPort, typeAck, h.seq, nil); err != nil {
				e.mgr.sim.Tracef(sim.TraceProto, "seqpkt: ack failed: %v", err)
			}
		}
	}
}

func (e *Endpoint) handoff(t *sim.Task, seq uint32, data []byte, src view.IP4, srcPort uint16) {
	e.stats.Delivered++
	if e.recv != nil {
		e.recv(t, seq, append([]byte(nil), data...), src, srcPort)
	}
}

func (e *Endpoint) drainOOO(t *sim.Task, ps *peerState, src view.IP4, srcPort uint16) {
	for {
		data, ok := ps.ooo[ps.nextSeq]
		if !ok {
			return
		}
		delete(ps.ooo, ps.nextSeq)
		e.handoff(t, ps.nextSeq, data, src, srcPort)
		ps.nextSeq++
	}
}

// BufferedSeqs lists out-of-order sequence numbers held for a peer (tests).
func (e *Endpoint) BufferedSeqs(src view.IP4, srcPort uint16) []uint32 {
	ps := e.peers[peerKey{addr: src, port: srcPort}]
	if ps == nil {
		return nil
	}
	out := make([]uint32, 0, len(ps.ooo))
	for s := range ps.ooo {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
