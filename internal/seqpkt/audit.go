package seqpkt

// The SPP half of the transition-audit plane, mirroring internal/tcp/audit.go:
// every lifecycle transition of every outstanding send goes through one
// setState choke point and out a pluggable TransitionSink. SPP's machine is a
// per-datagram transfer lifecycle rather than a per-connection RFC diagram —
// Unsent→Sent on first transmission, Sent→Sent on each retry, and a terminal
// edge to Acked (peer ACK), Abandoned (retry cap), or Cancelled (endpoint
// close) — but the audit contract is the same: typed events, precomputed
// strings, one branch when no sink is installed, and a legality table in
// internal/audit that screens every edge.

import (
	"plexus/internal/sim"
	"plexus/internal/view"
)

// XferState is the lifecycle state of one outstanding SPP send.
type XferState uint8

const (
	// XferUnsent: created but not yet transmitted (transient — every send
	// transmits in the same call that creates it).
	XferUnsent XferState = iota
	// XferSent: on the wire, retransmission timer armed.
	XferSent
	// XferAcked: the peer acknowledged it; terminal.
	XferAcked
	// XferAbandoned: MaxRexmits exhausted; terminal.
	XferAbandoned
	// XferCancelled: the endpoint closed with the send outstanding; terminal.
	XferCancelled
	// NumXferStates bounds table dimensions.
	NumXferStates
)

func (s XferState) String() string {
	switch s {
	case XferUnsent:
		return "Unsent"
	case XferSent:
		return "Sent"
	case XferAcked:
		return "Acked"
	case XferAbandoned:
		return "Abandoned"
	case XferCancelled:
		return "Cancelled"
	default:
		return "Invalid"
	}
}

// Cause constants. As with TCP's, checker rules match these exact strings,
// so emission sites use the constants, never ad-hoc literals.
const (
	// CauseSend: first transmission (Unsent→Sent).
	CauseSend = "send"
	// CauseRexmit: retry timer fired and the datagram was retransmitted
	// (the Sent→Sent self-loop).
	CauseRexmit = "rexmit"
	// CauseAck: the peer's ACK arrived (Sent→Acked).
	CauseAck = "ack"
	// CauseRetryCap: MaxRexmits exhausted (Sent→Abandoned).
	CauseRetryCap = "retry-cap"
	// CauseClose: endpoint closed with the send outstanding
	// (Sent→Cancelled).
	CauseClose = "close"
)

// Transition is one typed lifecycle event: which datagram (endpoint identity
// plus sequence number), the edge taken, why, and when in simulated time.
type Transition struct {
	At       sim.Time
	Host     string
	Port     uint16
	Peer     view.IP4
	PeerPort uint16
	Seq      uint32
	Old, New XferState
	Cause    string
}

// TransitionSink receives every send-lifecycle transition under one Manager.
// Implementations must not allocate per event in steady state and must not
// call back into the endpoint synchronously.
type TransitionSink interface {
	Transition(ev Transition)
}

// SetAuditSink installs (or clears, with nil) the manager's transition sink.
func (m *Manager) SetAuditSink(s TransitionSink) { m.audit = s }

// AuditSink returns the installed transition sink, or nil.
func (m *Manager) AuditSink() TransitionSink { return m.audit }

// setState performs a lifecycle transition and emits it. Every write of
// p.state after construction must go through here. Unlike TCP's setState it
// emits self-edges too: the Sent→Sent retry loop is exactly what a
// retransmission auditor watches.
func (e *Endpoint) setState(p *pendingSend, next XferState, cause string) {
	old := p.state
	p.state = next
	if s := e.mgr.audit; s != nil {
		s.Transition(Transition{
			At:       e.mgr.sim.Now(),
			Host:     e.mgr.hostName,
			Port:     e.port,
			Peer:     p.dst,
			PeerPort: p.dstPort,
			Seq:      p.seq,
			Old:      old,
			New:      next,
			Cause:    cause,
		})
	}
}
