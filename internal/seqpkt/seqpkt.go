// Package seqpkt implements SPP, a sequenced packet protocol — not an
// implementation of an existing protocol, but a NEW one, which is the
// paper's headline capability: "An application might also benefit from a
// protocol that is specific to the application itself, rather than just an
// implementation of an existing protocol" (§1.1), supporting new protocols
// in the sense of [CSZ92].
//
// SPP is a reliable, ordered datagram protocol: every packet carries a
// sequence number and is acknowledged; the sender retransmits on timeout;
// the receiver delivers datagrams to the application in order, buffering a
// small window of out-of-order arrivals. It rides directly on IP with its
// own protocol number, installed into the protocol graph at runtime exactly
// like the built-in transports: a guard on IP.PacketRecv demultiplexes on
// the protocol field, endpoint guards demultiplex ports, and the manager
// enforces the same anti-spoofing/anti-snooping policies.
package seqpkt

import (
	"errors"

	"plexus/internal/event"
	"plexus/internal/icmp"
	"plexus/internal/ip"
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// IPProto is SPP's protocol number (from the unassigned range of the era).
const IPProto = 77

// RecvEvent carries validated SPP packets (IP header intact) to endpoint
// guards.
const RecvEvent event.Name = "SeqPkt.PacketRecv"

// Wire format, after the IP header:
//
//	srcPort  uint16
//	dstPort  uint16
//	type     uint8   (1 = DATA, 2 = ACK)
//	_        uint8   (reserved)
//	seq      uint32
//	checksum uint16  (internet checksum incl. pseudo-header)
//	payload  ...
const hdrLen = 12

const (
	typeData = 1
	typeAck  = 2
)

// Protocol timing and limits.
const (
	// RexmitTimeout is the retransmission interval.
	RexmitTimeout = 500 * sim.Millisecond
	// MaxRexmits bounds retransmissions before the send is abandoned.
	MaxRexmits = 8
	// maxOOO bounds out-of-order buffering per peer.
	maxOOO = 32
	// procCost is the per-packet protocol processing charge.
	procCost = 9 * sim.Microsecond
)

// Errors.
var (
	// ErrPortInUse reports a bind conflict.
	ErrPortInUse = errors.New("seqpkt: port in use")
	// ErrTooBig reports a payload exceeding one datagram.
	ErrTooBig = errors.New("seqpkt: payload too large")
)

// Stats counts manager-level activity.
type Stats struct {
	DataSent    uint64
	DataRcvd    uint64
	AcksSent    uint64
	AcksRcvd    uint64
	Retransmits uint64
	Abandoned   uint64 // sends dropped after MaxRexmits
	Duplicates  uint64
	BadChecksum uint64
	BadHeader   uint64
	NoPort      uint64
}

// Manager is the SPP protocol manager for one host.
type Manager struct {
	sim   *sim.Sim
	ip    *ip.Layer
	disp  *event.Dispatcher
	raise event.Raiser
	// recvRef is the resolved RecvEvent handle for the per-packet path.
	recvRef *event.Ref
	cpu     *sim.CPU
	pool    *mbuf.Pool
	costs osmodel.Costs

	ports map[uint16]*Endpoint
	stats Stats
	// hostName is the precomputed audit/telemetry label (the CPU name).
	hostName string
	// audit receives every send-lifecycle transition (nil = off); the
	// legality checker lives in internal/audit.
	audit TransitionSink
}

// Config wires a Manager.
type Config struct {
	Sim   *sim.Sim
	IP    *ip.Layer
	Disp  *event.Dispatcher
	Raise event.Raiser
	CPU   *sim.CPU
	Pool  *mbuf.Pool
	Costs osmodel.Costs
	// RequireEphemeral propagates the stack's interrupt-mode policy.
	RequireEphemeral bool
}

// Install creates the manager and installs the protocol into the graph —
// the runtime-extension act itself. It declares SeqPkt.PacketRecv and hangs
// the manager's guard/handler on IP.PacketRecv next to UDP's and TCP's.
func Install(cfg Config) (*Manager, error) {
	m := &Manager{
		sim:      cfg.Sim,
		ip:       cfg.IP,
		disp:     cfg.Disp,
		raise:    cfg.Raise,
		cpu:      cfg.CPU,
		pool:     cfg.Pool,
		costs:    cfg.Costs,
		ports:    make(map[uint16]*Endpoint),
		hostName: cfg.CPU.Name(),
	}
	if err := cfg.Disp.Declare(RecvEvent, event.Options{RequireEphemeral: cfg.RequireEphemeral}); err != nil {
		return nil, err
	}
	m.recvRef = cfg.Disp.Ref(RecvEvent)
	_, err := cfg.Disp.Install(ip.RecvEvent, icmp.ProtoGuard(IPProto),
		event.Ephemeral("seqpkt.input", m.input), 0)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats { return m.stats }

// MaxPayload returns the largest payload one SPP datagram carries.
func (m *Manager) MaxPayload() int {
	return m.ip.MTU() - view.IPv4MinHdrLen - hdrLen
}

// input validates an SPP packet and raises SeqPkt.PacketRecv.
func (m *Manager) input(t *sim.Task, pkt *mbuf.Mbuf) {
	t.ChargeProf(sim.ProfProto, "spp", procCost)
	if hdr := pkt.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "spp", "recv", hdr.Len)
	}
	ipv, err := view.IPv4(pkt.Bytes())
	if err != nil {
		m.stats.BadHeader++
		pkt.Free()
		return
	}
	hl := ipv.HdrLen()
	plen := ipv.TotalLen() - hl
	if plen < hdrLen {
		m.stats.BadHeader++
		pkt.Free()
		return
	}
	t.ChargeBytesProf(sim.ProfChecksum, "spp", plen, m.costs.ChecksumPerByte)
	a := view.PseudoHeader(ipv.Src(), ipv.Dst(), IPProto, plen)
	if err := ip.ChecksumChain(&a, pkt, hl, plen); err != nil || a.Fold() != 0 {
		m.stats.BadChecksum++
		pkt.Free()
		return
	}
	if m.raise.RaiseRef(t, m.recvRef, pkt) == 0 {
		m.stats.NoPort++
		pkt.Free()
	}
}

// header is a parsed SPP packet.
type header struct {
	src     view.IP4
	srcPort uint16
	dstPort uint16
	typ     uint8
	seq     uint32
	payload []byte
}

func parsePacket(pkt *mbuf.Mbuf) (header, bool) {
	ipv, err := view.IPv4(pkt.Bytes())
	if err != nil {
		return header{}, false
	}
	hl := ipv.HdrLen()
	raw, err := pkt.CopyData(hl, ipv.TotalLen()-hl)
	if err != nil || len(raw) < hdrLen {
		return header{}, false
	}
	return header{
		src:     ipv.Src(),
		srcPort: uint16(raw[0])<<8 | uint16(raw[1]),
		dstPort: uint16(raw[2])<<8 | uint16(raw[3]),
		typ:     raw[4],
		seq:     uint32(raw[6])<<24 | uint32(raw[7])<<16 | uint32(raw[8])<<8 | uint32(raw[9]),
		payload: raw[hdrLen:],
	}, true
}

// send builds and transmits one SPP packet.
func (m *Manager) send(t *sim.Task, srcPort uint16, dst view.IP4, dstPort uint16, typ uint8, seq uint32, payload []byte) error {
	t.ChargeProf(sim.ProfProto, "spp", procCost)
	buf := make([]byte, hdrLen+len(payload))
	buf[0], buf[1] = byte(srcPort>>8), byte(srcPort)
	buf[2], buf[3] = byte(dstPort>>8), byte(dstPort)
	buf[4] = typ
	buf[6], buf[7], buf[8], buf[9] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
	copy(buf[hdrLen:], payload)
	t.ChargeBytesProf(sim.ProfChecksum, "spp", len(buf), m.costs.ChecksumPerByte)
	a := view.PseudoHeader(m.ip.Addr(), dst, IPProto, len(buf))
	a.Add(buf)
	c := a.Fold()
	buf[10], buf[11] = byte(c>>8), byte(c)
	pkt := m.pool.FromBytes(buf, 64)
	if s := t.Sim(); s.MetricsEnabled() {
		pkt.Hdr().Span = s.NextSpan()
		t.Hop(pkt.Hdr().Span, "spp", "send", pkt.Hdr().Len)
	}
	return m.ip.Send(t, view.IP4{}, dst, IPProto, pkt)
}
