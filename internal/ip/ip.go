// Package ip implements the IPv4 node of the Plexus protocol graph: header
// construction and validation, the Internet checksum over mbuf chains,
// fragmentation and reassembly, and a small host routing table (on-link
// destinations plus a default gateway).
//
// On receive, the layer installs a guard (EtherType == IPv4) and handler on
// Ethernet.PacketRecv; the handler validates the datagram and raises
// IP.PacketRecv with the IP header still intact, so that the next layer's
// guards can demultiplex on the protocol field and transport guards can see
// addresses — exactly the decision-tree structure of the paper's Figure 1.
package ip

import (
	"errors"
	"fmt"

	"plexus/internal/arp"
	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// RecvEvent carries validated IPv4 datagrams (header intact) up the graph.
const RecvEvent event.Name = "IP.PacketRecv"

// SendEvent is raised (when observed) for every outgoing datagram.
const SendEvent event.Name = "IP.PacketSend"

// DefaultTTL is the initial time-to-live for locally originated datagrams.
const DefaultTTL = 64

// ReassemblyTimeout discards incomplete fragment sets.
const ReassemblyTimeout = 30 * sim.Second

// Errors.
var (
	// ErrNoRoute reports a destination with no on-link route or gateway.
	ErrNoRoute = errors.New("ip: no route to host")
	// ErrTooBig reports a datagram that cannot be fragmented (DF set or
	// fragment would be invalid).
	ErrTooBig = errors.New("ip: datagram too large")
)

// Stats counts IP activity.
type Stats struct {
	Sent          uint64
	Received      uint64
	Delivered     uint64
	BadChecksum   uint64
	BadHeader     uint64
	NotForUs      uint64
	FragmentsSent uint64
	FragmentsRcvd uint64
	Reassembled   uint64
	ReasmTimeouts uint64
	TTLExpired    uint64
}

// Layer is the IPv4 protocol node for one interface.
type Layer struct {
	sim   *sim.Sim
	eth   *ether.Layer
	arp   *arp.ARP
	disp  *event.Dispatcher
	pool  *mbuf.Pool
	costs osmodel.Costs

	addr view.IP4
	mask view.IP4
	gw   view.IP4 // zero = no gateway

	ident uint16
	reasm map[reasmKey]*reasmBuf
	stats Stats

	// recvRef/sendRef are the layer's resolved event handles for the
	// per-packet path.
	recvRef *event.Ref
	sendRef *event.Ref

	// VerifyRxChecksum controls software verification of the header
	// checksum on receive (on by default; an ablation disables it).
	VerifyRxChecksum bool

	// forwardFn, when set, is offered datagrams addressed to other hosts
	// before they are dropped as NotForUs. Returning true consumes the
	// packet; returning false lets the normal drop accounting proceed.
	forwardFn func(t *sim.Task, m *mbuf.Mbuf) bool
}

// Config wires a Layer.
type Config struct {
	Sim   *sim.Sim
	Ether *ether.Layer
	ARP   *arp.ARP
	Disp  *event.Dispatcher
	Pool  *mbuf.Pool
	Costs osmodel.Costs
	Addr  view.IP4
	Mask  view.IP4
	// Gateway, if nonzero, routes off-link destinations.
	Gateway view.IP4
}

// New creates the IP node, declares IP.PacketRecv/IP.PacketSend, and installs
// the layer's guard/handler pair on Ethernet.PacketRecv.
func New(cfg Config) (*Layer, error) {
	l := &Layer{
		sim:              cfg.Sim,
		eth:              cfg.Ether,
		arp:              cfg.ARP,
		disp:             cfg.Disp,
		pool:             cfg.Pool,
		costs:            cfg.Costs,
		addr:             cfg.Addr,
		mask:             cfg.Mask,
		gw:               cfg.Gateway,
		reasm:            make(map[reasmKey]*reasmBuf),
		VerifyRxChecksum: true,
	}
	if err := cfg.Disp.Declare(RecvEvent, event.Options{}); err != nil {
		return nil, err
	}
	if err := cfg.Disp.Declare(SendEvent, event.Options{}); err != nil {
		return nil, err
	}
	l.recvRef = cfg.Disp.Ref(RecvEvent)
	l.sendRef = cfg.Disp.Ref(SendEvent)
	_, err := cfg.Ether.InstallRecv(
		ether.TypeGuard(view.EtherTypeIPv4),
		event.Ephemeral("ip.input", l.input),
		0,
	)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Addr returns the interface's IP address.
func (l *Layer) Addr() view.IP4 { return l.addr }

// Stats returns a snapshot of counters.
func (l *Layer) Stats() Stats { return l.stats }

// MTU returns the layer's maximum datagram size (link MTU).
func (l *Layer) MTU() int { return l.eth.MTU() }

// ChecksumChain folds bytes [off, off+n) of packet m into a.
func ChecksumChain(a *view.Accum, m *mbuf.Mbuf, off, n int) error {
	if off < 0 || n < 0 || off+n > m.PktLen() {
		return mbuf.ErrRange
	}
	for mm := m; mm != nil && n > 0; mm = mm.Next() {
		if off >= mm.Len() {
			off -= mm.Len()
			continue
		}
		b := mm.Bytes()[off:]
		if len(b) > n {
			b = b[:n]
		}
		a.Add(b)
		n -= len(b)
		off = 0
	}
	return nil
}

// SetForwardFn installs the host-forwarding hook: datagrams that arrive for
// another host are handed to fn instead of being dropped. A gateway host uses
// this to splice its interfaces together; fn receives the full datagram
// (header at offset 0, read-only) and reports whether it consumed it.
func (l *Layer) SetForwardFn(fn func(t *sim.Task, m *mbuf.Mbuf) bool) {
	l.forwardFn = fn
}

// OnLink reports whether dst is directly reachable through this interface.
func (l *Layer) OnLink(dst view.IP4) bool { return l.onLink(dst) }

// onLink reports whether dst is directly reachable.
func (l *Layer) onLink(dst view.IP4) bool {
	for i := range dst {
		if dst[i]&l.mask[i] != l.addr[i]&l.mask[i] {
			return false
		}
	}
	return true
}

// nextHop selects the neighbour to forward dst through.
func (l *Layer) nextHop(dst view.IP4) (view.IP4, error) {
	if dst.IsBroadcast() || dst.IsMulticast() || l.onLink(dst) {
		return dst, nil
	}
	if l.gw != (view.IP4{}) {
		return l.gw, nil
	}
	return view.IP4{}, fmt.Errorf("%w: %v", ErrNoRoute, dst)
}

// Send transmits payload m (consumed) as an IPv4 datagram from src to dst.
// A zero src is overwritten with the interface address (the anti-spoofing
// "overwrite" policy); transports that verify instead pass an explicit src
// which must equal the interface address.
func (l *Layer) Send(t *sim.Task, src, dst view.IP4, proto uint8, m *mbuf.Mbuf) error {
	t.ChargeProf(sim.ProfProto, "ip", l.costs.IPProc)
	if src == (view.IP4{}) {
		src = l.addr
	} else if src != l.addr {
		m.Free()
		return fmt.Errorf("ip: spoofed source %v (interface is %v)", src, l.addr)
	}
	nh, err := l.nextHop(dst)
	if err != nil {
		m.Free()
		return err
	}
	mtu := l.eth.MTU()
	l.ident++
	id := l.ident
	if view.IPv4MinHdrLen+m.PktLen() <= mtu {
		return l.sendFragment(t, src, dst, proto, id, 0, false, m, nh)
	}
	// Fragment: each piece carries a copy of the payload slice.
	l.stats.FragmentsSent++ // counts fragmented datagrams
	maxPayload := (mtu - view.IPv4MinHdrLen) &^ 7
	total := m.PktLen()
	for off := 0; off < total; off += maxPayload {
		n := maxPayload
		last := false
		if off+n >= total {
			n = total - off
			last = true
		}
		part, err := m.CopyData(off, n)
		if err != nil {
			m.Free()
			return err
		}
		t.ChargeBytes(n, l.costs.RAMPerByte)
		frag := l.pool.FromBytes(part, 64)
		if err := l.sendFragment(t, src, dst, proto, id, off, !last, frag, nh); err != nil {
			m.Free()
			return err
		}
	}
	m.Free()
	return nil
}

// sendFragment prepends and fills one IP header and hands the result to ARP.
func (l *Layer) sendFragment(t *sim.Task, src, dst view.IP4, proto uint8, id uint16, fragOff int, more bool, m *mbuf.Mbuf, nextHop view.IP4) error {
	dm, err := m.Prepend(view.IPv4MinHdrLen)
	if err != nil {
		m.Free()
		return fmt.Errorf("ip: %w", err)
	}
	b, err := dm.MutableBytes()
	if err != nil {
		dm.Free()
		return fmt.Errorf("ip: %w", err)
	}
	raw := b[:view.IPv4MinHdrLen]
	raw[0] = 0x45 // version 4, IHL 5
	v, err := view.IPv4(raw)
	if err != nil {
		dm.Free()
		return err
	}
	v.SetTOS(0)
	v.SetTotalLen(dm.PktLen())
	v.SetID(id)
	flags := uint16(0)
	if more {
		flags |= view.IPFlagMF
	}
	v.SetFlagsFrag(flags, fragOff)
	v.SetTTL(DefaultTTL)
	v.SetProto(proto)
	v.SetSrc(src)
	v.SetDst(dst)
	v.ComputeChecksum()
	t.ChargeBytesProf(sim.ProfChecksum, "ip", view.IPv4MinHdrLen, l.costs.ChecksumPerByte)
	l.stats.Sent++
	if hdr := dm.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "ip", "send", hdr.Len)
	}
	if l.sendRef.HandlerCount() > 0 {
		l.eth.RaiseRef(t, l.sendRef, dm)
	}
	return l.arp.Send(t, nextHop, view.EtherTypeIPv4, dm)
}

// Forward transmits an already-formed IPv4 datagram m (consumed; header at
// offset 0). The in-kernel packet forwarder uses this after rewriting
// addresses: the datagram re-enters the graph below IP, exactly as a
// redirected packet should.
func (l *Layer) Forward(t *sim.Task, m *mbuf.Mbuf) error {
	t.ChargeProf(sim.ProfProto, "ip", l.costs.IPProc)
	if hdr := m.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "ip", "forward", hdr.Len)
	}
	v, err := view.IPv4(m.Bytes())
	if err != nil {
		m.Free()
		return err
	}
	nh, err := l.nextHop(v.Dst())
	if err != nil {
		m.Free()
		return err
	}
	l.stats.Sent++
	return l.arp.Send(t, nh, view.EtherTypeIPv4, m)
}

// input is the guard-selected handler on Ethernet.PacketRecv: validate the
// datagram, reassemble fragments, and raise IP.PacketRecv.
func (l *Layer) input(t *sim.Task, m *mbuf.Mbuf) {
	t.ChargeProf(sim.ProfProto, "ip", l.costs.IPProc)
	l.stats.Received++
	m.Adj(view.EthernetHdrLen) // strip link header; window op, legal on read-only chains
	dm, err := m.Pullup(min(m.PktLen(), view.IPv4MinHdrLen))
	if err != nil {
		l.stats.BadHeader++
		m.Free()
		return
	}
	m = dm
	v, err := view.IPv4(m.Bytes())
	if err != nil {
		l.stats.BadHeader++
		m.Free()
		return
	}
	if v.TotalLen() > m.PktLen() || v.TotalLen() < v.HdrLen() {
		l.stats.BadHeader++
		m.Free()
		return
	}
	// Trim link-layer padding (minimum-size Ethernet frames).
	if m.PktLen() > v.TotalLen() {
		m.Adj(v.TotalLen() - m.PktLen())
	}
	if l.VerifyRxChecksum {
		t.ChargeBytesProf(sim.ProfChecksum, "ip", v.HdrLen(), l.costs.ChecksumPerByte)
		if !v.VerifyChecksum() {
			l.stats.BadChecksum++
			m.Free()
			return
		}
	}
	dst := v.Dst()
	if dst != l.addr && !dst.IsBroadcast() && !dst.IsMulticast() {
		if l.forwardFn != nil && l.forwardFn(t, m) {
			return
		}
		l.stats.NotForUs++
		m.Free()
		return
	}
	if v.MoreFragments() || v.FragOffset() > 0 {
		l.stats.FragmentsRcvd++
		m = l.reassemble(t, v, m)
		if m == nil {
			return // incomplete
		}
	}
	l.stats.Delivered++
	if hdr := m.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "ip", "recv", hdr.Len)
	}
	if l.eth.RaiseRef(t, l.recvRef, m) == 0 {
		l.sim.Tracef(sim.TraceProto, "ip: datagram proto=%d with no handler", v.Proto())
		m.Free()
	}
}
