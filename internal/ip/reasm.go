package ip

import (
	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// reasmKey identifies a fragment set (RFC 791: src, dst, proto, id).
type reasmKey struct {
	src   view.IP4
	dst   view.IP4
	proto uint8
	id    uint16
}

// reasmBuf accumulates one datagram's fragments.
type reasmBuf struct {
	data     []byte
	have     []bool // per-8-byte-unit arrival map
	totalLen int    // payload length, known once the last fragment arrives
	timer    sim.Timer
}

// reassemble incorporates the validated fragment m (consumed) and returns the
// complete datagram as a fresh packet — rebuilt with a synthetic header whose
// fragment fields are cleared — or nil while fragments are still missing.
func (l *Layer) reassemble(t *sim.Task, v view.IPv4View, m *mbuf.Mbuf) *mbuf.Mbuf {
	key := reasmKey{src: v.Src(), dst: v.Dst(), proto: v.Proto(), id: v.ID()}
	rb, ok := l.reasm[key]
	if !ok {
		rb = &reasmBuf{}
		l.reasm[key] = rb
		rb.timer = l.sim.After(ReassemblyTimeout, "ip-reasm-timeout", func() {
			if cur, ok := l.reasm[key]; ok && cur == rb {
				delete(l.reasm, key)
				l.stats.ReasmTimeouts++
			}
		})
	}
	fragOff := v.FragOffset()
	payloadLen := v.TotalLen() - v.HdrLen()
	payload, err := m.CopyData(v.HdrLen(), payloadLen)
	m.Free()
	if err != nil {
		return nil
	}
	t.ChargeBytes(payloadLen, l.costs.RAMPerByte)

	end := fragOff + payloadLen
	if end > len(rb.data) {
		nd := make([]byte, end)
		copy(nd, rb.data)
		rb.data = nd
		nh := make([]bool, (end+7)/8)
		copy(nh, rb.have)
		rb.have = nh
	}
	copy(rb.data[fragOff:], payload)
	for u := fragOff / 8; u < (end+7)/8; u++ {
		rb.have[u] = true
	}
	if !v.MoreFragments() {
		rb.totalLen = end
	}
	if rb.totalLen == 0 || len(rb.data) < rb.totalLen {
		return nil
	}
	for u := 0; u < (rb.totalLen+7)/8; u++ {
		if !rb.have[u] {
			return nil
		}
	}
	// Complete: cancel the timer and rebuild a whole datagram.
	rb.timer.Stop()
	delete(l.reasm, key)
	l.stats.Reassembled++
	whole := l.pool.FromBytes(rb.data[:rb.totalLen], view.IPv4MinHdrLen+16)
	dm, err := whole.Prepend(view.IPv4MinHdrLen)
	if err != nil {
		whole.Free()
		return nil
	}
	b, err := dm.MutableBytes()
	if err != nil {
		dm.Free()
		return nil
	}
	b[0] = 0x45
	nv, err := view.IPv4(b[:view.IPv4MinHdrLen])
	if err != nil {
		dm.Free()
		return nil
	}
	nv.SetTotalLen(dm.PktLen())
	nv.SetID(key.id)
	nv.SetFlagsFrag(0, 0)
	nv.SetTTL(v.TTL())
	nv.SetProto(key.proto)
	nv.SetSrc(key.src)
	nv.SetDst(key.dst)
	nv.ComputeChecksum()
	dm.SetReadOnly()
	return dm
}
