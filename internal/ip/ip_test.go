package ip_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"plexus/internal/ip"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func spin(name string) plexus.HostSpec {
	return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

func pair(t *testing.T) (*plexus.Network, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	n, a, b, err := plexus.TwoHosts(1, netdev.EthernetModel(), spin("a"), spin("b"))
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

// Property: ChecksumChain over any chain chunking equals the flat checksum.
func TestQuickChecksumChainMatchesFlat(t *testing.T) {
	f := func(data []byte, offRaw, nRaw uint16, headroom uint8) bool {
		pool := mbuf.NewPool()
		m := pool.FromBytes(data, int(headroom)%64)
		defer m.Free()
		if len(data) == 0 {
			return true
		}
		off := int(offRaw) % len(data)
		n := int(nRaw) % (len(data) - off + 1)
		var a view.Accum
		if err := ip.ChecksumChain(&a, m, off, n); err != nil {
			return false
		}
		want := view.Checksum(data[off : off+n])
		return a.Fold() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestChecksumChainRangeErrors(t *testing.T) {
	pool := mbuf.NewPool()
	m := pool.FromBytes(make([]byte, 100), 0)
	defer m.Free()
	var a view.Accum
	if err := ip.ChecksumChain(&a, m, -1, 10); !errors.Is(err, mbuf.ErrRange) {
		t.Error("negative offset accepted")
	}
	if err := ip.ChecksumChain(&a, m, 0, 101); !errors.Is(err, mbuf.ErrRange) {
		t.Error("overlong range accepted")
	}
}

func TestNoRouteOffSubnet(t *testing.T) {
	n, a, _ := pair(t)
	var sendErr error
	a.Spawn("send", func(task *sim.Task) {
		m := a.Host.Pool.FromBytes([]byte("x"), 64)
		sendErr = a.IP.Send(task, view.IP4{}, view.IP4{192, 168, 99, 1}, view.IPProtoUDP, m)
	})
	n.Sim.Run()
	if !errors.Is(sendErr, ip.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", sendErr)
	}
}

func TestSpoofedSourceRejected(t *testing.T) {
	n, a, b := pair(t)
	var sendErr error
	a.Spawn("send", func(task *sim.Task) {
		m := a.Host.Pool.FromBytes([]byte("x"), 64)
		// Claim to be host b.
		sendErr = a.IP.Send(task, b.Addr(), b.Addr(), view.IPProtoUDP, m)
	})
	n.Sim.Run()
	if sendErr == nil {
		t.Fatal("spoofed source accepted by IP layer")
	}
}

// Craft a valid frame addressed (at the link layer) to B but (at the IP
// layer) to a third party: B must drop it as NotForUs, not deliver it.
func TestNotForUsDropped(t *testing.T) {
	n, a, b := pair(t)
	seen := 0
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(*sim.Task, []byte, view.IP4, uint16) {
		seen++
	}); err != nil {
		t.Fatal(err)
	}
	a.Spawn("craft", func(task *sim.Task) {
		// Build IP(dst=10.0.0.77)/UDP(dport 9) by hand and ship it to
		// B's MAC.
		payload := []byte("snoop")
		dgram := make([]byte, 20+8+len(payload))
		dgram[0] = 0x45
		ipv, _ := view.IPv4(dgram)
		ipv.SetTotalLen(len(dgram))
		ipv.SetTTL(64)
		ipv.SetProto(view.IPProtoUDP)
		ipv.SetSrc(a.Addr())
		ipv.SetDst(view.IP4{10, 0, 0, 77})
		ipv.ComputeChecksum()
		uv, _ := view.UDP(dgram[20:])
		uv.SetSrcPort(1234)
		uv.SetDstPort(9)
		uv.SetLength(8 + len(payload))
		copy(dgram[28:], payload)
		m := a.Host.Pool.FromBytes(dgram, 32)
		if err := a.Ether.Send(task, b.NIC.MAC(), view.EtherTypeIPv4, m); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if seen != 0 {
		t.Fatal("misaddressed datagram delivered")
	}
	if b.IP.Stats().NotForUs != 1 {
		t.Errorf("NotForUs = %d", b.IP.Stats().NotForUs)
	}
}

// Corrupt the IP header in flight: the receiver must drop on checksum.
func TestHeaderChecksumValidation(t *testing.T) {
	n, a, b := pair(t)
	seen := 0
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(*sim.Task, []byte, view.IP4, uint16) {
		seen++
	}); err != nil {
		t.Fatal(err)
	}
	n.Link.SetMangleFn(func(wire []byte) {
		if len(wire) > 22 {
			wire[22] ^= 0xff // flip a TTL bit in the IP header
		}
	})
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, b.Addr(), 9, []byte("payload"))
	})
	n.Sim.Run()
	if seen != 0 {
		t.Fatal("corrupted datagram delivered")
	}
	if b.IP.Stats().BadChecksum != 1 {
		t.Errorf("BadChecksum = %d", b.IP.Stats().BadChecksum)
	}
}

// Fragment counts: a datagram of N bytes over a 1500 MTU yields
// ceil(N / 1480-rounded-to-8) fragments, observed at the receiver.
func TestFragmentCounts(t *testing.T) {
	for _, size := range []int{1600, 2960, 5000} {
		n, a, b := pair(t)
		var got []byte
		if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			got = data
		}); err != nil {
			t.Fatal(err)
		}
		capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i)
		}
		a.Spawn("send", func(task *sim.Task) { _ = capp.Send(task, b.Addr(), 9, msg) })
		n.Sim.Run()
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: corrupted", size)
		}
		maxPayload := (1500 - 20) &^ 7 // 1480
		want := (size + 8 + maxPayload - 1) / maxPayload
		if got := int(b.IP.Stats().FragmentsRcvd); got != want {
			t.Errorf("size %d: %d fragments, want %d", size, got, want)
		}
	}
}

// Drop one fragment: the datagram must never be delivered, and the
// reassembly buffer must time out.
func TestReassemblyTimeout(t *testing.T) {
	n, a, b := pair(t)
	seen := 0
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(*sim.Task, []byte, view.IP4, uint16) {
		seen++
	}); err != nil {
		t.Fatal(err)
	}
	frames := 0
	n.Link.SetDropFn(func(wire []byte) bool {
		frames++
		return frames == 2 // lose the second fragment
	})
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) { _ = capp.Send(task, b.Addr(), 9, make([]byte, 4000)) })
	n.Sim.RunUntil(ip.ReassemblyTimeout + 5*sim.Second)
	if seen != 0 {
		t.Fatal("incomplete datagram delivered")
	}
	if b.IP.Stats().ReasmTimeouts != 1 {
		t.Errorf("ReasmTimeouts = %d", b.IP.Stats().ReasmTimeouts)
	}
}

// Fragments arriving out of order still reassemble.
func TestReassemblyOutOfOrder(t *testing.T) {
	n, a, b := pair(t)
	var got []byte
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		got = data
	}); err != nil {
		t.Fatal(err)
	}
	// Delay the first fragment by re-sending it after the rest: simulate
	// by dropping fragment 1 on its first pass and re-transmitting the
	// datagram; the second copy's fragment 1 completes the first set.
	frames := 0
	n.Link.SetDropFn(func(wire []byte) bool {
		frames++
		return frames == 1
	})
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 3000)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	a.Spawn("send", func(task *sim.Task) { _ = capp.Send(task, b.Addr(), 9, msg) })
	a.SpawnAt(10*sim.Millisecond, "resend", func(task *sim.Task) { _ = capp.Send(task, b.Addr(), 9, msg) })
	n.Sim.RunUntil(60 * sim.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("out-of-order reassembly failed: got %d bytes", len(got))
	}
}

func TestIPStatsAndAccessors(t *testing.T) {
	n, a, b := pair(t)
	if a.IP.Addr() != (view.IP4{10, 0, 0, 1}) {
		t.Error("Addr wrong")
	}
	if a.IP.MTU() != 1500 {
		t.Error("MTU wrong")
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, nil); err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) { _ = capp.Send(task, b.Addr(), 9, []byte("x")) })
	n.Sim.Run()
	if a.IP.Stats().Sent == 0 {
		t.Error("Sent not counted")
	}
	if b.IP.Stats().Delivered == 0 {
		t.Error("Delivered not counted")
	}
}

// Broadcast datagrams are accepted by every host on the segment.
func TestBroadcastDelivery(t *testing.T) {
	n, err := plexus.NewNetwork(1, netdev.EthernetModel(), []plexus.HostSpec{spin("a"), spin("b"), spin("c")})
	if err != nil {
		t.Fatal(err)
	}
	n.PrimeARP()
	a := n.Hosts[0]
	got := 0
	for _, h := range n.Hosts[1:] {
		if _, err := h.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(*sim.Task, []byte, view.IP4, uint16) {
			got++
		}); err != nil {
			t.Fatal(err)
		}
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, view.IP4{255, 255, 255, 255}, 9, []byte("everyone"))
	})
	n.Sim.Run()
	if got != 2 {
		t.Fatalf("broadcast reached %d of 2 hosts", got)
	}
}
