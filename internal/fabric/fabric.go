// Package fabric is the programmable forwarding plane: match-action
// pipelines installable on switch ports and on the gateway's forwarding
// hook. It generalizes internal/filter's packet filters (the paper's §3.5
// guards) into the match half of a P4-style match-action table: a Pipeline
// is an ordered list of Tables, each an ordered list of Rules pairing a
// filter-compiled match with a typed Action; the first matching rule in a
// table fires its action, whose verdict steers evaluation onward.
//
// Fabric programs are extensions in the paper's sense and are sandboxed the
// same way endpoint extensions are (PR 3): an action that panics is
// recovered and counted against its rule, and repeat offenders are
// quarantined by the same event.QuarantinePolicy — a fully quarantined
// pipeline degenerates to plain forwarding. Execution cost is deterministic
// simulated time: on the gateway (which has a CPU) it is charged through
// ChargeProf under ProfFabric so fabric work shows up in the flight
// recorder; on the CPU-less switch it is folded into forwarding latency.
package fabric

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/filter"
	"plexus/internal/sim"
)

// Verdict is an action's decision about the packet.
type Verdict uint8

const (
	// Continue keeps scanning the current table's remaining rules.
	Continue Verdict = iota
	// NextTable ends the current table and proceeds to the next one — the
	// "permit" of an ACL: matched, allowed, but later services still run.
	NextTable
	// Accept ends the whole pipeline; the packet is forwarded as-is.
	Accept
	// Drop ends the whole pipeline; the packet is discarded.
	Drop
)

func (v Verdict) String() string {
	switch v {
	case Continue:
		return "continue"
	case NextTable:
		return "next-table"
	case Accept:
		return "accept"
	case Drop:
		return "drop"
	}
	return "unknown"
}

// Default per-evaluation costs — TCAM-less software matching on the modelled
// forwarding CPU.
const (
	DefaultMatchCost  = 120 * sim.Nanosecond
	DefaultActionCost = 300 * sim.Nanosecond
)

// Packet is the mutable view of one packet traversing a pipeline. Buf holds
// the full packet in the pipeline's base framing. On switch ports the
// underlying frame is shared with every other attachment on the wire, so
// Writable is false and rewrite actions must not touch it — Mutable panics,
// which the sandbox converts into a rule fault.
type Packet struct {
	Buf      []byte
	Base     filter.Base
	Writable bool
	// Path is the ECMP path index selected for this packet (default 0); the
	// gateway folds it into egress selection among parallel candidate links.
	Path int
	// OutPort, when >= 0, steers a switch frame out a specific port,
	// overriding the MAC-table lookup. Ignored on the gateway.
	OutPort int
	// Cost accumulates pipeline execution time when no task is present (the
	// CPU-less switch); the caller folds it into forwarding latency.
	Cost sim.Time
}

// Mutable returns the packet bytes for in-place rewriting, panicking when
// the packet is read-only (a shared switch frame). The panic is deliberate:
// it surfaces a misdeployed rewrite action as a sandbox fault instead of
// corrupting frames other ports are still delivering.
func (p *Packet) Mutable() []byte {
	if !p.Writable {
		panic("fabric: rewrite of read-only packet")
	}
	return p.Buf
}

// Action is the typed half of a match-action rule.
type Action interface {
	// Name labels the action in stats and traces.
	Name() string
	// Apply processes the packet (t may be nil on the CPU-less switch path)
	// and returns the verdict steering pipeline evaluation.
	Apply(t *sim.Task, p *Packet) Verdict
}

// ActionFunc adapts a function to Action.
type ActionFunc struct {
	Label string
	Fn    func(t *sim.Task, p *Packet) Verdict
}

// Name implements Action.
func (a ActionFunc) Name() string { return a.Label }

// Apply implements Action.
func (a ActionFunc) Apply(t *sim.Task, p *Packet) Verdict { return a.Fn(t, p) }

// VerdictAction is a constant-verdict action (permit, deny, accept).
type VerdictAction struct {
	Label string
	V     Verdict
}

// Name implements Action.
func (a VerdictAction) Name() string { return a.Label }

// Apply implements Action.
func (a VerdictAction) Apply(*sim.Task, *Packet) Verdict { return a.V }

// Rule pairs a compiled match with an action. A nil match matches every
// packet (the table's default entry).
type Rule struct {
	name   string
	match  *filter.Filter
	action Action

	hits        uint64
	faults      uint64
	quarantined bool
}

// RuleStats is a snapshot of one rule's counters.
type RuleStats struct {
	Table       string
	Name        string
	Hits        uint64
	Faults      uint64
	Quarantined bool
}

// NewRule builds a rule from filter source (empty = match-all) and an action.
func NewRule(name, match string, base filter.Base, action Action) (*Rule, error) {
	r := &Rule{name: name, action: action}
	if match != "" {
		f, err := filter.Parse(match, base)
		if err != nil {
			return nil, fmt.Errorf("fabric: rule %s: %w", name, err)
		}
		r.match = f
	}
	return r, nil
}

// Name returns the rule's label.
func (r *Rule) Name() string { return r.name }

// Hits returns the rule's match count.
func (r *Rule) Hits() uint64 { return r.hits }

// Faults returns the rule's recovered-panic count.
func (r *Rule) Faults() uint64 { return r.faults }

// Quarantined reports whether the rule has been ejected by the policy.
func (r *Rule) Quarantined() bool { return r.quarantined }

// Table is an ordered rule list; the first matching live rule fires.
type Table struct {
	name  string
	rules []*Rule
}

// NewTable creates an empty named table.
func NewTable(name string) *Table { return &Table{name: name} }

// Name returns the table's label.
func (tb *Table) Name() string { return tb.name }

// Add appends a rule.
func (tb *Table) Add(r *Rule) *Table {
	tb.rules = append(tb.rules, r)
	return tb
}

// Rules returns the table's rules in evaluation order.
func (tb *Table) Rules() []*Rule { return tb.rules }

// PipelineStats counts pipeline-level activity.
type PipelineStats struct {
	Packets     uint64 // packets run through the pipeline
	Drops       uint64 // packets dropped by a rule verdict
	Faults      uint64 // recovered action panics across all rules
	Quarantined uint64 // rules ejected by the policy
}

// Pipeline is an ordered list of tables bound to a base framing and owner
// name (the ChargeProf attribution label).
type Pipeline struct {
	name   string
	owner  string
	base   filter.Base
	tables []*Table
	policy event.QuarantinePolicy
	stats  PipelineStats
	live   int // rules not yet quarantined

	// MatchCost is charged per rule evaluated; ActionCost per action fired.
	MatchCost  sim.Time
	ActionCost sim.Time

	// scratch is the switch-path packet context, reused per frame so the
	// per-frame fabric path allocates nothing.
	scratch Packet
}

// NewPipeline creates an empty pipeline. base is the framing packets arrive
// in (BaseEthernet on switch ports, BaseIP on the gateway hook); policy
// configures rule quarantine (zero value = count faults but never eject).
func NewPipeline(name string, base filter.Base, policy event.QuarantinePolicy) *Pipeline {
	return &Pipeline{
		name:       name,
		owner:      "fabric:" + name,
		base:       base,
		policy:     policy,
		MatchCost:  DefaultMatchCost,
		ActionCost: DefaultActionCost,
	}
}

// Name returns the pipeline's label.
func (pl *Pipeline) Name() string { return pl.name }

// Base returns the framing the pipeline matches against.
func (pl *Pipeline) Base() filter.Base { return pl.base }

// Add appends a table.
func (pl *Pipeline) Add(tb *Table) *Pipeline {
	pl.tables = append(pl.tables, tb)
	pl.live += len(tb.rules)
	return pl
}

// Stats returns a snapshot of pipeline counters.
func (pl *Pipeline) Stats() PipelineStats { return pl.stats }

// Quarantined reports whether every rule has been ejected — the pipeline is
// inert and traffic sees plain forwarding.
func (pl *Pipeline) Quarantined() bool { return pl.live == 0 && pl.stats.Quarantined > 0 }

// Snapshot returns per-rule counters across all tables (allocates; not for
// the per-packet path).
func (pl *Pipeline) Snapshot() []RuleStats {
	var out []RuleStats
	for _, tb := range pl.tables {
		for _, r := range tb.rules {
			out = append(out, RuleStats{
				Table:       tb.name,
				Name:        r.name,
				Hits:        r.hits,
				Faults:      r.faults,
				Quarantined: r.quarantined,
			})
		}
	}
	return out
}

// EachRule calls fn for every rule in table order — the allocation-free
// traversal the telemetry probe samples hit counters through.
func (pl *Pipeline) EachRule(fn func(table, rule string, hits, faults uint64, quarantined bool)) {
	for _, tb := range pl.tables {
		for _, r := range tb.rules {
			fn(tb.name, r.name, r.hits, r.faults, r.quarantined)
		}
	}
}

// Exec runs the pipeline over p and returns the final verdict (Accept when
// no rule decided otherwise). When t is non-nil the execution cost is
// charged through ChargeProf under ProfFabric; otherwise it accumulates in
// p.Cost for the caller to fold into forwarding latency.
func (pl *Pipeline) Exec(t *sim.Task, p *Packet) Verdict {
	pl.stats.Packets++
	cost := sim.Time(0)
	verdict := Accept
scan:
	for _, tb := range pl.tables {
		for _, r := range tb.rules {
			if r.quarantined {
				continue
			}
			cost += pl.MatchCost
			if r.match != nil && !r.match.MatchBytes(p.Buf) {
				continue
			}
			r.hits++
			cost += pl.ActionCost
			v, ok := pl.invoke(t, r, p)
			if !ok {
				continue // faulted action: skip, as a crashed handler would be
			}
			switch v {
			case Continue:
			case NextTable:
				continue scan
			case Accept:
				verdict = Accept
				break scan
			case Drop:
				verdict = Drop
				break scan
			}
		}
	}
	if verdict == Drop {
		pl.stats.Drops++
	}
	if t != nil {
		t.ChargeProf(sim.ProfFabric, pl.owner, cost)
	} else {
		p.Cost += cost
	}
	return verdict
}

// invoke runs one action under the sandbox: a panic is recovered, counted
// against the rule, and — past the policy threshold — quarantines it,
// exactly as the dispatcher contains a crashing handler.
func (pl *Pipeline) invoke(t *sim.Task, r *Rule, p *Packet) (v Verdict, ok bool) {
	defer func() {
		if e := recover(); e != nil {
			ok = false
			r.faults++
			pl.stats.Faults++
			if !r.quarantined && pl.policy.Threshold > 0 && r.faults >= pl.policy.Threshold {
				r.quarantined = true
				pl.stats.Quarantined++
				pl.live--
			}
		}
	}()
	return r.action.Apply(t, p), true
}

// ProcessFrame implements netdev's switch-port pipeline hook: frames are
// shared read-only, the verdict reduces to drop/steer, and the execution
// cost is returned for the switch to fold into its forwarding latency.
func (pl *Pipeline) ProcessFrame(b []byte) (drop bool, steer int, cost sim.Time) {
	pl.scratch = Packet{Buf: b, Base: pl.base, OutPort: -1}
	v := pl.Exec(nil, &pl.scratch)
	return v == Drop, pl.scratch.OutPort, pl.scratch.Cost
}
