package fabric

import (
	"plexus/internal/filter"
	"plexus/internal/sim"
)

// ECMP: equal-cost multipath selection by 5-tuple flow hashing. The rule
// stamps a path index on the packet; the gateway folds it into egress
// selection among parallel candidate links (and a switch pipeline may use
// the steer variant to pin frames to a port outright). Hashing the full
// tuple keeps each flow on one path — no reordering — while spreading flows
// across all of them.

// ECMP is the path-selection state, exposing per-path counters.
type ECMP struct {
	paths int
	hits  []uint64
}

// NewECMP creates the service and its rule: packets matching the filter
// source (empty = all) have Path set to hash(5-tuple) mod paths.
func NewECMP(name, match string, base filter.Base, paths int) (*ECMP, *Rule, error) {
	if paths < 1 {
		paths = 1
	}
	e := &ECMP{paths: paths, hits: make([]uint64, paths)}
	r, err := NewRule(name, match, base, ActionFunc{Label: name, Fn: e.selectPath})
	if err != nil {
		return nil, nil, err
	}
	return e, r, nil
}

// Paths returns the configured path count.
func (e *ECMP) Paths() int { return e.paths }

// Hits returns packets steered to each path.
func (e *ECMP) Hits() []uint64 { return e.hits }

func (e *ECMP) selectPath(t *sim.Task, p *Packet) Verdict {
	ft, ok := ExtractTuple(p.Buf, p.Base)
	if !ok {
		return NextTable
	}
	p.Path = int(ft.Hash() % uint32(e.paths))
	e.hits[p.Path]++
	return NextTable
}

// NewSteerRule builds a switch-side rule that forces matching frames out a
// specific port, overriding the MAC-table lookup.
func NewSteerRule(name, match string, base filter.Base, port int) (*Rule, error) {
	return NewRule(name, match, base, ActionFunc{
		Label: name,
		Fn: func(t *sim.Task, p *Packet) Verdict {
			p.OutPort = port
			return Accept
		},
	})
}
