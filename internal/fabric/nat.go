package fabric

import (
	"fmt"

	"plexus/internal/filter"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Source NAT: flows originating inside the configured CIDR are rewritten to
// the NAT address with a deterministically allocated mapped port; traffic
// arriving for the NAT address is translated back through the same table.
// Port mapping is strictly sequential from PortBase, so a replayed run
// builds a byte-identical translation table.

// NATDefaults.
const (
	DefaultNATPortBase   = 20000
	DefaultNATMaxEntries = 4096
)

// NATConfig configures a source-NAT service.
type NATConfig struct {
	// Addr is the translated source address. It must not be any interface
	// address of the gateway: packets for it have to reach the forwarding
	// hook (local delivery would swallow them before translation).
	Addr view.IP4
	// InsideCIDR selects outbound traffic to translate, e.g. "10.0.1.0/24".
	InsideCIDR string
	// PortBase is the first mapped port (DefaultNATPortBase when zero).
	PortBase uint16
	// MaxEntries bounds the translation table (DefaultNATMaxEntries when
	// zero); flows beyond the bound are dropped and counted.
	MaxEntries int
}

type natKey struct {
	addr  uint32
	port  uint16
	proto uint8
}

// NAT is the translation state shared by the outbound and inbound rules.
type NAT struct {
	base     filter.Base
	addr     view.IP4
	portBase uint16
	max      int

	fwd map[natKey]int // original flow -> slot
	rev []natKey       // slot -> original flow; mapped port = portBase + slot

	exhausted uint64 // flows dropped because the table was full
	unmatched uint64 // inbound packets with no translation entry
}

// NewNAT creates the service and its match-action table. The table holds an
// inbound rule (dst == Addr: reverse translation) and an outbound rule
// (src in InsideCIDR: allocate/lookup a mapping and rewrite).
func NewNAT(name string, base filter.Base, cfg NATConfig) (*NAT, *Table, error) {
	if cfg.PortBase == 0 {
		cfg.PortBase = DefaultNATPortBase
	}
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultNATMaxEntries
	}
	n := &NAT{
		base:     base,
		addr:     cfg.Addr,
		portBase: cfg.PortBase,
		max:      cfg.MaxEntries,
		fwd:      make(map[natKey]int),
	}
	tb := NewTable(name)
	in, err := NewRule("nat-in", fmt.Sprintf("ip.dst == %d.%d.%d.%d",
		cfg.Addr[0], cfg.Addr[1], cfg.Addr[2], cfg.Addr[3]), base,
		ActionFunc{Label: "nat-in", Fn: n.inbound})
	if err != nil {
		return nil, nil, err
	}
	out, err := NewRule("nat-out", "ip.src in "+cfg.InsideCIDR, base,
		ActionFunc{Label: "nat-out", Fn: n.outbound})
	if err != nil {
		return nil, nil, err
	}
	tb.Add(in).Add(out)
	return n, tb, nil
}

// Occupancy reports live translation entries.
func (n *NAT) Occupancy() int { return len(n.rev) }

// Cap returns the table's maximum entry count.
func (n *NAT) Cap() int { return n.max }

// Exhausted reports flows dropped because the table was full.
func (n *NAT) Exhausted() uint64 { return n.exhausted }

// Unmatched reports inbound packets for the NAT address with no entry.
func (n *NAT) Unmatched() uint64 { return n.unmatched }

// outbound translates a flow leaving the inside network.
func (n *NAT) outbound(t *sim.Task, p *Packet) Verdict {
	ft, ok := ExtractTuple(p.Buf, p.Base)
	if !ok || ft.Proto != view.IPProtoUDP && ft.Proto != view.IPProtoTCP {
		return NextTable // not translatable; pass through
	}
	k := natKey{addr: ft.Src, port: ft.SPort, proto: ft.Proto}
	slot, ok := n.fwd[k]
	if !ok {
		if len(n.rev) >= n.max {
			n.exhausted++
			return Drop
		}
		slot = len(n.rev)
		n.rev = append(n.rev, k)
		n.fwd[k] = slot
	}
	RewriteAddrPort(p, true, n.addr, n.portBase+uint16(slot), true)
	return NextTable
}

// inbound reverses the translation for traffic arriving at the NAT address.
func (n *NAT) inbound(t *sim.Task, p *Packet) Verdict {
	ft, ok := ExtractTuple(p.Buf, p.Base)
	if !ok || ft.Proto != view.IPProtoUDP && ft.Proto != view.IPProtoTCP {
		return NextTable
	}
	slot := int(ft.DPort) - int(n.portBase)
	if slot < 0 || slot >= len(n.rev) {
		n.unmatched++
		return Drop
	}
	k := n.rev[slot]
	RewriteAddrPort(p, false, view.IP4FromUint32(k.addr), k.port, true)
	return NextTable
}
