package fabric

import (
	"fmt"
	"sort"

	"plexus/internal/filter"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// The L4 virtual-IP load balancer: traffic for the VIP is destination-
// rewritten to a server chosen by consistent hashing of the 5-tuple over a
// ring of virtual nodes, so a flow's server assignment is stable and — the
// property plain modulo hashing lacks — mostly survives pool resizes: only
// ~1/N of flows move when the pool grows from N-1 to N servers.

// DefaultLBReplicas is the virtual-node count per server on the hash ring.
const DefaultLBReplicas = 64

// LBConfig configures a virtual-IP load balancer.
type LBConfig struct {
	// VIP is the virtual service address (off-subnet: clients route to it
	// through their default gateway).
	VIP view.IP4
	// Port is the service port.
	Port uint16
	// Servers is the initial pool.
	Servers []view.IP4
	// PoolCIDR covers the server pool, e.g. "10.0.2.0/24" — the reply rule
	// matches it to rewrite server sources back to the VIP.
	PoolCIDR string
	// Replicas is the virtual-node count per server (DefaultLBReplicas
	// when zero).
	Replicas int
}

type ringPoint struct {
	hash   uint32
	server int
}

// LoadBalancer is the pool and ring state shared by the VIP and reply rules.
type LoadBalancer struct {
	vip      view.IP4
	port     uint16
	replicas int
	servers  []view.IP4
	ring     []ringPoint
	hits     map[uint32]uint64 // server addr -> flows/packets steered to it
}

// NewLB creates the service and its match-action table: a VIP rule
// (dst == VIP: pick a server, rewrite the destination) and a reply rule
// (src in PoolCIDR with the service source port: rewrite the source back to
// the VIP).
func NewLB(name string, base filter.Base, cfg LBConfig) (*LoadBalancer, *Table, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultLBReplicas
	}
	lb := &LoadBalancer{
		vip:      cfg.VIP,
		port:     cfg.Port,
		replicas: cfg.Replicas,
		hits:     make(map[uint32]uint64),
	}
	lb.SetServers(cfg.Servers)
	tb := NewTable(name)
	vipRule, err := NewRule("lb-vip", fmt.Sprintf("ip.dst == %d.%d.%d.%d",
		cfg.VIP[0], cfg.VIP[1], cfg.VIP[2], cfg.VIP[3]), base,
		ActionFunc{Label: "lb-vip", Fn: lb.toServer})
	if err != nil {
		return nil, nil, err
	}
	reply, err := NewRule("lb-reply",
		fmt.Sprintf("ip.src in %s && udp.sport == %d", cfg.PoolCIDR, cfg.Port), base,
		ActionFunc{Label: "lb-reply", Fn: lb.toVIP})
	if err != nil {
		return nil, nil, err
	}
	tb.Add(vipRule).Add(reply)
	return lb, tb, nil
}

// SetServers replaces the pool and rebuilds the ring. Assignments for flows
// hashing to surviving servers are unchanged — the consistent-hashing
// affinity property the resize test pins.
func (lb *LoadBalancer) SetServers(servers []view.IP4) {
	lb.servers = append(lb.servers[:0], servers...)
	lb.ring = lb.ring[:0]
	for i, s := range servers {
		for r := 0; r < lb.replicas; r++ {
			lb.ring = append(lb.ring, ringPoint{hash: vnodeHash(s, r), server: i})
		}
	}
	sort.Slice(lb.ring, func(a, b int) bool {
		if lb.ring[a].hash != lb.ring[b].hash {
			return lb.ring[a].hash < lb.ring[b].hash
		}
		return lb.ring[a].server < lb.ring[b].server
	})
}

// Servers returns the current pool.
func (lb *LoadBalancer) Servers() []view.IP4 { return lb.servers }

// Hits returns the packets steered to each current server, index-aligned
// with Servers.
func (lb *LoadBalancer) Hits() []uint64 {
	out := make([]uint64, len(lb.servers))
	for i, s := range lb.servers {
		out[i] = lb.hits[s.Uint32()]
	}
	return out
}

// vnodeHash names virtual node r of a server on the ring: FNV-1a over the
// address and replica number, finished with an avalanche mix — raw FNV of
// near-identical inputs (adjacent addresses, sequential replicas) clusters on
// the ring, which starves servers.
func vnodeHash(s view.IP4, r int) uint32 {
	h := uint32(2166136261)
	for _, c := range []byte{s[0], s[1], s[2], s[3], byte(r >> 8), byte(r)} {
		h ^= uint32(c)
		h *= 16777619
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Pick returns the server index for a flow hash: the first ring point at or
// after h, wrapping to the start.
func (lb *LoadBalancer) Pick(h uint32) int {
	i := sort.Search(len(lb.ring), func(i int) bool { return lb.ring[i].hash >= h })
	if i == len(lb.ring) {
		i = 0
	}
	return lb.ring[i].server
}

// PickAddr returns the server address a tuple's flow maps to.
func (lb *LoadBalancer) PickAddr(ft FlowTuple) view.IP4 {
	return lb.servers[lb.Pick(ft.Hash())]
}

// toServer rewrites VIP traffic to the consistently-hashed pool member.
func (lb *LoadBalancer) toServer(t *sim.Task, p *Packet) Verdict {
	if len(lb.servers) == 0 {
		return Drop
	}
	ft, ok := ExtractTuple(p.Buf, p.Base)
	if !ok {
		return NextTable
	}
	srv := lb.servers[lb.Pick(ft.Hash())]
	lb.hits[srv.Uint32()]++
	RewriteAddrPort(p, false, srv, 0, false)
	return NextTable
}

// toVIP rewrites a server reply's source back to the virtual address.
func (lb *LoadBalancer) toVIP(t *sim.Task, p *Packet) Verdict {
	RewriteAddrPort(p, true, lb.vip, lb.port, true)
	return NextTable
}

// VIP returns the service address.
func (lb *LoadBalancer) VIP() view.IP4 { return lb.vip }
