package fabric

import (
	"plexus/internal/filter"
	"plexus/internal/view"
)

// Header-rewrite plumbing shared by the NAT and load-balancer actions: all
// rewrites go through RewriteAddrPort, which keeps the IP header checksum
// and the transport checksum (which covers the pseudo-header, so address
// changes break it too) correct via RFC 1624 incremental updates.

// ipOffset returns the IP header offset for the packet's framing.
func ipOffset(base filter.Base) int {
	if base == filter.BaseEthernet {
		return view.EthernetHdrLen
	}
	return 0
}

func get16(b []byte, i int) uint16  { return uint16(b[i])<<8 | uint16(b[i+1]) }
func put16(b []byte, i int, v uint16) {
	b[i] = byte(v >> 8)
	b[i+1] = byte(v)
}

// csumUpdate incrementally updates a one's-complement checksum field for a
// 16-bit word changing from old to new (RFC 1624: HC' = ~(~HC + ~m + m')).
func csumUpdate(cs, old, new uint16) uint16 {
	x := uint32(^cs) + uint32(^old) + uint32(new)
	for x>>16 != 0 {
		x = x&0xffff + x>>16
	}
	return ^uint16(x)
}

// RewriteAddrPort rewrites the packet's source (src=true) or destination
// (src=false) IP address — and, when setPort is true, the corresponding
// transport port — in place, fixing the IP header checksum and the UDP/TCP
// checksum incrementally. It returns false (leaving the packet unchanged)
// when the packet is not a rewritable IPv4 datagram. Panics on read-only
// packets, surfacing the misdeployment as a sandbox fault.
func RewriteAddrPort(p *Packet, src bool, addr view.IP4, port uint16, setPort bool) bool {
	b := p.Mutable()
	off := ipOffset(p.Base)
	if len(b) < off+view.IPv4MinHdrLen {
		return false
	}
	ipv, err := view.IPv4(b[off:])
	if err != nil {
		return false
	}
	// Locate the transport checksum (first fragment only; a zero UDP
	// checksum means "not computed" and needs no fixing).
	csOff := -1
	tOff := off + ipv.HdrLen()
	portable := ipv.FragOffset() == 0 && len(b) >= tOff+4 &&
		(ipv.Proto() == view.IPProtoUDP || ipv.Proto() == view.IPProtoTCP)
	if portable {
		switch ipv.Proto() {
		case view.IPProtoUDP:
			if len(b) >= tOff+view.UDPHdrLen && get16(b, tOff+6) != 0 {
				csOff = tOff + 6
			}
		case view.IPProtoTCP:
			if len(b) >= tOff+18 {
				csOff = tOff + 16
			}
		}
	}
	adjust := func(old, new uint16) {
		if csOff >= 0 && old != new {
			put16(b, csOff, csumUpdate(get16(b, csOff), old, new))
		}
	}
	old := ipv.Dst()
	if src {
		old = ipv.Src()
	}
	oldU, newU := old.Uint32(), addr.Uint32()
	if oldU != newU {
		adjust(uint16(oldU>>16), uint16(newU>>16))
		adjust(uint16(oldU), uint16(newU))
		if src {
			ipv.SetSrc(addr)
		} else {
			ipv.SetDst(addr)
		}
		ipv.ComputeChecksum()
	}
	if setPort && portable {
		pOff := tOff
		if !src {
			pOff = tOff + 2
		}
		oldP := get16(b, pOff)
		if oldP != port {
			adjust(oldP, port)
			put16(b, pOff, port)
		}
	}
	// RFC 768: a computed UDP checksum of zero is transmitted as 0xffff.
	if csOff >= 0 && ipv.Proto() == view.IPProtoUDP && get16(b, csOff) == 0 {
		put16(b, csOff, 0xffff)
	}
	return true
}

// FlowTuple is the 5-tuple hashing and NAT keying work from. ok is false for
// non-IPv4 packets; ports are zero for non-first fragments and non-UDP/TCP
// protocols.
type FlowTuple struct {
	Src, Dst     uint32
	Proto        uint8
	SPort, DPort uint16
}

// ExtractTuple reads the packet's 5-tuple.
func ExtractTuple(b []byte, base filter.Base) (ft FlowTuple, ok bool) {
	off := ipOffset(base)
	if base == filter.BaseEthernet {
		eth, err := view.Ethernet(b)
		if err != nil || eth.EtherType() != view.EtherTypeIPv4 {
			return ft, false
		}
	}
	if len(b) < off+view.IPv4MinHdrLen {
		return ft, false
	}
	ipv, err := view.IPv4(b[off:])
	if err != nil {
		return ft, false
	}
	ft.Src = ipv.Src().Uint32()
	ft.Dst = ipv.Dst().Uint32()
	ft.Proto = ipv.Proto()
	if ipv.FragOffset() == 0 && (ft.Proto == view.IPProtoUDP || ft.Proto == view.IPProtoTCP) {
		tOff := off + ipv.HdrLen()
		if len(b) >= tOff+4 {
			ft.SPort = get16(b, tOff)
			ft.DPort = get16(b, tOff+2)
		}
	}
	return ft, true
}

// Hash folds the tuple with FNV-1a — deterministic across runs and
// platforms, so path and server selection replay identically.
func (ft FlowTuple) Hash() uint32 {
	h := uint32(2166136261)
	step := func(v byte) {
		h ^= uint32(v)
		h *= 16777619
	}
	step(byte(ft.Src >> 24))
	step(byte(ft.Src >> 16))
	step(byte(ft.Src >> 8))
	step(byte(ft.Src))
	step(byte(ft.Dst >> 24))
	step(byte(ft.Dst >> 16))
	step(byte(ft.Dst >> 8))
	step(byte(ft.Dst))
	step(ft.Proto)
	step(byte(ft.SPort >> 8))
	step(byte(ft.SPort))
	step(byte(ft.DPort >> 8))
	step(byte(ft.DPort))
	return h
}
