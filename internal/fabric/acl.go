package fabric

import "plexus/internal/filter"

// The ACL firewall service: an ordered permit/deny table with a default
// policy. Permit is NextTable — matched traffic is allowed but still flows
// through later services (NAT, load balancing) — while deny is Drop.

// ACLEntry is one firewall rule.
type ACLEntry struct {
	Name   string
	Match  string // filter source; empty matches everything
	Permit bool
}

// NewACL builds an ACL table from entries in order, terminated by a
// match-all rule applying the default policy.
func NewACL(name string, base filter.Base, entries []ACLEntry, defaultPermit bool) (*Table, error) {
	tb := NewTable(name)
	for _, e := range entries {
		v, label := Drop, "deny"
		if e.Permit {
			v, label = NextTable, "permit"
		}
		r, err := NewRule(e.Name, e.Match, base, VerdictAction{Label: label, V: v})
		if err != nil {
			return nil, err
		}
		tb.Add(r)
	}
	v, label := Drop, "default-deny"
	if defaultPermit {
		v, label = NextTable, "default-permit"
	}
	def, err := NewRule(label, "", base, VerdictAction{Label: label, V: v})
	if err != nil {
		return nil, err
	}
	tb.Add(def)
	return tb, nil
}
