package fabric

import (
	"testing"

	"plexus/internal/event"
	"plexus/internal/filter"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// mkUDP builds an IP-framed UDP datagram with valid IP and UDP checksums.
func mkUDP(src, dst view.IP4, sport, dport uint16, payload int) []byte {
	b := make([]byte, view.IPv4MinHdrLen+view.UDPHdrLen+payload)
	b[0] = 0x45
	ipv, _ := view.IPv4(b)
	ipv.SetTotalLen(len(b))
	ipv.SetTTL(64)
	ipv.SetProto(view.IPProtoUDP)
	ipv.SetSrc(src)
	ipv.SetDst(dst)
	ipv.ComputeChecksum()
	u := b[view.IPv4MinHdrLen:]
	uv, _ := view.UDP(u)
	uv.SetSrcPort(sport)
	uv.SetDstPort(dport)
	uv.SetLength(len(u))
	uv.SetChecksum(0)
	uv.SetChecksum(udpChecksum(b))
	return b
}

// udpChecksum computes the UDP checksum (pseudo-header included) of an
// IP-framed datagram, with the checksum field as stored.
func udpChecksum(b []byte) uint16 {
	ipv, _ := view.IPv4(b)
	u := b[ipv.HdrLen():]
	a := view.PseudoHeader(ipv.Src(), ipv.Dst(), view.IPProtoUDP, len(u))
	a.Add(u)
	return a.Fold()
}

// checksumsValid verifies both the IP header checksum and the UDP checksum.
func checksumsValid(t *testing.T, b []byte) {
	t.Helper()
	ipv, _ := view.IPv4(b)
	if !ipv.VerifyChecksum() {
		t.Error("IP header checksum invalid after rewrite")
	}
	if udpChecksum(b) != 0 {
		t.Error("UDP checksum invalid after rewrite")
	}
}

func wpkt(b []byte) *Packet {
	return &Packet{Buf: b, Base: filter.BaseIP, Writable: true, OutPort: -1}
}

func TestRewritePreservesChecksums(t *testing.T) {
	b := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 9, 9}, 3333, 7, 32)
	p := wpkt(b)
	if !RewriteAddrPort(p, false, view.IP4{10, 0, 2, 3}, 0, false) {
		t.Fatal("dst rewrite refused")
	}
	checksumsValid(t, b)
	if !RewriteAddrPort(p, true, view.IP4{10, 0, 2, 200}, 21000, true) {
		t.Fatal("src rewrite refused")
	}
	checksumsValid(t, b)
	ipv, _ := view.IPv4(b)
	if ipv.Dst() != (view.IP4{10, 0, 2, 3}) || ipv.Src() != (view.IP4{10, 0, 2, 200}) {
		t.Fatalf("addresses: src=%v dst=%v", ipv.Src(), ipv.Dst())
	}
	uv, _ := view.UDP(b[ipv.HdrLen():])
	if uv.SrcPort() != 21000 || uv.DstPort() != 7 {
		t.Fatalf("ports: %d->%d", uv.SrcPort(), uv.DstPort())
	}
}

func TestRewriteReadOnlyPanics(t *testing.T) {
	b := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 9, 9}, 3333, 7, 0)
	p := &Packet{Buf: b, Base: filter.BaseIP} // not writable
	defer func() {
		if recover() == nil {
			t.Fatal("rewrite of read-only packet did not panic")
		}
	}()
	RewriteAddrPort(p, false, view.IP4{10, 0, 2, 3}, 0, false)
}

func TestPipelineVerdictsAndHits(t *testing.T) {
	pl := NewPipeline("t", filter.BaseIP, event.QuarantinePolicy{})
	acl, err := NewACL("acl", filter.BaseIP, []ACLEntry{
		{Name: "permit-svc", Match: "ip.dst == 10.0.9.9 && udp.dport == 7", Permit: true},
		{Name: "deny-telnet", Match: "tcp.dport == 23", Permit: false},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	mark := 0
	after := NewTable("after")
	r, _ := NewRule("count", "", filter.BaseIP, ActionFunc{Label: "count",
		Fn: func(_ *sim.Task, p *Packet) Verdict { mark++; return NextTable }})
	after.Add(r)
	pl.Add(acl).Add(after)

	svc := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 9, 9}, 3333, 7, 0)
	other := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 9, 9}, 3333, 99, 0)

	if v := pl.Exec(nil, wpkt(svc)); v != Accept {
		t.Fatalf("service packet verdict %v", v)
	}
	if mark != 1 {
		t.Fatalf("permit did not continue to next table: mark=%d", mark)
	}
	if v := pl.Exec(nil, wpkt(other)); v != Drop {
		t.Fatalf("default-deny verdict %v", v)
	}
	if mark != 1 {
		t.Fatal("dropped packet still reached later table")
	}
	snap := pl.Snapshot()
	wantHits := map[string]uint64{"permit-svc": 1, "deny-telnet": 0, "default-deny": 1, "count": 1}
	for _, rs := range snap {
		if want, ok := wantHits[rs.Name]; ok && rs.Hits != want {
			t.Errorf("rule %s hits=%d want %d", rs.Name, rs.Hits, want)
		}
	}
	if pl.Stats().Drops != 1 || pl.Stats().Packets != 2 {
		t.Errorf("stats %+v", pl.Stats())
	}
}

func TestSandboxQuarantinesRepeatOffender(t *testing.T) {
	pl := NewPipeline("t", filter.BaseIP, event.QuarantinePolicy{Threshold: 3})
	tb := NewTable("svc")
	bad, _ := NewRule("bad", "", filter.BaseIP, ActionFunc{Label: "bad",
		Fn: func(_ *sim.Task, p *Packet) Verdict { panic("rogue fabric program") }})
	good := 0
	ok, _ := NewRule("good", "", filter.BaseIP, ActionFunc{Label: "good",
		Fn: func(_ *sim.Task, p *Packet) Verdict { good++; return NextTable }})
	tb.Add(bad).Add(ok)
	pl.Add(tb)

	b := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 2, 9}, 1, 2, 0)
	for i := 0; i < 5; i++ {
		if v := pl.Exec(nil, wpkt(b)); v != Accept {
			t.Fatalf("packet %d: verdict %v (panic escaped or dropped)", i, v)
		}
	}
	// The panicking rule fired 3 times, was quarantined, and the remaining
	// packets skipped it; the good rule saw every packet.
	if got := pl.Stats().Faults; got != 3 {
		t.Errorf("faults = %d, want 3", got)
	}
	if pl.Stats().Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", pl.Stats().Quarantined)
	}
	if good != 5 {
		t.Errorf("good rule ran %d times, want 5", good)
	}
	snap := pl.Snapshot()
	if !snap[0].Quarantined || snap[0].Faults != 3 {
		t.Errorf("bad rule snapshot %+v", snap[0])
	}
	if pl.Quarantined() {
		t.Error("pipeline reported fully quarantined with a live rule")
	}
}

func TestFullyQuarantinedPipelineIsInert(t *testing.T) {
	pl := NewPipeline("t", filter.BaseIP, event.QuarantinePolicy{Threshold: 1})
	tb := NewTable("svc")
	bad, _ := NewRule("bad", "", filter.BaseIP, ActionFunc{Label: "bad",
		Fn: func(_ *sim.Task, p *Packet) Verdict { panic("boom") }})
	tb.Add(bad)
	pl.Add(tb)
	b := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 2, 9}, 1, 2, 0)
	pl.Exec(nil, wpkt(b))
	if !pl.Quarantined() {
		t.Fatal("single-rule pipeline not quarantined after threshold")
	}
	if v := pl.Exec(nil, wpkt(b)); v != Accept {
		t.Fatalf("quarantined pipeline verdict %v, want Accept (plain forwarding)", v)
	}
}

func TestNATDeterministicMapping(t *testing.T) {
	natAddr := view.IP4{10, 0, 2, 200}
	n, tb, err := NewNAT("nat", filter.BaseIP, NATConfig{
		Addr: natAddr, InsideCIDR: "10.0.1.0/24", PortBase: 20000, MaxEntries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline("t", filter.BaseIP, event.QuarantinePolicy{}).Add(tb)

	out := func(host byte, sport uint16) []byte {
		return mkUDP(view.IP4{10, 0, 1, host}, view.IP4{10, 0, 2, 9}, sport, 7, 8)
	}
	b1 := out(5, 3000)
	pl.Exec(nil, wpkt(b1))
	ipv, _ := view.IPv4(b1)
	uv, _ := view.UDP(b1[ipv.HdrLen():])
	if ipv.Src() != natAddr || uv.SrcPort() != 20000 {
		t.Fatalf("first flow mapped to %v:%d, want %v:20000", ipv.Src(), uv.SrcPort(), natAddr)
	}
	checksumsValid(t, b1)

	// Same flow again: same mapping, no new entry.
	b1b := out(5, 3000)
	pl.Exec(nil, wpkt(b1b))
	uv2, _ := view.UDP(b1b[view.IPv4MinHdrLen:])
	if uv2.SrcPort() != 20000 || n.Occupancy() != 1 {
		t.Fatalf("repeat flow: port %d occupancy %d", uv2.SrcPort(), n.Occupancy())
	}
	// Second flow: next port.
	b2 := out(6, 3000)
	pl.Exec(nil, wpkt(b2))
	uv3, _ := view.UDP(b2[view.IPv4MinHdrLen:])
	if uv3.SrcPort() != 20001 || n.Occupancy() != 2 {
		t.Fatalf("second flow: port %d occupancy %d", uv3.SrcPort(), n.Occupancy())
	}
	// Table full: third flow dropped.
	if v := pl.Exec(nil, wpkt(out(7, 3000))); v != Drop || n.Exhausted() != 1 {
		t.Fatalf("exhaustion: verdict %v exhausted %d", v, n.Exhausted())
	}

	// Reply to the first mapping translates back.
	reply := mkUDP(view.IP4{10, 0, 2, 9}, natAddr, 7, 20000, 8)
	pl.Exec(nil, wpkt(reply))
	rv, _ := view.IPv4(reply)
	ru, _ := view.UDP(reply[rv.HdrLen():])
	if rv.Dst() != (view.IP4{10, 0, 1, 5}) || ru.DstPort() != 3000 {
		t.Fatalf("reply translated to %v:%d", rv.Dst(), ru.DstPort())
	}
	checksumsValid(t, reply)
	// Reply to an unallocated port is dropped.
	if v := pl.Exec(nil, wpkt(mkUDP(view.IP4{10, 0, 2, 9}, natAddr, 7, 29999, 0))); v != Drop {
		t.Fatalf("unmatched inbound verdict %v", v)
	}
	if n.Unmatched() != 1 {
		t.Errorf("unmatched = %d", n.Unmatched())
	}
}

func TestLBConsistentHashingAffinity(t *testing.T) {
	pool := []view.IP4{{10, 0, 2, 1}, {10, 0, 2, 2}, {10, 0, 2, 3}, {10, 0, 2, 4}}
	lb, _, err := NewLB("lb", filter.BaseIP, LBConfig{
		VIP: view.IP4{10, 0, 9, 9}, Port: 7, Servers: pool, PoolCIDR: "10.0.2.0/24",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Record the assignment of many flows, grow the pool, and check that
	// flows mapping to surviving servers did not move — and that only
	// roughly 1/5 of flows moved at all.
	type flow struct{ ft FlowTuple }
	flows := make([]flow, 0, 1000)
	for h := byte(1); h <= 250; h++ {
		for sp := uint16(3000); sp < 3004; sp++ {
			flows = append(flows, flow{FlowTuple{
				Src: view.IP4{10, 0, 1, h}.Uint32(), Dst: lb.VIP().Uint32(),
				Proto: view.IPProtoUDP, SPort: sp, DPort: 7,
			}})
		}
	}
	before := make([]view.IP4, len(flows))
	for i, f := range flows {
		before[i] = lb.PickAddr(f.ft)
	}
	grown := append(append([]view.IP4{}, pool...), view.IP4{10, 0, 2, 5})
	lb.SetServers(grown)
	moved := 0
	for i, f := range flows {
		after := lb.PickAddr(f.ft)
		if after != before[i] {
			moved++
			if after != (view.IP4{10, 0, 2, 5}) {
				t.Fatalf("flow %d moved between surviving servers: %v -> %v", i, before[i], after)
			}
		}
	}
	frac := float64(moved) / float64(len(flows))
	if frac < 0.05 || frac > 0.40 {
		t.Errorf("pool grow 4->5 moved %.0f%% of flows, want ~20%%", 100*frac)
	}
	// Balance: each server serves a nontrivial share.
	counts := map[view.IP4]int{}
	for _, f := range flows {
		counts[lb.PickAddr(f.ft)]++
	}
	for _, s := range grown {
		if counts[s] < len(flows)/20 {
			t.Errorf("server %v starved: %d/%d flows", s, counts[s], len(flows))
		}
	}
}

func TestLBRewritesAndReplies(t *testing.T) {
	pool := []view.IP4{{10, 0, 2, 1}, {10, 0, 2, 2}}
	vip := view.IP4{10, 0, 9, 9}
	lb, tb, err := NewLB("lb", filter.BaseIP, LBConfig{
		VIP: vip, Port: 7, Servers: pool, PoolCIDR: "10.0.2.0/24",
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline("t", filter.BaseIP, event.QuarantinePolicy{}).Add(tb)
	req := mkUDP(view.IP4{10, 0, 1, 5}, vip, 3000, 7, 16)
	pl.Exec(nil, wpkt(req))
	ipv, _ := view.IPv4(req)
	srv := ipv.Dst()
	if srv != pool[0] && srv != pool[1] {
		t.Fatalf("VIP rewritten to %v, not a pool member", srv)
	}
	checksumsValid(t, req)
	hits := lb.Hits()
	if hits[0]+hits[1] != 1 {
		t.Fatalf("hits %v", hits)
	}
	reply := mkUDP(srv, view.IP4{10, 0, 1, 5}, 7, 3000, 16)
	pl.Exec(nil, wpkt(reply))
	rv, _ := view.IPv4(reply)
	if rv.Src() != vip {
		t.Fatalf("reply source %v, want VIP", rv.Src())
	}
	checksumsValid(t, reply)
}

func TestECMPSpreadsFlowsStably(t *testing.T) {
	e, r, err := NewECMP("ecmp", "ip.proto == 17", filter.BaseIP, 3)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline("t", filter.BaseIP, event.QuarantinePolicy{}).Add(NewTable("ecmp").Add(r))
	paths := map[uint16]int{}
	for sp := uint16(3000); sp < 3120; sp++ {
		b := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 2, 9}, sp, 7, 0)
		p := wpkt(b)
		pl.Exec(nil, p)
		paths[sp] = p.Path
		// Same flow must take the same path every time.
		p2 := wpkt(mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 2, 9}, sp, 7, 0))
		pl.Exec(nil, p2)
		if p2.Path != p.Path {
			t.Fatalf("flow sport=%d flapped paths %d -> %d", sp, p.Path, p2.Path)
		}
	}
	seen := map[int]int{}
	for _, p := range paths {
		if p < 0 || p >= 3 {
			t.Fatalf("path %d out of range", p)
		}
		seen[p]++
	}
	for i := 0; i < 3; i++ {
		if seen[i] == 0 {
			t.Errorf("path %d never chosen: %v", i, seen)
		}
	}
	total := uint64(0)
	for _, h := range e.Hits() {
		total += h
	}
	if total != 240 {
		t.Errorf("ECMP hit total %d, want 240", total)
	}
}

func TestPipelineCostAccumulatesWithoutTask(t *testing.T) {
	pl := NewPipeline("t", filter.BaseIP, event.QuarantinePolicy{})
	tb := NewTable("svc")
	r1, _ := NewRule("miss", "udp.dport == 9999", filter.BaseIP, VerdictAction{Label: "drop", V: Drop})
	r2, _ := NewRule("hit", "", filter.BaseIP, VerdictAction{Label: "permit", V: NextTable})
	tb.Add(r1).Add(r2)
	pl.Add(tb)
	b := mkUDP(view.IP4{10, 0, 1, 5}, view.IP4{10, 0, 2, 9}, 1, 2, 0)
	p := wpkt(b)
	pl.Exec(nil, p)
	want := 2*pl.MatchCost + pl.ActionCost
	if p.Cost != want {
		t.Errorf("cost = %v, want %v", p.Cost, want)
	}
}
