package domain

import (
	"fmt"
	"sort"
	"strings"
)

// Extension is a partially resolved object file: the symbols it imports, the
// symbols it will export once linked, and an initializer that receives the
// resolved imports. In SPIN the Modula-3 compiler signs these objects; here
// the type system plays that role — an Extension can only be built from Go
// values already in the process.
type Extension struct {
	// Name identifies the extension in errors and diagnostics.
	Name string
	// Imports lists every external symbol the extension references. The
	// link fails unless all of them resolve.
	Imports []Symbol
	// Exports lists the symbols the extension provides, installed into the
	// target domain on success and removed at unlink.
	Exports map[Symbol]any
	// Init runs at link time with the resolved imports; returning an error
	// aborts the link (no exports are installed). May be nil.
	Init func(resolved map[Symbol]any) error
}

// UnresolvedError reports a link rejected for referencing symbols outside the
// logical protection domain — the paper's "the link will fail and the
// extension will be rejected".
type UnresolvedError struct {
	Extension string
	Domain    string
	Missing   []Symbol
}

func (e *UnresolvedError) Error() string {
	names := make([]string, len(e.Missing))
	for i, s := range e.Missing {
		names[i] = string(s)
	}
	return fmt.Sprintf("domain: extension %q rejected: unresolved symbols against domain %q: %s",
		e.Extension, e.Domain, strings.Join(names, ", "))
}

// Linked is a successfully linked extension; it is the handle for unlinking.
type Linked struct {
	ext      *Extension
	into     *Domain
	resolved map[Symbol]any
	unlinked bool
}

// Link resolves ext's imports against the domain `against`, runs the
// initializer, and installs ext's exports into the domain `into` (often the
// same domain). It returns an *UnresolvedError if any import is missing.
func Link(ext *Extension, against, into *Domain) (*Linked, error) {
	resolved := make(map[Symbol]any, len(ext.Imports))
	var missing []Symbol
	for _, sym := range ext.Imports {
		v, ok := against.Resolve(sym)
		if !ok {
			missing = append(missing, sym)
			continue
		}
		resolved[sym] = v
	}
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		return nil, &UnresolvedError{Extension: ext.Name, Domain: against.Name(), Missing: missing}
	}
	if ext.Init != nil {
		if err := ext.Init(resolved); err != nil {
			return nil, fmt.Errorf("domain: extension %q init failed: %w", ext.Name, err)
		}
	}
	var installed []Symbol
	for sym, v := range ext.Exports {
		if err := into.Export(sym, v); err != nil {
			// Roll back anything already installed.
			for _, s := range installed {
				into.remove(s)
			}
			return nil, fmt.Errorf("domain: extension %q: %w", ext.Name, err)
		}
		installed = append(installed, sym)
	}
	return &Linked{ext: ext, into: into, resolved: resolved}, nil
}

// Resolved returns the value a named import was bound to at link time.
func (l *Linked) Resolved(sym Symbol) (any, bool) {
	v, ok := l.resolved[sym]
	return v, ok
}

// Extension returns the linked extension descriptor.
func (l *Linked) Extension() *Extension { return l.ext }

// Unlink removes the extension's exports from its domain. Unlinking twice is
// an error.
func (l *Linked) Unlink() error {
	if l.unlinked {
		return fmt.Errorf("domain: extension %q already unlinked", l.ext.Name)
	}
	l.unlinked = true
	for sym := range l.ext.Exports {
		l.into.remove(sym)
	}
	return nil
}
