// Package domain reproduces SPIN's logical protection domains and dynamic
// linker (paper §2, [SFPB96]).
//
// A logical protection domain is a set of visible interfaces: named symbols
// bound to values (procedures, in practice). Extensions arrive as partially
// resolved objects — a list of imported symbol names plus the symbols they
// will export — and the linker resolves every import against the domain the
// extension is being linked into. If any symbol cannot be resolved, the link
// fails and the extension is rejected; this is the mechanism that keeps an
// untrusted protocol extension from naming (and therefore calling) anything
// outside the interfaces it was granted.
//
// Domains are first-class values referenced by ordinary Go pointers, the
// analogue of the paper's "typesafe pointers (capabilities)": code that does
// not hold a *Domain cannot link against it, and different extensions can be
// handed different domains.
package domain

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Symbol names an exported procedure or variable, conventionally
// "Interface.Item" as in "Ethernet.PacketRecv".
type Symbol string

// Interface returns the interface component of the symbol ("Ethernet" for
// "Ethernet.PacketRecv"), or the whole symbol if it has no dot.
func (s Symbol) Interface() string {
	if i := strings.IndexByte(string(s), '.'); i >= 0 {
		return string(s[:i])
	}
	return string(s)
}

// Domain is a logical protection domain: a namespace of exported symbols.
// Holding a *Domain is the capability to resolve and link against it.
type Domain struct {
	mu      sync.Mutex
	name    string
	symbols map[Symbol]any
}

// New creates an empty domain.
func New(name string) *Domain {
	return &Domain{name: name, symbols: make(map[Symbol]any)}
}

// Name returns the domain's diagnostic name.
func (d *Domain) Name() string { return d.name }

// Export binds sym to v in the domain. Exporting a symbol that already
// exists fails: interfaces are immutable once published.
func (d *Domain) Export(sym Symbol, v any) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.symbols[sym]; ok {
		return fmt.Errorf("domain %s: symbol %q already exported", d.name, sym)
	}
	d.symbols[sym] = v
	return nil
}

// MustExport is Export that panics on duplicate, for static setup code.
func (d *Domain) MustExport(sym Symbol, v any) {
	if err := d.Export(sym, v); err != nil {
		panic(err)
	}
}

// remove drops a symbol; used by Unlink.
func (d *Domain) remove(sym Symbol) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.symbols, sym)
}

// Resolve looks up a symbol.
func (d *Domain) Resolve(sym Symbol) (any, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.symbols[sym]
	return v, ok
}

// Symbols returns the domain's exported symbol names, sorted.
func (d *Domain) Symbols() []Symbol {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Symbol, 0, len(d.symbols))
	for s := range d.symbols {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Copy returns a snapshot domain with the same bindings, corresponding to
// SPIN's domain copy operation: the copy evolves independently.
func (d *Domain) Copy(name string) *Domain {
	d.mu.Lock()
	defer d.mu.Unlock()
	nd := New(name)
	for s, v := range d.symbols {
		nd.symbols[s] = v
	}
	return nd
}

// Combine returns a new domain holding the union of the given domains'
// bindings. Conflicting bindings for the same symbol fail, mirroring a
// link-time multiple-definition error.
func Combine(name string, domains ...*Domain) (*Domain, error) {
	nd := New(name)
	for _, d := range domains {
		d.mu.Lock()
		for s, v := range d.symbols {
			if have, ok := nd.symbols[s]; ok && !same(have, v) {
				d.mu.Unlock()
				return nil, fmt.Errorf("domain combine %s: conflicting definitions of %q", name, s)
			}
			nd.symbols[s] = v
		}
		d.mu.Unlock()
	}
	return nd, nil
}

// same reports best-effort identity for conflict detection. Functions are not
// comparable in Go, so two distinct bindings of the same symbol always
// conflict unless they are comparable and equal.
func same(a, b any) bool {
	type comparer interface{ Equal(any) bool }
	if c, ok := a.(comparer); ok {
		return c.Equal(b)
	}
	defer func() { recover() }() //nolint:errcheck // comparison of uncomparable types ⇒ not same
	return a == b
}
