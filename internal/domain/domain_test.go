package domain

import (
	"errors"
	"strings"
	"testing"
)

func TestSymbolInterface(t *testing.T) {
	if Symbol("Ethernet.PacketRecv").Interface() != "Ethernet" {
		t.Error("Interface() wrong for dotted symbol")
	}
	if Symbol("Bare").Interface() != "Bare" {
		t.Error("Interface() wrong for bare symbol")
	}
}

func TestExportResolve(t *testing.T) {
	d := New("kernel")
	if d.Name() != "kernel" {
		t.Error("name lost")
	}
	fn := func() int { return 42 }
	if err := d.Export("Mbuf.Alloc", fn); err != nil {
		t.Fatal(err)
	}
	v, ok := d.Resolve("Mbuf.Alloc")
	if !ok {
		t.Fatal("exported symbol did not resolve")
	}
	if v.(func() int)() != 42 {
		t.Fatal("wrong value resolved")
	}
	if _, ok := d.Resolve("Mbuf.Free"); ok {
		t.Fatal("unexported symbol resolved")
	}
}

func TestDuplicateExportFails(t *testing.T) {
	d := New("kernel")
	if err := d.Export("X", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Export("X", 2); err == nil {
		t.Fatal("duplicate export accepted")
	}
}

func TestMustExportPanics(t *testing.T) {
	d := New("kernel")
	d.MustExport("X", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustExport on duplicate did not panic")
		}
	}()
	d.MustExport("X", 2)
}

func TestSymbolsSorted(t *testing.T) {
	d := New("k")
	d.MustExport("B", 1)
	d.MustExport("A", 1)
	d.MustExport("C", 1)
	got := d.Symbols()
	if len(got) != 3 || got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Fatalf("Symbols = %v", got)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	d := New("orig")
	d.MustExport("X", 1)
	c := d.Copy("copy")
	c.MustExport("Y", 2)
	if _, ok := d.Resolve("Y"); ok {
		t.Fatal("copy mutation leaked into original")
	}
	if _, ok := c.Resolve("X"); !ok {
		t.Fatal("copy missing original binding")
	}
}

func TestCombine(t *testing.T) {
	a := New("a")
	a.MustExport("A.x", 1)
	b := New("b")
	b.MustExport("B.y", 2)
	u, err := Combine("union", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Resolve("A.x"); !ok {
		t.Error("union missing A.x")
	}
	if _, ok := u.Resolve("B.y"); !ok {
		t.Error("union missing B.y")
	}
}

func TestCombineConflict(t *testing.T) {
	a := New("a")
	a.MustExport("X", 1)
	b := New("b")
	b.MustExport("X", 2)
	if _, err := Combine("u", a, b); err == nil {
		t.Fatal("conflicting combine accepted")
	}
	// Equal comparable values do not conflict.
	c := New("c")
	c.MustExport("X", 1)
	if _, err := Combine("u", a, c); err != nil {
		t.Fatalf("equal bindings rejected: %v", err)
	}
	// Uncomparable values (functions) always conflict.
	f := New("f")
	f.MustExport("F", func() {})
	g := New("g")
	g.MustExport("F", func() {})
	if _, err := Combine("u", f, g); err == nil {
		t.Fatal("conflicting function bindings accepted")
	}
}

func TestLinkSuccess(t *testing.T) {
	kernel := New("kernel")
	kernel.MustExport("Mbuf.Alloc", "alloc")
	kernel.MustExport("Ethernet.PacketRecv", "event")

	var sawAlloc any
	ext := &Extension{
		Name:    "activemessages",
		Imports: []Symbol{"Mbuf.Alloc", "Ethernet.PacketRecv"},
		Exports: map[Symbol]any{"ActiveMessages.Handler": "h"},
		Init: func(resolved map[Symbol]any) error {
			sawAlloc = resolved["Mbuf.Alloc"]
			return nil
		},
	}
	l, err := Link(ext, kernel, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if sawAlloc != "alloc" {
		t.Error("init did not receive resolved import")
	}
	if v, ok := l.Resolved("Mbuf.Alloc"); !ok || v != "alloc" {
		t.Error("Resolved() lookup failed")
	}
	if l.Extension() != ext {
		t.Error("Extension() accessor wrong")
	}
	if _, ok := kernel.Resolve("ActiveMessages.Handler"); !ok {
		t.Fatal("export not installed after link")
	}
	if err := l.Unlink(); err != nil {
		t.Fatal(err)
	}
	if _, ok := kernel.Resolve("ActiveMessages.Handler"); ok {
		t.Fatal("export still visible after unlink")
	}
	if err := l.Unlink(); err == nil {
		t.Fatal("double unlink accepted")
	}
}

// The core safety property: an extension referencing a symbol outside its
// logical protection domain is rejected at link time (paper §2).
func TestLinkRejectsUnresolved(t *testing.T) {
	restricted := New("user-net")
	restricted.MustExport("UDP.PacketSend", "ok")
	ext := &Extension{
		Name:    "snooper",
		Imports: []Symbol{"UDP.PacketSend", "VM.MapKernelPage", "Sched.Preempt"},
	}
	_, err := Link(ext, restricted, restricted)
	if err == nil {
		t.Fatal("extension with out-of-domain imports linked")
	}
	var ue *UnresolvedError
	if !errors.As(err, &ue) {
		t.Fatalf("error type = %T, want *UnresolvedError", err)
	}
	if len(ue.Missing) != 2 {
		t.Fatalf("Missing = %v, want 2 symbols", ue.Missing)
	}
	if ue.Missing[0] != "Sched.Preempt" || ue.Missing[1] != "VM.MapKernelPage" {
		t.Fatalf("Missing not sorted: %v", ue.Missing)
	}
	msg := ue.Error()
	if !strings.Contains(msg, "snooper") || !strings.Contains(msg, "VM.MapKernelPage") {
		t.Errorf("error message uninformative: %q", msg)
	}
}

// Different extensions can be given different domains: a privileged domain
// resolves what a restricted one does not.
func TestPerExtensionDomains(t *testing.T) {
	full := New("kernel-full")
	full.MustExport("Device.RawAccess", 1)
	full.MustExport("Net.Send", 1)
	restricted := full.Copy("kernel-restricted")
	restricted.remove("Device.RawAccess")

	ext := &Extension{Name: "driver", Imports: []Symbol{"Device.RawAccess"}}
	if _, err := Link(ext, full, New("scratch")); err != nil {
		t.Fatalf("privileged link failed: %v", err)
	}
	if _, err := Link(ext, restricted, New("scratch")); err == nil {
		t.Fatal("restricted domain resolved a privileged symbol")
	}
}

func TestLinkInitFailureAborts(t *testing.T) {
	kernel := New("kernel")
	ext := &Extension{
		Name:    "bad",
		Exports: map[Symbol]any{"Bad.X": 1},
		Init:    func(map[Symbol]any) error { return errors.New("boom") },
	}
	if _, err := Link(ext, kernel, kernel); err == nil {
		t.Fatal("failed init did not abort link")
	}
	if _, ok := kernel.Resolve("Bad.X"); ok {
		t.Fatal("exports installed despite init failure")
	}
}

func TestLinkExportConflictRollsBack(t *testing.T) {
	kernel := New("kernel")
	kernel.MustExport("Taken", 0)
	ext := &Extension{
		Name: "clasher",
		Exports: map[Symbol]any{
			"Taken": 1,
			"Fresh": 2,
		},
	}
	if _, err := Link(ext, kernel, kernel); err == nil {
		t.Fatal("conflicting export accepted")
	}
	if _, ok := kernel.Resolve("Fresh"); ok {
		t.Fatal("partial exports not rolled back")
	}
}
