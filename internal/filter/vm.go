package filter

import (
	"fmt"
	"strings"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

// The interpreted backend: filter expressions compiled to bytecode for a
// small stack machine. Executing a guard this way charges per-instruction
// simulated time, modelling the in-kernel interpreted-firewall alternative
// the paper mentions in §3.5 (Java, Tcl) and the classic packet-filter
// machines of [MRA87]. The ablation in internal/bench compares it with the
// native (typesafe compiled extension) backend.

// opcodeKind is a VM operation.
type opcodeKind int

// VM opcodes. Comparisons pop two values and push 0/1; a comparison whose
// field failed to extract yields 0.
const (
	opLoadField opcodeKind = iota // push field value; record validity
	opPush                        // push constant
	opCmp                         // pop b, a; push a OP b (invalid ⇒ 0)
	opTruth                       // pop a; push a != 0 (invalid ⇒ 0)
	opNot                         // pop a; push !a
	opPop                         // pop and discard
	opJzKeep                      // if top == 0, jump relative (keep top)
	opJnzKeep                     // if top != 0, jump relative (keep top)
)

// instr is one VM instruction.
type instr struct {
	op    opcodeKind
	field Field
	proto uint8
	cmp   Op
	val   uint32
	rel   int // jump offset (relative to next instruction)
}

// DefaultInstrCost is the simulated cost of one interpreted instruction —
// interpreter dispatch plus operand handling on the modelled 1995 CPU.
const DefaultInstrCost = 250 * sim.Nanosecond

// Program is a compiled filter for the VM backend.
type Program struct {
	base Base
	code []instr
	src  string
	// InstrCost is charged per executed instruction (DefaultInstrCost
	// unless overridden).
	InstrCost sim.Time
}

// CompileInterpreted parses source text and compiles it to VM bytecode.
func CompileInterpreted(src string, base Base) (*Program, error) {
	root, err := parse(src)
	if err != nil {
		return nil, err
	}
	p := &Program{base: base, src: src, InstrCost: DefaultInstrCost}
	p.compile(root)
	return p, nil
}

// CompileFilter compiles an already-parsed Filter to bytecode.
func CompileFilter(f *Filter) *Program {
	p := &Program{base: f.base, src: f.src, InstrCost: DefaultInstrCost}
	p.compile(f.root)
	return p
}

// Len reports the program length in instructions.
func (p *Program) Len() int { return len(p.code) }

// String disassembles the program.
func (p *Program) String() string {
	var sb strings.Builder
	for i, in := range p.code {
		switch in.op {
		case opLoadField:
			fmt.Fprintf(&sb, "%3d  LOADF  f%d proto=%d\n", i, in.field, in.proto)
		case opPush:
			fmt.Fprintf(&sb, "%3d  PUSH   %d\n", i, in.val)
		case opCmp:
			if in.cmp == OpIn {
				fmt.Fprintf(&sb, "%3d  CMP    in mask=%08x\n", i, in.val)
			} else {
				fmt.Fprintf(&sb, "%3d  CMP    %s\n", i, in.cmp)
			}
		case opTruth:
			fmt.Fprintf(&sb, "%3d  TRUTH\n", i)
		case opNot:
			fmt.Fprintf(&sb, "%3d  NOT\n", i)
		case opPop:
			fmt.Fprintf(&sb, "%3d  POP\n", i)
		case opJzKeep:
			fmt.Fprintf(&sb, "%3d  JZK    +%d\n", i, in.rel)
		case opJnzKeep:
			fmt.Fprintf(&sb, "%3d  JNZK   +%d\n", i, in.rel)
		}
	}
	return sb.String()
}

// compile emits code for node n, leaving the boolean result (0/1) on the
// stack. Logical operators short-circuit with relative jumps.
func (p *Program) compile(n Node) {
	switch x := n.(type) {
	case *cmpNode:
		p.code = append(p.code,
			instr{op: opLoadField, field: x.field, proto: x.proto},
			instr{op: opPush, val: x.value},
			instr{op: opCmp, cmp: x.op},
		)
	case *inNode:
		// CIDR membership: the masked network is pushed as the comparand and
		// the prefix mask rides in the CMP instruction's val operand.
		p.code = append(p.code,
			instr{op: opLoadField, field: x.field, proto: x.proto},
			instr{op: opPush, val: x.value},
			instr{op: opCmp, cmp: OpIn, val: x.mask},
		)
	case *fieldTruth:
		p.code = append(p.code,
			instr{op: opLoadField, field: x.field, proto: x.proto},
			instr{op: opTruth},
		)
	case *notNode:
		p.compile(x.x)
		p.code = append(p.code, instr{op: opNot})
	case *boolNode:
		p.compile(x.l)
		jmp := len(p.code)
		if x.op == OpAnd {
			p.code = append(p.code, instr{op: opJzKeep})
		} else {
			p.code = append(p.code, instr{op: opJnzKeep})
		}
		p.code = append(p.code, instr{op: opPop})
		p.compile(x.r)
		p.code[jmp].rel = len(p.code) - (jmp + 1)
	default:
		panic(fmt.Sprintf("filter: unknown node type %T", n))
	}
}

// Run interprets the program against a packet, charging t per executed
// instruction (t may be nil in tests that only want the verdict).
func (p *Program) Run(t *sim.Task, m *mbuf.Mbuf) bool {
	return p.RunBytes(t, m.Bytes())
}

// RunBytes interprets the program against a raw packet buffer — the fabric
// plane's entry point, where packets are frames or header scratch.
func (p *Program) RunBytes(t *sim.Task, b []byte) bool {
	var stack [16]uint32
	sp := 0
	lastValid := true
	executed := 0
	for pc := 0; pc < len(p.code); pc++ {
		executed++
		in := p.code[pc]
		switch in.op {
		case opLoadField:
			v, ok := extractBytes(b, p.base, in.field, in.proto)
			lastValid = ok
			stack[sp] = v
			sp++
		case opPush:
			stack[sp] = in.val
			sp++
		case opCmp:
			b := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			r := uint32(0)
			if lastValid {
				switch in.cmp {
				case OpIn:
					if a&in.val == b {
						r = 1
					}
				case OpEq:
					if a == b {
						r = 1
					}
				case OpNe:
					if a != b {
						r = 1
					}
				case OpLt:
					if a < b {
						r = 1
					}
				case OpGt:
					if a > b {
						r = 1
					}
				case OpLe:
					if a <= b {
						r = 1
					}
				case OpGe:
					if a >= b {
						r = 1
					}
				}
			}
			stack[sp] = r
			sp++
		case opTruth:
			a := stack[sp-1]
			sp--
			r := uint32(0)
			if lastValid && a != 0 {
				r = 1
			}
			stack[sp] = r
			sp++
		case opNot:
			if stack[sp-1] == 0 {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case opPop:
			sp--
		case opJzKeep:
			if stack[sp-1] == 0 {
				pc += in.rel
			}
		case opJnzKeep:
			if stack[sp-1] != 0 {
				pc += in.rel
			}
		}
	}
	if t != nil {
		t.Charge(sim.Time(executed) * p.InstrCost)
	}
	return sp > 0 && stack[sp-1] != 0
}

// Guard returns the program as an event.Guard charging interpreted costs.
func (p *Program) Guard() func(t *sim.Task, m *mbuf.Mbuf) bool {
	return func(t *sim.Task, m *mbuf.Mbuf) bool {
		return p.Run(t, m)
	}
}
