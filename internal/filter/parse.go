package filter

import (
	"fmt"
	"strconv"
	"strings"
)

// The expression grammar, parsed by recursive descent:
//
//	expr   := or
//	or     := and { "||" and }
//	and    := unary { "&&" unary }
//	unary  := "!" unary | "(" expr ")" | cmp
//	cmp    := field [ op value | "in" cidr ]
//	op     := "==" | "!=" | "<" | ">" | "<=" | ">="
//	value  := integer | hex integer | dotted-quad IPv4 address
//	cidr   := dotted-quad IPv4 address "/" prefix-length
//	field  := identifier "." identifier

type tokKind int

const (
	tokEOF tokKind = iota
	tokField
	tokNumber
	tokCIDR   // dotted-quad/prefix, e.g. 10.0.1.0/24
	tokOp     // comparison
	tokAndAnd // &&
	tokOrOr   // ||
	tokNot    // !
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	val  uint32
	mask uint32 // CIDR prefix mask (tokCIDR only)
	plen int    // CIDR prefix length (tokCIDR only)
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '&':
			if !l.pair('&') {
				return nil, fmt.Errorf("filter: expected && at %d", l.pos)
			}
			l.toks = append(l.toks, token{kind: tokAndAnd, text: "&&", pos: l.pos - 2})
		case c == '|':
			if !l.pair('|') {
				return nil, fmt.Errorf("filter: expected || at %d", l.pos)
			}
			l.toks = append(l.toks, token{kind: tokOrOr, text: "||", pos: l.pos - 2})
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.toks = append(l.toks, token{kind: tokOp, text: "!=", pos: l.pos})
				l.pos += 2
			} else {
				l.emit(tokNot, "!")
			}
		case c == '=' || c == '<' || c == '>':
			start := l.pos
			op := string(c)
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				op += "="
				l.pos++
			}
			if op == "=" {
				return nil, fmt.Errorf("filter: single '=' at %d (use ==)", start)
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		case c >= '0' && c <= '9':
			if err := l.number(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.ident()
		default:
			return nil, fmt.Errorf("filter: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
	l.pos += len(text)
}

func (l *lexer) pair(c byte) bool {
	if l.pos+1 < len(l.src) && l.src[l.pos+1] == c {
		l.pos += 2
		return true
	}
	return false
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isIdent(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// number lexes an integer, hex integer, or dotted-quad address.
func (l *lexer) number() error {
	start := l.pos
	for l.pos < len(l.src) && (isIdent(l.src[l.pos]) || l.src[l.pos] == 'x') {
		l.pos++
	}
	text := l.src[start:l.pos]
	if strings.Count(text, ".") == 3 {
		parts := strings.Split(text, ".")
		var v uint32
		for _, p := range parts {
			n, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return fmt.Errorf("filter: bad address %q at %d", text, start)
			}
			v = v<<8 | uint32(n)
		}
		// A '/' after a dotted quad makes it a CIDR prefix: 10.0.1.0/24.
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			pstart := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			plen, err := strconv.ParseUint(l.src[pstart:l.pos], 10, 8)
			if err != nil || plen > 32 {
				return fmt.Errorf("filter: bad prefix length in %q at %d", l.src[start:l.pos], start)
			}
			var mask uint32
			if plen > 0 {
				mask = ^uint32(0) << (32 - plen)
			}
			l.toks = append(l.toks, token{
				kind: tokCIDR, text: l.src[start:l.pos],
				val: v & mask, mask: mask, plen: int(plen), pos: start,
			})
			return nil
		}
		l.toks = append(l.toks, token{kind: tokNumber, text: text, val: v, pos: start})
		return nil
	}
	n, err := strconv.ParseUint(text, 0, 32)
	if err != nil {
		return fmt.Errorf("filter: bad number %q at %d", text, start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, val: uint32(n), pos: start})
	return nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokField, text: l.src[start:l.pos], pos: start})
}

type parser struct {
	toks []token
	i    int
}

func parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("filter: trailing input at %d", p.peek().pos)
	}
	return n, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) or() (Node, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOrOr {
		p.next()
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = &boolNode{op: OpOr, l: l, r: r}
	}
	return l, nil
}

func (p *parser) and() (Node, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAndAnd {
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &boolNode{op: OpAnd, l: l, r: r}
	}
	return l, nil
}

func (p *parser) unary() (Node, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &notNode{x: x}, nil
	case tokLParen:
		p.next()
		x, err := p.or()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("filter: missing ) at %d", p.peek().pos)
		}
		p.next()
		return x, nil
	}
	return p.cmp()
}

func (p *parser) cmp() (Node, error) {
	t := p.next()
	if t.kind != tokField {
		return nil, fmt.Errorf("filter: expected field at %d, got %q", t.pos, t.text)
	}
	field, ok := fieldNames[t.text]
	if !ok {
		return nil, fmt.Errorf("filter: unknown field %q at %d", t.text, t.pos)
	}
	proto := fieldProto(t.text)
	if p.peek().kind == tokField && p.peek().text == "in" {
		// CIDR membership: `ip.dst in 10.0.1.0/24`.
		p.next()
		v := p.next()
		if v.kind != tokCIDR {
			return nil, fmt.Errorf("filter: expected CIDR after 'in' at %d, got %q", v.pos, v.text)
		}
		return &inNode{fieldName: t.text, field: field, proto: proto,
			value: v.val, mask: v.mask, prefixLen: v.plen}, nil
	}
	if p.peek().kind != tokOp {
		// Bare field: truthiness (e.g. `ip.frag`).
		return &fieldTruth{fieldName: t.text, field: field, proto: proto}, nil
	}
	opTok := p.next()
	var op Op
	switch opTok.text {
	case "==":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case ">":
		op = OpGt
	case "<=":
		op = OpLe
	case ">=":
		op = OpGe
	default:
		return nil, fmt.Errorf("filter: bad operator %q at %d", opTok.text, opTok.pos)
	}
	v := p.next()
	if v.kind != tokNumber {
		return nil, fmt.Errorf("filter: expected value at %d, got %q", v.pos, v.text)
	}
	return &cmpNode{fieldName: t.text, field: field, proto: proto, op: op, value: v.val}, nil
}
