package filter

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"plexus/internal/mbuf"
	"plexus/internal/view"
)

// mkPacket builds an Ethernet+IP+transport packet with the given fields.
type pktSpec struct {
	etherType uint16
	proto     uint8
	src, dst  view.IP4
	ttl       uint8
	sport     uint16
	dport     uint16
	tcpFlags  uint8
	fragOff   int
	moreFrag  bool
	payload   int
}

func mkPacket(t testing.TB, s pktSpec) *mbuf.Mbuf {
	if s.etherType == 0 {
		s.etherType = view.EtherTypeIPv4
	}
	if s.ttl == 0 {
		s.ttl = 64
	}
	thl := 8
	if s.proto == view.IPProtoTCP {
		thl = 20
	}
	b := make([]byte, view.EthernetHdrLen+20+thl+s.payload)
	eth, _ := view.Ethernet(b)
	eth.SetDst(view.MAC{2, 0, 0, 0, 0, 2})
	eth.SetSrc(view.MAC{2, 0, 0, 0, 0, 1})
	eth.SetEtherType(s.etherType)
	ipb := b[view.EthernetHdrLen:]
	ipb[0] = 0x45
	ipv, _ := view.IPv4(ipb)
	ipv.SetTotalLen(len(ipb))
	flags := uint16(0)
	if s.moreFrag {
		flags = view.IPFlagMF
	}
	ipv.SetFlagsFrag(flags, s.fragOff)
	ipv.SetTTL(s.ttl)
	ipv.SetProto(s.proto)
	ipv.SetSrc(s.src)
	ipv.SetDst(s.dst)
	ipv.ComputeChecksum()
	tb := ipb[20:]
	tb[0], tb[1] = byte(s.sport>>8), byte(s.sport)
	tb[2], tb[3] = byte(s.dport>>8), byte(s.dport)
	if s.proto == view.IPProtoTCP {
		tb[12] = 5 << 4
		tb[13] = s.tcpFlags
	}
	m := mbuf.NewPool().FromBytes(b, 0)
	if t != nil {
		t.Cleanup(m.Free)
	}
	return m
}

func mustParse(t *testing.T, src string, base Base) *Filter {
	t.Helper()
	f, err := Parse(src, base)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func TestBasicMatching(t *testing.T) {
	udp7 := mkPacket(t, pktSpec{proto: view.IPProtoUDP, src: view.IP4{10, 0, 0, 1}, dst: view.IP4{10, 0, 0, 2}, sport: 5000, dport: 7})
	tcp80 := mkPacket(t, pktSpec{proto: view.IPProtoTCP, src: view.IP4{10, 0, 0, 3}, dst: view.IP4{10, 0, 0, 2}, sport: 40000, dport: 80, tcpFlags: view.TCPSyn})

	cases := []struct {
		src       string
		wantUDP7  bool
		wantTCP80 bool
	}{
		{"ether.type == 0x0800", true, true},
		{"ip.proto == 17", true, false},
		{"ip.proto == 6", false, true},
		{"udp.dport == 7", true, false},
		{"tcp.dport == 80", false, true},
		{"tcp.dport == 80 && tcp.flags == 2", false, true},
		{"ip.src == 10.0.0.1", true, false},
		{"ip.src == 10.0.0.1 || ip.src == 10.0.0.3", true, true},
		{"!ip.frag", true, true},
		{"ip.frag", false, false},
		{"udp.dport < 10", true, false},
		{"udp.dport != 7", false, false}, // TCP packet: udp.dport inapplicable ⇒ false
		{"ip.ttl >= 64 && ip.ttl <= 64", true, true},
	}
	for _, c := range cases {
		f := mustParse(t, c.src, BaseEthernet)
		if got := f.Match(udp7); got != c.wantUDP7 {
			t.Errorf("%q on udp7: got %v, want %v", c.src, got, c.wantUDP7)
		}
		if got := f.Match(tcp80); got != c.wantTCP80 {
			t.Errorf("%q on tcp80: got %v, want %v", c.src, got, c.wantTCP80)
		}
	}
}

func TestCIDRMatching(t *testing.T) {
	in24 := mkPacket(t, pktSpec{proto: view.IPProtoUDP, src: view.IP4{10, 0, 1, 7}, dst: view.IP4{10, 0, 1, 200}, dport: 7})
	out24 := mkPacket(t, pktSpec{proto: view.IPProtoUDP, src: view.IP4{10, 0, 2, 7}, dst: view.IP4{192, 168, 0, 1}, dport: 7})

	cases := []struct {
		src       string
		wantIn24  bool
		wantOut24 bool
	}{
		{"ip.dst in 10.0.1.0/24", true, false},
		{"ip.src in 10.0.1.0/24", true, false},
		{"ip.dst in 10.0.0.0/16", true, false},
		{"ip.dst in 0.0.0.0/0", true, true},
		{"ip.dst in 192.168.0.1/32", false, true},
		{"ip.dst in 10.0.1.7/24", true, false}, // host bits masked off
		{"!(ip.dst in 10.0.1.0/24)", false, true},
		{"ip.src in 10.0.0.0/8 && udp.dport == 7", true, true},
	}
	for _, c := range cases {
		f := mustParse(t, c.src, BaseEthernet)
		prog := CompileFilter(f)
		if got := f.Match(in24); got != c.wantIn24 {
			t.Errorf("%q on in24: got %v, want %v", c.src, got, c.wantIn24)
		}
		if got := f.Match(out24); got != c.wantOut24 {
			t.Errorf("%q on out24: got %v, want %v", c.src, got, c.wantOut24)
		}
		// Interpreted backend must agree.
		if got := prog.Run(nil, in24); got != c.wantIn24 {
			t.Errorf("VM %q on in24: got %v, want %v", c.src, got, c.wantIn24)
		}
		if got := prog.Run(nil, out24); got != c.wantOut24 {
			t.Errorf("VM %q on out24: got %v, want %v", c.src, got, c.wantOut24)
		}
	}
}

func TestCIDRParseErrors(t *testing.T) {
	bad := []string{
		"ip.dst in 10.0.1.0/33",
		"ip.dst in 10.0.1.0/",
		"ip.dst in 7",
		"ip.dst in 10.0.1.0",
		"ip.dst in",
		"in 10.0.1.0/24",
	}
	for _, src := range bad {
		if _, err := Parse(src, BaseEthernet); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestMatchBytes(t *testing.T) {
	m := mkPacket(t, pktSpec{proto: view.IPProtoUDP, src: view.IP4{10, 0, 1, 7}, dst: view.IP4{10, 0, 2, 9}, dport: 53})
	f := mustParse(t, "ip.dst in 10.0.2.0/24 && udp.dport == 53", BaseEthernet)
	if !f.MatchBytes(m.Bytes()) {
		t.Fatal("MatchBytes rejected matching buffer")
	}
	p := CompileFilter(f)
	if !p.RunBytes(nil, m.Bytes()) {
		t.Fatal("RunBytes rejected matching buffer")
	}
	if f.MatchBytes(nil) || p.RunBytes(nil, nil) {
		t.Fatal("empty buffer matched")
	}
}

func TestBaseIPFraming(t *testing.T) {
	// A packet that starts at the IP header (as seen on IP.PacketRecv).
	full := mkPacket(t, pktSpec{proto: view.IPProtoUDP, src: view.IP4{10, 0, 0, 1}, dst: view.IP4{10, 0, 0, 2}, dport: 9})
	full.Adj(view.EthernetHdrLen)
	f := mustParse(t, "ip.proto == 17 && udp.dport == 9", BaseIP)
	if !f.Match(full) {
		t.Fatal("BaseIP filter rejected matching packet")
	}
	// Link-layer fields are invisible at BaseIP.
	g := mustParse(t, "ether.type == 0x0800", BaseIP)
	if g.Match(full) {
		t.Fatal("ether.type matched at BaseIP")
	}
}

func TestFragmentTransportFieldsInapplicable(t *testing.T) {
	frag := mkPacket(t, pktSpec{proto: view.IPProtoUDP, dst: view.IP4{10, 0, 0, 2}, dport: 9, fragOff: 1480})
	f := mustParse(t, "udp.dport == 9", BaseEthernet)
	if f.Match(frag) {
		t.Fatal("non-first fragment matched a port filter (ports are not in later fragments)")
	}
	g := mustParse(t, "ip.frag", BaseEthernet)
	if !g.Match(frag) {
		t.Fatal("ip.frag did not match a fragment")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"ip.bogus == 1",
		"ip.proto = 17",
		"ip.proto == ",
		"ip.proto == 17 &&",
		"(ip.proto == 17",
		"ip.proto == 10.0.0.1.2",
		"ip.proto == 99999999999",
		"ip.proto ==== 17",
		"ip.proto == 17 extra",
		"&& ip.proto == 17",
		"ip.proto & 17",
		"ip.proto | 17",
		"ip.src == 10.0.0.999",
		"ip.proto == 17 $",
	}
	for _, src := range bad {
		if _, err := Parse(src, BaseEthernet); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	// && binds tighter than ||.
	p := mkPacket(t, pktSpec{proto: view.IPProtoUDP, src: view.IP4{1, 1, 1, 1}, dst: view.IP4{2, 2, 2, 2}, dport: 9})
	f := mustParse(t, "ip.src == 9.9.9.9 && udp.dport == 9 || ip.src == 1.1.1.1", BaseEthernet)
	if !f.Match(p) {
		t.Fatal("precedence wrong: (a&&b)||c should match via c")
	}
	g := mustParse(t, "ip.src == 9.9.9.9 && (udp.dport == 9 || ip.src == 1.1.1.1)", BaseEthernet)
	if g.Match(p) {
		t.Fatal("parenthesized grouping ignored")
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	src := "ip.proto == 17 && udp.dport == 7"
	f := mustParse(t, src, BaseEthernet)
	if f.String() != src {
		t.Errorf("String() = %q", f.String())
	}
	if !strings.Contains(f.root.String(), "&&") {
		t.Errorf("AST render: %q", f.root.String())
	}
}

// Property: the interpreted VM agrees with the native evaluator on random
// packets and a corpus of expressions.
func TestQuickVMAgreesWithNative(t *testing.T) {
	exprs := []string{
		"ether.type == 0x0800",
		"ip.proto == 17 && udp.dport == 7",
		"ip.proto == 6 && (tcp.dport == 80 || tcp.dport == 8080) && !ip.frag",
		"ip.src == 10.0.0.1 || ip.dst == 10.0.0.1",
		"ip.ttl < 5 || udp.sport >= 1024",
		"!(ip.proto == 6) && ip.len > 40",
		"tcp.flags == 2 || tcp.flags == 18",
		"ip.frag || udp.dport != 9",
	}
	filters := make([]*Filter, len(exprs))
	programs := make([]*Program, len(exprs))
	for i, e := range exprs {
		f, err := Parse(e, BaseEthernet)
		if err != nil {
			t.Fatalf("%q: %v", e, err)
		}
		filters[i] = f
		programs[i] = CompileFilter(f)
	}
	rng := rand.New(rand.NewSource(13))
	f := func(protoPick, dportRaw, sportRaw uint16, srcLow, ttl uint8, frag bool) bool {
		proto := []uint8{view.IPProtoUDP, view.IPProtoTCP, view.IPProtoICMP}[protoPick%3]
		spec := pktSpec{
			proto: proto,
			src:   view.IP4{10, 0, 0, srcLow},
			dst:   view.IP4{10, 0, 0, 2},
			sport: sportRaw,
			dport: dportRaw % 100,
			ttl:   ttl,
		}
		if ttl == 0 {
			spec.ttl = 1
		}
		if frag {
			spec.fragOff = 1480
		}
		m := mkPacket(nil, spec)
		defer m.Free()
		for i := range filters {
			if filters[i].Match(m) != programs[i].Run(nil, m) {
				t.Logf("disagreement on %q", exprs[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestVMDisassemblyAndCost(t *testing.T) {
	p, err := CompileInterpreted("ip.proto == 17 && udp.dport == 7", BaseEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() < 6 {
		t.Errorf("program suspiciously short: %d instrs\n%s", p.Len(), p)
	}
	dis := p.String()
	for _, want := range []string{"LOADF", "PUSH", "CMP", "JZK"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %s:\n%s", want, dis)
		}
	}
}

// Short-circuiting: an AND whose left side fails must not evaluate the right
// side (observable through the instruction count via charged cost).
func TestVMShortCircuit(t *testing.T) {
	m := mkPacket(t, pktSpec{proto: view.IPProtoICMP, dst: view.IP4{10, 0, 0, 2}})
	longAnd, err := CompileInterpreted("ip.proto == 17 && udp.dport == 1 && udp.dport == 2 && udp.dport == 3", BaseEthernet)
	if err != nil {
		t.Fatal(err)
	}
	// Count instructions by running with a cost-tracking shim: use the
	// charge itself.
	cost := runCost(t, longAnd, m)
	full, err := CompileInterpreted("ip.proto == 1", BaseEthernet)
	if err != nil {
		t.Fatal(err)
	}
	base := runCost(t, full, m)
	// The failed AND should execute barely more than a single comparison.
	if cost > 2*base {
		t.Errorf("short-circuit not effective: %v vs single-cmp %v", cost, base)
	}
}
