// Package filter implements a declarative packet-filter language for Plexus
// guards. The paper's guards are packet filters in the sense of Mogul,
// Rashid & Accetta [MRA87], and §3.5 notes that interpreted languages are an
// alternative in-kernel firewall mechanism to typesafe compiled code. This
// package provides both:
//
//   - Compile: a filter expression compiled to a native event.Guard (a Go
//     closure tree) — the typesafe-extension model, costing only the
//     dispatcher's guard-evaluation charge;
//   - CompileInterpreted: the same expression compiled to bytecode for a
//     small stack VM whose execution charges per-instruction simulated time —
//     the interpreted-firewall model the paper contrasts with.
//
// The expression language is boolean logic over packet header fields:
//
//	ether.type == 0x0800 && ip.proto == 17 && (udp.dport == 7 || udp.dport == 9)
//	ip.src == 10.0.0.1 && tcp.dport < 1024 && !ip.frag
//
// Fields resolve against a base framing: BaseEthernet for guards installed
// on Ethernet.PacketRecv (the packet starts at the Ethernet header) and
// BaseIP for guards on IP.PacketRecv and above (the packet starts at the IP
// header). A field that does not apply to the packet at hand (e.g.
// udp.dport of a TCP segment) makes the containing comparison false rather
// than erroring, which is what packet filters want.
package filter

import (
	"fmt"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Base selects the framing the filter's fields resolve against.
type Base int

const (
	// BaseEthernet: the packet begins with an Ethernet header.
	BaseEthernet Base = iota
	// BaseIP: the packet begins with an IPv4 header.
	BaseIP
)

// Field identifies an extractable header field.
type Field int

// The filterable fields.
const (
	FieldEtherType   Field = iota
	FieldEtherDstLow       // low 32 bits of the destination MAC
	FieldIPProto
	FieldIPSrc
	FieldIPDst
	FieldIPTTL
	FieldIPLen
	FieldIPFrag // 1 if the packet is a fragment
	FieldSrcPort
	FieldDstPort
	FieldTCPFlags
	numFields
)

var fieldNames = map[string]Field{
	"ether.type": FieldEtherType,
	"ether.dst":  FieldEtherDstLow,
	"ip.proto":   FieldIPProto,
	"ip.src":     FieldIPSrc,
	"ip.dst":     FieldIPDst,
	"ip.ttl":     FieldIPTTL,
	"ip.len":     FieldIPLen,
	"ip.frag":    FieldIPFrag,
	"udp.sport":  FieldSrcPort,
	"udp.dport":  FieldDstPort,
	"tcp.sport":  FieldSrcPort,
	"tcp.dport":  FieldDstPort,
	"tcp.flags":  FieldTCPFlags,
}

// fieldProto returns the IP protocol a field implies (0 = none): using
// udp.dport implicitly requires ip.proto == UDP.
func fieldProto(name string) uint8 {
	switch name {
	case "udp.sport", "udp.dport":
		return view.IPProtoUDP
	case "tcp.sport", "tcp.dport", "tcp.flags":
		return view.IPProtoTCP
	}
	return 0
}

// extract pulls a field's value from the packet. ok is false when the field
// does not apply (wrong framing, wrong protocol, truncated packet).
func extract(m *mbuf.Mbuf, base Base, f Field, wantProto uint8) (v uint32, ok bool) {
	return extractBytes(m.Bytes(), base, f, wantProto)
}

// extractBytes is extract over a raw byte slice — the form the fabric plane
// uses, where packets in flight are frames or header scratch buffers rather
// than mbufs.
func extractBytes(b []byte, base Base, f Field, wantProto uint8) (v uint32, ok bool) {
	ipOff := 0
	if base == BaseEthernet {
		eth, err := view.Ethernet(b)
		if err != nil {
			return 0, false
		}
		switch f {
		case FieldEtherType:
			return uint32(eth.EtherType()), true
		case FieldEtherDstLow:
			d := eth.Dst()
			return uint32(d[2])<<24 | uint32(d[3])<<16 | uint32(d[4])<<8 | uint32(d[5]), true
		}
		if eth.EtherType() != view.EtherTypeIPv4 {
			return 0, false
		}
		ipOff = view.EthernetHdrLen
	} else if f == FieldEtherType || f == FieldEtherDstLow {
		return 0, false // no link header visible at BaseIP
	}
	if len(b) < ipOff+view.IPv4MinHdrLen {
		return 0, false
	}
	ipv, err := view.IPv4(b[ipOff:])
	if err != nil {
		return 0, false
	}
	switch f {
	case FieldIPProto:
		return uint32(ipv.Proto()), true
	case FieldIPSrc:
		return ipv.Src().Uint32(), true
	case FieldIPDst:
		return ipv.Dst().Uint32(), true
	case FieldIPTTL:
		return uint32(ipv.TTL()), true
	case FieldIPLen:
		return uint32(ipv.TotalLen()), true
	case FieldIPFrag:
		if ipv.MoreFragments() || ipv.FragOffset() > 0 {
			return 1, true
		}
		return 0, true
	}
	// Transport fields: the protocol must match the one the field implies,
	// and only the first fragment carries the transport header.
	if wantProto != 0 && ipv.Proto() != wantProto {
		return 0, false
	}
	if ipv.FragOffset() > 0 {
		return 0, false
	}
	tOff := ipOff + ipv.HdrLen()
	if len(b) < tOff+4 {
		return 0, false
	}
	switch f {
	case FieldSrcPort:
		return uint32(b[tOff])<<8 | uint32(b[tOff+1]), true
	case FieldDstPort:
		return uint32(b[tOff+2])<<8 | uint32(b[tOff+3]), true
	case FieldTCPFlags:
		if len(b) < tOff+14 {
			return 0, false
		}
		return uint32(b[tOff+13] & 0x3f), true
	}
	return 0, false
}

// --- AST ---------------------------------------------------------------------

// Op is a comparison or logical operator.
type Op int

// Operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
	OpIn // CIDR prefix membership
	OpAnd
	OpOr
)

func (o Op) String() string {
	return [...]string{"==", "!=", "<", ">", "<=", ">=", "in", "&&", "||"}[o]
}

// Node is a filter expression node.
type Node interface {
	// eval returns the node's boolean value for the packet.
	eval(b []byte, base Base) bool
	String() string
}

// cmpNode compares a field with a constant.
type cmpNode struct {
	fieldName string
	field     Field
	proto     uint8
	op        Op
	value     uint32
}

func (n *cmpNode) eval(b []byte, base Base) bool {
	v, ok := extractBytes(b, base, n.field, n.proto)
	if !ok {
		return false
	}
	switch n.op {
	case OpEq:
		return v == n.value
	case OpNe:
		return v != n.value
	case OpLt:
		return v < n.value
	case OpGt:
		return v > n.value
	case OpLe:
		return v <= n.value
	case OpGe:
		return v >= n.value
	}
	return false
}

func (n *cmpNode) String() string {
	return fmt.Sprintf("%s %s %d", n.fieldName, n.op, n.value)
}

// inNode tests CIDR prefix membership: `ip.dst in 10.0.1.0/24`. value holds
// the network (already masked) and mask the prefix mask.
type inNode struct {
	fieldName string
	field     Field
	proto     uint8
	value     uint32
	mask      uint32
	prefixLen int
}

func (n *inNode) eval(b []byte, base Base) bool {
	v, ok := extractBytes(b, base, n.field, n.proto)
	return ok && v&n.mask == n.value
}

func (n *inNode) String() string {
	return fmt.Sprintf("%s in %d.%d.%d.%d/%d", n.fieldName,
		n.value>>24, n.value>>16&0xff, n.value>>8&0xff, n.value&0xff, n.prefixLen)
}

// boolNode combines two subexpressions.
type boolNode struct {
	op   Op // OpAnd or OpOr
	l, r Node
}

func (n *boolNode) eval(b []byte, base Base) bool {
	if n.op == OpAnd {
		return n.l.eval(b, base) && n.r.eval(b, base)
	}
	return n.l.eval(b, base) || n.r.eval(b, base)
}

func (n *boolNode) String() string {
	return fmt.Sprintf("(%s %s %s)", n.l, n.op, n.r)
}

// notNode negates a subexpression.
type notNode struct{ x Node }

func (n *notNode) eval(b []byte, base Base) bool { return !n.x.eval(b, base) }
func (n *notNode) String() string                { return "!" + n.x.String() }

// fieldTruth treats a bare field as "nonzero" (e.g. `ip.frag`).
type fieldTruth struct {
	fieldName string
	field     Field
	proto     uint8
}

func (n *fieldTruth) eval(b []byte, base Base) bool {
	v, ok := extractBytes(b, base, n.field, n.proto)
	return ok && v != 0
}

func (n *fieldTruth) String() string { return n.fieldName }

// --- native backend ------------------------------------------------------------

// Filter is a parsed filter expression bound to a framing base.
type Filter struct {
	root Node
	base Base
	src  string
}

// Parse compiles source text into a Filter for the given base framing.
func Parse(src string, base Base) (*Filter, error) {
	root, err := parse(src)
	if err != nil {
		return nil, err
	}
	return &Filter{root: root, base: base, src: src}, nil
}

// String returns the original source.
func (f *Filter) String() string { return f.src }

// Match evaluates the filter against a packet.
func (f *Filter) Match(m *mbuf.Mbuf) bool { return f.root.eval(m.Bytes(), f.base) }

// MatchBytes evaluates the filter against a raw packet buffer — used by the
// fabric plane, where packets are wire frames or header scratch rather than
// mbufs.
func (f *Filter) MatchBytes(b []byte) bool { return f.root.eval(b, f.base) }

// Guard returns the filter as a native event.Guard — the typesafe-extension
// model: compiled code, charged only the dispatcher's guard cost.
func (f *Filter) Guard() func(t *sim.Task, m *mbuf.Mbuf) bool {
	return func(t *sim.Task, m *mbuf.Mbuf) bool {
		return f.Match(m)
	}
}
