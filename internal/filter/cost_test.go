package filter

import (
	"testing"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
)

// runCost executes the program in a simulated task and returns the charged
// interpreter time.
func runCost(t *testing.T, p *Program, m *mbuf.Mbuf) sim.Time {
	t.Helper()
	s := sim.New(1)
	cpu := sim.NewCPU(s, "cpu")
	var charged sim.Time
	cpu.Submit(sim.PrioKernel, "filter", func(task *sim.Task) {
		p.Run(task, m)
		charged = task.Charged()
	})
	s.Run()
	return charged
}

func TestInterpretedCostCharged(t *testing.T) {
	m := mkPacket(t, pktSpec{proto: 17, dst: [4]byte{10, 0, 0, 2}, dport: 7})
	p, err := CompileInterpreted("ip.proto == 17 && udp.dport == 7", BaseEthernet)
	if err != nil {
		t.Fatal(err)
	}
	cost := runCost(t, p, m)
	if cost <= 0 {
		t.Fatal("interpreter charged nothing")
	}
	// All instructions execute on a full match: cost = len × per-instr.
	if want := sim.Time(p.Len()) * p.InstrCost; cost != want {
		t.Errorf("cost = %v, want %v (%d instrs)", cost, want, p.Len())
	}
}

func TestNativeGuardChargesNothingItself(t *testing.T) {
	m := mkPacket(t, pktSpec{proto: 17, dst: [4]byte{10, 0, 0, 2}, dport: 7})
	f, err := Parse("ip.proto == 17 && udp.dport == 7", BaseEthernet)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	cpu := sim.NewCPU(s, "cpu")
	var charged sim.Time
	guard := f.Guard()
	cpu.Submit(sim.PrioKernel, "guard", func(task *sim.Task) {
		if !guard(task, m) {
			t.Error("guard rejected matching packet")
		}
		charged = task.Charged()
	})
	s.Run()
	// The native guard costs only what the dispatcher charges for guard
	// evaluation; the closure itself is free (compiled code).
	if charged != 0 {
		t.Errorf("native guard charged %v", charged)
	}
}
