// Watchdogs: threshold and derivative rules evaluated over live series on
// every tick. A rule that holds for its full window raises one typed Alarm
// per episode — the alarm carries the watched series' full key (host plus
// flow labels) and the simulated timestamp, so bench rows and the chaos soak
// can assert both on "no alarms on the clean path" and on "exactly this flow
// stalled at exactly this time".
package telemetry

import "plexus/internal/sim"

// RuleKind classifies a watchdog rule.
type RuleKind uint8

const (
	// RuleNoProgress fires when the watched value has not changed for the
	// full window while the guard series is nonzero — e.g. a TCP
	// connection's snd.una frozen while bytes remain in flight.
	RuleNoProgress RuleKind = iota
	// RulePinnedAtCap fires when the watched value has sat at or above
	// Threshold for the full window — e.g. a switch port queue pinned at
	// capacity.
	RulePinnedAtCap
	// RuleNearCap fires the moment the watched value reaches Pct percent of
	// Threshold — e.g. pool high-water within 5% of the configured cap.
	RuleNearCap
)

func (k RuleKind) String() string {
	switch k {
	case RuleNoProgress:
		return "no-progress"
	case RulePinnedAtCap:
		return "pinned-at-cap"
	case RuleNearCap:
		return "near-cap"
	}
	return "unknown"
}

// Rule is one watchdog: a condition over a live series plus how long it must
// hold. Rules are registered at attach time and evaluated on every tick.
type Rule struct {
	// Name identifies the rule in alarms (e.g. "tcp.no_progress").
	Name string
	Kind RuleKind
	// Watch is the series the condition reads.
	Watch *Series
	// Guard arms RuleNoProgress only while its last value is nonzero;
	// nil means always armed.
	Guard *Series
	// Threshold is the capacity for RulePinnedAtCap and RuleNearCap.
	Threshold int64
	// Pct is the RuleNearCap percentage (e.g. 95 for "within 5% of cap").
	Pct int64
	// Window is how long the condition must hold for RuleNoProgress and
	// RulePinnedAtCap.
	Window sim.Time

	// Episode state.
	since    sim.Time
	holding  bool
	lastVal  int64
	haveLast bool
	fired    bool
}

// Alarm is one raised watchdog episode.
type Alarm struct {
	// At is the simulated time the rule's window lapsed (or, for
	// RuleNearCap, the tick the threshold was crossed).
	At sim.Time `json:"at"`
	// Since is when the offending condition began holding.
	Since sim.Time `json:"since"`
	// Rule and Kind identify the watchdog.
	Rule string   `json:"rule"`
	Kind RuleKind `json:"kind"`
	// Series is the watched series' full key — name, host, and flow labels.
	Series string `json:"series"`
	// Value is the watched value at the time of the alarm.
	Value int64 `json:"value"`
}

// Watch registers a rule. Registration is a setup-time operation; evaluation
// allocates nothing.
func (e *Engine) Watch(r Rule) *Rule {
	if r.Watch == nil {
		panic("telemetry: rule with no watched series")
	}
	rule := new(Rule)
	*rule = r
	e.rules = append(e.rules, rule)
	return rule
}

// Alarms returns the retained alarms in raise order (bounded by AlarmCap).
func (e *Engine) Alarms() []Alarm { return e.alarms }

// AlarmTotal reports how many alarms were ever raised (>= retained).
func (e *Engine) AlarmTotal() uint64 { return e.alarmTotal }

// OnAlarm installs a callback invoked synchronously on every raise — the
// chaos soak uses it to fail fast. The callback must not allocate if the
// zero-alloc pin matters to the caller.
func (e *Engine) OnAlarm(fn func(Alarm)) { e.onAlarm = fn }

func (e *Engine) raise(r *Rule, now sim.Time, val int64) {
	r.fired = true
	a := Alarm{
		At:     now,
		Since:  r.since,
		Rule:   r.Name,
		Kind:   r.Kind,
		Series: r.Watch.key,
		Value:  val,
	}
	e.alarmTotal++
	if len(e.alarms) < cap(e.alarms) {
		e.alarms = append(e.alarms, a)
	}
	if e.onAlarm != nil {
		e.onAlarm(a)
	}
}

// evalRules advances every rule's episode state by one tick.
func (e *Engine) evalRules(now sim.Time) {
	for _, r := range e.rules {
		if !r.Watch.seen {
			continue
		}
		v := r.Watch.lastVal
		switch r.Kind {
		case RuleNoProgress:
			armed := r.Guard == nil || (r.Guard.seen && r.Guard.lastVal != 0)
			if !r.haveLast || v != r.lastVal || !armed {
				// Progress (or disarmed): start a fresh episode.
				r.lastVal, r.haveLast = v, true
				r.since = now
				r.fired = false
				continue
			}
			if !r.fired && now-r.since >= r.Window {
				e.raise(r, now, v)
			}
		case RulePinnedAtCap:
			if v < r.Threshold {
				r.holding = false
				r.fired = false
				continue
			}
			if !r.holding {
				r.holding = true
				r.since = now
			}
			if !r.fired && now-r.since >= r.Window {
				e.raise(r, now, v)
			}
		case RuleNearCap:
			if r.Threshold <= 0 {
				continue
			}
			if v*100 >= r.Threshold*r.Pct {
				if !r.fired {
					r.since = now
					e.raise(r, now, v)
				}
			} else {
				r.fired = false
			}
		}
	}
}
