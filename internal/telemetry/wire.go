// Probe wiring: Attach* helpers that connect stack components to an Engine.
// Each helper creates its series and (optionally) watchdog rules up front,
// builds any visitor closures once, and registers a probe whose per-tick
// work is pure field reads plus ring pushes — nothing on the sampling path
// allocates.
package telemetry

import (
	"fmt"
	"strconv"

	"plexus/internal/fabric"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/tcp"
)

// AttachPool samples the host's mbuf gauge: live mbufs/clusters and their
// high-water marks. If capMbufs > 0, a near-cap watchdog fires the moment
// the high-water mark reaches 95% of it.
func AttachPool(e *Engine, host string, p *mbuf.Pool, capMbufs int64) {
	inUse := e.Series("mbuf.in_use", host, "")
	clusters := e.Series("mbuf.clusters_in_use", host, "")
	hiWater := e.Series("mbuf.high_water", host, "")
	e.Register("mbuf:"+host, func(s *Sample) {
		g := p.Gauge()
		s.Observe(inUse, g.InUse)
		s.Observe(clusters, g.InUseClusters)
		s.Observe(hiWater, g.HighWater)
	})
	if capMbufs > 0 {
		e.Watch(Rule{
			Name: "mbuf.near_cap", Kind: RuleNearCap,
			Watch: hiWater, Threshold: capMbufs, Pct: 95,
		})
	}
}

// AttachLink samples one cable: cumulative frames, bytes, busy
// (serialization) time, and drops from every cause the link distinguishes.
// Utilization over any window is the busy-time delta divided by the window.
func AttachLink(e *Engine, name string, l *netdev.Link) {
	frames := e.Series("link.tx_frames", name, "")
	bytes := e.Series("link.tx_bytes", name, "")
	busy := e.Series("link.busy_ns", name, "")
	drops := e.Series("link.drops", name, "")
	e.Register("link:"+name, func(s *Sample) {
		s.Observe(frames, int64(l.Frames()))
		s.Observe(bytes, int64(l.Bytes()))
		s.Observe(busy, int64(l.BusyTime()))
		s.Observe(drops, int64(l.Dropped()+l.DownDrops()))
	})
}

// AttachSwitch samples every port's output-queue depth, tail drops, and
// transmitted bytes. If pinWindow > 0, a pinned-at-cap watchdog per port
// fires when the queue has sat at capacity for the full window.
func AttachSwitch(e *Engine, sw *netdev.Switch, pinWindow sim.Time) {
	ports := sw.Ports()
	depth := make([]*Series, len(ports))
	drops := make([]*Series, len(ports))
	txb := make([]*Series, len(ports))
	for i, p := range ports {
		lbl := "port=" + strconv.Itoa(p.ID())
		depth[i] = e.Series("switch.queue_depth", sw.Name(), lbl)
		drops[i] = e.Series("switch.drops", sw.Name(), lbl)
		txb[i] = e.Series("switch.tx_bytes", sw.Name(), lbl)
		if pinWindow > 0 {
			e.Watch(Rule{
				Name: "switch.queue_pinned", Kind: RulePinnedAtCap,
				Watch: depth[i], Threshold: int64(sw.QueueCap()), Window: pinWindow,
			})
		}
	}
	e.Register("switch:"+sw.Name(), func(s *Sample) {
		now := s.At()
		for i, p := range ports {
			s.Observe(depth[i], int64(p.QueueDepth(now)))
			st := p.Stats()
			s.Observe(drops[i], int64(st.Drops))
			s.Observe(txb[i], int64(st.TxBytes))
		}
	})
}

// AttachSimQueue samples the simulator's event-queue length — per shard, the
// series the sharded scale experiments watch for imbalance.
func AttachSimQueue(e *Engine, name string, s *sim.Sim) {
	depth := e.Series("sim.queue_depth", name, "")
	e.Register("simq:"+name, func(sm *Sample) {
		sm.Observe(depth, int64(s.QueueLen()))
	})
}

// AttachNAT samples a NAT table's occupancy and exhaustion drops, with a
// near-cap watchdog at 95% of the table bound.
func AttachNAT(e *Engine, host, name string, n *fabric.NAT) {
	lbl := "nat=" + name
	occ := e.Series("nat.occupancy", host, lbl)
	exh := e.Series("nat.exhausted", host, lbl)
	e.Register("nat:"+host+":"+name, func(s *Sample) {
		s.Observe(occ, int64(n.Occupancy()))
		s.Observe(exh, int64(n.Exhausted()))
	})
	if c := n.Cap(); c > 0 {
		e.Watch(Rule{
			Name: "nat.near_cap", Kind: RuleNearCap,
			Watch: occ, Threshold: int64(c), Pct: 95,
		})
	}
}

// pipeProbe carries the per-tick visitor state for AttachPipeline so the
// EachRule closure is built once at attach time.
type pipeProbe struct {
	series []*Series
	s      *Sample
	i      int
}

// AttachPipeline samples per-rule hit counters across the pipeline's tables.
// The rule set is fixed at install time; rules added later are not sampled.
func AttachPipeline(e *Engine, host string, pl *fabric.Pipeline) {
	pp := &pipeProbe{}
	pl.EachRule(func(table, rule string, _, _ uint64, _ bool) {
		pp.series = append(pp.series, e.Series("fabric.rule_hits", host, "table="+table+",rule="+rule))
	})
	visit := func(_, _ string, hits, _ uint64, _ bool) {
		if pp.i < len(pp.series) {
			pp.s.Observe(pp.series[pp.i], int64(hits))
		}
		pp.i++
	}
	e.Register("fabric:"+host, func(s *Sample) {
		pp.s, pp.i = s, 0
		pl.EachRule(visit)
	})
}

// TCPOptions configures AttachTCP.
type TCPOptions struct {
	// StallWindow, when nonzero, arms a per-connection no-progress
	// watchdog: an alarm fires when AckedBytes has not advanced for the
	// full window while bytes remain in flight — the "no forward progress
	// for N·RTO" rule, with the window chosen by the caller.
	StallWindow sim.Time
}

// tcpConnSeries is the per-connection probe tag: series handles cached on
// the Conn so steady-state sampling is map-free and allocation-free.
type tcpConnSeries struct {
	cwnd, ssthresh, sndWnd, rcvWnd *Series
	inflight, acked                *Series
	srtt, rto                      *Series
	rexmits                        *Series
	recovery, sacked               *Series
	gen                            uint64 // last tick this connection was seen
}

// tcpProbe carries the per-tick visitor state for AttachTCP.
type tcpProbe struct {
	eng   *Engine
	mgr   *tcp.Manager
	opts  TCPOptions
	s     *Sample
	gen   uint64
	conns []*tcpConnSeries
}

func (tp *tcpProbe) visit(c *tcp.Conn) {
	t, ok := c.ProbeTag().(*tcpConnSeries)
	if !ok {
		// First sight of this connection: build and cache its series (and
		// stall rule). The one allocation per connection, off steady state.
		host := tp.mgr.HostName()
		raddr, rport := c.RemoteAddr()
		lbl := fmt.Sprintf("conn=%d-%d.%d.%d.%d:%d",
			c.LocalPort(), raddr[0], raddr[1], raddr[2], raddr[3], rport)
		t = &tcpConnSeries{
			cwnd:     tp.eng.Series("tcp.cwnd", host, lbl),
			ssthresh: tp.eng.Series("tcp.ssthresh", host, lbl),
			sndWnd:   tp.eng.Series("tcp.snd_wnd", host, lbl),
			rcvWnd:   tp.eng.Series("tcp.rcv_wnd", host, lbl),
			inflight: tp.eng.Series("tcp.bytes_in_flight", host, lbl),
			acked:    tp.eng.Series("tcp.acked_bytes", host, lbl),
			srtt:     tp.eng.Series("tcp.srtt_ns", host, lbl),
			rto:      tp.eng.Series("tcp.rto_ns", host, lbl),
			rexmits:  tp.eng.Series("tcp.retransmits", host, lbl),
			recovery: tp.eng.Series("tcp.recovery_state", host, lbl),
			sacked:   tp.eng.Series("tcp.sacked_bytes", host, lbl),
		}
		c.SetProbeTag(t)
		tp.conns = append(tp.conns, t)
		if tp.opts.StallWindow > 0 {
			tp.eng.Watch(Rule{
				Name: "tcp.no_progress", Kind: RuleNoProgress,
				Watch: t.acked, Guard: t.inflight, Window: tp.opts.StallWindow,
			})
		}
	}
	t.gen = tp.gen
	s := tp.s
	s.Observe(t.cwnd, int64(c.Cwnd()))
	s.Observe(t.ssthresh, int64(c.Ssthresh()))
	s.Observe(t.sndWnd, int64(c.SndWnd()))
	s.Observe(t.rcvWnd, int64(c.RcvWnd()))
	s.Observe(t.inflight, int64(c.BytesInFlight()))
	s.Observe(t.acked, int64(c.AckedBytes()))
	s.Observe(t.srtt, int64(c.SRTT()))
	s.Observe(t.rto, int64(c.RTO()))
	s.Observe(t.rexmits, int64(c.Stats().Retransmits))
	s.Observe(t.recovery, int64(c.Recovery()))
	s.Observe(t.sacked, int64(c.SackedBytes()))
}

// sweep retires connections that left the manager's list since the last
// tick (closed, reset, or timed out). A connection can disappear between
// samples with its bytes-in-flight series frozen at a nonzero value — the
// final FIN, say — which would hold the no-progress guard armed forever;
// one final zero marks the flight as drained and disarms the watchdog.
func (tp *tcpProbe) sweep(s *Sample) {
	for i := len(tp.conns) - 1; i >= 0; i-- {
		t := tp.conns[i]
		if t.gen == tp.gen {
			continue
		}
		s.Observe(t.inflight, 0)
		tp.conns[i] = tp.conns[len(tp.conns)-1]
		tp.conns = tp.conns[:len(tp.conns)-1]
	}
}

// AttachTCP samples every live connection's windows, bytes in flight,
// forward progress, RTT estimator, and retransmit count — the sampling hook
// beside the setState choke point. Connections are visited in creation
// order (deterministic) and each carries its cached series handles, so a
// tick over N established connections allocates nothing.
func AttachTCP(e *Engine, m *tcp.Manager, opts TCPOptions) {
	tp := &tcpProbe{eng: e, mgr: m, opts: opts}
	e.Register("tcp:"+m.HostName(), func(s *Sample) {
		tp.s = s
		tp.gen++
		m.EachConn(tp.visit)
		tp.sweep(s)
	})
}
