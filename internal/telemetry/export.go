// Exporters. All deterministic: series are emitted in sorted key order,
// points oldest first, numbers rendered by strconv — two identical runs (at
// any -parallel / -shards setting) produce byte-identical files. JSONL is
// hand-rolled append encoding like the audit plane's JSONLSink; the
// Prometheus writer emits the standard text exposition format for the future
// overlay bridge to scrape.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"

	"plexus/internal/sim"
)

// sortedSeries returns the engine's series ordered by key.
func (e *Engine) sortedSeries() []*Series {
	out := make([]*Series, len(e.series))
	copy(out, e.series)
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// WriteJSONL dumps every retained point, one JSON object per line:
//
//	{"series":"tcp.cwnd","host":"a","labels":"conn=...","at":12000000,"v":2920}
func (e *Engine) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	var pts []Point
	for _, se := range e.sortedSeries() {
		pts = se.Points(pts[:0])
		for _, p := range pts {
			buf = buf[:0]
			buf = append(buf, `{"series":`...)
			buf = strconv.AppendQuote(buf, se.name)
			buf = append(buf, `,"host":`...)
			buf = strconv.AppendQuote(buf, se.host)
			if se.labels != "" {
				buf = append(buf, `,"labels":`...)
				buf = strconv.AppendQuote(buf, se.labels)
			}
			buf = append(buf, `,"at":`...)
			buf = strconv.AppendInt(buf, int64(p.At), 10)
			buf = append(buf, `,"v":`...)
			buf = strconv.AppendInt(buf, p.Val, 10)
			buf = append(buf, "}\n"...)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteCSV dumps every retained point as series,host,labels,at_ns,value.
func (e *Engine) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("series,host,labels,at_ns,value\n"); err != nil {
		return err
	}
	var buf []byte
	var pts []Point
	for _, se := range e.sortedSeries() {
		pts = se.Points(pts[:0])
		for _, p := range pts {
			buf = buf[:0]
			buf = append(buf, se.name...)
			buf = append(buf, ',')
			buf = append(buf, se.host...)
			buf = append(buf, ',')
			// Labels hold commas; CSV-quote them.
			if se.labels != "" {
				buf = append(buf, '"')
				buf = append(buf, se.labels...)
				buf = append(buf, '"')
			}
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(p.At), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, p.Val, 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WritePromText emits the last value of every series in the Prometheus text
// exposition format, gauges named plexus_<metric> with dots folded to
// underscores, timestamped in simulated milliseconds:
//
//	# TYPE plexus_tcp_cwnd gauge
//	plexus_tcp_cwnd{host="a",conn="..."} 2920 12
func (e *Engine) WritePromText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, se := range e.sortedSeries() {
		if !se.seen {
			continue
		}
		prom := "plexus_" + strings.NewReplacer(".", "_", "-", "_").Replace(se.name)
		if prom != lastName {
			if _, err := fmt.Fprintf(bw, "# TYPE %s gauge\n", prom); err != nil {
				return err
			}
			lastName = prom
		}
		lbl := `host="` + se.host + `"`
		if se.labels != "" {
			for _, kv := range strings.Split(se.labels, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					continue
				}
				lbl += `,` + k + `="` + v + `"`
			}
		}
		if _, err := fmt.Fprintf(bw, "%s{%s} %d %d\n", prom, lbl, se.lastVal, int64(se.lastAt)/int64(sim.Millisecond)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Digest folds every series key and every retained point into one FNV-1a
// hash — a compact determinism witness for bench rows: byte-identical series
// content yields an identical digest at any -parallel or -shards setting.
func (e *Engine) Digest() uint64 {
	h := fnv.New64a()
	var num [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			num[i] = byte(v >> (8 * i))
		}
		h.Write(num[:])
	}
	var pts []Point
	for _, se := range e.sortedSeries() {
		io.WriteString(h, se.key)
		pts = se.Points(pts[:0])
		for _, p := range pts {
			put(int64(p.At))
			put(p.Val)
		}
	}
	return h.Sum64()
}

// JSONLPoint is the parsed form of one WriteJSONL line; plexus-top reads
// dumps back through it.
type JSONLPoint struct {
	Series string   `json:"series"`
	Host   string   `json:"host"`
	Labels string   `json:"labels"`
	At     sim.Time `json:"at"`
	V      int64    `json:"v"`
}

// ReadJSONL parses a WriteJSONL dump back into points, in file order.
func ReadJSONL(r io.Reader) ([]JSONLPoint, error) {
	var out []JSONLPoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var p JSONLPoint
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			return nil, fmt.Errorf("telemetry: bad JSONL line %q: %w", line, err)
		}
		out = append(out, p)
	}
	return out, sc.Err()
}
