// Package telemetry is the deterministic time-series plane: a simulated-time
// sampling engine that fires named probes on a fixed interval and appends
// their observations into preallocated overwrite-oldest series rings.
//
// The design follows the flight recorder (internal/stats) discipline:
//
//   - Everything is preallocated at attach time. A tick — fire every probe,
//     push every point, evaluate every watchdog rule, reschedule — allocates
//     nothing, so the zero-alloc steady-state invariant holds with sampling
//     enabled (pinned by TestUDPEchoSteadyStateAllocsWithTelemetry).
//   - Timestamps are simulated time, probes run in registration order, and
//     registration order is fixed by topology construction, so two runs of
//     the same scenario produce byte-identical exports at any -parallel or
//     -shards setting. Wall-clock diagnostics (sim.Engine barrier waits)
//     deliberately live outside this plane.
//   - Series rings overwrite oldest: a long soak keeps the most recent
//     window (plus cumulative Total/Last), bounding memory like the hop and
//     sample rings.
package telemetry

import (
	"plexus/internal/sim"
)

// Point is one observation: a simulated timestamp and an integer value.
// Values are int64 raw units (bytes, segments, nanoseconds, queue slots);
// rates and percentages are derived at export/render time so the recorded
// stream stays exact and mergeable.
type Point struct {
	At  sim.Time
	Val int64
}

// Series is one named time series backed by an overwrite-oldest ring.
type Series struct {
	name   string
	host   string
	labels string // pre-rendered "k=v,k=v" extras, may be ""
	key    string // full identity: name{host=h,labels}

	points []Point
	next   int
	total  uint64

	lastAt  sim.Time
	lastVal int64
	seen    bool
}

// Name returns the metric name (e.g. "tcp.cwnd").
func (se *Series) Name() string { return se.name }

// Host returns the host label.
func (se *Series) Host() string { return se.host }

// Labels returns the pre-rendered extra labels ("" if none).
func (se *Series) Labels() string { return se.labels }

// Key returns the full series identity — name plus every label — which is
// also the flow identity a watchdog Alarm carries.
func (se *Series) Key() string { return se.key }

// Total reports how many points were ever pushed (>= retained).
func (se *Series) Total() uint64 { return se.total }

// Last returns the most recent observation.
func (se *Series) Last() (at sim.Time, val int64, ok bool) {
	return se.lastAt, se.lastVal, se.seen
}

func (se *Series) push(at sim.Time, v int64) {
	se.points[se.next] = Point{At: at, Val: v}
	se.next++
	if se.next == len(se.points) {
		se.next = 0
	}
	se.total++
	se.lastAt, se.lastVal, se.seen = at, v, true
}

// Points appends the retained window, oldest first, to buf and returns it.
func (se *Series) Points(buf []Point) []Point {
	n := len(se.points)
	if se.total < uint64(n) {
		return append(buf, se.points[:se.total]...)
	}
	buf = append(buf, se.points[se.next:]...)
	return append(buf, se.points[:se.next]...)
}

// Retained reports how many points the ring currently holds.
func (se *Series) Retained() int {
	if se.total < uint64(len(se.points)) {
		return int(se.total)
	}
	return len(se.points)
}

// Sample is the context handed to every probe on each tick.
type Sample struct {
	at sim.Time
}

// At returns the tick's simulated timestamp.
func (s *Sample) At() sim.Time { return s.at }

// Observe appends v to se at the tick's timestamp.
func (s *Sample) Observe(se *Series, v int64) { se.push(s.at, v) }

// probe is one registered sampling callback.
type probe struct {
	name string
	fn   func(*Sample)
}

// Options configures an Engine.
type Options struct {
	// Interval is the sampling period; 0 means 1ms.
	Interval sim.Time
	// SeriesCap is the per-series ring capacity in points; 0 means 2048.
	SeriesCap int
	// AlarmCap bounds retained watchdog alarms; 0 means 64.
	AlarmCap int
}

// DefaultInterval is the sampling period when Options.Interval is zero.
const DefaultInterval = sim.Millisecond

// Engine owns the probe registry, every series ring, and the watchdog rules
// for one simulator (one shard in a sharded topology).
type Engine struct {
	sim       *sim.Sim
	interval  sim.Time
	seriesCap int

	probes []probe
	series []*Series
	byKey  map[string]*Series

	rules      []*Rule
	alarms     []Alarm
	alarmTotal uint64
	onAlarm    func(Alarm)

	sample  Sample
	running bool
	ticks   uint64
}

// New creates an engine bound to s. Nothing fires until Start.
func New(s *sim.Sim, opts Options) *Engine {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.SeriesCap <= 0 {
		opts.SeriesCap = 2048
	}
	if opts.AlarmCap <= 0 {
		opts.AlarmCap = 64
	}
	return &Engine{
		sim:       s,
		interval:  opts.Interval,
		seriesCap: opts.SeriesCap,
		byKey:     make(map[string]*Series),
		alarms:    make([]Alarm, 0, opts.AlarmCap),
	}
}

// Sim returns the simulator the engine samples.
func (e *Engine) Sim() *sim.Sim { return e.sim }

// Interval returns the sampling period.
func (e *Engine) Interval() sim.Time { return e.interval }

// Ticks reports how many sampling rounds have fired.
func (e *Engine) Ticks() uint64 { return e.ticks }

// Register adds a named probe. Probes fire in registration order on every
// tick; name is diagnostic only. Registration is a setup-time operation.
func (e *Engine) Register(name string, fn func(*Sample)) {
	e.probes = append(e.probes, probe{name: name, fn: fn})
}

// Series returns (creating if needed) the series for name on host with the
// given pre-rendered extra labels ("k=v,k=v" or ""). Creation allocates;
// callers cache the handle at attach time so the sampling path does not.
func (e *Engine) Series(name, host, labels string) *Series {
	key := name + "{host=" + host
	if labels != "" {
		key += "," + labels
	}
	key += "}"
	if se := e.byKey[key]; se != nil {
		return se
	}
	se := &Series{
		name:   name,
		host:   host,
		labels: labels,
		key:    key,
		points: make([]Point, e.seriesCap),
	}
	e.series = append(e.series, se)
	e.byKey[key] = se
	return se
}

// AllSeries returns every series in creation order.
func (e *Engine) AllSeries() []*Series { return e.series }

// tickFn is the package-level callback AtArg schedules: with the engine as
// the pooled argument, periodic rescheduling never allocates a closure.
func tickFn(arg any) {
	e := arg.(*Engine)
	if !e.running {
		return
	}
	e.Tick()
	e.sim.AfterArg(e.interval, "telemetry.tick", tickFn, e)
}

// Start begins periodic sampling: the first tick fires one interval from
// now, then every interval after.
func (e *Engine) Start() {
	if e.running {
		return
	}
	e.running = true
	e.sim.AfterArg(e.interval, "telemetry.tick", tickFn, e)
}

// Stop halts periodic sampling after the currently scheduled tick lapses.
func (e *Engine) Stop() { e.running = false }

// Tick runs one sampling round at the current simulated time: every probe in
// registration order, then every watchdog rule. Steady state allocates
// nothing. Exposed so tests and post-run code can force a final sample.
func (e *Engine) Tick() {
	e.ticks++
	e.sample.at = e.sim.Now()
	for i := range e.probes {
		e.probes[i].fn(&e.sample)
	}
	e.evalRules(e.sample.at)
}
