package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"plexus/internal/sim"
)

// counterSource is a test stand-in for an instrumented component.
type counterSource struct{ v int64 }

func newTestEngine(interval sim.Time, cap int) (*sim.Sim, *Engine, *counterSource) {
	s := sim.New(1)
	e := New(s, Options{Interval: interval, SeriesCap: cap})
	src := &counterSource{}
	se := e.Series("test.counter", "a", "")
	e.Register("test", func(sm *Sample) { sm.Observe(se, src.v) })
	return s, e, src
}

func TestEngineSamplesOnInterval(t *testing.T) {
	s, e, src := newTestEngine(sim.Millisecond, 0)
	e.Start()
	src.v = 7
	s.RunUntil(10 * sim.Millisecond)
	if e.Ticks() != 10 {
		t.Fatalf("ticks = %d, want 10", e.Ticks())
	}
	se := e.Series("test.counter", "a", "")
	if se.Total() != 10 {
		t.Fatalf("points = %d, want 10", se.Total())
	}
	at, v, ok := se.Last()
	if !ok || v != 7 || at != 10*sim.Millisecond {
		t.Fatalf("last = (%d, %d, %v)", at, v, ok)
	}
	pts := se.Points(nil)
	for i, p := range pts {
		if p.At != sim.Time(i+1)*sim.Millisecond || p.Val != 7 {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	e.Stop()
	s.RunUntil(20 * sim.Millisecond)
	if e.Ticks() != 10 {
		t.Fatalf("ticks after Stop = %d, want 10", e.Ticks())
	}
}

func TestSeriesRingOverwritesOldest(t *testing.T) {
	s, e, src := newTestEngine(sim.Millisecond, 4)
	e.Start()
	var want []int64
	for i := 1; i <= 10; i++ {
		src.v = int64(i)
		s.RunUntil(sim.Time(i) * sim.Millisecond)
		if i > 6 {
			want = append(want, int64(i))
		}
	}
	se := e.Series("test.counter", "a", "")
	if se.Retained() != 4 || se.Total() != 10 {
		t.Fatalf("retained=%d total=%d", se.Retained(), se.Total())
	}
	pts := se.Points(nil)
	for i, p := range pts {
		if p.Val != want[i] {
			t.Fatalf("ring window %v, want %v", pts, want)
		}
	}
}

func TestTickIsZeroAlloc(t *testing.T) {
	s, e, src := newTestEngine(sim.Millisecond, 64)
	// A second series plus one rule of each kind, so the pinned path covers
	// rule evaluation too.
	se2 := e.Series("test.gauge", "a", "k=v")
	e.Register("test2", func(sm *Sample) { sm.Observe(se2, src.v*2) })
	e.Watch(Rule{Name: "np", Kind: RuleNoProgress, Watch: se2, Window: 5 * sim.Millisecond})
	e.Watch(Rule{Name: "pin", Kind: RulePinnedAtCap, Watch: se2, Threshold: 1 << 40, Window: sim.Millisecond})
	e.Watch(Rule{Name: "near", Kind: RuleNearCap, Watch: se2, Threshold: 1 << 40, Pct: 95})
	e.Start()
	s.RunUntil(100 * sim.Millisecond) // warm: wrap the ring, settle episodes
	if allocs := testing.AllocsPerRun(200, func() { e.Tick() }); allocs != 0 {
		t.Fatalf("Tick allocates %.1f/op in steady state", allocs)
	}
}

func TestWatchdogNoProgress(t *testing.T) {
	s := sim.New(1)
	e := New(s, Options{Interval: sim.Millisecond})
	acked := e.Series("tcp.acked_bytes", "b", "conn=80-10.0.0.1:5001")
	inflight := e.Series("tcp.bytes_in_flight", "b", "conn=80-10.0.0.1:5001")
	var ack, fly int64
	e.Register("tcp", func(sm *Sample) {
		sm.Observe(acked, ack)
		sm.Observe(inflight, fly)
	})
	e.Watch(Rule{
		Name: "tcp.no_progress", Kind: RuleNoProgress,
		Watch: acked, Guard: inflight, Window: 10 * sim.Millisecond,
	})
	e.Start()

	// Progressing: no alarm.
	fly = 1000
	for i := 1; i <= 20; i++ {
		ack = int64(i) * 100
		s.RunUntil(sim.Time(i) * sim.Millisecond)
	}
	if e.AlarmTotal() != 0 {
		t.Fatalf("alarm during progress: %+v", e.Alarms())
	}
	// Frozen with bytes in flight: exactly one alarm when the window lapses.
	s.RunUntil(40 * sim.Millisecond)
	if e.AlarmTotal() != 1 {
		t.Fatalf("alarms = %d, want 1 (%+v)", e.AlarmTotal(), e.Alarms())
	}
	a := e.Alarms()[0]
	if a.Rule != "tcp.no_progress" || a.Kind != RuleNoProgress {
		t.Fatalf("alarm identity: %+v", a)
	}
	if !strings.Contains(a.Series, "host=b") || !strings.Contains(a.Series, "conn=80-10.0.0.1:5001") {
		t.Fatalf("alarm series lacks flow identity: %q", a.Series)
	}
	// Condition began at the last progress tick (20ms) and lapsed 10ms later.
	if a.Since != 20*sim.Millisecond || a.At != 30*sim.Millisecond {
		t.Fatalf("alarm window: since=%d at=%d", a.Since, a.At)
	}
	// Drain the flight: guard disarms, no further alarms even though the
	// value stays frozen.
	fly = 0
	s.RunUntil(80 * sim.Millisecond)
	if e.AlarmTotal() != 1 {
		t.Fatalf("alarm re-fired while disarmed: %d", e.AlarmTotal())
	}
}

func TestWatchdogPinnedAtCap(t *testing.T) {
	s := sim.New(1)
	e := New(s, Options{Interval: sim.Millisecond})
	depth := e.Series("switch.queue_depth", "sw0", "port=2")
	var d int64
	e.Register("sw", func(sm *Sample) { sm.Observe(depth, d) })
	e.Watch(Rule{Name: "switch.queue_pinned", Kind: RulePinnedAtCap,
		Watch: depth, Threshold: 64, Window: 5 * sim.Millisecond})
	e.Start()

	d = 63 // below cap: never fires
	s.RunUntil(10 * sim.Millisecond)
	d = 64 // at cap: fires after the window holds
	s.RunUntil(14 * sim.Millisecond)
	if e.AlarmTotal() != 0 {
		t.Fatalf("fired before window lapsed: %+v", e.Alarms())
	}
	s.RunUntil(30 * sim.Millisecond)
	if e.AlarmTotal() != 1 {
		t.Fatalf("alarms = %d, want 1", e.AlarmTotal())
	}
	a := e.Alarms()[0]
	if a.Since != 11*sim.Millisecond || a.At != 16*sim.Millisecond || a.Value != 64 {
		t.Fatalf("episode: %+v", a)
	}
	// Dip below and pin again: a second episode fires.
	d = 10
	s.RunUntil(32 * sim.Millisecond)
	d = 70
	s.RunUntil(50 * sim.Millisecond)
	if e.AlarmTotal() != 2 {
		t.Fatalf("second episode: alarms = %d, want 2", e.AlarmTotal())
	}
}

func TestWatchdogNearCap(t *testing.T) {
	s := sim.New(1)
	e := New(s, Options{Interval: sim.Millisecond})
	hw := e.Series("mbuf.high_water", "a", "")
	var v int64
	e.Register("mbuf", func(sm *Sample) { sm.Observe(hw, v) })
	e.Watch(Rule{Name: "mbuf.near_cap", Kind: RuleNearCap, Watch: hw, Threshold: 1000, Pct: 95})
	e.Start()

	v = 949 // below 95%
	s.RunUntil(5 * sim.Millisecond)
	if e.AlarmTotal() != 0 {
		t.Fatalf("premature: %+v", e.Alarms())
	}
	v = 950 // exactly 95%: fires instantly, once
	s.RunUntil(20 * sim.Millisecond)
	if e.AlarmTotal() != 1 {
		t.Fatalf("alarms = %d, want 1", e.AlarmTotal())
	}
	if a := e.Alarms()[0]; a.At != 6*sim.Millisecond || a.Value != 950 {
		t.Fatalf("episode: %+v", a)
	}
}

// buildDump runs one fixed scenario and returns its JSONL bytes and digest.
func buildDump(t *testing.T) ([]byte, uint64) {
	t.Helper()
	s, e, src := newTestEngine(sim.Millisecond, 8)
	extra := e.Series("test.gauge", "b", "port=3")
	e.Register("extra", func(sm *Sample) { sm.Observe(extra, src.v+1) })
	e.Start()
	for i := 1; i <= 20; i++ {
		src.v = int64(i * i)
		s.RunUntil(sim.Time(i) * sim.Millisecond)
	}
	var buf bytes.Buffer
	if err := e.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes(), e.Digest()
}

func TestExportDeterminismAndRoundTrip(t *testing.T) {
	b1, d1 := buildDump(t)
	b2, d2 := buildDump(t)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("JSONL dumps differ across identical runs")
	}
	if d1 != d2 {
		t.Fatalf("digests differ: %x vs %x", d1, d2)
	}
	pts, err := ReadJSONL(bytes.NewReader(b1))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(pts) != 16 { // 2 series × ring cap 8
		t.Fatalf("round-trip points = %d, want 16", len(pts))
	}
	if pts[0].Series != "test.counter" || pts[0].Host != "a" {
		t.Fatalf("sorted order: first point %+v", pts[0])
	}
	if last := pts[len(pts)-1]; last.Series != "test.gauge" || last.Labels != "port=3" || last.V != 401 {
		t.Fatalf("last point %+v", last)
	}
}

func TestWriteCSVAndPromText(t *testing.T) {
	s, e, src := newTestEngine(sim.Millisecond, 8)
	e.Start()
	src.v = 5
	s.RunUntil(3 * sim.Millisecond)

	var csv bytes.Buffer
	if err := e.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	want := "series,host,labels,at_ns,value\n" +
		"test.counter,a,,1000000,5\n" +
		"test.counter,a,,2000000,5\n" +
		"test.counter,a,,3000000,5\n"
	if csv.String() != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", csv.String(), want)
	}

	var prom bytes.Buffer
	if err := e.WritePromText(&prom); err != nil {
		t.Fatalf("WritePromText: %v", err)
	}
	got := prom.String()
	if !strings.Contains(got, "# TYPE plexus_test_counter gauge\n") ||
		!strings.Contains(got, `plexus_test_counter{host="a"} 5 3`+"\n") {
		t.Fatalf("prom text:\n%s", got)
	}
}
