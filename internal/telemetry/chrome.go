// Chrome trace bridge: flatten engines' series into the counter-track
// events stats.WriteChromeTraceWith renders. Perfetto draws each counter as
// a stepped timeline under the host's process, beside the CPU profile — the
// "queue depth while this task ran" view.
package telemetry

import (
	"plexus/internal/stats"
)

// ChromeCounters flattens every retained point of every series into Chrome
// counter events, engines in the given (shard) order, series in sorted key
// order, points oldest first — deterministic like the other exporters.
// Labeled series keep their labels in the counter name so each connection
// or port gets its own track.
func ChromeCounters(engines ...*Engine) []stats.ChromeCounter {
	var out []stats.ChromeCounter
	var pts []Point
	for _, e := range engines {
		for _, se := range e.sortedSeries() {
			name := se.Name()
			if lbl := se.Labels(); lbl != "" {
				name += "{" + lbl + "}"
			}
			pts = se.Points(pts[:0])
			for _, p := range pts {
				out = append(out, stats.ChromeCounter{
					Host: se.Host(), Name: name, At: p.At, Value: p.Val,
				})
			}
		}
	}
	return out
}
