// Boundary is the cross-shard cable: the one link type whose two ends live
// on different sim.Sim instances. Each direction is a portal — a bounded
// single-producer/single-consumer queue of timestamped wire snapshots,
// double-buffered so the producing shard appends without locks while the
// consuming shard drains the batch released at the previous barrier. The
// sim.Engine flips the buffers between rounds; its lookahead window (at most
// serialization of a minimum frame plus propagation, this boundary's
// Lookahead) guarantees every queued arrival timestamp is still in the
// consumer's future when released.
package netdev

import (
	"plexus/internal/sim"
)

// Boundary joins two shards with a full-duplex cable. Side A owns a Link on
// the first simulator, side B a Link on the second; frames transmitted on
// either side are captured by that side's portal and re-emitted onto the
// other side's link at their original arrival timestamps, one barrier round
// later. Timing is identical to a local Link: serialization and propagation
// are charged once, by the transmitting side.
type Boundary struct {
	name string
	la   *Link
	lb   *Link
	ab   *portal // captures on A, re-emits on B
	ba   *portal // captures on B, re-emits on A
}

// NewBoundary creates the cable between simulators sa and sb. The model
// supplies wire timing; its minimum-frame serialization plus propagation
// delay is the coupling lookahead, so it must match the model of the NICs
// and switch ports attached to the boundary's links.
func NewBoundary(sa, sb *sim.Sim, name string, model Model) *Boundary {
	b := &Boundary{
		name: name,
		la:   NewLink(sa, name+"/a"),
		lb:   NewLink(sb, name+"/b"),
	}
	lookahead := model.serialization(model.MinFrame) + model.PropDelay
	b.ab = &portal{src: b.la, dst: b.lb, lookahead: lookahead}
	b.ba = &portal{src: b.lb, dst: b.la, lookahead: lookahead}
	b.ab.peer = b.ba
	b.ba.peer = b.ab
	// Each portal listens on its source link like any other attachment.
	b.la.atts = append(b.la.atts, b.ab)
	b.lb.atts = append(b.lb.atts, b.ba)
	return b
}

// LinkA returns side A's link (on the first simulator).
func (b *Boundary) LinkA() *Link { return b.la }

// LinkB returns side B's link (on the second simulator).
func (b *Boundary) LinkB() *Link { return b.lb }

// CouplingAB returns the A→B direction as an engine coupling; connect it to
// the shard owning side B (the drain side).
func (b *Boundary) CouplingAB() sim.Coupling { return b.ab }

// CouplingBA returns the B→A direction; connect it to side A's shard.
func (b *Boundary) CouplingBA() sim.Coupling { return b.ba }

// Transferred reports frames carried in each direction.
func (b *Boundary) Transferred() (ab, ba uint64) {
	return b.ab.transferred, b.ba.transferred
}

// bcellFreeCap bounds each portal's idle cell list; beyond it, retired cells
// (and their buffers) are dropped for the GC, keeping a burst from pinning
// memory forever.
const bcellFreeCap = 1024

// bcell is one captured wire snapshot in flight between shards: the frame
// bytes (copied, because the source link recycles its frame immediately),
// the arrival timestamp computed by the transmitter, and the lifecycle span.
type bcell struct {
	at   sim.Time
	span uint64
	buf  []byte
	next *bcell
}

// portal is one direction of a Boundary. Ownership of its fields follows
// the barrier protocol:
//
//	out, free      — touched only by the source shard (deliverAt), between flips
//	inbox, back    — touched only by the destination shard (Drain)
//	all fields     — touched by Flip, which runs single-threaded at barriers
//
// The engine's channel/WaitGroup edges order these phases, so no field needs
// atomics and the schedule stays deterministic.
type portal struct {
	src       *Link
	dst       *Link
	peer      *portal
	lookahead sim.Time

	out     []*bcell // filling: captured by src this round
	inbox   []*bcell // released: drained by dst this round
	back    []*bcell // consumed by dst, recycled at next flip
	free    *bcell
	nfree   int
	spilled uint64 // cells dropped past bcellFreeCap

	transferred uint64
}

// deliverAt implements attachment on the source link: snapshot the frame
// into a pooled cell and queue it for release at the next barrier. The frame
// reference is not retained — the bytes are copied, exactly as a NIC's
// receive ring would latch them.
func (p *portal) deliverAt(at sim.Time, f *frame) {
	c := p.free
	if c != nil {
		p.free = c.next
		c.next = nil
		p.nfree--
	} else {
		c = &bcell{}
	}
	if cap(c.buf) < len(f.buf) {
		c.buf = make([]byte, len(f.buf))
	}
	c.buf = c.buf[:len(f.buf)]
	copy(c.buf, f.buf)
	c.at = at
	c.span = f.span
	p.out = append(p.out, c)
}

// Lookahead implements sim.Coupling.
func (p *portal) Lookahead() sim.Time { return p.lookahead }

// Flip implements sim.Coupling: recycle the cells the destination consumed
// last round, then release this round's captures. Runs at barriers only.
func (p *portal) Flip() {
	for _, c := range p.back {
		if p.nfree >= bcellFreeCap {
			p.spilled++
			continue
		}
		c.next = p.free
		p.free = c
		p.nfree++
	}
	p.back = p.back[:0]
	p.out, p.inbox = p.inbox[:0], p.out
}

// Drain implements sim.Coupling: re-emit every released snapshot onto the
// destination link at its original arrival timestamp. The engine's window
// guarantees at >= the destination clock; Sim.schedule enforces it.
func (p *portal) Drain() {
	if len(p.inbox) == 0 {
		return
	}
	for _, c := range p.inbox {
		if !p.dst.up {
			// Carrier cut on the far side: the frame crossed the boundary
			// but goes nowhere, same as a down local link.
			p.dst.downDrops++
			continue
		}
		f := p.dst.getFrame(len(c.buf))
		copy(f.buf, c.buf)
		f.span = c.span
		p.dst.frames++
		p.dst.bytes += uint64(len(c.buf))
		for _, a := range p.dst.atts {
			if a == attachment(p.peer) {
				continue // never reflect traffic back across the boundary
			}
			a.deliverAt(c.at, f)
		}
		releaseFrame(f)
		p.transferred++
	}
	p.back = append(p.back, p.inbox...)
	p.inbox = p.inbox[:0]
}
