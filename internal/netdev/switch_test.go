package netdev

import (
	"testing"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// swHost is one host hanging off a switch port in the test fabric.
type swHost struct {
	nic   *NIC
	cable *Link
	cpu   *sim.CPU
	pool  *mbuf.Pool
	rx    [][]byte
	rxAt  []sim.Time
}

// swRig is a star topology: n hosts, each on its own cable into one switch.
type swRig struct {
	sim   *sim.Sim
	sw    *Switch
	hosts []*swHost
}

func newSwRig(t *testing.T, model Model, cfg SwitchConfig, n int) *swRig {
	t.Helper()
	s := sim.New(1)
	r := &swRig{sim: s, sw: NewSwitch(s, "sw0", model, cfg)}
	for i := 0; i < n; i++ {
		h := &swHost{
			cable: NewLink(s, "cable"),
			cpu:   sim.NewCPU(s, "host"),
			pool:  mbuf.NewPool(),
		}
		disp := event.NewDispatcher(event.DefaultCosts())
		disp.MustDeclare(testRecvEvent, event.Options{})
		h.nic = NewNIC(s, "nic", model, h.cable, Config{
			CPU: h.cpu, Raise: disp, Pool: h.pool,
			RecvRef: disp.Ref(testRecvEvent), MAC: view.MAC{2, 0, 0, 0, 1, byte(i + 1)},
		})
		if _, err := disp.Install(testRecvEvent, nil, event.Proc("sink", func(task *sim.Task, m *mbuf.Mbuf) {
			data, _ := m.CopyData(0, m.PktLen())
			h.rx = append(h.rx, data)
			h.rxAt = append(h.rxAt, task.Now())
			m.Free()
		}), 0); err != nil {
			t.Fatal(err)
		}
		r.sw.AttachLink(h.cable)
		r.hosts = append(r.hosts, h)
	}
	return r
}

// send transmits a frame from host src to dstMAC with the given payload size.
func (r *swRig) send(t *testing.T, src int, dst view.MAC, payload int) {
	t.Helper()
	h := r.hosts[src]
	b := make([]byte, view.EthernetHdrLen+payload)
	eth, _ := view.Ethernet(b)
	eth.SetDst(dst)
	eth.SetSrc(h.nic.MAC())
	eth.SetEtherType(0x0800)
	m := h.pool.FromBytes(b, 0)
	h.cpu.Submit(sim.PrioKernel, "tx", func(task *sim.Task) {
		if err := h.nic.Transmit(task, m); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
}

// deliveries reports every frame the host's NIC saw, accepted or not.
func (h *swHost) deliveries() uint64 {
	st := h.nic.Stats()
	return st.RxFrames + st.RxFiltered + st.RxErrors
}

// An unknown destination floods; once learned, unicast reaches one port only.
func TestSwitchLearningAndFlooding(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, 4)
	// Host 0 → host 1, destination unknown: flooded to ports 1..3.
	r.send(t, 0, r.hosts[1].nic.MAC(), 100)
	r.sim.Run()
	if got := r.sw.Stats().Flooded; got != 1 {
		t.Fatalf("Flooded = %d, want 1", got)
	}
	for i, h := range r.hosts[1:] {
		if h.deliveries() != 1 {
			t.Errorf("host %d saw %d deliveries during flood, want 1", i+1, h.deliveries())
		}
	}
	// Host 1 replies: 0's address was learned from the first frame, so the
	// reply is forwarded out port 0 alone.
	r.send(t, 1, r.hosts[0].nic.MAC(), 100)
	r.sim.Run()
	st := r.sw.Stats()
	if st.Forwarded != 1 || st.Flooded != 1 {
		t.Fatalf("Forwarded = %d Flooded = %d, want 1/1", st.Forwarded, st.Flooded)
	}
	if r.hosts[2].deliveries() != 1 || r.hosts[3].deliveries() != 1 {
		t.Error("learned unicast leaked to a third port")
	}
	if len(r.hosts[0].rx) != 1 {
		t.Fatalf("host 0 received %d frames, want 1", len(r.hosts[0].rx))
	}
	if r.sw.MACTableLen() != 2 {
		t.Errorf("MAC table has %d entries, want 2", r.sw.MACTableLen())
	}
}

// The regression the scale plane depends on: with many hosts on the fabric, a
// unicast frame costs O(1) deliveries, not O(hosts) — only the owning port's
// NIC ever sees it.
func TestSwitchUnicastExactlyOnePort(t *testing.T) {
	const hosts = 256
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, hosts)
	// Teach the switch where host 1 lives (one flood), then unicast to it.
	r.send(t, 1, r.hosts[0].nic.MAC(), 10)
	r.sim.Run()
	base := make([]uint64, hosts)
	for i, h := range r.hosts {
		base[i] = h.deliveries()
	}
	r.send(t, 0, r.hosts[1].nic.MAC(), 100)
	r.sim.Run()
	if len(r.hosts[1].rx) != 1 {
		t.Fatalf("destination received %d frames, want 1", len(r.hosts[1].rx))
	}
	for i, h := range r.hosts {
		want := base[i]
		if i == 1 {
			want++
		}
		if h.deliveries() != want {
			t.Fatalf("host %d: %d deliveries, want %d — unicast fanned out", i, h.deliveries(), want)
		}
	}
	if st := r.sw.Stats(); st.Forwarded != 1 {
		t.Errorf("Forwarded = %d, want 1", st.Forwarded)
	}
}

// Broadcast still floods every port except the ingress.
func TestSwitchBroadcastFloods(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, 5)
	r.send(t, 2, view.BroadcastMAC, 10)
	r.sim.Run()
	for i, h := range r.hosts {
		want := 1
		if i == 2 {
			want = 0
		}
		if len(h.rx) != want {
			t.Errorf("host %d received %d broadcast frames, want %d", i, len(h.rx), want)
		}
	}
}

// Aged MAC entries are evicted and the frame floods again.
func TestSwitchMACAging(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{AgeTime: 10 * sim.Millisecond}, 3)
	r.send(t, 1, r.hosts[0].nic.MAC(), 10) // learn host 1
	r.sim.Run()
	r.send(t, 0, r.hosts[1].nic.MAC(), 10) // forwarded, not flooded
	r.sim.Run()
	if st := r.sw.Stats(); st.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1", st.Forwarded)
	}
	// Let host 1's entry age out, then send again: flood + eviction.
	r.sim.RunUntil(r.sim.Now() + 20*sim.Millisecond)
	r.send(t, 0, r.hosts[1].nic.MAC(), 10)
	r.sim.Run()
	st := r.sw.Stats()
	if st.Aged != 1 {
		t.Errorf("Aged = %d, want 1", st.Aged)
	}
	if st.Flooded != 2 { // the initial unknown destination + post-aging
		t.Errorf("Flooded = %d, want 2", st.Flooded)
	}
	if r.hosts[2].deliveries() != 2 {
		t.Errorf("host 2 saw %d deliveries, want 2 floods", r.hosts[2].deliveries())
	}
}

// Fan-in overload tail-drops at the destination port, with exact accounting:
// every offered frame is either transmitted out the port or counted dropped.
func TestSwitchTailDropUnderFanIn(t *testing.T) {
	const senders = 8
	const burst = 4
	r := newSwRig(t, EthernetModel(), SwitchConfig{QueueFrames: 4}, senders+1)
	dst := r.hosts[senders]
	// Teach the switch the destination's port so the burst is unicast.
	r.send(t, senders, r.hosts[0].nic.MAC(), 10)
	r.sim.Run()
	for s := 0; s < senders; s++ {
		for i := 0; i < burst; i++ {
			r.send(t, s, dst.nic.MAC(), 1400)
		}
	}
	r.sim.Run()
	port := r.sw.Ports()[senders].Stats()
	if port.Drops == 0 {
		t.Fatal("no tail drops despite 32-frame fan-in burst into a 4-frame queue")
	}
	if port.TxFrames+port.Drops != senders*burst {
		t.Errorf("accounting: %d tx + %d dropped != %d offered",
			port.TxFrames, port.Drops, senders*burst)
	}
	if uint64(len(dst.rx)) != port.TxFrames {
		t.Errorf("destination received %d, port transmitted %d", len(dst.rx), port.TxFrames)
	}
	if r.sw.QueueDrops() != port.Drops {
		t.Errorf("QueueDrops = %d, port drops = %d", r.sw.QueueDrops(), port.Drops)
	}
}

// One switch hop costs two serializations (host→switch, switch→host) plus the
// store-and-forward latency — never less.
func TestSwitchStoreAndForwardLatency(t *testing.T) {
	model := EthernetModel()
	r := newSwRig(t, model, SwitchConfig{}, 2)
	r.send(t, 0, r.hosts[1].nic.MAC(), 1400)
	r.sim.Run()
	if len(r.hosts[1].rxAt) != 1 {
		t.Fatalf("received %d frames", len(r.hosts[1].rxAt))
	}
	min := 2*model.serialization(1414) + DefaultSwitchLatency
	if got := r.hosts[1].rxAt[0]; got < min {
		t.Errorf("one-hop delivery at %v, store-and-forward floor is %v", got, min)
	}
}

// Frames funneled through one egress port leave in FIFO order even when two
// ingress cables race.
func TestSwitchEgressFIFO(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, 3)
	dst := r.hosts[2]
	r.send(t, 2, r.hosts[0].nic.MAC(), 10) // learn the egress port
	r.sim.Run()
	for i := 0; i < 6; i++ {
		r.send(t, i%2, dst.nic.MAC(), 200+i) // distinguishable sizes
	}
	r.sim.Run()
	if len(dst.rxAt) != 6 {
		t.Fatalf("received %d frames, want 6", len(dst.rxAt))
	}
	for i := 1; i < len(dst.rxAt); i++ {
		if dst.rxAt[i] <= dst.rxAt[i-1] {
			t.Errorf("frames %d/%d arrived at %v/%v — not serialized FIFO",
				i-1, i, dst.rxAt[i-1], dst.rxAt[i])
		}
	}
}

// Wire snapshots forwarded across the fabric are all released at quiescence,
// including flooded copies crossing several cables.
func TestSwitchLiveFramesBalanced(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{QueueFrames: 2}, 6)
	for i := 0; i < 5; i++ {
		r.send(t, i, view.BroadcastMAC, 300)
		r.send(t, i, r.hosts[(i+1)%5].nic.MAC(), 300)
	}
	r.sim.Run()
	for i, h := range r.hosts {
		if live := h.cable.LiveFrames(); live != 0 {
			t.Errorf("cable %d: %d wire frames still referenced", i, live)
		}
	}
}
