package netdev

import (
	"testing"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// rig is a minimal two-NIC test network without any protocol stack.
type rig struct {
	sim   *sim.Sim
	link  *Link
	a, b  *NIC
	cpuA  *sim.CPU
	cpuB  *sim.CPU
	dispA *event.Dispatcher
	dispB *event.Dispatcher
	poolA *mbuf.Pool
	poolB *mbuf.Pool
	// rxB collects frames B's handler received; rxAtB their arrival times.
	rxB   [][]byte
	rxAtB []sim.Time
}

const testRecvEvent event.Name = "Test.PacketRecv"

func newRig(t *testing.T, model Model, promiscB bool) *rig {
	t.Helper()
	s := sim.New(1)
	r := &rig{
		sim:   s,
		link:  NewLink(s, "wire"),
		cpuA:  sim.NewCPU(s, "a"),
		cpuB:  sim.NewCPU(s, "b"),
		dispA: event.NewDispatcher(event.DefaultCosts()),
		dispB: event.NewDispatcher(event.DefaultCosts()),
		poolA: mbuf.NewPool(),
		poolB: mbuf.NewPool(),
	}
	r.dispA.MustDeclare(testRecvEvent, event.Options{})
	r.dispB.MustDeclare(testRecvEvent, event.Options{})
	r.a = NewNIC(s, "a/nic", model, r.link, Config{
		CPU: r.cpuA, Raise: r.dispA, Pool: r.poolA,
		RecvRef: r.dispA.Ref(testRecvEvent), MAC: view.MAC{2, 0, 0, 0, 0, 1},
	})
	r.b = NewNIC(s, "b/nic", model, r.link, Config{
		CPU: r.cpuB, Raise: r.dispB, Pool: r.poolB,
		RecvRef: r.dispB.Ref(testRecvEvent), MAC: view.MAC{2, 0, 0, 0, 0, 2},
		Promiscuous: promiscB,
	})
	if _, err := r.dispB.Install(testRecvEvent, nil, event.Proc("sink", func(task *sim.Task, m *mbuf.Mbuf) {
		data, _ := m.CopyData(0, m.PktLen())
		r.rxB = append(r.rxB, data)
		r.rxAtB = append(r.rxAtB, task.Now())
		m.Free()
	}), 0); err != nil {
		t.Fatal(err)
	}
	return r
}

// frameTo builds a frame addressed to dst with an arbitrary type and payload.
func (r *rig) frameTo(dst view.MAC, payload int) *mbuf.Mbuf {
	b := make([]byte, view.EthernetHdrLen+payload)
	eth, _ := view.Ethernet(b)
	eth.SetDst(dst)
	eth.SetSrc(r.a.MAC())
	eth.SetEtherType(0x0800)
	return r.poolA.FromBytes(b, 0)
}

func (r *rig) send(t *testing.T, m *mbuf.Mbuf) {
	t.Helper()
	r.cpuA.Submit(sim.PrioKernel, "tx", func(task *sim.Task) {
		if err := r.a.Transmit(task, m); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
}

func TestUnicastDelivery(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	r.send(t, r.frameTo(r.b.MAC(), 100))
	r.sim.Run()
	if len(r.rxB) != 1 || len(r.rxB[0]) != 114 {
		t.Fatalf("rxB = %d frames", len(r.rxB))
	}
	if r.a.Stats().TxFrames != 1 || r.b.Stats().RxFrames != 1 {
		t.Errorf("stats: %+v %+v", r.a.Stats(), r.b.Stats())
	}
}

func TestMACFilterDropsForeignFrames(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	r.send(t, r.frameTo(view.MAC{2, 0, 0, 0, 0, 99}, 100)) // not B's address
	r.sim.Run()
	if len(r.rxB) != 0 {
		t.Fatal("foreign frame accepted")
	}
	if r.b.Stats().RxFiltered != 1 {
		t.Errorf("RxFiltered = %d", r.b.Stats().RxFiltered)
	}
}

func TestPromiscuousAcceptsAll(t *testing.T) {
	r := newRig(t, EthernetModel(), true)
	r.send(t, r.frameTo(view.MAC{2, 0, 0, 0, 0, 99}, 100))
	r.sim.Run()
	if len(r.rxB) != 1 {
		t.Fatal("promiscuous NIC filtered a frame")
	}
}

func TestBroadcastAndMulticastAccepted(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	r.send(t, r.frameTo(view.BroadcastMAC, 10))
	r.send(t, r.frameTo(view.MAC{0x01, 0x00, 0x5e, 0, 0, 1}, 10))
	r.sim.Run()
	if len(r.rxB) != 2 {
		t.Fatalf("rxB = %d, want broadcast+multicast", len(r.rxB))
	}
}

func TestSerializationDelay(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	r.send(t, r.frameTo(r.b.MAC(), 1486)) // full 1500B frame
	r.sim.Run()
	if r.link.Frames() != 1 || r.link.Bytes() != 1500 {
		t.Fatalf("link stats: %d frames %d bytes", r.link.Frames(), r.link.Bytes())
	}
	// Serialization of 1500B at 10Mb/s = 1.2ms; the receive interrupt fires
	// after that plus propagation plus driver costs, so the simulation
	// cannot quiesce earlier.
	if r.sim.Now() < 1200*sim.Microsecond {
		t.Errorf("1500B at 10Mb/s should take ≥1.2ms, sim ended at %v", r.sim.Now())
	}
}

func TestMinFramePadding(t *testing.T) {
	model := EthernetModel()
	if model.serialization(10) != model.serialization(64) {
		t.Error("short frames must pad to the 64B minimum")
	}
	if model.serialization(100) <= model.serialization(64) {
		t.Error("serialization must grow past the minimum")
	}
	// ATM/T3 have no minimum.
	atm := ForeATMModel()
	if atm.serialization(10) >= atm.serialization(100) {
		t.Error("ATM serialization should scale from zero")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	m := r.frameTo(r.b.MAC(), 2000)
	r.cpuA.Submit(sim.PrioKernel, "tx", func(task *sim.Task) {
		if err := r.a.Transmit(task, m); err == nil {
			t.Error("oversize frame accepted")
		}
	})
	r.sim.Run()
}

func TestNonPacketMbufRejected(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	m := r.poolA.Get() // no packet header
	r.cpuA.Submit(sim.PrioKernel, "tx", func(task *sim.Task) {
		if err := r.a.Transmit(task, m); err == nil {
			t.Error("non-packet mbuf accepted")
		}
	})
	r.sim.Run()
	m.Free()
}

func TestTxQueueOverflowDrops(t *testing.T) {
	model := EthernetModel()
	model.MaxBacklog = 5 * sim.Millisecond // ~4 full frames
	r := newRig(t, model, false)
	r.cpuA.Submit(sim.PrioKernel, "burst", func(task *sim.Task) {
		for i := 0; i < 20; i++ {
			b := make([]byte, 1514)
			eth, _ := view.Ethernet(b)
			eth.SetDst(r.b.MAC())
			eth.SetSrc(r.a.MAC())
			eth.SetEtherType(0x0800)
			if err := r.a.Transmit(task, r.poolA.FromBytes(b, 0)); err != nil {
				t.Errorf("transmit: %v", err)
			}
		}
	})
	r.sim.Run()
	st := r.a.Stats()
	if st.TxDrops == 0 {
		t.Fatal("no drops despite 20-frame burst over a 5ms queue")
	}
	if st.TxFrames+st.TxDrops != 20 {
		t.Errorf("accounting: %d sent + %d dropped != 20", st.TxFrames, st.TxDrops)
	}
	if uint64(len(r.rxB)) != st.TxFrames {
		t.Errorf("delivered %d of %d transmitted", len(r.rxB), st.TxFrames)
	}
}

func TestLossInjection(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	n := 0
	r.link.SetDropFn(func(wire []byte) bool {
		n++
		return n%2 == 0
	})
	for i := 0; i < 6; i++ {
		r.send(t, r.frameTo(r.b.MAC(), 10))
	}
	r.sim.Run()
	if len(r.rxB) != 3 {
		t.Fatalf("delivered %d of 6 with 50%% loss", len(r.rxB))
	}
	if r.link.Dropped() != 3 {
		t.Errorf("Dropped = %d", r.link.Dropped())
	}
}

// A down link discards frames silently; raising it restores delivery.
func TestLinkDownDropsFrames(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	if !r.link.Up() {
		t.Fatal("new link must start up")
	}
	r.link.SetUp(false)
	r.send(t, r.frameTo(r.b.MAC(), 10))
	r.sim.Run()
	if len(r.rxB) != 0 {
		t.Fatal("frame delivered over a down link")
	}
	if r.link.DownDrops() != 1 {
		t.Errorf("DownDrops = %d", r.link.DownDrops())
	}
	r.link.SetUp(true)
	r.send(t, r.frameTo(r.b.MAC(), 10))
	r.sim.Run()
	if len(r.rxB) != 1 {
		t.Fatalf("delivery did not resume after SetUp(true): %d frames", len(r.rxB))
	}
}

// The duplication hook delivers a frame twice to every receiver.
func TestDuplicationHook(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	n := 0
	r.link.SetDupFn(func(wire []byte) bool {
		n++
		return n == 1 // duplicate only the first frame
	})
	r.send(t, r.frameTo(r.b.MAC(), 10))
	r.send(t, r.frameTo(r.b.MAC(), 10))
	r.sim.Run()
	if len(r.rxB) != 3 {
		t.Fatalf("delivered %d frames, want 3 (one duplicated)", len(r.rxB))
	}
	if r.link.Duplicated() != 1 {
		t.Errorf("Duplicated = %d", r.link.Duplicated())
	}
}

// A replayed frame serializes after its original: the duplicate can never
// arrive at — let alone before — the original's instant, so FIFO queues
// downstream always see original first.
func TestDuplicateArrivesAfterOriginal(t *testing.T) {
	model := EthernetModel()
	r := newRig(t, model, false)
	r.link.SetDupFn(func(wire []byte) bool { return true })
	r.send(t, r.frameTo(r.b.MAC(), 100))
	r.sim.Run()
	if len(r.rxAtB) != 2 {
		t.Fatalf("received %d frames, want original + duplicate", len(r.rxAtB))
	}
	gap := r.rxAtB[1] - r.rxAtB[0]
	if gap < model.serialization(114) {
		t.Fatalf("duplicate arrived %v after original, want ≥ one serialization (%v)",
			gap, model.serialization(114))
	}
}

// Malformed frames are frame errors, not MAC-filter drops.
func TestMalformedFrameCountsRxErrors(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	short := r.poolA.FromBytes(make([]byte, 8), 0) // too short for an Ethernet header
	r.send(t, short)
	r.send(t, r.frameTo(view.MAC{2, 0, 0, 0, 0, 99}, 100)) // foreign but well-formed
	r.sim.Run()
	st := r.b.Stats()
	if st.RxErrors != 1 {
		t.Errorf("RxErrors = %d, want 1", st.RxErrors)
	}
	if st.RxFiltered != 1 {
		t.Errorf("RxFiltered = %d, want 1 (malformed frames must not count here)", st.RxFiltered)
	}
	if len(r.rxB) != 0 {
		t.Errorf("%d frames delivered, want 0", len(r.rxB))
	}
}

// Every wire snapshot is released once deliveries quiesce — under loss,
// duplication, and plain delivery alike.
func TestLiveFramesBalanced(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	n := 0
	r.link.SetDropFn(func(wire []byte) bool {
		n++
		return n%3 == 0
	})
	r.link.SetDupFn(func(wire []byte) bool { return n%2 == 0 })
	for i := 0; i < 12; i++ {
		r.send(t, r.frameTo(r.b.MAC(), 50))
	}
	r.sim.Run()
	if live := r.link.LiveFrames(); live != 0 {
		t.Fatalf("%d wire frames still referenced after quiescence", live)
	}
}

// PIO devices charge the sending and receiving CPUs per byte.
func TestPIOChargesCPU(t *testing.T) {
	dma := DECT3Model()
	pio := ForeATMModel()
	measure := func(model Model) (txBusy, rxBusy sim.Time) {
		r := newRig(t, model, false)
		r.send(t, r.frameTo(r.b.MAC(), 4000))
		r.sim.Run()
		return r.cpuA.Busy(), r.cpuB.Busy()
	}
	dmaTx, dmaRx := measure(dma)
	pioTx, pioRx := measure(pio)
	expected := sim.Time(4014) * pio.PIOPerByte
	if pioTx-dmaTx < expected-dma.TxDriver-pio.TxDriver-sim.Millisecond {
		// Loose check: PIO adds roughly per-byte × size over DMA.
		t.Errorf("PIO tx busy %v vs DMA %v; expected ≈ +%v", pioTx, dmaTx, expected)
	}
	if pioRx <= dmaRx {
		t.Errorf("PIO rx busy %v should exceed DMA rx busy %v", pioRx, dmaRx)
	}
}

func TestFastDriverHalvesCosts(t *testing.T) {
	m := EthernetModel()
	f := FastDriver(m)
	if f.TxDriver != m.TxDriver/2 || f.RxDriver != m.RxDriver/2 || f.IntrEntry != m.IntrEntry/2 {
		t.Error("FastDriver did not halve driver costs")
	}
	if f.Name == m.Name {
		t.Error("FastDriver must rename the model")
	}
}

func TestModelAccessors(t *testing.T) {
	r := newRig(t, EthernetModel(), false)
	if r.a.Name() != "a/nic" || r.a.MTU() != 1500 || r.a.Model().Name != "ethernet" {
		t.Error("NIC accessors wrong")
	}
	if r.a.MAC() != (view.MAC{2, 0, 0, 0, 0, 1}) {
		t.Error("MAC accessor wrong")
	}
}
