// Package netdev models the three network devices of the paper's testbed
// (§4): a 10Mb/s Ethernet, a 155Mb/s Fore TCA-100 ATM interface whose
// programmed I/O limits deliverable bandwidth to ~53Mb/s, and a 45Mb/s DEC T3
// adapter that uses DMA. A NIC charges driver and I/O costs to the simulated
// CPU, serializes frames onto a shared link, and delivers arrivals as
// interrupt-priority work that raises the device's PacketRecv event — the
// bottom of the Plexus protocol graph.
package netdev

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Model describes a device type: wire characteristics plus driver costs.
type Model struct {
	// Name labels the device type ("ethernet", "fore-atm", "dec-t3").
	Name string
	// BitsPerSec is the wire signalling rate.
	BitsPerSec int64
	// PropDelay is one-way propagation (cabling + switch) latency.
	PropDelay sim.Time
	// MTU is the largest frame payload (bytes after the Ethernet header).
	MTU int
	// MinFrame pads short frames to the medium's minimum (Ethernet: 64B).
	MinFrame int
	// TxDriver/RxDriver are fixed per-packet driver costs.
	TxDriver sim.Time
	RxDriver sim.Time
	// IntrEntry is the interrupt entry/exit overhead on receive.
	IntrEntry sim.Time
	// PIOPerByte, when nonzero, models programmed I/O: the CPU moves every
	// byte to (and from) the adapter itself. DMA devices leave it zero.
	PIOPerByte sim.Time
	// MaxBacklog bounds the transmit queue: a frame that would have to
	// wait longer than this for the wire is dropped (interface-queue
	// overflow), as when offered load exceeds link capacity.
	MaxBacklog sim.Time
}

// EthernetModel is the paper's 10Mb/s private Ethernet segment.
func EthernetModel() Model {
	return Model{
		Name:       "ethernet",
		BitsPerSec: 10_000_000,
		PropDelay:  1 * sim.Microsecond,
		MTU:        1500,
		MinFrame:   64,
		TxDriver:   44 * sim.Microsecond,
		RxDriver:   44 * sim.Microsecond,
		IntrEntry:  10 * sim.Microsecond,
		MaxBacklog: 60 * sim.Millisecond, // ~50 full frames, BSD ifq_maxlen
	}
}

// ForeATMModel is the 155Mb/s Fore TCA-100 on TurboChannel. Programmed I/O
// makes the CPU copy every byte; with these costs two drivers moving data
// reliably top out near the paper's 53Mb/s.
func ForeATMModel() Model {
	return Model{
		Name:       "fore-atm",
		BitsPerSec: 155_000_000,
		PropDelay:  2 * sim.Microsecond, // through the ForeRunner switch
		MTU:        9180,
		TxDriver:   26 * sim.Microsecond,
		RxDriver:   26 * sim.Microsecond,
		IntrEntry:  10 * sim.Microsecond,
		PIOPerByte: 140 * sim.Nanosecond,
		MaxBacklog: 25 * sim.Millisecond,
	}
}

// DECT3Model is the experimental 45Mb/s DEC T3 adapter, DMA-based,
// back-to-back connected.
func DECT3Model() Model {
	return Model{
		Name:       "dec-t3",
		BitsPerSec: 45_000_000,
		PropDelay:  1 * sim.Microsecond,
		MTU:        4470,
		TxDriver:   22 * sim.Microsecond,
		RxDriver:   22 * sim.Microsecond,
		IntrEntry:  10 * sim.Microsecond,
		MaxBacklog: 40 * sim.Millisecond, // ~50 max-size frames
	}
}

// FastDriver returns a copy of m with the reduced driver costs of the paper's
// "faster device driver" experiment (§4.1: 337µs Ethernet, 241µs ATM RTT).
func FastDriver(m Model) Model {
	m.TxDriver /= 2
	m.RxDriver /= 2
	m.IntrEntry /= 2
	m.Name += "-fastdrv"
	return m
}

// serialization returns the wire occupancy of an n-byte frame.
func (m Model) serialization(n int) sim.Time {
	if n < m.MinFrame {
		n = m.MinFrame
	}
	return sim.Time(int64(n) * 8 * int64(sim.Second) / m.BitsPerSec)
}

// attachment is anything a Link can deliver wire frames to: a host NIC or a
// switch port. deliverAt is called synchronously by the transmitter with the
// (possibly future) arrival instant of the frame's last bit; the attachment
// takes its own frame reference if it keeps the snapshot.
type attachment interface {
	deliverAt(at sim.Time, f *frame)
}

// Link is one collision/delivery domain: a shared broadcast segment (the
// paper's private Ethernet), a back-to-back cable, or — in switched
// topologies — the cable joining one host to one switch port. The
// NIC-transmit direction is a serial resource: a frame transmits only when
// the previous NIC frame has left the wire. A switch port transmitting back
// down the same cable keeps its own transmitter state (see Port), so a
// host↔switch cable is full-duplex.
type Link struct {
	sim       *sim.Sim
	name      string
	atts      []attachment
	busyUntil sim.Time
	frames    uint64
	bytes     uint64
	busy      sim.Time
	dropped   uint64
	// up is the carrier state: a down link (cable pulled, switch port
	// flapped) silently discards every frame offered to it.
	up         bool
	downDrops  uint64
	duplicated uint64
	// liveFrames counts wire snapshots currently held (in flight or pending
	// receive interrupts); at quiescence it must return to zero.
	liveFrames int
	// dropFn, when set, is consulted per frame; true drops it on the wire.
	dropFn func(wire []byte) bool
	// mangleFn, when set, may corrupt each frame's bytes in flight.
	mangleFn func(wire []byte)
	// delayFn, when set, adds per-frame extra propagation delay; unequal
	// delays reorder deliveries.
	delayFn func(wire []byte) sim.Time
	// dupFn, when set, is consulted per frame; true delivers the frame twice
	// to every receiver (a duplicating network path).
	dupFn func(wire []byte) bool
	// freeFrames recycles wire-snapshot buffers so steady-state transmission
	// allocates nothing.
	freeFrames *frame
}

// frame is one reference-counted wire snapshot: the transmitter fills it, each
// accepting receiver holds a reference, and the last release recycles it onto
// the originating link's free list. The owner pointer matters in switched
// topologies, where a frame crosses several links before its last release.
type frame struct {
	buf   []byte
	refs  int
	owner *Link
	// span carries the packet-lifecycle trace ID across the wire: the real
	// frame bytes have no room for it, but the wire snapshot is simulator
	// state, so the receiver can re-stamp its private copy with the
	// sender's ID and one span follows the packet end to end.
	span uint64
	next *frame
}

// getFrame returns a frame sized to size with the creator's reference held.
func (l *Link) getFrame(size int) *frame {
	f := l.freeFrames
	if f != nil {
		l.freeFrames = f.next
		f.next = nil
	} else {
		f = &frame{}
	}
	if cap(f.buf) < size {
		f.buf = make([]byte, size)
	}
	f.buf = f.buf[:size]
	f.refs = 1
	f.owner = l
	l.liveFrames++
	return f
}

// releaseFrame drops one reference, recycling the frame onto its owning
// link's free list when the last reference is gone.
func releaseFrame(f *frame) {
	f.refs--
	if f.refs > 0 {
		return
	}
	l := f.owner
	l.liveFrames--
	f.next = l.freeFrames
	l.freeFrames = f
}

// SetDropFn installs a loss-injection predicate: frames for which fn returns
// true vanish on the wire. Tests use this to exercise retransmission.
func (l *Link) SetDropFn(fn func(wire []byte) bool) { l.dropFn = fn }

// SetMangleFn installs a corruption hook: fn may modify each frame's bytes in
// flight. Tests use this to exercise checksum validation.
func (l *Link) SetMangleFn(fn func(wire []byte)) { l.mangleFn = fn }

// SetDelayFn installs a jitter hook: fn returns extra propagation delay per
// frame. Unequal delays reorder deliveries, exercising receivers'
// out-of-order paths.
func (l *Link) SetDelayFn(fn func(wire []byte) sim.Time) { l.delayFn = fn }

// SetDupFn installs a duplication hook: frames for which fn returns true are
// delivered twice to every receiver, as on a network path that replays
// packets.
func (l *Link) SetDupFn(fn func(wire []byte) bool) { l.dupFn = fn }

// Dropped reports how many frames the loss injector discarded.
func (l *Link) Dropped() uint64 { return l.dropped }

// SetUp raises or cuts the link carrier. While down, every offered frame is
// silently discarded (counted by DownDrops); receivers see nothing.
func (l *Link) SetUp(up bool) { l.up = up }

// Up reports the carrier state.
func (l *Link) Up() bool { return l.up }

// DownDrops reports how many frames were discarded because the link was down.
func (l *Link) DownDrops() uint64 { return l.downDrops }

// Duplicated reports how many frames the duplication hook replayed.
func (l *Link) Duplicated() uint64 { return l.duplicated }

// LiveFrames reports wire snapshots currently referenced (in flight or
// awaiting a receive interrupt). A quiesced simulation must report zero —
// the frame-pool balance check chaos tests rely on.
func (l *Link) LiveFrames() int { return l.liveFrames }

// NewLink creates an empty link with the carrier up.
func NewLink(s *sim.Sim, name string) *Link {
	return &Link{sim: s, name: name, up: true}
}

// Frames reports how many frames crossed the link.
func (l *Link) Frames() uint64 { return l.frames }

// Bytes reports how many frame bytes crossed the link.
func (l *Link) Bytes() uint64 { return l.bytes }

// BusyTime reports the accumulated serialization time of every frame that
// crossed the link — utilization over a window is the busy-time delta over
// the window length.
func (l *Link) BusyTime() sim.Time { return l.busy }

// NICStats counts per-device activity.
type NICStats struct {
	TxFrames   uint64
	TxBytes    uint64
	TxDrops    uint64 // transmit-queue overflows
	RxFrames   uint64
	RxBytes    uint64
	RxFiltered uint64 // well-formed frames dropped by the MAC address filter
	RxErrors   uint64 // malformed frames (truncated Ethernet header)
}

// NIC is one network interface on a host.
type NIC struct {
	sim    *sim.Sim
	cpu    *sim.CPU
	raiser event.Raiser
	pool   *mbuf.Pool
	model  Model
	name   string
	mac    view.MAC
	link   *Link
	// recvRef is the resolved receive event, raised (at interrupt
	// priority, after driver costs) for every frame that passes the MAC
	// filter.
	recvRef *event.Ref
	promisc bool
	stats   NICStats
	// rxLabel and jobFree back the allocation-free receive path: the task
	// label is materialized once and rx jobs are pooled.
	rxLabel string
	jobFree *rxJob
}

// rxJob carries a frame from the wire to the receive interrupt without a
// per-delivery closure; jobs are pooled on the NIC.
type rxJob struct {
	nic  *NIC
	f    *frame
	next *rxJob
}

// Config carries the per-NIC wiring.
type Config struct {
	CPU *sim.CPU
	// Raise delivers arrivals into the protocol graph; a bare Dispatcher
	// raises inline, a Stack may interpose thread handoff.
	Raise event.Raiser
	Pool  *mbuf.Pool
	// RecvRef must reference a declared event; the NIC raises it on
	// arrivals. It may be left nil and wired later with SetRecvRef when
	// the NIC is built before the layer that declares its receive event.
	RecvRef *event.Ref
	MAC     view.MAC
	// Promiscuous disables the MAC destination filter (the forwarder and
	// trace tools use it).
	Promiscuous bool
}

// SetRecvRef wires (or rewires) the NIC's receive event after construction.
func (n *NIC) SetRecvRef(r *event.Ref) { n.recvRef = r }

// NewNIC creates a NIC and attaches it to the link.
func NewNIC(s *sim.Sim, name string, model Model, link *Link, cfg Config) *NIC {
	n := &NIC{
		sim:     s,
		cpu:     cfg.CPU,
		raiser:  cfg.Raise,
		pool:    cfg.Pool,
		model:   model,
		name:    name,
		mac:     cfg.MAC,
		link:    link,
		recvRef: cfg.RecvRef,
		promisc: cfg.Promiscuous,
	}
	n.rxLabel = "rx:" + name
	link.atts = append(link.atts, n)
	return n
}

// Name returns the interface name.
func (n *NIC) Name() string { return n.name }

// MAC returns the hardware address.
func (n *NIC) MAC() view.MAC { return n.mac }

// MTU returns the device MTU.
func (n *NIC) MTU() int { return n.model.MTU }

// Model returns the device model.
func (n *NIC) Model() Model { return n.model }

// Stats returns a snapshot of device counters.
func (n *NIC) Stats() NICStats { return n.stats }

// Transmit queues the frame m (a complete Ethernet frame, consumed by the
// call) for transmission, charging the sending task for driver work and, on
// PIO devices, for moving every byte to the adapter. The frame is copied onto
// the wire when the link is free and delivered to every other NIC after
// serialization and propagation.
func (n *NIC) Transmit(t *sim.Task, m *mbuf.Mbuf) error {
	if m.Hdr() == nil {
		return fmt.Errorf("netdev %s: transmit of non-packet mbuf", n.name)
	}
	size := m.PktLen()
	if size > n.model.MTU+view.EthernetHdrLen {
		m.Free()
		return fmt.Errorf("netdev %s: frame of %d bytes exceeds MTU %d", n.name, size, n.model.MTU)
	}
	// Stamp a lifecycle span at NIC entry if no upper layer already did:
	// from here the packet is traceable even when injected below the
	// protocol stack.
	if n.sim.MetricsEnabled() && m.Hdr().Span == 0 {
		m.Hdr().Span = n.sim.NextSpan()
	}
	span := m.Hdr().Span
	t.ChargeProf(sim.ProfDriver, n.name, n.model.TxDriver)
	t.ChargeBytesProf(sim.ProfCopy, n.name, size, n.model.PIOPerByte)
	// Carrier down: the driver ran, but the frame goes nowhere.
	if !n.link.up {
		n.link.downDrops++
		t.Hop(span, "wire", "drop-linkdown", size)
		if n.sim.TraceEnabled() {
			n.sim.Tracef(sim.TraceNet, "%s: link down, frame dropped", n.name)
		}
		m.Free()
		return nil
	}
	// Interface-queue overflow: when the wire backlog exceeds the queue
	// bound, the frame is dropped rather than queued forever.
	if n.model.MaxBacklog > 0 && n.link.busyUntil > t.Now()+n.model.MaxBacklog {
		n.stats.TxDrops++
		t.Hop(span, "wire", "drop-overflow", size)
		if n.sim.TraceEnabled() {
			n.sim.Tracef(sim.TraceNet, "%s: tx queue overflow, frame dropped", n.name)
		}
		m.Free()
		return nil
	}
	n.stats.TxFrames++
	n.stats.TxBytes += uint64(size)

	// The adapter contends for the wire: start when both the task has
	// finished its driver work and the link is free.
	start := t.Now()
	if n.link.busyUntil > start {
		start = n.link.busyUntil
	}
	ser := n.model.serialization(size)
	depart := start + ser
	n.link.busyUntil = depart
	n.link.busy += ser
	arrival := depart + n.model.PropDelay
	n.link.frames++
	n.link.bytes += uint64(size)
	if n.sim.TraceEnabled() {
		n.sim.Tracef(sim.TraceNet, "%s: tx %dB depart=%v arrive=%v", n.name, size, depart, arrival)
	}

	t.Hop(span, "wire", "tx", size)

	// Snapshot the wire bytes once into a recycled frame; every receiver
	// views the same immutable snapshot, as if from its own receive ring.
	f := n.link.getFrame(size)
	f.span = span
	err := m.CopyTo(0, f.buf)
	m.Free()
	if err != nil {
		releaseFrame(f)
		return err
	}
	if n.link.mangleFn != nil {
		n.link.mangleFn(f.buf)
	}
	if n.link.dropFn != nil && n.link.dropFn(f.buf) {
		n.link.dropped++
		t.Hop(span, "wire", "drop-loss", size)
		releaseFrame(f)
		if n.sim.TraceEnabled() {
			n.sim.Tracef(sim.TraceNet, "%s: frame dropped by loss injector", n.name)
		}
		return nil
	}
	if n.link.delayFn != nil {
		arrival += n.link.delayFn(f.buf)
	}
	dup := n.link.dupFn != nil && n.link.dupFn(f.buf)
	if dup {
		n.link.duplicated++
	}
	for _, dst := range n.link.atts {
		if dst == attachment(n) {
			continue
		}
		dst.deliverAt(arrival, f)
		if dup {
			// The replay occupies the wire for its own serialization time,
			// so a duplicate can never beat its original through a FIFO
			// queue — two frames cannot end at the same instant.
			dst.deliverAt(arrival+ser, f)
		}
	}
	releaseFrame(f) // drop the creator's reference
	return nil
}

// deliverAt schedules frame arrival: the MAC filter runs "in hardware", then
// accepted frames cost an interrupt plus driver work (plus PIO reads) on the
// receiving CPU and are raised into the protocol graph. The frame reference
// is taken synchronously; the pooled rx job releases it after copying.
func (n *NIC) deliverAt(at sim.Time, f *frame) {
	// Frames too short to carry an Ethernet header are frame errors, not
	// filter drops — the distinction matters when triaging loss.
	eth, err := view.Ethernet(f.buf)
	if err != nil {
		n.stats.RxErrors++
		return
	}
	// MAC destination filter (unless promiscuous).
	if !n.promisc {
		dst := eth.Dst()
		if dst != n.mac && !dst.IsBroadcast() && !dst.IsMulticast() {
			n.stats.RxFiltered++
			return
		}
	}
	f.refs++
	j := n.jobFree
	if j != nil {
		n.jobFree = j.next
		j.next = nil
	} else {
		j = &rxJob{nic: n}
	}
	j.f = f
	n.cpu.SubmitAtArg(at, sim.PrioInterrupt, n.rxLabel, nicRx, j)
}

// nicRx is the receive-interrupt body. It is a package-level func so that
// scheduling it (see deliverAt) never allocates a closure.
func nicRx(t *sim.Task, a any) {
	j := a.(*rxJob)
	n, f := j.nic, j.f
	j.f = nil
	j.next = n.jobFree
	n.jobFree = j
	wire := f.buf
	t.ChargeProf(sim.ProfTrap, n.name, n.model.IntrEntry)
	t.ChargeProf(sim.ProfDriver, n.name, n.model.RxDriver)
	t.ChargeBytesProf(sim.ProfCopy, n.name, len(wire), n.model.PIOPerByte)
	m := n.pool.FromBytes(wire, 0)
	n.stats.RxFrames++
	n.stats.RxBytes += uint64(len(wire))
	m.Hdr().Span = f.span // sender's lifecycle span survives the wire
	releaseFrame(f)       // the packet owns a private copy now
	m.Hdr().RcvIf = n.name
	m.Hdr().Timestamp = int64(t.Now())
	t.Hop(m.Hdr().Span, "wire", "rx", len(wire))
	if eth, err := view.Ethernet(m.Bytes()); err == nil {
		d := eth.Dst()
		m.Hdr().Multicast = d.IsBroadcast() || d.IsMulticast()
	}
	// Received packets are read-only through the graph (§3.4).
	m.SetReadOnly()
	if n.raiser.RaiseRef(t, n.recvRef, m) == 0 {
		if n.sim.TraceEnabled() {
			n.sim.Tracef(sim.TraceNet, "%s: frame with no handler, dropped", n.name)
		}
		m.Free()
	}
}
