package netdev

import (
	"testing"

	"plexus/internal/event"
	"plexus/internal/fabric"
	"plexus/internal/filter"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// sendIP transmits an Ethernet-framed UDP datagram from host src.
func (r *swRig) sendIP(t *testing.T, src int, dstMAC view.MAC, dstIP view.IP4, dport uint16) {
	t.Helper()
	h := r.hosts[src]
	b := make([]byte, view.EthernetHdrLen+view.IPv4MinHdrLen+view.UDPHdrLen+16)
	eth, _ := view.Ethernet(b)
	eth.SetDst(dstMAC)
	eth.SetSrc(h.nic.MAC())
	eth.SetEtherType(view.EtherTypeIPv4)
	ip := b[view.EthernetHdrLen:]
	ip[0] = 0x45
	ipv, _ := view.IPv4(ip)
	ipv.SetTotalLen(len(ip))
	ipv.SetTTL(64)
	ipv.SetProto(view.IPProtoUDP)
	ipv.SetSrc(view.IP4{10, 0, 0, byte(src + 1)})
	ipv.SetDst(dstIP)
	ipv.ComputeChecksum()
	uv, _ := view.UDP(ip[view.IPv4MinHdrLen:])
	uv.SetSrcPort(5000)
	uv.SetDstPort(dport)
	uv.SetLength(len(ip) - view.IPv4MinHdrLen)
	m := h.pool.FromBytes(b, 0)
	h.cpu.Submit(sim.PrioKernel, "tx", func(task *sim.Task) {
		if err := h.nic.Transmit(task, m); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
}

func aclPipe(t *testing.T, entries []fabric.ACLEntry, defaultPermit bool) *fabric.Pipeline {
	t.Helper()
	tb, err := fabric.NewACL("acl", filter.BaseEthernet, entries, defaultPermit)
	if err != nil {
		t.Fatal(err)
	}
	return fabric.NewPipeline("port-acl", filter.BaseEthernet, event.QuarantinePolicy{}).Add(tb)
}

// An ingress ACL drops matching frames before the MAC lookup; clean traffic
// and the drop counters are unaffected elsewhere.
func TestSwitchIngressPipelineDrops(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, 3)
	pl := aclPipe(t, []fabric.ACLEntry{
		{Name: "no-telnet", Match: "udp.dport == 23", Permit: false},
	}, true)
	r.sw.Ports()[0].SetIngressPipeline(pl)

	r.sendIP(t, 0, r.hosts[1].nic.MAC(), view.IP4{10, 0, 0, 2}, 23) // dropped
	r.sendIP(t, 0, r.hosts[1].nic.MAC(), view.IP4{10, 0, 0, 2}, 80) // passes
	r.sendIP(t, 2, r.hosts[1].nic.MAC(), view.IP4{10, 0, 0, 2}, 23) // no pipeline on port 2
	r.sim.Run()

	if got := r.sw.Stats().PipeDrops; got != 1 {
		t.Errorf("switch PipeDrops = %d, want 1", got)
	}
	if got := r.sw.Ports()[0].Stats().PipeDrops; got != 1 {
		t.Errorf("port 0 PipeDrops = %d, want 1", got)
	}
	// Host 1 sees the permitted frame and the unfiltered port's frame (both
	// flooded: dst unknown), but never the dropped one.
	if got := len(r.hosts[1].rx); got != 2 {
		t.Errorf("host 1 received %d frames, want 2", got)
	}
	snap := pl.Snapshot()
	if snap[0].Hits != 1 {
		t.Errorf("no-telnet hits = %d, want 1", snap[0].Hits)
	}
	if snap[1].Hits != 1 { // default-permit
		t.Errorf("default-permit hits = %d, want 1", snap[1].Hits)
	}
}

// An egress pipeline guards one port only: a flooded frame is dropped at the
// filtered port but still delivered out every other port, and the per-rule
// hit counters see each flood copy that reached the port.
func TestSwitchEgressPipelineUnderFlood(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, 4)
	pl := aclPipe(t, []fabric.ACLEntry{
		{Name: "no-telnet", Match: "udp.dport == 23", Permit: false},
	}, true)
	r.sw.Ports()[2].SetEgressPipeline(pl)

	// Unknown destination: floods to ports 1, 2, 3. Port 2's egress ACL eats
	// its copy.
	r.sendIP(t, 0, view.MAC{2, 0, 0, 0, 9, 9}, view.IP4{10, 0, 0, 99}, 23)
	r.sendIP(t, 0, view.MAC{2, 0, 0, 0, 9, 9}, view.IP4{10, 0, 0, 99}, 80)
	r.sim.Run()

	if got := r.sw.Stats().Flooded; got != 2 {
		t.Fatalf("Flooded = %d, want 2", got)
	}
	if got := r.hosts[2].deliveries(); got != 1 {
		t.Errorf("filtered host saw %d frames, want 1 (telnet copy dropped)", got)
	}
	for _, i := range []int{1, 3} {
		if got := r.hosts[i].deliveries(); got != 2 {
			t.Errorf("host %d saw %d frames, want 2", i, got)
		}
	}
	if got := r.sw.Ports()[2].Stats().PipeDrops; got != 1 {
		t.Errorf("port 2 PipeDrops = %d, want 1", got)
	}
	snap := pl.Snapshot()
	if snap[0].Hits != 1 || snap[1].Hits != 1 {
		t.Errorf("hits = %d/%d, want 1/1 (one flood copy each)", snap[0].Hits, snap[1].Hits)
	}
}

// A steer rule overrides the MAC-table lookup: matching frames exit the
// configured port even when the destination was learned elsewhere.
func TestSwitchSteerOverridesMACLookup(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, 4)
	// Learn everyone's MAC first so unicast would normally be forwarded.
	for i := range r.hosts {
		r.send(t, i, view.BroadcastMAC, 64)
	}
	r.sim.Run()
	base := make([]uint64, len(r.hosts))
	for i, h := range r.hosts {
		base[i] = h.deliveries()
	}

	steer, err := fabric.NewSteerRule("mirror-telnet", "udp.dport == 23", filter.BaseEthernet, 3)
	if err != nil {
		t.Fatal(err)
	}
	pl := fabric.NewPipeline("steer", filter.BaseEthernet, event.QuarantinePolicy{}).
		Add(fabric.NewTable("steer").Add(steer))
	r.sw.Ports()[0].SetIngressPipeline(pl)

	r.sendIP(t, 0, r.hosts[1].nic.MAC(), view.IP4{10, 0, 0, 2}, 23)
	r.sim.Run()
	if got := r.sw.Stats().Steered; got != 1 {
		t.Fatalf("Steered = %d, want 1", got)
	}
	if got := r.hosts[3].deliveries() - base[3]; got != 1 {
		t.Errorf("steer target saw %d new frames, want 1", got)
	}
	if got := r.hosts[1].deliveries() - base[1]; got != 0 {
		t.Errorf("MAC owner saw %d new frames, want 0 (steer overrides lookup)", got)
	}
}

// A rewrite action misdeployed onto a switch port panics on the shared
// read-only frame; the sandbox quarantines it and the port falls back to
// plain forwarding without losing traffic.
func TestSwitchQuarantinedPipelineFallsBack(t *testing.T) {
	r := newSwRig(t, EthernetModel(), SwitchConfig{}, 3)
	rewrite, err := fabric.NewRule("bad-rewrite", "", filter.BaseEthernet,
		fabric.ActionFunc{Label: "bad-rewrite", Fn: func(task *sim.Task, p *fabric.Packet) fabric.Verdict {
			fabric.RewriteAddrPort(p, false, view.IP4{10, 9, 9, 9}, 0, false)
			return fabric.NextTable
		}})
	if err != nil {
		t.Fatal(err)
	}
	pl := fabric.NewPipeline("bad", filter.BaseEthernet, event.QuarantinePolicy{Threshold: 2}).
		Add(fabric.NewTable("bad").Add(rewrite))
	r.sw.Ports()[0].SetIngressPipeline(pl)

	for i := 0; i < 4; i++ {
		r.sendIP(t, 0, r.hosts[1].nic.MAC(), view.IP4{10, 0, 0, 2}, 80)
		r.sim.Run()
	}
	if got := pl.Stats().Faults; got != 2 {
		t.Errorf("faults = %d, want 2 (quarantined after threshold)", got)
	}
	if !pl.Quarantined() {
		t.Error("pipeline not quarantined")
	}
	// Every frame was still delivered: faults skip the rule, and after
	// quarantine the pipeline is inert.
	if got := r.hosts[1].deliveries(); got != 4 {
		t.Errorf("host 1 saw %d frames, want 4", got)
	}
	if got := r.sw.Stats().PipeDrops; got != 0 {
		t.Errorf("PipeDrops = %d, want 0", got)
	}
}
