// Switch models a store-and-forward Ethernet switch as a first-class fabric
// component, replacing the shared-medium broadcast bus for scale topologies.
// Each port joins one Link (the cable to a host, or to a shared segment
// hanging off the port); frames arriving on a port are learned into a MAC
// table, then forwarded out exactly the owning port — or flooded when the
// destination is broadcast, multicast, or unknown. Each port has a bounded
// output queue: frames that arrive faster than the port can serialize them
// are tail-dropped and counted, which is where overload becomes visible in
// the scale experiments.
//
// The switch is pure fabric — it has no CPU and charges no host cycles; its
// costs are time (store-and-forward latency, per-port serialization,
// propagation) and loss (tail drops). Ingress processing runs as simulator
// events at frame-arrival instants, so MAC learning and queue accounting are
// causal even when transmitters on different cables overlap. The per-frame
// path allocates nothing in steady state: ingress jobs are pooled and the
// departure ring is reused in place.
package netdev

import (
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Switch tunables.
const (
	// DefaultSwitchLatency is the store-and-forward processing delay: the
	// gap between the last bit arriving on the ingress port and the frame
	// becoming eligible for egress serialization.
	DefaultSwitchLatency = 4 * sim.Microsecond
	// DefaultPortQueueFrames bounds each port's output queue.
	DefaultPortQueueFrames = 64
	// DefaultMACAgeTime expires idle MAC-table entries.
	DefaultMACAgeTime = 300 * sim.Second
)

// SwitchConfig tunes a Switch; zero fields take the defaults above.
type SwitchConfig struct {
	Latency     sim.Time
	QueueFrames int
	AgeTime     sim.Time
	// RED enables random early detection on every output queue (zero
	// value = pure tail drop).
	RED REDConfig
}

// REDConfig is a minimal RED (random early detection) profile for a port's
// output queue: once the instantaneous depth reaches MinFrames, an arriving
// frame is dropped with probability ramping linearly from 0 to MaxProb at
// MaxFrames; at or beyond MaxFrames every arrival is dropped. The point is
// what RED was invented for — desynchronizing competing AIMD flows and
// breaking the drop-tail lockout where one self-clocked flow wins every
// queue-full race. The zero value disables it; MaxFrames defaults to the
// queue capacity. Drops draw from the simulation's seeded PRNG, so runs
// stay deterministic.
type REDConfig struct {
	MinFrames int
	MaxFrames int
	MaxProb   float64
}

// SwitchStats counts fabric-level activity.
type SwitchStats struct {
	RxFrames  uint64 // frames received across all ports
	Forwarded uint64 // unicast frames sent out exactly one port
	Flooded   uint64 // broadcast/multicast/unknown-destination frames
	Dropped   uint64 // tail drops across all output queues
	Filtered  uint64 // unicast frames whose owner is the ingress port
	RxErrors  uint64 // malformed frames discarded at ingress
	Learned   uint64 // MAC-table inserts or moves
	Aged      uint64 // MAC-table entries expired by aging
	PipeDrops uint64 // frames dropped by port pipelines
	Steered   uint64 // frames whose egress a pipeline chose directly
}

// PortStats counts one port's activity.
type PortStats struct {
	RxFrames  uint64
	TxFrames  uint64
	TxBytes   uint64
	Drops     uint64 // output-queue drops (tail and RED together)
	REDDrops  uint64 // the subset of Drops RED chose early
	PipeDrops uint64 // frames a pipeline on this port dropped
}

// PortPipeline is a match-action program installable on a switch port (the
// fabric plane implements it). ProcessFrame inspects the frame — switch
// frames are shared with every attachment on the wire, so implementations
// must treat b as read-only — and returns whether to drop it, a port index
// to steer it out (-1 for none; ingress side only), and the program's
// execution cost, which the CPU-less switch folds into forwarding latency.
type PortPipeline interface {
	ProcessFrame(b []byte) (drop bool, steer int, cost sim.Time)
}

type macEntry struct {
	port    *Port
	expires sim.Time
}

// Switch is a learning store-and-forward switch joining Links.
type Switch struct {
	sim     *sim.Sim
	name    string
	model   Model
	latency sim.Time
	qcap    int
	ageTime sim.Time
	red     REDConfig

	ports   []*Port
	macs    map[view.MAC]macEntry
	stats   SwitchStats
	jobFree *swJob
	inLabel string
}

// Port is one switch port: the attachment point joining the fabric to a
// cable. The port's transmitter state is independent of the cable's
// NIC-transmit direction, so a host↔switch cable is full-duplex.
type Port struct {
	sw   *Switch
	id   int
	link *Link
	// model is the port's wire model — the switch's fabric model for local
	// cables, or a per-port override for long-haul uplinks.
	model Model
	// busyUntil is when the port's transmitter frees.
	busyUntil sim.Time
	// departs[head:] are the scheduled departure instants of frames still
	// in the output queue (in FIFO order); entries at or before "now" have
	// left the wire. The slice is compacted in place so steady-state
	// queueing allocates nothing.
	departs []sim.Time
	head    int
	stats   PortStats
	// inPipe/outPipe are the port's optional match-action programs, run at
	// frame ingress (drop/steer before the MAC lookup) and egress (drop
	// before queue admission).
	inPipe  PortPipeline
	outPipe PortPipeline
}

// swJob carries one frame from a cable to the switch's ingress processing
// without a per-delivery closure; jobs are pooled on the switch.
type swJob struct {
	port *Port
	f    *frame
	next *swJob
}

// NewSwitch creates an empty switch whose ports all run the given device
// model (wire rate, propagation, minimum frame).
func NewSwitch(s *sim.Sim, name string, model Model, cfg SwitchConfig) *Switch {
	if cfg.Latency == 0 {
		cfg.Latency = DefaultSwitchLatency
	}
	if cfg.QueueFrames == 0 {
		cfg.QueueFrames = DefaultPortQueueFrames
	}
	if cfg.AgeTime == 0 {
		cfg.AgeTime = DefaultMACAgeTime
	}
	if cfg.RED.MaxProb > 0 && cfg.RED.MaxFrames == 0 {
		cfg.RED.MaxFrames = cfg.QueueFrames
	}
	return &Switch{
		sim:     s,
		name:    name,
		model:   model,
		latency: cfg.Latency,
		qcap:    cfg.QueueFrames,
		ageTime: cfg.AgeTime,
		red:     cfg.RED,
		macs:    make(map[view.MAC]macEntry),
		inLabel: "switch:" + name,
	}
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.name }

// Stats returns a snapshot of fabric counters.
func (sw *Switch) Stats() SwitchStats { return sw.stats }

// Ports returns the attached ports in attachment order.
func (sw *Switch) Ports() []*Port { return sw.ports }

// MACTableLen reports learned (possibly stale) MAC-table entries.
func (sw *Switch) MACTableLen() int { return len(sw.macs) }

// AttachLink creates a new port and joins it to cable l. Everything already
// on the cable (typically one host NIC) becomes reachable through the fabric.
func (sw *Switch) AttachLink(l *Link) *Port {
	return sw.AttachLinkModel(l, sw.model)
}

// AttachLinkModel attaches a cable whose port runs its own wire model — a
// long-haul uplink hanging off an otherwise local fabric. Serialization and
// propagation on this port follow model; the fabric latency and queue bounds
// stay the switch's.
func (sw *Switch) AttachLinkModel(l *Link, model Model) *Port {
	p := &Port{sw: sw, id: len(sw.ports), link: l, model: model}
	sw.ports = append(sw.ports, p)
	l.atts = append(l.atts, p)
	return p
}

// ID returns the port's index on its switch.
func (p *Port) ID() int { return p.id }

// Stats returns a snapshot of the port's counters.
func (p *Port) Stats() PortStats { return p.stats }

// SetIngressPipeline installs (or clears, with nil) the port's ingress
// match-action program, run on every frame arriving on this port before the
// MAC-table lookup.
func (p *Port) SetIngressPipeline(pipe PortPipeline) { p.inPipe = pipe }

// SetEgressPipeline installs (or clears, with nil) the port's egress
// match-action program, run on every frame bound for this port's output
// queue (including floods).
func (p *Port) SetEgressPipeline(pipe PortPipeline) { p.outPipe = pipe }

// QueueDrops sums tail drops across every port — the scale experiments'
// congestion signal.
func (sw *Switch) QueueDrops() uint64 { return sw.stats.Dropped }

// QueueCap returns the per-port output queue bound in frames.
func (sw *Switch) QueueCap() int { return sw.qcap }

// QueueDepth reports how many frames sit in the port's output queue at now —
// scheduled departures still in the future. Read-only (the enqueue path owns
// ring compaction), so the telemetry probe can sample it at any instant.
func (p *Port) QueueDepth(now sim.Time) int {
	n := 0
	for i := p.head; i < len(p.departs); i++ {
		if p.departs[i] > now {
			n++
		}
	}
	return n
}

// deliverAt implements attachment: the frame's last bit lands on the ingress
// port at time at; processing (learning, lookup, enqueue) happens then.
func (p *Port) deliverAt(at sim.Time, f *frame) {
	f.refs++
	sw := p.sw
	j := sw.jobFree
	if j != nil {
		sw.jobFree = j.next
		j.next = nil
	} else {
		j = &swJob{}
	}
	j.port = p
	j.f = f
	sw.sim.AtArg(at, sw.inLabel, switchIngress, j)
}

// switchIngress is the ingress-processing body, a package-level func so that
// scheduling it never allocates a closure.
func switchIngress(a any) {
	j := a.(*swJob)
	p, f := j.port, j.f
	sw := p.sw
	j.port = nil
	j.f = nil
	j.next = sw.jobFree
	sw.jobFree = j

	now := sw.sim.Now()
	p.stats.RxFrames++
	sw.stats.RxFrames++
	eth, err := view.Ethernet(f.buf)
	if err != nil {
		sw.stats.RxErrors++
		releaseFrame(f)
		return
	}
	// Learn the sender's address on the ingress port (never a group
	// address: those are destinations only).
	if src := eth.Src(); !src.IsMulticast() {
		e, ok := sw.macs[src]
		if !ok || e.port != p {
			sw.stats.Learned++
		}
		e.port = p
		e.expires = now + sw.ageTime
		sw.macs[src] = e
	}
	// The port's ingress program runs before the MAC lookup: it may drop the
	// frame, steer it out a specific port, or just cost time — the switch
	// has no CPU, so pipeline execution is modelled as added latency.
	if p.inPipe != nil {
		drop, steer, cost := p.inPipe.ProcessFrame(f.buf)
		if drop {
			p.stats.PipeDrops++
			sw.stats.PipeDrops++
			releaseFrame(f)
			return
		}
		now += cost
		if steer >= 0 && steer < len(sw.ports) && sw.ports[steer] != p {
			sw.stats.Steered++
			sw.ports[steer].enqueue(now, f)
			releaseFrame(f)
			return
		}
	}
	dst := eth.Dst()
	if dst.IsBroadcast() || dst.IsMulticast() {
		sw.flood(now, p, f)
	} else if e, ok := sw.macs[dst]; ok && now <= e.expires {
		if e.port == p {
			// Destination lives on the ingress segment; nothing to do.
			sw.stats.Filtered++
		} else {
			sw.stats.Forwarded++
			e.port.enqueue(now, f)
		}
	} else {
		if ok {
			delete(sw.macs, dst)
			sw.stats.Aged++
		}
		sw.flood(now, p, f)
	}
	releaseFrame(f)
}

// flood enqueues f on every port except the ingress.
func (sw *Switch) flood(now sim.Time, in *Port, f *frame) {
	sw.stats.Flooded++
	for _, p := range sw.ports {
		if p != in {
			p.enqueue(now, f)
		}
	}
}

// enqueue admits f to the port's output queue (tail-dropping when full),
// models store-and-forward latency plus serialization on the port's
// transmitter, and delivers the frame to everything on the cable.
func (p *Port) enqueue(now sim.Time, f *frame) {
	// The port's egress program filters queue admission; steering is an
	// ingress-side concept and is ignored here.
	if p.outPipe != nil {
		drop, _, cost := p.outPipe.ProcessFrame(f.buf)
		if drop {
			p.stats.PipeDrops++
			p.sw.stats.PipeDrops++
			return
		}
		now += cost
	}
	// A down cable (pulled, port flapped) discards egress silently, just
	// as it does for the host-transmit direction.
	if !p.link.up {
		p.link.downDrops++
		return
	}
	// Retire entries whose frames have left the wire by now.
	for p.head < len(p.departs) && p.departs[p.head] <= now {
		p.head++
	}
	if p.head == len(p.departs) {
		p.departs = p.departs[:0]
		p.head = 0
	}
	depth := len(p.departs) - p.head
	if depth >= p.sw.qcap {
		p.stats.Drops++
		p.sw.stats.Dropped++
		return
	}
	if red := p.sw.red; red.MaxProb > 0 && depth >= red.MinFrames {
		prob := red.MaxProb
		if depth < red.MaxFrames {
			prob *= float64(depth-red.MinFrames) / float64(red.MaxFrames-red.MinFrames)
		}
		if p.sw.sim.Rand().Float64() < prob {
			p.stats.Drops++
			p.stats.REDDrops++
			p.sw.stats.Dropped++
			return
		}
	}
	size := len(f.buf)
	start := now + p.sw.latency
	if p.busyUntil > start {
		start = p.busyUntil
	}
	ser := p.model.serialization(size)
	depart := start + ser
	p.busyUntil = depart
	p.link.busy += ser
	if p.head > 0 && len(p.departs) == cap(p.departs) {
		// Compact in place instead of growing: bounded queues must not
		// accumulate retired slots under sustained overload.
		n := copy(p.departs, p.departs[p.head:])
		p.departs = p.departs[:n]
		p.head = 0
	}
	p.departs = append(p.departs, depart)
	p.stats.TxFrames++
	p.stats.TxBytes += uint64(size)
	p.link.frames++
	p.link.bytes += uint64(size)
	arrival := depart + p.model.PropDelay
	for _, dst := range p.link.atts {
		if dst != attachment(p) {
			dst.deliverAt(arrival, f)
		}
	}
}
