package netdev

import (
	"testing"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// xrig is a two-shard rig: NIC a on simulator sa, NIC b on simulator sb,
// joined by a Boundary and driven by an Engine.
type xrig struct {
	engine *sim.Engine
	sa, sb *sim.Sim
	bnd    *Boundary
	a, b   *NIC
	poolA  *mbuf.Pool
	poolB  *mbuf.Pool
	rxB    [][]byte
	rxAtB  []sim.Time
	rxAtA  []sim.Time
}

func newXRig(t *testing.T, model Model, echo bool) *xrig {
	t.Helper()
	r := &xrig{
		engine: sim.NewEngine(),
		sa:     sim.New(1),
		sb:     sim.New(2),
		poolA:  mbuf.NewPool(),
		poolB:  mbuf.NewPool(),
	}
	shardA := r.engine.AddShard("a", r.sa)
	shardB := r.engine.AddShard("b", r.sb)
	r.bnd = NewBoundary(r.sa, r.sb, "uplink", model)
	r.engine.Connect(r.bnd.CouplingAB(), shardB)
	r.engine.Connect(r.bnd.CouplingBA(), shardA)

	dispA, dispB := event.NewDispatcher(event.DefaultCosts()), event.NewDispatcher(event.DefaultCosts())
	dispA.MustDeclare(testRecvEvent, event.Options{})
	dispB.MustDeclare(testRecvEvent, event.Options{})
	cpuA, cpuB := sim.NewCPU(r.sa, "a"), sim.NewCPU(r.sb, "b")
	r.a = NewNIC(r.sa, "a/nic", model, r.bnd.LinkA(), Config{
		CPU: cpuA, Raise: dispA, Pool: r.poolA,
		RecvRef: dispA.Ref(testRecvEvent), MAC: view.MAC{2, 0, 0, 0, 0, 1},
	})
	r.b = NewNIC(r.sb, "b/nic", model, r.bnd.LinkB(), Config{
		CPU: cpuB, Raise: dispB, Pool: r.poolB,
		RecvRef: dispB.Ref(testRecvEvent), MAC: view.MAC{2, 0, 0, 0, 0, 2},
	})
	if _, err := dispA.Install(testRecvEvent, nil, event.Proc("sinkA", func(task *sim.Task, m *mbuf.Mbuf) {
		r.rxAtA = append(r.rxAtA, task.Now())
		m.Free()
	}), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dispB.Install(testRecvEvent, nil, event.Proc("sinkB", func(task *sim.Task, m *mbuf.Mbuf) {
		data, _ := m.CopyData(0, m.PktLen())
		r.rxB = append(r.rxB, data)
		r.rxAtB = append(r.rxAtB, task.Now())
		if echo {
			reply := buildFrame(r.poolB, r.b.MAC(), r.a.MAC(), 64)
			if err := r.b.Transmit(task, reply); err != nil {
				t.Errorf("echo transmit: %v", err)
			}
		}
		m.Free()
	}), 0); err != nil {
		t.Fatal(err)
	}
	return r
}

func buildFrame(pool *mbuf.Pool, src, dst view.MAC, payload int) *mbuf.Mbuf {
	b := make([]byte, view.EthernetHdrLen+payload)
	eth, _ := view.Ethernet(b)
	eth.SetDst(dst)
	eth.SetSrc(src)
	eth.SetEtherType(0x0800)
	return pool.FromBytes(b, 0)
}

func (r *xrig) sendA(t *testing.T, payload int) {
	t.Helper()
	m := buildFrame(r.poolA, r.a.MAC(), r.b.MAC(), payload)
	r.a.cpu.Submit(sim.PrioKernel, "tx", func(task *sim.Task) {
		if err := r.a.Transmit(task, m); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
}

// TestBoundaryTimingMatchesLocalLink: a frame crossing a shard boundary must
// arrive at exactly the timestamp it would have on a same-model local link —
// the boundary is a scheduling artifact, not a network element.
func TestBoundaryTimingMatchesLocalLink(t *testing.T) {
	local := newRig(t, EthernetModel(), false)
	local.send(t, local.frameTo(local.b.MAC(), 100))
	local.sim.Run()
	if len(local.rxAtB) != 1 {
		t.Fatalf("local rig delivered %d frames", len(local.rxAtB))
	}

	x := newXRig(t, EthernetModel(), false)
	x.sendA(t, 100)
	x.engine.Run(10*sim.Millisecond, 2)
	if len(x.rxAtB) != 1 {
		t.Fatalf("boundary delivered %d frames", len(x.rxAtB))
	}
	if x.rxAtB[0] != local.rxAtB[0] {
		t.Fatalf("boundary arrival %v, local link arrival %v", x.rxAtB[0], local.rxAtB[0])
	}
	if ab, _ := x.bnd.Transferred(); ab != 1 {
		t.Fatalf("transferred A→B = %d, want 1", ab)
	}
}

// TestBoundaryRoundTrip exercises both portals: B echoes every frame back.
func TestBoundaryRoundTrip(t *testing.T) {
	r := newXRig(t, EthernetModel(), true)
	const frames = 50
	for i := 0; i < frames; i++ {
		r.sendA(t, 100)
	}
	r.engine.Run(100*sim.Millisecond, 2)
	if len(r.rxAtB) != frames || len(r.rxAtA) != frames {
		t.Fatalf("B got %d, A got %d echoes, want %d each", len(r.rxAtB), len(r.rxAtA), frames)
	}
	ab, ba := r.bnd.Transferred()
	if ab != frames || ba != frames {
		t.Fatalf("transferred %d/%d, want %d/%d", ab, ba, frames, frames)
	}
	// All wire snapshots must be recycled at quiescence, both sides.
	if r.bnd.LinkA().LiveFrames() != 0 || r.bnd.LinkB().LiveFrames() != 0 {
		t.Fatalf("live frames at quiescence: a=%d b=%d",
			r.bnd.LinkA().LiveFrames(), r.bnd.LinkB().LiveFrames())
	}
}

// TestBoundaryDeterministicAcrossWorkers: identical delivery schedule at any
// engine worker count.
func TestBoundaryDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []sim.Time {
		r := newXRig(t, EthernetModel(), true)
		for i := 0; i < 20; i++ {
			r.sendA(t, 64+i*10)
		}
		r.engine.Run(50*sim.Millisecond, workers)
		return append(append([]sim.Time{}, r.rxAtB...), r.rxAtA...)
	}
	seq := run(1)
	par := run(2)
	if len(seq) != len(par) {
		t.Fatalf("delivery counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("delivery %d at %v (seq) vs %v (par)", i, seq[i], par[i])
		}
	}
}

// TestBoundaryDownLinkDrops: cutting the far side's carrier drops crossing
// frames exactly like a down local link.
func TestBoundaryDownLinkDrops(t *testing.T) {
	r := newXRig(t, EthernetModel(), false)
	r.bnd.LinkB().SetUp(false)
	r.sendA(t, 100)
	r.engine.Run(10*sim.Millisecond, 1)
	if len(r.rxAtB) != 0 {
		t.Fatalf("down link delivered %d frames", len(r.rxAtB))
	}
	if got := r.bnd.LinkB().DownDrops(); got != 1 {
		t.Fatalf("down drops = %d, want 1", got)
	}
}
