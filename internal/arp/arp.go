// Package arp implements the Address Resolution Protocol node of the
// protocol graph: a cache, request/reply processing, and a pending queue for
// packets awaiting resolution.
package arp

import (
	"fmt"

	"plexus/internal/ether"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Tunables, following conventional BSD behaviour.
const (
	// EntryLifetime is how long a learned mapping stays valid.
	EntryLifetime = 20 * 60 * sim.Second
	// RetryInterval separates retransmitted requests.
	RetryInterval = 1 * sim.Second
	// MaxRetries bounds request retransmissions before pending packets
	// are dropped.
	MaxRetries = 3
	// maxPending bounds packets queued per unresolved address.
	maxPending = 8
	// MaxCacheEntries bounds the cache: long runs against many peers must
	// not grow it without limit. When full, the entry closest to expiry is
	// evicted to admit the new mapping.
	MaxCacheEntries = 512
)

type entry struct {
	mac     view.MAC
	expires sim.Time
}

type pendingPkt struct {
	m *mbuf.Mbuf
	t uint16 // ether type to use once resolved
}

type resolution struct {
	pkts    []pendingPkt
	retries int
	timer   sim.Timer
}

// Stats counts ARP activity.
type Stats struct {
	RequestsSent  uint64
	RepliesSent   uint64
	RequestsRecvd uint64
	RepliesRecvd  uint64
	Drops         uint64 // pending packets dropped after MaxRetries
}

// ARP is the protocol node for one interface.
type ARP struct {
	sim    *sim.Sim
	eth    *ether.Layer
	pool   *mbuf.Pool
	costs  osmodel.Costs
	selfIP view.IP4

	cache   map[view.IP4]entry
	pending map[view.IP4]*resolution
	stats   Stats
}

// New creates the ARP node and installs its guard/handler pair on
// Ethernet.PacketRecv (guard: EtherType == ARP).
func New(s *sim.Sim, eth *ether.Layer, pool *mbuf.Pool, costs osmodel.Costs, selfIP view.IP4) (*ARP, error) {
	a := &ARP{
		sim:     s,
		eth:     eth,
		pool:    pool,
		costs:   costs,
		selfIP:  selfIP,
		cache:   make(map[view.IP4]entry),
		pending: make(map[view.IP4]*resolution),
	}
	_, err := eth.InstallRecv(
		ether.TypeGuard(view.EtherTypeARP),
		event.Ephemeral("arp.input", a.input),
		0,
	)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Stats returns a snapshot of counters.
func (a *ARP) Stats() Stats { return a.stats }

// AddStatic installs a permanent mapping (tests and the T3 point-to-point
// configuration use this).
func (a *ARP) AddStatic(ip view.IP4, mac view.MAC) {
	a.insert(ip, entry{mac: mac, expires: 1<<62 - 1})
}

// Lookup consults the cache. An entry found expired is evicted on the spot:
// without that, a long run resolving many peers grows the map unboundedly
// (every expired mapping is dead weight that Lookup must still hash past).
func (a *ARP) Lookup(ip view.IP4) (view.MAC, bool) {
	e, ok := a.cache[ip]
	if !ok {
		return view.MAC{}, false
	}
	if a.sim.Now() > e.expires {
		delete(a.cache, ip)
		return view.MAC{}, false
	}
	return e.mac, true
}

// CacheLen reports live cache entries (including any not yet evicted).
func (a *ARP) CacheLen() int { return len(a.cache) }

// insert records a mapping, evicting to stay within MaxCacheEntries: first
// any already-expired entry, otherwise the entry closest to expiry. Static
// entries (far-future expiry) are the last to go.
func (a *ARP) insert(ip view.IP4, e entry) {
	if _, exists := a.cache[ip]; !exists && len(a.cache) >= MaxCacheEntries {
		// Deterministic victim selection: earliest expiry, ties broken by
		// address (map iteration order must not leak into simulations).
		var victim view.IP4
		var victimExp sim.Time = 1<<63 - 1
		for k, v := range a.cache {
			if v.expires < victimExp || (v.expires == victimExp && k.Uint32() < victim.Uint32()) {
				victim, victimExp = k, v.expires
			}
		}
		delete(a.cache, victim)
	}
	a.cache[ip] = e
}

// Send transmits m (consumed) to the on-link protocol address nextHop with
// the given Ethernet type, resolving the hardware address first if needed.
// Unresolved packets are queued and flushed by the reply; resolution failure
// after MaxRetries drops them.
func (a *ARP) Send(t *sim.Task, nextHop view.IP4, etherType uint16, m *mbuf.Mbuf) error {
	if nextHop.IsBroadcast() {
		return a.eth.Send(t, view.BroadcastMAC, etherType, m)
	}
	if nextHop.IsMulticast() {
		// RFC 1112 static mapping: 01:00:5e + low 23 bits.
		mac := view.MAC{0x01, 0x00, 0x5e, nextHop[1] & 0x7f, nextHop[2], nextHop[3]}
		return a.eth.Send(t, mac, etherType, m)
	}
	if mac, ok := a.Lookup(nextHop); ok {
		return a.eth.Send(t, mac, etherType, m)
	}
	r, inFlight := a.pending[nextHop]
	if !inFlight {
		r = &resolution{}
		a.pending[nextHop] = r
	}
	if len(r.pkts) >= maxPending {
		a.stats.Drops++
		m.Free()
		return fmt.Errorf("arp: pending queue full for %v", nextHop)
	}
	r.pkts = append(r.pkts, pendingPkt{m: m, t: etherType})
	if !inFlight {
		a.sendRequest(t, nextHop, r)
	}
	return nil
}

func (a *ARP) sendRequest(t *sim.Task, ip view.IP4, r *resolution) {
	req := a.pool.FromBytes(make([]byte, view.ARPHdrLen), 32)
	b, _ := req.MutableBytes()
	v, _ := view.ARP(b)
	v.Init(view.ARPRequest, a.eth.MAC(), a.selfIP, view.MAC{}, ip)
	a.stats.RequestsSent++
	if err := a.eth.Send(t, view.BroadcastMAC, view.EtherTypeARP, req); err != nil {
		a.sim.Tracef(sim.TraceProto, "arp: request send failed: %v", err)
	}
	r.timer = a.sim.After(RetryInterval, "arp-retry", func() {
		cur, ok := a.pending[ip]
		if !ok || cur != r {
			return
		}
		r.retries++
		if r.retries >= MaxRetries {
			for _, p := range r.pkts {
				p.m.Free()
				a.stats.Drops++
			}
			delete(a.pending, ip)
			a.sim.Tracef(sim.TraceProto, "arp: resolution of %v failed", ip)
			return
		}
		// Retransmit from a fresh kernel-priority task.
		a.eth.CPUSubmit("arp-retry", func(task *sim.Task) { a.sendRequest(task, ip, r) })
	})
}

// input processes an incoming ARP packet (full Ethernet frame, read-only).
func (a *ARP) input(t *sim.Task, m *mbuf.Mbuf) {
	t.Charge(a.costs.EtherProc)
	defer m.Free()
	frame, err := m.CopyData(0, m.PktLen())
	if err != nil || len(frame) < view.EthernetHdrLen+view.ARPHdrLen {
		return
	}
	v, err := view.ARP(frame[view.EthernetHdrLen:])
	if err != nil || v.HType() != 1 || v.PType() != view.EtherTypeIPv4 {
		return
	}
	// Learn the sender mapping unconditionally (as BSD does).
	a.learn(v.SenderIP(), v.SenderMAC(), t)
	switch v.Op() {
	case view.ARPRequest:
		a.stats.RequestsRecvd++
		if v.TargetIP() != a.selfIP {
			return
		}
		rep := a.pool.FromBytes(make([]byte, view.ARPHdrLen), 32)
		b, _ := rep.MutableBytes()
		rv, _ := view.ARP(b)
		rv.Init(view.ARPReply, a.eth.MAC(), a.selfIP, v.SenderMAC(), v.SenderIP())
		a.stats.RepliesSent++
		if err := a.eth.Send(t, v.SenderMAC(), view.EtherTypeARP, rep); err != nil {
			a.sim.Tracef(sim.TraceProto, "arp: reply send failed: %v", err)
		}
	case view.ARPReply:
		a.stats.RepliesRecvd++
	}
}

// learn records a mapping and flushes any packets waiting on it.
func (a *ARP) learn(ip view.IP4, mac view.MAC, t *sim.Task) {
	a.insert(ip, entry{mac: mac, expires: a.sim.Now() + EntryLifetime})
	if r, ok := a.pending[ip]; ok {
		r.timer.Stop()
		delete(a.pending, ip)
		for _, p := range r.pkts {
			if err := a.eth.Send(t, mac, p.t, p.m); err != nil {
				a.sim.Tracef(sim.TraceProto, "arp: flush send failed: %v", err)
			}
		}
	}
}
