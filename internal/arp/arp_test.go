package arp_test

import (
	"testing"

	"plexus/internal/arp"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func spin(name string) plexus.HostSpec {
	return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
}

// unprimed builds two hosts without static ARP entries.
func unprimed(t *testing.T) (*plexus.Network, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	n, err := plexus.NewNetwork(1, netdev.EthernetModel(), []plexus.HostSpec{spin("a"), spin("b")})
	if err != nil {
		t.Fatal(err)
	}
	return n, n.Hosts[0], n.Hosts[1]
}

func TestStaticEntry(t *testing.T) {
	_, a, b := unprimed(t)
	a.ARP.AddStatic(b.Addr(), b.NIC.MAC())
	mac, ok := a.ARP.Lookup(b.Addr())
	if !ok || mac != b.NIC.MAC() {
		t.Fatal("static entry not resolvable")
	}
}

func TestResolutionFailureDropsPending(t *testing.T) {
	n, a, _ := unprimed(t)
	ghost := view.IP4{10, 0, 0, 200} // nobody answers
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, ghost, 9, []byte("into the void"))
	})
	n.Sim.RunUntil(sim.Time(arp.MaxRetries+2) * arp.RetryInterval)
	st := a.ARP.Stats()
	if st.RequestsSent != arp.MaxRetries {
		t.Errorf("RequestsSent = %d, want %d retransmissions", st.RequestsSent, arp.MaxRetries)
	}
	if st.Drops != 1 {
		t.Errorf("Drops = %d, want 1 pending packet dropped", st.Drops)
	}
	if _, ok := a.ARP.Lookup(ghost); ok {
		t.Error("unanswered address resolved")
	}
	// mbuf accounting: the dropped packet was returned to the pool.
	if inuse := a.Host.Pool.Stats().InUse; inuse != 0 {
		t.Errorf("leaked %d mbufs after resolution failure", inuse)
	}
}

func TestPendingQueueFlushedInOrder(t *testing.T) {
	n, a, b := unprimed(t)
	var got []string
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, func(task *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		got = append(got, string(data))
	}); err != nil {
		t.Fatal(err)
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Three sends before resolution completes: all must queue on the one
	// outstanding request and flush in order.
	a.Spawn("burst", func(task *sim.Task) {
		for _, s := range []string{"one", "two", "three"} {
			if err := capp.Send(task, b.Addr(), 9, []byte(s)); err != nil {
				t.Errorf("send %s: %v", s, err)
			}
		}
	})
	n.Sim.Run()
	if len(got) != 3 || got[0] != "one" || got[1] != "two" || got[2] != "three" {
		t.Fatalf("flush order: %v", got)
	}
	if a.ARP.Stats().RequestsSent != 1 {
		t.Errorf("RequestsSent = %d, want a single outstanding request", a.ARP.Stats().RequestsSent)
	}
}

func TestPendingQueueOverflow(t *testing.T) {
	n, a, _ := unprimed(t)
	ghost := view.IP4{10, 0, 0, 200}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	a.Spawn("flood", func(task *sim.Task) {
		for i := 0; i < 12; i++ { // maxPending is 8
			if err := capp.Send(task, ghost, 9, []byte("x")); err != nil {
				errs++
			}
		}
	})
	n.Sim.RunUntil(100 * sim.Millisecond)
	if errs != 4 {
		t.Errorf("overflow errors = %d, want 4 (12 sends, 8 queued)", errs)
	}
}

func TestEntryExpiry(t *testing.T) {
	n, a, b := unprimed(t)
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, nil); err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) { _ = capp.Send(task, b.Addr(), 9, []byte("x")) })
	n.Sim.RunUntil(sim.Second)
	if _, ok := a.ARP.Lookup(b.Addr()); !ok {
		t.Fatal("mapping not learned")
	}
	// Advance past the entry lifetime: the mapping must age out.
	n.Sim.RunUntil(n.Sim.Now() + arp.EntryLifetime + sim.Second)
	if _, ok := a.ARP.Lookup(b.Addr()); ok {
		t.Fatal("mapping survived past its lifetime")
	}
}

func TestRepliesOnlyForSelf(t *testing.T) {
	n, a, b := unprimed(t)
	// a asks for an address b does not own: b must stay silent (but still
	// learns a's mapping, as BSD does).
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, view.IP4{10, 0, 0, 200}, 9, []byte("x"))
	})
	n.Sim.RunUntil(sim.Second)
	if b.ARP.Stats().RepliesSent != 0 {
		t.Error("b replied for an address it does not own")
	}
	if b.ARP.Stats().RequestsRecvd == 0 {
		t.Error("b never saw the broadcast request")
	}
	if _, ok := b.ARP.Lookup(a.Addr()); !ok {
		t.Error("b did not learn the requester's mapping")
	}
}

func TestMulticastMapping(t *testing.T) {
	n, a, b := unprimed(t)
	// RFC 1112: multicast needs no ARP exchange at all.
	got := 0
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9, AcceptMulticast: true},
		func(*sim.Task, []byte, view.IP4, uint16) { got++ }); err != nil {
		t.Fatal(err)
	}
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) {
		_ = capp.Send(task, view.IP4{224, 0, 1, 5}, 9, []byte("mc"))
	})
	n.Sim.Run()
	if got != 1 {
		t.Fatal("multicast datagram not delivered")
	}
	if a.ARP.Stats().RequestsSent != 0 {
		t.Error("multicast triggered an ARP request")
	}
}

// An expired entry is physically evicted by the Lookup that discovers it —
// the map must not accumulate dead mappings across a long run.
func TestExpiredEntryEvictedFromCache(t *testing.T) {
	n, a, b := unprimed(t)
	capp, err := a.OpenUDP(plexus.UDPAppOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenUDP(plexus.UDPAppOptions{Port: 9}, nil); err != nil {
		t.Fatal(err)
	}
	a.Spawn("send", func(task *sim.Task) { _ = capp.Send(task, b.Addr(), 9, []byte("x")) })
	n.Sim.RunUntil(sim.Second)
	if a.ARP.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1 learned entry", a.ARP.CacheLen())
	}
	n.Sim.RunUntil(n.Sim.Now() + arp.EntryLifetime + sim.Second)
	if _, ok := a.ARP.Lookup(b.Addr()); ok {
		t.Fatal("mapping survived past its lifetime")
	}
	if a.ARP.CacheLen() != 0 {
		t.Fatalf("CacheLen = %d after expiry lookup, want 0 (entry leaked)", a.ARP.CacheLen())
	}
}

// The cache is bounded: inserting past MaxCacheEntries evicts the entry
// closest to expiry rather than growing without limit.
func TestCacheSizeBound(t *testing.T) {
	_, a, _ := unprimed(t)
	for i := 0; i < arp.MaxCacheEntries+40; i++ {
		ip := view.IP4{10, 0, byte(1 + i/250), byte(1 + i%250)}
		a.ARP.AddStatic(ip, view.MAC{2, 0, 0, 0, byte(i >> 8), byte(i)})
	}
	if got := a.ARP.CacheLen(); got != arp.MaxCacheEntries {
		t.Fatalf("CacheLen = %d, want bound %d", got, arp.MaxCacheEntries)
	}
}
