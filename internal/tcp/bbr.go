// A BBR-style model-based sender (after Cardwell et al., "BBR:
// Congestion-Based Congestion Control"): instead of reacting to loss, it
// estimates the path's bottleneck bandwidth (windowed max of per-round
// delivery rate) and round-trip propagation delay (windowed min RTT), paces
// transmission at a gain times the bandwidth estimate, and caps inflight at
// a gain times the bandwidth-delay product. Pacing rides the simulator's
// timer wheel, so the pacing clock is exact and deterministic.
//
// This is the published algorithm's skeleton — STARTUP/DRAIN/PROBE_BW with
// an 8-phase pacing-gain cycle — without PROBE_RTT (the min-RTT filter
// simply expires) or the later BBRv2 inflight bounds.
package tcp

import "plexus/internal/sim"

func init() { RegisterCC("bbr", newBBR) }

const (
	// bbrHighGain is 2/ln2: fast enough to double the sending rate each
	// round during STARTUP.
	bbrHighGain = 2.885
	// bbrCwndGain bounds inflight at this multiple of the estimated BDP.
	bbrCwndGain = 2.0
	// bbrBwWindow is the bandwidth filter length in round trips.
	bbrBwWindow = 10
	// bbrMinRTTExpiry re-opens the min-RTT filter after this long.
	bbrMinRTTExpiry = 10 * sim.Second
	// bbrInitialCwnd seeds the window before the model has any samples.
	bbrInitialCwnd = 10
)

// bbrProbeGains is the PROBE_BW pacing-gain cycle: probe above the estimate
// for one phase, drain the surplus the next, then cruise.
var bbrProbeGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

type bbrMode uint8

const (
	bbrStartup bbrMode = iota
	bbrDrain
	bbrProbeBW
)

type bbr struct {
	mode       bbrMode
	pacingGain float64
	cwndGain   float64

	// Bandwidth filter: max delivery rate (bytes/sec) over the last
	// bbrBwWindow rounds, as a ring of per-round maxima.
	bwRing [bbrBwWindow]float64
	bwIdx  int
	btlBw  float64

	// Round accounting: a round ends when snd.una passes the snd.nxt
	// recorded at its start.
	roundBytes   uint64
	roundStart   sim.Time
	nextRoundSeq uint32
	roundValid   bool

	// Min-RTT filter.
	minRTT   sim.Time
	minRTTAt sim.Time

	// STARTUP full-pipe detection: three rounds without 25% bandwidth
	// growth means the pipe is full.
	fullBw      float64
	fullBwCount int

	// PROBE_BW gain-cycle phase.
	cycleIdx int
}

func newBBR() CongestionControl {
	return &bbr{mode: bbrStartup, pacingGain: bbrHighGain, cwndGain: bbrHighGain}
}

func (*bbr) Name() string   { return "bbr" }
func (*bbr) OwnsCwnd() bool { return true }

func (b *bbr) Init(c *Conn) {
	c.setCwnd(bbrInitialCwnd * c.mss)
}

func (b *bbr) OnRTTSample(c *Conn, rtt sim.Time) {
	now := c.mgr.sim.Now()
	if b.minRTT == 0 || rtt < b.minRTT || now-b.minRTTAt > bbrMinRTTExpiry {
		b.minRTT = rtt
		b.minRTTAt = now
	}
}

func (b *bbr) OnAck(c *Conn, acked uint32) {
	now := c.mgr.sim.Now()
	if !b.roundValid {
		b.roundValid = true
		b.roundStart = now
		b.nextRoundSeq = c.snd.nxt
	}
	b.roundBytes += uint64(acked)
	if seqGE(c.snd.una, b.nextRoundSeq) {
		b.endRound(c, now)
	}
	b.updateCwnd(c)
}

// endRound closes one round trip: fold its delivery rate into the bandwidth
// filter, advance the state machine, and start the next round.
func (b *bbr) endRound(c *Conn, now sim.Time) {
	if elapsed := now - b.roundStart; elapsed > 0 {
		rate := float64(b.roundBytes) * float64(sim.Second) / float64(elapsed)
		b.bwIdx = (b.bwIdx + 1) % bbrBwWindow
		b.bwRing[b.bwIdx] = rate
		b.btlBw = 0
		for _, v := range b.bwRing {
			if v > b.btlBw {
				b.btlBw = v
			}
		}
	}
	b.roundBytes = 0
	b.roundStart = now
	b.nextRoundSeq = c.snd.nxt

	switch b.mode {
	case bbrStartup:
		if b.btlBw > b.fullBw*1.25 {
			b.fullBw = b.btlBw
			b.fullBwCount = 0
		} else if b.fullBwCount++; b.fullBwCount >= 3 {
			b.mode = bbrDrain
			b.pacingGain = 1 / bbrHighGain
			b.cwndGain = bbrCwndGain
		}
	case bbrDrain:
		if uint64(c.flightSize()) <= b.bdp() {
			b.enterProbeBW()
		}
	case bbrProbeBW:
		// Advance the gain cycle once per round; skip the drain phase early
		// if the surplus is already gone.
		b.cycleIdx = (b.cycleIdx + 1) % len(bbrProbeGains)
		b.pacingGain = bbrProbeGains[b.cycleIdx]
	}
}

func (b *bbr) enterProbeBW() {
	b.mode = bbrProbeBW
	b.cycleIdx = 2 // start in a cruise phase, deterministically
	b.pacingGain = bbrProbeGains[b.cycleIdx]
	b.cwndGain = bbrCwndGain
}

// bdp is the estimated bandwidth-delay product in bytes.
func (b *bbr) bdp() uint64 {
	if b.btlBw <= 0 || b.minRTT <= 0 {
		return 0
	}
	return uint64(b.btlBw * float64(b.minRTT) / float64(sim.Second))
}

func (b *bbr) updateCwnd(c *Conn) {
	bdp := b.bdp()
	if bdp == 0 {
		return // no model yet: hold the initial window
	}
	w := uint64(b.cwndGain * float64(bdp))
	if min := uint64(4 * c.mss); w < min {
		w = min
	}
	if w > maxCwnd {
		w = maxCwnd
	}
	c.setCwnd(uint32(w))
}

// PacingDelay spaces segments at pacingGain times the bottleneck-bandwidth
// estimate. Before the first bandwidth sample the sender is ACK-clocked.
func (b *bbr) PacingDelay(c *Conn, bytes uint32) sim.Time {
	rate := b.pacingGain * b.btlBw
	if rate <= 0 {
		return 0
	}
	return sim.Time(float64(bytes) * float64(sim.Second) / rate)
}

// SsthreshAfterLoss leaves ssthresh alone: BBR does not react to loss as a
// congestion signal, it trusts the model.
func (*bbr) SsthreshAfterLoss(c *Conn) uint32 { return c.snd.ssthresh }

func (*bbr) OnEnterRecovery(*Conn) {}
func (*bbr) OnExitRecovery(*Conn)  {}

// OnRTO applies packet conservation: cut to a conservative window and let
// the model rebuild it; the filters survive (a timeout does not erase what
// the path could do).
func (b *bbr) OnRTO(c *Conn) {
	c.setCwnd(4 * c.mss)
	b.roundValid = false
	b.roundBytes = 0
}
